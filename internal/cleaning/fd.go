// Package cleaning provides CleanDB's high-level cleaning operations as a
// programmatic library: functional-dependency checks, general denial
// constraints, duplicate elimination, term validation and syntactic
// transformations, plus precision/recall scoring against ground truth.
//
// Each operation is parameterized by the physical strategies of the paper's
// §6 (grouping shuffle, theta-join algorithm), which is how the Spark SQL
// and BigDansing baselines reuse the same operation logic while exhibiting
// their published performance behaviour.
package cleaning

import (
	"cleandb/internal/engine"
	"cleandb/internal/physical"
	"cleandb/internal/types"
)

// Extract computes a grouping or projection key from a record.
type Extract func(types.Value) types.Value

// FieldExtract extracts a named field.
func FieldExtract(name string) Extract {
	return func(v types.Value) types.Value { return v.Field(name) }
}

// FieldsExtract extracts several fields as a composite key.
func FieldsExtract(names ...string) Extract {
	if len(names) == 1 {
		return FieldExtract(names[0])
	}
	return func(v types.Value) types.Value {
		return types.CompositeKey(types.FieldsOf(v, names))
	}
}

// FDViolationSchema describes FD violation records: the violating LHS key,
// the distinct RHS values observed, and the offending group members.
var FDViolationSchema = types.NewSchema("key", "values", "group")

// FDCheck detects functional-dependency violations: the dataset is grouped
// by the LHS key and groups associating more than one distinct RHS value are
// reported. The strategy selects the shuffle (paper §6): CleanDB uses
// GroupAggregate; the baselines use sort/hash shuffles.
func FDCheck(ds *engine.Dataset, lhs, rhs Extract, strategy physical.GroupStrategy) *engine.Dataset {
	agg := fdAgg{rhs: rhs}
	switch strategy {
	case physical.GroupSort:
		return ds.SortShuffleGroup("fd", engine.KeyFunc(lhs), agg)
	case physical.GroupHash:
		return ds.HashShuffleGroup("fd", engine.KeyFunc(lhs), agg)
	default:
		return ds.AggregateByKey("fd", engine.KeyFunc(lhs), agg)
	}
}

// fdAgg accumulates (distinct RHS values, group members) per LHS key and
// emits a violation record when more than one RHS value was seen. Keeping
// the distinct set small during local combination is exactly why the
// aggregate strategy shuffles little data for FD checks.
type fdAgg struct {
	rhs Extract
}

type fdAcc struct {
	rhsSeen map[string]types.Value
	group   []types.Value
}

func (f fdAgg) Zero() interface{} {
	return &fdAcc{rhsSeen: map[string]types.Value{}}
}

func (f fdAgg) Add(acc interface{}, v types.Value) interface{} {
	a := acc.(*fdAcc)
	rv := f.rhs(v)
	a.rhsSeen[types.Key(rv)] = rv
	a.group = append(a.group, v)
	return a
}

func (f fdAgg) Merge(x, y interface{}) interface{} {
	a, b := x.(*fdAcc), y.(*fdAcc)
	for k, v := range b.rhsSeen {
		a.rhsSeen[k] = v
	}
	a.group = append(a.group, b.group...)
	return a
}

func (f fdAgg) Result(key types.Value, acc interface{}) types.Value {
	a := acc.(*fdAcc)
	if len(a.rhsSeen) <= 1 {
		return types.Null()
	}
	vals := make([]types.Value, 0, len(a.rhsSeen))
	for _, v := range a.rhsSeen {
		vals = append(vals, v)
	}
	types.SortValues(vals)
	return types.NewRecord(FDViolationSchema, []types.Value{
		key, types.ListOf(vals), types.ListOf(a.group),
	})
}

func (f fdAgg) AccSize(acc interface{}) int64 {
	a := acc.(*fdAcc)
	return int64(len(a.group)) + int64(len(a.rhsSeen))
}
