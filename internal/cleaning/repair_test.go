package cleaning

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cleandb/internal/engine"
	"cleandb/internal/types"
)

func pair(a, b types.Value) types.Value {
	return types.NewRecord(DupPairSchema, []types.Value{a, b})
}

func TestDupClustersTransitiveClosure(t *testing.T) {
	mk := func(id int64) types.Value {
		return types.NewRecord(types.NewSchema("id"), []types.Value{types.Int(id)})
	}
	// Pairs (1,2), (2,3) and (4,5): two clusters {1,2,3} and {4,5}.
	pairs := []types.Value{
		pair(mk(1), mk(2)),
		pair(mk(2), mk(3)),
		pair(mk(4), mk(5)),
	}
	clusters := DupClusters(pairs)
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(clusters))
	}
	if len(clusters[0]) != 3 || len(clusters[1]) != 2 {
		t.Fatalf("cluster sizes = %d/%d, want 3/2", len(clusters[0]), len(clusters[1]))
	}
}

func TestDupClustersEmpty(t *testing.T) {
	if got := DupClusters(nil); got != nil {
		t.Fatalf("empty input: %v", got)
	}
}

func TestDupClustersSelfPairs(t *testing.T) {
	mk := func(id int64) types.Value {
		return types.NewRecord(types.NewSchema("id"), []types.Value{types.Int(id)})
	}
	// A degenerate self-pair must yield a singleton cluster, not a crash or
	// a duplicated member.
	clusters := DupClusters([]types.Value{pair(mk(1), mk(1))})
	if len(clusters) != 1 || len(clusters[0]) != 1 {
		t.Fatalf("self-pair clusters = %v", clusters)
	}
	// Mixed with real pairs, the self-pair contributes its member once.
	clusters = DupClusters([]types.Value{
		pair(mk(2), mk(2)),
		pair(mk(2), mk(3)),
	})
	if len(clusters) != 1 || len(clusters[0]) != 2 {
		t.Fatalf("self+real clusters = %v", clusters)
	}
}

func TestDupClustersChainMergesTransitively(t *testing.T) {
	mk := func(id int64) types.Value {
		return types.NewRecord(types.NewSchema("id"), []types.Value{types.Int(id)})
	}
	// Two clusters {1,2} and {3,4} merge into one when a late pair (2,3)
	// bridges them, regardless of pair order.
	pairs := []types.Value{
		pair(mk(1), mk(2)),
		pair(mk(3), mk(4)),
		pair(mk(2), mk(3)),
	}
	clusters := DupClusters(pairs)
	if len(clusters) != 1 || len(clusters[0]) != 4 {
		t.Fatalf("bridged chain clusters = %v", clusters)
	}
}

// TestDupClustersPartition is a property test: every input record appears in
// exactly one cluster, and both members of every pair share a cluster.
func TestDupClustersPartition(t *testing.T) {
	mk := func(id int64) types.Value {
		return types.NewRecord(types.NewSchema("id"), []types.Value{types.Int(id)})
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(20)
		var pairs []types.Value
		type edge struct{ a, b int64 }
		var edges []edge
		for i := 0; i < rng.Intn(30); i++ {
			a, b := int64(rng.Intn(n)), int64(rng.Intn(n))
			if a == b {
				continue
			}
			pairs = append(pairs, pair(mk(a), mk(b)))
			edges = append(edges, edge{a, b})
		}
		clusters := DupClusters(pairs)
		clusterOf := map[string]int{}
		for ci, cl := range clusters {
			for _, m := range cl {
				k := types.Key(m)
				if prev, dup := clusterOf[k]; dup && prev != ci {
					t.Fatalf("record %s in two clusters", k)
				}
				clusterOf[k] = ci
			}
		}
		for _, e := range edges {
			if clusterOf[types.Key(mk(e.a))] != clusterOf[types.Key(mk(e.b))] {
				t.Fatalf("pair (%d,%d) split across clusters", e.a, e.b)
			}
		}
	}
}

func TestApplyRepairs(t *testing.T) {
	ctx := engine.NewContext(3)
	schema := types.NewSchema("name", "n")
	rows := []types.Value{
		types.NewRecord(schema, []types.Value{types.String("stela"), types.Int(1)}),
		types.NewRecord(schema, []types.Value{types.String("manos"), types.Int(2)}),
		types.NewRecord(schema, []types.Value{types.String("stela"), types.Int(3)}),
	}
	out, changed := ApplyRepairs(engine.FromValues(ctx, rows), "name",
		map[string]string{"stela": "stella"})
	if changed != 2 {
		t.Fatalf("changed = %d, want 2", changed)
	}
	for _, v := range out.Collect() {
		if v.Field("name").Str() == "stela" {
			t.Fatalf("unrepaired value survived: %s", v)
		}
	}
	// Untouched column and rows intact.
	if out.Count() != 3 {
		t.Fatal("row count changed")
	}
}

// TestApplyRepairsIdempotent is a quick.Check property: applying the same
// repairs twice equals applying them once (when repair targets are not
// themselves repairable).
func TestApplyRepairsIdempotent(t *testing.T) {
	schema := types.NewSchema("name")
	f := func(names []string) bool {
		if len(names) == 0 {
			return true
		}
		repairs := map[string]string{}
		for i, n := range names {
			if i%2 == 0 && n != "" {
				repairs[n] = "FIXED"
			}
		}
		ctx := engine.NewContext(2)
		rows := make([]types.Value, len(names))
		for i, n := range names {
			rows[i] = types.NewRecord(schema, []types.Value{types.String(n)})
		}
		once, _ := ApplyRepairs(engine.FromValues(ctx, rows), "name", repairs)
		twice, _ := ApplyRepairs(once, "name", repairs)
		a, b := once.Collect(), twice.Collect()
		for i := range a {
			if types.Key(a[i]) != types.Key(b[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestEndToEndDetectAndRepair: term validation finds the repairs, ApplyRepairs
// heals the dataset, and a re-run finds nothing left to repair.
func TestEndToEndDetectAndRepair(t *testing.T) {
	ctx := engine.NewContext(4)
	schema := types.NewSchema("name")
	rows := []types.Value{
		types.NewRecord(schema, []types.Value{types.String("stela")}),
		types.NewRecord(schema, []types.Value{types.String("manos")}),
	}
	dict := []string{"stella", "manos"}
	cfg := TermValidationConfig{
		Attr:       func(v types.Value) string { return v.Field("name").Str() },
		Dictionary: dict,
		Theta:      0.7,
	}
	ds := engine.FromValues(ctx, rows)
	res := TermValidate(ds, cfg)
	if len(res.Repairs) == 0 {
		t.Fatal("expected repairs")
	}
	healed, changed := ApplyRepairs(ds, "name", res.Repairs)
	if changed == 0 {
		t.Fatal("expected changes")
	}
	res2 := TermValidate(healed, cfg)
	if len(res2.Repairs) != 0 {
		t.Fatalf("healed dataset still has repairs: %v", res2.Repairs)
	}
}
