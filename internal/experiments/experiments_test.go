package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// tinyScale keeps the shape tests fast while staying above the sizes where
// the cost-model separations are stable.
func tinyScale() Scale {
	s := BenchScale()
	return s
}

// parseTicks reverses the ticks() formatting for shape assertions.
func parseTicks(t *testing.T, cell string) float64 {
	t.Helper()
	if i := strings.IndexByte(cell, '/'); i >= 0 {
		cell = cell[i+1:]
	}
	mult := 1.0
	switch {
	case strings.HasSuffix(cell, "Mt"):
		mult = 1e6
		cell = strings.TrimSuffix(cell, "Mt")
	case strings.HasSuffix(cell, "kt"):
		mult = 1e3
		cell = strings.TrimSuffix(cell, "kt")
	default:
		cell = strings.TrimSuffix(cell, "t")
	}
	f, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cannot parse ticks cell %q", cell)
	}
	return f * mult
}

func rowByName(t *testing.T, tab *Table, name string) []string {
	t.Helper()
	for _, r := range tab.Rows {
		if r[0] == name {
			return r
		}
	}
	t.Fatalf("%s: no row %q in\n%s", tab.ID, name, tab)
	return nil
}

func pctVal(t *testing.T, cell string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("cannot parse pct %q", cell)
	}
	return f
}

func TestTable3Shape(t *testing.T) {
	tab := Table3(tinyScale())
	if len(tab.Rows) != 6 {
		t.Fatalf("want 6 configurations, got %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		p, rec := pctVal(t, r[2]), pctVal(t, r[3])
		if p < 90 {
			t.Errorf("%s precision %.1f%% below 90%% (paper: ≈100%%)", r[0], p)
		}
		if rec < 80 {
			t.Errorf("%s recall %.1f%% below 80%% (paper: ≥94%%; bench scale is noisier)", r[0], rec)
		}
	}
}

func TestFigure3Shape(t *testing.T) {
	tab := Figure3(tinyScale())
	total := map[string]float64{}
	for _, r := range tab.Rows {
		total[r[0]] = parseTicks(t, r[3])
	}
	// Paper shape: token filtering beats k-means except q=2.
	for _, tf := range []string{"tf q=3", "tf q=4"} {
		for _, km := range []string{"kmeans k=5", "kmeans k=10", "kmeans k=20"} {
			if total[tf] >= total[km] {
				t.Errorf("%s (%.0f) should be faster than %s (%.0f)", tf, total[tf], km, total[km])
			}
		}
	}
	if total["tf q=2"] <= total["tf q=3"] {
		t.Errorf("q=2 (%.0f) should be slower than q=3 (%.0f)", total["tf q=2"], total["tf q=3"])
	}
}

func TestFigure4Shape(t *testing.T) {
	tab := Figure4(tinyScale())
	for _, r := range tab.Rows {
		lo, hi := pctVal(t, r[3]), pctVal(t, r[1])
		if lo > hi+1 { // accuracy at 40% noise should not exceed accuracy at 20%
			t.Errorf("%s: accuracy rose with noise (%.1f → %.1f)", r[0], hi, lo)
		}
		if lo < 60 {
			t.Errorf("%s: accuracy collapsed at 40%% noise: %.1f%%", r[0], lo)
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	tab := Figure5(tinyScale())
	clean := rowByName(t, tab, "CleanDB")
	spark := rowByName(t, tab, "SparkSQL")
	bd := rowByName(t, tab, "BigDansing")

	cleanSep, cleanComb := parseTicks(t, clean[4]), parseTicks(t, clean[5])
	if cleanComb >= cleanSep {
		t.Errorf("CleanDB combined (%.0f) should beat separate sum (%.0f)", cleanComb, cleanSep)
	}
	sparkSep, sparkComb := parseTicks(t, spark[4]), parseTicks(t, spark[5])
	if sparkComb <= sparkSep {
		t.Errorf("SparkSQL combined (%.0f) should exceed separate sum (%.0f)", sparkComb, sparkSep)
	}
	if bd[1] != "n/a" {
		t.Errorf("BigDansing FD1 should be n/a (prefix unsupported), got %s", bd[1])
	}
	// CleanDB wins each standalone op against SparkSQL.
	for col := 1; col <= 3; col++ {
		if parseTicks(t, clean[col]) >= parseTicks(t, spark[col]) {
			t.Errorf("CleanDB col %d (%s) should beat SparkSQL (%s)", col, clean[col], spark[col])
		}
	}
}

func TestTable4Shape(t *testing.T) {
	tab := Table4(tinyScale())
	get := func(name string) float64 {
		r := rowByName(t, tab, name)
		f, err := strconv.ParseFloat(strings.TrimSuffix(r[1], "x"), 64)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	two := get("Split date & Fill values (two steps)")
	one := get("Split date & Fill values (one step)")
	if one >= two {
		t.Errorf("fused pass (%.2fx) must beat two passes (%.2fx)", one, two)
	}
	if two < 1.3 {
		t.Errorf("two passes should cost noticeably more than the plain query: %.2fx", two)
	}
}

func TestFigure6Shape(t *testing.T) {
	csv, colbin := Figure6(tinyScale())
	for _, r := range csv.Rows {
		bd, ss, cdb := parseTicks(t, r[2]), parseTicks(t, r[3]), parseTicks(t, r[4])
		if cdb >= ss {
			t.Errorf("SF %s: CleanDB (%.0f) should beat SparkSQL (%.0f)", r[0], cdb, ss)
		}
		if ss >= bd {
			t.Errorf("SF %s: SparkSQL (%.0f) should beat BigDansing (%.0f)", r[0], ss, bd)
		}
	}
	for _, r := range colbin.Rows {
		ss, cdb := parseTicks(t, r[2]), parseTicks(t, r[3])
		if cdb >= ss {
			t.Errorf("colbin SF %s: CleanDB (%.0f) should beat SparkSQL (%.0f)", r[0], cdb, ss)
		}
	}
	if len(colbin.Columns) != 4 {
		t.Error("BigDansing must be absent from the colbin table (CSV only)")
	}
}

func TestTable5Shape(t *testing.T) {
	tab := Table5(tinyScale())
	for _, r := range tab.Rows {
		if r[2] == DNF {
			t.Errorf("SF %s: CleanDB must terminate", r[0])
		}
		if r[3] != DNF {
			t.Errorf("SF %s: SparkSQL must be DNF, got %s", r[0], r[3])
		}
		if r[4] != DNF {
			t.Errorf("SF %s: BigDansing must be DNF, got %s", r[0], r[4])
		}
	}
}

func TestTableR1Shape(t *testing.T) {
	tab := TableR1(tinyScale())
	for _, r := range tab.Rows {
		if r[2] == "0" || r[2] == "-1" {
			t.Errorf("SF %s: expected ψ violations, got %s", r[0], r[2])
		}
		if r[3] == DNF {
			t.Errorf("SF %s: CleanDB repair must terminate", r[0])
		}
		if strings.Contains(r[3], "left") {
			t.Errorf("SF %s: CleanDB repair must converge, got %s", r[0], r[3])
		}
	}
}

func TestFigure7Shape(t *testing.T) {
	small, large := Figure7(tinyScale())
	for _, tab := range []*Table{small, large} {
		for _, r := range tab.Rows {
			nested := parseTicks(t, r[1]) // JSON
			flat := parseTicks(t, r[3])   // CSV_flat
			if nested >= flat {
				t.Errorf("%s %s: nested (%.0f) should beat flattened (%.0f)", tab.ID, r[0], nested, flat)
			}
		}
		clean := rowByName(t, tab, "CleanDB")
		spark := rowByName(t, tab, "SparkSQL")
		for col := 1; col <= 4; col++ {
			if parseTicks(t, clean[col]) >= parseTicks(t, spark[col]) {
				t.Errorf("%s col %d: CleanDB (%s) should beat SparkSQL (%s)", tab.ID, col, clean[col], spark[col])
			}
		}
	}
}

func TestFigure8aShape(t *testing.T) {
	tab := Figure8a(tinyScale())
	clean := rowByName(t, tab, "CleanDB")
	for _, other := range []string{"BigDansing", "SparkSQL"} {
		o := rowByName(t, tab, other)
		for col := 1; col <= 2; col++ {
			if parseTicks(t, clean[col]) >= parseTicks(t, o[col]) {
				t.Errorf("col %d: CleanDB (%s) should beat %s (%s)", col, clean[col], other, o[col])
			}
		}
	}
}

func TestFigure8bShape(t *testing.T) {
	tab := Figure8b(tinyScale())
	clean := rowByName(t, tab, "CleanDB")
	spark := rowByName(t, tab, "SparkSQL")
	if clean[1] == DNF || clean[2] == DNF {
		t.Errorf("CleanDB must finish both MAG subsets: %v", clean)
	}
	if spark[1] == DNF {
		t.Errorf("SparkSQL must finish the 2014 subset, got DNF")
	}
	if spark[2] != DNF {
		t.Errorf("SparkSQL must be DNF on the full MAG, got %s", spark[2])
	}
}

func TestAblationShapes(t *testing.T) {
	s := tinyScale()

	a1 := AblationSkewShuffle(s)
	agg := parseTicks(t, rowByName(t, a1, "aggregateByKey (CleanDB)")[1])
	srt := parseTicks(t, rowByName(t, a1, "sort shuffle (SparkSQL)")[1])
	hsh := parseTicks(t, rowByName(t, a1, "hash shuffle (BigDansing)")[1])
	if !(agg < srt && srt < hsh) {
		t.Errorf("A1 ordering wrong: agg=%.0f sort=%.0f hash=%.0f", agg, srt, hsh)
	}

	a2 := AblationThetaJoin(s)
	if rowByName(t, a2, "M-Bucket + filter pushdown (CleanDB)")[1] != "ok" {
		t.Error("A2: pushed-down M-Bucket must finish")
	}
	if rowByName(t, a2, "cartesian + filter (SparkSQL)")[1] != DNF {
		t.Error("A2: cartesian must be DNF")
	}
	if rowByName(t, a2, "min/max blocks (BigDansing)")[1] != DNF {
		t.Error("A2: min/max must be DNF")
	}

	a3 := AblationNestCoalescing(s)
	uni := parseTicks(t, a3.Rows[0][1])
	sep := parseTicks(t, a3.Rows[1][1])
	if uni >= sep {
		t.Errorf("A3: unified (%.0f) should beat standalone (%.0f)", uni, sep)
	}

	a4 := AblationNormalization(s)
	pushed := parseTicks(t, a4.Rows[0][1])
	naive := parseTicks(t, a4.Rows[1][1])
	if pushed >= naive {
		t.Errorf("A4: pushdown (%.0f) should beat naive (%.0f)", pushed, naive)
	}

	a5 := AblationBlocking(s)
	var nonePairs, exactPairs string
	for _, r := range a5.Rows {
		switch r[0] {
		case "none (single block)":
			nonePairs = r[2]
		case "exact (journal,title)":
			exactPairs = r[2]
		}
	}
	if nonePairs != exactPairs {
		t.Errorf("A5: all blockings must find the same pairs: none=%s exact=%s", nonePairs, exactPairs)
	}

	a6 := AblationNormalizationRules()
	fired := 0
	for _, r := range a6.Rows {
		if r[1] != "0" {
			fired++
		}
	}
	if fired < 4 {
		t.Errorf("A6: expected ≥4 rules to fire, got %d:\n%s", fired, a6)
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{ID: "X", Title: "T", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Note("note %d", 1)
	out := tab.String()
	for _, want := range []string{"X — T", "a", "bb", "note: note 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in short mode")
	}
	tables := All(tinyScale())
	if len(tables) != 13 {
		t.Fatalf("All should produce 13 tables, got %d", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Errorf("%s has no rows", tab.ID)
		}
	}
}
