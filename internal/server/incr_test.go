package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"cleandb"
	"cleandb/internal/source"
)

// itemsCSV is a small numeric source for the incremental endpoint tests:
// the DENIAL below pairs rows by price, so every append changes the answer.
const itemsCSV = `id,price
1,10
2,20
3,30
4,40
5,50
6,60
7,70
8,80
`

const itemsQuery = `SELECT * FROM items t1
DENIAL(t2, t1.price < t2.price)`

// incrServerPair mounts a server over a view-cached DB holding the items
// source.
func incrServerPair(t *testing.T) (*cleandb.DB, string) {
	t.Helper()
	db := cleandb.Open(cleandb.WithWorkers(2), cleandb.WithViewCache(4))
	db.RegisterSource("items", source.CSVBytes([]byte(itemsCSV)))
	_, ts := newTestServer(t, db, Config{})
	return db, ts.URL
}

// envelope runs the query through the JSON-envelope mode and decodes it.
func envelope(t *testing.T, base, query string) queryEnvelope {
	t.Helper()
	resp, err := http.Post(base+"/v1/query?include=repairs", "text/plain", strings.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	var env queryEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	return env
}

// appendRows POSTs a payload to the append endpoint and returns the response.
func appendRows(t *testing.T, base, name, contentType, payload string) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/v1/sources/"+name+"/rows", contentType, strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestAppendRowsEndpoint(t *testing.T) {
	_, base := incrServerPair(t)

	// Cold, then exact: the first execution misses the view cache, the
	// repeat is answered verbatim.
	if env := envelope(t, base, itemsQuery); env.ViewHit != "" {
		t.Fatalf("first execution view_hit = %q, want cold", env.ViewHit)
	}
	warm := envelope(t, base, itemsQuery)
	if warm.ViewHit != "exact" {
		t.Fatalf("repeat view_hit = %q, want exact", warm.ViewHit)
	}

	// Append two rows over the wire and check the refreshed description.
	resp := appendRows(t, base, "items", "text/csv", "9,90\n10,100\n")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status %d", resp.StatusCode)
	}
	var src sourceJSON
	if err := json.NewDecoder(resp.Body).Decode(&src); err != nil {
		t.Fatal(err)
	}
	if src.DeltaEpoch != 1 || src.Appends != 1 || src.AppendedRows != 2 {
		t.Fatalf("after append: delta_epoch=%d appends=%d appended_rows=%d, want 1/1/2",
			src.DeltaEpoch, src.Appends, src.AppendedRows)
	}
	if src.Rows != 10 {
		t.Fatalf("after append: rows=%d, want 10", src.Rows)
	}

	// The listing carries the same incremental state.
	lresp, err := http.Get(base + "/v1/sources")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var listed []sourceJSON
	if err := json.NewDecoder(lresp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	if len(listed) != 1 || listed[0].DeltaEpoch != 1 || listed[0].AppendedRows != 2 {
		t.Fatalf("listing after append: %+v", listed)
	}

	// The re-query is served as view + delta pass, and matches a cold
	// execution over the full data.
	got := envelope(t, base, itemsQuery)
	if got.ViewHit != "delta" {
		t.Fatalf("post-append view_hit = %q, want delta", got.ViewHit)
	}
	coldDB := cleandb.Open(cleandb.WithWorkers(2))
	coldDB.RegisterSource("items", source.CSVBytes([]byte(itemsCSV+"9,90\n10,100\n")))
	want, err := coldDB.Query(itemsQuery)
	if err != nil {
		t.Fatal(err)
	}
	if got.RowCount != want.RowCount() {
		t.Fatalf("delta answered %d rows, cold %d", got.RowCount, want.RowCount())
	}

	// A JSONL append works against the same CSV source and moves the epoch
	// again.
	jresp := appendRows(t, base, "items", "application/x-ndjson", `{"id":11,"price":110}`+"\n")
	defer jresp.Body.Close()
	if jresp.StatusCode != http.StatusOK {
		t.Fatalf("jsonl append status %d", jresp.StatusCode)
	}
	if err := json.NewDecoder(jresp.Body).Decode(&src); err != nil {
		t.Fatal(err)
	}
	if src.DeltaEpoch != 2 || src.Appends != 2 || src.AppendedRows != 3 {
		t.Fatalf("after jsonl append: delta_epoch=%d appends=%d appended_rows=%d, want 2/2/3",
			src.DeltaEpoch, src.Appends, src.AppendedRows)
	}
}

func TestAppendRowsErrors(t *testing.T) {
	_, base := incrServerPair(t)

	for _, tc := range []struct {
		name, source, contentType, payload string
		want                               int
	}{
		{"unknown source", "nosuch", "text/csv", "1,2\n", http.StatusNotFound},
		{"unsupported content type", "items", "application/xml", "<r/>", http.StatusUnsupportedMediaType},
		{"empty payload", "items", "text/csv", "", http.StatusBadRequest},
		{"malformed jsonl", "items", "application/x-ndjson", "{not json}\n", http.StatusBadRequest},
	} {
		resp := appendRows(t, base, tc.source, tc.contentType, tc.payload)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

func TestViewCacheMetricsAndTrailer(t *testing.T) {
	_, base := incrServerPair(t)

	envelope(t, base, itemsQuery) // cold (miss)
	envelope(t, base, itemsQuery) // exact
	resp := appendRows(t, base, "items", "text/csv", "9,90\n")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status %d", resp.StatusCode)
	}
	envelope(t, base, itemsQuery) // delta

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"cleandb_view_cache_hits_total 1",
		"cleandb_view_cache_delta_hits_total 1",
		"cleandb_view_cache_misses_total 1",
		"cleandb_view_cache_entries 1",
		`cleandb_source_appends_total{source="items"} 1`,
		`cleandb_source_appended_rows_total{source="items"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The streaming path reports the view outcome as a trailer. The view was
	// just refreshed by the delta pass, so this execution is an exact hit.
	sresp, err := http.Post(base+"/v1/query", "text/plain", strings.NewReader(itemsQuery))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if _, err := countLines(sresp.Body); err != nil {
		t.Fatal(err)
	}
	if hit := sresp.Trailer.Get(trailerViewHit); hit != "exact" {
		t.Fatalf("streaming trailer %s = %q, want exact", trailerViewHit, hit)
	}
}
