package source

import (
	"context"
	"sync/atomic"

	"cleandb/internal/data"
	"cleandb/internal/types"
)

// BatchScanner is the optional columnar capability of a Source: scan the
// input directly into column batches, skipping the boxed row form entirely.
// Colbin implements it natively — its chunks are already columns, so the
// row transpose Scan performs is pure waste. Text formats go through
// ScanIntoBatches, which converts their row partitions in parallel.
type BatchScanner interface {
	// ScanBatches parses the source into at most parts ordered batches
	// sharing one dictionary. Row i of the concatenated batches equals row
	// i of the concatenated Scan partitions. A nil batch slice with a nil
	// error means the source cannot batch (the caller falls back to Scan).
	ScanBatches(ctx context.Context, parts int) ([]*data.ColumnBatch, error)
}

// ScanIntoBatches scans a source in columnar form. It prefers the source's
// native BatchScanner; otherwise it scans rows and converts each partition
// to a batch on parallel goroutines, merging the per-partition dictionaries
// into one per-source dictionary.
//
// It returns batches when the source could batch, and rows when the row
// form exists anyway (text formats — callers keep them so nothing is
// re-materialized) or when batching is impossible (heterogeneous records).
// At least one of batches and rows is non-nil on success.
func ScanIntoBatches(ctx context.Context, s Source, parts int) ([]*data.ColumnBatch, [][]types.Value, error) {
	if bs, ok := s.(BatchScanner); ok {
		batches, err := bs.ScanBatches(ctx, parts)
		if err != nil {
			return nil, nil, err
		}
		if batches != nil {
			return batches, nil, nil
		}
	}
	rows, err := s.Scan(ctx, parts)
	if err != nil {
		return nil, nil, err
	}
	batches, err := RowsToBatches(ctx, rows, parts)
	if err != nil {
		return nil, nil, err
	}
	return batches, rows, nil
}

// RowsToBatches converts row partitions to batches: per-partition
// dictionaries are built lock-free in parallel, then remapped into one
// shared per-source dictionary with one interning per distinct string. It
// returns nil (no error) when any partition cannot batch — rows that are
// not records sharing one schema stay rows.
func RowsToBatches(ctx context.Context, parts [][]types.Value, width int) ([]*data.ColumnBatch, error) {
	if len(parts) == 0 {
		return nil, nil
	}
	shared := data.NewDict()
	batches := make([]*data.ColumnBatch, len(parts))
	var failed atomic.Bool
	err := runParallel(ctx, len(parts), width, func(i int) error {
		b := data.BatchFromRows(parts[i], data.NewDict())
		if b == nil {
			failed.Store(true)
			return nil
		}
		b.RemapDict(shared)
		batches[i] = b
		return nil
	})
	if err != nil {
		return nil, err
	}
	if failed.Load() {
		return nil, nil
	}
	return batches, nil
}

// ScanBatches implements BatchScanner: column chunks decode concurrently
// straight into typed vectors (string chunks remap their on-disk
// dictionaries into the per-source dictionary), then partitions are
// zero-copy slices of the decoded columns — no transpose, no boxing.
func (s *Colbin) ScanBatches(ctx context.Context, parts int) ([]*data.ColumnBatch, error) {
	if parts < 1 {
		parts = 1
	}
	info, err := s.index()
	if err != nil {
		return nil, err
	}
	dict := data.NewDict()
	schema := types.NewSchema(info.Names...)
	if info.Rows == 0 {
		return []*data.ColumnBatch{{Schema: schema, Dict: dict}}, nil
	}
	ncols := len(info.Names)
	cols := make([]data.Column, ncols)
	err = runParallel(ctx, ncols, parts, func(c int) error {
		col, err := info.DecodeColumnVec(c, dict)
		if err != nil {
			return err
		}
		cols[c] = col
		return nil
	})
	if err != nil {
		return nil, err
	}
	full := &data.ColumnBatch{Schema: schema, Dict: dict, Cols: cols, N: info.Rows}
	// Same row ranges as Scan, so both forms partition identically.
	per := (info.Rows + parts - 1) / parts
	nparts := (info.Rows + per - 1) / per
	out := make([]*data.ColumnBatch, nparts)
	for p := range out {
		lo := p * per
		hi := lo + per
		if hi > info.Rows {
			hi = info.Rows
		}
		out[p] = full.Slice(lo, hi)
	}
	return out, nil
}
