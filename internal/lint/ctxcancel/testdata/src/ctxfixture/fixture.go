// Package ctxfixture exercises the ctxcancel analyzer against the real
// engine context and dataset types.
package ctxfixture

import (
	"context"

	"cleandb/internal/engine"
)

// uncheckedNest can reach a cancellable context but the pair nest never
// polls it: the outer loop is flagged.
func uncheckedNest(ctx context.Context, parts [][]int) int {
	_ = ctx
	n := 0
	for _, p := range parts { // want `no reachable cancellation check`
		for range p {
			n++
		}
	}
	return n
}

// amortizedCheck polls ctx.Err() every so often, the engine join pattern.
func amortizedCheck(ctx context.Context, parts [][]int) int {
	n, since := 0, 0
	for _, p := range parts {
		if since++; since >= 1024 {
			since = 0
			if ctx.Err() != nil {
				return n
			}
		}
		for range p {
			n++
		}
	}
	return n
}

// engineNest reaches the job context through a Dataset and never polls:
// flagged.
func engineNest(d *engine.Dataset) int {
	n := 0
	for _, part := range d.Partitions() { // want `no reachable cancellation check`
		for range part {
			n++
		}
	}
	return n
}

// engineChecked polls the engine context's Err inside the nest.
func engineChecked(d *engine.Dataset) int {
	n := 0
	for _, part := range d.Partitions() {
		for range part {
			if d.Context().Err() != nil {
				return n
			}
			n++
		}
	}
	return n
}

// noContext has no cancellable context anywhere in scope; a pure helper
// nest is the caller's responsibility, not this function's.
func noContext(parts [][]int) int {
	n := 0
	for _, p := range parts {
		for range p {
			n++
		}
	}
	return n
}

// singleLoop is not a nest: the partition driver polls between items.
func singleLoop(ctx context.Context, rows []int) int {
	_ = ctx
	n := 0
	for range rows {
		n++
	}
	return n
}
