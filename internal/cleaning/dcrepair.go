package cleaning

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"cleandb/internal/engine"
	"cleandb/internal/types"
)

// This file grows DC checking into a repair subsystem: violations detected by
// DCCheck are *healed* by relaxing the violated inequality predicate, after
// "Cleaning Denial Constraint Violations through Relaxation" (Giannakopoulou
// et al., 2020). The constraint template is the paper's rule ψ shape:
//
//	¬( filter(t1) ∧ t1.order OP_band t2.order ∧ t1.repair OP_rep t2.repair )
//
// The order attribute (e.g. price) is held fixed; the repair attribute (e.g.
// discount) is relaxed. Violations that share a tuple interact — repairing
// one pair can re-violate another — so the subsystem clusters violating pairs
// by transitive closure (the same union-find machinery duplicate clustering
// uses), derives per-tuple repair intervals from the partners' values, and
// solves each cluster independently, in parallel on the engine worker pool,
// for the value assignment with minimum total L1 displacement.

// DCRepairConfig parameterizes denial-constraint repair. Check describes the
// detection side (DCCheck); the remaining fields give repair the declarative
// structure a black-box Pred cannot: which attribute is relaxed and which
// comparison between t1 and t2 is the violated one.
type DCRepairConfig struct {
	// Check detects violating pairs. Check.Band doubles as the order
	// attribute that repair holds fixed, and Check.BandOp as its direction.
	Check DCConfig
	// RepairAttr reads the numeric attribute being relaxed.
	RepairAttr func(types.Value) float64
	// RepairCol is the column rewritten with repaired values.
	RepairCol string
	// RepairOp is the violated comparison t1.repair OP t2.repair: one of
	// "<", "<=", ">", ">=". Repair enforces its complement on every pair.
	RepairOp string
	// MinGap separates repaired values when the complement is strict
	// (RepairOp ">=" or "<="); ignored otherwise. Default 1e-9.
	MinGap float64
	// MaxRounds bounds the repair→re-check fixpoint loop; repairing one
	// cluster can surface new violations against previously clean tuples,
	// which the next round absorbs into larger clusters. Default 8.
	MaxRounds int
	// InitialPairs optionally seeds round 1 with violations already computed
	// elsewhere (e.g. by an executed query plan), skipping the first DCCheck.
	InitialPairs [][2]types.Value
}

// RepairEntry reports one repaired value.
type RepairEntry struct {
	// Key is the tuple's canonical key before repair.
	Key string
	// Old and New are the repair attribute's values before and after.
	Old, New float64
	// Lo and Hi bound the tuple's repair interval: the value range that
	// would satisfy every one of its violated pairs if only this tuple
	// moved (±Inf when unbounded on that side). The chosen New may fall
	// outside the interval when the cluster solve moves partners too.
	Lo, Hi float64
	// Round is the fixpoint round (1-based) that produced the repair.
	Round int
}

// RepairResult is a completed denial-constraint repair.
type RepairResult struct {
	// Repaired is the healed dataset.
	Repaired *engine.Dataset
	// Rounds is the number of repair rounds executed.
	Rounds int
	// Violations counts the violating pairs found in round 1.
	Violations int64
	// Changed counts values rewritten across all rounds.
	Changed int64
	// Clusters counts the violation clusters solved across all rounds.
	Clusters int
	// Remaining counts violating pairs left after the final round (0 on a
	// converged repair).
	Remaining int64
	// Entries lists every value change, in deterministic order.
	Entries []RepairEntry
}

// repairEntrySchema carries per-cluster solver output through the engine.
var repairEntrySchema = types.NewSchema("key", "old", "new", "lo", "hi")

// RepairDC heals the denial constraint by relaxation: detect violating pairs,
// cluster interacting violations, solve each cluster for minimum-displacement
// repair values, rewrite the repair column, and iterate until a re-check
// finds nothing (or MaxRounds is hit). It propagates ErrBudgetExceeded from
// the detection joins.
func RepairDC(ds *engine.Dataset, cfg DCRepairConfig) (*RepairResult, error) {
	if err := validateRepairCfg(&cfg); err != nil {
		return nil, err
	}
	res := &RepairResult{Repaired: ds}
	var pairs [][2]types.Value
	var dirty, touched map[string]bool
	for round := 1; round <= cfg.MaxRounds; round++ {
		if err := ds.Context().Err(); err != nil {
			return nil, err
		}
		var err error
		if round == 1 {
			pairs, err = violatingPairs(res.Repaired, cfg, round)
		} else {
			// A pair's violation status depends only on its members' values,
			// so pairs untouched by the previous round's rewrites carry over
			// verbatim and only pairs involving a rewritten row need
			// re-detection — the re-check costs O(delta), not O(n²).
			pairs, err = recheckPairs(res.Repaired, pairs, dirty, touched, cfg)
		}
		if err != nil {
			return nil, err
		}
		if round == 1 {
			res.Violations = int64(len(pairs))
		}
		if len(pairs) == 0 {
			res.Remaining = 0
			return res, nil
		}
		res.Rounds = round
		repaired, entries, newKeys, clusters := repairRound(res.Repaired, pairs, cfg, round)
		res.Repaired = repaired
		res.Entries = append(res.Entries, entries...)
		res.Changed += int64(len(entries))
		res.Clusters += clusters
		if len(entries) == 0 {
			// The solver could not move anything (e.g. an unsatisfiable
			// constraint on order ties); report the leftovers instead of
			// spinning until MaxRounds.
			res.Remaining = int64(len(pairs))
			return res, nil
		}
		dirty = make(map[string]bool, 2*len(entries))
		touched = make(map[string]bool, len(entries))
		for i, e := range entries {
			dirty[e.Key] = true
			dirty[newKeys[i]] = true
			touched[newKeys[i]] = true
		}
	}
	leftover, err := DCCheck(res.Repaired, cfg.Check)
	if err != nil {
		return nil, err
	}
	res.Remaining = leftover.Count()
	return res, nil
}

func validateRepairCfg(cfg *DCRepairConfig) error {
	if cfg.RepairAttr == nil {
		return fmt.Errorf("cleaning: repair requires RepairAttr")
	}
	if cfg.RepairCol == "" {
		return fmt.Errorf("cleaning: repair requires RepairCol")
	}
	switch cfg.RepairOp {
	case "<", "<=", ">", ">=":
	default:
		return fmt.Errorf("cleaning: bad RepairOp %q", cfg.RepairOp)
	}
	if cfg.Check.Band == nil {
		return fmt.Errorf("cleaning: repair requires Check.Band as the order attribute")
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 8
	}
	if cfg.MinGap <= 0 {
		cfg.MinGap = 1e-9
	}
	return nil
}

// violatingPairs returns the round's violations as (t1, t2) tuples.
func violatingPairs(ds *engine.Dataset, cfg DCRepairConfig, round int) ([][2]types.Value, error) {
	if round == 1 && cfg.InitialPairs != nil {
		return cfg.InitialPairs, nil
	}
	found, err := DCCheck(ds, cfg.Check)
	if err != nil {
		return nil, err
	}
	rows := found.Collect()
	out := make([][2]types.Value, len(rows))
	for i, r := range rows {
		out[i] = [2]types.Value{r.Field("left"), r.Field("right")}
	}
	return out, nil
}

// recheckPairs computes the next round's violating pairs from the previous
// round's: pairs whose members were both untouched by the round's rewrites
// keep their violation status, so only pairs involving a rewritten row
// (touched: the rewritten rows' new keys) are freshly enumerated against the
// whole dataset. dirty holds both the old and new keys of rewritten rows;
// ApplyValueRepairs rewrites every instance sharing an old key, so a
// previous pair with neither key dirty is guaranteed to pair two unchanged
// rows.
func recheckPairs(ds *engine.Dataset, prev [][2]types.Value, dirty, touched map[string]bool, cfg DCRepairConfig) ([][2]types.Value, error) {
	var carried [][2]types.Value
	for _, p := range prev {
		if !dirty[types.Key(p[0])] && !dirty[types.Key(p[1])] {
			carried = append(carried, p)
		}
	}
	fresh, err := DeltaDCPairs(ds, func(_ int, v types.Value) bool { return touched[types.Key(v)] }, cfg.Check)
	if err != nil {
		return nil, err
	}
	return append(carried, fresh...), nil
}

// repairRound clusters the violating pairs, solves every cluster in parallel
// on the engine worker pool, and applies the resulting value repairs. Besides
// the entries it returns, aligned with them, the canonical keys of the
// rewritten rows *after* the rewrite — the fresh set the next round's
// delta re-check enumerates against.
func repairRound(ds *engine.Dataset, pairs [][2]types.Value, cfg DCRepairConfig, round int) (*engine.Dataset, []RepairEntry, []string, int) {
	uf := NewUnionFind()
	byKey := map[string]types.Value{}
	intervals := repairIntervals(pairs, cfg)
	for _, p := range pairs {
		k1, k2 := types.Key(p[0]), types.Key(p[1])
		byKey[k1], byKey[k2] = p[0], p[1]
		uf.Union(k1, k2)
	}

	// One record per cluster: the member tuples as a list value. Solving runs
	// as an engine stage so cluster skew (one giant cluster) is charged to
	// SimTicks like any other straggler.
	ctx := ds.Context()
	groups := uf.Groups()
	clusterRows := make([]types.Value, len(groups))
	for i, members := range groups {
		if ctx.Err() != nil {
			break // cancelled: the solve stage below aborts anyway
		}
		vals := make([]types.Value, len(members))
		for j, k := range members {
			vals[j] = byKey[k]
		}
		clusterRows[i] = types.ListOf(vals)
	}
	clusters := engine.FromValues(ctx, clusterRows)
	solved := clusters.FlatMapW("dcrepair:solve", func(cluster types.Value) []types.Value {
		members := cluster.List()
		fits := solveCluster(members, cfg, intervals)
		ctx.Metrics().AddComparisons(solveCost(len(members)))
		var out []types.Value
		for i, m := range members {
			old := cfg.RepairAttr(m)
			if fits[i] == old {
				continue
			}
			lo, hi := math.Inf(-1), math.Inf(1)
			if iv, ok := intervals[types.Key(m)]; ok {
				lo, hi = iv.lo, iv.hi
			}
			out = append(out, types.NewRecord(repairEntrySchema, []types.Value{
				types.String(types.Key(m)), types.Float(old), types.Float(fits[i]),
				types.Float(lo), types.Float(hi),
			}))
		}
		return out
	}, func(cluster types.Value) int64 {
		return solveCost(len(cluster.List()))
	})

	rows := solved.Collect()
	entries := make([]RepairEntry, len(rows))
	newValues := make(map[string]float64, len(rows))
	for i, r := range rows {
		entries[i] = RepairEntry{
			Key: r.Field("key").Str(),
			Old: r.Field("old").Float(), New: r.Field("new").Float(),
			Lo: r.Field("lo").Float(), Hi: r.Field("hi").Float(),
			Round: round,
		}
		newValues[entries[i].Key] = entries[i].New
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	newKeys := make([]string, len(entries))
	for i, e := range entries {
		w, _ := rewriteValueCol(byKey[e.Key], cfg.RepairCol, e.New)
		newKeys[i] = types.Key(w)
	}
	repaired, _ := ApplyValueRepairs(ds, cfg.RepairCol, newValues)
	return repaired, entries, newKeys, len(groups)
}

// solveCost models the per-cluster solver work (sort + pool passes): n·log n.
func solveCost(n int) int64 {
	m := int64(n)
	if m <= 1 {
		return 1
	}
	cost := m
	for b := m; b > 1; b >>= 1 {
		cost += m
	}
	return cost
}

// interval is a per-tuple repair interval in original value space.
type interval struct{ lo, hi float64 }

// repairIntervals derives, for every tuple in a violating pair, the value
// range that would satisfy all of its violated pairs if only that tuple were
// repaired — the relaxation intervals the cluster solver refines.
func repairIntervals(pairs [][2]types.Value, cfg DCRepairConfig) map[string]interval {
	out := map[string]interval{}
	get := func(k string) interval {
		if iv, ok := out[k]; ok {
			return iv
		}
		return interval{lo: math.Inf(-1), hi: math.Inf(1)}
	}
	gap := 0.0
	if cfg.RepairOp == ">=" || cfg.RepairOp == "<=" {
		gap = cfg.MinGap
	}
	for _, p := range pairs {
		k1, k2 := types.Key(p[0]), types.Key(p[1])
		r1, r2 := cfg.RepairAttr(p[0]), cfg.RepairAttr(p[1])
		iv1, iv2 := get(k1), get(k2)
		switch cfg.RepairOp {
		case ">", ">=": // complement: r1 ≤ r2 (− gap when strict)
			iv1.hi = math.Min(iv1.hi, r2-gap)
			iv2.lo = math.Max(iv2.lo, r1+gap)
		default: // "<", "<=": complement: r1 ≥ r2 (+ gap when strict)
			iv1.lo = math.Max(iv1.lo, r2+gap)
			iv2.hi = math.Min(iv2.hi, r1-gap)
		}
		out[k1], out[k2] = iv1, iv2
	}
	return out
}

// solveCluster assigns repaired values to the cluster members, picking the
// lower-displacement of two relaxations:
//
//   - chain fit: members ordered by the fixed order attribute, repair values
//     made monotone along the chain with an L1-optimal isotonic fit
//     (pool-adjacent-violators with median blocks). Monotonicity implies the
//     complement of RepairOp for every ordered pair, so no intra-cluster
//     violation survives — but pairs the DC left free get constrained too.
//   - clamp fit: only the tuples that appear in the t1 role move, each
//     clamped into its repair interval (and below any later clamped value).
//     This is the cheap repair for star-shaped clusters — a few filtered
//     tuples violating against many partners — where pooling the whole
//     chain would rewrite thousands of values.
func solveCluster(members []types.Value, cfg DCRepairConfig, intervals map[string]interval) []float64 {
	chain := chainFit(members, cfg)
	clamp := clampFit(members, cfg, intervals)
	if clamp == nil || displacement(members, cfg, chain) <= displacement(members, cfg, clamp) {
		return chain
	}
	return clamp
}

// displacement sums |fit − old| over the cluster.
func displacement(members []types.Value, cfg DCRepairConfig, fits []float64) float64 {
	var d float64
	for i, m := range members {
		d += math.Abs(fits[i] - cfg.RepairAttr(m))
	}
	return d
}

// orderedIdx returns member indices sorted so the t1 role (the side the
// band predicate puts first) comes first, ties broken by canonical key.
func orderedIdx(members []types.Value, cfg DCRepairConfig) []int {
	idx := make([]int, len(members))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		oa, ob := cfg.Check.Band(members[idx[a]]), cfg.Check.Band(members[idx[b]])
		if oa != ob {
			return oa < ob
		}
		return types.Key(members[idx[a]]) < types.Key(members[idx[b]])
	})
	if cfg.Check.BandOp == ">" || cfg.Check.BandOp == ">=" {
		for a, b := 0, len(idx)-1; a < b; a, b = a+1, b-1 {
			idx[a], idx[b] = idx[b], idx[a]
		}
	}
	return idx
}

// repairDirection normalizes the repair comparison: after multiplying values
// by sign, the requirement is always non-decreasing along the chain, with
// gap-separation when the complement is strict.
func repairDirection(cfg DCRepairConfig) (sign, gap float64) {
	sign = 1.0
	if cfg.RepairOp == "<" || cfg.RepairOp == "<=" {
		sign = -1.0
	}
	if cfg.RepairOp == ">=" || cfg.RepairOp == "<=" {
		gap = cfg.MinGap
	}
	return sign, gap
}

// chainFit is the isotonic-chain relaxation (see solveCluster).
func chainFit(members []types.Value, cfg DCRepairConfig) []float64 {
	idx := orderedIdx(members, cfg)
	sign, gap := repairDirection(cfg)

	// Points along the chain. A non-strict band op ("<=") lets order-ties
	// violate in both directions, so ties must repair to one shared value:
	// they are pooled into a single weighted point.
	poolTies := cfg.Check.BandOp == "<=" || cfg.Check.BandOp == ">="
	type point struct {
		members []int // indices into members
		vals    []float64
	}
	var points []point
	for _, mi := range idx {
		o := cfg.Check.Band(members[mi])
		v := sign * cfg.RepairAttr(members[mi])
		if poolTies && len(points) > 0 {
			last := points[len(points)-1].members[0]
			if cfg.Check.Band(members[last]) == o {
				p := &points[len(points)-1]
				p.members = append(p.members, mi)
				p.vals = append(p.vals, v)
				continue
			}
		}
		points = append(points, point{members: []int{mi}, vals: []float64{v}})
	}

	// PAVA with median blocks over the sheared values.
	type block struct {
		vals     []float64
		fit      float64
		from, to int // point index range [from, to)
	}
	var stack []block
	for i, p := range points {
		vals := make([]float64, len(p.vals))
		for j, v := range p.vals {
			vals[j] = v - gap*float64(i)
		}
		b := block{vals: vals, fit: lowerMedian(vals), from: i, to: i + 1}
		for len(stack) > 0 && stack[len(stack)-1].fit > b.fit {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			b.vals = append(top.vals, b.vals...)
			b.fit = lowerMedian(b.vals)
			b.from = top.from
		}
		stack = append(stack, b)
	}

	out := make([]float64, len(members))
	for _, b := range stack {
		for pi := b.from; pi < b.to; pi++ {
			fit := b.fit + gap*float64(pi)
			for _, mi := range points[pi].members {
				out[mi] = sign * fit
			}
		}
	}
	return out
}

// clampFit is the one-sided relaxation (see solveCluster): only tuples with
// a finite repair interval on the constrained side (the t1 roles) move, each
// clamped into its interval and kept consistent with later clamped tuples by
// a running minimum. Returns nil when the shape does not apply (non-strict
// band ops let order-ties violate both ways, which clamping cannot fix).
func clampFit(members []types.Value, cfg DCRepairConfig, intervals map[string]interval) []float64 {
	if cfg.Check.BandOp != "<" && cfg.Check.BandOp != ">" {
		return nil
	}
	idx := orderedIdx(members, cfg)
	sign, gap := repairDirection(cfg)

	out := make([]float64, len(members))
	runmin := math.Inf(1)
	for i := len(idx) - 1; i >= 0; i-- {
		mi := idx[i]
		m := members[mi]
		old := sign * cfg.RepairAttr(m)
		// The constrained-side bound in transformed space: hi for the
		// ascending direction, −lo for the descending one.
		cap := math.Inf(1)
		if iv, ok := intervals[types.Key(m)]; ok {
			if sign > 0 {
				cap = iv.hi
			} else {
				cap = -iv.lo
			}
		}
		if math.IsInf(cap, 1) {
			// Pure t2 role: untouched, and not a bound for earlier tuples
			// (their intervals already account for its original value).
			out[mi] = sign * old
			continue
		}
		fit := math.Min(old, math.Min(cap, runmin-gap))
		runmin = math.Min(runmin, fit)
		out[mi] = sign * fit
	}
	return out
}

// lowerMedian returns the lower median of vs — an L1-optimal block value
// that is always one of the original data values.
func lowerMedian(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	return s[(len(s)-1)/2]
}

// ApplyValueRepairs rewrites the named numeric column using the per-tuple
// repair map (tuple canonical key → new value), returning the repaired
// dataset and the number of records changed. It is the numeric sibling of
// ApplyRepairs.
func ApplyValueRepairs(ds *engine.Dataset, col string, repairs map[string]float64) (*engine.Dataset, int64) {
	var changed atomic.Int64
	out := ds.MapPartitions("dcrepair:apply:"+col, func(_ int, part []types.Value) []types.Value {
		res := make([]types.Value, len(part))
		var local int64
		for i, v := range part {
			repl, ok := repairs[types.Key(v)]
			if !ok {
				res[i] = v
				continue
			}
			w, rewritten := rewriteValueCol(v, col, repl)
			res[i] = w
			if rewritten {
				local++
			}
		}
		changed.Add(local)
		return res
	})
	return out, changed.Load()
}

// rewriteValueCol returns v with the named numeric column replaced — the
// single rewrite rule ApplyValueRepairs applies and repairRound's new-key
// computation must mirror exactly. Non-records and records without the
// column come back unchanged (rewritten=false).
func rewriteValueCol(v types.Value, col string, repl float64) (types.Value, bool) {
	rec := v.Record()
	if rec == nil {
		return v, false
	}
	idx, ok := rec.Schema.Index(col)
	if !ok {
		return v, false
	}
	fields := append([]types.Value(nil), rec.Fields...)
	fields[idx] = types.Float(repl)
	return types.NewRecord(rec.Schema, fields), true
}
