package experiments

import (
	"fmt"
	"time"

	"cleandb/internal/cleaning"
	"cleandb/internal/cluster"
	"cleandb/internal/datagen"
	"cleandb/internal/engine"
	"cleandb/internal/textsim"
	"cleandb/internal/types"
)

// tvConfig is one term-validation configuration of the paper's §8.1: a
// blocking technique with its parameter.
type tvConfig struct {
	label string
	build func(dict []string) cluster.Blocker
}

// tvConfigs are the six configurations of Table 3 / Figures 3 and 4.
func tvConfigs() []tvConfig {
	mk := func(label string, build func(dict []string) cluster.Blocker) tvConfig {
		return tvConfig{label: label, build: build}
	}
	return []tvConfig{
		mk("tf q=2", func([]string) cluster.Blocker { return cluster.TokenFilter{Q: 2} }),
		mk("tf q=3", func([]string) cluster.Blocker { return cluster.TokenFilter{Q: 3} }),
		mk("tf q=4", func([]string) cluster.Blocker { return cluster.TokenFilter{Q: 4} }),
		mk("kmeans k=5", kmeansBuilder(5)),
		mk("kmeans k=10", kmeansBuilder(10)),
		mk("kmeans k=20", kmeansBuilder(20)),
	}
}

// kmeansBuilder obtains k centers from the dictionary, as §8.1 describes.
func kmeansBuilder(k int) func(dict []string) cluster.Blocker {
	return func(dict []string) cluster.Blocker {
		return cluster.KMeans{
			Centers: cluster.SelectCentersFixedStep(dict, k),
			Delta:   0.05,
			Metric:  textsim.MetricLevenshtein,
		}
	}
}

// tvRun is one measured configuration.
type tvRun struct {
	label string
	acc   cleaning.Accuracy
	res   cleaning.TermValidationResult
	wall  time.Duration
}

// runTermValidation executes the six configurations over a DBLP corpus with
// the given noise/edit rates and similarity threshold.
func runTermValidation(s Scale, noise, edit, theta float64) []tvRun {
	data := datagen.GenDBLP(datagen.DBLPConfig{
		Pubs:       s.DBLPPubs,
		AuthorPool: s.AuthorPool,
		NoiseRate:  noise,
		EditRate:   edit,
		Seed:       s.Seed,
	})
	dict := make([]string, len(data.Dictionary))
	for i, d := range data.Dictionary {
		dict[i] = d.Field("term").Str()
	}
	occurrences := datagen.AuthorOccurrences(data.Pubs)

	// Ground truth restricted to dirty names that actually occur.
	present := map[string]struct{}{}
	for _, o := range occurrences {
		present[o.Field("name").Str()] = struct{}{}
	}
	truth := map[string]string{}
	for dirty, clean := range data.Truth {
		if _, ok := present[dirty]; ok {
			truth[dirty] = clean
		}
	}

	var runs []tvRun
	for _, cfg := range tvConfigs() {
		ctx := engine.NewContext(s.Workers)
		ds := engine.FromValues(ctx, occurrences)
		start := time.Now()
		res := cleaning.TermValidate(ds, cleaning.TermValidationConfig{
			Attr:       func(v types.Value) string { return v.Field("name").Str() },
			Dictionary: dict,
			Blocker:    cfg.build(dict),
			Metric:     textsim.MetricLevenshtein,
			Theta:      theta,
			// theta is an explicit experiment parameter (Figure 4 drives it
			// below the default); never fall back to cleaning.DefaultTheta.
			ThetaSet: true,
		})
		wall := time.Since(start)
		runs = append(runs, tvRun{
			label: cfg.label,
			acc:   cleaning.ScoreRepairs(res.Repairs, truth),
			res:   res,
			wall:  wall,
		})
	}
	return runs
}

// Table3 reproduces Table 3: accuracy of term validation per configuration.
func Table3(s Scale) *Table {
	runs := runTermValidation(s, 0.10, 0.20, 0.75)
	t := &Table{
		ID:      "Table 3",
		Title:   "Accuracy of term validation approaches over the DBLP dataset",
		Columns: []string{"Type", "Parameter(s)", "Precision", "Recall", "F-score"},
	}
	for _, r := range runs {
		t.AddRow(r.label, "", pct(r.acc.Precision), pct(r.acc.Recall), pct(r.acc.FScore))
	}
	t.Note("%d author occurrences, %d-name dictionary, 10%% noisy names ×20%% edits, θ=0.75",
		s.DBLPPubs*2, s.AuthorPool)
	t.Note("paper shape: tf precision ≈ 100%%, recall decreasing mildly with q; kmeans recall decreasing with k")
	return t
}

// Figure3 reproduces Figure 3: term-validation runtime split into the
// grouping phase and the similarity phase.
func Figure3(s Scale) *Table {
	runs := runTermValidation(s, 0.10, 0.20, 0.75)
	t := &Table{
		ID:      "Figure 3",
		Title:   "Term validation runtime (grouping vs similarity phase)",
		Columns: []string{"Config", "Grouping", "Similarity", "Total", "Comparisons", "Wall"},
	}
	for _, r := range runs {
		t.AddRow(r.label,
			ticks(r.res.GroupTicks), ticks(r.res.SimTicks),
			ticks(r.res.GroupTicks+r.res.SimTicks),
			fmt.Sprintf("%d", r.res.Comparisons), ms(r.wall))
	}
	t.Note("paper shape: token filtering beats k-means except q=2 (too many small tokens → too many groups)")
	return t
}

// Figure4 reproduces Figure 4: accuracy as noise grows from 20%% to 40%%,
// lowering θ with the noise as the paper does.
func Figure4(s Scale) *Table {
	t := &Table{
		ID:      "Figure 4",
		Title:   "Accuracy of term validation as the noise increases",
		Columns: []string{"Config", "20% noise", "30% noise", "40% noise"},
	}
	noises := []float64{0.20, 0.30, 0.40}
	accs := make(map[string][]float64)
	var order []string
	for _, noise := range noises {
		theta := 0.78 - noise // lower θ as noise increases (paper §8.1)
		runs := runTermValidation(s, 0.10, noise, theta)
		for _, r := range runs {
			if _, ok := accs[r.label]; !ok {
				order = append(order, r.label)
			}
			accs[r.label] = append(accs[r.label], r.acc.FScore)
		}
	}
	for _, label := range order {
		cells := []string{label}
		for _, f := range accs[label] {
			cells = append(cells, pct(f))
		}
		t.AddRow(cells...)
	}
	t.Note("paper shape: accuracy drops slightly with noise; larger q / larger k drop the most")
	return t
}
