// Package locksnapshot enforces the snapshot-per-query discipline around the
// catalog mutexes: a sync.Mutex/RWMutex must not be held across operator
// execution or channel operations. The correct shape — established when the
// catalog went concurrent — is lock, copy the few pointers you need, unlock,
// then execute; holding the lock through a query or a channel send turns
// every registration into a head-of-line blocker (and risks deadlock when
// the channel's consumer needs the same lock).
package locksnapshot

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"cleandb/internal/lint/analysis"
	"cleandb/internal/lint/lintutil"
)

// Analyzer flags blocking work performed while a mutex is held.
var Analyzer = &analysis.Analyzer{
	Name: "locksnapshot",
	Doc: "mutexes must not be held across operator execution or channel ops\n\n" +
		"Between mu.Lock()/mu.RLock() and the matching unlock (including a " +
		"deferred unlock, which holds to function end), the function must " +
		"not send on or receive from channels, select, or call into " +
		"context-taking execution paths (anything accepting a " +
		"context.Context runs operator-scale work). Snapshot under the " +
		"lock, release it, then execute.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		lintutil.FuncScopes(file, func(name string, body *ast.BlockStmt, decl ast.Node) {
			w := &walker{pass: pass}
			w.block(body.List, map[string]bool{})
		})
	}
	return nil, nil
}

type walker struct {
	pass *analysis.Pass
}

// block walks one statement list with the set of held locks (canonical
// receiver text of the mutex). Branch statements fork a copy; the merged
// result keeps a lock held if any branch left it held (conservative).
func (w *walker) block(stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		w.stmt(s, held)
	}
}

func (w *walker) stmt(s ast.Stmt, held map[string]bool) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if mu, locks, ok := lockOp(w.pass.TypesInfo, x.X); ok {
			if locks {
				held[mu] = true
			} else {
				delete(held, mu)
			}
			return
		}
		w.expr(x.X, held)
	case *ast.DeferStmt:
		if mu, locks, ok := lockOp(w.pass.TypesInfo, x.Call); ok && !locks {
			// Deferred unlock: the lock stays held for the remainder of the
			// function — which is exactly the region to police.
			_ = mu
			return
		}
		w.expr(x.Call, held)
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			w.expr(r, held)
		}
		for _, l := range x.Lhs {
			w.expr(l, held)
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.expr(r, held)
		}
	case *ast.IfStmt:
		if x.Init != nil {
			w.stmt(x.Init, held)
		}
		w.expr(x.Cond, held)
		thenHeld, elseHeld := cloneSet(held), cloneSet(held)
		w.block(x.Body.List, thenHeld)
		if x.Else != nil {
			w.stmt(x.Else, elseHeld)
		}
		mergeInto(held, thenHeld, elseHeld)
	case *ast.BlockStmt:
		w.block(x.List, held)
	case *ast.ForStmt:
		if x.Init != nil {
			w.stmt(x.Init, held)
		}
		if x.Cond != nil {
			w.expr(x.Cond, held)
		}
		bodyHeld := cloneSet(held)
		w.block(x.Body.List, bodyHeld)
		if x.Post != nil {
			w.stmt(x.Post, bodyHeld)
		}
		mergeInto(held, bodyHeld)
	case *ast.RangeStmt:
		w.expr(x.X, held)
		if len(held) > 0 {
			if t := w.pass.TypesInfo.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					w.report(x.Pos(), held, "ranging over a channel")
				}
			}
		}
		bodyHeld := cloneSet(held)
		w.block(x.Body.List, bodyHeld)
		mergeInto(held, bodyHeld)
	case *ast.SwitchStmt:
		if x.Init != nil {
			w.stmt(x.Init, held)
		}
		if x.Tag != nil {
			w.expr(x.Tag, held)
		}
		w.caseBodies(x.Body, held)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			w.stmt(x.Init, held)
		}
		w.caseBodies(x.Body, held)
	case *ast.SelectStmt:
		if len(held) > 0 {
			w.report(x.Pos(), held, "select over channels")
		}
		w.caseBodies(x.Body, held)
	case *ast.SendStmt:
		if len(held) > 0 {
			w.report(x.Pos(), held, "channel send")
		}
		w.expr(x.Chan, held)
		w.expr(x.Value, held)
	case *ast.GoStmt:
		// The goroutine runs outside the lock's critical section; its body
		// is a separate scope (FuncScopes visits literals independently).
		for _, a := range x.Call.Args {
			w.expr(a, held)
		}
	case *ast.LabeledStmt:
		w.stmt(x.Stmt, held)
	case *ast.DeclStmt:
		ast.Inspect(x, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if e, ok := n.(*ast.CallExpr); ok {
				w.checkCall(e, held)
			}
			return true
		})
	}
}

func (w *walker) caseBodies(body *ast.BlockStmt, held map[string]bool) {
	var states []map[string]bool
	for _, cs := range body.List {
		var list []ast.Stmt
		switch cc := cs.(type) {
		case *ast.CaseClause:
			list = cc.Body
		case *ast.CommClause:
			list = cc.Body
		}
		st := cloneSet(held)
		w.block(list, st)
		states = append(states, st)
	}
	mergeInto(held, states...)
}

// expr scans an expression for channel receives and offending calls.
func (w *walker) expr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" && len(held) > 0 {
				w.report(x.Pos(), held, "channel receive")
			}
		case *ast.CallExpr:
			w.checkCall(x, held)
		}
		return true
	})
}

// checkCall flags calls that run operator-scale work while a lock is held:
// any call whose static callee takes a context.Context parameter.
func (w *walker) checkCall(call *ast.CallExpr, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	fn := lintutil.Callee(w.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	sig := fn.Signature()
	if sig == nil {
		return
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if lintutil.NamedIs(sig.Params().At(i).Type(), "context", "Context") {
			w.report(call.Pos(), held,
				"call to context-taking "+fn.Name())
			return
		}
	}
}

func (w *walker) report(pos token.Pos, held map[string]bool, what string) {
	names := make([]string, 0, len(held))
	for mu := range held {
		names = append(names, mu)
	}
	sort.Strings(names)
	w.pass.Reportf(pos,
		"%s while %s is held; snapshot under the lock, release it, then do blocking work",
		what, strings.Join(names, ", "))
}

func cloneSet(s map[string]bool) map[string]bool {
	c := make(map[string]bool, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func mergeInto(dst map[string]bool, srcs ...map[string]bool) {
	for _, s := range srcs {
		for k := range s {
			dst[k] = true
		}
	}
}

// lockOp matches mu.Lock()/RLock()/Unlock()/RUnlock() on a sync mutex and
// returns the canonical mutex text and whether the op acquires.
func lockOp(info *types.Info, e ast.Expr) (mu string, locks, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	fn := lintutil.Callee(info, call)
	if fn == nil {
		return "", false, false
	}
	var acquires bool
	switch fn.Name() {
	case "Lock", "RLock":
		acquires = true
	case "Unlock", "RUnlock":
		acquires = false
	default:
		return "", false, false
	}
	if !lintutil.IsMethod(fn, "sync", "Mutex", fn.Name()) &&
		!lintutil.IsMethod(fn, "sync", "RWMutex", fn.Name()) {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	return types.ExprString(sel.X), acquires, true
}
