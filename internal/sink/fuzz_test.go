package sink

import (
	"bytes"
	"context"
	"testing"

	"cleandb/internal/data"
	"cleandb/internal/types"
)

// FuzzSinkRoundTrip is the sink layer's equivalence oracle. The fuzz input
// deterministically derives a row set (stable column kinds, nulls anywhere),
// and for every format and partitioning two properties must hold:
//
//  1. Streamed ≡ materialized: pumping partitions through the sink yields
//     byte-identical output to the sequential data-layer writer on the flat
//     rows — partition-parallel encode must never change the file.
//  2. Write∘Read identity on the lossless format: colbin bytes decode back
//     to the exact rows that were pumped in.
func FuzzSinkRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte("the quick brown fox jumps over the lazy dog"))
	f.Add(bytes.Repeat([]byte{0xff, 0x00}, 64))
	f.Fuzz(func(t *testing.T, in []byte) {
		rows := rowsFromBytes(in)
		flat := make([]types.Value, 0, len(rows))
		for _, r := range rows {
			flat = append(flat, r)
		}
		writers := []struct {
			name string
			mk   func(w *bytes.Buffer) Sink
			ref  func(w *bytes.Buffer) error
		}{
			{"csv", func(w *bytes.Buffer) Sink { return NewCSV(w) }, func(w *bytes.Buffer) error { return data.WriteCSV(w, flat) }},
			{"jsonl", func(w *bytes.Buffer) Sink { return NewJSONL(w) }, func(w *bytes.Buffer) error { return data.WriteJSON(w, flat) }},
			{"colbin", func(w *bytes.Buffer) Sink { return NewColbin(w) }, func(w *bytes.Buffer) error { return data.WriteColbin(w, flat) }},
		}
		for _, wr := range writers {
			var want bytes.Buffer
			if err := wr.ref(&want); err != nil {
				t.Fatalf("%s: reference writer: %v", wr.name, err)
			}
			for _, parts := range []int{1, 2, 3, 8} {
				var got bytes.Buffer
				n, err := Pump(context.Background(), wr.mk(&got), chunk(flat, parts), parts)
				if err != nil {
					t.Fatalf("%s parts=%d: %v", wr.name, parts, err)
				}
				if n != int64(len(flat)) {
					t.Fatalf("%s parts=%d: pumped %d rows, want %d", wr.name, parts, n, len(flat))
				}
				if !bytes.Equal(got.Bytes(), want.Bytes()) {
					t.Fatalf("%s parts=%d: streamed output differs from sequential writer", wr.name, parts)
				}
			}
		}
		// Lossless round trip through colbin.
		var buf bytes.Buffer
		if _, err := Pump(context.Background(), NewColbin(&buf), chunk(flat, 3), 3); err != nil {
			t.Fatal(err)
		}
		back, err := data.ReadColbin(&buf)
		if err != nil {
			t.Fatalf("reading pumped colbin: %v", err)
		}
		if len(back) != len(flat) {
			t.Fatalf("round trip: %d rows, want %d", len(back), len(flat))
		}
		for i := range flat {
			if !types.Equal(back[i], flat[i]) {
				t.Fatalf("round trip row %d: %v != %v", i, back[i], flat[i])
			}
		}
	})
}

// rowsFromBytes derives records from fuzz bytes: three columns with fixed
// kinds (int, string, float), two bytes per cell, a zero first byte marking
// a null. Column kinds are uniform so the colbin round trip is lossless by
// construction.
func rowsFromBytes(in []byte) []types.Value {
	schema := types.NewSchema("i", "s", "f")
	var rows []types.Value
	for off := 0; off+6 <= len(in); off += 6 {
		cell := func(c int) (byte, byte) { return in[off+2*c], in[off+2*c+1] }
		fields := make([]types.Value, 3)
		for c := range fields {
			a, b := cell(c)
			if a == 0 {
				fields[c] = types.Null()
				continue
			}
			switch c {
			case 0:
				fields[c] = types.Int(int64(a)<<8 | int64(b))
			case 1:
				fields[c] = types.String(string([]byte{'s', 'a' + a%26, 'a' + b%26}))
			default:
				fields[c] = types.Float(float64(a) + float64(b)/256)
			}
		}
		rows = append(rows, types.NewRecord(schema, fields))
	}
	return rows
}
