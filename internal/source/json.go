package source

import (
	"bytes"
	"context"
	"sync"

	"cleandb/internal/data"
	"cleandb/internal/types"
)

// JSON is a JSON-lines source (one object per line, nested records
// supported). Lines are independent, so Scan splits the input at line
// boundaries and parses the chunks on parallel goroutines; a shared
// concurrency-safe schema cache preserves the sequential reader's
// schema-sharing across partitions.
//
// Scan records the consumed byte offset and keeps the schema cache, so
// TailScan parses only appended lines — line-locality makes JSON tails
// exact — and appended rows intern their schemas in the same cache as the
// base rows.
type JSON struct {
	src bytesAt

	mu    sync.Mutex
	state *jsonState
}

// jsonState is the scan state a tail parse continues from.
type jsonState struct {
	cache    *data.SchemaCache
	consumed int64 // bytes parsed, the tail high-water mark
	lines    int   // newline count in the consumed prefix, for error positions
}

// NewJSONFile returns a lazy JSON-lines source over a file path.
func NewJSONFile(path string) *JSON { return &JSON{src: bytesAt{path: path}} }

// JSONBytes returns a JSON-lines source over an in-memory buffer.
func JSONBytes(buf []byte) *JSON { return &JSON{src: bytesAt{buf: buf}} }

// Format implements Source.
func (s *JSON) Format() string { return "json" }

// Schema implements Source; JSON objects carry their own field names, so
// the column set is unknowable without parsing.
func (s *JSON) Schema() ([]string, error) { return nil, nil }

// Stats implements Source.
func (s *JSON) Stats() (Stats, error) {
	return Stats{Rows: -1, Bytes: s.src.sizeBytes()}, nil
}

// Scan implements Source by parsing line-boundary chunks in parallel.
func (s *JSON) Scan(ctx context.Context, parts int) ([][]types.Value, error) {
	buf, err := s.src.bytes()
	if err != nil {
		return nil, err
	}
	if parts < 1 {
		parts = 1
	}
	chunks, firstLines := splitLines(buf, parts)
	cache := data.NewSchemaCache()
	out := make([][]types.Value, len(chunks))
	err = runParallel(ctx, len(chunks), parts, func(i int) error {
		rows, err := data.ReadJSONChunk(chunks[i], firstLines[i], cache)
		if err != nil {
			return err
		}
		out[i] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.state = &jsonState{cache: cache, consumed: int64(len(buf)), lines: bytes.Count(buf, []byte{'\n'})}
	s.mu.Unlock()
	// Blank lines produce no rows, so some chunks may be empty; drop them so
	// partition counts reflect data, not whitespace.
	kept := out[:0]
	for _, p := range out {
		if len(p) > 0 {
			kept = append(kept, p)
		}
	}
	return kept, nil
}

// Consumed implements Tailer.
func (s *JSON) Consumed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == nil {
		return 0
	}
	return s.state.consumed
}

// TailScan implements Tailer: lines are independent, so parsing only the
// appended suffix is exact — no type interplay with base rows. The suffix
// shares the base scan's schema cache, so appended rows with a known field
// set reuse the interned schema.
func (s *JSON) TailScan(ctx context.Context) ([]types.Value, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state
	if st == nil {
		return nil, true, nil // no base scan recorded: caller must Scan
	}
	buf, err := s.src.bytes()
	if err != nil {
		return nil, false, err
	}
	if int64(len(buf)) < st.consumed {
		return nil, true, nil // truncated or rewritten: full re-scan
	}
	// Appended bytes would glue onto a final unterminated line, changing an
	// already-delivered row; re-scan.
	if st.consumed > 0 && buf[st.consumed-1] != '\n' && int64(len(buf)) > st.consumed {
		return nil, true, nil
	}
	tail := buf[st.consumed:]
	if len(tail) == 0 {
		return nil, false, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	rows, err := data.ReadJSONChunk(tail, st.lines+1, st.cache)
	if err != nil {
		return nil, false, err
	}
	st.lines += bytes.Count(tail, []byte{'\n'})
	st.consumed = int64(len(buf))
	return rows, false, nil
}

// ParsePayload parses inline appended JSON lines through the base scan's
// schema cache (or a fresh one before any scan). Payload rows exist only in
// the catalog, so the file high-water mark does not move.
func (s *JSON) ParsePayload(payload []byte) ([]types.Value, error) {
	s.mu.Lock()
	cache := data.NewSchemaCache()
	if s.state != nil {
		cache = s.state.cache
	}
	s.mu.Unlock()
	return data.ReadJSONChunk(payload, 1, cache)
}

// splitLines cuts buf into at most parts chunks at line boundaries, also
// reporting each chunk's 1-based first line number so parse errors keep
// their absolute positions.
func splitLines(buf []byte, parts int) ([][]byte, []int) {
	if len(buf) == 0 {
		return nil, nil
	}
	starts := []int{0}
	lines := []int{1}
	if parts > 1 {
		line := 1
		for i := 0; i < len(buf)-1 && len(starts) < parts; i++ {
			if buf[i] != '\n' {
				continue
			}
			line++
			if i+1 >= len(starts)*len(buf)/parts {
				starts = append(starts, i+1)
				lines = append(lines, line)
			}
		}
	}
	chunks := make([][]byte, len(starts))
	for i := range starts {
		end := len(buf)
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		chunks[i] = buf[starts[i]:end]
	}
	return chunks, lines
}
