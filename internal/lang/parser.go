package lang

import (
	"fmt"
	"strconv"
	"strings"

	"cleandb/internal/monoid"
	"cleandb/internal/types"
)

// Parser is a recursive-descent parser for CleanM.
type Parser struct {
	toks []Token
	pos  int

	// positional counts `?` placeholders; params records canonical binding
	// keys in first-appearance order (named keys deduplicated).
	positional int
	params     []string
	paramSeen  map[string]bool
}

// Parse parses a CleanM statement.
func Parse(src string) (*Query, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.atKeyword("") && p.cur().Kind != TokEOF {
		if p.cur().Kind == TokOp && p.cur().Text == ";" {
			p.pos++
		}
	}
	if p.cur().Kind != TokEOF {
		return nil, fmt.Errorf("lang: unexpected trailing token %q at %d", p.cur().Text, p.cur().Pos)
	}
	q.Params = p.params
	return q, nil
}

func (p *Parser) cur() Token { return p.toks[p.pos] }

func (p *Parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

// atKeyword reports whether the current token is the given keyword
// (case-insensitive). Empty kw always reports false.
func (p *Parser) atKeyword(kw string) bool {
	t := p.cur()
	return kw != "" && t.Kind == TokIdent && strings.EqualFold(t.Text, kw)
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return fmt.Errorf("lang: expected %s at %d, got %q", strings.ToUpper(kw), p.cur().Pos, p.cur().Text)
	}
	p.advance()
	return nil
}

func (p *Parser) expect(kind TokenKind, what string) (Token, error) {
	if p.cur().Kind != kind {
		return Token{}, fmt.Errorf("lang: expected %s at %d, got %q", what, p.cur().Pos, p.cur().Text)
	}
	return p.advance(), nil
}

func (p *Parser) parseQuery() (*Query, error) {
	q := &Query{}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	if p.atKeyword("all") {
		p.advance()
	} else if p.atKeyword("distinct") {
		p.advance()
		q.Distinct = true
	}
	if err := p.parseSelectList(q); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	if err := p.parseFrom(q); err != nil {
		return nil, err
	}
	if p.atKeyword("where") {
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if p.atKeyword("group") {
		p.advance()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, e)
			if p.cur().Kind != TokComma {
				break
			}
			p.advance()
		}
		if p.atKeyword("having") {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			q.Having = e
		}
	}
	// Cleaning operators, in any order, possibly repeated.
	for {
		switch {
		case p.atKeyword("fd"):
			p.advance()
			op, err := p.parseFD()
			if err != nil {
				return nil, err
			}
			q.Cleaning = append(q.Cleaning, op)
		case p.atKeyword("dedup"):
			p.advance()
			op, err := p.parseDedup()
			if err != nil {
				return nil, err
			}
			q.Cleaning = append(q.Cleaning, op)
		case p.atKeyword("cluster"):
			p.advance()
			if err := p.expectKeyword("by"); err != nil {
				return nil, err
			}
			op, err := p.parseClusterBy()
			if err != nil {
				return nil, err
			}
			q.Cleaning = append(q.Cleaning, op)
		case p.atKeyword("denial"):
			p.advance()
			op, err := p.parseDenial()
			if err != nil {
				return nil, err
			}
			q.Cleaning = append(q.Cleaning, op)
		case p.atKeyword("repair"):
			pos := p.cur().Pos
			p.advance()
			attr, err := p.parseRepair()
			if err != nil {
				return nil, err
			}
			n := len(q.Cleaning)
			if n == 0 || q.Cleaning[n-1].Kind != CleanDenial {
				return nil, fmt.Errorf("lang: REPAIR at %d must follow a DENIAL constraint", pos)
			}
			if q.Cleaning[n-1].RepairAttr != nil {
				return nil, fmt.Errorf("lang: duplicate REPAIR at %d", pos)
			}
			q.Cleaning[n-1].RepairAttr = attr
		default:
			return q, nil
		}
	}
}

func (p *Parser) parseSelectList(q *Query) error {
	for {
		if p.cur().Kind == TokStar {
			p.advance()
			q.Star = true
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			item := SelectItem{Expr: e}
			if p.atKeyword("as") {
				p.advance()
				t, err := p.expect(TokIdent, "alias")
				if err != nil {
					return err
				}
				item.Alias = t.Text
			}
			q.Select = append(q.Select, item)
		}
		if p.cur().Kind != TokComma {
			return nil
		}
		p.advance()
	}
}

func (p *Parser) parseFrom(q *Query) error {
	for {
		t, err := p.expect(TokIdent, "table name")
		if err != nil {
			return err
		}
		ref := TableRef{Source: t.Text, Alias: t.Text}
		if p.cur().Kind == TokIdent && !p.isClauseKeyword() {
			ref.Alias = p.advance().Text
		}
		q.From = append(q.From, ref)
		if p.cur().Kind != TokComma {
			return nil
		}
		p.advance()
	}
}

func (p *Parser) isClauseKeyword() bool {
	for _, kw := range []string{"where", "group", "having", "fd", "dedup", "cluster", "denial", "repair", "as", "and", "or", "not"} {
		if p.atKeyword(kw) {
			return true
		}
	}
	return false
}

// parseFD parses FD(lhs, rhs) where each side is an expression or a
// parenthesized expression list.
func (p *Parser) parseFD() (CleaningOp, error) {
	op := CleaningOp{Kind: CleanFD}
	if _, err := p.expect(TokLParen, "("); err != nil {
		return op, err
	}
	lhs, err := p.parseExprOrTuple()
	if err != nil {
		return op, err
	}
	if _, err := p.expect(TokComma, ","); err != nil {
		return op, err
	}
	rhs, err := p.parseExprOrTuple()
	if err != nil {
		return op, err
	}
	if _, err := p.expect(TokRParen, ")"); err != nil {
		return op, err
	}
	op.LHS, op.RHS = lhs, rhs
	return op, nil
}

// parseDenial parses DENIAL(alias2, pred): a denial constraint over a self
// join of the single FROM table, with alias2 naming the second copy (t2).
func (p *Parser) parseDenial() (CleaningOp, error) {
	op := CleaningOp{Kind: CleanDenial}
	if _, err := p.expect(TokLParen, "("); err != nil {
		return op, err
	}
	t, err := p.expect(TokIdent, "second alias")
	if err != nil {
		return op, err
	}
	op.SecondAlias = t.Text
	if _, err := p.expect(TokComma, ","); err != nil {
		return op, err
	}
	pred, err := p.parseExpr()
	if err != nil {
		return op, err
	}
	op.Pred = pred
	if _, err := p.expect(TokRParen, ")"); err != nil {
		return op, err
	}
	return op, nil
}

// parseRepair parses REPAIR(attr).
func (p *Parser) parseRepair() (monoid.Expr, error) {
	if _, err := p.expect(TokLParen, "("); err != nil {
		return nil, err
	}
	attr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen, ")"); err != nil {
		return nil, err
	}
	return attr, nil
}

// parseExprOrTuple parses expr or (expr, expr, ...).
func (p *Parser) parseExprOrTuple() ([]monoid.Expr, error) {
	if p.cur().Kind == TokLParen {
		// Lookahead: a parenthesized list is a tuple only if a comma appears
		// at depth 1 before the matching close paren.
		if p.tupleAhead() {
			p.advance()
			var out []monoid.Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				out = append(out, e)
				if p.cur().Kind == TokComma {
					p.advance()
					continue
				}
				break
			}
			if _, err := p.expect(TokRParen, ")"); err != nil {
				return nil, err
			}
			return out, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return []monoid.Expr{e}, nil
}

func (p *Parser) tupleAhead() bool {
	depth := 0
	for i := p.pos; i < len(p.toks); i++ {
		switch p.toks[i].Kind {
		case TokLParen:
			depth++
		case TokRParen:
			depth--
			if depth == 0 {
				return false
			}
		case TokComma:
			if depth == 1 {
				return true
			}
		case TokEOF:
			return false
		}
	}
	return false
}

// parseDedup parses DEDUP(op[,metric,theta][,attrs...]).
func (p *Parser) parseDedup() (CleaningOp, error) {
	op := CleaningOp{Kind: CleanDedup}
	if err := p.parseCleaningArgs(&op); err != nil {
		return op, err
	}
	return op, nil
}

// parseClusterBy parses CLUSTER BY(op[,metric,theta],term).
func (p *Parser) parseClusterBy() (CleaningOp, error) {
	op := CleaningOp{Kind: CleanClusterBy}
	if err := p.parseCleaningArgs(&op); err != nil {
		return op, err
	}
	if len(op.Attrs) == 0 {
		return op, fmt.Errorf("lang: CLUSTER BY requires a term attribute")
	}
	return op, nil
}

// parseCleaningArgs parses the shared (op[,metric,theta][,attrs...]) form.
func (p *Parser) parseCleaningArgs(op *CleaningOp) error {
	if _, err := p.expect(TokLParen, "("); err != nil {
		return err
	}
	// Blocking operator: ident or ident(param).
	t, err := p.expect(TokIdent, "blocking operator")
	if err != nil {
		return err
	}
	op.Blocker.Op = t.Text
	if p.cur().Kind == TokLParen {
		p.advance()
		num, err := p.expect(TokNumber, "blocking parameter")
		if err != nil {
			return err
		}
		n, err := strconv.Atoi(num.Text)
		if err != nil {
			return fmt.Errorf("lang: bad blocking parameter %q", num.Text)
		}
		op.Blocker.Param = n
		if _, err := p.expect(TokRParen, ")"); err != nil {
			return err
		}
	}
	// Optional metric and theta: detect "ident, number-or-placeholder"
	// lookahead. A placeholder theta is bound at execute time.
	if p.cur().Kind == TokComma {
		save := p.pos
		p.advance()
		if p.cur().Kind == TokIdent && p.toks[p.pos+1].Kind == TokComma &&
			(p.toks[p.pos+2].Kind == TokNumber || p.toks[p.pos+2].Kind == TokParam) {
			op.Metric = p.advance().Text
			p.advance() // comma
			if p.cur().Kind == TokParam {
				e, err := p.parsePrimary()
				if err != nil {
					return err
				}
				op.ThetaExpr = e
			} else {
				f, err := strconv.ParseFloat(p.advance().Text, 64)
				if err != nil {
					return fmt.Errorf("lang: bad theta")
				}
				op.Theta = f
			}
		} else {
			p.pos = save
		}
	}
	// Remaining comma-separated attribute expressions.
	for p.cur().Kind == TokComma {
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		op.Attrs = append(op.Attrs, e)
	}
	if _, err := p.expect(TokRParen, ")"); err != nil {
		return err
	}
	return nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)
// ---------------------------------------------------------------------------

// parseExpr parses an expression with or/and/not, comparisons, and arithmetic.
func (p *Parser) parseExpr() (monoid.Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (monoid.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("or") {
		p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &monoid.BinOp{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (monoid.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("and") {
		p.advance()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &monoid.BinOp{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (monoid.Expr, error) {
	if p.atKeyword("not") {
		p.advance()
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &monoid.UnOp{Op: "not", E: e}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (monoid.Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TokOp {
		op := p.cur().Text
		switch op {
		case "=", "==", "!=", "<>", "<", "<=", ">", ">=":
			p.advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			switch op {
			case "=":
				op = "=="
			case "<>":
				op = "!="
			}
			return &monoid.BinOp{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *Parser) parseAdditive() (monoid.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokOp && (p.cur().Text == "+" || p.cur().Text == "-") {
		op := p.advance().Text
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &monoid.BinOp{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseMultiplicative() (monoid.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for (p.cur().Kind == TokOp && (p.cur().Text == "/" || p.cur().Text == "%")) || p.cur().Kind == TokStar {
		var op string
		if p.cur().Kind == TokStar {
			op = "*"
		} else {
			op = p.cur().Text
		}
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &monoid.BinOp{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseUnary() (monoid.Expr, error) {
	if p.cur().Kind == TokOp && p.cur().Text == "-" {
		p.advance()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &monoid.UnOp{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (monoid.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokParam:
		p.advance()
		var key string
		if t.Text == "?" {
			p.positional++
			key = fmt.Sprintf("$%d", p.positional)
		} else {
			key = strings.ToLower(t.Text)
		}
		if p.paramSeen == nil {
			p.paramSeen = map[string]bool{}
		}
		if !p.paramSeen[key] {
			p.paramSeen[key] = true
			p.params = append(p.params, key)
		}
		return &monoid.Param{Key: key}, nil
	case TokNumber:
		p.advance()
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, fmt.Errorf("lang: bad number %q", t.Text)
			}
			return monoid.C(types.Float(f)), nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("lang: bad number %q", t.Text)
		}
		return monoid.C(types.Int(n)), nil
	case TokString:
		p.advance()
		return monoid.C(types.String(t.Text)), nil
	case TokLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		switch strings.ToLower(t.Text) {
		case "true":
			p.advance()
			return monoid.CBool(true), nil
		case "false":
			p.advance()
			return monoid.CBool(false), nil
		case "null":
			p.advance()
			return monoid.C(types.Null()), nil
		}
		p.advance()
		// Function call?
		if p.cur().Kind == TokLParen {
			p.advance()
			var args []monoid.Expr
			if p.cur().Kind != TokRParen {
				for {
					if p.cur().Kind == TokStar { // count(*)
						p.advance()
						args = append(args, monoid.CInt(1))
					} else {
						a, err := p.parseExpr()
						if err != nil {
							return nil, err
						}
						args = append(args, a)
					}
					if p.cur().Kind != TokComma {
						break
					}
					p.advance()
				}
			}
			if _, err := p.expect(TokRParen, ")"); err != nil {
				return nil, err
			}
			return p.parseTrailer(&monoid.Call{Fn: strings.ToLower(t.Text), Args: args})
		}
		return p.parseTrailer(monoid.V(t.Text))
	default:
		return nil, fmt.Errorf("lang: unexpected token %q at %d", t.Text, t.Pos)
	}
}

// parseTrailer parses dotted field accesses after a primary: a.b.c.
func (p *Parser) parseTrailer(e monoid.Expr) (monoid.Expr, error) {
	for p.cur().Kind == TokDot {
		p.advance()
		t, err := p.expect(TokIdent, "field name")
		if err != nil {
			return nil, err
		}
		e = monoid.F(e, t.Text)
	}
	return e, nil
}
