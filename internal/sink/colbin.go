package sink

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"runtime"

	"cleandb/internal/data"
	"cleandb/internal/types"
)

// Colbin writes results in the colbin binary columnar format, byte-compatible
// with data.WriteColbin. A columnar layout cannot emit its first byte until
// every row is known (column types and string dictionaries span the whole
// result), so this sink is the write-side holdout, mirroring XML on the read
// side: WritePartition only retains the partition slices — no copy, no
// encode — and Close does the heavy work with the parallelism turned
// sideways, encoding each column chunk on its own goroutine and
// concatenating the chunks behind one header.
type Colbin struct {
	path string
	w    io.Writer

	f *os.File

	// wroteBatch marks that the columnar fast path already emitted the file
	// body; Close then skips the row-based encode.
	wroteBatch bool

	collector
}

// NewColbin returns a colbin sink over an io.Writer.
func NewColbin(w io.Writer) *Colbin { return &Colbin{w: w} }

// NewColbinFile returns a colbin sink that creates path at Open.
func NewColbinFile(path string) *Colbin { return &Colbin{path: path} }

// Open implements Sink.
func (s *Colbin) Open([]string) error {
	if s.path != "" {
		f, err := os.Create(s.path)
		if err != nil {
			return err
		}
		s.f, s.w = f, f
	}
	s.reset()
	return nil
}

// WritePartition implements Sink by retaining the partition (the slice is
// shared, not copied — result partitions are immutable). Safe for concurrent
// calls with distinct indices.
func (s *Colbin) WritePartition(i int, rows []types.Value) error {
	s.add(i, rows)
	return nil
}

// Close implements Sink: it verifies the partition sequence is complete,
// encodes the columns in parallel, and writes header plus chunks. A gap in
// the partition indices fails fast before any encoding work.
func (s *Colbin) Close() error { return s.CloseContext(context.Background()) }

// CloseContext is Close under a context: Pump threads the export's context
// here, so a deadline that expires during the deferred encode still aborts
// it between column chunks. (The stream sinks have no close-time work to
// cancel; colbin is why this hook exists.)
func (s *Colbin) CloseContext(ctx context.Context) error {
	err := s.encode(ctx)
	if s.f != nil {
		if cerr := s.f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Abort implements Aborter: the retained partitions are dropped unencoded —
// a cancelled export must not pay for, or leave behind, a complete-looking
// file — and the file-backed stub is deleted.
func (s *Colbin) Abort() error {
	s.drop()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	if rerr := os.Remove(s.path); err == nil {
		err = rerr
	}
	return err
}

// WriteBatch is the columnar fast path: the result's column vectors encode
// straight to colbin chunks — type inference reads the vector kind, string
// columns re-dictionarize from codes, and no row is ever boxed. It replaces
// the entire WritePartition/Close row protocol; the driver (PumpBatches)
// calls it between Open and Close, and Close then only flushes the file.
func (s *Colbin) WriteBatch(ctx context.Context, b *data.ColumnBatch) error {
	s.wroteBatch = true
	if b == nil || b.N == 0 || b.Schema == nil {
		return data.WriteColbinHeader(s.w, nil, nil, 0)
	}
	names := b.Schema.Names
	strs := b.Strings()
	colTypes := make([]data.ColType, len(names))
	chunks := make([][]byte, len(names))
	err := runParallel(ctx, len(names), runtime.GOMAXPROCS(0), func(c int) error {
		col := &b.Cols[c]
		colTypes[c] = data.ColTypeForColumn(col, strs)
		buf, err := data.EncodeColumnVec(col, strs, colTypes[c])
		if err != nil {
			return err
		}
		chunks[c] = buf
		return nil
	})
	if err != nil {
		return err
	}
	if err := data.WriteColbinHeader(s.w, names, colTypes, b.N); err != nil {
		return err
	}
	bw := bufio.NewWriter(s.w)
	for _, chunk := range chunks {
		if _, err := bw.Write(chunk); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (s *Colbin) encode(ctx context.Context) error {
	if s.wroteBatch {
		return nil
	}
	parts, err := s.ordered()
	if err != nil {
		return err
	}
	var n int
	for _, p := range parts {
		n += len(p)
	}
	if n == 0 {
		return data.WriteColbinHeader(s.w, nil, nil, 0)
	}
	// One flat view of the rows: pointers only, needed because column
	// encoding walks every row once per column.
	rows := make([]types.Value, 0, n)
	for _, p := range parts {
		rows = append(rows, p...)
	}
	rec := rows[0].Record()
	if rec == nil {
		return fmt.Errorf("sink: colbin: rows must be records, got %s", rows[0].Kind())
	}
	names := rec.Schema.Names

	// Column-parallel encode under the export's context: infer each column's
	// type and encode its chunk (null bitmap + typed data) into an
	// independent buffer; cancellation aborts between columns.
	colTypes := make([]data.ColType, len(names))
	chunks := make([][]byte, len(names))
	err = runParallel(ctx, len(names), runtime.GOMAXPROCS(0), func(c int) error {
		colTypes[c] = data.ColbinTypeOf(rows, c)
		buf, err := data.EncodeColbinColumn(rows, c, colTypes[c])
		if err != nil {
			return err
		}
		chunks[c] = buf
		return nil
	})
	if err != nil {
		return err
	}

	if err := data.WriteColbinHeader(s.w, names, colTypes, n); err != nil {
		return err
	}
	bw := bufio.NewWriter(s.w)
	for _, chunk := range chunks {
		if _, err := bw.Write(chunk); err != nil {
			return err
		}
	}
	return bw.Flush()
}
