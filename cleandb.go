// Package cleandb is a unified scale-out data cleaning and querying engine —
// a Go reproduction of "CleanM: An Optimizable Query Language for Unified
// Scale-Out Data Cleaning" (Giannakopoulou et al., VLDB 2017).
//
// CleanDB exposes the CleanM language: SQL extended with FD, DEDUP, CLUSTER
// BY and DENIAL/REPAIR cleaning operators. Queries pass through three optimization
// levels — the monoid comprehension calculus, a nested relational algebra,
// and a skew-aware physical plan — and execute on a partitioned multi-worker
// runtime. A query with several cleaning operators is optimized as a whole:
// operators that group the data the same way share a single grouping pass,
// all operators share the input scan, and the violation sets are combined
// with one outer join.
//
// The API is service-grade: a DB is safe for concurrent use by multiple
// goroutines, statements may carry `?` positional and `:name` named
// parameter placeholders, prepared statements (PrepareStmt) plan once and
// execute many times, un-prepared Query/QueryContext calls hit an internal
// LRU plan cache, and every execution reports its own cost metrics
// (Result.Metrics) besides the instance-wide accumulators (DB.Metrics).
//
// Data enters through the pluggable source catalog. RegisterSource (and the
// Register*File path helpers) records where data lives without parsing a
// byte; the first query that references the source — or an explicit Load —
// parses it with a partition-parallel scan that lands rows directly as
// engine partitions. The original Register* readers remain as eager
// wrappers over the same machinery.
//
// Results leave the same way, through the pluggable Sink interface: Iter
// streams a completed Result without flattening it, ExecuteTo pumps query
// output partition-parallel into CSV / JSON-lines / colbin / in-memory
// sinks under the query's context, and RepairedTo exports healed rows. Flat
// accessors (Rows, TaskRows) remain, now memoized.
//
// The whole API is also served over HTTP: internal/server (mounted by the
// `cleandb serve` command) streams query results as NDJSON or CSV through
// the writer-backed sinks, exercises the plan cache with prepared-statement
// handles, and works the lazy source catalog over the wire.
//
// Quickstart:
//
//	db := cleandb.Open()
//	db.RegisterCSVFile("customer", "customer.csv") // lazy: nothing parsed yet
//	db.RegisterRows("dictionary", dict)
//	res, err := db.QueryContext(ctx, `
//	    SELECT c.name, c.address, *
//	    FROM customer c, dictionary d
//	    WHERE c.nationkey = :nation
//	    FD(c.address, prefix(c.phone))
//	    DEDUP(token_filtering, LD, 0.8, c.address)
//	    CLUSTER BY(token_filtering, LD, 0.8, c.name)`,
//	    cleandb.Named("nation", 7))
package cleandb

import (
	"context"
	"errors"
	"fmt"
	"io"
	"iter"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"cleandb/internal/core"
	"cleandb/internal/engine"
	"cleandb/internal/incr"
	"cleandb/internal/physical"
	"cleandb/internal/sink"
	"cleandb/internal/source"
	"cleandb/internal/types"
)

// Source is the pluggable data-source abstraction: anything that can
// describe itself (Format, Schema, Stats) and Scan into ordered partitions
// can be registered in the catalog. The source subpackage provides CSV,
// JSON-lines, XML, colbin and in-memory implementations; RegisterSource
// accepts third-party ones.
type Source = source.Source

// Sink is the output half of the data-source API: anything that accepts
// Open(schema) / WritePartition(i, rows) / Close can receive query results
// partition-parallel via ExecuteTo and RepairedTo. The sink subpackage
// provides CSV, JSON-lines, colbin and in-memory implementations (see
// NewCSVSink and friends); third-party ones just implement the interface.
// WritePartition must tolerate concurrent calls with distinct indices and
// emit partitions in index order.
type Sink = sink.Sink

// Sink constructors re-exported from the sink subpackage. The *File
// constructors create their file at Open; SinkFromPath infers the format
// from the path's extension (.csv, .json/.jsonl/.ndjson, .colbin). The
// writer-backed byte-stream sinks (NewCSVSink, NewJSONLSink) flush through
// per stitched partition when w has a Flush method — hand them an
// http.ResponseWriter and each partition reaches the client as it lands,
// which is how the HTTP server streams query results with memory bounded by
// the partitions in flight.
var (
	// NewCSVSink streams CSV (header row, data.WriteCSV-compatible cells) to w.
	NewCSVSink = sink.NewCSV
	// NewCSVFileSink streams CSV to a file created at Open.
	NewCSVFileSink = sink.NewCSVFile
	// NewJSONLSink streams JSON lines to w.
	NewJSONLSink = sink.NewJSONL
	// NewJSONLFileSink streams JSON lines to a file created at Open.
	NewJSONLFileSink = sink.NewJSONLFile
	// NewColbinSink writes the binary columnar format to w (encodes at Close).
	NewColbinSink = sink.NewColbin
	// NewColbinFileSink writes colbin to a file created at Open.
	NewColbinFileSink = sink.NewColbinFile
	// NewMemSink collects results in memory, preserving partitions.
	NewMemSink = sink.NewMem
	// SinkFromPath builds a file sink, dispatching on the extension.
	SinkFromPath = sink.FromPath
)

// SourceStats re-exports the source layer's pre-scan size hints (-1 fields
// mean "unknown without a full parse").
type SourceStats = source.Stats

// Value is a dynamically typed datum (null, bool, int, float, string, list
// or record). See the constructor helpers Null, Bool, Int, Float, String,
// List and NewRecord. Values are immutable and safe to share across
// goroutines.
type Value = types.Value

// Schema maps record field names to positions.
type Schema = types.Schema

// Re-exported constructors for building rows programmatically.
var (
	// Null returns the null value.
	Null = types.Null
	// Bool wraps a bool.
	Bool = types.Bool
	// Int wraps an int64.
	Int = types.Int
	// Float wraps a float64.
	Float = types.Float
	// String wraps a string.
	String = types.String
	// List wraps values into a list value.
	List = types.List
	// NewSchema builds a record schema.
	NewSchema = types.NewSchema
	// NewRecord builds a record value over a schema.
	NewRecord = types.NewRecord
)

// Option configures Open.
type Option func(*DB)

// WithWorkers sets the simulated cluster width (default 8).
func WithWorkers(n int) Option {
	return func(db *DB) { db.ctx.Workers = n }
}

// WithComparisonBudget bounds pairwise comparisons per query; exceeding it
// aborts the query with an error (how the experiment suite reproduces the
// paper's DNF entries).
func WithComparisonBudget(n int64) Option {
	return func(db *DB) { db.ctx.CompBudget = n }
}

// WithStandaloneOps disables unified optimization: multiple cleaning
// operators in one query execute independently (baseline behaviour).
func WithStandaloneOps() Option {
	return func(db *DB) { db.unified = false }
}

// WithRowExecution disables columnar batch execution: sources load as boxed
// row partitions and every operator runs its row form, the pre-columnar
// behaviour. Row and batch execution produce identical results and identical
// cost metrics stage for stage; this switch exists for ablation and as an
// escape hatch. It also disables the stats-driven strategy selection, which
// needs the load-time column statistics.
func WithRowExecution() Option {
	return func(db *DB) { db.columnar = false }
}

// WithGroupStrategy overrides the grouping shuffle (ablation hooks). Pinning
// a strategy disables the stats-driven automatic selection.
func WithGroupStrategy(s physical.GroupStrategy) Option {
	return func(db *DB) { db.config.Group = s; db.stratPinned = true }
}

// WithThetaStrategy overrides the theta-join algorithm (ablation hooks).
// Pinning a strategy disables the stats-driven automatic selection.
func WithThetaStrategy(s physical.ThetaStrategy) Option {
	return func(db *DB) { db.config.Theta = s; db.stratPinned = true }
}

// WithPlanCacheSize sets the capacity of the internal LRU plan cache used by
// Query/QueryContext/Explain (default 128 statements). A size <= 0 disables
// caching: every call re-plans from scratch.
func WithPlanCacheSize(n int) Option {
	return func(db *DB) { db.cacheCap = n }
}

// DB is a CleanDB instance: a catalog of data sources plus the query
// pipeline and an LRU cache of prepared plans.
//
// A DB is safe for concurrent use by multiple goroutines: the catalog is
// guarded by a read-write mutex, every query executes on its own engine job
// context, and the plan cache and metrics accumulators are internally
// synchronized. Options apply at Open time only.
type DB struct {
	ctx     *engine.Context
	config  physical.Config
	unified bool
	// columnar selects batch execution: sources land as dictionary-encoded
	// column vectors and operators run their vectorized forms where they
	// exist. Default on; WithRowExecution turns it off.
	columnar bool
	// stratPinned records that an ablation option fixed a strategy, which
	// turns the stats-driven automatic selection off.
	stratPinned bool

	mu      sync.RWMutex
	catalog map[string]*sourceEntry
	// epoch increments on every catalog change; it is part of the plan-cache
	// key, so cached plans never serve stale fitted blockers or sources.
	// Loading a pending source does NOT bump the epoch: the rows are
	// determined by the source, so plans stay valid across the load.
	epoch int64

	// statsEpoch increments when a source load completes. Plans embed it in
	// their cache key: blocker fitting and strategy selection read source
	// statistics, so a plan prepared before a load (against unknown stats)
	// must not be served after the stats exist.
	statsEpoch atomic.Int64

	cacheCap int
	cache    *planCache[*core.Prepared]

	// viewCap/views: the materialized cleaning-view cache (WithViewCache);
	// disabled by default. Entries are stamped with per-source epochs, so
	// appends turn exact hits into delta hits rather than stale misses.
	viewCap int
	views   *incr.Cache[viewEntry]
}

// sourceEntry is one catalog slot: a source plus its load-once state.
// Entries are shared by every catalog snapshot that saw them, so whichever
// query loads a source first loads it for everyone.
//
// Two locks split the roles: loadMu serializes the (possibly long) Scan so
// the data parses once, while mu guards only the result fields — peek and
// SourceInfo read state mid-load without waiting behind the parse.
type sourceEntry struct {
	src source.Source
	// batch selects the columnar scan: the source lands as column batches
	// (native for colbin, converted in parallel for text formats) and row
	// boxing is deferred to first row-level use.
	batch bool
	// onLoad, when set, runs once after a successful load — the DB bumps its
	// stats epoch there so cached plans prepared against unknown statistics
	// are not served once the statistics exist.
	onLoad func()
	// id is the entry's registration identity (unique per Register call);
	// view-cache stamps embed it so a re-registered source never matches
	// its predecessor's cached views.
	id string
	// name is the catalog name the entry was registered under. Custody scan
	// stages are keyed by it ("scan/<name>"), so all cluster members agree on
	// the stage without coordination; entries that never went through
	// register (eager readers load first) leave it empty and always scan
	// replicated.
	name string

	loadMu sync.Mutex

	mu     sync.Mutex
	loaded bool
	ds     *engine.Dataset
	err    error
	// baseGen moves whenever the base partitions are replaced (a reset
	// re-scan); deltaEpoch moves on every append. Together with id they are
	// the incr.Stamp the view cache keys freshness on.
	baseGen    int64
	deltaEpoch int64
	// Append accounting: appends counts append operations, appendRows the
	// rows they landed, appendBytes the encoded payload bytes (0 for
	// programmatic rows), memRows the appended rows that exist only in this
	// process's memory — not re-derivable from the backing file, which is
	// what makes a cluster session refuse to ship the source.
	appends     int64
	appendRows  int64
	appendBytes int64
	memRows     int64
	// custody, when non-nil, records what this member parsed from disk under
	// a partition-custody scan (custody.go); nil for replicated loads, where
	// owned equals total.
	custody *custodyLoad
}

// load scans the source into a partitioned dataset exactly once. Scan
// failures are remembered (re-register the source to retry) — except
// cancellations and custody-scan failures: a query aborted mid-load, or a
// divided scan that died with its cluster session, must not poison the
// source for the next one.
func (e *sourceEntry) load(goctx context.Context, ectx *engine.Context) (*engine.Dataset, error) {
	e.loadMu.Lock()
	defer e.loadMu.Unlock()
	if ds, loaded, err := e.peek(); loaded {
		return ds, err
	}
	//lint:ignore locksnapshot loadMu is the per-source single-flight latch: holding it across the first scan is the point
	ds, err := e.scan(goctx, ectx)
	if err != nil {
		var transient *custodyScanError
		if goctx.Err() == nil && !errors.As(err, &transient) {
			e.mu.Lock()
			e.loaded, e.err = true, err
			e.mu.Unlock()
		}
		return nil, err
	}
	e.mu.Lock()
	e.loaded, e.ds = true, ds
	e.mu.Unlock()
	if e.onLoad != nil {
		e.onLoad()
	}
	return ds, nil
}

// scan parses the source, columnar or row-wise per the entry's mode. Under a
// cluster session whose exchange divides scans by partition custody, the
// parse itself is split across the members (custody.go); the result is the
// same full dataset either way.
func (e *sourceEntry) scan(goctx context.Context, ectx *engine.Context) (*engine.Dataset, error) {
	if ds, ok, err := e.scanCustody(goctx, ectx); ok {
		return ds, err
	}
	if !e.batch {
		parts, err := e.src.Scan(goctx, ectx.Workers)
		if err != nil {
			return nil, err
		}
		return engine.FromPartitions(ectx, parts), nil
	}
	batches, rows, err := source.ScanIntoBatches(goctx, e.src, ectx.Workers)
	if err != nil {
		return nil, err
	}
	if batches == nil {
		// Heterogeneous records cannot batch; the row form is the dataset.
		return engine.FromPartitions(ectx, rows), nil
	}
	// All batches of one source share one dictionary; fold its interning
	// counters into the instance-wide metrics once.
	for _, b := range batches {
		if b != nil && b.Dict != nil {
			hits, misses := b.Dict.Stats()
			ectx.Metrics().AddDictStats(hits, misses)
			break
		}
	}
	if rows != nil {
		return engine.FromBatchesAndRows(ectx, batches, rows), nil
	}
	return engine.FromBatches(ectx, batches), nil
}

// peek reports the load state without triggering — or waiting on — a load.
func (e *sourceEntry) peek() (*engine.Dataset, bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ds, e.loaded, e.err
}

// Open creates a CleanDB instance.
func Open(opts ...Option) *DB {
	db := &DB{
		ctx:      engine.NewContext(8),
		catalog:  map[string]*sourceEntry{},
		unified:  true,
		columnar: true,
		cacheCap: 128,
	}
	for _, o := range opts {
		o(db)
	}
	// Stats-driven strategy selection needs the columnar load-time statistics
	// and yields to explicitly pinned ablation strategies.
	db.config.Auto = db.columnar && !db.stratPinned
	db.cache = newPlanCache[*core.Prepared](db.cacheCap)
	if db.viewCap > 0 {
		db.views = incr.NewCache[viewEntry](db.viewCap)
	}
	return db
}

// newEntry builds a catalog slot for src carrying the DB's execution mode
// and load notification.
func (db *DB) newEntry(src source.Source) *sourceEntry {
	return &sourceEntry{src: src, batch: db.columnar, onLoad: db.noteLoad, id: newEntryID()}
}

// noteLoad runs when any source finishes loading: the stats epoch moves so
// plans prepared before the statistics existed stop being served from the
// cache. Stale keys age out of the LRU; no purge is needed because the new
// epoch makes them unreachable.
func (db *DB) noteLoad() { db.statsEpoch.Add(1) }

// register installs an entry under name, replacing any previous source of
// that name, and invalidates cached plans.
func (db *DB) register(name string, e *sourceEntry) {
	e.name = name // before publication: custody scans key stages on it
	db.mu.Lock()
	db.catalog[name] = e
	db.epoch++
	db.mu.Unlock()
	// Every cached plan embeds the old epoch in its key and is unreachable
	// now; purge so dead plans don't pin catalog snapshots until LRU
	// pressure. (The epoch stays in the key so an in-flight prepare against
	// the old snapshot cannot resurface as a stale hit after the purge.)
	db.cache.purge()
	// Cached views of the replaced source are stale by stamp identity, but
	// purge anyway so dead results don't pin memory until LRU pressure.
	db.views.Purge()
}

// RegisterSource adds a pluggable data source to the catalog under name,
// replacing any previous source of that name, without reading or parsing
// anything. The first query that references the source — or an explicit
// Load — triggers a partition-parallel scan whose result is cached for all
// subsequent queries. Safe to call concurrently with queries: running
// queries keep their catalog snapshot.
func (db *DB) RegisterSource(name string, src Source) {
	db.register(name, db.newEntry(src))
}

// RegisterFile lazily registers a data file, inferring the format from the
// path's extension (.csv, .json/.jsonl/.ndjson, .xml, .colbin). The file is
// not opened until the source is first loaded, so a missing file surfaces
// as a query/Load error, not here.
func (db *DB) RegisterFile(name, path string) error {
	src, err := source.FromPath(path)
	if err != nil {
		return err
	}
	db.RegisterSource(name, src)
	return nil
}

// RegisterCSVFile lazily registers a CSV file (header row, type-inferred
// columns). The first use parses it chunk-parallel across the configured
// Workers.
func (db *DB) RegisterCSVFile(name, path string) {
	db.RegisterSource(name, source.NewCSVFile(path))
}

// RegisterJSONFile lazily registers a JSON-lines file (nested records
// supported). The first use parses it line-chunk-parallel.
func (db *DB) RegisterJSONFile(name, path string) {
	db.RegisterSource(name, source.NewJSONFile(path))
}

// RegisterXMLFile lazily registers a two-level XML file (DBLP-style).
func (db *DB) RegisterXMLFile(name, path string) {
	db.RegisterSource(name, source.NewXMLFile(path))
}

// RegisterColbinFile lazily registers a colbin (binary columnar) file. The
// first use decodes its column chunks in parallel.
func (db *DB) RegisterColbinFile(name, path string) {
	db.RegisterSource(name, source.NewColbinFile(path))
}

// Load forces a pending source to parse now (parallel, under ctx) instead
// of on first query. Loading an already-loaded source is a no-op returning
// its remembered outcome.
func (db *DB) Load(ctx context.Context, name string) error {
	db.mu.RLock()
	e, ok := db.catalog[name]
	db.mu.RUnlock()
	if !ok {
		return fmt.Errorf("cleandb: unknown source %q", name)
	}
	if _, err := e.load(ctx, db.ctx); err != nil {
		return fmt.Errorf("cleandb: load source %q: %w", name, err)
	}
	return nil
}

// registerEager scans src immediately and registers it only on success —
// the contract of the original Register* readers.
func (db *DB) registerEager(name string, src source.Source) error {
	e := db.newEntry(src)
	if _, err := e.load(context.Background(), db.ctx); err != nil {
		return err
	}
	db.register(name, e)
	return nil
}

// RegisterRows adds an in-memory dataset to the catalog under name,
// replacing any previous dataset of that name. Safe to call concurrently
// with queries: running queries keep their catalog snapshot. In columnar
// mode the rows are dictionary-encoded into column batches here (an
// in-memory scan cannot fail), so programmatic datasets take the vectorized
// paths like file-backed ones.
func (db *DB) RegisterRows(name string, rows []Value) {
	e := db.newEntry(source.FromRows(rows))
	if _, err := e.load(context.Background(), db.ctx); err != nil {
		// Unreachable for an in-memory source; keep the row contract anyway.
		e = &sourceEntry{
			src:    source.FromRows(rows),
			id:     newEntryID(),
			loaded: true,
			ds:     engine.FromValues(db.ctx, rows),
		}
	}
	db.register(name, e)
}

// RegisterCSV eagerly loads a CSV source (header row, type-inferred
// columns). It is a thin wrapper over the source catalog: the reader is
// slurped and parsed through the same chunk-parallel scan lazy registration
// uses, and nothing is registered on error.
func (db *DB) RegisterCSV(name string, r io.Reader) error {
	buf, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	return db.registerEager(name, source.CSVBytes(buf))
}

// RegisterJSON eagerly loads a JSON-lines source (nested records
// supported).
func (db *DB) RegisterJSON(name string, r io.Reader) error {
	buf, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	return db.registerEager(name, source.JSONBytes(buf))
}

// RegisterXML eagerly loads a two-level XML source (DBLP-style; repeated
// child elements become list fields).
func (db *DB) RegisterXML(name string, r io.Reader) error {
	buf, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	return db.registerEager(name, source.XMLBytes(buf))
}

// RegisterColbin eagerly loads a colbin (binary columnar) source.
func (db *DB) RegisterColbin(name string, r io.Reader) error {
	buf, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	return db.registerEager(name, source.ColbinBytes(buf))
}

// Sources lists the registered source names, sorted — loaded or pending.
func (db *DB) Sources() []string {
	db.mu.RLock()
	out := make([]string, 0, len(db.catalog))
	for n := range db.catalog {
		out = append(out, n)
	}
	db.mu.RUnlock()
	sort.Strings(out)
	return out
}

// SourceInfo describes one catalog entry's load state.
type SourceInfo struct {
	// Name is the catalog name; Format the source encoding ("csv", "json",
	// "xml", "colbin", "mem", or whatever a custom Source reports).
	Name, Format string
	// Loaded reports whether the source has been scanned into partitions.
	// Pending sources have parsed nothing yet.
	Loaded bool
	// Err is the remembered load failure, if the source's scan was
	// attempted and failed (every use will keep returning it until the
	// source is re-registered). Loaded and Err are mutually exclusive.
	Err error
	// Rows is the exact record count once loaded; before that, the source's
	// cheap hint (exact for colbin headers and in-memory rows, -1 for text
	// formats, which cannot count without parsing).
	Rows int64
	// Bytes is the encoded size hint (-1 when unknown).
	Bytes int64
	// Path is the backing file path for file-backed sources, "" for
	// in-memory ones. A cluster coordinator ships file-backed entries to
	// workers by path.
	Path string
	// Partitions is the loaded partition count, 0 before the first scan.
	Partitions int
	// BaseGen is the source's base generation (moves when the base
	// partitions are replaced by a reset re-scan); DeltaEpoch its delta
	// epoch (moves on every append). Both 0 for a never-appended source.
	BaseGen, DeltaEpoch int64
	// Appends counts append operations since load; AppendedRows the rows
	// they landed. A reset re-scan folds appended file rows into the base
	// and zeroes both.
	Appends, AppendedRows int64
	// MemRows counts appended rows that exist only in this process's memory
	// (payload or programmatic appends) — not re-derivable from Path, so a
	// cluster coordinator cannot ship the source and must run such queries
	// single-process.
	MemRows int64
	// OwnedPartitions / OwnedBytes report what this member parsed from disk
	// for the load. Under a partition-custody scan a member builds only its
	// owned (plus adopted) chunks and gathers the rest from peers, so Owned*
	// is the member's share while Rows/Bytes/Partitions stay the totals of
	// the complete gathered dataset. For replicated or single-process loads
	// owned equals total.
	OwnedPartitions int
	OwnedBytes      int64
}

// SourceInfo reports a source's format and loaded-vs-pending-vs-failed
// state without triggering a load — and, thanks to the entry's split lock,
// without waiting behind one that is in flight.
func (db *DB) SourceInfo(name string) (SourceInfo, error) {
	db.mu.RLock()
	e, ok := db.catalog[name]
	db.mu.RUnlock()
	if !ok {
		return SourceInfo{}, fmt.Errorf("cleandb: unknown source %q", name)
	}
	info := SourceInfo{Name: name, Format: e.src.Format(), Rows: -1, Bytes: -1,
		Path: source.PathOf(e.src)}
	if st, err := e.src.Stats(); err == nil {
		info.Rows, info.Bytes = st.Rows, st.Bytes
	}
	// The version counters outlive the loaded data: an entry unloaded by a
	// cluster custody resync is pending again, but its base generation must
	// keep identifying the file's incremental state or workers keyed on the
	// shipped version would hold stale loads.
	e.mu.Lock()
	info.BaseGen, info.DeltaEpoch = e.baseGen, e.deltaEpoch
	e.mu.Unlock()
	if ds, loaded, err := e.peek(); loaded {
		if err != nil {
			info.Err = err
		} else {
			info.Loaded = true
			// Recompute the row/byte hints from the loaded state rather than
			// trusting the pre-scan hints: any path that replaced or extended
			// the partitions (append, tail refresh, reset re-scan) makes the
			// registration-time numbers stale. The dataset knows its exact row
			// count; the byte count is the parsed high-water mark plus any
			// inline payload bytes, falling back to the source's current size
			// hint for formats without a tail mark.
			info.Rows = ds.Count()
			info.Partitions = ds.NumPartitions()
			e.mu.Lock()
			info.Appends, info.AppendedRows = e.appends, e.appendRows
			info.MemRows = e.memRows
			appendBytes := e.appendBytes
			custody := e.custody
			e.mu.Unlock()
			if t, ok := source.TailerOf(e.src); ok {
				info.Bytes = t.Consumed() + appendBytes
			} else if info.Bytes >= 0 {
				info.Bytes += appendBytes
			}
			if custody != nil {
				info.OwnedPartitions, info.OwnedBytes = custody.parts, custody.bytes
			} else {
				info.OwnedPartitions, info.OwnedBytes = info.Partitions, info.Bytes
			}
		}
	}
	return info, nil
}

// SourceInfos describes every catalog entry, sorted by name.
func (db *DB) SourceInfos() []SourceInfo {
	names := db.Sources()
	out := make([]SourceInfo, 0, len(names))
	for _, n := range names {
		if info, err := db.SourceInfo(n); err == nil {
			out = append(out, info)
		}
	}
	return out
}

// Rows returns the records of a registered source, loading it first if it
// is still pending. The returned slice is a fresh copy of the slice header;
// appending to it never corrupts the catalog.
func (db *DB) Rows(name string) ([]Value, error) {
	db.mu.RLock()
	e, ok := db.catalog[name]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cleandb: unknown source %q", name)
	}
	ds, err := e.load(context.Background(), db.ctx)
	if err != nil {
		return nil, fmt.Errorf("cleandb: load source %q: %w", name, err)
	}
	return ds.Collect(), nil
}

// catalogView is a consistent snapshot of the catalog handed to one prepare:
// it resolves names against the entries as of snapshot time and loads
// pending sources under the preparing query's context, so a cancelled query
// aborts its own lazy loads.
type catalogView struct {
	goctx   context.Context
	ectx    *engine.Context
	entries map[string]*sourceEntry
}

// Has implements core.Catalog without triggering a load.
func (v *catalogView) Has(name string) bool {
	_, ok := v.entries[name]
	return ok
}

// Lookup implements core.Catalog, loading pending sources on demand.
func (v *catalogView) Lookup(name string) (*engine.Dataset, error) {
	e, ok := v.entries[name]
	if !ok {
		return nil, fmt.Errorf("cleandb: unknown source %q", name)
	}
	ds, err := e.load(v.goctx, v.ectx)
	if err != nil {
		return nil, fmt.Errorf("cleandb: load source %q: %w", name, err)
	}
	return ds, nil
}

// snapshot copies the catalog map and its epoch atomically, so a query plans
// and executes against a consistent view even while other goroutines
// register sources. The entries themselves are shared: a lazy load performed
// by one snapshot is visible to all.
func (db *DB) snapshot(goctx context.Context) (*catalogView, int64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	m := make(map[string]*sourceEntry, len(db.catalog))
	for k, v := range db.catalog {
		m[k] = v
	}
	return &catalogView{goctx: goctx, ectx: db.ctx, entries: m}, db.epoch
}

// pipelineWith builds the query pipeline over a catalog snapshot.
func (db *DB) pipelineWith(catalog core.Catalog) *core.Pipeline {
	p := core.NewPipelineCatalog(db.ctx, catalog)
	p.Config = db.config
	p.Unified = db.unified
	return p
}

// ConfigFingerprint summarizes every Open-time option that affects query
// results or cost metrics. Cluster nodes compare fingerprints when a worker
// registers: the distributed execution model replays the same plan on every
// node, which is only sound when all nodes resolve a statement to the same
// physical plan.
func (db *DB) ConfigFingerprint() string {
	return fmt.Sprintf("w%d|b%d|c%t|a%t|g%d|t%d|u%t",
		db.ctx.Workers, db.ctx.CompBudget, db.columnar, db.config.Auto,
		db.config.Group, db.config.Theta, db.unified)
}

// cacheKey normalizes the statement text (whitespace runs outside string
// literals collapse) and tags it with everything else a plan depends on: the
// strategy configuration, execution mode, unified mode, the catalog epoch
// and the stats epoch (source statistics feed blocker fitting and strategy
// selection, so a plan prepared before a load must miss after it).
func (db *DB) cacheKey(query string, epoch, statsEpoch int64) string {
	return fmt.Sprintf("e%d|s%d|c%t|a%t|g%d|t%d|u%t|%s",
		epoch, statsEpoch, db.columnar, db.config.Auto,
		db.config.Group, db.config.Theta, db.unified, normalizeQuery(query))
}

// normalizeQuery collapses whitespace runs to single spaces — but never
// inside '…' / "…" string literals, whose spacing is semantically
// significant and must keep distinct statements on distinct cache keys.
func normalizeQuery(q string) string {
	var sb strings.Builder
	sb.Grow(len(q))
	var quote byte
	space := false
	for i := 0; i < len(q); i++ {
		c := q[i]
		if quote != 0 {
			sb.WriteByte(c)
			if c == quote {
				quote = 0
			}
			continue
		}
		switch {
		case c == '\'' || c == '"':
			if space && sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			space = false
			quote = c
			sb.WriteByte(c)
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			space = true
		default:
			if space && sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			space = false
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

// prepare resolves query to a Prepared plan, consulting the LRU plan cache.
// The returned bool reports whether the plan was served from the cache.
// Cache hits read only the epoch under the lock — the catalog snapshot is
// copied on misses alone, keeping the hot path allocation-light. A cache
// miss resolves (and lazily loads, under ctx) every source the statement
// references; hits reuse the already-resolved datasets.
func (db *DB) prepare(ctx context.Context, query string) (*core.Prepared, bool, error) {
	if db.cache == nil {
		prep, err := db.prepareOn(ctx, query)
		return prep, false, err
	}
	db.mu.RLock()
	epoch := db.epoch
	db.mu.RUnlock()
	statsEpoch := db.statsEpoch.Load()
	key := db.cacheKey(query, epoch, statsEpoch)
	if prep, ok := db.cache.get(key); ok {
		return prep, true, nil
	}
	// Capture the purge generation before snapshotting: if a concurrent
	// Register lands anywhere after this point, the put below is dropped
	// rather than parking an unreachable entry in the cache.
	gen := db.cache.generation()
	prep, epoch2, err := db.prepareOnEpoch(ctx, query)
	if err != nil {
		return nil, false, err
	}
	// Preparation may itself have loaded pending sources (bumping the stats
	// epoch); key the plan under the state it was actually built against.
	if se2 := db.statsEpoch.Load(); epoch2 != epoch || se2 != statsEpoch {
		key = db.cacheKey(query, epoch2, se2)
	}
	db.cache.put(key, prep, gen)
	return prep, false, nil
}

// prepareOn plans the statement against a fresh catalog snapshot under ctx.
func (db *DB) prepareOn(ctx context.Context, query string) (*core.Prepared, error) {
	prep, _, err := db.prepareOnEpoch(ctx, query)
	return prep, err
}

func (db *DB) prepareOnEpoch(ctx context.Context, query string) (*core.Prepared, int64, error) {
	catalog, epoch := db.snapshot(ctx)
	p := db.pipelineWith(catalog)
	prep, err := p.Prepare(query)
	// Preparation resolved the statement's sources into the Prepared; drop
	// the catalog view so plans — which may sit in the cache indefinitely —
	// never pin the preparing query's context or the snapshot map.
	p.Catalog = nil
	return prep, epoch, err
}

// Query parses, optimizes and executes a CleanM statement with optional
// parameter arguments and no cancellation. Equivalent to
// QueryContext(context.Background(), q, args...).
func (db *DB) Query(q string, args ...any) (*Result, error) {
	return db.QueryContext(context.Background(), q, args...)
}

// QueryContext executes a CleanM statement under ctx. Plain arguments bind
// `?` placeholders in order; Named(...) arguments bind `:name` placeholders.
// Cancelling ctx (or exceeding its deadline) aborts the execution promptly —
// including mid theta join — and returns ctx.Err().
//
// Plans are served from the DB's LRU cache when an identical statement
// (modulo whitespace) ran against the same catalog epoch and configuration,
// so repeated un-prepared calls skip parsing, normalization and lowering;
// use PrepareStmt to make that reuse explicit.
func (db *DB) QueryContext(ctx context.Context, q string, args ...any) (*Result, error) {
	prep, hit, err := db.prepare(ctx, q)
	if err != nil {
		return nil, err
	}
	params, err := bindArgs(prep.Params(), args)
	if err != nil {
		return nil, err
	}
	if res, vh, served, err := db.viewExecute(ctx, q, prep, params); served || err != nil {
		if err != nil {
			return nil, err
		}
		return &Result{inner: res, planReused: hit, viewHit: vh}, nil
	}
	res, err := prep.ExecuteContext(ctx, params)
	if err != nil {
		return nil, err
	}
	db.storeView(q, prep, params, res)
	return &Result{inner: res, planReused: hit}, nil
}

// ExecuteTo executes a CleanM statement under ctx and pumps its primary
// output straight into s instead of answering with a row buffer: the
// result's engine partitions stream to the sink partition-parallel under
// the query's job context, so cancelling ctx aborts the export exactly as
// it aborts the operator loops, and no flattened copy of the result is ever
// built — memory beyond the engine's own partitions is bounded by the
// partitions in flight.
//
// The returned Result carries everything except a materialized answer:
// metrics (including Metrics().ExportedRows), repair summaries (export
// healed rows with RepairedTo), task names and counts. Its row accessors
// still work — the partitions remain addressable — so printing a sample
// after an export costs nothing extra.
func (db *DB) ExecuteTo(ctx context.Context, q string, s Sink, args ...any) (*Result, error) {
	prep, hit, err := db.prepare(ctx, q)
	if err != nil {
		return nil, err
	}
	params, err := bindArgs(prep.Params(), args)
	if err != nil {
		return nil, err
	}
	if res, vh, served, err := db.viewExecute(ctx, q, prep, params); served || err != nil {
		if err != nil {
			return nil, err
		}
		// A view answers the statement without re-executing; the export
		// itself still streams partition-parallel under ctx.
		if _, err := res.ExportTo(ctx, s); err != nil {
			return nil, err
		}
		return &Result{inner: res, planReused: hit, viewHit: vh}, nil
	}
	res, err := prep.ExecuteToContext(ctx, params, s)
	if err != nil {
		return nil, err
	}
	db.storeView(q, prep, params, res)
	return &Result{inner: res, planReused: hit}, nil
}

// PrepareStmt parses, de-sugars, normalizes and lowers a CleanM statement
// through all three optimization levels exactly once and returns the
// reusable Stmt. The heavy lifting (blocker fitting, plus loading any
// still-pending sources the statement references) happens here;
// Stmt.ExecContext only binds parameters and runs the physical plan.
func (db *DB) PrepareStmt(q string) (*Stmt, error) {
	return db.PrepareStmtContext(context.Background(), q)
}

// PrepareStmtContext is PrepareStmt under a context: cancelling ctx aborts
// the lazy source loads preparation may trigger.
func (db *DB) PrepareStmtContext(ctx context.Context, q string) (*Stmt, error) {
	prep, _, err := db.prepare(ctx, q)
	if err != nil {
		return nil, err
	}
	return &Stmt{prep: prep, query: q}, nil
}

// Explain plans the query through all three levels and returns the EXPLAIN
// text without executing it. Parameterized statements may be explained
// without bindings; placeholders render as `?N` / `:name`. Note that
// planning resolves the statement's sources, so explaining a statement over
// a pending source loads it.
func (db *DB) Explain(q string) (string, error) {
	prep, _, err := db.prepare(context.Background(), q)
	if err != nil {
		return "", err
	}
	return prep.Explain(), nil
}

// PlanCacheStats reports the plan cache's hit/miss counters and current
// size. A statement prepared once and executed many times shows up as one
// miss followed by hits (Query path) or no further lookups at all (Stmt
// path).
func (db *DB) PlanCacheStats() CacheStats { return db.cache.stats() }

// Result is a completed query. A Result is immutable and safe to share
// across goroutines.
//
// Result rows live as partitioned views handed straight off the engine.
// Iter streams them with no copy at all; Rows/TaskRows flatten on first use
// and memoize the flat slice; RowCount/TaskRowCount answer without
// materializing anything.
type Result struct {
	inner *core.Result
	// planReused reports whether this execution reused an already-prepared
	// plan (plan-cache hit, or any execution of a Stmt).
	planReused bool
	// viewHit records how the materialized view cache served this
	// execution: "" (full execution), "exact", or "delta".
	viewHit string
}

// ViewHit reports whether this execution was served by the materialized
// view cache: "" for a full execution, "exact" for a verbatim cached
// answer, "delta" for a cached base merged with a delta pass over appended
// rows.
func (r *Result) ViewHit() string { return r.viewHit }

// Rows returns the query's primary output records. For multi-operator
// cleaning queries this is the combined violation report (one record per
// entity with at least one violation); for single operators, the violation
// records; for plain queries, the projected rows.
//
// The slice is built on first call and memoized: repeated calls return the
// same backing array, so treat it as read-only. It is allocated at exact
// capacity — appending to it reallocates rather than corrupting the Result.
// A query with no output rows returns nil (earlier versions returned a
// non-nil empty slice); test emptiness with len or RowCount, not against
// nil. Prefer Iter to stream without materializing, or RowCount when only
// the size matters.
func (r *Result) Rows() []Value { return r.inner.Rows() }

// RowCount returns the number of primary output rows without flattening or
// copying anything.
func (r *Result) RowCount() int { return r.inner.Primary().Len() }

// Iter returns a cursor over the primary output rows: a single-use sequence
// that drains the engine's result partitions in order without building the
// flat slice Rows returns. The error value exists for sinks and sources
// that can fail mid-stream; iterating a completed in-memory Result never
// yields one. Breaking out of the loop early is allowed and cheap.
func (r *Result) Iter() iter.Seq2[Value, error] {
	return func(yield func(Value, error) bool) {
		for v := range r.inner.Primary().All() {
			if !yield(v, nil) {
				return
			}
		}
	}
}

// TaskRows returns the output of the named cleaning operator task ("fd1",
// "dedup1", "clusterby1", or "query"), or nil when the task is unknown or
// produced nothing. Use TaskRowsOK to distinguish the two. For unified
// queries the per-task violations are folded inside the combined records;
// use Rows instead.
func (r *Result) TaskRows(name string) []Value {
	rows, _ := r.TaskRowsOK(name)
	return rows
}

// TaskRowsOK returns the output of the named cleaning operator task and
// whether the task exists in this query — so an existing task with an empty
// output (rows == nil, ok == true) is distinguishable from an unknown task
// name (ok == false). Like Rows, the slice is memoized and shared across
// calls: treat it as read-only (appending is safe).
func (r *Result) TaskRowsOK(name string) ([]Value, bool) {
	for _, t := range r.inner.Tasks {
		if t.Name == name {
			return t.Output.Rows(), true
		}
	}
	return nil, false
}

// TaskRowCount returns the named task's output row count and whether the
// task exists, without materializing the rows.
func (r *Result) TaskRowCount(name string) (int, bool) {
	for _, t := range r.inner.Tasks {
		if t.Name == name {
			return t.Output.Len(), true
		}
	}
	return 0, false
}

// TaskNames lists the cleaning tasks of the query in order.
func (r *Result) TaskNames() []string {
	out := make([]string, len(r.inner.Tasks))
	for i, t := range r.inner.Tasks {
		out[i] = t.Name
	}
	return out
}

// Explanation renders the three-level EXPLAIN (normalized comprehensions
// and the optimized algebraic DAG).
func (r *Result) Explanation() string { return r.inner.Explanation }

// QueryMetrics is the cost snapshot of a single query execution, measured
// on the query's own job context: concurrent queries never pollute each
// other's numbers, unlike the instance-wide DB.Metrics accumulators.
type QueryMetrics struct {
	// SimTicks is the deterministic cost-model time of this execution.
	SimTicks int64
	// Comparisons counts this execution's pairwise similarity/predicate checks.
	Comparisons int64
	// ShuffledRecords counts records this execution moved across the
	// simulated network.
	ShuffledRecords int64
	// ShuffledBytes estimates bytes this execution moved.
	ShuffledBytes int64
	// PlanCacheHit reports whether the execution reused an already-prepared
	// plan instead of planning from scratch (always true for Stmt
	// executions).
	PlanCacheHit bool
	// ExportedRows counts rows this execution pumped into a sink (ExecuteTo
	// paths); zero for plain Query executions.
	ExportedRows int64
	// BatchesEvaluated counts column batches run through vectorized operator
	// kernels; zero under WithRowExecution.
	BatchesEvaluated int64
	// SimCacheHits / SimCacheMisses count this execution's memoized
	// pair-similarity probes: a hit answered a similarity comparison from the
	// cache (the comparison is still charged to Comparisons).
	SimCacheHits   int64
	SimCacheMisses int64
	// Strategies counts the physical strategies the executor chose, by name
	// ("join:hash", "join:mbucket", "nest:aggregate", ...); nil when the
	// query executed no joins or groupings.
	Strategies map[string]int64
}

// Metrics returns the cost counters of this execution alone.
func (r *Result) Metrics() QueryMetrics {
	return QueryMetrics{
		SimTicks:         r.inner.Stats.SimTicks,
		Comparisons:      r.inner.Stats.Comparisons,
		ShuffledRecords:  r.inner.Stats.ShuffledRecords,
		ShuffledBytes:    r.inner.Stats.ShuffledBytes,
		PlanCacheHit:     r.planReused,
		ExportedRows:     r.inner.Stats.ExportedRows,
		BatchesEvaluated: r.inner.Stats.BatchesEvaluated,
		SimCacheHits:     r.inner.Stats.SimCacheHits,
		SimCacheMisses:   r.inner.Stats.SimCacheMisses,
		Strategies:       r.inner.Stats.Strategies,
	}
}

// RepairSummary reports the outcome of a REPAIR clause: the healed rows and
// the convergence statistics of the relaxation loop.
type RepairSummary = core.RepairSummary

// Repairs lists one summary per REPAIR clause executed by the query.
func (r *Result) Repairs() []*RepairSummary { return r.inner.Repairs() }

// RepairedRows returns the healed rows of the named source after the query's
// REPAIR clauses, or nil when the query repaired nothing in that source.
// Successive REPAIR clauses on one source compose, so the last summary holds
// the final rows. Re-register them (RegisterRows) to query the cleaned data,
// or use RepairedTo to export them without the intermediate slice. The slice
// is shared across calls: treat it as read-only (appending is safe).
func (r *Result) RepairedRows(source string) []Value {
	var rows []Value
	for _, s := range r.inner.Repairs() {
		if s.Source == source {
			rows = s.Rows
		}
	}
	return rows
}

// RepairedTo pumps the healed rows of the named source — the final state
// after every REPAIR clause on it — into s, partition-parallel under ctx,
// and returns the number of rows written. Cancelling ctx aborts the export
// between partitions, like ExecuteTo. It errors when the query repaired
// nothing in that source.
func (r *Result) RepairedTo(ctx context.Context, source string, s Sink) (int64, error) {
	return r.inner.RepairedTo(ctx, source, s)
}

// Metrics reports the engine cost counters accumulated across all queries
// since Open (or the last ResetMetrics). Safe to read concurrently with
// running queries; a query's costs merge in when it completes. For the cost
// of one specific execution use Result.Metrics.
type Metrics struct {
	// SimTicks is the deterministic cost-model time (straggler-sensitive).
	SimTicks int64
	// Comparisons counts pairwise similarity/predicate checks.
	Comparisons int64
	// ShuffledRecords counts records moved across the simulated network.
	ShuffledRecords int64
	// ShuffledBytes estimates bytes moved across the simulated network.
	ShuffledBytes int64
	// BatchesEvaluated counts column batches run through vectorized operator
	// kernels.
	BatchesEvaluated int64
	// DictHits / DictMisses count string-dictionary interning at load time: a
	// hit found the string already encoded, a miss admitted a new distinct
	// string. misses/(hits+misses) approximates column cardinality.
	DictHits   int64
	DictMisses int64
	// SimCacheHits / SimCacheMisses count memoized pair-similarity probes
	// across all queries.
	SimCacheHits   int64
	SimCacheMisses int64
	// Strategies counts physical strategy choices by name across all queries;
	// nil when none were recorded.
	Strategies map[string]int64
}

// Metrics returns a snapshot of the instance-wide engine cost counters.
func (db *DB) Metrics() Metrics {
	m := db.ctx.Metrics()
	dictHits, dictMisses := m.DictStats()
	simHits, simMisses := m.SimCacheStats()
	return Metrics{
		SimTicks:         m.SimTicks(),
		Comparisons:      m.Comparisons(),
		ShuffledRecords:  m.ShuffledRecords(),
		ShuffledBytes:    m.ShuffledBytes(),
		BatchesEvaluated: m.BatchesEvaluated(),
		DictHits:         dictHits,
		DictMisses:       dictMisses,
		SimCacheHits:     simHits,
		SimCacheMisses:   simMisses,
		Strategies:       m.Strategies(),
	}
}

// ResetMetrics clears the instance-wide engine cost counters.
func (db *DB) ResetMetrics() { db.ctx.Metrics().Reset() }
