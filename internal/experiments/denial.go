package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"time"

	"cleandb/internal/bigdansing"
	"cleandb/internal/cleaning"
	"cleandb/internal/data"
	"cleandb/internal/datagen"
	"cleandb/internal/engine"
	"cleandb/internal/physical"
	"cleandb/internal/sparksql"
	"cleandb/internal/types"
)

// fig6SFs are the TPC-H scale factors of Figure 6 / Table 5.
var fig6SFs = []int{15, 30, 45, 60, 70}

// genLineitemSF generates the noisy lineitem rows for a scale factor,
// drawing noisy keys from the SF15 domain so skew grows with size (paper §8).
func genLineitemSF(s Scale, sf int) []types.Value {
	return datagen.GenLineitem(datagen.LineitemConfig{
		Rows:     sf * s.RowsPerSF,
		BaseRows: fig6SFs[0] * s.RowsPerSF,
		Seed:     s.Seed,
	})
}

// ruleφ: (orderkey, linenumber) → suppkey.
var (
	ruleφLHS = cleaning.FieldsExtract("orderkey", "linenumber")
	ruleφRHS = cleaning.FieldExtract("suppkey")
)

// Figure6 reproduces Figures 6a and 6b: the cost of checking rule φ over
// TPC-H as the scale factor grows, for CSV (all three systems) and the
// binary columnar format (CleanDB and Spark SQL only — BigDansing reads
// delimited text only).
func Figure6(s Scale) (csvTable, colbinTable *Table) {
	csvTable = &Table{
		ID:      "Figure 6a",
		Title:   "Denial constraints (rule φ): TPC-H CSV",
		Columns: []string{"SF", "Rows", "BigDansing", "SparkSQL", "CleanDB"},
	}
	colbinTable = &Table{
		ID:      "Figure 6b",
		Title:   "Denial constraints (rule φ): TPC-H colbin (Parquet stand-in)",
		Columns: []string{"SF", "Rows", "SparkSQL", "CleanDB"},
	}
	for _, sf := range fig6SFs {
		rows := genLineitemSF(s, sf)
		var csvBuf, binBuf bytes.Buffer
		if err := data.WriteCSV(&csvBuf, rows); err != nil {
			panic(err)
		}
		if err := data.WriteColbin(&binBuf, rows); err != nil {
			panic(err)
		}

		runFD := func(raw []byte, format string, strategy physical.GroupStrategy) string {
			var best time.Duration
			var tk int64
			for rep := 0; rep < 3; rep++ {
				runtime.GC()
				start := time.Now()
				var (
					parsed []types.Value
					err    error
				)
				switch format {
				case "csv":
					parsed, err = data.ReadCSV(bytes.NewReader(raw))
				default:
					parsed, err = data.ReadColbin(bytes.NewReader(raw))
				}
				if err != nil {
					panic(err)
				}
				ctx := engine.NewContext(s.Workers)
				ds := engine.FromValues(ctx, parsed)
				cleaning.FDCheck(ds, ruleφLHS, ruleφRHS, strategy).Count()
				wall := time.Since(start)
				if best == 0 || wall < best {
					best = wall
				}
				tk = ctx.Metrics().SimTicks()
			}
			return fmt.Sprintf("%s/%s", ms(best), ticks(tk))
		}

		csvTable.AddRow(fmt.Sprintf("%d", sf), fmt.Sprintf("%d", len(rows)),
			runFD(csvBuf.Bytes(), "csv", physical.GroupHash),
			runFD(csvBuf.Bytes(), "csv", physical.GroupSort),
			runFD(csvBuf.Bytes(), "csv", physical.GroupAggregate))
		colbinTable.AddRow(fmt.Sprintf("%d", sf), fmt.Sprintf("%d", len(rows)),
			runFD(binBuf.Bytes(), "colbin", physical.GroupSort),
			runFD(binBuf.Bytes(), "colbin", physical.GroupAggregate))
	}
	for _, t := range []*Table{csvTable, colbinTable} {
		t.Note("cells are wall/ticks (parse + FD check); rule φ = orderkey,linenumber → suppkey; 10%% noisy orderkeys")
	}
	csvTable.Note("paper shape: CleanDB < SparkSQL < BigDansing at every SF")
	colbinTable.Note("paper shape: columnar beats CSV; CleanDB < SparkSQL")
	return csvTable, colbinTable
}

// Table5 reproduces Table 5: the inequality rule ψ — only CleanDB finishes.
// ψ: t1.price < t2.price ∧ t1.discount > t2.discount ∧ t1.price < X,
// where the price filter keeps ~0.01% of rows.
func Table5(s Scale) *Table {
	t := &Table{
		ID:      "Table 5",
		Title:   "Denial constraints involving inequalities (rule ψ)",
		Columns: []string{"SF", "Rows", "CleanDB", "SparkSQL", "BigDansing"},
	}
	for _, sf := range fig6SFs {
		rows := genLineitemSF(s, sf)
		// Pick X so the t1-side filter keeps a handful of rows (~0.01%).
		threshold := priceQuantile(rows, 0.0002)
		band := func(v types.Value) float64 { return v.Field("extendedprice").Float() }
		predFull := func(t1, t2 types.Value) bool {
			return t1.Field("extendedprice").Float() < t2.Field("extendedprice").Float() &&
				t1.Field("discount").Float() > t2.Field("discount").Float() &&
				t1.Field("extendedprice").Float() < threshold
		}

		// CleanDB: normalization pushes the selective filter below the
		// self-join; M-Bucket executes the remainder.
		cleanDB := func() string {
			ctx := engine.NewContext(s.Workers)
			ctx.CompBudget = s.CompBudget
			ds := engine.FromValues(ctx, rows)
			start := time.Now()
			_, err := cleaning.DCCheck(ds, cleaning.DCConfig{
				LeftFilter: func(v types.Value) bool {
					return v.Field("extendedprice").Float() < threshold
				},
				Pred:     predFull,
				Band:     band,
				BandOp:   "<",
				Strategy: physical.ThetaMBucket,
			})
			if err != nil {
				return DNF
			}
			return fmt.Sprintf("%s/%s", ms(time.Since(start)), ticks(ctx.Metrics().SimTicks()))
		}()

		// Spark SQL: cartesian product + filter over the full self-join.
		sparkSQL := func() string {
			ctx := engine.NewContext(s.Workers)
			ctx.CompBudget = s.CompBudget
			ds := engine.FromValues(ctx, rows)
			ss := sparksql.System{}
			start := time.Now()
			_, err := ss.DCCheck(ds, cleaning.DCConfig{Pred: predFull, Band: band, BandOp: "<"})
			if err != nil {
				return DNF
			}
			return ms(time.Since(start))
		}()

		// BigDansing: min/max block pruning over arrival-order blocks.
		bigD := func() string {
			ctx := engine.NewContext(s.Workers)
			ctx.CompBudget = s.CompBudget
			ds := engine.FromValues(ctx, rows)
			bd := bigdansing.System{}
			start := time.Now()
			_, err := bd.DCCheck(ds, cleaning.DCConfig{Pred: predFull, Band: band, BandOp: "<"})
			if err != nil {
				return DNF
			}
			return ms(time.Since(start))
		}()

		t.AddRow(fmt.Sprintf("%d", sf), fmt.Sprintf("%d", len(rows)), cleanDB, sparkSQL, bigD)
	}
	t.Note("comparison budget %d; CleanDB pushes the 0.01%%-selectivity price filter below the theta join", s.CompBudget)
	t.Note("paper shape: all systems besides CleanDB fail to terminate")
	return t
}

// priceQuantile returns the price below which a q-fraction of rows fall.
func priceQuantile(rows []types.Value, q float64) float64 {
	prices := make([]float64, len(rows))
	for i, r := range rows {
		prices[i] = r.Field("extendedprice").Float()
	}
	sort.Float64s(prices)
	idx := int(float64(len(prices)) * q)
	if idx < 1 {
		idx = 1
	}
	if idx >= len(prices) {
		idx = len(prices) - 1
	}
	return prices[idx]
}
