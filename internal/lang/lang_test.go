package lang

import (
	"strings"
	"testing"

	"cleandb/internal/monoid"
)

func parse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestTokenize(t *testing.T) {
	toks, err := Tokenize(`SELECT a.b, 'str' 1.5 >= (x)`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{TokIdent, TokIdent, TokDot, TokIdent, TokComma, TokString, TokNumber, TokOp, TokLParen, TokIdent, TokRParen, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count = %d, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d: kind %v, want %v (%q)", i, toks[i].Kind, k, toks[i].Text)
		}
	}
}

func TestTokenizeErrors(t *testing.T) {
	if _, err := Tokenize(`'unterminated`); err == nil {
		t.Error("unterminated string should error")
	}
	if _, err := Tokenize(`@`); err == nil {
		t.Error("unknown character should error")
	}
}

func TestParseBasicSelect(t *testing.T) {
	q := parse(t, `SELECT c.name AS n, c.age FROM customer c WHERE c.age > 18`)
	if len(q.Select) != 2 || q.Select[0].Alias != "n" {
		t.Fatalf("select list: %+v", q.Select)
	}
	if len(q.From) != 1 || q.From[0].Source != "customer" || q.From[0].Alias != "c" {
		t.Fatalf("from: %+v", q.From)
	}
	if q.Where == nil || !strings.Contains(q.Where.String(), ">") {
		t.Fatalf("where: %v", q.Where)
	}
}

func TestParseStar(t *testing.T) {
	q := parse(t, `SELECT * FROM t`)
	if !q.Star || len(q.Select) != 0 {
		t.Fatalf("star: %+v", q)
	}
	if q.From[0].Alias != "t" {
		t.Fatal("bare table name aliases to itself")
	}
}

func TestParseDistinct(t *testing.T) {
	if !parse(t, `SELECT DISTINCT a.x FROM a`).Distinct {
		t.Fatal("distinct flag")
	}
	if parse(t, `SELECT ALL a.x FROM a`).Distinct {
		t.Fatal("ALL is not distinct")
	}
}

func TestParseGroupByHaving(t *testing.T) {
	q := parse(t, `SELECT c.city, count(*) AS n FROM customer c GROUP BY c.city HAVING count(*) > 1`)
	if len(q.GroupBy) != 1 {
		t.Fatalf("group by: %v", q.GroupBy)
	}
	if q.Having == nil {
		t.Fatal("having missing")
	}
}

func TestParseOperatorPrecedence(t *testing.T) {
	q := parse(t, `SELECT * FROM t WHERE a.x + 2 * 3 = 7 AND NOT a.y < 1 OR a.z = 2`)
	// or( and( == ( +(x, *(2,3)), 7), not(<)), ==)
	s := q.Where.String()
	if !strings.Contains(s, "(2 * 3)") {
		t.Fatalf("multiplication should bind tighter: %s", s)
	}
	if !strings.HasPrefix(s, "((") {
		t.Fatalf("or should be outermost: %s", s)
	}
}

func TestParseFD(t *testing.T) {
	q := parse(t, `SELECT * FROM customer c FD(c.address, prefix(c.phone))`)
	if len(q.Cleaning) != 1 || q.Cleaning[0].Kind != CleanFD {
		t.Fatalf("cleaning: %+v", q.Cleaning)
	}
	op := q.Cleaning[0]
	if len(op.LHS) != 1 || len(op.RHS) != 1 {
		t.Fatalf("fd sides: %+v", op)
	}
	if !strings.Contains(op.RHS[0].String(), "prefix") {
		t.Fatalf("rhs: %s", op.RHS[0])
	}
}

func TestParseFDTuple(t *testing.T) {
	q := parse(t, `SELECT * FROM l FD((l.orderkey, l.linenumber), l.suppkey)`)
	op := q.Cleaning[0]
	if len(op.LHS) != 2 || len(op.RHS) != 1 {
		t.Fatalf("fd tuple sides: LHS=%d RHS=%d", len(op.LHS), len(op.RHS))
	}
}

func TestParseDedup(t *testing.T) {
	q := parse(t, `SELECT * FROM customer c DEDUP(token_filtering, LD, 0.8, c.address)`)
	op := q.Cleaning[0]
	if op.Kind != CleanDedup || op.Blocker.Op != "token_filtering" {
		t.Fatalf("dedup: %+v", op)
	}
	if op.Metric != "LD" || op.Theta != 0.8 {
		t.Fatalf("metric/theta: %+v", op)
	}
	if len(op.Attrs) != 1 {
		t.Fatalf("attrs: %+v", op.Attrs)
	}
}

func TestParseDedupDefaults(t *testing.T) {
	q := parse(t, `SELECT * FROM customer c DEDUP(attribute, c.address)`)
	op := q.Cleaning[0]
	if op.Metric != "" || op.Theta != 0 {
		t.Fatalf("defaults should be unset: %+v", op)
	}
	if len(op.Attrs) != 1 {
		t.Fatalf("attrs: %+v", op.Attrs)
	}
}

func TestParseDedupBlockerParam(t *testing.T) {
	q := parse(t, `SELECT * FROM customer c DEDUP(token_filtering(2), LD, 0.7, c.name)`)
	op := q.Cleaning[0]
	if op.Blocker.Param != 2 {
		t.Fatalf("blocker param: %+v", op.Blocker)
	}
}

func TestParseClusterBy(t *testing.T) {
	q := parse(t, `SELECT * FROM customer c, dictionary d CLUSTER BY(kmeans(10), LD, 0.8, c.name)`)
	op := q.Cleaning[0]
	if op.Kind != CleanClusterBy || op.Blocker.Op != "kmeans" || op.Blocker.Param != 10 {
		t.Fatalf("cluster by: %+v", op)
	}
}

func TestParseRunningExample(t *testing.T) {
	q := parse(t, `
SELECT c.name, c.address, *
FROM customer c, dictionary d
FD(c.address, prefix(c.phone))
DEDUP(token_filtering, LD, 0.8, c.address)
CLUSTER BY(token_filtering, LD, 0.8, c.name)`)
	if len(q.Cleaning) != 3 {
		t.Fatalf("want 3 cleaning ops, got %d", len(q.Cleaning))
	}
	kinds := []CleaningKind{CleanFD, CleanDedup, CleanClusterBy}
	for i, k := range kinds {
		if q.Cleaning[i].Kind != k {
			t.Fatalf("op %d kind = %v, want %v", i, q.Cleaning[i].Kind, k)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`FROM t`,
		`SELECT`,
		`SELECT * FROM`,
		`SELECT * FROM t WHERE`,
		`SELECT * FROM t FD(c.a)`,          // missing rhs
		`SELECT * FROM t CLUSTER BY(tf)`,   // missing term
		`SELECT * FROM t trailing garbage`, // unparsed tail... actually alias+ident: garbage
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseLiterals(t *testing.T) {
	q := parse(t, `SELECT * FROM t WHERE t.a = 'str' AND t.b = 2.5 AND t.c = true AND t.d = null`)
	s := q.Where.String()
	for _, want := range []string{`"str"`, "2.5", "true", "null"} {
		if !strings.Contains(s, want) {
			t.Fatalf("where missing %s: %s", want, s)
		}
	}
}

// --- Desugar tests ---

func desugar(t *testing.T, src string) []Task {
	t.Helper()
	q := parse(t, src)
	var d Desugarer
	tasks, err := d.Desugar(q)
	if err != nil {
		t.Fatalf("Desugar: %v", err)
	}
	return tasks
}

func TestDesugarPlainQuery(t *testing.T) {
	tasks := desugar(t, `SELECT c.name AS n FROM customer c WHERE c.age > 18`)
	if len(tasks) != 1 || tasks[0].Name != "query" {
		t.Fatalf("tasks: %+v", tasks)
	}
	comp := tasks[0].Comp
	if comp.M.Name() != "bag" {
		t.Fatalf("plain query monoid = %s", comp.M.Name())
	}
	if len(comp.Quals) != 2 {
		t.Fatalf("quals: %v", comp.Quals)
	}
}

func TestDesugarDistinctUsesSet(t *testing.T) {
	tasks := desugar(t, `SELECT DISTINCT c.name FROM customer c`)
	if tasks[0].Comp.M.Name() != "set" {
		t.Fatalf("distinct should use set monoid, got %s", tasks[0].Comp.M.Name())
	}
}

func TestDesugarFDShape(t *testing.T) {
	tasks := desugar(t, `SELECT * FROM customer c FD(c.address, prefix(c.phone))`)
	comp := tasks[0].Comp
	// First qualifier: generator over a groupby comprehension.
	gen, ok := comp.Quals[0].(*monoid.Generator)
	if !ok {
		t.Fatalf("first qual should be generator: %T", comp.Quals[0])
	}
	inner, ok := gen.Source.(*monoid.Comprehension)
	if !ok || inner.M.Name() != "groupby" {
		t.Fatalf("generator source should be groupby comprehension: %v", gen.Source)
	}
	// The grouping key must be the FD LHS.
	if !strings.Contains(inner.Head.String(), "c.address") {
		t.Fatalf("grouping head: %s", inner.Head)
	}
}

func TestDesugarFDMultiAttr(t *testing.T) {
	tasks := desugar(t, `SELECT * FROM l FD((l.orderkey, l.linenumber), l.suppkey)`)
	comp := tasks[0].Comp
	gen := comp.Quals[0].(*monoid.Generator)
	inner := gen.Source.(*monoid.Comprehension)
	if !strings.Contains(inner.Head.String(), "[l.orderkey, l.linenumber]") {
		t.Fatalf("composite key head: %s", inner.Head)
	}
}

func TestDesugarDedupUsesRegisteredBlocker(t *testing.T) {
	tasks := desugar(t, `SELECT * FROM customer c DEDUP(token_filtering, LD, 0.8, c.address)`)
	task := tasks[0]
	if len(task.Blockers) != 1 {
		t.Fatalf("blockers: %+v", task.Blockers)
	}
	for name, binding := range task.Blockers {
		if !strings.HasPrefix(name, "__block_") {
			t.Fatalf("generated name: %s", name)
		}
		if binding.Spec.Op != "token_filtering" {
			t.Fatalf("binding spec: %+v", binding.Spec)
		}
		if !strings.Contains(task.Comp.String(), name) {
			t.Fatalf("comprehension should call %s:\n%s", name, task.Comp)
		}
	}
}

func TestDesugarDedupExactHasNoBlocker(t *testing.T) {
	tasks := desugar(t, `SELECT * FROM customer c DEDUP(attribute, LD, 0.8, c.address)`)
	if len(tasks[0].Blockers) != 0 {
		t.Fatalf("exact blocking needs no registered blocker: %+v", tasks[0].Blockers)
	}
}

func TestDesugarExactDedupAndFDShareGroupingShape(t *testing.T) {
	// The coalescing prerequisite: the groupby comprehensions of an FD on
	// c.address and an exact DEDUP on c.address must be structurally equal.
	tasks := desugar(t, `
SELECT * FROM customer c
FD(c.address, c.nationkey)
DEDUP(attribute, LD, 0.8, c.address)`)
	g1 := tasks[0].Comp.Quals[0].(*monoid.Generator).Source.(*monoid.Comprehension)
	g2 := tasks[1].Comp.Quals[0].(*monoid.Generator).Source.(*monoid.Comprehension)
	if g1.String() != g2.String() {
		t.Fatalf("grouping comprehensions differ:\n%s\nvs\n%s", g1, g2)
	}
}

func TestDesugarClusterByFindsDictionary(t *testing.T) {
	tasks := desugar(t, `SELECT * FROM customer c, dictionary d CLUSTER BY(token_filtering, LD, 0.8, c.name)`)
	task := tasks[0]
	s := task.Comp.String()
	if !strings.Contains(s, "dictionary") {
		t.Fatalf("dictionary source missing:\n%s", s)
	}
	if !strings.Contains(s, "d.term") {
		t.Fatalf("dictionary term attribute missing:\n%s", s)
	}
	for _, b := range task.Blockers {
		if b.FitSource != "dictionary" {
			t.Fatalf("kmeans centers should fit from the dictionary: %+v", b)
		}
	}
}

func TestDesugarClusterByWithoutDictionaryFails(t *testing.T) {
	q := parse(t, `SELECT * FROM customer c CLUSTER BY(token_filtering, LD, 0.8, c.name)`)
	var d Desugarer
	if _, err := d.Desugar(q); err == nil {
		t.Fatal("cluster by without a dictionary table should fail")
	}
}

func TestDesugarWherePropagatesIntoGrouping(t *testing.T) {
	tasks := desugar(t, `SELECT * FROM customer c WHERE c.age > 18 FD(c.address, c.nationkey)`)
	gen := tasks[0].Comp.Quals[0].(*monoid.Generator)
	inner := gen.Source.(*monoid.Comprehension)
	found := false
	for _, q := range inner.Quals {
		if p, ok := q.(*monoid.Pred); ok && strings.Contains(p.Cond.String(), "age") {
			found = true
		}
	}
	if !found {
		t.Fatalf("where clause should push into grouping:\n%s", inner)
	}
}

func TestDesugarGroupByAggregates(t *testing.T) {
	tasks := desugar(t, `SELECT c.city, count(*) AS n, sum(c.amount) AS total FROM customer c GROUP BY c.city`)
	comp := tasks[0].Comp
	s := comp.String()
	if !strings.Contains(s, "count{") || !strings.Contains(s, "sum{") {
		t.Fatalf("aggregates should become comprehensions:\n%s", s)
	}
}

func TestDesugarEntityKeys(t *testing.T) {
	tasks := desugar(t, `
SELECT * FROM customer c
FD(c.address, c.nationkey)
DEDUP(attribute, LD, 0.8, c.address)`)
	if got := tasks[0].EntityKey.String(); got != "$out.key" {
		t.Fatalf("fd entity key = %s", got)
	}
	if got := tasks[1].EntityKey.String(); got != "$out.a.address" {
		t.Fatalf("dedup entity key = %s", got)
	}
}
