package monoid

import (
	"fmt"
	"sync/atomic"

	"cleandb/internal/types"
)

// Normalizer applies the comprehension normalization algorithm of Fegaras &
// Maier as described in §4.2 of the CleanM paper. Normalization puts a
// comprehension into canonical form while applying optimization rewrites:
//
//   - beta reduction: let bindings are substituted into their uses;
//   - comprehension unnesting: a generator ranging over a nested collection
//     comprehension is flattened into the outer comprehension;
//   - singleton/empty simplification: generators over [] and [e];
//   - if-splitting: a generator over "if c then A else B" splits the
//     comprehension in two, each further optimizable;
//   - existential unnesting: an exists predicate becomes generators of the
//     outer comprehension when the output monoid is idempotent (the dual of
//     SQL's EXISTS-to-join rewrite);
//   - static simplification: constant folding, filters that are statically
//     true/false;
//   - filter pushdown: predicates move in front of the earliest generator
//     that binds their free variables.
type Normalizer struct {
	// MaxPasses bounds the rewrite fixpoint iteration (default 32).
	MaxPasses int
	// Trace, when non-nil, receives a line per applied rule.
	Trace func(rule, detail string)

	fresh atomic.Int64
}

// NewNormalizer returns a normalizer with defaults.
func NewNormalizer() *Normalizer { return &Normalizer{MaxPasses: 32} }

func (n *Normalizer) trace(rule, detail string) {
	if n.Trace != nil {
		n.Trace(rule, detail)
	}
}

// freshVar generates a unique variable name for capture-free rewrites.
func (n *Normalizer) freshVar(prefix string) string {
	return fmt.Sprintf("%s$%d", prefix, n.fresh.Add(1))
}

// Normalize rewrites the comprehension to a fixpoint and returns the result.
// The result is either a *Comprehension or, after full static reduction, a
// *Const / other expression.
func (n *Normalizer) Normalize(c *Comprehension) Expr {
	passes := n.MaxPasses
	if passes <= 0 {
		passes = 32
	}
	var e Expr = c
	for i := 0; i < passes; i++ {
		next, changed := n.rewrite(e)
		e = next
		if !changed {
			break
		}
	}
	if comp, ok := e.(*Comprehension); ok {
		e = n.pushFilters(comp)
	}
	return e
}

// rewrite applies one top-down rewrite pass. It reports whether any rule fired.
func (n *Normalizer) rewrite(e Expr) (Expr, bool) {
	switch node := e.(type) {
	case *Comprehension:
		return n.rewriteComp(node)
	case *Field:
		rec, ch := n.rewrite(node.Rec)
		out := simplifyField(&Field{Rec: rec, Name: node.Name})
		if _, still := out.(*Field); still {
			return out, ch
		}
		return out, true
	case *BinOp:
		l, ch1 := n.rewrite(node.L)
		r, ch2 := n.rewrite(node.R)
		out := simplifyBinOp(&BinOp{Op: node.Op, L: l, R: r})
		_, isBin := out.(*BinOp)
		return out, ch1 || ch2 || !isBin
	case *UnOp:
		inner, ch := n.rewrite(node.E)
		out := simplifyUnOp(&UnOp{Op: node.Op, E: inner})
		_, isUn := out.(*UnOp)
		return out, ch || !isUn
	case *If:
		c, ch1 := n.rewrite(node.Cond)
		t, ch2 := n.rewrite(node.Then)
		f, ch3 := n.rewrite(node.Else)
		if cv, ok := c.(*Const); ok {
			n.trace("if-const", cv.String())
			if cv.Val.Bool() {
				return t, true
			}
			return f, true
		}
		return &If{Cond: c, Then: t, Else: f}, ch1 || ch2 || ch3
	case *Call:
		changed := false
		args := make([]Expr, len(node.Args))
		for i, a := range node.Args {
			na, ch := n.rewrite(a)
			args[i] = na
			changed = changed || ch
		}
		return &Call{Fn: node.Fn, Args: args}, changed
	case *RecordCtor:
		changed := false
		fields := make([]Expr, len(node.Fields))
		for i, f := range node.Fields {
			nf, ch := n.rewrite(f)
			fields[i] = nf
			changed = changed || ch
		}
		return &RecordCtor{Names: node.Names, Fields: fields}, changed
	case *ListCtor:
		changed := false
		elems := make([]Expr, len(node.Elems))
		for i, el := range node.Elems {
			ne, ch := n.rewrite(el)
			elems[i] = ne
			changed = changed || ch
		}
		return &ListCtor{Elems: elems}, changed
	case *Exists:
		inner, ch := n.rewriteComp(node.C)
		if ic, ok := inner.(*Comprehension); ok {
			return &Exists{C: ic}, ch
		}
		// Inner comprehension reduced statically; exists of a constant
		// collection is a constant truth value.
		if cv, ok := inner.(*Const); ok {
			return CBool(len(cv.Val.List()) > 0), true
		}
		return node, ch
	default:
		return e, false
	}
}

// rewriteComp applies the comprehension rules to c.
func (n *Normalizer) rewriteComp(c *Comprehension) (Expr, bool) {
	// First normalize sub-expressions.
	changed := false
	head, ch := n.rewrite(c.Head)
	changed = changed || ch
	quals := make([]Qual, 0, len(c.Quals))
	for _, q := range c.Quals {
		switch qq := q.(type) {
		case *Generator:
			src, ch := n.rewrite(qq.Source)
			changed = changed || ch
			quals = append(quals, &Generator{Var: qq.Var, Source: src})
		case *Pred:
			cond, ch := n.rewrite(qq.Cond)
			changed = changed || ch
			quals = append(quals, &Pred{Cond: cond})
		case *Let:
			e, ch := n.rewrite(qq.E)
			changed = changed || ch
			quals = append(quals, &Let{Var: qq.Var, E: e})
		}
	}
	cur := &Comprehension{M: c.M, Head: head, Quals: quals}

	// Rule: beta-reduce let bindings — but only when substitution cannot
	// duplicate work: the bound expression is cheap (constant, variable or
	// field path) or is used at most once downstream. Expensive bindings
	// used several times stay as lets and lower to Extend operators.
	for i, q := range cur.Quals {
		let, ok := q.(*Let)
		if !ok {
			continue
		}
		uses := countUses(cur, i+1, let.Var)
		if cheapExpr(let.E) || uses <= 1 {
			n.trace("beta-reduce", let.Var)
			rest := &Comprehension{M: cur.M, Head: cur.Head, Quals: append(append([]Qual{}, cur.Quals[:i]...), cur.Quals[i+1:]...)}
			// Substitute only into qualifiers after the binding and the head.
			reduced := substituteFrom(rest, i, let.Var, let.E)
			return reduced, true
		}
	}

	for i, q := range cur.Quals {
		gen, ok := q.(*Generator)
		if !ok {
			continue
		}
		switch src := gen.Source.(type) {
		case *ListCtor:
			if len(src.Elems) == 0 {
				// Rule: generator over [] — the comprehension is Zero.
				n.trace("empty-generator", gen.Var)
				return C(cur.M.Zero()), true
			}
			if len(src.Elems) == 1 {
				// Rule: generator over singleton — substitute.
				n.trace("singleton-generator", gen.Var)
				rest := removeQual(cur, i)
				return substituteFrom(rest, i, gen.Var, src.Elems[0]), true
			}
		case *Const:
			if src.Val.Kind() == types.KindList && len(src.Val.List()) == 0 {
				n.trace("empty-generator", gen.Var)
				return C(cur.M.Zero()), true
			}
		case *If:
			// Rule: if-split. ⊕{e | ..., v ← if c then A else B, ...}
			// = ⊕{e | ..., c, v ← A, ...} ⊕ ⊕{e | ..., !c, v ← B, ...}
			n.trace("if-split", gen.Var)
			thenQuals := append(append([]Qual{}, cur.Quals[:i]...), &Pred{Cond: src.Cond}, &Generator{Var: gen.Var, Source: src.Then})
			thenQuals = append(thenQuals, cur.Quals[i+1:]...)
			elseQuals := append(append([]Qual{}, cur.Quals[:i]...), &Pred{Cond: &UnOp{Op: "not", E: src.Cond}}, &Generator{Var: gen.Var, Source: src.Else})
			elseQuals = append(elseQuals, cur.Quals[i+1:]...)
			return &BinOp{Op: "merge:" + cur.M.Name(),
				L: &Comprehension{M: cur.M, Head: cur.Head, Quals: thenQuals},
				R: &Comprehension{M: cur.M, Head: cur.Head, Quals: elseQuals}}, true
		case *Comprehension:
			if unnestable(src.M, cur.M) {
				// Rule: unnest a nested collection comprehension.
				// ⊕{e | ..., v ← ⊗{e' | q̄}, r̄} = ⊕{e[v:=e'] | ..., q̄, r̄[v:=e']}
				n.trace("unnest", gen.Var)
				inner := n.renameBound(src)
				newQuals := append([]Qual{}, cur.Quals[:i]...)
				newQuals = append(newQuals, inner.Quals...)
				newQuals = append(newQuals, &Let{Var: gen.Var, E: inner.Head})
				newQuals = append(newQuals, cur.Quals[i+1:]...)
				return &Comprehension{M: cur.M, Head: cur.Head, Quals: newQuals}, true
			}
		}
	}

	// Rule: static filters.
	for i, q := range cur.Quals {
		pred, ok := q.(*Pred)
		if !ok {
			continue
		}
		if cv, ok := pred.Cond.(*Const); ok {
			if cv.Val.Bool() {
				n.trace("true-filter", "")
				return removeQual(cur, i), true
			}
			n.trace("false-filter", "")
			return C(cur.M.Zero()), true
		}
		// Rule: existential unnesting for idempotent output monoids.
		if ex, ok := pred.Cond.(*Exists); ok && cur.M.Idempotent() {
			n.trace("exists-unnest", "")
			inner := n.renameBound(ex.C)
			newQuals := append([]Qual{}, cur.Quals[:i]...)
			newQuals = append(newQuals, inner.Quals...)
			if _, isTrue := inner.Head.(*Const); !isTrue {
				newQuals = append(newQuals, &Pred{Cond: inner.Head})
			} else if hc := inner.Head.(*Const); !hc.Val.Bool() {
				newQuals = append(newQuals, &Pred{Cond: inner.Head})
			}
			newQuals = append(newQuals, cur.Quals[i+1:]...)
			return &Comprehension{M: cur.M, Head: cur.Head, Quals: newQuals}, true
		}
	}

	// Rule: split conjunctive filters so pushdown can move the pieces
	// independently.
	for i, q := range cur.Quals {
		pred, ok := q.(*Pred)
		if !ok {
			continue
		}
		if bo, ok := pred.Cond.(*BinOp); ok && bo.Op == "and" {
			n.trace("split-and", "")
			newQuals := append([]Qual{}, cur.Quals[:i]...)
			newQuals = append(newQuals, &Pred{Cond: bo.L}, &Pred{Cond: bo.R})
			newQuals = append(newQuals, cur.Quals[i+1:]...)
			return &Comprehension{M: cur.M, Head: cur.Head, Quals: newQuals}, true
		}
	}

	return cur, changed
}

// renameBound alpha-renames every variable bound inside c to a fresh name so
// that splicing its qualifiers into another comprehension cannot capture.
func (n *Normalizer) renameBound(c *Comprehension) *Comprehension {
	out := c
	for _, q := range c.Quals {
		switch qq := q.(type) {
		case *Generator:
			nv := n.freshVar(qq.Var)
			out = renameVarComp(out, qq.Var, nv)
		case *Let:
			nv := n.freshVar(qq.Var)
			out = renameVarComp(out, qq.Var, nv)
		}
	}
	return out
}

// renameVarComp renames the binding old (and its uses) to nv inside c.
func renameVarComp(c *Comprehension, old, nv string) *Comprehension {
	quals := make([]Qual, len(c.Quals))
	seen := false
	for i, q := range c.Quals {
		switch qq := q.(type) {
		case *Generator:
			src := qq.Source
			if seen {
				src = Substitute(src, old, V(nv))
			}
			v := qq.Var
			if v == old && !seen {
				v = nv
				seen = true
			}
			quals[i] = &Generator{Var: v, Source: src}
		case *Pred:
			cond := qq.Cond
			if seen {
				cond = Substitute(cond, old, V(nv))
			}
			quals[i] = &Pred{Cond: cond}
		case *Let:
			e := qq.E
			if seen {
				e = Substitute(e, old, V(nv))
			}
			v := qq.Var
			if v == old && !seen {
				v = nv
				seen = true
			}
			quals[i] = &Let{Var: v, E: e}
		}
	}
	head := c.Head
	if seen {
		head = Substitute(head, old, V(nv))
	}
	return &Comprehension{M: c.M, Head: head, Quals: quals}
}

// substituteFrom substitutes name:=repl into qualifiers at positions >= from
// and into the head.
func substituteFrom(c *Comprehension, from int, name string, repl Expr) *Comprehension {
	quals := make([]Qual, len(c.Quals))
	copy(quals, c.Quals[:min(from, len(c.Quals))])
	shadowed := false
	for i := from; i < len(c.Quals); i++ {
		if shadowed {
			quals[i] = c.Quals[i]
			continue
		}
		switch qq := c.Quals[i].(type) {
		case *Generator:
			quals[i] = &Generator{Var: qq.Var, Source: Substitute(qq.Source, name, repl)}
			if qq.Var == name {
				shadowed = true
			}
		case *Pred:
			quals[i] = &Pred{Cond: Substitute(qq.Cond, name, repl)}
		case *Let:
			quals[i] = &Let{Var: qq.Var, E: Substitute(qq.E, name, repl)}
			if qq.Var == name {
				shadowed = true
			}
		}
	}
	head := c.Head
	if !shadowed {
		head = Substitute(head, name, repl)
	}
	return &Comprehension{M: c.M, Head: head, Quals: quals}
}

func removeQual(c *Comprehension, i int) *Comprehension {
	quals := make([]Qual, 0, len(c.Quals)-1)
	quals = append(quals, c.Quals[:i]...)
	quals = append(quals, c.Quals[i+1:]...)
	return &Comprehension{M: c.M, Head: c.Head, Quals: quals}
}

// pushFilters moves each predicate directly after the last qualifier that
// binds one of its free variables (filter pushdown).
func (n *Normalizer) pushFilters(c *Comprehension) *Comprehension {
	type entry struct {
		q     Qual
		binds string // "" for predicates
	}
	var gens []entry
	var preds []*Pred
	for _, q := range c.Quals {
		switch qq := q.(type) {
		case *Pred:
			preds = append(preds, qq)
		default:
			var binds string
			if g, ok := q.(*Generator); ok {
				binds = g.Var
			} else if l, ok := q.(*Let); ok {
				binds = l.Var
			}
			gens = append(gens, entry{q: q, binds: binds})
		}
	}
	if len(preds) == 0 {
		return c
	}
	// For each predicate compute the earliest insertion point.
	insertAfter := make([][]*Pred, len(gens)+1)
	for _, p := range preds {
		free := map[string]struct{}{}
		for _, v := range FreeVars(p.Cond) {
			free[v] = struct{}{}
		}
		pos := 0
		for i, g := range gens {
			if g.binds != "" {
				if _, ok := free[g.binds]; ok {
					pos = i + 1
				}
			}
		}
		insertAfter[pos] = append(insertAfter[pos], p)
	}
	var quals []Qual
	for _, p := range insertAfter[0] {
		quals = append(quals, p)
	}
	for i, g := range gens {
		quals = append(quals, g.q)
		for _, p := range insertAfter[i+1] {
			quals = append(quals, p)
		}
	}
	if len(quals) != len(c.Quals) {
		// Defensive: should never happen, keep original on mismatch.
		return c
	}
	n.trace("filter-pushdown", "")
	return &Comprehension{M: c.M, Head: c.Head, Quals: quals}
}

// simplifyField folds field access over record constructors and constants.
func simplifyField(f *Field) Expr {
	switch rec := f.Rec.(type) {
	case *RecordCtor:
		for i, n := range rec.Names {
			if n == f.Name {
				return rec.Fields[i]
			}
		}
	case *Const:
		if rec.Val.Kind() == types.KindRecord {
			return C(rec.Val.Field(f.Name))
		}
	}
	return f
}

// simplifyBinOp folds operators over constants and applies boolean identities.
func simplifyBinOp(b *BinOp) Expr {
	lc, lok := b.L.(*Const)
	rc, rok := b.R.(*Const)
	switch b.Op {
	case "and":
		if lok {
			if lc.Val.Bool() {
				return b.R
			}
			return CBool(false)
		}
		if rok {
			if rc.Val.Bool() {
				return b.L
			}
			return CBool(false)
		}
	case "or":
		if lok {
			if lc.Val.Bool() {
				return CBool(true)
			}
			return b.R
		}
		if rok {
			if rc.Val.Bool() {
				return CBool(true)
			}
			return b.L
		}
	default:
		if lok && rok {
			if v, err := ApplyBinOp(b.Op, lc.Val, rc.Val); err == nil {
				return C(v)
			}
		}
	}
	return b
}

func simplifyUnOp(u *UnOp) Expr {
	if c, ok := u.E.(*Const); ok {
		switch u.Op {
		case "not":
			return CBool(!c.Val.Bool())
		case "-":
			if c.Val.Kind() == types.KindFloat {
				return C(types.Float(-c.Val.Float()))
			}
			return C(types.Int(-c.Val.Int()))
		}
	}
	if inner, ok := u.E.(*UnOp); ok && u.Op == "not" && inner.Op == "not" {
		return inner.E
	}
	return u
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// unnestable reports whether a generator over an inner-monoid comprehension
// may be flattened into an outer-monoid comprehension (Fegaras & Maier's
// side condition). Two requirements:
//
//   - the inner monoid must be a free collection (bag/list/set): structured
//     monoids such as groupby build values whose elements are not the unit
//     inputs, so flattening them would change semantics;
//   - the inner monoid's idempotence must be ≤ the outer's: unnesting a set
//     (which deduplicates) into a non-idempotent monoid (sum, bag) would
//     observe the duplicates the set had absorbed.
func unnestable(inner, outer Monoid) bool {
	switch inner.Name() {
	case "bag", "list":
		return true
	case "set":
		return outer.Idempotent()
	default:
		return false
	}
}

// cheapExpr reports whether substituting e cannot duplicate meaningful work:
// constants, variables and field paths over them.
func cheapExpr(e Expr) bool {
	switch n := e.(type) {
	case *Const, *Var, *Param:
		return true
	case *Field:
		return cheapExpr(n.Rec)
	default:
		return false
	}
}

// countUses counts free occurrences of name in qualifiers from index `from`
// on and in the head, stopping at shadowing bindings.
func countUses(c *Comprehension, from int, name string) int {
	count := 0
	countIn := func(e Expr) {
		for _, v := range FreeVars(e) {
			if v == name {
				count++
			}
		}
	}
	for i := from; i < len(c.Quals); i++ {
		switch qq := c.Quals[i].(type) {
		case *Generator:
			countIn(qq.Source)
			if qq.Var == name {
				return count
			}
		case *Pred:
			countIn(qq.Cond)
		case *Let:
			countIn(qq.E)
			if qq.Var == name {
				return count
			}
		}
	}
	countIn(c.Head)
	return count
}
