// Package physical implements CleanM's third abstraction level: lowering
// algebraic plans onto the engine's operators, following Table 2 of the
// paper (Select→filter, Reduce→map+filter, Unnest→flatMap, Nest→
// aggregateByKey+mapPartitions, equi-Join→hash join, theta-Join→custom
// statistics-aware theta join).
//
// The two physical-level concerns the paper calls out are explicit here:
//
//   - data skew: Nest defaults to local pre-aggregation (aggregateByKey);
//     the Spark SQL and BigDansing baselines select sort- and hash-shuffle
//     strategies instead via Config;
//   - theta joins: inequality predicates are detected in the plan and
//     executed with the histogram-partitioned ThetaJoin instead of a
//     cartesian product; min/max bucket statistics prune impossible bucket
//     pairs for band predicates.
//
// Shared plan nodes (produced by the algebraic rewriter) are executed once
// and memoized, realizing the shared-scan / coalesced-nest DAG of Figure 1.
package physical

import (
	"fmt"
	"sort"

	"cleandb/internal/algebra"
	"cleandb/internal/data"
	"cleandb/internal/engine"
	"cleandb/internal/monoid"
	"cleandb/internal/types"
)

// GroupStrategy selects how Nest shuffles groups.
type GroupStrategy int

// Grouping strategies.
const (
	// GroupAggregate is CleanDB's default: local combine, then merge.
	GroupAggregate GroupStrategy = iota
	// GroupSort models Spark SQL's sort-based aggregation.
	GroupSort
	// GroupHash models BigDansing's hash-based shuffle.
	GroupHash
)

// ThetaStrategy selects how non-equi joins execute.
type ThetaStrategy int

// Theta-join strategies.
const (
	// ThetaMBucket is CleanDB's statistics-aware matrix partitioning.
	ThetaMBucket ThetaStrategy = iota
	// ThetaCartesian is Spark SQL's cartesian-product-plus-filter fallback.
	ThetaCartesian
	// ThetaMinMax is BigDansing's arrival-order block pruning.
	ThetaMinMax
)

// Config selects the physical strategies for one executor.
type Config struct {
	Group GroupStrategy
	Theta ThetaStrategy
	// Auto derives the strategy per operator from source statistics — row
	// counts, band-predicate presence, dictionary distinct-value estimates —
	// instead of the fixed Group/Theta configuration. Decisions are recorded
	// in the metrics' strategy counters.
	Auto bool
}

// Executor runs algebra plans against a catalog of datasets.
type Executor struct {
	Ctx     *engine.Context
	Catalog map[string]*engine.Dataset
	Config  Config

	compiler *monoid.Compiler
	memo     map[algebra.Plan]*engine.Dataset
}

// NewExecutor returns an executor over the catalog with CleanDB defaults.
func NewExecutor(ctx *engine.Context, catalog map[string]*engine.Dataset) *Executor {
	return &Executor{
		Ctx:      ctx,
		Catalog:  catalog,
		compiler: monoid.NewCompiler(),
		memo:     map[algebra.Plan]*engine.Dataset{},
	}
}

// AddBuiltin registers a query-specific builtin (e.g. a fitted blocking
// function) visible to every expression compiled by this executor.
func (ex *Executor) AddBuiltin(name string, fn monoid.Builtin) {
	ex.compiler.Builtins[name] = fn
}

// SetParams binds the statement's parameter placeholders for this execution.
// Expressions are compiled per execution, so concurrent executions of one
// prepared plan with different bindings never observe each other.
func (ex *Executor) SetParams(params map[string]types.Value) {
	ex.compiler.Params = params
}

// Exec executes the plan DAG, memoizing shared nodes. It checks the engine
// context's cancellation state before every node, so a cancelled query stops
// between operators as well as inside the long-running join loops.
func (ex *Executor) Exec(p algebra.Plan) (*engine.Dataset, error) {
	if err := ex.Ctx.Err(); err != nil {
		return nil, err
	}
	if ex.memo == nil {
		ex.memo = map[algebra.Plan]*engine.Dataset{}
	}
	if d, ok := ex.memo[p]; ok {
		return d, nil
	}
	d, err := ex.exec(p)
	if err != nil {
		return nil, err
	}
	if err := ex.Ctx.Err(); err != nil {
		return nil, err
	}
	ex.memo[p] = d
	return d, nil
}

// envSchema returns the environment-record schema for a plan's bindings.
func envSchema(p algebra.Plan) *types.Schema { return types.NewSchema(p.Binds()...) }

// slots maps each binding to its position, for expression compilation.
func slots(binds []string) map[string]int {
	m := make(map[string]int, len(binds))
	for i, b := range binds {
		m[b] = i
	}
	return m
}

// compile compiles e against the bindings of child plan p.
func (ex *Executor) compile(e monoid.Expr, p algebra.Plan) (monoid.CompiledExpr, error) {
	return ex.compiler.Compile(e, slots(p.Binds()))
}

// evalEnv runs a compiled expression over an environment record.
func evalEnv(ce monoid.CompiledExpr, env types.Value) types.Value {
	rec := env.Record()
	if rec == nil {
		return types.Null()
	}
	v, err := ce(rec.Fields)
	if err != nil {
		return types.Null()
	}
	return v
}

func (ex *Executor) exec(p algebra.Plan) (*engine.Dataset, error) {
	switch n := p.(type) {
	case *algebra.Scan:
		return ex.execScan(n)
	case *algebra.Select:
		return ex.execSelect(n)
	case *algebra.Extend:
		return ex.execExtend(n)
	case *algebra.Unnest:
		return ex.execUnnest(n)
	case *algebra.Join:
		return ex.execJoin(n)
	case *algebra.Reduce:
		return ex.execReduce(n)
	case *algebra.Nest:
		return ex.execNest(n)
	case *algebra.CombineAll:
		return ex.execCombine(n)
	default:
		return nil, fmt.Errorf("physical: unsupported plan node %T", p)
	}
}

func (ex *Executor) execScan(n *algebra.Scan) (*engine.Dataset, error) {
	if n.Source == algebra.UnitSource {
		schema := envSchema(n)
		one := types.NewRecord(schema, []types.Value{types.Null()})
		return engine.FromValues(ex.Ctx, []types.Value{one}), nil
	}
	src, ok := ex.Catalog[n.Source]
	if !ok {
		return nil, fmt.Errorf("physical: unknown source %q", n.Source)
	}
	schema := envSchema(n)
	// Rebase the shared catalog dataset onto this executor's (job) context:
	// downstream operators then charge this query's metrics and observe its
	// cancellation, not the instance-wide context the data was loaded under.
	rebased := src.WithContext(ex.Ctx)
	if rebased.Batches() != nil {
		// Columnar source: keep the vectors and defer the env wrapping to
		// row materialization. The stage logs the same cost the Map would.
		return rebased.WrapRecords("scan:"+n.Source, schema), nil
	}
	return rebased.Map("scan:"+n.Source, func(v types.Value) types.Value {
		return types.NewRecord(schema, []types.Value{v})
	}), nil
}

func (ex *Executor) execSelect(n *algebra.Select) (*engine.Dataset, error) {
	child, err := ex.Exec(n.Child)
	if err != nil {
		return nil, err
	}
	pred, err := ex.compile(n.Pred, n.Child)
	if err != nil {
		return nil, err
	}
	if binds := n.Child.Binds(); len(binds) == 1 && child.Batches() != nil && child.WrapSchema() != nil {
		if kernel := ex.compileBatchKernel(n.Pred, binds[0]); kernel != nil {
			return child.FilterBatches("select", kernel), nil
		}
	}
	return child.Filter("select", func(v types.Value) bool {
		return evalEnv(pred, v).Bool()
	}), nil
}

func (ex *Executor) execExtend(n *algebra.Extend) (*engine.Dataset, error) {
	child, err := ex.Exec(n.Child)
	if err != nil {
		return nil, err
	}
	e, err := ex.compile(n.E, n.Child)
	if err != nil {
		return nil, err
	}
	schema := envSchema(n)
	return child.Map("extend:"+n.Var, func(v types.Value) types.Value {
		fields := append(append([]types.Value{}, v.Record().Fields...), evalEnv(e, v))
		return types.NewRecord(schema, fields)
	}), nil
}

func (ex *Executor) execUnnest(n *algebra.Unnest) (*engine.Dataset, error) {
	child, err := ex.Exec(n.Child)
	if err != nil {
		return nil, err
	}
	path, err := ex.compile(n.Path, n.Child)
	if err != nil {
		return nil, err
	}
	schema := envSchema(n)
	outer := n.Outer
	return child.FlatMap("unnest:"+n.As, func(v types.Value) []types.Value {
		list := evalEnv(path, v).List()
		if len(list) == 0 {
			if !outer {
				return nil
			}
			fields := append(append([]types.Value{}, v.Record().Fields...), types.Null())
			return []types.Value{types.NewRecord(schema, fields)}
		}
		out := make([]types.Value, len(list))
		base := v.Record().Fields
		for i, el := range list {
			fields := append(append(make([]types.Value, 0, len(base)+1), base...), el)
			out[i] = types.NewRecord(schema, fields)
		}
		return out
	}), nil
}

func (ex *Executor) execReduce(n *algebra.Reduce) (*engine.Dataset, error) {
	child, err := ex.Exec(n.Child)
	if err != nil {
		return nil, err
	}
	head, err := ex.compile(n.Head, n.Child)
	if err != nil {
		return nil, err
	}
	schema := envSchema(n)
	if n.M.Collection() {
		// Table 2: ∆ → map→filter. A collection reduce is a projection of
		// the head per surviving record.
		if v, ok := n.Head.(*monoid.Var); ok {
			if binds := n.Child.Binds(); len(binds) == 1 && v.Name == binds[0] &&
				child.Batches() != nil && child.WrapSchema() != nil {
				// SELECT-* head over a columnar child: the output records are
				// the scanned records under a new env wrapper — rewrap the
				// vectors instead of boxing a projection per row.
				mapped := child.WrapBare("reduce:"+n.M.Name(), schema)
				if n.M.Name() == "set" {
					return distinct(mapped, "reduce:set", schema), nil
				}
				return mapped, nil
			}
		}
		mapped := child.Map("reduce:"+n.M.Name(), func(v types.Value) types.Value {
			return types.NewRecord(schema, []types.Value{evalEnv(head, v)})
		})
		if n.M.Name() == "set" {
			return distinct(mapped, "reduce:set", schema), nil
		}
		return mapped, nil
	}
	// Primitive monoid: fold partitions locally, then merge partials.
	m := n.M
	partials := child.MapPartitions("reduce:"+m.Name()+":partial", func(_ int, part []types.Value) []types.Value {
		acc := m.Zero()
		for _, v := range part {
			acc = m.Merge(acc, m.Unit(evalEnv(head, v)))
		}
		return []types.Value{acc}
	})
	all := partials.Collect()
	acc := m.Zero()
	for _, v := range all {
		acc = m.Merge(acc, v)
	}
	return engine.FromValues(ex.Ctx, []types.Value{types.NewRecord(schema, []types.Value{acc})}), nil
}

// distinct deduplicates a dataset of env records via an aggregate shuffle.
func distinct(d *engine.Dataset, name string, schema *types.Schema) *engine.Dataset {
	agg := engine.GroupAgg{Finish: func(key types.Value, group []types.Value) types.Value {
		return group[0]
	}}
	return d.AggregateByKey(name, func(v types.Value) types.Value { return v }, agg)
}

// nestAgg adapts a Nest node's aggregate list to the engine's Aggregator.
type nestAgg struct {
	monoids []monoid.Monoid
	vals    []monoid.CompiledExpr
	schema  *types.Schema // {key, name1, name2, ...}
	outer   *types.Schema // {As}
	having  monoid.CompiledExpr
}

func (na *nestAgg) Zero() interface{} {
	accs := make([]types.Value, len(na.monoids))
	for i, m := range na.monoids {
		accs[i] = m.Zero()
	}
	return accs
}

func (na *nestAgg) Add(acc interface{}, v types.Value) interface{} {
	accs := acc.([]types.Value)
	for i, m := range na.monoids {
		accs[i] = m.Merge(accs[i], m.Unit(evalEnv(na.vals[i], v)))
	}
	return accs
}

func (na *nestAgg) Merge(a, b interface{}) interface{} {
	as, bs := a.([]types.Value), b.([]types.Value)
	for i, m := range na.monoids {
		as[i] = m.Merge(as[i], bs[i])
	}
	return as
}

func (na *nestAgg) Result(key types.Value, acc interface{}) types.Value {
	accs := acc.([]types.Value)
	fields := append(make([]types.Value, 0, len(accs)+1), key)
	fields = append(fields, accs...)
	groupRec := types.NewRecord(na.schema, fields)
	if na.having != nil {
		ok, err := na.having([]types.Value{groupRec})
		if err != nil || !ok.Bool() {
			return types.Null() // dropped by the engine
		}
	}
	return types.NewRecord(na.outer, []types.Value{groupRec})
}

func (na *nestAgg) AccSize(acc interface{}) int64 {
	accs := acc.([]types.Value)
	var n int64 = 1
	for i, m := range na.monoids {
		if m.Collection() {
			n += int64(len(accs[i].List()))
		}
	}
	return n
}

func (ex *Executor) execNest(n *algebra.Nest) (*engine.Dataset, error) {
	child, err := ex.Exec(n.Child)
	if err != nil {
		return nil, err
	}
	keyExprs := make([]monoid.CompiledExpr, len(n.Keys))
	for i, k := range n.Keys {
		ce, err := ex.compile(k, n.Child)
		if err != nil {
			return nil, err
		}
		keyExprs[i] = ce
	}
	names := make([]string, 0, len(n.Aggs)+1)
	names = append(names, "key")
	na := &nestAgg{outer: envSchema(n)}
	for _, a := range n.Aggs {
		ce, err := ex.compile(a.Val, n.Child)
		if err != nil {
			return nil, err
		}
		na.vals = append(na.vals, ce)
		na.monoids = append(na.monoids, a.M)
		names = append(names, a.Name)
	}
	na.schema = types.NewSchema(names...)
	if n.Having != nil {
		hv, err := ex.compiler.Compile(n.Having, map[string]int{n.As: 0})
		if err != nil {
			return nil, err
		}
		na.having = hv
	}
	keyFn := func(v types.Value) types.Value {
		if len(keyExprs) == 1 {
			return evalEnv(keyExprs[0], v)
		}
		parts := make([]types.Value, len(keyExprs))
		for i, ke := range keyExprs {
			parts[i] = evalEnv(ke, v)
		}
		return types.ListOf(parts)
	}
	strat := ex.Config.Group
	if ex.Config.Auto {
		strat = ex.chooseGroup(n, child)
	}
	switch strat {
	case GroupSort:
		ex.Ctx.Metrics().NoteStrategy("nest:sort")
		return child.SortShuffleGroup("nest", keyFn, na), nil
	case GroupHash:
		ex.Ctx.Metrics().NoteStrategy("nest:hash")
		return child.HashShuffleGroup("nest", keyFn, na), nil
	default:
		ex.Ctx.Metrics().NoteStrategy("nest:aggregate")
		return child.AggregateByKey("nest", keyFn, na), nil
	}
}

// Stats-driven strategy selection thresholds.
const (
	// statsSampleCap bounds the rows a distinct-value probe examines.
	statsSampleCap = 1 << 14
	// hashGroupKeyRatio: above this distinct/sampled ratio, map-side
	// combining stops reducing shuffle volume and the hash shuffle wins.
	hashGroupKeyRatio = 0.5
	// smallCrossThreshold: below this candidate-pair count, the cartesian
	// filter beats the partitioned theta machinery.
	smallCrossThreshold = 1 << 14
)

// chooseGroup picks the grouping shuffle from a dictionary-based distinct-key
// estimate: grouping a batch-backed scan on a dictionary-encoded column, the
// distinct-code bitset over a bounded sample tells whether keys repeat. When
// nearly every row has its own key, local pre-aggregation buffers the input
// for no volume reduction, so the hash shuffle is chosen; repetitive keys
// keep the default combine-then-merge.
func (ex *Executor) chooseGroup(n *algebra.Nest, child *engine.Dataset) GroupStrategy {
	binds := n.Child.Binds()
	if len(n.Keys) != 1 || len(binds) != 1 {
		return GroupAggregate
	}
	f, ok := n.Keys[0].(*monoid.Field)
	if !ok {
		return GroupAggregate
	}
	v, ok := f.Rec.(*monoid.Var)
	if !ok || v.Name != binds[0] {
		return GroupAggregate
	}
	batches := child.Batches()
	if batches == nil || child.WrapSchema() == nil {
		return GroupAggregate
	}
	col := -1
	for _, b := range batches {
		if b != nil && b.N > 0 {
			col = b.Col(f.Name)
			break
		}
	}
	if col < 0 {
		return GroupAggregate
	}
	distinct, sampled, ok := data.DistinctCodes(batches, col, statsSampleCap)
	if !ok || sampled == 0 {
		return GroupAggregate
	}
	if float64(distinct) > hashGroupKeyRatio*float64(sampled) {
		return GroupHash
	}
	return GroupAggregate
}

// chooseTheta picks the theta strategy from the sides' row counts: tiny
// cross products run the cartesian filter directly (the partitioned matrix
// machinery costs more than it saves); everything else uses the
// statistics-aware mbucket join, which sorts and prunes when a band conjunct
// exists and still balances buckets by LPT when none does.
func (ex *Executor) chooseTheta(left, right *engine.Dataset) ThetaStrategy {
	lc, rc := left.Count(), right.Count()
	if lc*rc <= smallCrossThreshold {
		return ThetaCartesian
	}
	return ThetaMBucket
}

func (ex *Executor) execJoin(n *algebra.Join) (*engine.Dataset, error) {
	left, err := ex.Exec(n.Left)
	if err != nil {
		return nil, err
	}
	right, err := ex.Exec(n.Right)
	if err != nil {
		return nil, err
	}
	schema := envSchema(n)
	nRight := len(n.Right.Binds())
	combine := func(l, r types.Value) types.Value {
		lf := l.Record().Fields
		fields := append(make([]types.Value, 0, len(lf)+nRight), lf...)
		if rr := r.Record(); rr != nil {
			fields = append(fields, rr.Fields...)
		} else {
			for i := 0; i < nRight; i++ {
				fields = append(fields, types.Null())
			}
		}
		return types.NewRecord(schema, fields)
	}

	if len(n.LeftKeys) > 0 {
		lk, err := ex.compileKeys(n.LeftKeys, n.Left)
		if err != nil {
			return nil, err
		}
		rk, err := ex.compileKeys(n.RightKeys, n.Right)
		if err != nil {
			return nil, err
		}
		ex.Ctx.Metrics().NoteStrategy("join:hash")
		var joined *engine.Dataset
		if n.Outer {
			joined = left.LeftOuterHashJoin("join", right, lk, rk, combine)
		} else {
			joined = left.HashJoin("join", right, lk, rk, combine)
		}
		if n.Residual != nil {
			res, err := ex.compile(n.Residual, n)
			if err != nil {
				return nil, err
			}
			joined = joined.Filter("join:residual", func(v types.Value) bool {
				return evalEnv(res, v).Bool()
			})
		}
		return joined, nil
	}

	// Theta or cross join.
	predExpr := n.Theta
	var pred func(l, r types.Value) bool
	if predExpr == nil {
		pred = func(l, r types.Value) bool { return true }
	} else if spec, ok := ex.compilePairPred(predExpr, n.Left, n.Right); ok {
		// Specialized pair predicate: no per-pair argument slice, no
		// compiled-tree walk in the innermost loop.
		pred = spec
	} else {
		binds := append(append([]string{}, n.Left.Binds()...), n.Right.Binds()...)
		ce, err := ex.compiler.Compile(predExpr, slots(binds))
		if err != nil {
			return nil, err
		}
		nLeft := len(n.Left.Binds())
		pred = func(l, r types.Value) bool {
			args := make([]types.Value, 0, len(binds))
			args = append(args, l.Record().Fields...)
			if rr := r.Record(); rr != nil {
				args = append(args, rr.Fields...)
			} else {
				for i := nLeft; i < len(binds); i++ {
					args = append(args, types.Null())
				}
			}
			v, err := ce(args)
			return err == nil && v.Bool()
		}
	}

	// Every branch notes its choice in the Metrics strategy ledger. The
	// names here ("join:hash", "join:cartesian", "join:minmax",
	// "join:mbucket", plus the "nest:*" family above) share a namespace with
	// the incremental passes recorded outside this package ("join:delta-band",
	// "join:delta-scan" in cleaning, "dedup:delta-block" in incr): a
	// delta-served re-execution substitutes those passes for the join run
	// here, and the ledger shows which machinery actually ran.
	strat := ex.Config.Theta
	if ex.Config.Auto {
		strat = ex.chooseTheta(left, right)
	}
	switch strat {
	case ThetaCartesian:
		ex.Ctx.Metrics().NoteStrategy("join:cartesian")
		return left.CartesianFilter("join", right, pred, combine)
	case ThetaMinMax:
		lAttr, rAttr, prune := ex.deriveBand(n)
		if lAttr == nil || rAttr == nil {
			zero := func(types.Value) float64 { return 0 }
			lAttr, rAttr = zero, zero
		}
		overlap := func(lmin, lmax, rmin, rmax float64) bool {
			// Block pair survives unless provably impossible under the band
			// predicate; with arrival-order blocks this rarely prunes.
			if prune == nil {
				return true
			}
			return !prune(lmin, lmax, rmin, rmax)
		}
		ex.Ctx.Metrics().NoteStrategy("join:minmax")
		return left.MinMaxBlockJoin("join", right, lAttr, rAttr, overlap, pred, combine)
	default:
		ex.Ctx.Metrics().NoteStrategy("join:mbucket")
		lAttr, rAttr, prune := ex.deriveBand(n)
		stats := engine.ThetaJoinStats{}
		if lAttr != nil {
			stats.SortKey = lAttr
			_ = rAttr // both sides sorted on their own attribute
			stats.Prune = prune
		}
		return left.ThetaJoin("join", right, stats, pred, combine)
	}
}

// deriveBand inspects the theta predicate for a band conjunct of the form
// left.field OP right.field (OP inequality) and derives per-side numeric
// sort keys plus a bucket-pair pruning rule — the statistics CleanDB's theta
// join exploits (paper §6).
func (ex *Executor) deriveBand(n *algebra.Join) (lAttr, rAttr func(types.Value) float64, prune func(lmin, lmax, rmin, rmax float64) bool) {
	if n.Theta == nil {
		return nil, nil, nil
	}
	leftBinds := map[string]bool{}
	for _, b := range n.Left.Binds() {
		leftBinds[b] = true
	}
	rightBinds := map[string]bool{}
	for _, b := range n.Right.Binds() {
		rightBinds[b] = true
	}
	var conjuncts []monoid.Expr
	var collect func(e monoid.Expr)
	collect = func(e monoid.Expr) {
		if bo, ok := e.(*monoid.BinOp); ok && bo.Op == "and" {
			collect(bo.L)
			collect(bo.R)
			return
		}
		conjuncts = append(conjuncts, e)
	}
	collect(n.Theta)
	sideOf := func(e monoid.Expr) (left bool, right bool) {
		for _, v := range monoid.FreeVars(e) {
			if leftBinds[v] {
				left = true
			}
			if rightBinds[v] {
				right = true
			}
		}
		return
	}
	for _, c := range conjuncts {
		bo, ok := c.(*monoid.BinOp)
		if !ok {
			continue
		}
		op := bo.Op
		if op != "<" && op != "<=" && op != ">" && op != ">=" {
			continue
		}
		ll, lr := sideOf(bo.L)
		rl, rr := sideOf(bo.R)
		var lExpr, rExpr monoid.Expr
		switch {
		case ll && !lr && rr && !rl:
			lExpr, rExpr = bo.L, bo.R
		case lr && !ll && rl && !rr:
			lExpr, rExpr = bo.R, bo.L
			op = flipOp(op)
		default:
			continue
		}
		lc, err1 := ex.compile(lExpr, n.Left)
		rc, err2 := ex.compile(rExpr, n.Right)
		if err1 != nil || err2 != nil {
			continue
		}
		lAttr = func(v types.Value) float64 { return evalEnv(lc, v).Float() }
		rAttr = func(v types.Value) float64 { return evalEnv(rc, v).Float() }
		switch op {
		case "<", "<=":
			prune = func(lmin, _, _, rmax float64) bool { return lmin > rmax }
		default: // ">", ">="
			prune = func(_, lmax, rmin, _ float64) bool { return lmax < rmin }
		}
		return lAttr, rAttr, prune
	}
	return nil, nil, nil
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

func (ex *Executor) compileKeys(keys []monoid.Expr, child algebra.Plan) (engine.KeyFunc, error) {
	compiled := make([]monoid.CompiledExpr, len(keys))
	for i, k := range keys {
		ce, err := ex.compile(k, child)
		if err != nil {
			return nil, err
		}
		compiled[i] = ce
	}
	if len(compiled) == 1 {
		ce := compiled[0]
		return func(v types.Value) types.Value { return evalEnv(ce, v) }, nil
	}
	return func(v types.Value) types.Value {
		parts := make([]types.Value, len(compiled))
		for i, ce := range compiled {
			parts[i] = evalEnv(ce, v)
		}
		return types.ListOf(parts)
	}, nil
}

func (ex *Executor) execCombine(n *algebra.CombineAll) (*engine.Dataset, error) {
	// Tag every input's records with the input index, union, and group by
	// the entity key — a scale-out full outer join across all inputs.
	tagSchema := types.NewSchema("key", "tag", "rec")
	var union *engine.Dataset
	for i, in := range n.Inputs {
		d, err := ex.Exec(in)
		if err != nil {
			return nil, err
		}
		ke, err := ex.compile(n.Keys[i], in)
		if err != nil {
			return nil, err
		}
		idx := int64(i)
		unwrap := len(in.Binds()) == 1 && in.Binds()[0] == "$out"
		tagged := d.Map(fmt.Sprintf("combine:tag:%s", n.Names[i]), func(v types.Value) types.Value {
			rec := v
			if unwrap {
				// Violation outputs are {$out: value} environments; store
				// the bare value in the combined report.
				rec = v.Field("$out")
			}
			return types.NewRecord(tagSchema, []types.Value{evalEnv(ke, v), types.Int(idx), rec})
		})
		if union == nil {
			union = tagged
		} else {
			union = union.Union(tagged)
		}
	}
	if union == nil {
		return engine.FromValues(ex.Ctx, nil), nil
	}
	outSchema := types.NewSchema(append([]string{"entity"}, n.Names...)...)
	k := len(n.Inputs)
	agg := combineAgg{k: k, schema: outSchema}
	return union.AggregateByKey("combine", func(v types.Value) types.Value {
		return v.Field("key")
	}, agg), nil
}

// combineAgg groups tagged violation records per entity key.
type combineAgg struct {
	k      int
	schema *types.Schema
}

func (c combineAgg) Zero() interface{} { return make([][]types.Value, c.k) }

func (c combineAgg) Add(acc interface{}, v types.Value) interface{} {
	lists := acc.([][]types.Value)
	tag := int(v.Field("tag").Int())
	if tag >= 0 && tag < c.k {
		lists[tag] = append(lists[tag], v.Field("rec"))
	}
	return lists
}

func (c combineAgg) Merge(a, b interface{}) interface{} {
	as, bs := a.([][]types.Value), b.([][]types.Value)
	for i := range as {
		as[i] = append(as[i], bs[i]...)
	}
	return as
}

func (c combineAgg) Result(key types.Value, acc interface{}) types.Value {
	lists := acc.([][]types.Value)
	fields := make([]types.Value, 0, c.k+1)
	fields = append(fields, key)
	for _, l := range lists {
		fields = append(fields, types.ListOf(l))
	}
	return types.NewRecord(c.schema, fields)
}

func (c combineAgg) AccSize(acc interface{}) int64 {
	lists := acc.([][]types.Value)
	var n int64 = 1
	for _, l := range lists {
		n += int64(len(l))
	}
	return n
}

// CollectSorted executes the plan and returns its records sorted by their
// canonical key — a convenience for tests and deterministic output.
func (ex *Executor) CollectSorted(p algebra.Plan) ([]types.Value, error) {
	d, err := ex.Exec(p)
	if err != nil {
		return nil, err
	}
	out := d.Collect()
	sort.Slice(out, func(i, j int) bool { return types.Key(out[i]) < types.Key(out[j]) })
	return out, nil
}
