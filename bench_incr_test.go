// Incremental-cleaning benchmark: the cost of re-answering a DC detection
// query after a 10% append, served as a cached view plus a delta pass,
// against the cold full re-clean over the same final data. The delta pass
// enumerates only pairs touching fresh tuples, so the speedup grows as the
// delta fraction shrinks; at 10% it must be a multiple, not a shave.
package cleandb_test

import (
	"testing"
	"time"

	"cleandb"
	"cleandb/internal/datagen"
)

// BenchmarkIncrementalAppendQuery measures one append-then-requery cycle on
// a view-cached DB (the delta path) and the equivalent cold execution,
// reporting both phases and their ratio as the "speedup" metric.
func BenchmarkIncrementalAppendQuery(b *testing.B) {
	const total = 2000
	rows := datagen.GenLineitem(datagen.LineitemConfig{Rows: total, NoiseDiscount: true, Seed: 11})
	baseRows := total - total/10
	base, delta := rows[:baseRows], rows[baseRows:]
	// A shifted-band inequality DC: selective enough that the output stays
	// small against the candidate space, so the timing compares join work,
	// not the shared cost of materializing a large pair output.
	query := `SELECT * FROM lineitem t1
DENIAL(t2, t1.extendedprice < t2.extendedprice and t1.discount > t2.discount + 0.08)`

	var coldNs, deltaNs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		inc := cleandb.Open(cleandb.WithViewCache(4))
		inc.RegisterRows("lineitem", base)
		if _, err := inc.Query(query); err != nil { // warm the view over the base
			b.Fatal(err)
		}
		if err := inc.Append("lineitem", delta); err != nil {
			b.Fatal(err)
		}
		cold := cleandb.Open()
		cold.RegisterRows("lineitem", rows)

		b.StartTimer()
		start := time.Now()
		res, err := inc.Query(query)
		deltaNs += time.Since(start).Nanoseconds()
		if err != nil {
			b.Fatal(err)
		}
		if res.ViewHit() != "delta" {
			b.Fatalf("appended re-query not served as a delta view (got %q)", res.ViewHit())
		}

		start = time.Now()
		want, err := cold.Query(query)
		coldNs += time.Since(start).Nanoseconds()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows()) != len(want.Rows()) {
			b.Fatalf("delta produced %d rows, cold %d", len(res.Rows()), len(want.Rows()))
		}
	}
	if deltaNs > 0 {
		b.ReportMetric(float64(coldNs)/float64(deltaNs), "x-speedup")
		b.ReportMetric(float64(deltaNs)/float64(b.N), "delta-ns/op")
		b.ReportMetric(float64(coldNs)/float64(b.N), "cold-ns/op")
	}
}
