package engine

import "context"

// ExchangeFrom extracts the exchange a cluster session attached to ctx via
// WithExchange, if any. The catalog's load path uses it before a Job context
// exists: source scans happen at prepare time, so custody-masked loading must
// find the session's exchange on the raw Go context.
func ExchangeFrom(ctx context.Context) (Exchange, bool) {
	ex, ok := ctx.Value(exchangeCtxKey{}).(Exchange)
	return ex, ok && ex != nil
}

// PartitionedExchange is implemented by exchanges whose custody mode divides
// scans as well as joins. When PartitionCustody reports true, scan stages
// (stage names "scanvote/<source>" and "scan/<source>") are masked by
// partition custody — each member builds only its owned chunks and gathers
// the rest — and the Mask/Gather contract extends to those stages unchanged:
// masks are disjoint, their union covers every chunk, and a dead member's
// open chunks come back as extra slots on a surviving member, which re-scans
// its newly adopted ranges.
type PartitionedExchange interface {
	Exchange
	PartitionCustody() bool
}
