package source

import (
	"context"

	"cleandb/internal/data"
	"cleandb/internal/types"
)

// Colbin is a colbin (binary columnar) source. Scan index-scans the header
// once to locate each column chunk's byte extent, decodes the columns on
// parallel goroutines, then assembles row ranges into partitions — also in
// parallel. Its header stores the row count, so Stats is exact without a
// scan, unlike any of the text formats.
type Colbin struct {
	src bytesAt
}

// NewColbinFile returns a lazy colbin source over a file path.
func NewColbinFile(path string) *Colbin { return &Colbin{src: bytesAt{path: path}} }

// ColbinBytes returns a colbin source over an in-memory buffer.
func ColbinBytes(buf []byte) *Colbin { return &Colbin{src: bytesAt{buf: buf}} }

// Format implements Source.
func (s *Colbin) Format() string { return "colbin" }

// Schema reads the column names from the header without decoding — or, for
// file-backed sources, even reading — the column data.
func (s *Colbin) Schema() ([]string, error) {
	names, _, err := s.header()
	return names, err
}

// Stats reads the exact row count from the header: colbin is the one format
// whose pending sources can answer Rows without a scan.
func (s *Colbin) Stats() (Stats, error) {
	_, rows, err := s.header()
	if err != nil {
		return Stats{Rows: -1, Bytes: s.src.sizeBytes()}, err
	}
	return Stats{Rows: rows, Bytes: s.src.sizeBytes()}, nil
}

// header parses the colbin header from a bounded prefix of the input, so
// Stats/Schema on a huge pending file cost O(header), not O(file). A
// header longer than the prefix (half a million columns) fails the
// cursor's bounds checks, which Stats degrades to an unknown-rows hint.
func (s *Colbin) header() ([]string, int64, error) {
	buf, _, err := s.src.head(headPrefixBytes)
	if err != nil {
		return nil, 0, err
	}
	names, _, rows, err := data.ColbinHeader(buf)
	if err != nil {
		return nil, 0, err
	}
	return names, rows, nil
}

func (s *Colbin) index() (*data.ColbinInfo, error) {
	buf, err := s.src.bytes()
	if err != nil {
		return nil, err
	}
	return data.IndexColbin(buf)
}

// Scan implements Source: column chunks decode concurrently, then row
// ranges assemble concurrently, landing directly as ordered partitions.
func (s *Colbin) Scan(ctx context.Context, parts int) ([][]types.Value, error) {
	if parts < 1 {
		parts = 1
	}
	info, err := s.index()
	if err != nil {
		return nil, err
	}
	if info.Rows == 0 {
		return nil, nil
	}
	ncols := len(info.Names)
	cols := make([][]types.Value, ncols)
	err = runParallel(ctx, ncols, parts, func(c int) error {
		vals, err := info.DecodeColumn(c)
		if err != nil {
			return err
		}
		cols[c] = vals
		return nil
	})
	if err != nil {
		return nil, err
	}

	schema := types.NewSchema(info.Names...)
	per := (info.Rows + parts - 1) / parts
	nparts := (info.Rows + per - 1) / per
	out := make([][]types.Value, nparts)
	err = runParallel(ctx, nparts, parts, func(p int) error {
		lo := p * per
		hi := lo + per
		if hi > info.Rows {
			hi = info.Rows
		}
		vals := make([]types.Value, hi-lo)
		for i := lo; i < hi; i++ {
			fields := make([]types.Value, ncols)
			for c := range cols {
				fields[c] = cols[c][i]
			}
			vals[i-lo] = types.NewRecord(schema, fields)
		}
		out[p] = vals
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
