package cleandb

// Incremental cleaning: appendable sources and epoch-keyed materialized
// cleaning views.
//
// Appends land new rows as additional engine partitions against the
// existing per-source dictionary without touching the base partitions, and
// bump the source's delta epoch (distinct from the catalog epoch: the
// source set did not change, only its tail). The view cache stamps every
// cached Result with the (id, base generation, delta epoch) of the sources
// it read; a later identical statement finds the entry Exact (serve as-is),
// Appended (run a delta pass over just the fresh rows and merge — see
// core.ExecuteDeltaContext), or Stale (base partitions were replaced:
// recompute).
//
// Of a Result's metrics, rows, task rows and repair summaries are pinned
// bit-identical between a delta-served execution and a cold full re-clean;
// the cost counters (Comparisons, SimTicks, shuffle volumes) measure the
// work actually done, which for a delta run is proportional to the appended
// tail — that asymmetry is the feature, not drift.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"cleandb/internal/core"
	"cleandb/internal/data"
	"cleandb/internal/engine"
	"cleandb/internal/incr"
	"cleandb/internal/source"
	"cleandb/internal/types"
)

// WithViewCache enables the materialized cleaning-view cache with capacity
// for n results (default off). Cached views are keyed by the normalized
// statement, the configuration fingerprint and the bound parameters, and
// stamped with the per-source epochs they were computed under; re-running a
// statement over unchanged sources answers from the cache, and re-running a
// single-operator DENIAL/DEDUP statement over an appended source executes
// only the delta pairs and merges. A size <= 0 disables the cache.
func WithViewCache(n int) Option {
	return func(db *DB) { db.viewCap = n }
}

// viewEntry is what the view cache stores: the completed result plus the
// row count of its (single) source at computation time — the fresh-row
// boundary a delta pass continues from. Multi-source results cache with
// srcRows 0 and can only be served Exact.
type viewEntry struct {
	res     *core.Result
	srcRows int
}

// entrySeq hands out catalog-entry identities. Stamps embed the identity so
// a re-registered source of the same name never matches its predecessor's
// cached views.
var entrySeq atomic.Int64

func newEntryID() string { return fmt.Sprintf("s%d", entrySeq.Add(1)) }

// entry resolves a catalog name.
func (db *DB) entry(name string) (*sourceEntry, error) {
	db.mu.RLock()
	e, ok := db.catalog[name]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cleandb: unknown source %q", name)
	}
	return e, nil
}

// append lands rows as one additional partition of the loaded dataset and
// bumps the delta epoch. payloadBytes counts the encoded payload for the
// byte hints (0 for programmatic row appends). The entry's loadMu
// serializes appends with loads and refreshes; snapshots taken by running
// queries keep their pre-append dataset (Extend never mutates).
func (e *sourceEntry) append(rows []types.Value, payloadBytes int64, shippable bool) error {
	if len(rows) == 0 {
		return nil
	}
	e.loadMu.Lock()
	defer e.loadMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.loaded {
		return fmt.Errorf("cleandb: append before load")
	}
	if e.err != nil {
		return e.err
	}
	e.ds = e.ds.Extend(rows)
	e.deltaEpoch++
	e.appends++
	e.appendRows += int64(len(rows))
	e.appendBytes += payloadBytes
	if !shippable {
		e.memRows += int64(len(rows))
	}
	return nil
}

// Append appends programmatic rows to a registered source, loading it first
// if still pending. The rows land as an additional partition — base
// partitions are untouched, so cached views over them stay valid and a
// re-executed cleaning statement can run delta-only. Appended rows live in
// the catalog entry, not in the backing file.
func (db *DB) Append(name string, rows []Value) error {
	return db.AppendContext(context.Background(), name, rows)
}

// AppendContext is Append under a context governing the initial load.
func (db *DB) AppendContext(ctx context.Context, name string, rows []Value) error {
	e, err := db.entry(name)
	if err != nil {
		return err
	}
	if _, err := e.load(ctx, db.ctx); err != nil {
		return fmt.Errorf("cleandb: load source %q: %w", name, err)
	}
	if len(rows) == 0 {
		return nil
	}
	if err := e.append(rows, 0, false); err != nil {
		return err
	}
	db.noteLoad()
	return nil
}

// AppendCSV appends inline CSV rows (no header line) to a registered CSV
// source. Cells are typed with the column types the base scan inferred;
// a cell that does not parse under its column's type falls back to a
// string, exactly as any malformed cell does on a full scan.
func (db *DB) AppendCSV(name string, payload []byte) error {
	return db.appendPayload(context.Background(), name, payload, "csv")
}

// AppendJSONL appends inline JSON-lines rows to a registered source. JSON
// sources parse the payload through their own schema cache; for any other
// format the payload parses as standalone JSON lines (the rows join the
// source as an extra partition regardless of the base encoding).
func (db *DB) AppendJSONL(name string, payload []byte) error {
	return db.appendPayload(context.Background(), name, payload, "jsonl")
}

func (db *DB) appendPayload(ctx context.Context, name string, payload []byte, enc string) error {
	e, err := db.entry(name)
	if err != nil {
		return err
	}
	if _, err := e.load(ctx, db.ctx); err != nil {
		return fmt.Errorf("cleandb: load source %q: %w", name, err)
	}
	var rows []types.Value
	switch enc {
	case "csv":
		cs, ok := e.src.(*source.CSV)
		if !ok {
			return fmt.Errorf("cleandb: source %q (%s) does not accept CSV payload appends", name, e.src.Format())
		}
		rows, err = cs.ParsePayload(payload)
	case "jsonl":
		if js, ok := e.src.(*source.JSON); ok {
			rows, err = js.ParsePayload(payload)
		} else {
			rows, err = data.ReadJSONChunk(payload, 1, data.NewSchemaCache())
		}
	default:
		return fmt.Errorf("cleandb: unknown append encoding %q", enc)
	}
	if err != nil {
		return fmt.Errorf("cleandb: append to %q: %w", name, err)
	}
	if len(rows) == 0 {
		return nil
	}
	if err := e.append(rows, int64(len(payload)), false); err != nil {
		return err
	}
	db.noteLoad()
	return nil
}

// Refresh re-scans a file-backed source for bytes appended past the last
// scan's high-water mark and lands them as an additional partition,
// returning the number of rows added. When the tail cannot extend the base
// consistently — the file shrank, was rewritten, or a CSV column's type
// widened — the source re-scans in full and its base generation moves,
// invalidating cached views derived from the old base (a full re-scan also
// drops any payload-appended rows: the file is the source of truth again).
// A source that is still pending simply loads.
func (db *DB) Refresh(ctx context.Context, name string) (int, error) {
	e, err := db.entry(name)
	if err != nil {
		return 0, err
	}
	loadedBefore := false
	if _, loaded, lerr := e.peek(); loaded && lerr == nil {
		loadedBefore = true
	}
	if _, err := e.load(ctx, db.ctx); err != nil {
		return 0, fmt.Errorf("cleandb: load source %q: %w", name, err)
	}
	if !loadedBefore {
		// The load above just scanned the current file content in full.
		ds, _, _ := e.peek()
		db.noteLoad()
		return int(ds.Count()), nil
	}
	added, changed, err := e.refresh(ctx, db.ctx)
	if err != nil {
		return 0, fmt.Errorf("cleandb: refresh source %q: %w", name, err)
	}
	if changed {
		db.noteLoad()
	}
	return added, nil
}

// Unload drops a loaded source's in-memory data while keeping its
// registration identity and version counters: the next query that touches the
// source cold-scans the backing file again. This differs from re-registering
// the same path, which mints a new entry whose version restarts — a cluster
// coordinator unloads (rather than re-registers) when the custody division
// moves, so the version workers key their synced catalogs on still tracks the
// file's incremental state and nothing else. Memory-only appended rows cannot
// be reconstructed by a re-scan, so an entry holding any refuses; a
// file-backed appended tail folds into the re-scanned base, which moves the
// base generation exactly like a reset re-scan. Unloading a pending or failed
// entry is a no-op.
func (db *DB) Unload(name string) error {
	e, err := db.entry(name)
	if err != nil {
		return err
	}
	e.loadMu.Lock()
	defer e.loadMu.Unlock()
	e.mu.Lock()
	if e.memRows > 0 {
		n := e.memRows
		e.mu.Unlock()
		return fmt.Errorf("cleandb: unload source %q: %d memory-only appended rows would be lost", name, n)
	}
	if !e.loaded {
		e.mu.Unlock()
		return nil
	}
	folds := e.appends > 0
	if folds {
		e.baseGen++
		e.appends, e.appendRows, e.appendBytes = 0, 0, 0
	}
	e.loaded, e.ds, e.err = false, nil, nil
	e.custody = nil
	e.mu.Unlock()
	// Always move the stats epoch, not just when appends folded: a cached
	// plan pins the unloaded dataset by reference, so without a new epoch
	// the next query would serve the stale data without ever re-loading —
	// and under a cluster session would never reach the scan barrier the
	// freshly-cold members are parked at.
	db.noteLoad()
	return nil
}

// refresh tail-scans the entry's source. changed reports whether the
// dataset moved (tail rows landed, or a reset re-scanned the base).
func (e *sourceEntry) refresh(goctx context.Context, ectx *engine.Context) (added int, changed bool, err error) {
	t, ok := source.TailerOf(e.src)
	if !ok {
		return 0, false, fmt.Errorf("source format %q does not support tail scans", e.src.Format())
	}
	e.loadMu.Lock()
	defer e.loadMu.Unlock()
	//lint:ignore locksnapshot loadMu is the per-source single-flight latch: holding it across the tail scan serializes concurrent Refresh/Load against the same high-water mark
	rows, reset, err := t.TailScan(goctx)
	if err != nil {
		return 0, false, err
	}
	if reset {
		//lint:ignore locksnapshot same latch: a reset re-scan is the full load path and must not race another loader
		ds, err := e.scan(goctx, ectx)
		if err != nil {
			return 0, false, err
		}
		e.mu.Lock()
		e.loaded, e.ds, e.err = true, ds, nil
		e.baseGen++
		e.appends, e.appendRows, e.appendBytes, e.memRows = 0, 0, 0, 0
		e.mu.Unlock()
		return int(ds.Count()), true, nil
	}
	if len(rows) == 0 {
		return 0, false, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.loaded || e.err != nil {
		return 0, false, fmt.Errorf("refresh before load")
	}
	e.ds = e.ds.Extend(rows)
	e.deltaEpoch++
	e.appends++
	e.appendRows += int64(len(rows))
	return len(rows), true, nil
}

// ViewCacheStats reports the materialized view cache's effectiveness. All
// zeros when the cache is disabled.
type ViewCacheStats struct {
	// Hits counts statements answered verbatim from an exact-stamp view;
	// DeltaHits counts statements answered by a cached view plus a delta
	// pass over appended rows; Misses counts the rest (absent or stale).
	Hits, Misses, DeltaHits int64
	// Entries is the resident view count.
	Entries int
}

// ViewCacheStats returns the view cache counters.
func (db *DB) ViewCacheStats() ViewCacheStats {
	s := db.views.Stats()
	return ViewCacheStats{Hits: s.Hits, Misses: s.Misses, DeltaHits: s.DeltaHits, Entries: s.Entries}
}

// viewKey is the cache key of a statement execution: everything that
// determines the result except the data itself (which the stamps cover).
func (db *DB) viewKey(q string, params map[string]types.Value) string {
	names := make([]string, 0, len(params))
	for k := range params {
		names = append(names, k)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString(db.ConfigFingerprint())
	sb.WriteByte('|')
	sb.WriteString(normalizeQuery(q))
	for _, k := range names {
		sb.WriteByte('|')
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(types.Key(params[k]))
	}
	return sb.String()
}

// viewState captures the stamps describing exactly the data prep resolved.
// The identity check (catalog dataset == prepared dataset) closes the race
// with concurrent appends: if an append landed between prepare and here,
// the pointers differ and the statement simply is not view-cached this
// time. srcRows is the single source's row count (the delta boundary), 0
// for multi-source statements.
func (db *DB) viewState(q string, prep *core.Prepared, params map[string]types.Value) (key string, stamps []incr.Stamp, srcRows int, ok bool) {
	names := prep.SourceNames()
	if len(names) == 0 {
		return "", nil, 0, false
	}
	db.mu.RLock()
	entries := make([]*sourceEntry, len(names))
	for i, n := range names {
		e, found := db.catalog[n]
		if !found {
			db.mu.RUnlock()
			return "", nil, 0, false
		}
		entries[i] = e
	}
	db.mu.RUnlock()
	stamps = make([]incr.Stamp, len(names))
	for i, e := range entries {
		ds := prep.Source(names[i])
		e.mu.Lock()
		match := ds != nil && e.loaded && e.err == nil && e.ds == ds
		stamps[i] = incr.Stamp{ID: e.id, Base: e.baseGen, Delta: e.deltaEpoch}
		e.mu.Unlock()
		if !match {
			return "", nil, 0, false
		}
	}
	if len(names) == 1 {
		srcRows = int(prep.Source(names[0]).Count())
	}
	return db.viewKey(q, params), stamps, srcRows, true
}

// viewExecute consults the view cache for the statement. served reports
// that res answers the statement without a full execution (exactly, or via
// a delta pass whose refreshed view was stored back); vh is "exact" or
// "delta". A delta-pass failure is a real execution failure and returns
// err.
func (db *DB) viewExecute(ctx context.Context, q string, prep *core.Prepared, params map[string]types.Value) (res *core.Result, vh string, served bool, err error) {
	if db.views == nil || db.viewCap <= 0 {
		return nil, "", false, nil
	}
	key, stamps, srcRows, ok := db.viewState(q, prep, params)
	if !ok {
		return nil, "", false, nil
	}
	ent, fresh := db.views.Lookup(key, stamps)
	switch fresh {
	case incr.Exact:
		return ent.Val.res, "exact", true, nil
	case incr.Appended:
		if prep.Incremental().Kind == core.IncrNone {
			return nil, "", false, nil // fall back to a full run (re-cached after)
		}
		dres, derr := prep.ExecuteDeltaContext(ctx, params, core.DeltaBase{Res: ent.Val.res, BaseRows: ent.Val.srcRows})
		if derr != nil {
			return nil, "", false, derr
		}
		db.views.Put(key, viewEntry{res: dres, srcRows: srcRows}, stamps)
		return dres, "delta", true, nil
	}
	return nil, "", false, nil
}

// storeView caches a completed full execution, stamped against the data it
// actually read. Recomputing the stamps after execution closes the other
// half of the append race: data that moved mid-execution fails the identity
// check and the result is not cached.
func (db *DB) storeView(q string, prep *core.Prepared, params map[string]types.Value, res *core.Result) {
	if db.views == nil || db.viewCap <= 0 || res == nil {
		return
	}
	key, stamps, srcRows, ok := db.viewState(q, prep, params)
	if !ok {
		return
	}
	db.views.Put(key, viewEntry{res: res, srcRows: srcRows}, stamps)
}
