package cleandb

import (
	"context"
	"fmt"
	"sync"

	"cleandb/internal/data"
	"cleandb/internal/engine"
	"cleandb/internal/par"
	"cleandb/internal/source"
	"cleandb/internal/types"
)

// Partition-custody scans: when a cluster session's exchange reports
// PartitionCustody, a cold source load is divided across the members the way
// join slots are. Each member parses only the chunks rendezvous hashing
// assigns it (stage "scan/<name>", masked by dist.PartitionOwner), ships
// them through the same framed barrier exchange the joins use, and gathers
// everyone else's — so every member still ends the load with the complete,
// bit-identical partition vector, and all downstream SPMD execution is
// untouched. What scales with the member count is the bytes each node parses
// (and, for colbin, decodes), which is what dominates small clusters under
// the replicated model.
//
// CSV adds a preliminary "scanvote/<name>" stage: column types are inferred
// globally, so the per-chunk votes cross the exchange first and every member
// installs the identical merged types before building rows.
//
// A member that dies mid-scan has its open chunks reassigned by the barrier;
// the adopting member's Gather returns them as extra slots and the loops
// below re-scan the adopted ranges (the plan re-parses raw bytes on demand).
// The floor is the coordinator building every chunk itself — exactly the
// single-process scan.

// custodyLoad records what this member actually parsed from disk for one
// custody-masked load, for SourceInfo's owned-vs-total reporting and the
// coordinator's per-worker gauges.
type custodyLoad struct {
	parts int   // chunks this member built (owned + adopted)
	bytes int64 // input bytes behind those chunks
}

// scanCustody runs the custody-masked scan when this load is eligible:
// the entry is catalog-registered (named), the query carries a
// partition-custody exchange, and the source can plan per-chunk builds.
// ok=false falls back to the ordinary replicated scan, which every member
// executes identically.
func (e *sourceEntry) scanCustody(goctx context.Context, ectx *engine.Context) (*engine.Dataset, bool, error) {
	if e.name == "" {
		return nil, false, nil
	}
	ex, ok := engine.ExchangeFrom(goctx)
	if !ok {
		return nil, false, nil
	}
	pex, ok := ex.(engine.PartitionedExchange)
	if !ok || !pex.PartitionCustody() {
		return nil, false, nil
	}
	ps, ok := e.src.(source.PartitionedScanner)
	if !ok {
		return nil, false, nil
	}
	ds, err := e.custodyScan(goctx, ectx, pex, ps)
	if err != nil {
		err = &custodyScanError{err}
	}
	return ds, true, err
}

// custodyScanError marks a failure on the custody-masked scan path. Whether
// such a scan succeeds depends on cluster session state — a barrier sweep
// can evict this member, the session can close under it — not just on the
// source bytes, so load() must not memoize the failure: the next session
// retries the scan from scratch.
type custodyScanError struct{ err error }

func (c *custodyScanError) Error() string { return c.err.Error() }
func (c *custodyScanError) Unwrap() error { return c.err }

func (e *sourceEntry) custodyScan(goctx context.Context, ectx *engine.Context, ex engine.Exchange, ps source.PartitionedScanner) (*engine.Dataset, error) {
	plan, err := ps.PlanScan(goctx, ectx.Workers)
	if err != nil {
		return nil, err
	}
	n := plan.Chunks()
	built := make(map[int]bool)

	if n > 0 && plan.NeedsVote() {
		votes, err := e.gatherVotes(goctx, ectx, ex, plan, n, built)
		if err != nil {
			return nil, err
		}
		ts, voted := data.MergeColVotes(votes, len(votes[0]))
		if err := plan.SetTypes(data.ColVotes(ts, voted)); err != nil {
			return nil, err
		}
	}

	var full [][]types.Value
	if n > 0 {
		if full, err = e.gatherChunks(goctx, ectx, ex, plan, n, built); err != nil {
			return nil, err
		}
	}
	if full, err = plan.Finish(full); err != nil {
		return nil, err
	}

	load := &custodyLoad{parts: len(built)}
	for i := range built {
		load.bytes += plan.ChunkBytes(i)
	}
	e.mu.Lock()
	e.custody = load
	e.mu.Unlock()

	// Dataset assembly mirrors the replicated scan's batch arm; the gathered
	// rows are identical on every member, and RowsToBatches is deterministic
	// from rows, so the batches (and their dictionary statistics) are too.
	if !e.batch {
		return engine.FromPartitions(ectx, full), nil
	}
	batches, err := source.RowsToBatches(goctx, full, ectx.Workers)
	if err != nil {
		return nil, err
	}
	if batches == nil {
		return engine.FromPartitions(ectx, full), nil
	}
	for _, b := range batches {
		if b != nil && b.Dict != nil {
			hits, misses := b.Dict.Stats()
			ectx.Metrics().AddDictStats(hits, misses)
			break
		}
	}
	return engine.FromBatchesAndRows(ectx, batches, full), nil
}

// gatherVotes runs the type-vote round: vote owned chunks, exchange the vote
// frames, loop on reassigned extras, and return the full per-chunk vote set.
func (e *sourceEntry) gatherVotes(goctx context.Context, ectx *engine.Context, ex engine.Exchange, plan source.ScanPlan, n int, built map[int]bool) ([][]data.ColVote, error) {
	stage := "scanvote/" + e.name
	mine := ex.Mask(stage, n)
	for {
		local, err := buildLocal(goctx, ectx, mine, func(i int) ([]types.Value, error) {
			v, err := plan.Vote(goctx, i)
			if err != nil {
				return nil, err
			}
			return data.VoteRows(v), nil
		})
		if err != nil {
			return nil, err
		}
		for _, i := range mine {
			built[i] = true
		}
		full, extra, err := ex.Gather(stage, n, local)
		if err != nil {
			return nil, err
		}
		if len(extra) > 0 {
			mine = extra
			continue
		}
		votes := make([][]data.ColVote, n)
		for i, rows := range full {
			if votes[i], err = data.VotesOfRows(rows); err != nil {
				return nil, fmt.Errorf("cleandb: source %q chunk %d: %w", e.name, i, err)
			}
		}
		return votes, nil
	}
}

// gatherChunks runs the data round: build owned chunks, exchange them as row
// frames, loop on reassigned extras (adoption re-scans), and return the
// complete partition vector in chunk order.
func (e *sourceEntry) gatherChunks(goctx context.Context, ectx *engine.Context, ex engine.Exchange, plan source.ScanPlan, n int, built map[int]bool) ([][]types.Value, error) {
	stage := "scan/" + e.name
	mine := ex.Mask(stage, n)
	for {
		local, err := buildLocal(goctx, ectx, mine, func(i int) ([]types.Value, error) {
			return plan.Build(goctx, i)
		})
		if err != nil {
			return nil, err
		}
		for _, i := range mine {
			built[i] = true
		}
		full, extra, err := ex.Gather(stage, n, local)
		if err != nil {
			return nil, err
		}
		if len(extra) > 0 {
			mine = extra
			continue
		}
		return full, nil
	}
}

// buildLocal computes f over the owned chunk set on parallel goroutines,
// keyed by chunk index for the exchange.
func buildLocal(goctx context.Context, ectx *engine.Context, mine []int, f func(i int) ([]types.Value, error)) (map[int][]types.Value, error) {
	local := make(map[int][]types.Value, len(mine))
	var mu sync.Mutex
	err := par.Run(goctx, len(mine), ectx.Workers, func(k int) error {
		rows, err := f(mine[k])
		if err != nil {
			return err
		}
		mu.Lock()
		local[mine[k]] = rows
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return local, nil
}
