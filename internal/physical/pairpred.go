package physical

import (
	"cleandb/internal/algebra"
	"cleandb/internal/monoid"
	"cleandb/internal/types"
)

// Theta-join pair predicates run once per candidate pair — the innermost
// loop of the engine. The generic path allocates an argument slice per pair
// and walks the compiled expression tree; this file specializes the common
// predicate shapes (comparisons and arithmetic over the two sides' fields,
// conjunctions, disjunctions, negation) into a direct closure over the two
// environment records with zero per-pair allocation. Semantics are exactly
// the compiled path's: comparisons via types.Equal/types.Compare, arithmetic
// via monoid.ApplyBinOp, evaluation errors never arise because parameters
// resolve at compile time and the supported node set is error-free.

// pairAcc evaluates a sub-expression against the left and right env records.
type pairAcc func(l, r types.Value) types.Value

// compilePairPred specializes the theta predicate of a join. It reports
// ok=false when the predicate falls outside the supported subset (builtin
// calls, comprehensions, record construction), in which case the caller uses
// the generic compiled-expression path.
func (ex *Executor) compilePairPred(theta monoid.Expr, left, right algebra.Plan) (func(l, r types.Value) bool, bool) {
	slots := map[string]pairSlot{}
	for i, b := range left.Binds() {
		slots[b] = pairSlot{idx: i, right: false}
	}
	for i, b := range right.Binds() {
		slots[b] = pairSlot{idx: i, right: true}
	}
	acc, ok := ex.compilePairAcc(theta, slots)
	if !ok {
		return nil, false
	}
	return func(l, r types.Value) bool { return acc(l, r).Bool() }, true
}

type pairSlot struct {
	idx   int
	right bool
}

func (ex *Executor) compilePairAcc(e monoid.Expr, slots map[string]pairSlot) (pairAcc, bool) {
	switch n := e.(type) {
	case *monoid.Const:
		v := n.Val
		return func(_, _ types.Value) types.Value { return v }, true
	case *monoid.Param:
		v, ok := ex.compiler.Params[n.Key]
		if !ok {
			return nil, false
		}
		return func(_, _ types.Value) types.Value { return v }, true
	case *monoid.Var:
		s, ok := slots[n.Name]
		if !ok {
			return nil, false
		}
		return slotAcc(s), true
	case *monoid.Field:
		// The hot shape: side.field — resolve the env slot once, look the
		// field up on the bound record per pair.
		if v, ok := n.Rec.(*monoid.Var); ok {
			s, ok := slots[v.Name]
			if !ok {
				return nil, false
			}
			base := slotAcc(s)
			name := n.Name
			return func(l, r types.Value) types.Value { return base(l, r).Field(name) }, true
		}
		inner, ok := ex.compilePairAcc(n.Rec, slots)
		if !ok {
			return nil, false
		}
		name := n.Name
		return func(l, r types.Value) types.Value { return inner(l, r).Field(name) }, true
	case *monoid.UnOp:
		inner, ok := ex.compilePairAcc(n.E, slots)
		if !ok {
			return nil, false
		}
		switch n.Op {
		case "not":
			return func(l, r types.Value) types.Value { return types.Bool(!inner(l, r).Bool()) }, true
		case "-":
			return func(l, r types.Value) types.Value {
				v := inner(l, r)
				if v.Kind() == types.KindFloat {
					return types.Float(-v.Float())
				}
				return types.Int(-v.Int())
			}, true
		}
		return nil, false
	case *monoid.BinOp:
		return ex.compilePairBinOp(n, slots)
	}
	return nil, false
}

func (ex *Executor) compilePairBinOp(n *monoid.BinOp, slots map[string]pairSlot) (pairAcc, bool) {
	la, ok := ex.compilePairAcc(n.L, slots)
	if !ok {
		return nil, false
	}
	ra, ok := ex.compilePairAcc(n.R, slots)
	if !ok {
		return nil, false
	}
	switch n.Op {
	case "and":
		return func(l, r types.Value) types.Value {
			if !la(l, r).Bool() {
				return types.Bool(false)
			}
			return types.Bool(ra(l, r).Bool())
		}, true
	case "or":
		return func(l, r types.Value) types.Value {
			if la(l, r).Bool() {
				return types.Bool(true)
			}
			return types.Bool(ra(l, r).Bool())
		}, true
	case "==":
		return func(l, r types.Value) types.Value {
			return types.Bool(types.Equal(la(l, r), ra(l, r)))
		}, true
	case "!=":
		return func(l, r types.Value) types.Value {
			return types.Bool(!types.Equal(la(l, r), ra(l, r)))
		}, true
	case "<", "<=", ">", ">=":
		op := n.Op
		return func(l, r types.Value) types.Value {
			return types.Bool(cmpOrd(op, types.Compare(la(l, r), ra(l, r))))
		}, true
	case "+", "-", "*", "/", "%":
		op := n.Op
		return func(l, r types.Value) types.Value {
			v, err := monoid.ApplyBinOp(op, la(l, r), ra(l, r))
			if err != nil {
				return types.Null()
			}
			return v
		}, true
	}
	return nil, false
}

// slotAcc reads one binding from the appropriate side's env record. A nil
// record (the padded side of an outer pair) yields Null, matching the
// generic path's null padding.
func slotAcc(s pairSlot) pairAcc {
	idx, right := s.idx, s.right
	return func(l, r types.Value) types.Value {
		side := l
		if right {
			side = r
		}
		rec := side.Record()
		if rec == nil || idx >= len(rec.Fields) {
			return types.Null()
		}
		return rec.Fields[idx]
	}
}
