// Denial-constraint repair over TPC-H lineitem: rule ψ of the paper's §8.3
// extended with the REPAIR clause — violations are not just reported but
// healed by relaxing the discount attribute ("Cleaning Denial Constraint
// Violations through Relaxation", Giannakopoulou et al., 2020). The query
// runs end-to-end through the CleanM stack; the repaired dataset is then
// re-checked to show zero remaining violations.
//
//	go run ./examples/repair [-rows 10000]
package main

import (
	"flag"
	"fmt"
	"sort"

	"cleandb"
	"cleandb/internal/datagen"
)

func main() {
	rows := flag.Int("rows", 10000, "lineitem rows")
	flag.Parse()

	items := datagen.GenLineitem(datagen.LineitemConfig{
		Rows: *rows, BaseRows: *rows / 4, NoiseRate: 0.10, Seed: 42,
	})

	// Pick a price threshold with ~0.05% selectivity for the t1 filter.
	prices := make([]float64, len(items))
	for i, r := range items {
		prices[i] = r.Field("extendedprice").Float()
	}
	sort.Float64s(prices)
	threshold := prices[len(prices)/2000+1]

	db := cleandb.Open(cleandb.WithWorkers(8))
	db.RegisterRows("lineitem", items)

	query := fmt.Sprintf(`
SELECT * FROM lineitem t1
DENIAL(t2, t1.extendedprice < t2.extendedprice and t1.discount > t2.discount and t1.extendedprice < %.1f)
REPAIR(t1.discount)`, threshold)

	fmt.Printf("lineitem: %d rows; rule ψ with price < %.1f, REPAIR(discount)\n\n", len(items), threshold)
	res, err := db.Query(query)
	if err != nil {
		panic(err)
	}
	for _, s := range res.Repairs() {
		fmt.Printf("repair of %s.%s:\n", s.Source, s.Col)
		fmt.Printf("  violating pairs found by the plan: %d\n", s.Violations)
		fmt.Printf("  values rewritten:                  %d (in %d clusters, %d rounds)\n",
			s.Changed, s.Clusters, s.Rounds)
		fmt.Printf("  violations remaining:              %d\n", s.Remaining)
		show := s.Entries
		if len(show) > 5 {
			show = show[:5]
		}
		for _, e := range show {
			fmt.Printf("    %.2f → %.2f  (interval [%.2f, %.2f])\n", e.Old, e.New, e.Lo, e.Hi)
		}
		if len(s.Entries) > len(show) {
			fmt.Printf("    … %d more\n", len(s.Entries)-len(show))
		}
	}

	// Re-run detection on the healed rows: the DENIAL must now be satisfied.
	db2 := cleandb.Open(cleandb.WithWorkers(8))
	db2.RegisterRows("lineitem", res.RepairedRows("lineitem"))
	detect := fmt.Sprintf(`
SELECT * FROM lineitem t1
DENIAL(t2, t1.extendedprice < t2.extendedprice and t1.discount > t2.discount and t1.extendedprice < %.1f)`, threshold)
	res2, err := db2.Query(detect)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nre-check on repaired data: %d violating pairs\n", len(res2.Rows()))
	m := db.Metrics()
	fmt.Printf("cost: %d comparisons, %d simulated ticks\n", m.Comparisons, m.SimTicks)
}
