package data

import (
	"encoding/binary"
	"errors"
	"math"
	"strings"
	"testing"

	"cleandb/internal/types"
)

var wireRowSchema = types.NewSchema("id", "name", "price", "flag", "note")

func wireSampleRows() []types.Value {
	mk := func(id int64, name string, price float64, flag bool, note types.Value) types.Value {
		return types.NewRecord(wireRowSchema, []types.Value{
			types.Int(id), types.String(name), types.Float(price), types.Bool(flag), note,
		})
	}
	return []types.Value{
		mk(1, "alpha", 3.25, true, types.String("x")),
		mk(-9, "beta", math.Inf(-1), false, types.Null()),
		mk(math.MaxInt64, "alpha", math.SmallestNonzeroFloat64, true, types.String("y")),
		mk(math.MinInt64, "", -0.0, false, types.Null()),
	}
}

func wireNestedRows() []types.Value {
	pair := types.NewSchema("left", "right")
	inner := types.NewSchema("k", "vs")
	l := types.NewRecord(inner, []types.Value{types.Int(7), types.ListOf([]types.Value{types.String("a"), types.Int(2), types.Null()})})
	r := types.NewRecord(inner, []types.Value{types.Float(2.5), types.ListOf(nil)})
	return []types.Value{
		types.NewRecord(pair, []types.Value{l, r}),
		types.NewRecord(pair, []types.Value{r, types.Null()}),
	}
}

func keysOf(rows []types.Value) []string {
	out := make([]string, len(rows))
	for i, v := range rows {
		out[i] = types.Key(v)
	}
	return out
}

func checkRoundTrip(t *testing.T, rows []types.Value, wantType byte) {
	t.Helper()
	frame := EncodeRowsFrame(rows)
	if frame[4] != wantType {
		t.Fatalf("frame type = %d, want %d", frame[4], wantType)
	}
	got, err := DecodeRowsFrame(frame, NewDict())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	want, gotK := keysOf(rows), keysOf(got)
	if len(want) != len(gotK) {
		t.Fatalf("row count = %d, want %d", len(gotK), len(want))
	}
	for i := range want {
		if want[i] != gotK[i] {
			t.Fatalf("row %d: decoded %q, want %q", i, gotK[i], want[i])
		}
	}
}

func TestWireFrameRoundTripColumnar(t *testing.T) {
	checkRoundTrip(t, wireSampleRows(), frameBatch)
}

func TestWireFrameRoundTripGeneric(t *testing.T) {
	checkRoundTrip(t, wireNestedRows(), frameRows)
	checkRoundTrip(t, nil, frameRows)
	checkRoundTrip(t, []types.Value{types.Int(1), types.String("solo"), types.Null()}, frameRows)
	// A mixed int/float column forces the VecAny fallback and thus the
	// generic codec; the int/float distinction must survive the wire.
	s := types.NewSchema("v")
	checkRoundTrip(t, []types.Value{
		types.NewRecord(s, []types.Value{types.Int(3)}),
		types.NewRecord(s, []types.Value{types.Float(3)}),
	}, frameRows)
}

func TestWireFrameDictDelta(t *testing.T) {
	session := NewDict()
	session.Code("preexisting")
	frameA := EncodeRowsFrame(wireSampleRows())
	rowsA, err := DecodeRowsFrame(frameA, session)
	if err != nil {
		t.Fatal(err)
	}
	// Strings from the frame-local delta must now resolve through the
	// session dictionary, alongside entries interned before the frame.
	for _, want := range []string{"preexisting", "alpha", "beta"} {
		if _, ok := session.Lookup(want); !ok {
			t.Fatalf("session dict missing %q after remap", want)
		}
	}
	if got := rowsA[0].Record().Fields[1].Str(); got != "alpha" {
		t.Fatalf("decoded name = %q, want alpha", got)
	}
}

func TestWireFrameCorruption(t *testing.T) {
	frame := EncodeRowsFrame(wireSampleRows())
	// Truncation at every prefix must error, never panic.
	for n := 0; n < len(frame); n++ {
		if _, err := DecodeRowsFrame(frame[:n], NewDict()); err == nil {
			t.Fatalf("truncated frame of %d bytes decoded without error", n)
		}
	}
	// Any single corrupted payload byte must fail the checksum.
	for i := 9; i < len(frame)-4; i++ {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0xff
		if _, err := DecodeRowsFrame(bad, NewDict()); !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("payload byte %d corrupted: err = %v, want ErrFrameCorrupt", i, err)
		}
	}
	if _, err := DecodeRowsFrame([]byte("XXXX\x01\x00\x00\x00\x00\x00\x00\x00\x00"), NewDict()); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("bad magic: err = %v", err)
	}
}

// TestWireFrameNoOverAllocation crafts a tiny frame whose length prefixes
// claim gigantic counts; the decoder must reject it instead of allocating.
func TestWireFrameNoOverAllocation(t *testing.T) {
	payload := binary.AppendUvarint(nil, 1<<40) // string table "contains" 2^40 entries
	frame := sealFrame(frameRows, payload)
	if _, err := DecodeRowsFrame(frame, NewDict()); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("huge string count: err = %v, want ErrFrameCorrupt", err)
	}
	// Same through the row-count prefix: empty tables, then 2^40 rows.
	payload = binary.AppendUvarint(nil, 0)
	payload = binary.AppendUvarint(payload, 0)
	payload = binary.AppendUvarint(payload, 1<<40)
	frame = sealFrame(frameRows, payload)
	if _, err := DecodeRowsFrame(frame, NewDict()); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("huge row count: err = %v, want ErrFrameCorrupt", err)
	}
}

func TestWireFrameDepthLimit(t *testing.T) {
	// maxValueDepth+10 nested single-element lists: the encoder would never
	// produce this, so build the payload by hand.
	var w wireWriter
	w.buf = binary.AppendUvarint(nil, 0) // no strings
	w.buf = binary.AppendUvarint(w.buf, 0)
	w.buf = binary.AppendUvarint(w.buf, 1) // one row
	for i := 0; i < maxValueDepth+10; i++ {
		w.buf = append(w.buf, tagList)
		w.buf = binary.AppendUvarint(w.buf, 1)
	}
	w.buf = append(w.buf, tagNull)
	if _, err := DecodeRowsFrame(sealFrame(frameRows, w.buf), NewDict()); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("deep nesting: err = %v, want ErrFrameCorrupt", err)
	}
}

// FuzzWireFrameRoundTrip hardens the exchange wire path: arbitrary bytes must
// decode cleanly or error — never panic, never allocate beyond the input size
// — and whatever does decode must survive a re-encode round trip bit-exactly.
// Both frame codecs the barrier exchange traffics in are driven: row frames
// and the custody scan's type-vote frames.
func FuzzWireFrameRoundTrip(f *testing.F) {
	f.Add(EncodeRowsFrame(wireSampleRows()))
	f.Add(EncodeRowsFrame(wireNestedRows()))
	f.Add(EncodeRowsFrame(nil))
	f.Add(EncodeRowsFrame([]types.Value{types.String(strings.Repeat("z", 300)), types.Int(-1)}))
	f.Add(EncodeScanVoteFrame([]ColVote{{Type: ColInt, Voted: true}, {Type: ColString, Voted: false}}))
	f.Add(EncodeScanVoteFrame(nil))
	f.Add([]byte("CWX1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		rows, err := DecodeRowsFrame(raw, NewDict())
		if err == nil {
			frame := EncodeRowsFrame(rows)
			again, err := DecodeRowsFrame(frame, NewDict())
			if err != nil {
				t.Fatalf("re-encode of decoded rows failed: %v", err)
			}
			want, got := keysOf(rows), keysOf(again)
			if len(want) != len(got) {
				t.Fatalf("round trip row count %d != %d", len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("round trip row %d: %q != %q", i, got[i], want[i])
				}
			}
		}
		votes, err := DecodeScanVoteFrame(raw)
		if err != nil {
			return
		}
		again, err := DecodeScanVoteFrame(EncodeScanVoteFrame(votes))
		if err != nil {
			t.Fatalf("re-encode of decoded votes failed: %v", err)
		}
		if len(again) != len(votes) {
			t.Fatalf("vote round trip count %d != %d", len(again), len(votes))
		}
		for i := range votes {
			if again[i] != votes[i] {
				t.Fatalf("vote round trip col %d: %+v != %+v", i, again[i], votes[i])
			}
		}
	})
}
