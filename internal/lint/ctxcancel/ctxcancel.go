// Package ctxcancel enforces the job-context discipline of the engine:
// operator code iterating candidate pairs — a loop nest at least two deep —
// must poll cancellation somewhere inside the nest, the way the theta-join
// worker loops do (internal/engine/join.go). A query whose client has gone
// away must stop burning cores mid-join, not at the next partition boundary.
package ctxcancel

import (
	"go/ast"
	"go/types"

	"cleandb/internal/lint/analysis"
	"cleandb/internal/lint/lintutil"
)

// Analyzer flags nested pair loops that never poll the job context.
var Analyzer = &analysis.Analyzer{
	Name: "ctxcancel",
	Doc: "nested operator loops must poll job-context cancellation\n\n" +
		"In operator code, a loop containing another loop (a pair/partition " +
		"nest) must contain a reachable cancellation check — ctx.Err() on a " +
		"context.Context or engine.Context, amortized if desired — anywhere " +
		"inside the nest. Only functions that can reach a cancellable context " +
		"(a context value, or an engine Dataset/Context in scope) are held to " +
		"this; the check may sit in any level of the nest, matching the " +
		"amortized pattern of the engine's join loops.",
	Scope: []string{
		"cleandb/internal/engine",
		"cleandb/internal/cleaning",
		"cleandb/internal/incr",
		"cleandb/internal/sparksql",
		"cleandb/internal/bigdansing",
	},
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		lintutil.FuncScopes(file, func(name string, body *ast.BlockStmt, decl ast.Node) {
			checkScope(pass, name, body)
		})
	}
	return nil, nil
}

func checkScope(pass *analysis.Pass, name string, body *ast.BlockStmt) {
	if !contextReachable(pass, body) {
		return
	}
	// Find outermost loops of the scope; for each, flag when it contains a
	// nested loop but no cancellation check anywhere in the nest.
	lintutil.InspectScope(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if hasNestedLoop(n) && !hasCancelCheck(pass, n) {
				pass.Reportf(n.Pos(),
					"nested loop in %q has no reachable cancellation check; poll ctx.Err() (amortized) inside the nest like the engine join loops do",
					name)
			}
			return false // inner loops are covered by the outer report
		}
		return true
	})
}

// contextReachable reports whether the scope can get at a cancellable
// context: an expression of type context.Context, engine.Context, or an
// engine Dataset (which exposes Context()).
func contextReachable(pass *analysis.Pass, body *ast.BlockStmt) bool {
	reachable := false
	// Receivers and parameters are part of the scope even when unused in it;
	// identifiers used in the body cover locals and captured closure state.
	lintutil.InspectScope(body, func(n ast.Node) bool {
		if reachable {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		if v, ok := obj.(*types.Var); ok && isCancellable(v.Type()) {
			reachable = true
			return false
		}
		return true
	})
	return reachable
}

func isCancellable(t types.Type) bool {
	return lintutil.NamedIs(t, "context", "Context") ||
		lintutil.NamedIs(t, "cleandb/internal/engine", "Context") ||
		lintutil.NamedIs(t, "cleandb/internal/engine", "Dataset")
}

// hasNestedLoop reports whether loop contains another loop within the same
// function scope.
func hasNestedLoop(loop ast.Node) bool {
	nested := false
	first := true
	ast.Inspect(loop, func(n ast.Node) bool {
		if nested {
			return false
		}
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			if first {
				first = false
				return true
			}
			nested = true
			return false
		}
		return true
	})
	return nested
}

// hasCancelCheck reports whether any node inside the nest polls cancellation.
func hasCancelCheck(pass *analysis.Pass, loop ast.Node) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if lintutil.IsContextErrCheck(pass.TypesInfo, n) {
			found = true
			return false
		}
		return true
	})
	return found
}
