package lang

import (
	"strings"
	"testing"

	"cleandb/internal/monoid"
)

const denialQuery = `
SELECT * FROM lineitem t1
DENIAL(t2, t1.extendedprice < t2.extendedprice and t1.discount > t2.discount and t1.extendedprice < 905)
REPAIR(t1.discount)`

func TestParseDenialRepair(t *testing.T) {
	q, err := Parse(denialQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Cleaning) != 1 {
		t.Fatalf("cleaning ops = %d, want 1", len(q.Cleaning))
	}
	op := q.Cleaning[0]
	if op.Kind != CleanDenial {
		t.Fatalf("kind = %v, want DENIAL", op.Kind)
	}
	if op.SecondAlias != "t2" {
		t.Fatalf("second alias = %q", op.SecondAlias)
	}
	if op.Pred == nil || op.RepairAttr == nil {
		t.Fatalf("pred/repair missing: %+v", op)
	}
	if f, ok := op.RepairAttr.(*monoid.Field); !ok || f.Name != "discount" {
		t.Fatalf("repair attr = %v", op.RepairAttr)
	}
}

func TestParseRepairErrors(t *testing.T) {
	for _, src := range []string{
		`SELECT * FROM t a REPAIR(a.x)`,                                  // no DENIAL
		`SELECT * FROM t a FD(a.x, a.y) REPAIR(a.x)`,                     // follows FD
		`SELECT * FROM t a DENIAL(b, a.x < b.x) REPAIR(a.x) REPAIR(a.x)`, // duplicate
		`SELECT * FROM t a DENIAL(a, a.x < a.x)`,                         // alias collision
		`SELECT * FROM t a DENIAL(b, c.x < b.x)`,                         // unknown name
		`SELECT * FROM t a, u b DENIAL(c, a.x < c.x and b.y > c.y)`,      // two FROM aliases
	} {
		q, err := Parse(src)
		if err == nil {
			var d Desugarer
			_, err = d.Desugar(q)
		}
		if err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}

func TestDesugarDenialSplitsConjuncts(t *testing.T) {
	q, err := Parse(denialQuery)
	if err != nil {
		t.Fatal(err)
	}
	var d Desugarer
	tasks, err := d.Desugar(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 1 || tasks[0].Denial == nil {
		t.Fatalf("tasks = %+v", tasks)
	}
	spec := tasks[0].Denial
	if spec.Source != "lineitem" || spec.Alias != "t1" || spec.SecondAlias != "t2" {
		t.Fatalf("spec roles = %+v", spec)
	}
	if len(spec.T1Conjuncts) != 1 || !strings.Contains(spec.T1Conjuncts[0].String(), "905") {
		t.Fatalf("t1 conjuncts = %v", spec.T1Conjuncts)
	}
	if len(spec.CrossConjuncts) != 2 {
		t.Fatalf("cross conjuncts = %v", spec.CrossConjuncts)
	}
	if spec.RepairAttr == nil {
		t.Fatal("repair attr lost")
	}
	// The comprehension places the t1-only filter before the second
	// generator so lowering pushes it below the self join.
	comp := tasks[0].Comp.String()
	filterPos := strings.Index(comp, "905")
	genPos := strings.Index(comp, "t2 <-")
	if genPos == -1 {
		genPos = strings.Index(comp, "t2 ←")
	}
	if filterPos == -1 || genPos == -1 || filterPos > genPos {
		t.Fatalf("filter not before second generator in:\n%s", comp)
	}
}

func TestDesugarDenialWhereConjunctsJoinT1Filters(t *testing.T) {
	q, err := Parse(`SELECT * FROM t a WHERE a.price < 50 DENIAL(b, a.price < b.price and a.d > b.d)`)
	if err != nil {
		t.Fatal(err)
	}
	var d Desugarer
	tasks, err := d.Desugar(q)
	if err != nil {
		t.Fatal(err)
	}
	spec := tasks[0].Denial
	if len(spec.T1Conjuncts) != 1 || !strings.Contains(spec.T1Conjuncts[0].String(), "50") {
		t.Fatalf("WHERE conjunct not folded into t1 filters: %v", spec.T1Conjuncts)
	}
	if spec.RepairAttr != nil {
		t.Fatal("unexpected repair attr")
	}
}
