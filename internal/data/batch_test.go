package data

import (
	"strings"
	"testing"

	"cleandb/internal/types"
)

func batchRows() []types.Value {
	schema := types.NewSchema("id", "name", "score", "flag", "tags")
	rows := make([]types.Value, 50)
	for i := range rows {
		fields := []types.Value{
			types.Int(int64(i)),
			types.String("name-" + string(rune('a'+i%7))),
			types.Float(float64(i) / 3),
			types.Bool(i%2 == 0),
			types.List(types.String("x"), types.Int(int64(i))),
		}
		// Sprinkle nulls through every column so validity bitmaps are
		// exercised on typed and boxed vectors alike.
		if i%9 == 0 {
			fields[i%5] = types.Null()
		}
		rows[i] = types.NewRecord(schema, fields)
	}
	return rows
}

func requireRowsEqual(t *testing.T, got, want []types.Value) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if !types.Equal(got[i], want[i]) {
			t.Fatalf("row %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestBatchFromRowsRoundTrip(t *testing.T) {
	rows := batchRows()
	b := BatchFromRows(rows, nil)
	if b == nil {
		t.Fatal("homogeneous records should batch")
	}
	if b.N != len(rows) {
		t.Fatalf("N = %d, want %d", b.N, len(rows))
	}
	if k := b.Cols[b.Col("name")].Kind; k != VecStr {
		t.Fatalf("name column kind = %v, want VecStr", k)
	}
	if k := b.Cols[b.Col("tags")].Kind; k != VecAny {
		t.Fatalf("tags column kind = %v, want VecAny (lists stay boxed)", k)
	}
	requireRowsEqual(t, b.Rows(), rows)
}

func TestBatchFromRowsRejectsNonRecords(t *testing.T) {
	if b := BatchFromRows([]types.Value{types.Int(1), types.Int(2)}, nil); b != nil {
		t.Fatal("scalar rows must stay rows")
	}
	s1 := types.NewSchema("a")
	s2 := types.NewSchema("a", "b")
	mixed := []types.Value{
		types.NewRecord(s1, []types.Value{types.Int(1)}),
		types.NewRecord(s2, []types.Value{types.Int(1), types.Int(2)}),
	}
	if b := BatchFromRows(mixed, nil); b != nil {
		t.Fatal("mixed-schema rows must stay rows")
	}
}

func TestGatherSliceConcatRoundTrip(t *testing.T) {
	rows := batchRows()
	b := BatchFromRows(rows, nil)

	sel := []int32{0, 3, 9, 9, 44}
	var want []types.Value
	for _, j := range sel {
		want = append(want, rows[j])
	}
	requireRowsEqual(t, b.Gather(sel).Rows(), want)

	requireRowsEqual(t, b.Slice(10, 30).Rows(), rows[10:30])

	cc := ConcatBatches([]*ColumnBatch{b.Slice(0, 17), b.Slice(17, 17), b.Slice(17, 50)})
	if cc == nil {
		t.Fatal("same-shape slices must concatenate")
	}
	requireRowsEqual(t, cc.Rows(), rows)

	// Batches of different dictionaries do not concatenate.
	other := BatchFromRows(rows, NewDict())
	if ConcatBatches([]*ColumnBatch{b, other}) != nil {
		t.Fatal("different dictionaries must not concatenate")
	}
}

func TestRemapDictUnifiesCodes(t *testing.T) {
	schema := types.NewSchema("s")
	mk := func(ss ...string) []types.Value {
		out := make([]types.Value, len(ss))
		for i, s := range ss {
			out[i] = types.NewRecord(schema, []types.Value{types.String(s)})
		}
		return out
	}
	b1 := BatchFromRows(mk("x", "y", "z"), NewDict())
	b2 := BatchFromRows(mk("z", "w", "x"), NewDict())
	shared := NewDict()
	b1.RemapDict(shared)
	b2.RemapDict(shared)
	if b1.Dict != shared || b2.Dict != shared {
		t.Fatal("remap must install the shared dictionary")
	}
	// Equal strings now share codes across batches: b1's "z" == b2's "z",
	// b1's "x" == b2's "x".
	if b1.Cols[0].Codes[2] != b2.Cols[0].Codes[0] {
		t.Fatal("codes for equal strings must agree after remap")
	}
	if b1.Cols[0].Codes[0] != b2.Cols[0].Codes[2] {
		t.Fatal("codes for equal strings must agree after remap")
	}
	if shared.Len() != 4 {
		t.Fatalf("shared dictionary has %d entries, want 4", shared.Len())
	}
}

func TestDistinctCodes(t *testing.T) {
	schema := types.NewSchema("s", "n")
	rows := make([]types.Value, 40)
	for i := range rows {
		v := types.Value(types.String("v" + string(rune('a'+i%6))))
		if i == 13 {
			v = types.Null()
		}
		rows[i] = types.NewRecord(schema, []types.Value{v, types.Int(int64(i))})
	}
	b := BatchFromRows(rows, nil)
	distinct, sampled, ok := DistinctCodes([]*ColumnBatch{b}, 0, 1<<20)
	if !ok || distinct != 6 || sampled != 40 {
		t.Fatalf("distinct=%d sampled=%d ok=%v, want 6/40/true", distinct, sampled, ok)
	}
	// The sample cap bounds the probe.
	if _, sampled, _ := DistinctCodes([]*ColumnBatch{b}, 0, 10); sampled != 10 {
		t.Fatalf("sampled = %d, want cap 10", sampled)
	}
	// Non-string columns are not dictionary-encoded.
	if _, _, ok := DistinctCodes([]*ColumnBatch{b}, 1, 100); ok {
		t.Fatal("int column must report ok=false")
	}
}

// FuzzDictionaryRoundTrip drives the string dictionary and the VecStr
// column path with arbitrary token streams: interning must be stable
// (Str∘Code = id, dense codes, consistent Lookup), batching rows through the
// dictionary and boxing them back must be lossless, and remapping
// per-partition dictionaries into a shared one must preserve every decoded
// string while unifying codes.
func FuzzDictionaryRoundTrip(f *testing.F) {
	f.Add("alpha,beta,alpha,,gamma")
	f.Add("")
	f.Add(",,,")
	f.Add("x")
	f.Add("\x00\xff,é,é")
	f.Fuzz(func(t *testing.T, in string) {
		tokens := strings.Split(in, ",")
		d := NewDict()
		codes := make([]uint32, len(tokens))
		for i, s := range tokens {
			codes[i] = d.Code(s)
			if int(codes[i]) >= d.Len() {
				t.Fatalf("code %d out of range (len %d)", codes[i], d.Len())
			}
		}
		for i, s := range tokens {
			if got := d.Str(codes[i]); got != s {
				t.Fatalf("Str(Code(%q)) = %q", s, got)
			}
			if c, ok := d.Lookup(s); !ok || c != codes[i] {
				t.Fatalf("Lookup(%q) = %d,%v, want %d,true", s, c, ok, codes[i])
			}
			if c2 := d.Code(s); c2 != codes[i] {
				t.Fatalf("re-interning %q moved its code %d -> %d", s, codes[i], c2)
			}
		}
		snap := d.Snapshot()
		if len(snap) != d.Len() {
			t.Fatalf("snapshot len %d != dict len %d", len(snap), d.Len())
		}
		seen := map[string]bool{}
		for _, s := range snap {
			if seen[s] {
				t.Fatalf("duplicate dictionary entry %q", s)
			}
			seen[s] = true
		}
		// Every token was interned twice (build loop + verify loop): misses
		// count the distinct entries, hits the rest.
		hits, misses := d.Stats()
		if misses != int64(d.Len()) || hits+misses != int64(2*len(tokens)) {
			t.Fatalf("stats hits=%d misses=%d over %d interns of %d distinct",
				hits, misses, 2*len(tokens), d.Len())
		}

		// Rows → batch → rows through the dictionary is lossless, and
		// remapping into a shared dictionary changes codes but not values.
		schema := types.NewSchema("s")
		rows := make([]types.Value, len(tokens))
		for i, s := range tokens {
			rows[i] = types.NewRecord(schema, []types.Value{types.String(s)})
		}
		b := BatchFromRows(rows, NewDict())
		if b == nil {
			t.Fatal("string records must batch")
		}
		got := b.Rows()
		shared := NewDict()
		shared.Code("pre-existing entry")
		b.RemapDict(shared)
		got2 := b.Rows()
		for i := range rows {
			if !types.Equal(got[i], rows[i]) {
				t.Fatalf("row %d: %v != %v", i, got[i], rows[i])
			}
			if !types.Equal(got2[i], rows[i]) {
				t.Fatalf("row %d after remap: %v != %v", i, got2[i], rows[i])
			}
		}
	})
}
