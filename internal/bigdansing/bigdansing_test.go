package bigdansing

import (
	"errors"
	"testing"

	"cleandb/internal/cleaning"
	"cleandb/internal/datagen"
	"cleandb/internal/engine"
	"cleandb/internal/textsim"
	"cleandb/internal/types"
)

func customers(ctx *engine.Context) *engine.Dataset {
	data := datagen.GenCustomer(datagen.CustomerConfig{Rows: 200, DupRate: 0.2, MaxDups: 5, Seed: 5})
	return engine.FromValues(ctx, data.Rows)
}

func TestFDCheckStoredAttributes(t *testing.T) {
	ctx := engine.NewContext(4)
	ds := customers(ctx)
	out, err := System{}.FDCheck(ds, []string{"address"}, []string{"nationkey"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Count() == 0 {
		t.Fatal("expected violations")
	}
	// Must have used the hash shuffle.
	found := false
	for _, s := range ctx.Metrics().Stages() {
		if s.Name == "fd:hashshuffle" {
			found = true
		}
	}
	if !found {
		t.Fatal("BigDansing should hash-shuffle")
	}
}

func TestFDCheckComputedUnsupported(t *testing.T) {
	ctx := engine.NewContext(2)
	ds := customers(ctx)
	if _, err := (System{}).FDCheck(ds, []string{"address"}, []string{"phone"}, true); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("computed attributes must be unsupported, got %v", err)
	}
}

func TestDCCheckNonResponsive(t *testing.T) {
	ctx := engine.NewContext(4)
	ctx.CompBudget = 1000
	ds := customers(ctx)
	_, err := System{}.DCCheck(ds, cleaning.DCConfig{
		Pred:   func(a, b types.Value) bool { return true },
		Band:   func(v types.Value) float64 { return v.Field("nationkey").Float() },
		BandOp: "<",
	})
	if !errors.Is(err, ErrNonResponsive) {
		t.Fatalf("want ErrNonResponsive, got %v", err)
	}
}

func TestDedupCustomerWorks(t *testing.T) {
	ctx := engine.NewContext(4)
	ds := customers(ctx)
	out, err := System{}.DedupCustomer(ds, textsim.MetricLevenshtein, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if out.Count() == 0 {
		t.Fatal("expected duplicate pairs")
	}
}

func TestDedupCustomerRejectsOtherSchemas(t *testing.T) {
	ctx := engine.NewContext(2)
	schema := types.NewSchema("x", "y")
	ds := engine.FromValues(ctx, []types.Value{
		types.NewRecord(schema, []types.Value{types.Int(1), types.Int(2)}),
	})
	if _, err := (System{}).DedupCustomer(ds, textsim.MetricLevenshtein, 0.8); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("non-customer schema must be unsupported, got %v", err)
	}
}

func TestScopeRestrictions(t *testing.T) {
	sys := System{}
	if err := sys.TermValidate(); !errors.Is(err, ErrUnsupported) {
		t.Fatal("term validation must be unsupported")
	}
	if err := sys.UnifiedClean(); !errors.Is(err, ErrUnsupported) {
		t.Fatal("unified cleaning must be unsupported")
	}
	if sys.SupportsFormat("parquet") || sys.SupportsFormat("json") {
		t.Fatal("only CSV is supported")
	}
	if !sys.SupportsFormat("csv") {
		t.Fatal("CSV must be supported")
	}
}
