package locksnapshot_test

import (
	"testing"

	"cleandb/internal/lint/analysistest"
	"cleandb/internal/lint/locksnapshot"
)

func TestLockSnapshot(t *testing.T) {
	analysistest.Run(t, "testdata", locksnapshot.Analyzer, "lockfixture")
}
