package engine

import (
	"sort"

	"cleandb/internal/types"
)

// CombineFunc merges a left and right record into one output record.
type CombineFunc func(l, r types.Value) types.Value

// cancelCheckEvery amortizes cancellation polling in join inner loops:
// Context.Err locks the Go context's mutex, so workers consult it only once
// per this many candidate comparisons — cheap enough to vanish in the
// predicate cost, frequent enough that cancellation still lands in
// milliseconds.
const cancelCheckEvery = 1 << 16

// PairSchema is the default output schema of joins: {left, right}.
var PairSchema = types.NewSchema("left", "right")

// PairCombine builds a {left, right} record; the right side may be null for
// outer joins.
func PairCombine(l, r types.Value) types.Value {
	return types.NewRecord(PairSchema, []types.Value{l, r})
}

// HashJoin performs an equi-join: both sides are hash-partitioned on their
// key, then each partition builds a table on the right side and probes with
// the left. Matches the paper's Table 2 mapping of the equi-join operator.
func (d *Dataset) HashJoin(name string, right *Dataset, lkey, rkey KeyFunc, combine CombineFunc) *Dataset {
	return d.hashJoin(name, right, lkey, rkey, combine, false)
}

// LeftOuterHashJoin is HashJoin but emits combine(l, Null) for unmatched left
// rows — the paper's outer-join operator used to assemble violation reports.
func (d *Dataset) LeftOuterHashJoin(name string, right *Dataset, lkey, rkey KeyFunc, combine CombineFunc) *Dataset {
	return d.hashJoin(name, right, lkey, rkey, combine, true)
}

func (d *Dataset) hashJoin(name string, right *Dataset, lkey, rkey KeyFunc, combine CombineFunc, outer bool) *Dataset {
	w := d.ctx.Workers
	lb := make([][]types.Value, w)
	rb := make([][]types.Value, w)
	var shuffled, bytes int64
	route := func(parts [][]types.Value, key KeyFunc, buckets [][]types.Value) {
		for _, p := range parts {
			for _, v := range p {
				b := int(types.Hash(key(v)) % uint64(w))
				buckets[b] = append(buckets[b], v)
				shuffled++
				bytes += int64(types.SizeBytes(v))
			}
		}
	}
	route(d.rows(), lkey, lb)
	route(right.rows(), rkey, rb)

	// Per-slot costs depend only on bucket sizes, never on execution, so a
	// distributed run charges identical stage stats on every node even though
	// each node probes only the buckets it owns.
	costs := make([]int64, w)
	for b := 0; b < w; b++ {
		costs[b] = int64(len(lb[b]) + len(rb[b]))
	}
	out, err := d.ctx.maskedRun(name+":hashjoin", w, func(b int) []types.Value {
		table := make(map[string][]types.Value, len(rb[b]))
		for _, rv := range rb[b] {
			ks := types.Key(rkey(rv))
			table[ks] = append(table[ks], rv)
		}
		var res []types.Value
		for _, lv := range lb[b] {
			ks := types.Key(lkey(lv))
			matches := table[ks]
			if len(matches) == 0 {
				if outer {
					res = append(res, combine(lv, types.Null()))
				}
				continue
			}
			for _, rv := range matches {
				res = append(res, combine(lv, rv))
			}
		}
		return res
	})
	if err != nil {
		// hashJoin has no error return; the poisoned/cancelled job surfaces
		// the failure at the end of the query via Context.Err.
		out = make([][]types.Value, w)
	}
	d.ctx.metrics.logStage(StageStats{
		Name: name + ":hashjoin", WorkerCosts: costs,
		ShuffledRecords: shuffled, ShuffledBytes: bytes,
	})
	return &Dataset{ctx: d.ctx, parts: out}
}

// BroadcastJoin ships the (small) right side to every worker and probes it
// with the left side in place — the plan CleanDB uses for dictionary lookups
// in term validation.
func (d *Dataset) BroadcastJoin(name string, right []types.Value, rkey func(types.Value) types.Value, lkey KeyFunc, combine CombineFunc) *Dataset {
	table := make(map[string][]types.Value, len(right))
	for _, rv := range right {
		ks := types.Key(rkey(rv))
		table[ks] = append(table[ks], rv)
	}
	bcastBytes := int64(0)
	for _, rv := range right {
		bcastBytes += int64(types.SizeBytes(rv))
	}
	parts := d.rows()
	out := make([][]types.Value, len(parts))
	costs := make([]int64, len(parts))
	d.ctx.runParallel(len(parts), func(i int) {
		var res []types.Value
		for _, lv := range parts[i] {
			for _, rv := range table[types.Key(lkey(lv))] {
				res = append(res, combine(lv, rv))
			}
		}
		out[i] = res
		costs[i] = int64(len(parts[i]))
	})
	d.ctx.metrics.logStage(StageStats{
		Name: name + ":broadcast", WorkerCosts: costs,
		ShuffledRecords: int64(len(right)) * int64(d.ctx.Workers),
		ShuffledBytes:   bcastBytes * int64(d.ctx.Workers),
	})
	return &Dataset{ctx: d.ctx, parts: out}
}

// CartesianFilter computes the full cross product of d and right, keeping
// pairs that satisfy pred. This is the plan Spark SQL falls back to for theta
// joins (paper §6); it charges one comparison per candidate pair and aborts
// with ErrBudgetExceeded when the context budget is spent — the experiments
// report that as DNF.
func (d *Dataset) CartesianFilter(name string, right *Dataset, pred func(l, r types.Value) bool, combine CombineFunc) (*Dataset, error) {
	rall := right.Collect()
	n := d.Count()
	m := int64(len(rall))
	if b := d.ctx.CompBudget; b > 0 && d.ctx.metrics.comparisons.Load()+n*m > b {
		chargeBudgetOverflow(&d.ctx.metrics, b)
		return nil, ErrBudgetExceeded
	}
	var shuffled int64 = m * int64(d.ctx.Workers) // right side replicated everywhere
	parts := d.rows()
	costs := make([]int64, len(parts))
	for i := range parts {
		costs[i] = int64(len(parts[i])) * m
	}
	out, err := d.ctx.maskedRun(name+":cartesian", len(parts), func(i int) []types.Value {
		var res []types.Value
		since := 0
		for _, lv := range parts[i] {
			if since += len(rall); since >= cancelCheckEvery {
				since = 0
				if d.ctx.Err() != nil {
					return res
				}
			}
			for _, rv := range rall {
				if pred(lv, rv) {
					res = append(res, combine(lv, rv))
				}
			}
		}
		return res
	})
	if err != nil {
		return nil, err
	}
	d.ctx.metrics.AddComparisons(n * m)
	d.ctx.metrics.logStage(StageStats{
		Name: name + ":cartesian", WorkerCosts: costs,
		ShuffledRecords: shuffled,
	})
	return &Dataset{ctx: d.ctx, parts: out}, nil
}

// ThetaJoinStats configures the statistics-aware theta join.
type ThetaJoinStats struct {
	// SortKey orders records for histogram construction; bucket min/max
	// statistics are computed on it. For band predicates (price inequality
	// joins) this enables bucket-pair pruning.
	SortKey func(types.Value) float64
	// Prune, when non-nil, returns true when a bucket pair (given left
	// bucket [lmin,lmax] and right bucket [rmin,rmax] on SortKey) cannot
	// contain any satisfying pair and may be skipped.
	Prune func(lmin, lmax, rmin, rmax float64) bool
	// Buckets is the histogram resolution per side (default 4×workers).
	Buckets int
}

// ThetaJoin implements CleanDB's statistics-aware theta join (paper §6,
// following Okcan & Riedewald's matrix partitioning): it computes equi-depth
// histograms on both inputs, prunes impossible bucket pairs using min/max
// statistics, and assigns the surviving cells of the comparison matrix to
// workers so that each owns a near-equal share of the candidate comparisons.
func (d *Dataset) ThetaJoin(name string, right *Dataset, stats ThetaJoinStats, pred func(l, r types.Value) bool, combine CombineFunc) (*Dataset, error) {
	lall := d.Collect()
	rall := right.Collect()
	if stats.SortKey != nil {
		sortByKeyF(lall, stats.SortKey)
		sortByKeyF(rall, stats.SortKey)
	}
	nb := stats.Buckets
	if nb <= 0 {
		nb = 4 * d.ctx.Workers
	}
	lb := splitBuckets(lall, nb)
	rb := splitBuckets(rall, nb)

	// Candidate cells after min/max pruning.
	type cell struct {
		li, ri int
		cost   int64
	}
	var cells []cell
	var candidate int64
	//lint:ignore ctxcancel cell enumeration is O(buckets²) with constant work per cell
	for li, L := range lb {
		for ri, R := range rb {
			if len(L) == 0 || len(R) == 0 {
				continue
			}
			if stats.Prune != nil && stats.SortKey != nil {
				lmin, lmax := stats.SortKey(L[0]), stats.SortKey(L[len(L)-1])
				rmin, rmax := stats.SortKey(R[0]), stats.SortKey(R[len(R)-1])
				if stats.Prune(lmin, lmax, rmin, rmax) {
					continue
				}
			}
			c := int64(len(L)) * int64(len(R))
			cells = append(cells, cell{li, ri, c})
			candidate += c
		}
	}
	if b := d.ctx.CompBudget; b > 0 && d.ctx.metrics.comparisons.Load()+candidate > b {
		chargeBudgetOverflow(&d.ctx.metrics, b)
		return nil, ErrBudgetExceeded
	}

	// Longest-processing-time assignment of cells to workers for balance.
	sort.Slice(cells, func(i, j int) bool { return cells[i].cost > cells[j].cost })
	w := d.ctx.Workers
	assign := make([][]cell, w)
	loads := make([]int64, w)
	//lint:ignore ctxcancel LPT assignment is O(cells·workers) bookkeeping, no per-row work
	for _, c := range cells {
		best := 0
		for i := 1; i < w; i++ {
			if loads[i] < loads[best] {
				best = i
			}
		}
		assign[best] = append(assign[best], c)
		loads[best] += c.cost
	}

	out, err := d.ctx.maskedRun(name+":thetajoin", w, func(wi int) []types.Value {
		var res []types.Value
		since := 0
		for _, c := range assign[wi] {
			for _, lv := range lb[c.li] {
				if since += len(rb[c.ri]); since >= cancelCheckEvery {
					since = 0
					if d.ctx.Err() != nil {
						return res
					}
				}
				for _, rv := range rb[c.ri] {
					if pred(lv, rv) {
						res = append(res, combine(lv, rv))
					}
				}
			}
		}
		return res
	})
	if err != nil {
		return nil, err
	}
	d.ctx.metrics.AddComparisons(candidate)
	// Each row is shipped to the workers owning its row/column of the matrix;
	// with balanced rectangles that is ~sqrt(W) copies (Okcan & Riedewald).
	repl := int64(intSqrt(w))
	if repl < 1 {
		repl = 1
	}
	d.ctx.metrics.logStage(StageStats{
		Name: name + ":thetajoin", WorkerCosts: loads,
		ShuffledRecords: (int64(len(lall)) + int64(len(rall))) * repl,
	})
	return &Dataset{ctx: d.ctx, parts: out}, nil
}

// MinMaxBlockJoin models BigDansing's inequality-join strategy (paper §8.3):
// the inputs are split into blocks in arrival order, per-block min/max
// statistics on the predicate attribute (lattr on the left input, rattr on
// the right) are computed, and only block pairs whose ranges can satisfy the
// predicate are compared. When the data is not pre-ordered on the predicate
// attribute, nearly every pair of ranges overlaps, pruning is ineffective,
// and the job exceeds its budget — reproducing the paper's observation that
// BigDansing is non-responsive on rule ψ.
func (d *Dataset) MinMaxBlockJoin(name string, right *Dataset, lattr, rattr func(types.Value) float64, overlap func(lmin, lmax, rmin, rmax float64) bool, pred func(l, r types.Value) bool, combine CombineFunc) (*Dataset, error) {
	lall := d.Collect()
	rall := right.Collect()
	nb := 4 * d.ctx.Workers
	lb := splitBuckets(lall, nb)
	rb := splitBuckets(rall, nb)
	type cell struct {
		li, ri int
		cost   int64
	}
	var cells []cell
	var candidate int64
	// Precompute the right-bucket ranges once: recomputing them inside the
	// cell nest would rescan every right row per left bucket.
	type rng struct{ min, max float64 }
	rranges := make([]rng, len(rb))
	for ri, R := range rb {
		if len(R) > 0 {
			rmin, rmax := minMaxOf(R, rattr)
			rranges[ri] = rng{rmin, rmax}
		}
	}
	//lint:ignore ctxcancel cell enumeration is O(buckets²) with constant work per cell after the range precompute
	for li, L := range lb {
		if len(L) == 0 {
			continue
		}
		lmin, lmax := minMaxOf(L, lattr)
		for ri, R := range rb {
			if len(R) == 0 {
				continue
			}
			if !overlap(lmin, lmax, rranges[ri].min, rranges[ri].max) {
				continue
			}
			c := int64(len(L)) * int64(len(R))
			cells = append(cells, cell{li, ri, c})
			candidate += c
		}
	}
	// BigDansing shuffles every surviving block pair across the cluster.
	if b := d.ctx.CompBudget; b > 0 && d.ctx.metrics.comparisons.Load()+candidate > b {
		chargeBudgetOverflow(&d.ctx.metrics, b)
		return nil, ErrBudgetExceeded
	}
	w := d.ctx.Workers
	loads := make([]int64, w)
	for i, c := range cells {
		loads[i%w] += c.cost
	}
	out, err := d.ctx.maskedRun(name+":minmaxjoin", w, func(wi int) []types.Value {
		var res []types.Value
		since := 0
		for i, c := range cells {
			if i%w != wi {
				continue
			}
			for _, lv := range lb[c.li] {
				if since += len(rb[c.ri]); since >= cancelCheckEvery {
					since = 0
					if d.ctx.Err() != nil {
						return res
					}
				}
				for _, rv := range rb[c.ri] {
					if pred(lv, rv) {
						res = append(res, combine(lv, rv))
					}
				}
			}
		}
		return res
	})
	if err != nil {
		return nil, err
	}
	d.ctx.metrics.AddComparisons(candidate)
	d.ctx.metrics.logStage(StageStats{
		Name: name + ":minmaxjoin", WorkerCosts: loads,
		ShuffledRecords: int64(len(cells)) * 2,
	})
	return &Dataset{ctx: d.ctx, parts: out}, nil
}

// chargeBudgetOverflow accounts the unspent remainder of the comparison
// budget when a join aborts with ErrBudgetExceeded, saturating the counter at
// the budget. The counter may already sit past the budget — a prior stage of
// the same job overspent it — and the delta is then negative; it clamps at
// zero so an aborted join never rolls the cumulative metrics back.
func chargeBudgetOverflow(m *Metrics, budget int64) {
	if left := budget - m.comparisons.Load(); left > 0 {
		m.AddComparisons(left)
	}
}

func sortByKeyF(vs []types.Value, key func(types.Value) float64) {
	sort.SliceStable(vs, func(i, j int) bool { return key(vs[i]) < key(vs[j]) })
}

func splitBuckets(vs []types.Value, n int) [][]types.Value {
	if n < 1 {
		n = 1
	}
	out := make([][]types.Value, n)
	per := (len(vs) + n - 1) / n
	if per == 0 {
		per = 1
	}
	for i := 0; i < n; i++ {
		lo := i * per
		if lo > len(vs) {
			lo = len(vs)
		}
		hi := lo + per
		if hi > len(vs) {
			hi = len(vs)
		}
		out[i] = vs[lo:hi]
	}
	return out
}

func minMaxOf(vs []types.Value, attr func(types.Value) float64) (float64, float64) {
	mn, mx := attr(vs[0]), attr(vs[0])
	for _, v := range vs[1:] {
		f := attr(v)
		if f < mn {
			mn = f
		}
		if f > mx {
			mx = f
		}
	}
	return mn, mx
}

func intSqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}
