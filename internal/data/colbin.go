package data

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"cleandb/internal/types"
)

// colbin is CleanDB's binary columnar format — the repo's stand-in for
// Parquet (see DESIGN.md). Layout:
//
//	magic "CBN1"
//	uvarint ncols, then per column: name (uvarint len + bytes), type byte
//	uvarint nrows
//	per column: null bitmap (ceil(nrows/8) bytes) followed by the encoded
//	column chunk:
//	  int      — zigzag varints
//	  float    — 8-byte little-endian IEEE 754
//	  bool     — one byte per row
//	  string   — dictionary: uvarint dict size, entries (uvarint len+bytes),
//	             then one uvarint index per row
//	  list<string> — uvarint length per row, then the flattened entries
//	             encoded like a string column
//
// Dictionary encoding gives colbin the two properties the paper's
// experiments rely on: it is much smaller than CSV, and nested author lists
// stay nested instead of being flattened into repeated rows.
const colbinMagic = "CBN1"

// WriteColbin writes records (sharing one schema) in colbin format.
func WriteColbin(w io.Writer, rows []types.Value) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(colbinMagic); err != nil {
		return err
	}
	if len(rows) == 0 {
		writeUvarint(bw, 0)
		writeUvarint(bw, 0)
		return bw.Flush()
	}
	rec := rows[0].Record()
	if rec == nil {
		return fmt.Errorf("data: colbin: rows must be records")
	}
	names := rec.Schema.Names
	colTypes := make([]ColType, len(names))
	for i := range names {
		colTypes[i] = colbinTypeOf(rows, i)
	}
	writeUvarint(bw, uint64(len(names)))
	for i, n := range names {
		writeUvarint(bw, uint64(len(n)))
		bw.WriteString(n)
		bw.WriteByte(byte(colTypes[i]))
	}
	writeUvarint(bw, uint64(len(rows)))
	for col := range names {
		if err := writeColumn(bw, rows, col, colTypes[col]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func colbinTypeOf(rows []types.Value, col int) ColType {
	t := ColInt
	decided := false
	for _, row := range rows {
		v := row.Record().Fields[col]
		switch v.Kind() {
		case types.KindNull:
			continue
		case types.KindInt:
			if !decided {
				t = ColInt
				decided = true
			}
			if t == ColFloat || t == ColInt {
				continue
			}
			return ColString
		case types.KindFloat:
			if !decided || t == ColInt {
				t = ColFloat
				decided = true
				continue
			}
			if t == ColFloat {
				continue
			}
			return ColString
		case types.KindBool:
			if !decided {
				t = ColBool
				decided = true
				continue
			}
			if t != ColBool {
				return ColString
			}
		case types.KindString:
			if !decided {
				t = ColString
				decided = true
				continue
			}
			if t != ColString {
				return ColString
			}
		case types.KindList:
			return ColStringList
		default:
			return ColString
		}
	}
	if !decided {
		return ColString
	}
	return t
}

func writeColumn(bw *bufio.Writer, rows []types.Value, col int, t ColType) error {
	// Null bitmap.
	bitmap := make([]byte, (len(rows)+7)/8)
	for i, row := range rows {
		if row.Record().Fields[col].IsNull() {
			bitmap[i/8] |= 1 << (i % 8)
		}
	}
	if _, err := bw.Write(bitmap); err != nil {
		return err
	}
	switch t {
	case ColInt:
		for _, row := range rows {
			writeVarint(bw, row.Record().Fields[col].Int())
		}
	case ColFloat:
		var buf [8]byte
		for _, row := range rows {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(row.Record().Fields[col].Float()))
			bw.Write(buf[:])
		}
	case ColBool:
		for _, row := range rows {
			b := byte(0)
			if row.Record().Fields[col].Bool() {
				b = 1
			}
			bw.WriteByte(b)
		}
	case ColString:
		vals := make([]string, len(rows))
		for i, row := range rows {
			vals[i] = row.Record().Fields[col].String()
		}
		writeStringChunk(bw, vals)
	case ColStringList:
		var flat []string
		for _, row := range rows {
			f := row.Record().Fields[col]
			if f.Kind() == types.KindList {
				writeUvarint(bw, uint64(len(f.List())))
				for _, e := range f.List() {
					flat = append(flat, e.String())
				}
			} else if f.IsNull() {
				writeUvarint(bw, 0)
			} else {
				writeUvarint(bw, 1)
				flat = append(flat, f.String())
			}
		}
		writeStringChunk(bw, flat)
	}
	return nil
}

// writeStringChunk dictionary-encodes a string vector.
func writeStringChunk(bw *bufio.Writer, vals []string) {
	dict := map[string]uint64{}
	var entries []string
	for _, v := range vals {
		if _, ok := dict[v]; !ok {
			dict[v] = uint64(len(entries) + 1)
			entries = append(entries, v)
		}
	}
	writeUvarint(bw, uint64(len(entries)))
	for _, e := range entries {
		writeUvarint(bw, uint64(len(e)))
		bw.WriteString(e)
	}
	for _, v := range vals {
		writeUvarint(bw, dict[v])
	}
}

// ReadColbin reads a colbin stream back into record values.
func ReadColbin(r io.Reader) ([]types.Value, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("data: colbin: %w", err)
	}
	if string(magic) != colbinMagic {
		return nil, fmt.Errorf("data: colbin: bad magic %q", magic)
	}
	ncols, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("data: colbin: %w", err)
	}
	names := make([]string, ncols)
	colTypes := make([]ColType, ncols)
	for i := range names {
		n, err := readString(br)
		if err != nil {
			return nil, err
		}
		names[i] = n
		tb, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("data: colbin: %w", err)
		}
		colTypes[i] = ColType(tb)
	}
	nrowsU, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("data: colbin: %w", err)
	}
	nrows := int(nrowsU)
	if ncols == 0 || nrows == 0 {
		return nil, nil
	}
	cols := make([][]types.Value, ncols)
	for c := range cols {
		vals, err := readColumn(br, nrows, colTypes[c])
		if err != nil {
			return nil, err
		}
		cols[c] = vals
	}
	schema := types.NewSchema(names...)
	out := make([]types.Value, nrows)
	for i := 0; i < nrows; i++ {
		fields := make([]types.Value, ncols)
		for c := range cols {
			fields[c] = cols[c][i]
		}
		out[i] = types.NewRecord(schema, fields)
	}
	return out, nil
}

func readColumn(br *bufio.Reader, nrows int, t ColType) ([]types.Value, error) {
	bitmap := make([]byte, (nrows+7)/8)
	if _, err := io.ReadFull(br, bitmap); err != nil {
		return nil, fmt.Errorf("data: colbin: %w", err)
	}
	isNull := func(i int) bool { return bitmap[i/8]&(1<<(i%8)) != 0 }
	out := make([]types.Value, nrows)
	switch t {
	case ColInt:
		for i := 0; i < nrows; i++ {
			n, err := binary.ReadVarint(br)
			if err != nil {
				return nil, fmt.Errorf("data: colbin: %w", err)
			}
			if isNull(i) {
				out[i] = types.Null()
			} else {
				out[i] = types.Int(n)
			}
		}
	case ColFloat:
		buf := make([]byte, 8)
		for i := 0; i < nrows; i++ {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("data: colbin: %w", err)
			}
			if isNull(i) {
				out[i] = types.Null()
			} else {
				out[i] = types.Float(math.Float64frombits(binary.LittleEndian.Uint64(buf)))
			}
		}
	case ColBool:
		for i := 0; i < nrows; i++ {
			b, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("data: colbin: %w", err)
			}
			if isNull(i) {
				out[i] = types.Null()
			} else {
				out[i] = types.Bool(b != 0)
			}
		}
	case ColString:
		vals, err := readStringChunk(br, nrows)
		if err != nil {
			return nil, err
		}
		for i := 0; i < nrows; i++ {
			if isNull(i) {
				out[i] = types.Null()
			} else {
				out[i] = types.String(vals[i])
			}
		}
	case ColStringList:
		lengths := make([]int, nrows)
		total := 0
		for i := 0; i < nrows; i++ {
			n, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("data: colbin: %w", err)
			}
			lengths[i] = int(n)
			total += int(n)
		}
		flat, err := readStringChunk(br, total)
		if err != nil {
			return nil, err
		}
		pos := 0
		for i := 0; i < nrows; i++ {
			if isNull(i) {
				out[i] = types.Null()
				pos += lengths[i]
				continue
			}
			elems := make([]types.Value, lengths[i])
			for j := 0; j < lengths[i]; j++ {
				elems[j] = types.String(flat[pos])
				pos++
			}
			out[i] = types.ListOf(elems)
		}
	default:
		return nil, fmt.Errorf("data: colbin: unknown column type %d", t)
	}
	return out, nil
}

func readStringChunk(br *bufio.Reader, n int) ([]string, error) {
	dictSize, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("data: colbin: %w", err)
	}
	dict := make([]string, dictSize)
	for i := range dict {
		s, err := readString(br)
		if err != nil {
			return nil, err
		}
		dict[i] = s
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		idx, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("data: colbin: %w", err)
		}
		if idx == 0 || int(idx) > len(dict) {
			out[i] = ""
		} else {
			out[i] = dict[idx-1]
		}
	}
	return out, nil
}

func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", fmt.Errorf("data: colbin: %w", err)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", fmt.Errorf("data: colbin: %w", err)
	}
	return string(buf), nil
}

func writeUvarint(bw *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	bw.Write(buf[:n])
}

func writeVarint(bw *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	bw.Write(buf[:n])
}
