package data

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"cleandb/internal/types"
)

func TestCSVRoundTrip(t *testing.T) {
	schema := types.NewSchema("id", "name", "score")
	rows := []types.Value{
		types.NewRecord(schema, []types.Value{types.Int(1), types.String("ann"), types.Float(2.5)}),
		types.NewRecord(schema, []types.Value{types.Int(2), types.String("bob"), types.Float(-1)}),
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("rows = %d", len(back))
	}
	if back[0].Field("id").Int() != 1 || back[0].Field("name").Str() != "ann" {
		t.Fatalf("row 0 = %s", back[0])
	}
	if back[1].Field("score").Float() != -1 {
		t.Fatalf("float column: %s", back[1])
	}
}

func TestCSVTypeInference(t *testing.T) {
	in := "a,b,c,d\n1,1.5,xyz,\n2,2,abc,\n"
	rows, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Field("a").Kind() != types.KindInt {
		t.Error("column a should infer int")
	}
	if rows[0].Field("b").Kind() != types.KindFloat {
		t.Error("column b should infer float")
	}
	if rows[0].Field("c").Kind() != types.KindString {
		t.Error("column c should infer string")
	}
	if !rows[0].Field("d").IsNull() {
		t.Error("empty cells become null")
	}
}

func TestCSVEmpty(t *testing.T) {
	rows, err := ReadCSV(strings.NewReader(""))
	if err != nil || rows != nil {
		t.Fatalf("empty csv: %v, %v", rows, err)
	}
	if err := WriteCSV(&bytes.Buffer{}, nil); err != nil {
		t.Fatal("writing no rows should succeed")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	schema := types.NewSchema("authors", "title", "year")
	rows := []types.Value{
		types.NewRecord(schema, []types.Value{
			types.List(types.String("x"), types.String("y")),
			types.String("paper"), types.Int(2001),
		}),
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("rows = %d", len(back))
	}
	if types.Key(back[0]) != types.Key(rows[0]) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", back[0], rows[0])
	}
}

func TestJSONNested(t *testing.T) {
	in := `{"a": {"b": [1, 2.5, "s", null, true]}}`
	rows, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	inner := rows[0].Field("a").Field("b").List()
	if len(inner) != 5 {
		t.Fatalf("nested list: %v", inner)
	}
	if inner[0].Kind() != types.KindInt || inner[1].Kind() != types.KindFloat {
		t.Fatal("number kinds")
	}
	if !inner[3].IsNull() || !inner[4].Bool() {
		t.Fatal("null/bool")
	}
}

func TestJSONBadInput(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{broken")); err == nil {
		t.Fatal("bad json should error")
	}
}

func TestJSONSkipsBlankLines(t *testing.T) {
	rows, err := ReadJSON(strings.NewReader("\n{\"a\":1}\n\n{\"a\":2}\n"))
	if err != nil || len(rows) != 2 {
		t.Fatalf("rows=%v err=%v", rows, err)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	schema := types.NewSchema("authors", "title", "year")
	rows := []types.Value{
		types.NewRecord(schema, []types.Value{
			types.List(types.String("ann"), types.String("bob")),
			types.String("a <nice> paper"), types.Int(1999),
		}),
		types.NewRecord(schema, []types.Value{
			types.List(types.String("solo")),
			types.String("another"), types.Int(2000),
		}),
	}
	var buf bytes.Buffer
	if err := WriteXML(&buf, rows, "dblp", "article"); err != nil {
		t.Fatal(err)
	}
	back, err := ReadXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("rows = %d", len(back))
	}
	if back[0].Field("title").Str() != "a <nice> paper" {
		t.Fatalf("escaping broken: %s", back[0].Field("title"))
	}
	if len(back[0].Field("authors").List()) != 2 {
		t.Fatalf("repeated elements should form a list: %s", back[0])
	}
	// Single author stays scalar (XML cannot distinguish); Flatten treats
	// both uniformly.
	if back[1].Field("authors").Kind() == types.KindList {
		t.Log("single author parsed as scalar, as expected")
	}
}

func TestXMLAttributes(t *testing.T) {
	in := `<root><rec key="k1"><v>3</v></rec></root>`
	rows, err := ReadXML(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Field("key").Str() != "k1" || rows[0].Field("v").Int() != 3 {
		t.Fatalf("attr parse: %s", rows[0])
	}
}

func TestFlatten(t *testing.T) {
	schema := types.NewSchema("authors", "title")
	rows := []types.Value{
		types.NewRecord(schema, []types.Value{
			types.List(types.String("a"), types.String("b"), types.String("c")),
			types.String("t1"),
		}),
		types.NewRecord(schema, []types.Value{
			types.List(types.String("x")),
			types.String("t2"),
		}),
	}
	flat := Flatten(rows)
	if len(flat) != 4 {
		t.Fatalf("flattened rows = %d, want 4", len(flat))
	}
	if flat[0].Field("authors").Kind() != types.KindString {
		t.Fatalf("flattened author should be scalar: %s", flat[0])
	}
}

func TestFlattenNoList(t *testing.T) {
	schema := types.NewSchema("a")
	rows := []types.Value{types.NewRecord(schema, []types.Value{types.Int(1)})}
	flat := Flatten(rows)
	if len(flat) != 1 || flat[0].Field("a").Int() != 1 {
		t.Fatalf("no-list flatten should be identity: %v", flat)
	}
}

func TestColbinRoundTrip(t *testing.T) {
	schema := types.NewSchema("authors", "n", "score", "title", "valid")
	rows := []types.Value{
		types.NewRecord(schema, []types.Value{
			types.List(types.String("a"), types.String("b")),
			types.Int(-7), types.Float(1.25), types.String("t1"), types.Bool(true),
		}),
		types.NewRecord(schema, []types.Value{
			types.List(),
			types.Int(12), types.Float(-0.5), types.String("t2"), types.Bool(false),
		}),
		types.NewRecord(schema, []types.Value{
			types.Null(), types.Null(), types.Null(), types.Null(), types.Null(),
		}),
	}
	var buf bytes.Buffer
	if err := WriteColbin(&buf, rows); err != nil {
		t.Fatal(err)
	}
	back, err := ReadColbin(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("rows = %d", len(back))
	}
	for i := range rows {
		if types.Key(back[i]) != types.Key(rows[i]) {
			t.Fatalf("row %d mismatch:\n%s\nvs\n%s", i, back[i], rows[i])
		}
	}
}

func TestColbinDictionaryCompression(t *testing.T) {
	// Highly repetitive strings: colbin should be much smaller than CSV.
	schema := types.NewSchema("j")
	rows := make([]types.Value, 2000)
	for i := range rows {
		rows[i] = types.NewRecord(schema, []types.Value{types.String("the same long journal name")})
	}
	var csvBuf, binBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, rows); err != nil {
		t.Fatal(err)
	}
	if err := WriteColbin(&binBuf, rows); err != nil {
		t.Fatal(err)
	}
	if binBuf.Len()*5 > csvBuf.Len() {
		t.Fatalf("colbin %dB should be ≤ 1/5 of CSV %dB on repetitive data", binBuf.Len(), csvBuf.Len())
	}
}

func TestColbinEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteColbin(&buf, nil); err != nil {
		t.Fatal(err)
	}
	rows, err := ReadColbin(&buf)
	if err != nil || rows != nil {
		t.Fatalf("empty colbin: %v, %v", rows, err)
	}
}

func TestColbinBadMagic(t *testing.T) {
	if _, err := ReadColbin(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic should error")
	}
	if _, err := ReadColbin(strings.NewReader("")); err == nil {
		t.Fatal("empty stream should error")
	}
}

func TestColbinRandomRoundTrip(t *testing.T) {
	// Property: random flat-with-one-list-column records survive the trip.
	rng := rand.New(rand.NewSource(111))
	schema := types.NewSchema("list", "num", "str")
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(50)
		rows := make([]types.Value, n)
		for i := range rows {
			var lv types.Value
			if rng.Intn(5) == 0 {
				lv = types.Null()
			} else {
				elems := make([]types.Value, rng.Intn(4))
				for j := range elems {
					elems[j] = types.String(randStr(rng))
				}
				lv = types.ListOf(elems)
			}
			var nv types.Value
			if rng.Intn(5) == 0 {
				nv = types.Null()
			} else {
				nv = types.Int(int64(rng.Intn(2000) - 1000))
			}
			rows[i] = types.NewRecord(schema, []types.Value{lv, nv, types.String(randStr(rng))})
		}
		var buf bytes.Buffer
		if err := WriteColbin(&buf, rows); err != nil {
			t.Fatal(err)
		}
		back, err := ReadColbin(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rows {
			if types.Key(back[i]) != types.Key(rows[i]) {
				t.Fatalf("trial %d row %d: %s vs %s", trial, i, back[i], rows[i])
			}
		}
	}
}

func randStr(rng *rand.Rand) string {
	n := rng.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

func TestColTypeString(t *testing.T) {
	if ColString.String() != "string" || ColStringList.String() != "list<string>" {
		t.Fatal("ColType names")
	}
}
