package dist

// Partition-custody scan suite: under -custody=partitioned each member parses
// only the source chunks placement assigns to it and gathers the rest through
// the barrier exchange, so the cluster's aggregate parse work stays ~constant
// while per-node work drops to ~1/members — without giving up bit-identity
// with the replicated mode or the single process, including across mid-scan
// worker death and client disconnect.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"cleandb"
)

// TestClusterReplicatedEquivalence pins the -custody=replicated fallback: the
// full query matrix still matches single-process execution, and every member
// loads every byte (owned == total in each member's catalog report).
func TestClusterReplicatedEquivalence(t *testing.T) {
	paths := writeEquivSources(t, 150)
	opts := []cleandb.Option{cleandb.WithWorkers(4)}
	c := newTestClusterCustody(t, 3, paths, CustodyReplicated, opts...)
	single := cleandb.Open(opts...)
	for name, p := range paths {
		if err := single.RegisterFile(name, p); err != nil {
			t.Fatal(err)
		}
	}
	var lastFrags []FragmentResult
	for _, q := range clusterQueries {
		lastFrags = checkClusterEquiv(t, c, single, "replicated/"+q.name, q.query, q.repairs)
	}
	var total int64
	for _, si := range c.db.SourceInfos() {
		if !si.Loaded {
			continue
		}
		total += si.Bytes
		if si.OwnedPartitions != si.Partitions || si.OwnedBytes != si.Bytes {
			t.Fatalf("replicated coordinator owns %d/%d partitions, %d/%d bytes of %s",
				si.OwnedPartitions, si.Partitions, si.OwnedBytes, si.Bytes, si.Name)
		}
	}
	if total == 0 {
		t.Fatal("no sources loaded")
	}
	// By the end of the matrix every worker has loaded the whole catalog too.
	for _, f := range lastFrags {
		if f.OwnedBytes != total {
			t.Fatalf("replicated worker %s owns %d bytes, coordinator catalog holds %d",
				f.Worker, f.OwnedBytes, total)
		}
	}
	if st := c.coord.Status(); st.Custody != CustodyReplicated || st.CustodyRescans != 0 {
		t.Fatalf("status custody=%q rescans=%d, want replicated/0", st.Custody, st.CustodyRescans)
	}
}

// TestPartitionedScanDividesBytes is the memory-scaling acceptance check: in
// partitioned mode the members' owned bytes partition the input — each member
// parses a strict subset, and the shares sum exactly to the catalog's total —
// while the query still answers identically to a single process.
func TestPartitionedScanDividesBytes(t *testing.T) {
	paths := writeEquivSources(t, 150)
	opts := []cleandb.Option{cleandb.WithWorkers(4)}
	c := newTestCluster(t, 2, paths, opts...)
	single := cleandb.Open(opts...)
	for name, p := range paths {
		if err := single.RegisterFile(name, p); err != nil {
			t.Fatal(err)
		}
	}
	q := clusterQueries[2] // equi_join: loads customer and lineitem cold
	frags := checkClusterEquiv(t, c, single, "divide/"+q.name, q.query, q.repairs)

	var totalBytes, coordBytes int64
	var totalParts, coordParts int64
	for _, si := range c.db.SourceInfos() {
		if !si.Loaded {
			continue
		}
		totalBytes += si.Bytes
		totalParts += int64(si.Partitions)
		coordBytes += si.OwnedBytes
		coordParts += int64(si.OwnedPartitions)
		if si.OwnedPartitions > si.Partitions || si.OwnedBytes > si.Bytes {
			t.Fatalf("%s: owned %d/%d partitions, %d/%d bytes — custody exceeds the source",
				si.Name, si.OwnedPartitions, si.Partitions, si.OwnedBytes, si.Bytes)
		}
	}
	if totalBytes == 0 || totalParts == 0 {
		t.Fatal("no sources loaded")
	}
	sumBytes, sumParts := coordBytes, coordParts
	for _, f := range frags {
		if f.Err != "" {
			t.Fatalf("fragment on %s: %s", f.Worker, f.Err)
		}
		if f.OwnedBytes <= 0 || f.OwnedBytes >= totalBytes {
			t.Fatalf("worker %s owns %d of %d bytes — not a strict share", f.Worker, f.OwnedBytes, totalBytes)
		}
		sumBytes += f.OwnedBytes
		sumParts += f.OwnedPartitions
	}
	if coordBytes <= 0 || coordBytes >= totalBytes {
		t.Fatalf("coordinator owns %d of %d bytes — not a strict share", coordBytes, totalBytes)
	}
	if sumBytes != totalBytes {
		t.Fatalf("member shares sum to %d bytes, catalog holds %d", sumBytes, totalBytes)
	}
	if sumParts != totalParts {
		t.Fatalf("member shares sum to %d partitions, catalog holds %d", sumParts, totalParts)
	}

	// The /healthz report mirrors the same custody numbers.
	st := c.coord.Status()
	if st.Custody != CustodyPartitioned {
		t.Fatalf("status custody = %q", st.Custody)
	}
	if st.CoordinatorLoadedBytes != coordBytes || st.CoordinatorOwnedPartitions != coordParts {
		t.Fatalf("status coordinator owns %d parts/%d bytes, catalog says %d/%d",
			st.CoordinatorOwnedPartitions, st.CoordinatorLoadedBytes, coordParts, coordBytes)
	}
	var stBytes int64
	for _, w := range st.Workers {
		stBytes += w.LoadedBytes
	}
	if stBytes+st.CoordinatorLoadedBytes != totalBytes {
		t.Fatalf("status shares sum to %d bytes, catalog holds %d", stBytes+st.CoordinatorLoadedBytes, totalBytes)
	}
}

// TestClusterWorkerKillDuringScan kills a worker at its first custody scan
// exchange — mid cold load, before any join ran. The survivors must adopt the
// victim's chunks (visible as custody rescans), finish the load, and answer
// bit-identically to a single process.
func TestClusterWorkerKillDuringScan(t *testing.T) {
	paths := writeEquivSources(t, 150)
	opts := []cleandb.Option{cleandb.WithWorkers(4)}
	c := newTestCluster(t, 3, paths, opts...)
	single := cleandb.Open(opts...)
	for name, p := range paths {
		if err := single.RegisterFile(name, p); err != nil {
			t.Fatal(err)
		}
	}
	victim := c.workers[2]
	var killed atomic.Bool
	hook := func(hdr exchangeHeader) {
		if _, scan := scanSource(hdr.Stage); scan && hdr.Self == victim.id &&
			killed.CompareAndSwap(false, true) {
			victim.srv.CloseClientConnections()
		}
	}
	c.onExchange.Store(&hook)

	q := clusterQueries[2] // equi_join: cold-loads customer and lineitem
	frags := checkClusterEquiv(t, c, single, "scankill/"+q.name, q.query, q.repairs)
	if !killed.Load() {
		t.Fatal("kill hook never fired; no custody scan exchange from the victim")
	}
	var sawVictim bool
	for _, f := range frags {
		if f.Worker == victim.id {
			sawVictim = true
			if f.Err == "" {
				t.Fatalf("victim %s reported success after its connections were severed", victim.id)
			}
		}
	}
	if !sawVictim {
		t.Fatalf("no fragment result for victim %s: %+v", victim.id, frags)
	}
	// Adoption is observable: the victim's chunks were re-scanned somewhere.
	rescans := c.coord.Status().CustodyRescans
	for _, f := range frags {
		rescans += f.CustodyRescans
	}
	if rescans == 0 {
		t.Fatal("victim died mid-scan but no member reports adopted chunks")
	}

	// The victim process itself is healthy — only its connections were
	// severed. Once the probe readmits it, the next query must ship it a
	// fragment that succeeds: the 410 its divided scan died with was session
	// state, not a property of the source, so it must not have been memoized
	// as a permanent load failure.
	c.onExchange.Store(nil)
	deadline := time.Now().Add(10 * time.Second)
	for {
		alive := 0
		for _, w := range c.coord.Status().Workers {
			if w.Alive {
				alive++
			}
		}
		if alive == len(c.workers) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("probe never readmitted the victim: %d/%d alive", alive, len(c.workers))
		}
		time.Sleep(25 * time.Millisecond)
	}
	frags = checkClusterEquiv(t, c, single, "scankill/recovered/"+q.name, q.query, q.repairs)
	recovered := false
	for _, f := range frags {
		if f.Err != "" {
			t.Fatalf("recovery round: fragment on %s errored: %s", f.Worker, f.Err)
		}
		if f.Worker == victim.id {
			recovered = true
		}
	}
	if !recovered {
		t.Fatalf("recovery round ran without the revived victim %s", victim.id)
	}
}

// TestClusterClientDisconnectDuringScan cancels the client at the first
// custody scan exchange of a cold source: the query aborts promptly on every
// member, no goroutines leak, and — because a cancelled load is not cached as
// a failure — the very next query over the same membership re-runs the scan
// and answers correctly.
func TestClusterClientDisconnectDuringScan(t *testing.T) {
	paths := writeEquivSources(t, 150)
	c := newTestCluster(t, 3, paths, cleandb.WithWorkers(4))
	single := cleandb.Open(cleandb.WithWorkers(4))
	for name, p := range paths {
		if err := single.RegisterFile(name, p); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up on a customer-only query: connection pools form, lineitem stays
	// cold so the measured query must scan it.
	if _, _, err := c.run(context.Background(), clusterQueries[0].query); err != nil {
		t.Fatal(err)
	}
	c.closeIdle()
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hook := func(hdr exchangeHeader) {
		if name, scan := scanSource(hdr.Stage); scan && name == "lineitem" {
			cancel()
		}
	}
	c.onExchange.Store(&hook)

	q := clusterQueries[6] // denial_repair: lineitem only, cold
	sess := c.coord.StartSession(ctx, q.query, nil)
	if sess == nil {
		t.Fatal("StartSession declined")
	}
	_, err := c.db.QueryContext(sess.Attach(ctx), q.query)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("coordinator query err = %v, want context.Canceled", err)
	}
	for _, f := range sess.Finish() {
		if f.Err == "" {
			t.Fatalf("fragment on %s completed despite client disconnect mid-scan", f.Worker)
		}
	}
	c.onExchange.Store(nil)
	c.settle(before)

	// The cancelled fragment RPCs read as worker failures and evict; wait for
	// the probe to revive the (perfectly healthy) workers.
	deadline := time.Now().Add(10 * time.Second)
	for {
		alive := 0
		for _, w := range c.coord.Status().Workers {
			if w.Alive {
				alive++
			}
		}
		if alive == len(c.workers) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("probe never revived the workers: %d/%d alive", alive, len(c.workers))
		}
		time.Sleep(25 * time.Millisecond)
	}

	// The aborted scan poisoned nothing: the same query now completes and
	// matches single-process execution.
	checkClusterEquiv(t, c, single, "rescan/"+q.name, q.query, q.repairs)
}

// TestClusterMembershipShrinkRedivides kills a worker *between* queries: the
// probe drops it from the membership, so the next query runs under a new
// custody stamp and every surviving member must go cold and re-divide the
// scans in lockstep. Two historical bugs pin this scenario: the coordinator
// serving the re-query from a cached plan that still pinned the unloaded
// datasets (leaving the freshly-cold worker parked alone at the scan barrier
// until the sweep evicted it), and that evicted worker then memoizing the
// eviction as a permanent load failure, poisoning every later session.
func TestClusterMembershipShrinkRedivides(t *testing.T) {
	paths := writeEquivSources(t, 150)
	opts := []cleandb.Option{cleandb.WithWorkers(4)}
	c := newTestCluster(t, 2, paths, opts...)
	single := cleandb.Open(opts...)
	for name, p := range paths {
		if err := single.RegisterFile(name, p); err != nil {
			t.Fatal(err)
		}
	}
	q := clusterQueries[2] // equi_join: cold-loads customer and lineitem
	checkClusterEquiv(t, c, single, "shrink/warm/"+q.name, q.query, q.repairs)

	// Kill the second worker outright and wait for the probe to notice.
	victim := c.workers[1]
	victim.srv.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		dead := false
		for _, w := range c.coord.Status().Workers {
			if w.ID == victim.id && !w.Alive {
				dead = true
			}
		}
		if dead {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("probe never marked the killed worker dead")
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Two rounds over the shrunk membership: the first re-divides everything
	// cold under the new stamp, and nothing from it — including any barrier
	// hiccup — may leak into the second.
	for round := 1; round <= 2; round++ {
		label := fmt.Sprintf("shrink/round%d/%s", round, q.name)
		frags := checkClusterEquiv(t, c, single, label, q.query, q.repairs)
		var workerBytes int64
		for _, f := range frags {
			if f.Worker == victim.id {
				t.Fatalf("round %d: dead worker %s got a fragment", round, victim.id)
			}
			if f.Err != "" {
				t.Fatalf("round %d: fragment on %s errored: %s", round, f.Worker, f.Err)
			}
			workerBytes += f.OwnedBytes
		}
		var totalBytes, coordBytes int64
		for _, si := range c.db.SourceInfos() {
			if si.Loaded {
				totalBytes += si.Bytes
				coordBytes += si.OwnedBytes
			}
		}
		if totalBytes == 0 {
			t.Fatalf("round %d: coordinator has no loaded sources", round)
		}
		if coordBytes <= 0 || workerBytes <= 0 {
			t.Fatalf("round %d: custody not strictly divided: coordinator %d bytes, surviving worker %d",
				round, coordBytes, workerBytes)
		}
		if coordBytes+workerBytes != totalBytes {
			t.Fatalf("round %d: survivor shares sum to %d bytes, catalog holds %d",
				round, coordBytes+workerBytes, totalBytes)
		}
	}
}

// TestCustodyStabilityUnderChurn pins the rendezvous property custody scans
// lean on: growing the membership 1 → 5 moves only the partitions the new
// member takes over, shrinking moves only the leaver's — every other chunk
// stays put, so churn never reshuffles data that didn't have to move.
func TestCustodyStabilityUnderChurn(t *testing.T) {
	const keys = 240
	members := []string{coordID}
	ownerOf := func(ms []string) []string {
		out := make([]string, keys)
		for i := range out {
			out[i] = PartitionOwner("lineitem", i, ms)
		}
		return out
	}
	for n := 1; n < 5; n++ {
		added := fmt.Sprintf("w%04d", n)
		grown := append(append([]string{}, members...), added)
		before, after := ownerOf(members), ownerOf(grown)
		moved := 0
		for i := range before {
			if after[i] != before[i] {
				moved++
				if after[i] != added {
					t.Fatalf("grow to %d: partition %d moved %s -> %s, not to the new member %s",
						len(grown), i, before[i], after[i], added)
				}
			}
		}
		// The newcomer takes ~1/(n+1) of the keys: movement is bounded by a
		// generous factor of fair share, and is never zero.
		fair := keys / len(grown)
		if moved == 0 || moved > 2*fair {
			t.Fatalf("grow to %d members moved %d partitions, fair share is %d", len(grown), moved, fair)
		}
		// Shrinking back moves exactly the newcomer's keys home.
		for i, o := range ownerOf(members) {
			if after[i] == added && o == added {
				t.Fatalf("shrink: partition %d still owned by removed member", i)
			}
			if after[i] != added && o != after[i] {
				t.Fatalf("shrink: partition %d moved %s -> %s though its owner survived", i, after[i], o)
			}
		}
		members = grown
	}
}

// BenchmarkPartitionedScan prices the cold scan path: the same join query
// against 1 vs 3 workers, every iteration on a fresh cluster so the load is
// never warm. loaded-bytes/node-op is the custody win: the bytes one member
// parses, which partitioned custody divides by the member count while
// scan-bytes/op (the cluster-wide total) stays flat.
func BenchmarkPartitionedScan(b *testing.B) {
	paths := writeEquivSources(b, 1200)
	const q = `SELECT c.name AS n, o.orderkey AS ok FROM customer c, lineitem o WHERE c.custkey = o.suppkey and o.discount > 0.05`
	for _, nw := range []int{1, 3} {
		b.Run(fmt.Sprintf("workers=%d", nw), func(b *testing.B) {
			var nodeBytes, clusterBytes int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c := newTestCluster(b, nw, paths, cleandb.WithWorkers(8))
				b.StartTimer()
				_, frags, err := c.run(context.Background(), q)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				var owned int64
				for _, si := range c.db.SourceInfos() {
					if si.Loaded {
						owned += si.OwnedBytes
					}
				}
				for _, f := range frags {
					if f.Err != "" {
						b.Fatalf("fragment on %s: %s", f.Worker, f.Err)
					}
					owned += f.OwnedBytes
				}
				clusterBytes += owned
				nodeBytes += owned / int64(nw+1)
				c.close()
				b.StartTimer()
			}
			b.ReportMetric(float64(nodeBytes)/float64(b.N), "loaded-bytes/node-op")
			b.ReportMetric(float64(clusterBytes)/float64(b.N), "scan-bytes/op")
		})
	}
}
