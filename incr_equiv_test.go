package cleandb

// Incremental-cleaning equivalence property tests: appending rows to a
// source and re-running a cleaning statement through the materialized view
// cache must produce results bit-identical — rows, task rows, repair
// summaries — to a cold full re-clean over the complete data, while the
// delta execution's comparison count stays strictly below the cold run's
// for pair-enumerating (DC) work. The suite fuzzes over worker counts, the
// pinned strategy matrix and the source encodings (in-memory rows, CSV
// files via tail refresh, colbin via programmatic appends).

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"cleandb/internal/data"
	"cleandb/internal/datagen"
	"cleandb/internal/physical"
)

// incrQueries are the delta-decomposable statements: single-task DENIAL
// (detect-only and REPAIR) and single-task DEDUP with append-stable
// blocking. Each queries exactly one source.
var incrQueries = []struct {
	name    string
	query   string
	source  string
	repairs string
	// dc marks statements whose cold run charges per-pair comparisons, so
	// the delta run's count must be strictly below it.
	dc bool
}{
	{
		name:   "dedup_attribute",
		query:  `SELECT * FROM customer c DEDUP(attribute, LD, 0.8, c.address, c.name, c.phone)`,
		source: "customer",
	},
	{
		name:   "dedup_tf",
		query:  `SELECT * FROM customer c DEDUP(token_filtering, LD, 0.7, c.name)`,
		source: "customer",
	},
	{
		name: "denial_detect",
		query: `SELECT * FROM lineitem t1
DENIAL(t2, t1.extendedprice < t2.extendedprice and t1.discount > t2.discount and t1.extendedprice < 9050)`,
		source: "lineitem",
		dc:     true,
	},
	{
		name: "denial_repair",
		query: `SELECT * FROM lineitem t1
DENIAL(t2, t1.extendedprice < t2.extendedprice and t1.discount > t2.discount and t1.extendedprice < 9050)
REPAIR(t1.discount)`,
		source:  "lineitem",
		repairs: "lineitem",
		dc:      true,
	},
}

// incrData returns the full relations plus the ~10% tail that plays the
// appended delta.
func incrData() (custBase, custDelta, lineBase, lineDelta []Value) {
	customer := datagen.GenCustomer(datagen.CustomerConfig{Rows: 60, Seed: 7}).Rows
	lineitem := datagen.GenLineitem(datagen.LineitemConfig{Rows: 150, NoiseDiscount: true, Seed: 11})
	cb := len(customer) - len(customer)/10
	lb := len(lineitem) - len(lineitem)/10
	return customer[:cb], customer[cb:], lineitem[:lb], lineitem[lb:]
}

// checkIncrEquiv compares a delta-served result against a cold full
// execution: identical rows, task rows and repaired rows.
func checkIncrEquiv(t *testing.T, label string, got, want *Result, repairs string) {
	t.Helper()
	diffRows(t, label+"/rows", canonRows(got.Rows()), canonRows(want.Rows()))
	for _, task := range want.TaskNames() {
		wantRows, _ := want.TaskRowsOK(task)
		gotRows, ok := got.TaskRowsOK(task)
		if !ok {
			t.Fatalf("%s: task %q missing from incremental result", label, task)
		}
		diffRows(t, label+"/task:"+task, canonRows(gotRows), canonRows(wantRows))
	}
	if repairs != "" {
		diffRows(t, label+"/repaired",
			canonRows(got.RepairedRows(repairs)), canonRows(want.RepairedRows(repairs)))
	}
}

// TestIncrementalAppendEquivalence is the core property over in-memory
// sources: base query (cold, view stored) → exact hit → append → delta hit
// bit-identical to a cold DB holding all rows, with DC comparisons strictly
// below the cold run's.
func TestIncrementalAppendEquivalence(t *testing.T) {
	strategies := []struct {
		name  string
		group physical.GroupStrategy
		theta physical.ThetaStrategy
	}{
		{"aggregate_mbucket", physical.GroupAggregate, physical.ThetaMBucket},
		{"hash_cartesian", physical.GroupHash, physical.ThetaCartesian},
		{"sort_mbucket", physical.GroupSort, physical.ThetaMBucket},
	}
	custBase, custDelta, lineBase, lineDelta := incrData()
	for _, workers := range []int{1, 3, 8} {
		for _, st := range strategies {
			opts := []Option{WithWorkers(workers),
				WithGroupStrategy(st.group), WithThetaStrategy(st.theta)}
			inc := Open(append([]Option{WithViewCache(8)}, opts...)...)
			inc.RegisterRows("customer", custBase)
			inc.RegisterRows("lineitem", lineBase)
			cold := Open(opts...)
			cold.RegisterRows("customer", append(append([]Value{}, custBase...), custDelta...))
			cold.RegisterRows("lineitem", append(append([]Value{}, lineBase...), lineDelta...))

			for _, q := range incrQueries {
				label := fmt.Sprintf("w%d/%s/%s", workers, st.name, q.name)
				first, err := inc.Query(q.query)
				if err != nil {
					t.Fatalf("%s: base query: %v", label, err)
				}
				if first.ViewHit() != "" {
					t.Fatalf("%s: first execution served from view %q", label, first.ViewHit())
				}
				again, err := inc.Query(q.query)
				if err != nil {
					t.Fatalf("%s: repeat query: %v", label, err)
				}
				if again.ViewHit() != "exact" {
					t.Fatalf("%s: repeat execution not an exact view hit (got %q)", label, again.ViewHit())
				}
				diffRows(t, label+"/exact", canonRows(again.Rows()), canonRows(first.Rows()))
			}

			if err := inc.Append("customer", custDelta); err != nil {
				t.Fatalf("append customer: %v", err)
			}
			if err := inc.Append("lineitem", lineDelta); err != nil {
				t.Fatalf("append lineitem: %v", err)
			}

			for _, q := range incrQueries {
				label := fmt.Sprintf("w%d/%s/%s", workers, st.name, q.name)
				got, err := inc.Query(q.query)
				if err != nil {
					t.Fatalf("%s: delta query: %v", label, err)
				}
				if got.ViewHit() != "delta" {
					t.Fatalf("%s: appended re-execution not a delta view hit (got %q)", label, got.ViewHit())
				}
				want, err := cold.Query(q.query)
				if err != nil {
					t.Fatalf("%s: cold query: %v", label, err)
				}
				checkIncrEquiv(t, label, got, want, q.repairs)
				if q.dc {
					// The delta pass charges its candidate pairs to Comparisons;
					// the cold join splits its pair work between Comparisons and
					// stage ticks. Total pair-work must shrink to the delta.
					gm, wm := got.Metrics(), want.Metrics()
					gc := gm.Comparisons + gm.SimTicks
					wc := wm.Comparisons + wm.SimTicks
					if gm.Comparisons == 0 {
						t.Fatalf("%s: delta pass charged no comparisons", label)
					}
					if gc >= wc {
						t.Fatalf("%s: delta pair-work %d not below cold %d", label, gc, wc)
					}
				}
			}

			vs := inc.ViewCacheStats()
			if vs.Hits == 0 || vs.DeltaHits == 0 {
				t.Fatalf("view cache never engaged: %+v", vs)
			}
		}
	}
}

// writeCSVFile renders rows as CSV (header + cells) into path.
func writeCSVFile(t *testing.T, path string, rows []Value) {
	t.Helper()
	var buf bytes.Buffer
	if err := data.WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// appendCSVFile renders rows as headerless CSV lines appended to path.
func appendCSVFile(t *testing.T, path string, rows []Value) {
	t.Helper()
	var buf bytes.Buffer
	if err := data.WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	body := buf.Bytes()
	if i := bytes.IndexByte(body, '\n'); i >= 0 {
		body = body[i+1:]
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(body); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalCSVRefreshEquivalence drives the tail-a-file path: append
// bytes past the high-water mark, Refresh, and the delta-served result must
// match a cold DB scanning the grown file in full.
func TestIncrementalCSVRefreshEquivalence(t *testing.T) {
	custBase, custDelta, _, _ := incrData()
	dir := t.TempDir()
	path := filepath.Join(dir, "customer.csv")
	writeCSVFile(t, path, custBase)

	inc := Open(WithViewCache(4))
	inc.RegisterCSVFile("customer", path)
	query := `SELECT * FROM customer c DEDUP(token_filtering, LD, 0.7, c.name)`
	if _, err := inc.Query(query); err != nil {
		t.Fatalf("base query: %v", err)
	}

	appendCSVFile(t, path, custDelta)
	added, err := inc.Refresh(context.Background(), "customer")
	if err != nil {
		t.Fatalf("refresh: %v", err)
	}
	if added != len(custDelta) {
		t.Fatalf("refresh added %d rows, want %d", added, len(custDelta))
	}

	got, err := inc.Query(query)
	if err != nil {
		t.Fatalf("delta query: %v", err)
	}
	if got.ViewHit() != "delta" {
		t.Fatalf("post-refresh execution not a delta view hit (got %q)", got.ViewHit())
	}

	cold := Open()
	cold.RegisterCSVFile("customer", path)
	want, err := cold.Query(query)
	if err != nil {
		t.Fatalf("cold query: %v", err)
	}
	checkIncrEquiv(t, "csv_refresh", got, want, "")

	info, err := inc.SourceInfo("customer")
	if err != nil {
		t.Fatal(err)
	}
	if info.DeltaEpoch != 1 || info.AppendedRows != int64(len(custDelta)) {
		t.Fatalf("source info epochs wrong: %+v", info)
	}
	if int(info.Rows) != len(custBase)+len(custDelta) {
		t.Fatalf("source info rows %d, want %d", info.Rows, len(custBase)+len(custDelta))
	}
}

// TestIncrementalColbinAppendEquivalence drives programmatic appends against
// a colbin-backed source: both the incremental DB (view cache on) and the
// cold DB (off) hold base colbin + appended rows; the view-served result
// must match the cold full execution.
func TestIncrementalColbinAppendEquivalence(t *testing.T) {
	custBase, custDelta, _, _ := incrData()

	// Encode the base rows as colbin via the public export path.
	enc := Open()
	enc.RegisterRows("customer", custBase)
	var buf bytes.Buffer
	if _, err := enc.ExecuteTo(context.Background(), `SELECT * FROM customer c`, NewColbinSink(&buf)); err != nil {
		t.Fatalf("encode colbin: %v", err)
	}

	build := func(opts ...Option) *DB {
		db := Open(opts...)
		if err := db.RegisterColbin("customer", bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("register colbin: %v", err)
		}
		if err := db.Append("customer", custDelta); err != nil {
			t.Fatalf("append: %v", err)
		}
		return db
	}
	query := `SELECT * FROM customer c DEDUP(attribute, LD, 0.8, c.address, c.name, c.phone)`

	inc := build(WithViewCache(4))
	// Warm the view over the base, then append and go delta.
	inc2 := Open(WithViewCache(4))
	if err := inc2.RegisterColbin("customer", bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if _, err := inc2.Query(query); err != nil {
		t.Fatalf("base query: %v", err)
	}
	if err := inc2.Append("customer", custDelta); err != nil {
		t.Fatal(err)
	}
	got, err := inc2.Query(query)
	if err != nil {
		t.Fatalf("delta query: %v", err)
	}
	if got.ViewHit() != "delta" {
		t.Fatalf("appended re-execution not a delta view hit (got %q)", got.ViewHit())
	}

	want, err := inc.Query(query) // full execution: nothing cached for this state
	if err != nil {
		t.Fatalf("cold query: %v", err)
	}
	checkIncrEquiv(t, "colbin_append", got, want, "")
}

// TestConcurrentAppendWhileQuerying races appends against queries on a
// shared view-cached DB (-race is the real assertion) and checks that
// goroutines settle afterwards. Every query must succeed and report a row
// count consistent with some append prefix.
func TestConcurrentAppendWhileQuerying(t *testing.T) {
	before := runtime.NumGoroutine()
	customer := datagen.GenCustomer(datagen.CustomerConfig{Rows: 60, Seed: 7}).Rows
	base, delta := customer[:40], customer[40:]

	db := Open(WithWorkers(4), WithViewCache(8))
	db.RegisterRows("customer", base)
	query := `SELECT * FROM customer c DEDUP(token_filtering, LD, 0.7, c.name)`
	if _, err := db.Query(query); err != nil {
		t.Fatalf("warmup: %v", err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, row := range delta {
			if err := db.Append("customer", []Value{row}); err != nil {
				errs <- err
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := db.Query(query); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent append/query: %v", err)
	}

	// The settled state must equal a cold run over all rows.
	got, err := db.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	cold := Open(WithWorkers(4))
	cold.RegisterRows("customer", customer)
	want, err := cold.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	diffRows(t, "settled", canonRows(got.Rows()), canonRows(want.Rows()))

	for i := 0; i < 50 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, now)
	}
}

// TestSourceInfoRecomputedAfterReload is the regression test for the stale
// row/byte hints: after a reset re-scan replaces the base partitions, the
// reported rows and bytes must describe the current data, not the
// registration-time hints.
func TestSourceInfoRecomputedAfterReload(t *testing.T) {
	custBase, custDelta, _, _ := incrData()
	dir := t.TempDir()
	path := filepath.Join(dir, "customer.csv")
	writeCSVFile(t, path, custBase)

	db := Open()
	db.RegisterCSVFile("customer", path)
	if err := db.Load(context.Background(), "customer"); err != nil {
		t.Fatal(err)
	}
	info, err := db.SourceInfo("customer")
	if err != nil {
		t.Fatal(err)
	}
	st, _ := os.Stat(path)
	if int(info.Rows) != len(custBase) || info.Bytes != st.Size() {
		t.Fatalf("loaded info rows=%d bytes=%d, want rows=%d bytes=%d",
			info.Rows, info.Bytes, len(custBase), st.Size())
	}

	// Rewrite the file wholesale (shrink): Refresh must reset to a full
	// re-scan and the info must track the new content exactly.
	all := append(append([]Value{}, custBase[:10]...), custDelta...)
	writeCSVFile(t, path, all)
	if _, err := db.Refresh(context.Background(), "customer"); err != nil {
		t.Fatal(err)
	}
	info, err = db.SourceInfo("customer")
	if err != nil {
		t.Fatal(err)
	}
	st, _ = os.Stat(path)
	if int(info.Rows) != len(all) || info.Bytes != st.Size() {
		t.Fatalf("reloaded info rows=%d bytes=%d, want rows=%d bytes=%d",
			info.Rows, info.Bytes, len(all), st.Size())
	}
	if info.BaseGen == 0 {
		t.Fatalf("reset re-scan did not move the base generation: %+v", info)
	}
	if info.Appends != 0 || info.AppendedRows != 0 {
		t.Fatalf("reset re-scan kept append counters: %+v", info)
	}
}
