package source

import (
	"bytes"
	"context"

	"cleandb/internal/data"
	"cleandb/internal/types"
)

// XML is a two-level XML source (DBLP-style; repeated child elements become
// list fields). XML nests, so there are no byte-level split points that are
// safe without parsing: Scan parses sequentially and partitions the result
// without copying. Registering an XML source still wins from laziness —
// nothing parses until the first query needs it.
type XML struct {
	src bytesAt
}

// NewXMLFile returns a lazy XML source over a file path.
func NewXMLFile(path string) *XML { return &XML{src: bytesAt{path: path}} }

// XMLBytes returns an XML source over an in-memory buffer.
func XMLBytes(buf []byte) *XML { return &XML{src: bytesAt{buf: buf}} }

// Format implements Source.
func (s *XML) Format() string { return "xml" }

// Schema implements Source; element names are unknowable without parsing.
func (s *XML) Schema() ([]string, error) { return nil, nil }

// Stats implements Source.
func (s *XML) Stats() (Stats, error) {
	return Stats{Rows: -1, Bytes: s.src.sizeBytes()}, nil
}

// Scan implements Source with a sequential parse followed by a copy-free
// partitioning of the parsed rows.
func (s *XML) Scan(ctx context.Context, parts int) ([][]types.Value, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	buf, err := s.src.bytes()
	if err != nil {
		return nil, err
	}
	rows, err := data.ReadXML(bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return partition(rows, parts), nil
}
