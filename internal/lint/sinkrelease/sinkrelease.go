// Package sinkrelease enforces the sink abort contract of the export layer:
// a sink.Sink that was successfully opened must reach Close (or
// CloseContext, or the Aborter hook) on every control-flow path out of the
// function that opened it — otherwise a failed or early-returning export
// leaks file descriptors and leaves partial files looking finished.
//
// The analysis is a per-function abstract interpretation over the statement
// tree: branches fork the open-sink state and merge conservatively (a sink
// is released only when every surviving path released it), loops merge with
// their zero-iteration skip, defers of a release apply to every exit, and
// handing the sink to another function (as an argument, a return value, a
// channel send or a composite) transfers ownership and ends tracking. The
// error-return branch of the Open call itself is exempt: the driver contract
// says a failed Open released its own resources.
package sinkrelease

import (
	"go/ast"
	"go/token"
	"go/types"

	"cleandb/internal/lint/analysis"
	"cleandb/internal/lint/lintutil"
)

// Analyzer flags opened sinks that can leak on some path.
var Analyzer = &analysis.Analyzer{
	Name: "sinkrelease",
	Doc: "every opened sink.Sink must reach Close or Abort on all paths\n\n" +
		"After s.Open(schema) succeeds, every path to a return must call " +
		"s.Close / s.CloseContext / s.Abort or transfer ownership of s " +
		"(pass it to another function, return it, store it away). Paths " +
		"under the Open error check are exempt — a failed Open releases " +
		"its own resources per the Sink contract.",
	Run: run,
}

const sinkPkg = "cleandb/internal/sink"

var releaseMethods = map[string]bool{
	"Close":        true,
	"CloseContext": true,
	"Abort":        true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	iface := sinkInterface(pass.Pkg)
	if iface == nil {
		return nil, nil // package cannot name a sink; nothing to check
	}
	for _, file := range pass.Files {
		lintutil.FuncScopes(file, func(name string, body *ast.BlockStmt, decl ast.Node) {
			checkScope(pass, iface, body)
		})
	}
	return nil, nil
}

// sinkInterface finds the sink.Sink interface type through the package's
// import graph (direct or transitive), or nil when unreachable.
func sinkInterface(pkg *types.Package) *types.Interface {
	seen := map[*types.Package]bool{}
	var find func(p *types.Package) *types.Interface
	find = func(p *types.Package) *types.Interface {
		if seen[p] {
			return nil
		}
		seen[p] = true
		if lintutil.PkgIs(p, sinkPkg) {
			if obj, ok := p.Scope().Lookup("Sink").(*types.TypeName); ok {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					return iface
				}
			}
			return nil
		}
		for _, imp := range p.Imports() {
			if iface := find(imp); iface != nil {
				return iface
			}
		}
		return nil
	}
	return find(pkg)
}

// openInfo tracks one opened sink within a scope.
type openInfo struct {
	openPos token.Pos
	errVar  types.Object // error result of the Open call, if bound
}

// state is the abstract open-sink set along one path.
type state struct {
	open map[types.Object]openInfo
}

func (s *state) clone() *state {
	c := &state{open: make(map[types.Object]openInfo, len(s.open))}
	for k, v := range s.open {
		c.open[k] = v
	}
	return c
}

// checker runs the abstract interpretation of one function scope.
type checker struct {
	pass     *analysis.Pass
	iface    *types.Interface
	deferred map[types.Object]bool         // sinks released by a defer
	alias    map[types.Object]types.Object // type-assert views of a sink var
	reported map[token.Pos]bool
}

// canonical resolves an alias chain (a, ok := s.(Aborter) makes a a view of
// s) back to the variable the Open was tracked under.
func (c *checker) canonical(obj types.Object) types.Object {
	for i := 0; i < len(c.alias); i++ {
		next, ok := c.alias[obj]
		if !ok {
			return obj
		}
		obj = next
	}
	return obj
}

func checkScope(pass *analysis.Pass, iface *types.Interface, body *ast.BlockStmt) {
	if hasGoto(body) {
		return // goto breaks the structural walk; rare enough to skip
	}
	c := &checker{
		pass:     pass,
		iface:    iface,
		deferred: map[types.Object]bool{},
		alias:    map[types.Object]types.Object{},
		reported: map[token.Pos]bool{},
	}
	// Pre-scan: type-assert aliases (a, ok := s.(Aborter)) are purely
	// syntactic, so resolve them up front — releasing the Aborter view
	// releases the sink, including from a defer.
	lintutil.InspectScope(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
			return true
		}
		ta, ok := ast.Unparen(as.Rhs[0]).(*ast.TypeAssertExpr)
		if !ok || ta.Type == nil {
			return true
		}
		src, ok := ast.Unparen(ta.X).(*ast.Ident)
		if !ok {
			return true
		}
		dst, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		srcObj, dstObj := objectOf(pass.TypesInfo, src), objectOf(pass.TypesInfo, dst)
		if srcObj != nil && dstObj != nil && srcObj != dstObj {
			c.alias[dstObj] = srcObj
		}
		return true
	})
	// Pre-scan: defers (registered on any path) that release a sink var make
	// that var safe on every exit; conservative but matches real usage.
	lintutil.InspectScope(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if obj := c.releasedVar(d.Call); obj != nil {
			c.deferred[obj] = true
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if obj := c.releasedVar(call); obj != nil {
						c.deferred[obj] = true
					}
				}
				return true
			})
		}
		return true
	})
	st := &state{open: map[types.Object]openInfo{}}
	terminated := c.block(body.List, st)
	if !terminated {
		c.leakCheck(st, body.End())
	}
}

func hasGoto(body *ast.BlockStmt) bool {
	found := false
	lintutil.InspectScope(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.GOTO {
			found = true
		}
		return !found
	})
	return found
}

// leakCheck reports every sink still open when a path exits the function.
func (c *checker) leakCheck(st *state, at token.Pos) {
	for obj, info := range st.open {
		if c.deferred[obj] {
			continue
		}
		if c.reported[info.openPos] {
			continue
		}
		c.reported[info.openPos] = true
		c.pass.Reportf(info.openPos,
			"sink %q opened here does not reach Close/CloseContext/Abort on every path; a failed export leaks the sink and may leave a complete-looking file",
			obj.Name())
	}
}

// block interprets a statement list; reports leaks at returns. Returns true
// when every path through the list terminates (return/panic).
func (c *checker) block(stmts []ast.Stmt, st *state) bool {
	for _, s := range stmts {
		if c.stmt(s, st) {
			return true
		}
	}
	return false
}

// stmt interprets one statement, mutating st; true means the path terminated.
func (c *checker) stmt(s ast.Stmt, st *state) bool {
	switch x := s.(type) {
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			c.scanEffects(r, st)
			c.scanTransfers(r, st)
		}
		c.leakCheck(st, x.Pos())
		return true
	case *ast.BlockStmt:
		return c.block(x.List, st)
	case *ast.IfStmt:
		if x.Init != nil {
			c.stmt(x.Init, st)
		}
		c.scanEffects(x.Cond, st)
		thenSt, elseSt := st.clone(), st.clone()
		// Open's error branch: the sink is not open where err != nil.
		if errObj, neq := errCheck(c.pass.TypesInfo, x.Cond); errObj != nil {
			failSt := thenSt
			if !neq {
				failSt = elseSt
			}
			for obj, info := range failSt.open {
				if info.errVar == errObj {
					delete(failSt.open, obj)
				}
			}
		}
		thenTerm := c.block(x.Body.List, thenSt)
		elseTerm := false
		if x.Else != nil {
			elseTerm = c.stmt(x.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*st = *elseSt
		case elseTerm:
			*st = *thenSt
		default:
			*st = *merge(thenSt, elseSt)
		}
		return false
	case *ast.ForStmt:
		if x.Init != nil {
			c.stmt(x.Init, st)
		}
		if x.Cond != nil {
			c.scanEffects(x.Cond, st)
		}
		bodySt := st.clone()
		c.block(x.Body.List, bodySt)
		if x.Post != nil {
			c.stmt(x.Post, bodySt)
		}
		*st = *merge(st, bodySt)
		return false
	case *ast.RangeStmt:
		c.scanEffects(x.X, st)
		bodySt := st.clone()
		c.block(x.Body.List, bodySt)
		*st = *merge(st, bodySt)
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.branchy(s, st)
	case *ast.DeferStmt:
		// Defers were pre-scanned; still record transfers of other sinks.
		for _, a := range x.Call.Args {
			c.scanTransfers(a, st)
		}
		return false
	case *ast.GoStmt:
		c.scanEffects(x.Call, st)
		return false
	case *ast.LabeledStmt:
		return c.stmt(x.Stmt, st)
	case *ast.ExprStmt:
		c.scanEffects(x.X, st)
		if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
			if isPanic(c.pass.TypesInfo, call) {
				return true
			}
			c.openCall(call, nil, st)
		}
		return false
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			c.scanEffects(r, st)
		}
		for _, r := range x.Rhs {
			if _, isCall := ast.Unparen(r).(*ast.CallExpr); !isCall {
				// Aliasing a tracked sink (x := s) transfers it; a call RHS
				// already had its arguments scanned by scanEffects.
				c.scanTransfers(r, st)
			}
		}
		if len(x.Rhs) == 1 {
			if call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr); ok {
				var errObj types.Object
				if len(x.Lhs) > 0 {
					if id, ok := x.Lhs[len(x.Lhs)-1].(*ast.Ident); ok {
						errObj = objectOf(c.pass.TypesInfo, id)
					}
				}
				c.openCall(call, errObj, st)
			}
		}
		return false
	case *ast.DeclStmt:
		ast.Inspect(x, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				c.scanEffects(e, st)
			}
			return true
		})
		return false
	case *ast.SendStmt:
		c.scanEffects(x.Chan, st)
		c.scanEffects(x.Value, st)
		c.scanTransfers(x.Value, st)
		return false
	case *ast.BranchStmt:
		// break/continue: path leaves this block without returning; treat as
		// non-terminating and let the loop merge handle it (conservative).
		return false
	case *ast.IncDecStmt, *ast.EmptyStmt:
		return false
	}
	return false
}

// branchy merges the case bodies of switch/type-switch/select statements.
func (c *checker) branchy(s ast.Stmt, st *state) bool {
	var bodies []*ast.BlockStmt
	var hasDefault bool
	collect := func(list []ast.Stmt) {
		for _, cs := range list {
			switch cc := cs.(type) {
			case *ast.CaseClause:
				if cc.List == nil {
					hasDefault = true
				}
				bodies = append(bodies, &ast.BlockStmt{List: cc.Body})
			case *ast.CommClause:
				if cc.Comm == nil {
					hasDefault = true
				}
				bodies = append(bodies, &ast.BlockStmt{List: cc.Body})
			}
		}
	}
	switch x := s.(type) {
	case *ast.SwitchStmt:
		if x.Init != nil {
			c.stmt(x.Init, st)
		}
		if x.Tag != nil {
			c.scanEffects(x.Tag, st)
		}
		collect(x.Body.List)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			c.stmt(x.Init, st)
		}
		collect(x.Body.List)
	case *ast.SelectStmt:
		collect(x.Body.List)
	}
	if len(bodies) == 0 {
		return false
	}
	var states []*state
	allTerm := true
	for _, b := range bodies {
		bs := st.clone()
		if !c.block(b.List, bs) {
			states = append(states, bs)
			allTerm = false
		}
	}
	if !hasDefault {
		states = append(states, st.clone()) // fall-through path
		allTerm = false
	}
	if allTerm {
		return true
	}
	m := states[0]
	for _, s2 := range states[1:] {
		m = merge(m, s2)
	}
	*st = *m
	return false
}

// merge unions the open sets: a sink is open after the merge if it is open
// on any incoming path (must-release semantics).
func merge(a, b *state) *state {
	m := a.clone()
	for k, v := range b.open {
		if _, ok := m.open[k]; !ok {
			m.open[k] = v
		}
	}
	return m
}

// openCall records s.Open(...) on a sink-typed identifier receiver.
func (c *checker) openCall(call *ast.CallExpr, errObj types.Object, st *state) {
	fn := lintutil.Callee(c.pass.TypesInfo, call)
	if fn == nil || fn.Name() != "Open" {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return
	}
	obj := objectOf(c.pass.TypesInfo, id)
	// Only variables: a package-qualified call (pkg.Open) puts a *PkgName
	// here, and that is not a sink being opened.
	if v, ok := obj.(*types.Var); !ok || !c.isSink(v.Type()) {
		return
	}
	st.open[obj] = openInfo{openPos: call.Pos(), errVar: errObj}
}

// scanEffects finds releases (and nested Open error handling has its own
// path) inside an expression: method calls releasing a tracked sink.
func (c *checker) scanEffects(e ast.Expr, st *state) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if obj := c.releasedVar(call); obj != nil {
				delete(st.open, obj)
			}
			// A tracked sink passed as an argument transfers ownership.
			for _, a := range call.Args {
				c.scanTransfers(a, st)
			}
		}
		return true
	})
}

// scanTransfers drops tracking for sinks whose value escapes through e: a
// bare identifier use (alias, return value, channel payload, composite
// element, closure capture). Method-call receivers (s.Open, s.Close) and
// field reads are uses, not transfers, and are skipped.
func (c *checker) scanTransfers(e ast.Expr, st *state) {
	if e == nil {
		return
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := objectOf(c.pass.TypesInfo, x); obj != nil {
			delete(st.open, obj)
		}
	case *ast.CallExpr:
		for _, a := range x.Args {
			c.scanTransfers(a, st)
		}
	case *ast.SelectorExpr:
		// Field read / method value: the base does not escape here.
	case *ast.UnaryExpr:
		c.scanTransfers(x.X, st)
	case *ast.StarExpr:
		c.scanTransfers(x.X, st)
	case *ast.BinaryExpr:
		c.scanTransfers(x.X, st)
		c.scanTransfers(x.Y, st)
	case *ast.IndexExpr:
		c.scanTransfers(x.X, st)
	case *ast.KeyValueExpr:
		c.scanTransfers(x.Value, st)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			c.scanTransfers(el, st)
		}
	case *ast.FuncLit:
		// A closure capturing the sink may release or leak it later;
		// conservatively treat the capture as an ownership transfer.
		ast.Inspect(x.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := objectOf(c.pass.TypesInfo, id); obj != nil {
					if _, tracked := st.open[obj]; tracked {
						delete(st.open, obj)
					}
				}
			}
			return true
		})
	}
}

// releasedVar returns the tracked-variable object released by call (a
// Close/CloseContext/Abort method call on an identifier), or nil.
func (c *checker) releasedVar(call *ast.CallExpr) types.Object {
	fn := lintutil.Callee(c.pass.TypesInfo, call)
	if fn == nil || !releaseMethods[fn.Name()] {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return c.canonical(objectOf(c.pass.TypesInfo, id))
}

// isSink reports whether t implements the sink.Sink interface.
func (c *checker) isSink(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, c.iface) ||
		types.Implements(types.NewPointer(t), c.iface)
}

func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if id.Name != "panic" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// errCheck matches a condition of the form `err != nil` / `err == nil`,
// returning the error object and whether the comparison is `!=`.
func errCheck(info *types.Info, cond ast.Expr) (types.Object, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return nil, false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNil(info, x) {
		x, y = y, x
	}
	if !isNil(info, y) {
		return nil, false
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := objectOf(info, id)
	if obj == nil || obj.Type() == nil || obj.Type().String() != "error" {
		return nil, false
	}
	return obj, be.Op == token.NEQ
}

func isNil(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := info.Uses[id].(*types.Nil)
	return isNilObj
}

func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}
