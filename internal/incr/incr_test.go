package incr

import (
	"fmt"
	"strings"
	"testing"

	"cleandb/internal/engine"
	"cleandb/internal/types"
)

func stamps(pairs ...int64) []Stamp {
	out := make([]Stamp, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, Stamp{ID: fmt.Sprintf("s%d", i/2), Base: pairs[i], Delta: pairs[i+1]})
	}
	return out
}

func TestCacheClassification(t *testing.T) {
	c := NewCache[string](4)
	c.Put("q", "v", stamps(1, 0, 2, 3))

	if e, f := c.Lookup("q", stamps(1, 0, 2, 3)); f != Exact || e.Val != "v" {
		t.Fatalf("same stamps: got freshness %v val %q", f, e.Val)
	}
	if e, f := c.Lookup("q", stamps(1, 2, 2, 3)); f != Appended || e.Val != "v" {
		t.Fatalf("newer delta: got freshness %v val %q", f, e.Val)
	}
	if _, f := c.Lookup("other", stamps(1, 0)); f != Stale {
		t.Fatalf("absent key: got freshness %v", f)
	}
	// Base generation moved: stale, and the entry must be evicted on sight.
	if _, f := c.Lookup("q", stamps(2, 0, 2, 3)); f != Stale {
		t.Fatalf("moved base: got freshness %v", f)
	}
	if _, f := c.Lookup("q", stamps(1, 0, 2, 3)); f != Stale {
		t.Fatalf("stale entry not evicted")
	}

	// An entry stamped AHEAD of the catalog (re-registered source reusing
	// stamps) is stale, as is a source-set size mismatch.
	c.Put("q2", "v2", stamps(1, 5))
	if _, f := c.Lookup("q2", stamps(1, 4)); f != Stale {
		t.Fatalf("entry newer than catalog: not stale")
	}
	c.Put("q3", "v3", stamps(1, 0))
	if _, f := c.Lookup("q3", stamps(1, 0, 1, 0)); f != Stale {
		t.Fatalf("source-set mismatch: not stale")
	}
	// Same position, different source identity.
	c.Put("q4", "v4", []Stamp{{ID: "a", Base: 1, Delta: 0}})
	if _, f := c.Lookup("q4", []Stamp{{ID: "b", Base: 1, Delta: 0}}); f != Stale {
		t.Fatalf("source identity mismatch: not stale")
	}
}

func TestCacheLRUAndPurge(t *testing.T) {
	c := NewCache[int](2)
	st := stamps(1, 0)
	c.Put("a", 1, st)
	c.Put("b", 2, st)
	if _, f := c.Lookup("a", st); f != Exact {
		t.Fatal("a missing before eviction")
	}
	// a is now most recent; inserting c evicts b.
	c.Put("c", 3, st)
	if _, f := c.Lookup("b", st); f != Stale {
		t.Fatal("b not evicted as LRU")
	}
	if _, f := c.Lookup("a", st); f != Exact {
		t.Fatal("a evicted despite recent use")
	}
	if got := c.Stats().Entries; got != 2 {
		t.Fatalf("entries = %d, want 2", got)
	}

	c.Purge()
	if got := c.Stats().Entries; got != 0 {
		t.Fatalf("entries after purge = %d, want 0", got)
	}
	// Counters survive the purge.
	if s := c.Stats(); s.Hits == 0 || s.Misses == 0 {
		t.Fatalf("purge reset counters: %+v", s)
	}
}

func TestCacheDisabledAndNil(t *testing.T) {
	var nilCache *Cache[string]
	nilCache.Put("k", "v", nil)
	nilCache.Purge()
	if _, f := nilCache.Lookup("k", nil); f != Stale {
		t.Fatal("nil cache lookup not a miss")
	}
	if s := nilCache.Stats(); s != (Stats{}) {
		t.Fatalf("nil cache stats %+v", s)
	}

	off := NewCache[string](0)
	off.Put("k", "v", stamps(1, 0))
	if _, f := off.Lookup("k", stamps(1, 0)); f != Stale {
		t.Fatal("zero-capacity cache stored an entry")
	}
}

// dedupRow builds a {name, city} record.
func dedupRow(name, city string) types.Value {
	return types.NewRecord(types.NewSchema("name", "city"), []types.Value{
		types.String(name), types.String(city),
	})
}

// testDelta blocks on city, pairs rows whose names share a first letter.
func testDelta() DedupDelta {
	return DedupDelta{
		BlockKeys: func(v types.Value) ([]string, error) {
			return []string{v.Field("city").Str()}, nil
		},
		Pair: func(a, b types.Value) (bool, error) {
			an, bn := a.Field("name").Str(), b.Field("name").Str()
			return an[0] == bn[0], nil
		},
	}
}

// fullPairs is the brute-force oracle: every intra-block pair over all rows,
// ordered by record key, identical records excluded, deduped across blocks.
func fullPairs(t *testing.T, d DedupDelta, rows []types.Value) map[string]bool {
	t.Helper()
	blocks := map[string][]int{}
	for i, v := range rows {
		if d.Keep != nil && !d.Keep(v) {
			continue
		}
		keys, err := d.BlockKeys(v)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			blocks[k] = append(blocks[k], i)
		}
	}
	out := map[string]bool{}
	for _, members := range blocks {
		for ai := 0; ai < len(members); ai++ {
			for bi := ai + 1; bi < len(members); bi++ {
				a, b := rows[members[ai]], rows[members[bi]]
				ka, kb := types.Key(a), types.Key(b)
				if ka == kb {
					continue
				}
				if kb < ka {
					a, b = b, a
					ka, kb = kb, ka
				}
				ok, err := d.Pair(a, b)
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					out[ka+"\x00"+kb] = true
				}
			}
		}
	}
	return out
}

// TestDedupDeltaReproducesFullPass: pairs(old rows only) ∪ delta pairs over
// the appended suffix must equal the full pass over all rows, and the delta
// must not report any old×old pair (those live in the cached view).
func TestDedupDeltaReproducesFullPass(t *testing.T) {
	rows := []types.Value{
		dedupRow("alice", "nyc"),
		dedupRow("aaron", "nyc"),
		dedupRow("bob", "sf"),
		dedupRow("bart", "sf"),
		dedupRow("carol", "nyc"),
		// appended delta
		dedupRow("amber", "nyc"),
		dedupRow("bella", "sf"),
		dedupRow("alice", "nyc"), // identical to row 0: must be excluded
	}
	const baseRows = 5
	d := testDelta()
	ctx := engine.NewContext(2)
	ds := engine.FromPartitions(ctx, [][]types.Value{rows})

	delta, err := d.Pairs(ds, func(i int, _ types.Value) bool { return i >= baseRows })
	if err != nil {
		t.Fatal(err)
	}
	// Merge with set semantics, as core's dedupDeltaRows does: a fresh row
	// value-identical to a base row (row 7 here) legitimately rediscovers
	// base pairs, and the merge skips them.
	got := fullPairs(t, d, rows[:baseRows]) // the "cached view"
	for _, p := range delta {
		if types.Key(p[0]) >= types.Key(p[1]) {
			t.Fatalf("delta pair out of canonical order: %v", p)
		}
		got[types.Key(p[0])+"\x00"+types.Key(p[1])] = true
	}
	want := fullPairs(t, d, rows)
	if len(got) != len(want) {
		t.Fatalf("merged %d pairs, full pass has %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("merged set missing pair %s", strings.ReplaceAll(k, "\x00", " | "))
		}
	}
	if n := ctx.Metrics().Comparisons(); n == 0 {
		t.Fatal("delta pass charged no comparisons")
	}

	// No fresh rows: nothing to do, nothing charged.
	before := ctx.Metrics().Comparisons()
	none, err := d.Pairs(ds, func(int, types.Value) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if none != nil {
		t.Fatalf("no-fresh delta returned %d pairs", len(none))
	}
	if ctx.Metrics().Comparisons() != before {
		t.Fatal("no-fresh delta charged comparisons")
	}
}

// TestDedupDeltaSkipsFullyOldBlocks: a block untouched by fresh rows must
// contribute zero charged comparisons.
func TestDedupDeltaSkipsFullyOldBlocks(t *testing.T) {
	rows := []types.Value{
		dedupRow("alice", "nyc"), dedupRow("aaron", "nyc"), dedupRow("ada", "nyc"),
		dedupRow("bob", "sf"),
		// appended: touches only sf
		dedupRow("bart", "sf"),
	}
	d := testDelta()
	ctx := engine.NewContext(1)
	ds := engine.FromPartitions(ctx, [][]types.Value{rows})
	pairs, err := d.Pairs(ds, func(i int, _ types.Value) bool { return i >= 4 })
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 {
		t.Fatalf("got %d pairs, want 1 (bart-bob)", len(pairs))
	}
	// Only the sf block is enumerated: bob×bart is the single candidate. The
	// three nyc rows would contribute 3 more had the block not been skipped.
	if n := ctx.Metrics().Comparisons(); n != 1 {
		t.Fatalf("charged %d comparisons, want 1", n)
	}
}

// TestDedupDeltaWhereFilter: rows failing Keep join no block on either side.
func TestDedupDeltaWhereFilter(t *testing.T) {
	rows := []types.Value{
		dedupRow("alice", "nyc"),
		dedupRow("amber", "skip"),
		dedupRow("aaron", "nyc"),
	}
	d := testDelta()
	d.Keep = func(v types.Value) bool { return v.Field("city").Str() != "skip" }
	ctx := engine.NewContext(1)
	ds := engine.FromPartitions(ctx, [][]types.Value{rows})
	pairs, err := d.Pairs(ds, func(i int, _ types.Value) bool { return i >= 1 })
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 {
		t.Fatalf("got %d pairs, want 1 (aaron-alice)", len(pairs))
	}
}
