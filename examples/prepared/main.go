// Prepared statements: plan a parameterized CleanM statement once, execute
// it many times with different bindings — concurrently — and read per-query
// metrics and plan-cache counters. This is the service-grade face of the
// engine: the three-level optimizer runs once per statement, not once per
// request.
//
//	go run ./examples/prepared
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"cleandb"
)

func main() {
	db := cleandb.Open(cleandb.WithWorkers(4))

	schema := cleandb.NewSchema("name", "address", "nationkey")
	cust := func(name, address string, nation int64) cleandb.Value {
		return cleandb.NewRecord(schema, []cleandb.Value{
			cleandb.String(name), cleandb.String(address), cleandb.Int(nation),
		})
	}
	db.RegisterRows("customer", []cleandb.Value{
		cust("alice smith", "12 oak st", 1),
		cust("alicia smith", "12 oak st", 1),
		cust("bob jones", "7 elm ave", 1),
		cust("bob jomes", "7 elm ave", 2),
		cust("carol davis", "9 pine rd", 2),
		cust("karol davis", "9 pine rd", 2),
	})

	// One statement, two placeholders: a named nation filter and a positional
	// similarity threshold. Parsing, normalization and lowering happen here,
	// exactly once.
	stmt, err := db.PrepareStmt(`
SELECT * FROM customer c
WHERE c.nationkey = :nation
DEDUP(attribute, LD, ?, c.address, c.name)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prepared statement with parameters %v\n\n", stmt.Params())

	// Execute it concurrently with different bindings; each execution gets
	// its own cost counters and cancellation scope.
	var wg sync.WaitGroup
	for nation := int64(1); nation <= 2; nation++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			res, err := stmt.ExecContext(ctx, 0.7, cleandb.Named("nation", nation))
			if err != nil {
				log.Fatal(err)
			}
			m := res.Metrics()
			fmt.Printf("nation=%d: %d duplicate pair(s); %d ticks, %d comparisons (this query only)\n",
				nation, len(res.Rows()), m.SimTicks, m.Comparisons)
		}()
	}
	wg.Wait()

	// Un-prepared queries share plans too, through the DB's LRU cache.
	for i := 0; i < 3; i++ {
		if _, err := db.QueryContext(context.Background(),
			`SELECT c.name FROM customer c WHERE c.nationkey = ?`, int64(1)); err != nil {
			log.Fatal(err)
		}
	}
	cs := db.PlanCacheStats()
	fmt.Printf("\nplan cache: %d hits, %d misses, %d entries\n", cs.Hits, cs.Misses, cs.Entries)
}
