// Unified cleaning: demonstrates the paper's §8.2 experiment — three
// cleaning operations over TPC-H customer executed standalone versus as one
// unified query whose grouping passes coalesce (Figure 1's Plan BC and the
// shared-scan DAG). Run with -standalone to disable the unified optimizer
// and compare costs.
//
//	go run ./examples/unified [-customers 5000] [-standalone]
package main

import (
	"flag"
	"fmt"
	"log"

	"cleandb"
	"cleandb/internal/datagen"
)

func main() {
	customers := flag.Int("customers", 5000, "base customer count")
	standalone := flag.Bool("standalone", false, "run operators independently (baseline mode)")
	flag.Parse()

	data := datagen.GenCustomer(datagen.CustomerConfig{
		Rows: *customers, DupRate: 0.10, MaxDups: 50, Seed: 42,
	})

	opts := []cleandb.Option{cleandb.WithWorkers(8)}
	if *standalone {
		opts = append(opts, cleandb.WithStandaloneOps())
	}
	db := cleandb.Open(opts...)
	db.RegisterRows("customer", data.Rows)

	query := `
SELECT * FROM customer c
FD(c.address, prefix(c.phone))
FD(c.address, c.nationkey)
DEDUP(attribute, LD, 0.8, c.address, c.name, c.phone)`

	res, err := db.Query(query)
	if err != nil {
		log.Fatal(err)
	}

	mode := "unified (coalesced nest + shared scan)"
	if *standalone {
		mode = "standalone (three independent plans)"
	}
	fmt.Printf("mode: %s\n", mode)
	fmt.Printf("customers: %d (with Zipf duplicates: %d rows)\n", *customers, len(data.Rows))

	if *standalone {
		for _, task := range res.TaskNames() {
			fmt.Printf("  %-8s %d violations\n", task, len(res.TaskRows(task)))
		}
	} else {
		fmt.Printf("  entities with ≥1 violation: %d\n", len(res.Rows()))
	}

	m := db.Metrics()
	fmt.Printf("cost: %d simulated ticks, %d records shuffled, %d comparisons\n",
		m.SimTicks, m.ShuffledRecords, m.Comparisons)
	fmt.Println("\nTip: run both modes and compare ticks — the unified plan groups the")
	fmt.Println("customer table once for all three operators instead of three times.")
}
