package data

import (
	"bytes"
	"testing"

	"cleandb/internal/types"
)

// FuzzColbinRoundTrip feeds arbitrary bytes to the colbin reader and, for
// every input it accepts, checks that Write∘Read is a fixpoint:
// Write(Read(x)) must re-read losslessly and re-encode byte-stably. It
// doubles as a robustness fuzz — the indexed reader must reject corrupt
// headers with errors, never panics or input-independent allocations.
func FuzzColbinRoundTrip(f *testing.F) {
	schema := types.NewSchema("id", "name", "score", "flag", "tags")
	rows := make([]types.Value, 20)
	for i := range rows {
		fields := []types.Value{
			types.Int(int64(i)),
			types.String("name-" + string(rune('a'+i%5))),
			types.Float(float64(i) / 7),
			types.Bool(i%2 == 0),
			types.List(types.String("x"), types.String("y")),
		}
		if i%7 == 0 {
			fields[i%5] = types.Null()
		}
		rows[i] = types.NewRecord(schema, fields)
	}
	var seed bytes.Buffer
	if err := WriteColbin(&seed, rows); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	var empty bytes.Buffer
	WriteColbin(&empty, nil)
	f.Add(empty.Bytes())
	f.Add([]byte("CBN1"))
	f.Add([]byte("CBN1\x02\x01a\x00\x01b\x01\x03"))
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, in []byte) {
		got, err := ReadColbin(bytes.NewReader(in))
		if err != nil {
			return
		}
		var b1 bytes.Buffer
		if err := WriteColbin(&b1, got); err != nil {
			t.Fatalf("write after read: %v", err)
		}
		got2, err := ReadColbin(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("re-read own output: %v", err)
		}
		if len(got2) != len(got) {
			t.Fatalf("re-read %d rows, want %d", len(got2), len(got))
		}
		for i := range got {
			if !types.Equal(got[i], got2[i]) {
				t.Fatalf("row %d: %v != %v", i, got[i], got2[i])
			}
		}
		var b2 bytes.Buffer
		if err := WriteColbin(&b2, got2); err != nil {
			t.Fatalf("second write: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("Write∘Read is not byte-stable:\n b1=%x\n b2=%x", b1.Bytes(), b2.Bytes())
		}
	})
}
