package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"cleandb/internal/types"
)

// DBLPSchema is the nested schema of generated publications: the authors
// field is a list of strings, matching the hierarchical DBLP XML layout.
var DBLPSchema = types.NewSchema("key", "title", "journal", "year", "authors")

// DictSchema is the schema of dictionary datasets: a single term column.
var DictSchema = types.NewSchema("term")

// DBLPConfig parameterizes GenDBLP.
type DBLPConfig struct {
	// Pubs is the number of publications.
	Pubs int
	// AuthorPool is the number of distinct clean author names (the
	// dictionary size; the paper uses 200K names for 6.4M entities).
	AuthorPool int
	// NoiseRate is the fraction of author occurrences misspelled
	// (paper: 10%).
	NoiseRate float64
	// EditRate is the per-name corruption factor (paper: 20%; Figure 4
	// sweeps 20–40%).
	EditRate float64
	// DupRate injects near-duplicate publications at this rate (same
	// journal and title, perturbed author lists) for dedup experiments.
	DupRate float64
	// Seed makes generation deterministic.
	Seed int64
}

// DBLPData is the generated corpus with ground truth.
type DBLPData struct {
	// Pubs are nested publication records.
	Pubs []types.Value
	// Dictionary holds the clean author names as {term} records.
	Dictionary []types.Value
	// Truth maps each corrupted author spelling to its clean form.
	Truth map[string]string
	// DupKeys lists (original key, duplicate key) publication pairs.
	DupKeys [][2]string
}

// synthName builds a pronounceable "first last" name from random
// consonant-vowel syllables (average length ≈ 13, close to DBLP's 12.8).
func synthName(rng *rand.Rand) string {
	const consonants = "bcdfghjklmnprstvwz"
	const vowels = "aeiou"
	word := func(syllables int) string {
		b := make([]byte, 0, syllables*2+1)
		for i := 0; i < syllables; i++ {
			b = append(b, consonants[rng.Intn(len(consonants))], vowels[rng.Intn(len(vowels))])
		}
		if rng.Intn(2) == 0 {
			b = append(b, consonants[rng.Intn(len(consonants))])
		}
		return string(b)
	}
	return word(2+rng.Intn(2)) + " " + word(2+rng.Intn(2))
}

var titleWords = []string{
	"adaptive", "query", "processing", "scalable", "distributed", "cleaning",
	"optimization", "monoid", "calculus", "similarity", "join", "streams",
	"transactional", "columnar", "storage", "indexing", "learning", "graphs",
	"parallel", "engines", "declarative", "languages", "skew", "sampling",
	"approximate", "analytics", "heterogeneous", "federated", "incremental",
	"vectorized",
}

var journals = []string{
	"pvldb", "sigmod record", "tods", "vldbj", "icde proc", "tkde",
	"cidr proc", "edbt proc",
}

// GenDBLP generates a hierarchical bibliography with misspelled author
// names. The journal distribution is skewed (Zipf-ish) — the property that
// breaks sort-shuffled baselines in the paper's Figure 7/8 experiments.
func GenDBLP(cfg DBLPConfig) DBLPData {
	if cfg.AuthorPool <= 0 {
		cfg.AuthorPool = 200
	}
	if cfg.NoiseRate == 0 {
		cfg.NoiseRate = 0.10
	}
	if cfg.EditRate == 0 {
		cfg.EditRate = 0.20
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Author pool: synthetic pronounceable names. Real author names have
	// high q-gram diversity (hundreds of thousands of distinct trigrams in
	// DBLP), which is what keeps token-filtering groups small relative to
	// k-means clusters; building names from random syllables preserves that
	// property at laptop scale.
	pool := make([]string, cfg.AuthorPool)
	seen := map[string]bool{}
	for i := range pool {
		name := synthName(rng)
		for seen[name] {
			name = fmt.Sprintf("%s %d", synthName(rng), i)
		}
		seen[name] = true
		pool[i] = name
	}

	data := DBLPData{Truth: map[string]string{}}
	for _, a := range pool {
		data.Dictionary = append(data.Dictionary, types.NewRecord(DictSchema, []types.Value{types.String(a)}))
	}

	// Skewed journal popularity.
	journalZipf := rand.NewZipf(rng, 1.3, 1, uint64(len(journals)-1))

	makeTitle := func() string {
		n := 3 + rng.Intn(4)
		words := make([]string, n)
		for i := range words {
			words[i] = titleWords[rng.Intn(len(titleWords))]
		}
		return strings.Join(words, " ")
	}

	authorName := func() string {
		clean := pool[rng.Intn(len(pool))]
		if rng.Float64() < cfg.NoiseRate {
			dirty := Corrupt(clean, cfg.EditRate, rng)
			if dirty != clean {
				if _, exists := data.Truth[dirty]; !exists {
					data.Truth[dirty] = clean
				}
				return dirty
			}
		}
		return clean
	}

	for i := 0; i < cfg.Pubs; i++ {
		key := fmt.Sprintf("pub/%07d", i)
		title := makeTitle()
		journal := journals[int(journalZipf.Uint64())]
		year := int64(1995 + rng.Intn(25))
		na := 1 + rng.Intn(4)
		authors := make([]types.Value, na)
		for a := range authors {
			authors[a] = types.String(authorName())
		}
		pub := types.NewRecord(DBLPSchema, []types.Value{
			types.String(key), types.String(title), types.String(journal),
			types.Int(year), types.ListOf(authors),
		})
		data.Pubs = append(data.Pubs, pub)

		if cfg.DupRate > 0 && rng.Float64() < cfg.DupRate {
			dupKey := fmt.Sprintf("pub/%07d-dup", i)
			dupAuthors := make([]types.Value, na)
			for a := range authors {
				name := authors[a].Str()
				if rng.Intn(2) == 0 {
					name = Corrupt(name, 0.1, rng)
				}
				dupAuthors[a] = types.String(name)
			}
			dup := types.NewRecord(DBLPSchema, []types.Value{
				types.String(dupKey), types.String(title), types.String(journal),
				types.Int(year), types.ListOf(dupAuthors),
			})
			data.Pubs = append(data.Pubs, dup)
			data.DupKeys = append(data.DupKeys, [2]string{key, dupKey})
		}
	}
	return data
}

// ---------------------------------------------------------------------------
// MAG (Microsoft Academic Graph)-style data
// ---------------------------------------------------------------------------

// MAGSchema is the flat Paper⋈Author⋈Affiliation schema of the paper's MAG
// dataset (7 columns).
var MAGSchema = types.NewSchema(
	"paperid", "title", "doi", "year", "authorid", "authorname", "affiliation",
)

// MAGConfig parameterizes GenMAG.
type MAGConfig struct {
	// Rows is the number of paper-author rows.
	Rows int
	// DupRate duplicates publications with title/DOI variations or missing
	// fields — the MAG quality issue the paper targets.
	DupRate float64
	// Seed makes generation deterministic.
	Seed int64
}

// MAGData is the generated dataset with dedup ground truth.
type MAGData struct {
	Rows []types.Value
	// DupPairs lists (original paperid, duplicate paperid).
	DupPairs [][2]int64
}

var affiliations = []string{
	"epfl", "mit", "stanford", "eth zurich", "cmu", "berkeley", "oxford",
	"tsinghua", "nus", "tu munich",
}

// GenMAG generates MAG-style rows reproducing the two real-MAG properties
// Figure 8b leans on:
//
//   - year mass concentrates on recent years (Zipf), so a range-partitioned
//     shuffle assigns the recent-year key range to few workers;
//   - duplicate publications (the dataset's main quality issue) concentrate
//     in those recent years — recent crawls re-ingest the same papers — so
//     the pairwise-comparison work per row is much higher inside the
//     recent-year range. Row-balanced range partitioning therefore overloads
//     the workers owning 2014, while hash-distributed groups stay balanced.
//
// Author ids are scrambled (hot authors are spread across the id space), so
// within a single year the work is evenly distributed — which is why the
// 2014-only subset remains tractable for every strategy, matching the paper.
func GenMAG(cfg MAGConfig) MAGData {
	if cfg.DupRate == 0 {
		cfg.DupRate = 0.10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	yearZipf := rand.NewZipf(rng, 1.1, 1, 24)
	dupZipf := rand.NewZipf(rng, 1.4, 1, 24)
	var data MAGData
	for i := 0; i < cfg.Rows; i++ {
		paperid := int64(i + 1)
		title := fmt.Sprintf("%s %s %s", titleWords[rng.Intn(len(titleWords))],
			titleWords[rng.Intn(len(titleWords))], titleWords[rng.Intn(len(titleWords))])
		doi := fmt.Sprintf("10.1000/mag.%07d", i)
		year := int64(2014 - int(yearZipf.Uint64())) // mass at 2014, long tail
		// Scrambled author id: multiplicative hash spreads authors across
		// the id space regardless of popularity rank.
		authorid := int64((uint64(rng.Intn(cfg.Rows/3+8))*2654435761 + 7) % uint64(cfg.Rows+17))
		authorname := poolName(int(authorid))
		affil := affiliations[int(authorid)%len(affiliations)]
		data.Rows = append(data.Rows, types.NewRecord(MAGSchema, []types.Value{
			types.Int(paperid), types.String(title), types.String(doi),
			types.Int(year), types.Int(authorid), types.String(authorname),
			types.String(affil),
		}))
		// Duplicate ingestion: recent papers are re-crawled repeatedly
		// (Zipf-many copies); older papers rarely duplicate.
		ndups := 0
		if year == 2014 {
			if rng.Float64() < 4*cfg.DupRate {
				ndups = int(dupZipf.Uint64()) + 1
			}
		} else if rng.Float64() < cfg.DupRate/4 {
			ndups = 1
		}
		for d := 0; d < ndups; d++ {
			dupID := int64(cfg.Rows)*int64(d+1) + paperid
			dupTitle := title
			dupDoi := types.Value(types.String(doi))
			switch rng.Intn(3) {
			case 0:
				dupTitle = Corrupt(title, 0.08, rng)
			case 1:
				dupDoi = types.String(fmt.Sprintf("10.1000/magx.%07d.%d", i, d))
			default:
				dupDoi = types.Null() // missing field
			}
			data.Rows = append(data.Rows, types.NewRecord(MAGSchema, []types.Value{
				types.Int(dupID), types.String(dupTitle), dupDoi,
				types.Int(year), types.Int(authorid), types.String(authorname),
				types.String(affil),
			}))
			data.DupPairs = append(data.DupPairs, [2]int64{paperid, dupID})
		}
	}
	return data
}

func poolName(i int) string {
	return firstNames[i%len(firstNames)] + " " + lastNames[(i/7)%len(lastNames)]
}

// AuthorOccurrences flattens DBLP publications into {author, key} rows — the
// term-validation input (one row per author occurrence).
func AuthorOccurrences(pubs []types.Value) []types.Value {
	schema := types.NewSchema("name", "pub")
	var out []types.Value
	for _, p := range pubs {
		for _, a := range p.Field("authors").List() {
			out = append(out, types.NewRecord(schema, []types.Value{a, p.Field("key")}))
		}
	}
	return out
}
