package physical

import (
	"cleandb/internal/data"
	"cleandb/internal/monoid"
	"cleandb/internal/types"
)

// Columnar predicate compilation: Select predicates over a single scan
// binding lower onto tight per-column loops instead of a per-row compiled
// expression. Supported shapes are comparisons between a scanned field, a
// literal (or bound parameter) and another scanned field, combined with
// and/or/not. Anything richer — builtin calls, arithmetic, nested records —
// returns no kernel and the Select runs on the row path; the two paths are
// exact equivalents because every fast loop reproduces types.Equal /
// types.Compare null ordering (nulls first) bit for bit.

// bitEval fills out[i] with the truth of a sub-predicate for row i.
type bitEval func(b *data.ColumnBatch, strs []string, out []bool)

// compileBatchKernel compiles pred, written against the single binding bind,
// into a batch filter kernel returning the selected row indices. It returns
// nil when the predicate does not fit the vectorizable subset.
func (ex *Executor) compileBatchKernel(pred monoid.Expr, bind string) func(*data.ColumnBatch) []int32 {
	ev, ok := ex.compileBatchBool(pred, bind)
	if !ok {
		return nil
	}
	return func(b *data.ColumnBatch) []int32 {
		out := make([]bool, b.N)
		ev(b, b.Strings(), out)
		sel := make([]int32, 0, b.N)
		for i, v := range out {
			if v {
				sel = append(sel, int32(i))
			}
		}
		return sel
	}
}

func (ex *Executor) compileBatchBool(e monoid.Expr, bind string) (bitEval, bool) {
	switch n := e.(type) {
	case *monoid.Const:
		v := n.Val.Bool()
		return func(_ *data.ColumnBatch, _ []string, out []bool) {
			for i := range out {
				out[i] = v
			}
		}, true
	case *monoid.UnOp:
		if n.Op != "not" {
			return nil, false
		}
		inner, ok := ex.compileBatchBool(n.E, bind)
		if !ok {
			return nil, false
		}
		return func(b *data.ColumnBatch, strs []string, out []bool) {
			inner(b, strs, out)
			for i := range out {
				out[i] = !out[i]
			}
		}, true
	case *monoid.BinOp:
		switch n.Op {
		case "and", "or":
			l, ok := ex.compileBatchBool(n.L, bind)
			if !ok {
				return nil, false
			}
			r, ok := ex.compileBatchBool(n.R, bind)
			if !ok {
				return nil, false
			}
			and := n.Op == "and"
			return func(b *data.ColumnBatch, strs []string, out []bool) {
				l(b, strs, out)
				tmp := make([]bool, len(out))
				r(b, strs, tmp)
				if and {
					for i := range out {
						out[i] = out[i] && tmp[i]
					}
				} else {
					for i := range out {
						out[i] = out[i] || tmp[i]
					}
				}
			}, true
		case "==", "!=", "<", "<=", ">", ">=":
			return ex.compileBatchCmp(n, bind)
		}
	}
	return nil, false
}

// batchOperand classifies one side of a comparison: a scanned field (by
// name) or a constant resolved at compile time.
type batchOperand struct {
	field string
	cv    types.Value
	isCol bool
}

func (ex *Executor) batchOperand(e monoid.Expr, bind string) (batchOperand, bool) {
	switch n := e.(type) {
	case *monoid.Const:
		return batchOperand{cv: n.Val}, true
	case *monoid.Param:
		v, ok := ex.compiler.Params[n.Key]
		if !ok {
			return batchOperand{}, false
		}
		return batchOperand{cv: v}, true
	case *monoid.Field:
		v, ok := n.Rec.(*monoid.Var)
		if !ok || v.Name != bind {
			return batchOperand{}, false
		}
		return batchOperand{field: n.Name, isCol: true}, true
	}
	return batchOperand{}, false
}

func (ex *Executor) compileBatchCmp(n *monoid.BinOp, bind string) (bitEval, bool) {
	l, ok := ex.batchOperand(n.L, bind)
	if !ok {
		return nil, false
	}
	r, ok := ex.batchOperand(n.R, bind)
	if !ok {
		return nil, false
	}
	op := n.Op
	switch {
	case l.isCol && !r.isCol:
		return cmpColConst(op, l.field, r.cv, false), true
	case !l.isCol && r.isCol:
		return cmpColConst(op, r.field, l.cv, true), true
	case l.isCol && r.isCol:
		return cmpColCol(op, l.field, r.field), true
	default:
		v := applyCmp(op, l.cv, r.cv)
		return func(_ *data.ColumnBatch, _ []string, out []bool) {
			for i := range out {
				out[i] = v
			}
		}, true
	}
}

// applyCmp is the comparison arm of monoid.ApplyBinOp.
func applyCmp(op string, l, r types.Value) bool {
	switch op {
	case "==":
		return types.Equal(l, r)
	case "!=":
		return !types.Equal(l, r)
	case "<":
		return types.Compare(l, r) < 0
	case "<=":
		return types.Compare(l, r) <= 0
	case ">":
		return types.Compare(l, r) > 0
	default: // ">="
		return types.Compare(l, r) >= 0
	}
}

// flipCmp mirrors an operator so const-vs-col comparisons reuse the
// col-vs-const loops: c OP x  ⇔  x flip(OP) c.
func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // ==, != are symmetric
}

// cmpColConst compares a column against a constant. rev marks the constant
// as the left operand of the original expression.
func cmpColConst(op, field string, cv types.Value, rev bool) bitEval {
	if rev {
		op = flipCmp(op)
	}
	return func(b *data.ColumnBatch, strs []string, out []bool) {
		ci := b.Col(field)
		if ci < 0 {
			// Missing field: every row yields Null on that side.
			v := applyCmp(op, types.Null(), cv)
			for i := range out {
				out[i] = v
			}
			return
		}
		col := &b.Cols[ci]
		nullRes := applyCmp(op, types.Null(), cv)
		switch {
		case col.Kind == data.VecStr && cv.Kind() == types.KindString && (op == "==" || op == "!="):
			// Dictionary fast path: string equality is one uint32 compare.
			code, present := b.Dict.Lookup(cv.Str())
			eq := op == "=="
			for i := range out {
				if col.Null(i) {
					out[i] = nullRes
					continue
				}
				out[i] = (present && col.Codes[i] == code) == eq
			}
		case col.Kind == data.VecStr && cv.Kind() == types.KindString:
			cs := cv.Str()
			for i, c := range col.Codes {
				if col.Null(i) {
					out[i] = nullRes
					continue
				}
				out[i] = cmpOrd(op, stringsCompare(strs[c], cs))
			}
		case col.Kind == data.VecInt && cv.IsNumeric():
			cf := cv.Float()
			for i, x := range col.Ints {
				if col.Null(i) {
					out[i] = nullRes
					continue
				}
				out[i] = cmpFloat(op, float64(x), cf)
			}
		case col.Kind == data.VecFloat && cv.IsNumeric():
			cf := cv.Float()
			for i, x := range col.Floats {
				if col.Null(i) {
					out[i] = nullRes
					continue
				}
				out[i] = cmpFloat(op, x, cf)
			}
		default:
			for i := 0; i < b.N; i++ {
				out[i] = applyCmp(op, col.Value(i, strs), cv)
			}
		}
	}
}

// cmpColCol compares two columns of the same batch row-wise.
func cmpColCol(op, lf, rf string) bitEval {
	return func(b *data.ColumnBatch, strs []string, out []bool) {
		li, ri := b.Col(lf), b.Col(rf)
		if li < 0 || ri < 0 {
			// A missing side is Null for every row; fold through the boxed
			// comparison once per row against the present side.
			for i := 0; i < b.N; i++ {
				out[i] = applyCmp(op, colValueOrNull(b, li, i, strs), colValueOrNull(b, ri, i, strs))
			}
			return
		}
		lc, rc := &b.Cols[li], &b.Cols[ri]
		if lc.Kind == data.VecStr && rc.Kind == data.VecStr && (op == "==" || op == "!=") {
			eq := op == "=="
			for i := range out {
				ln, rn := lc.Null(i), rc.Null(i)
				var m bool
				switch {
				case ln && rn:
					m = true // Equal(Null, Null) is true
				case ln || rn:
					m = false
				default:
					m = lc.Codes[i] == rc.Codes[i]
				}
				out[i] = m == eq
			}
			return
		}
		for i := 0; i < b.N; i++ {
			out[i] = applyCmp(op, lc.Value(i, strs), rc.Value(i, strs))
		}
	}
}

func colValueOrNull(b *data.ColumnBatch, ci, i int, strs []string) types.Value {
	if ci < 0 {
		return types.Null()
	}
	return b.Cols[ci].Value(i, strs)
}

// cmpOrd applies an ordering operator to a three-way comparison result.
func cmpOrd(op string, c int) bool {
	switch op {
	case "==":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	default: // ">="
		return c >= 0
	}
}

func cmpFloat(op string, a, b float64) bool {
	switch op {
	case "==":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	default: // ">="
		return a >= b
	}
}

// stringsCompare is strings.Compare without the import churn.
func stringsCompare(a, b string) int {
	switch {
	case a == b:
		return 0
	case a < b:
		return -1
	default:
		return 1
	}
}
