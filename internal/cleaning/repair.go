package cleaning

import (
	"sync/atomic"

	"cleandb/internal/engine"
	"cleandb/internal/types"
)

// DupClusters groups duplicate pairs into entity clusters by transitive
// closure (union-find) — the filtering extension paper §4.3 mentions
// ("applying transitive closure in order to build the similar pairs").
// Input records are {a, b} pairs as produced by Dedup; the result is one
// sorted cluster per real-world entity, clusters sorted by first member.
func DupClusters(pairs []types.Value) [][]types.Value {
	uf := NewUnionFind()
	byKey := map[string]types.Value{}
	for _, p := range pairs {
		a, b := p.Field("a"), p.Field("b")
		ka, kb := types.Key(a), types.Key(b)
		byKey[ka], byKey[kb] = a, b
		uf.Union(ka, kb)
	}
	var out [][]types.Value
	for _, members := range uf.Groups() {
		cluster := make([]types.Value, len(members))
		for i, k := range members {
			cluster[i] = byKey[k]
		}
		out = append(out, cluster)
	}
	return out
}

// ApplyRepairs rewrites the named column using the repair map produced by
// term validation, returning the repaired dataset and the number of values
// changed. Values with no repair pass through unchanged.
func ApplyRepairs(ds *engine.Dataset, col string, repairs map[string]string) (*engine.Dataset, int64) {
	var changed atomic.Int64
	out := ds.MapPartitions("repair:"+col, func(_ int, part []types.Value) []types.Value {
		res := make([]types.Value, len(part))
		var local int64
		for i, v := range part {
			rec := v.Record()
			if rec == nil {
				res[i] = v
				continue
			}
			idx, ok := rec.Schema.Index(col)
			if !ok {
				res[i] = v
				continue
			}
			repl, ok := repairs[rec.Fields[idx].Str()]
			if !ok {
				res[i] = v
				continue
			}
			fields := append([]types.Value(nil), rec.Fields...)
			fields[idx] = types.String(repl)
			res[i] = types.NewRecord(rec.Schema, fields)
			local++
		}
		changed.Add(local)
		return res
	})
	return out, changed.Load()
}
