// Package dist is the cleaning cluster: coordinator/worker roles over the
// single-process engine.
//
// The execution model is SPMD over a replicated catalog. A query arriving at
// the coordinator is planned into per-worker fragments that are the *whole
// query*: every node — the coordinator included — executes the same pipeline
// over the same sources, so every node's narrow stages, shuffles, statistics
// and strategy choices are bit-identical to single-process execution. The
// expensive O(n·m) comparison loops (theta, min-max, cartesian and hash
// joins) are the exception: the engine masks them (engine.Exchange), each
// node computes only the slots placement assigns to it, and the coordinator's
// barrier hub exchanges the slot outputs as framed colbin batches. The
// coordinator therefore finishes holding exactly the single-process result —
// rows, repairs and cost metrics — having personally executed only its share
// of the join work.
//
// Under partition custody (the default -custody=partitioned) the same
// masking divides the scans: a cold source load becomes a pair of masked
// stages ("scanvote/<source>", "scan/<source>") whose slots are the source's
// chunks, keyed by PartitionOwner — so each member parses only the chunks it
// has catalog custody of and gathers the rest through the barrier, ending
// with the identical full partition vector. -custody=replicated restores the
// fully replicated loads.
//
// Placement is rendezvous (highest-random-weight) hashing: a pure function of
// (key, membership), so every node computes the same assignment without
// coordination, and membership changes move only the keys owned by the nodes
// that came or went. The same scheme keys both catalog partition custody
// (source name + partition index, reported by the coordinator's /healthz) and
// masked-stage slots (stage id + slot index).
package dist

import (
	"hash/fnv"
	"strconv"
	"strings"
)

// owner returns the member with the highest rendezvous weight for key.
// Deterministic for any member order; ties break toward the smaller id.
func owner(key string, members []string) string {
	best, bestH := "", uint64(0)
	for _, m := range members {
		h := fnv.New64a()
		h.Write([]byte(m))
		h.Write([]byte{0})
		h.Write([]byte(key))
		v := mix64(h.Sum64())
		if best == "" || v > bestH || (v == bestH && m < best) {
			best, bestH = m, v
		}
	}
	return best
}

// mix64 finalizes the rendezvous weight (splitmix64's avalanche). FNV-1a
// alone leaves the weight ordering of near-identical keys — "part/x/1" vs
// "part/x/2" — heavily correlated, which assigns long runs of a source's
// chunks to one member instead of ~1/N each.
func mix64(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

func slotKey(stage string, slot int) string {
	return "slot/" + stage + "#" + strconv.Itoa(slot)
}

// ownedSlots returns the slots of [0,n) that placement assigns to self under
// the given membership. Unioned over all members the result is exactly [0,n),
// disjoint — the mask contract of engine.Exchange.
func ownedSlots(stage string, n int, self string, members []string) []int {
	var out []int
	for i := 0; i < n; i++ {
		if owner(slotKey(stage, i), members) == self {
			out = append(out, i)
		}
	}
	return out
}

// scanSource extracts the source name from a custody scan stage
// ("scanvote/<name>" or "scan/<name>"). Engine join stages are named
// "<3-digit op index>/<kind>", so the prefixes cannot collide.
func scanSource(stage string) (string, bool) {
	if name, ok := strings.CutPrefix(stage, "scanvote/"); ok {
		return name, true
	}
	if name, ok := strings.CutPrefix(stage, "scan/"); ok {
		return name, true
	}
	return "", false
}

// stageSlots is the placement mask for one masked stage. Join stages hash
// slot keys; custody scan stages reuse catalog partition custody, so the
// member that votes a chunk's types is the member that builds it (one raw
// parse serves both rounds) and /healthz custody reporting matches what each
// node actually loads.
func stageSlots(stage string, n int, self string, members []string) []int {
	name, ok := scanSource(stage)
	if !ok {
		return ownedSlots(stage, n, self, members)
	}
	var out []int
	for i := 0; i < n; i++ {
		if PartitionOwner(name, i, members) == self {
			out = append(out, i)
		}
	}
	return out
}

// PartitionOwner returns the member with custody of one source partition —
// the consistent catalog assignment keyed by source name + partition index.
// Under partitioned custody it masks the scan stages: the owner is the one
// member that parses the chunk from disk. Under replicated custody it is
// advisory (every node holds every partition); either way it drives the
// placement report on the coordinator's /healthz and re-plans automatically
// when the live membership changes.
func PartitionOwner(source string, part int, members []string) string {
	return owner("part/"+source+"/"+strconv.Itoa(part), members)
}
