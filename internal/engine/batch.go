package engine

import (
	"sync"

	"cleandb/internal/data"
	"cleandb/internal/types"
)

// Batch-backed datasets: partitions carried as typed column vectors
// (data.ColumnBatch) instead of boxed rows. Columnar operators —
// WrapRecords, FilterBatches, batch repartitioning — work on the vectors
// directly; every row-level operator transparently materializes rows first
// through a shared, once-per-dataset cache, so the two forms compose
// freely. Stage costs are logged identically in both forms, keeping
// SimTicks and the comparison budget representation-independent.

// rowCache materializes a batch-backed dataset's row form at most once,
// shared across WithContext rebinds so a catalog source pays the boxing
// cost once, not once per query.
type rowCache struct {
	once  sync.Once
	parts [][]types.Value
}

// FromBatches wraps column batches as a dataset. Rows materialize lazily on
// first use by a row-level operator.
func FromBatches(ctx *Context, batches []*data.ColumnBatch) *Dataset {
	if len(batches) == 0 {
		return FromPartitions(ctx, nil)
	}
	return &Dataset{ctx: ctx, batches: batches, mat: &rowCache{}}
}

// FromBatchesAndRows wraps column batches whose row form already exists
// (text formats scan rows first and batch them afterwards): columnar
// operators use the batches, row operators reuse the rows for free.
func FromBatchesAndRows(ctx *Context, batches []*data.ColumnBatch, parts [][]types.Value) *Dataset {
	if len(batches) == 0 || len(batches) != len(parts) {
		return FromPartitions(ctx, parts)
	}
	return &Dataset{ctx: ctx, batches: batches, parts: parts}
}

// Batches returns the dataset's column batches, or nil when it is
// row-backed. Entries may be nil after a cancelled job; treat nil as empty.
func (d *Dataset) Batches() []*data.ColumnBatch { return d.batches }

// Extend returns a new dataset holding d's partitions plus rows as one
// additional partition. d is never mutated: snapshots taken before the
// append keep their view, which is what makes appended sources safe to
// query concurrently. In batch form the new rows are interned against the
// source's shared dictionary so codes stay comparable across the whole
// source; rows that cannot batch (or a wrapped view) degrade the result to
// row form.
func (d *Dataset) Extend(rows []types.Value) *Dataset {
	if len(rows) == 0 {
		return d
	}
	rowFallback := func() *Dataset {
		parts := append(append([][]types.Value(nil), d.rows()...), rows)
		return FromPartitions(d.ctx, parts)
	}
	if d.batches == nil || d.inner != nil {
		return rowFallback()
	}
	var shared *data.Dict
	for _, b := range d.batches {
		if b != nil {
			shared = b.Dict
			break
		}
	}
	nb := data.BatchFromRows(rows, data.NewDict())
	if nb == nil || shared == nil {
		return rowFallback()
	}
	nb.RemapDict(shared)
	batches := append(append([]*data.ColumnBatch(nil), d.batches...), nb)
	if d.parts != nil {
		parts := append(append([][]types.Value(nil), d.parts...), rows)
		return FromBatchesAndRows(d.ctx, batches, parts)
	}
	return FromBatches(d.ctx, batches)
}

// WrapSchema returns the one-field env schema rows are wrapped in at
// materialization, when the dataset is a wrapped scan view.
func (d *Dataset) WrapSchema() *types.Schema { return d.wrap }

// rows returns the dataset's row partitions, materializing them from the
// batch form on first use. Materialization ignores job cancellation on
// purpose: the cache is shared across queries, and a half-built cache
// poisoned by one cancelled query would silently corrupt the next.
func (d *Dataset) rows() [][]types.Value {
	if d.parts != nil {
		return d.parts
	}
	if d.mat == nil {
		return d.parts
	}
	d.mat.once.Do(func() {
		d.mat.parts = d.buildRows()
	})
	return d.mat.parts
}

func (d *Dataset) buildRows() [][]types.Value {
	bg := &Context{Workers: d.ctx.Workers}
	if d.inner != nil {
		base := d.inner.rows()
		out := make([][]types.Value, len(base))
		bg.runParallel(len(base), func(i int) {
			in := base[i]
			res := make([]types.Value, len(in))
			for j, v := range in {
				res[j] = types.NewRecord(d.wrap, []types.Value{v})
			}
			out[i] = res
		})
		return out
	}
	out := make([][]types.Value, len(d.batches))
	bg.runParallel(len(d.batches), func(i int) {
		b := d.batches[i]
		if b == nil || b.N == 0 {
			out[i] = nil
			return
		}
		out[i] = b.AppendRows(make([]types.Value, 0, b.N), d.wrap)
	})
	return out
}

// WrapRecords is the columnar form of the scan-env Map: every record
// becomes a one-field record over wrap at materialization time, while the
// column vectors stay available for batch operators downstream. The stage
// is logged with exactly the cost the row path's Map would record, so the
// cost model cannot tell the two forms apart.
func (d *Dataset) WrapRecords(name string, wrap *types.Schema) *Dataset {
	costs := make([]int64, len(d.batches))
	for i, b := range d.batches {
		if b != nil {
			costs[i] = int64(b.N)
		}
	}
	d.finishNarrow(name, costs)
	return &Dataset{ctx: d.ctx, batches: d.batches, wrap: wrap, inner: d, mat: &rowCache{}}
}

// WrapBare re-wraps the dataset's bare data batches in a fresh one-field
// env schema, discarding the current wrap — the columnar form of projecting
// the scanned record itself (a SELECT-* reduce head). The vectors pass
// through untouched; only the schema rows materialize under changes. The
// stage logs the cost the row path's Map would.
func (d *Dataset) WrapBare(name string, wrap *types.Schema) *Dataset {
	costs := make([]int64, len(d.batches))
	for i, b := range d.batches {
		if b != nil {
			costs[i] = int64(b.N)
		}
	}
	d.finishNarrow(name, costs)
	// Share the base dataset's boxed bare rows when this is a wrapped scan
	// view; filtered batches box their own rows at materialization.
	return &Dataset{ctx: d.ctx, batches: d.batches, wrap: wrap, inner: d.inner, mat: &rowCache{}}
}

// FilterBatches evaluates a columnar predicate kernel per batch: the kernel
// returns the selected row indices, which gather into new batches without
// any row being boxed. Stage cost and recordsProcessed match the row path's
// Filter exactly.
func (d *Dataset) FilterBatches(name string, kernel func(*data.ColumnBatch) []int32) *Dataset {
	in := d.batches
	outB := make([]*data.ColumnBatch, len(in))
	costs := make([]int64, len(in))
	d.ctx.runParallel(len(in), func(i int) {
		b := in[i]
		if b == nil || b.N == 0 {
			outB[i] = b
			return
		}
		sel := kernel(b)
		outB[i] = b.Gather(sel)
		costs[i] = int64(b.N)
		d.ctx.metrics.batchesEvaluated.Add(1)
	})
	d.finishNarrow(name, costs)
	return &Dataset{ctx: d.ctx, batches: outB, wrap: d.wrap, mat: &rowCache{}}
}

// repartitionBatches redistributes a batch-backed dataset into n contiguous
// chunks by exchanging column chunks — zero-copy slices of the source
// vectors concatenated per target partition — instead of boxed row slices.
// It returns nil when the batches do not share one shape (the caller falls
// back to the row exchange). The logged stage is identical to the row
// path's repartition, including the byte volume the boxed rows would have.
func (d *Dataset) repartitionBatches(n int) *Dataset {
	if n < 1 {
		n = 1
	}
	var live []*data.ColumnBatch
	total := 0
	var bytes int64
	costs := make([]int64, len(d.batches))
	for i, b := range d.batches {
		if b == nil || b.N == 0 {
			continue
		}
		live = append(live, b)
		total += b.N
		costs[i] = int64(b.N)
		bytes += batchRowBytes(b, d.wrap != nil)
	}
	per := (total + n - 1) / n
	if per == 0 {
		per = 1
	}
	outB := make([]*data.ColumnBatch, n)
	//lint:ignore ctxcancel O(partitions·batches) slice bookkeeping, no per-row work
	for p := 0; p < n; p++ {
		lo := p * per
		if lo > total {
			lo = total
		}
		hi := lo + per
		if hi > total {
			hi = total
		}
		var pieces []*data.ColumnBatch
		off := 0
		for _, b := range live {
			blo, bhi := lo-off, hi-off
			if blo < 0 {
				blo = 0
			}
			if bhi > b.N {
				bhi = b.N
			}
			if blo < bhi {
				pieces = append(pieces, b.Slice(blo, bhi))
			}
			off += b.N
		}
		switch len(pieces) {
		case 0:
			outB[p] = nil
		case 1:
			outB[p] = pieces[0]
		default:
			cc := data.ConcatBatches(pieces)
			if cc == nil {
				return nil
			}
			outB[p] = cc
		}
	}
	d.ctx.metrics.logStage(StageStats{
		Name:            "repartition",
		WorkerCosts:     costs,
		ShuffledRecords: int64(total),
		ShuffledBytes:   bytes,
	})
	return &Dataset{ctx: d.ctx, batches: outB, wrap: d.wrap, mat: &rowCache{}}
}

// batchRowBytes computes the types.SizeBytes sum the boxed rows of b would
// report, straight from the vectors, so the batch repartition logs the same
// shuffle volume as the row repartition.
func batchRowBytes(b *data.ColumnBatch, wrapped bool) int64 {
	var strs []string
	var total int64
	total += int64(b.N) * 24 // record header per row
	if wrapped {
		total += int64(b.N) * 24 // env wrapper record per row
	}
	for ci := range b.Cols {
		col := &b.Cols[ci]
		switch col.Kind {
		case data.VecInt, data.VecFloat:
			total += int64(b.N) * 8
			if col.Nulls != nil {
				for i := 0; i < b.N; i++ {
					if col.Null(i) {
						total -= 7 // null costs 1, not 8
					}
				}
			}
		case data.VecBool:
			total += int64(b.N) * 1
		case data.VecStr:
			if strs == nil {
				strs = b.Strings()
			}
			for i, c := range col.Codes {
				if col.Nulls != nil && col.Null(i) {
					total += 1
				} else {
					total += 16 + int64(len(strs[c]))
				}
			}
		default:
			for _, v := range col.Vals {
				total += int64(types.SizeBytes(v))
			}
		}
	}
	return total
}
