// Package lint assembles the cleanlint suite: the five analyzers that keep
// the engine honest about its cost model (metricscharge), cancellation
// (ctxcancel), dictionary encoding (dictcode), sink lifecycle (sinkrelease),
// and catalog locking (locksnapshot). The Check driver runs every applicable
// analyzer over a set of loaded packages and filters diagnostics through
// //lint:ignore suppression comments.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"cleandb/internal/lint/analysis"
	"cleandb/internal/lint/ctxcancel"
	"cleandb/internal/lint/dictcode"
	"cleandb/internal/lint/load"
	"cleandb/internal/lint/locksnapshot"
	"cleandb/internal/lint/metricscharge"
	"cleandb/internal/lint/sinkrelease"
)

// Analyzers is the cleanlint suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	metricscharge.Analyzer,
	ctxcancel.Analyzer,
	dictcode.Analyzer,
	sinkrelease.Analyzer,
	locksnapshot.Analyzer,
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Diagnostic is one resolved finding: a position, the analyzer that produced
// it, and the message.
type Diagnostic struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Analyzer, d.Message)
}

// CheckPatterns loads the packages matching patterns relative to dir and runs
// the suite over them.
func CheckPatterns(dir string, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := load.Packages(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return Check(pkgs)
}

// Check runs every applicable analyzer over pkgs, applies //lint:ignore
// suppression, and returns the surviving diagnostics sorted by position.
func Check(pkgs []*load.Package) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		sup, malformed := suppressions(pkg)
		out = append(out, malformed...)
		for _, a := range Analyzers {
			if !a.AppliesTo(pkg.ImportPath) {
				continue
			}
			diags, err := runAnalyzer(a, pkg)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			for _, d := range diags {
				if !sup.covers(d.Position, d.Analyzer) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Position, out[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// runAnalyzer applies one analyzer to one package, resolving positions.
// Test files are exempt: the invariants target production operator code, not
// assertion loops over fixture-sized inputs.
func runAnalyzer(a *analysis.Analyzer, pkg *load.Package) ([]Diagnostic, error) {
	files := pkg.Files[:0:0]
	for _, f := range pkg.Files {
		if !strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			files = append(files, f)
		}
	}
	var diags []Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     files,
		Pkg:       pkg.Pkg,
		TypesInfo: pkg.TypesInfo,
		Report: func(d analysis.Diagnostic) {
			diags = append(diags, Diagnostic{
				Position: pkg.Fset.Position(d.Pos),
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		},
	}
	if _, err := a.Run(pass); err != nil {
		return nil, err
	}
	return diags, nil
}

// suppressionIndex records, per file and line, the analyzer names an ignore
// comment on that line suppresses.
type suppressionIndex map[string]map[int]map[string]bool

// covers reports whether a diagnostic of the given analyzer at pos is
// suppressed: an ignore comment sits on the same line (trailing) or on the
// line directly above the flagged one.
func (s suppressionIndex) covers(pos token.Position, analyzer string) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if names := lines[line]; names != nil && (names[analyzer] || names["*"]) {
			return true
		}
	}
	return false
}

const ignorePrefix = "//lint:ignore"

// suppressions indexes every //lint:ignore comment in the package. The form
// is
//
//	//lint:ignore analyzer[,analyzer...] justification
//
// placed on the flagged line or the line directly above it. A comment with no
// justification text is itself reported as a diagnostic: suppressions must
// say why the invariant does not apply.
func suppressions(pkg *load.Package) (suppressionIndex, []Diagnostic) {
	idx := suppressionIndex{}
	var malformed []Diagnostic
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				names, justification, _ := strings.Cut(rest, " ")
				if names == "" || strings.TrimSpace(justification) == "" {
					malformed = append(malformed, Diagnostic{
						Position: pos,
						Analyzer: "lint",
						Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzer> <justification>\"; the justification is required",
					})
					continue
				}
				for _, name := range strings.Split(names, ",") {
					if name != "*" && ByName(name) == nil {
						malformed = append(malformed, Diagnostic{
							Position: pos,
							Analyzer: "lint",
							Message:  fmt.Sprintf("//lint:ignore names unknown analyzer %q", name),
						})
						continue
					}
					if idx[pos.Filename] == nil {
						idx[pos.Filename] = map[int]map[string]bool{}
					}
					if idx[pos.Filename][pos.Line] == nil {
						idx[pos.Filename][pos.Line] = map[string]bool{}
					}
					idx[pos.Filename][pos.Line][name] = true
				}
			}
		}
	}
	return idx, malformed
}
