package monoid

import (
	"strings"
	"testing"

	"cleandb/internal/types"
)

func evalExpr(t *testing.T, e Expr, env *Env) types.Value {
	t.Helper()
	v, err := NewEvaluator().Eval(e, env)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestEvalArithmetic(t *testing.T) {
	cases := []struct {
		e    Expr
		want types.Value
	}{
		{&BinOp{Op: "+", L: CInt(2), R: CInt(3)}, types.Int(5)},
		{&BinOp{Op: "-", L: CInt(2), R: CInt(3)}, types.Int(-1)},
		{&BinOp{Op: "*", L: CInt(4), R: CInt(3)}, types.Int(12)},
		{&BinOp{Op: "/", L: CInt(7), R: CInt(2)}, types.Int(3)},
		{&BinOp{Op: "%", L: CInt(7), R: CInt(2)}, types.Int(1)},
		{&BinOp{Op: "+", L: C(types.Float(1.5)), R: CInt(1)}, types.Float(2.5)},
		{&BinOp{Op: "+", L: CStr("a"), R: CStr("b")}, types.String("ab")},
		{&UnOp{Op: "-", E: CInt(5)}, types.Int(-5)},
		{&UnOp{Op: "not", E: CBool(false)}, types.Bool(true)},
	}
	for _, c := range cases {
		if got := evalExpr(t, c.e, nil); !types.Equal(got, c.want) {
			t.Errorf("%s = %s, want %s", c.e, got, c.want)
		}
	}
}

func TestEvalDivisionByZero(t *testing.T) {
	v := evalExpr(t, &BinOp{Op: "/", L: CInt(1), R: CInt(0)}, nil)
	if !v.IsNull() {
		t.Fatalf("division by zero should be null, got %s", v)
	}
}

func TestEvalComparisons(t *testing.T) {
	tests := []struct {
		op   string
		want bool
	}{
		{"==", false}, {"!=", true}, {"<", true}, {"<=", true}, {">", false}, {">=", false},
	}
	for _, c := range tests {
		e := &BinOp{Op: c.op, L: CInt(1), R: CInt(2)}
		if got := evalExpr(t, e, nil); got.Bool() != c.want {
			t.Errorf("1 %s 2 = %v, want %v", c.op, got.Bool(), c.want)
		}
	}
}

func TestEvalShortCircuit(t *testing.T) {
	// The right side references an unbound variable: must not be evaluated.
	e := &BinOp{Op: "and", L: CBool(false), R: V("unbound")}
	if got := evalExpr(t, e, nil); got.Bool() {
		t.Fatal("false and X should be false without evaluating X")
	}
	e2 := &BinOp{Op: "or", L: CBool(true), R: V("unbound")}
	if got := evalExpr(t, e2, nil); !got.Bool() {
		t.Fatal("true or X should be true without evaluating X")
	}
}

func TestEvalUnboundVariable(t *testing.T) {
	_, err := NewEvaluator().Eval(V("nope"), nil)
	if err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Fatalf("want unbound variable error, got %v", err)
	}
}

func TestEvalEnvShadowing(t *testing.T) {
	env := (*Env)(nil).Bind("x", types.Int(1)).Bind("x", types.Int(2))
	if got := evalExpr(t, V("x"), env); got.Int() != 2 {
		t.Fatalf("inner binding should shadow: %s", got)
	}
}

func TestEvalRecordAndField(t *testing.T) {
	rc := &RecordCtor{Names: []string{"a", "b"}, Fields: []Expr{CInt(1), CStr("x")}}
	rec := evalExpr(t, rc, nil)
	if rec.Field("a").Int() != 1 || rec.Field("b").Str() != "x" {
		t.Fatalf("record ctor wrong: %s", rec)
	}
	f := F(rc, "b")
	if got := evalExpr(t, f, nil); got.Str() != "x" {
		t.Fatalf("field access = %s", got)
	}
}

func TestEvalIf(t *testing.T) {
	e := &If{Cond: Gt(CInt(3), CInt(1)), Then: CStr("yes"), Else: CStr("no")}
	if got := evalExpr(t, e, nil); got.Str() != "yes" {
		t.Fatalf("if = %s", got)
	}
}

func TestBuiltins(t *testing.T) {
	cases := []struct {
		name string
		e    Expr
		want types.Value
	}{
		{"prefix", &Call{Fn: "prefix", Args: []Expr{CStr("hello")}}, types.String("hel")},
		{"prefix-n", &Call{Fn: "prefix", Args: []Expr{CStr("hello"), CInt(2)}}, types.String("he")},
		{"lower", &Call{Fn: "lower", Args: []Expr{CStr("ABC")}}, types.String("abc")},
		{"upper", &Call{Fn: "upper", Args: []Expr{CStr("abc")}}, types.String("ABC")},
		{"trim", &Call{Fn: "trim", Args: []Expr{CStr("  x ")}}, types.String("x")},
		{"length-str", &Call{Fn: "length", Args: []Expr{CStr("abcd")}}, types.Int(4)},
		{"levenshtein", &Call{Fn: "levenshtein", Args: []Expr{CStr("kitten"), CStr("sitting")}}, types.Int(3)},
		{"similar", &Call{Fn: "similar", Args: []Expr{CStr("LD"), CStr("abcde"), CStr("abcdx"), C(types.Float(0.7))}}, types.Bool(true)},
		{"year", &Call{Fn: "year", Args: []Expr{CStr("1998-03-07")}}, types.Int(1998)},
		{"month", &Call{Fn: "month", Args: []Expr{CStr("1998-03-07")}}, types.Int(3)},
		{"day", &Call{Fn: "day", Args: []Expr{CStr("1998-03-07")}}, types.Int(7)},
		{"abs", &Call{Fn: "abs", Args: []Expr{CInt(-4)}}, types.Int(4)},
		{"isnull-empty", &Call{Fn: "isnull", Args: []Expr{CStr("")}}, types.Bool(true)},
		{"isnull-value", &Call{Fn: "isnull", Args: []Expr{CInt(1)}}, types.Bool(false)},
		{"toint", &Call{Fn: "toint", Args: []Expr{CStr(" 42 ")}}, types.Int(42)},
		{"tofloat", &Call{Fn: "tofloat", Args: []Expr{CStr("2.5")}}, types.Float(2.5)},
		{"concat", &Call{Fn: "concat", Args: []Expr{CStr("a"), CInt(1)}}, types.String("a1")},
		{"reckey-ordered", &Call{Fn: "reckey", Args: []Expr{CInt(5)}}, types.String("5")},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := evalExpr(t, c.e, nil); !types.Equal(got, c.want) {
				t.Fatalf("%s = %s, want %s", c.e, got, c.want)
			}
		})
	}
}

func TestTokenizeBuiltin(t *testing.T) {
	e := &Call{Fn: "tokenize", Args: []Expr{CStr("abab"), CInt(2)}}
	v := evalExpr(t, e, nil)
	// unique 2-grams of "abab": ab, ba.
	if len(v.List()) != 2 {
		t.Fatalf("tokenize = %s", v)
	}
}

func TestCallArityErrors(t *testing.T) {
	ev := NewEvaluator()
	for _, e := range []Expr{
		&Call{Fn: "prefix", Args: nil},
		&Call{Fn: "tokenize", Args: []Expr{CStr("a")}},
		&Call{Fn: "similar", Args: []Expr{CStr("LD")}},
		&Call{Fn: "nosuchfn", Args: nil},
	} {
		if _, err := ev.Eval(e, nil); err == nil {
			t.Errorf("%s should error", e)
		}
	}
}

func TestEvalComprehensionSum(t *testing.T) {
	// +{ x | x ← [1,2,10], x < 5 } = 3 (the paper's example).
	comp := &Comprehension{
		M:    Sum,
		Head: V("x"),
		Quals: []Qual{
			&Generator{Var: "x", Source: &ListCtor{Elems: []Expr{CInt(1), CInt(2), CInt(10)}}},
			&Pred{Cond: Lt(V("x"), CInt(5))},
		},
	}
	if got := evalExpr(t, comp, nil); got.Int() != 3 {
		t.Fatalf("sum comprehension = %s, want 3", got)
	}
}

func TestEvalComprehensionCrossProduct(t *testing.T) {
	// set{ (x,y) | x ← {1,2}, y ← {3,4} } — the paper's second example.
	comp := &Comprehension{
		M:    Set,
		Head: &ListCtor{Elems: []Expr{V("x"), V("y")}},
		Quals: []Qual{
			&Generator{Var: "x", Source: &ListCtor{Elems: []Expr{CInt(1), CInt(2)}}},
			&Generator{Var: "y", Source: &ListCtor{Elems: []Expr{CInt(3), CInt(4)}}},
		},
	}
	v := evalExpr(t, comp, nil)
	if len(v.List()) != 4 {
		t.Fatalf("cross product size = %d, want 4", len(v.List()))
	}
}

func TestEvalComprehensionLet(t *testing.T) {
	comp := &Comprehension{
		M:    Bag,
		Head: V("y"),
		Quals: []Qual{
			&Generator{Var: "x", Source: &ListCtor{Elems: []Expr{CInt(1), CInt(2)}}},
			&Let{Var: "y", E: &BinOp{Op: "*", L: V("x"), R: CInt(10)}},
		},
	}
	v := evalExpr(t, comp, nil)
	if len(v.List()) != 2 || v.List()[0].Int() != 10 || v.List()[1].Int() != 20 {
		t.Fatalf("let comprehension = %s", v)
	}
}

func TestEvalExistsEarlyExit(t *testing.T) {
	// any over a large generator must stop at the first match; the list's
	// second element would fail field access gracefully anyway, but the
	// early exit is observable through Any's result.
	comp := &Comprehension{
		M:    Any,
		Head: Eq(V("x"), CInt(1)),
		Quals: []Qual{
			&Generator{Var: "x", Source: &ListCtor{Elems: []Expr{CInt(1), CInt(2), CInt(3)}}},
		},
	}
	if got := evalExpr(t, comp, nil); !got.Bool() {
		t.Fatal("exists should find 1")
	}
}

func TestEvalGeneratorOverNull(t *testing.T) {
	comp := &Comprehension{
		M:    Count,
		Head: CInt(1),
		Quals: []Qual{
			&Generator{Var: "x", Source: C(types.Null())},
		},
	}
	if got := evalExpr(t, comp, nil); got.Int() != 0 {
		t.Fatalf("generator over null yields zero, got %s", got)
	}
}

func TestEvalGeneratorTypeError(t *testing.T) {
	comp := &Comprehension{
		M:     Count,
		Head:  CInt(1),
		Quals: []Qual{&Generator{Var: "x", Source: CInt(3)}},
	}
	_, err := NewEvaluator().EvalComprehension(comp, nil)
	if err == nil {
		t.Fatal("generator over int should be a type error")
	}
	if _, ok := err.(*TypeError); !ok {
		t.Fatalf("want *TypeError, got %T: %v", err, err)
	}
}

func TestEvalNestedComprehension(t *testing.T) {
	// sum{ sum{ y | y ← x } | x ← [[1,2],[3]] } = 6
	inner := &Comprehension{M: Sum, Head: V("y"), Quals: []Qual{&Generator{Var: "y", Source: V("x")}}}
	outer := &Comprehension{M: Sum, Head: inner, Quals: []Qual{
		&Generator{Var: "x", Source: &ListCtor{Elems: []Expr{
			&ListCtor{Elems: []Expr{CInt(1), CInt(2)}},
			&ListCtor{Elems: []Expr{CInt(3)}},
		}}},
	}}
	if got := evalExpr(t, outer, nil); got.Int() != 6 {
		t.Fatalf("nested comprehension = %s", got)
	}
}

func TestEvalSources(t *testing.T) {
	ev := NewEvaluator()
	ev.Sources = func(name string) (types.Value, bool) {
		if name == "nums" {
			return types.List(types.Int(4), types.Int(5)), true
		}
		return types.Null(), false
	}
	comp := &Comprehension{M: Sum, Head: V("x"), Quals: []Qual{&Generator{Var: "x", Source: V("nums")}}}
	v, err := ev.EvalComprehension(comp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 9 {
		t.Fatalf("source comprehension = %s", v)
	}
}

func TestMergeOpEval(t *testing.T) {
	e := &BinOp{Op: "merge:sum", L: CInt(3), R: CInt(4)}
	if got := evalExpr(t, e, nil); got.Int() != 7 {
		t.Fatalf("merge:sum = %s", got)
	}
	e2 := &BinOp{Op: "merge:bag",
		L: &ListCtor{Elems: []Expr{CInt(1)}},
		R: &ListCtor{Elems: []Expr{CInt(2)}}}
	if got := evalExpr(t, e2, nil); len(got.List()) != 2 {
		t.Fatalf("merge:bag = %s", got)
	}
}
