package physical

import (
	"math/rand"
	"sort"
	"testing"

	"cleandb/internal/algebra"
	"cleandb/internal/engine"
	"cleandb/internal/monoid"
	"cleandb/internal/types"
)

// TestRewritePreservesResults is the algebra-level soundness property test:
// for random comprehensions, executing the raw lowered plan and the
// rewritten (select-fused, subplan-shared) plan yields identical results
// under every physical configuration.
func TestRewritePreservesResults(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	sources := map[string][]types.Value{}
	mkRows := func(n int) []types.Value {
		out := make([]types.Value, n)
		for i := range out {
			out[i] = row(int64(i), string(rune('a'+rng.Intn(3))), int64(rng.Intn(40)), "t", "u")
		}
		return out
	}
	sources["rows"] = mkRows(30)
	sources["other"] = mkRows(12)

	lowerer := &algebra.Lowerer{IsSource: func(name string) bool {
		_, ok := sources[name]
		return ok || name == algebra.UnitSource
	}}
	configs := []Config{
		{Group: GroupAggregate, Theta: ThetaMBucket},
		{Group: GroupSort, Theta: ThetaCartesian},
		{Group: GroupHash, Theta: ThetaMinMax},
	}

	runPlanCanon := func(p algebra.Plan, cfg Config) string {
		ctx := engine.NewContext(3)
		catalog := map[string]*engine.Dataset{}
		for name, rows := range sources {
			catalog[name] = engine.FromValues(ctx, rows)
		}
		ex := NewExecutor(ctx, catalog)
		ex.Config = cfg
		d, err := ex.Exec(p)
		if err != nil {
			t.Fatalf("exec: %v\n%s", err, algebra.Explain(p))
		}
		keys := make([]string, 0)
		for _, v := range d.Collect() {
			keys = append(keys, types.Key(v))
		}
		sort.Strings(keys)
		out := ""
		for _, k := range keys {
			out += k + "\n"
		}
		return out
	}

	for trial := 0; trial < 60; trial++ {
		comp := randomQueryComp(rng)
		norm := monoid.NewNormalizer().Normalize(comp)
		nc, ok := norm.(*monoid.Comprehension)
		if !ok {
			continue
		}
		raw, err := lowerer.Lower(nc)
		if err != nil {
			t.Fatalf("lower: %v", err)
		}
		rewritten := (&algebra.Rewriter{}).Rewrite(raw)
		cfg := configs[trial%len(configs)]
		if got, want := runPlanCanon(rewritten, cfg), runPlanCanon(raw, cfg); got != want {
			t.Fatalf("rewrite changed results (config %+v)\nraw plan:\n%s\nrewritten:\n%s\nwant:\n%s\ngot:\n%s",
				cfg, algebra.Explain(raw), algebra.Explain(rewritten), want, got)
		}
	}
}

// TestSharedDAGMatchesIndependentExecution: running two structurally equal
// plans through one executor (memoized DAG) yields the same outputs as
// running them through separate executors.
func TestSharedDAGMatchesIndependentExecution(t *testing.T) {
	rows := testRows()
	mkCatalog := func(ctx *engine.Context) map[string]*engine.Dataset {
		return map[string]*engine.Dataset{"rows": engine.FromValues(ctx, rows)}
	}
	mkNest := func() algebra.Plan {
		return &algebra.Nest{
			Child: &algebra.Scan{Source: "rows", Alias: "r"},
			Keys:  []monoid.Expr{monoid.F(monoid.V("r"), "grp")},
			Aggs:  []algebra.Aggregate{{Name: "group", M: monoid.Bag, Val: monoid.V("r")}},
			As:    "g",
		}
	}
	p1 := &algebra.Select{Child: mkNest(), Pred: monoid.Gt(
		&monoid.Call{Fn: "length", Args: []monoid.Expr{monoid.F(monoid.F(monoid.V("g"), "group"), "missing")}},
		monoid.CInt(-1))} // always true, exercises field access on groups
	p2 := &algebra.Select{Child: mkNest(), Pred: monoid.CBool(true)}

	shared := (&algebra.Rewriter{}).Share([]algebra.Plan{p1, p2})
	ctxShared := engine.NewContext(3)
	exShared := NewExecutor(ctxShared, mkCatalog(ctxShared))
	canon := func(d *engine.Dataset) string {
		keys := []string{}
		for _, v := range d.Collect() {
			keys = append(keys, types.Key(v))
		}
		sort.Strings(keys)
		out := ""
		for _, k := range keys {
			out += k + "\n"
		}
		return out
	}
	var sharedOut []string
	for _, p := range shared {
		d, err := exShared.Exec(p)
		if err != nil {
			t.Fatal(err)
		}
		sharedOut = append(sharedOut, canon(d))
	}
	for i, p := range []algebra.Plan{p1, p2} {
		ctx := engine.NewContext(3)
		ex := NewExecutor(ctx, mkCatalog(ctx))
		d, err := ex.Exec(p)
		if err != nil {
			t.Fatal(err)
		}
		if canon(d) != sharedOut[i] {
			t.Fatalf("shared execution differs for plan %d", i)
		}
	}
}
