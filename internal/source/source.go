// Package source is CleanDB's pluggable data-source layer: one interface
// behind which every input format — CSV, JSON lines, XML, colbin, in-memory
// rows — presents itself to the catalog.
//
// A Source is cheap to construct: building one records where the data lives
// and nothing else. Parsing happens in Scan, which lands the rows directly
// as ordered partitions so the engine can wrap them without a
// collect-then-repartition copy, and which parallelizes wherever the format
// permits: CSV splits on row boundaries across goroutines, JSON lines split
// on line boundaries, colbin decodes its column chunks concurrently. XML is
// the holdout — nested elements leave no safe split points short of parsing
// — so it scans sequentially and only partitions the result.
//
// The catalog registers sources lazily and calls Scan on first use; Schema
// and Stats answer what they can without a full parse (a CSV header, a
// colbin row count, a file size) so tooling can describe pending sources.
package source

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"cleandb/internal/par"
	"cleandb/internal/types"
)

// Stats carries a source's pre-scan size hints. Fields are -1 when the
// format cannot answer without a full parse.
type Stats struct {
	// Rows is the record count: exact for in-memory and colbin sources
	// (colbin stores it in the header), -1 for text formats.
	Rows int64
	// Bytes is the encoded size: the file length for file-backed sources,
	// the buffer length for in-memory bytes, -1 when unknown.
	Bytes int64
}

// Source is a registered-but-not-necessarily-parsed data source.
//
// Implementations must be safe for concurrent use; Scan may be called more
// than once and must return the same rows each time (for a file-backed
// source, assuming the file is unchanged).
type Source interface {
	// Format names the source encoding: "csv", "json", "xml", "colbin",
	// "mem".
	Format() string
	// Schema returns the column names when they are knowable without a full
	// scan (a CSV header row, a colbin header), or nil when discovering them
	// requires parsing the data (JSON, XML).
	Schema() ([]string, error)
	// Stats returns size hints without a full scan.
	Stats() (Stats, error)
	// Scan parses the source into at most parts ordered partitions.
	// Concatenating the partitions in order yields exactly the rows the
	// format's sequential reader produces. Cancelling ctx aborts the scan
	// with ctx.Err(): chunk-parallel formats stop between chunks promptly;
	// formats that must parse sequentially (XML) only notice cancellation
	// at their phase boundaries.
	Scan(ctx context.Context, parts int) ([][]types.Value, error)
}

// FromPath builds a file-backed source, inferring the format from the
// path's extension. The file is not opened until Schema/Stats/Scan.
func FromPath(path string) (Source, error) {
	switch filepath.Ext(path) {
	case ".csv":
		return NewCSVFile(path), nil
	case ".json", ".jsonl", ".ndjson":
		return NewJSONFile(path), nil
	case ".xml":
		return NewXMLFile(path), nil
	case ".colbin":
		return NewColbinFile(path), nil
	default:
		return nil, fmt.Errorf("source: unknown format for %q (want .csv/.json/.xml/.colbin)", path)
	}
}

// Path returns the backing file path of a file-backed source, "" for
// in-memory buffers. A cluster coordinator uses it to ship catalog entries to
// workers by path (the nodes share storage); in-memory sources stay local.
func (s *CSV) Path() string    { return s.src.path }
func (s *JSON) Path() string   { return s.src.path }
func (s *XML) Path() string    { return s.src.path }
func (s *Colbin) Path() string { return s.src.path }

// PathOf extracts the backing file path from any source that exposes one,
// "" otherwise (in-memory buffers, custom sources).
func PathOf(s Source) string {
	if p, ok := s.(interface{ Path() string }); ok {
		return p.Path()
	}
	return ""
}

// headPrefixBytes bounds how much of a file-backed source Schema/Stats read
// when parsing just its header.
const headPrefixBytes = 1 << 20

// bytesAt abstracts "the raw bytes live here" for the file/buffer pairs of
// constructors every format offers.
type bytesAt struct {
	path string // file-backed when non-empty
	buf  []byte // in-memory otherwise
}

func (b bytesAt) bytes() ([]byte, error) {
	if b.path != "" {
		return os.ReadFile(b.path)
	}
	return b.buf, nil
}

// head returns up to n leading bytes of the input plus whether that prefix
// is the complete input — header parsers use it to stay O(header) on huge
// files while detecting when a header might continue past the prefix.
func (b bytesAt) head(n int) (prefix []byte, complete bool, err error) {
	if b.path == "" {
		return b.buf, true, nil
	}
	f, err := os.Open(b.path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	buf := make([]byte, n)
	m, err := io.ReadFull(f, buf)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, false, err
	}
	return buf[:m], m < n, nil
}

func (b bytesAt) sizeBytes() int64 {
	if b.path != "" {
		fi, err := os.Stat(b.path)
		if err != nil {
			return -1
		}
		return fi.Size()
	}
	return int64(len(b.buf))
}

// partition slices vs into at most n contiguous chunks without copying
// (par.Chunks), mirroring the engine's default partitioner so a sequentially
// parsed source lands exactly like pre-partitioned data.
func partition(vs []types.Value, n int) [][]types.Value {
	return par.Chunks(vs, n)
}

// runParallel is the shared bounded-worker driver (par.Run): first error or
// cancellation wins, every started goroutine exits before return, width is
// capped at GOMAXPROCS.
func runParallel(ctx context.Context, n, width int, f func(i int) error) error {
	return par.Run(ctx, n, width, f)
}
