// Package metricscharge enforces the cost-model invariant at the heart of
// CleanM's optimizability claim (paper §4–6): every pairwise similarity
// comparison an operator performs must be charged to engine.Metrics, or the
// optimizer's strategy choices and the comparison budget are measured against
// a fiction. A loop that calls a textsim comparator without the enclosing
// function charging Metrics.AddComparisons (or logging a stage cost, which
// charges through the stage ledger) is flagged.
package metricscharge

import (
	"go/ast"

	"cleandb/internal/lint/analysis"
	"cleandb/internal/lint/lintutil"
)

// Analyzer flags comparison loops that never charge the cost model.
var Analyzer = &analysis.Analyzer{
	Name: "metricscharge",
	Doc: "comparison loops must charge engine.Metrics in the same function\n\n" +
		"A function in operator code that calls a textsim comparator inside a " +
		"loop must also call Metrics.AddComparisons (or log a stage through " +
		"the Metrics ledger) in that same function scope, so the cost model " +
		"sees exactly the work performed. Functions that only hand comparators " +
		"to already-charging callbacks are not flagged: the call must be " +
		"lexically inside a loop of the offending scope.",
	Scope: []string{
		"cleandb/internal/engine",
		"cleandb/internal/cleaning",
		"cleandb/internal/physical",
		"cleandb/internal/incr",
		"cleandb/internal/sparksql",
		"cleandb/internal/bigdansing",
	},
	Run: run,
}

const textsimPkg = "cleandb/internal/textsim"

// comparatorFuncs are the package-level textsim comparators.
var comparatorFuncs = map[string]bool{
	"Levenshtein":       true,
	"LevenshteinWithin": true,
	"Similarity":        true,
	"SimilarAbove":      true,
	"Jaccard":           true,
	"JaroWinkler":       true,
}

// comparatorMethods maps receiver type -> method names that run (or memoize)
// a similarity metric.
var comparatorMethods = map[string]map[string]bool{
	"Metric":    {"Sim": true, "Above": true},
	"PairCache": {"Sim": true, "Above": true},
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		lintutil.FuncScopes(file, func(name string, body *ast.BlockStmt, decl ast.Node) {
			checkScope(pass, body)
		})
	}
	return nil, nil
}

// checkScope flags the outermost loop around each uncharged comparator call
// in one function scope (nested function literals are separate scopes).
func checkScope(pass *analysis.Pass, body *ast.BlockStmt) {
	if chargesMetrics(pass, body) {
		return
	}
	reported := map[ast.Node]bool{}
	var loops []ast.Node
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
			for _, c := range children(n) {
				ast.Inspect(c, walk)
			}
			loops = loops[:len(loops)-1]
			return false
		case *ast.CallExpr:
			if len(loops) > 0 && isComparator(pass, x) && !reported[loops[0]] {
				reported[loops[0]] = true
				pass.Reportf(loops[0].Pos(),
					"loop runs textsim comparisons but %q never charges engine.Metrics (AddComparisons or a logged stage); the cost model under-counts this operator",
					scopeLabel(pass, body))
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// children returns the walkable parts of a loop node (init/cond/post/body or
// key/value/x/body), so the loop-stack depth stays accurate during traversal.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	switch l := n.(type) {
	case *ast.ForStmt:
		for _, c := range []ast.Node{l.Init, l.Cond, l.Post, l.Body} {
			if c != nil {
				out = append(out, c)
			}
		}
	case *ast.RangeStmt:
		for _, c := range []ast.Node{l.X, l.Body} {
			if c != nil {
				out = append(out, c)
			}
		}
	}
	return out
}

// chargesMetrics reports whether the scope contains a charge to the cost
// model: Metrics.AddComparisons, the budget-checked per-candidate
// Context.ChargeComparisons, the stage ledger (Metrics.logStage), or the
// budget-overflow saturation helper.
func chargesMetrics(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	lintutil.InspectScope(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		fn := lintutil.Callee(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		const enginePkg = "cleandb/internal/engine"
		if lintutil.IsMethod(fn, enginePkg, "Metrics", "AddComparisons") ||
			lintutil.IsMethod(fn, enginePkg, "Metrics", "logStage") ||
			lintutil.IsMethod(fn, enginePkg, "Context", "ChargeComparisons") ||
			lintutil.IsFunc(fn, enginePkg, "chargeBudgetOverflow") {
			found = true
			return false
		}
		return true
	})
	return found
}

// isComparator reports whether call invokes a textsim similarity primitive.
func isComparator(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := lintutil.Callee(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if comparatorFuncs[fn.Name()] && lintutil.IsFunc(fn, textsimPkg, fn.Name()) {
		return true
	}
	for recv, methods := range comparatorMethods {
		if methods[fn.Name()] && lintutil.IsMethod(fn, textsimPkg, recv, fn.Name()) {
			return true
		}
	}
	return false
}

// scopeLabel names the scope for diagnostics: the enclosing declared
// function when identifiable, else "this function literal".
func scopeLabel(pass *analysis.Pass, body *ast.BlockStmt) string {
	for _, file := range pass.Files {
		if file.Pos() <= body.Pos() && body.End() <= file.End() {
			var name string
			ast.Inspect(file, func(n ast.Node) bool {
				if fd, ok := n.(*ast.FuncDecl); ok && fd.Body != nil &&
					fd.Body.Pos() <= body.Pos() && body.End() <= fd.Body.End() {
					name = fd.Name.Name
				}
				return true
			})
			if name != "" {
				return name
			}
		}
	}
	return "this function literal"
}
