package experiments

// All runs the full experiment suite in paper order and returns the tables.
func All(s Scale) []*Table {
	var out []*Table
	out = append(out, Table3(s))
	out = append(out, Figure3(s))
	out = append(out, Figure4(s))
	out = append(out, Figure5(s))
	out = append(out, Table4(s))
	csv, colbin := Figure6(s)
	out = append(out, csv, colbin)
	out = append(out, Table5(s))
	out = append(out, TableR1(s))
	f7a, f7b := Figure7(s)
	out = append(out, f7a, f7b)
	out = append(out, Figure8a(s))
	out = append(out, Figure8b(s))
	return out
}

// Ablations runs the ablation suite.
func Ablations(s Scale) []*Table {
	return []*Table{
		AblationSkewShuffle(s),
		AblationThetaJoin(s),
		AblationNestCoalescing(s),
		AblationNormalization(s),
		AblationBlocking(s),
		AblationNormalizationRules(),
	}
}
