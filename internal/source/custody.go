package source

import (
	"bytes"
	"context"
	"fmt"
	"sync"

	"cleandb/internal/data"
	"cleandb/internal/types"
)

// Partition-custody scans. A ScanPlan exposes a source's partition layout —
// exactly the chunks Scan would produce — without parsing anything, so a
// cluster member can parse only the chunks it owns and receive the rest from
// peers through the exchange. The contract that makes the gathered dataset
// bit-identical to a single-process Scan: Chunks/chunk boundaries are a pure
// function of the bytes and the partition count, Build(i) returns exactly the
// rows Scan would have placed in partition i, and Finish applies whatever
// whole-scan postprocessing Scan performs (CSV tail-state recording, JSON
// empty-partition dropping) to the reassembled whole.
//
// CSV needs a vote round first: column types are inferred globally, so each
// member votes types for its owned chunks (NeedsVote/Vote), the votes cross
// the exchange, and SetTypes installs the merged result before any Build.
type ScanPlan interface {
	// Chunks is the number of ordered partitions the scan produces.
	Chunks() int
	// ChunkBytes is the input-byte cost of building chunk i — what a member
	// that owns the chunk must parse (or decode) from the source.
	ChunkBytes(i int) int64
	// NeedsVote reports whether a type-vote round must precede Build.
	NeedsVote() bool
	// Vote parses chunk i's raw cells and returns its column-type votes.
	Vote(ctx context.Context, i int) ([]data.ColVote, error)
	// SetTypes installs the merged global votes; required before Build when
	// NeedsVote, ignored otherwise.
	SetTypes(votes []data.ColVote) error
	// Build returns chunk i's rows, typed exactly as Scan would type them.
	Build(ctx context.Context, i int) ([]types.Value, error)
	// Finish postprocesses the fully reassembled partition vector (owned
	// chunks built locally, the rest gathered from peers) and records any
	// tail-scan state, completing the custody scan's equivalence to Scan.
	Finish(full [][]types.Value) ([][]types.Value, error)
}

// PartitionedScanner is implemented by sources whose Scan can be divided by
// partition custody. Sources without it are scanned replicated — every member
// parses the whole input — which stays deterministic, just not divided.
type PartitionedScanner interface {
	Source
	PlanScan(ctx context.Context, parts int) (ScanPlan, error)
}

// ---- CSV ----

// csvPlan mirrors scanCSV's three phases with per-chunk granularity: raw
// cells parse lazily per owned chunk (cached between the vote and build
// phases, and re-parsed on demand when custody reassignment adopts a chunk
// after the vote round), types arrive via SetTypes instead of local
// inference, and Finish installs the tail state Scan would have recorded.
type csvPlan struct {
	s           *CSV
	buf         []byte
	header      []string
	schema      *types.Schema
	headerLines int
	hEnd        int
	chunks      [][]byte
	baseLines   []int

	mu       sync.Mutex
	raw      map[int][][]string
	colTypes []data.ColType
	voted    []bool
}

// PlanScan implements PartitionedScanner. The chunk layout is byte-for-byte
// the one Scan(ctx, parts) uses.
func (s *CSV) PlanScan(ctx context.Context, parts int) (ScanPlan, error) {
	if parts < 1 {
		parts = 1
	}
	buf, err := s.src.bytes()
	if err != nil {
		return nil, err
	}
	p := &csvPlan{s: s, buf: buf, raw: make(map[int][][]string)}
	if len(buf) == 0 {
		return p, nil
	}
	header, hEnd, err := csvHeader(buf)
	if err != nil {
		return nil, err
	}
	if header == nil { // io.EOF: blank input
		return p, nil
	}
	p.header = header
	p.schema = types.NewSchema(header...)
	p.hEnd = hEnd
	p.headerLines = bytes.Count(buf[:hEnd], []byte{'\n'})
	p.chunks, p.baseLines = splitCSVBody(buf[hEnd:], parts)
	return p, nil
}

func (p *csvPlan) Chunks() int { return len(p.chunks) }

func (p *csvPlan) ChunkBytes(i int) int64 {
	n := int64(len(p.chunks[i]))
	if i == 0 {
		n += int64(p.hEnd) // the owner of chunk 0 also parsed the header
	}
	return n
}

func (p *csvPlan) NeedsVote() bool { return true }

func (p *csvPlan) Vote(ctx context.Context, i int) ([]data.ColVote, error) {
	raw, err := p.rawChunk(ctx, i)
	if err != nil {
		return nil, err
	}
	ts, voted := data.InferColumnTypesSeen([][][]string{raw}, len(p.header))
	return data.ColVotes(ts, voted), nil
}

func (p *csvPlan) SetTypes(votes []data.ColVote) error {
	if len(votes) != len(p.header) {
		return fmt.Errorf("source: csv: %d type votes for %d columns", len(votes), len(p.header))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.colTypes = make([]data.ColType, len(votes))
	p.voted = make([]bool, len(votes))
	for c, v := range votes {
		p.colTypes[c], p.voted[c] = v.Type, v.Voted
	}
	return nil
}

func (p *csvPlan) Build(ctx context.Context, i int) ([]types.Value, error) {
	p.mu.Lock()
	colTypes := p.colTypes
	p.mu.Unlock()
	if colTypes == nil {
		return nil, fmt.Errorf("source: csv: build before type votes merged")
	}
	raw, err := p.rawChunk(ctx, i)
	if err != nil {
		return nil, err
	}
	rows := buildCSVRows(raw, p.header, p.schema, colTypes)
	p.mu.Lock()
	delete(p.raw, i) // built chunks never re-vote; adoption re-parses
	p.mu.Unlock()
	return rows, nil
}

func (p *csvPlan) Finish(full [][]types.Value) ([][]types.Value, error) {
	if len(p.buf) == 0 || p.header == nil {
		return full, nil // blank input: Scan records no state either
	}
	p.mu.Lock()
	colTypes, voted := p.colTypes, p.voted
	p.mu.Unlock()
	if colTypes == nil {
		if len(p.chunks) > 0 {
			return nil, fmt.Errorf("source: csv: finish before type votes merged")
		}
		// Header-only input: no chunks voted, so no vote round ran; default
		// every column exactly as inference over zero chunks would.
		colTypes, voted = data.InferColumnTypesSeen(nil, len(p.header))
	}
	p.s.mu.Lock()
	p.s.state = &csvState{
		header:   p.header,
		schema:   p.schema,
		colTypes: colTypes,
		voted:    voted,
		consumed: int64(len(p.buf)),
	}
	p.s.mu.Unlock()
	return full, nil
}

// rawChunk parses chunk i's raw cells, caching the result between the vote
// and build phases. Errors are rebased to absolute file line numbers exactly
// as scanCSV's phase 1 does.
func (p *csvPlan) rawChunk(ctx context.Context, i int) ([][]string, error) {
	p.mu.Lock()
	rows, ok := p.raw[i]
	p.mu.Unlock()
	if ok {
		return rows, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rows, err := parseCSVChunk(p.chunks[i], p.headerLines+p.baseLines[i])
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.raw[i] = rows
	p.mu.Unlock()
	return rows, nil
}

// ---- JSON ----

// jsonPlan defers the whole-scan parts of JSON's Scan to Finish: the state
// install and the empty-partition drop both need every chunk, so under
// custody they run on the gathered vector.
type jsonPlan struct {
	s          *JSON
	buf        []byte
	chunks     [][]byte
	firstLines []int
	cache      *data.SchemaCache
}

// PlanScan implements PartitionedScanner with Scan's exact line-boundary
// chunking.
func (s *JSON) PlanScan(ctx context.Context, parts int) (ScanPlan, error) {
	if parts < 1 {
		parts = 1
	}
	buf, err := s.src.bytes()
	if err != nil {
		return nil, err
	}
	chunks, firstLines := splitLines(buf, parts)
	return &jsonPlan{s: s, buf: buf, chunks: chunks, firstLines: firstLines, cache: data.NewSchemaCache()}, nil
}

func (p *jsonPlan) Chunks() int                   { return len(p.chunks) }
func (p *jsonPlan) ChunkBytes(i int) int64        { return int64(len(p.chunks[i])) }
func (p *jsonPlan) NeedsVote() bool               { return false }
func (p *jsonPlan) SetTypes([]data.ColVote) error { return nil }

func (p *jsonPlan) Vote(context.Context, int) ([]data.ColVote, error) {
	return nil, fmt.Errorf("source: json: scans do not vote")
}

func (p *jsonPlan) Build(ctx context.Context, i int) ([]types.Value, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return data.ReadJSONChunk(p.chunks[i], p.firstLines[i], p.cache)
}

func (p *jsonPlan) Finish(full [][]types.Value) ([][]types.Value, error) {
	p.s.mu.Lock()
	p.s.state = &jsonState{cache: p.cache, consumed: int64(len(p.buf)), lines: bytes.Count(p.buf, []byte{'\n'})}
	p.s.mu.Unlock()
	// Scan drops whitespace-only partitions after parsing; the custody scan
	// drops them after the gather, preserving partition-count equivalence.
	kept := full[:0]
	for _, part := range full {
		if len(part) > 0 {
			kept = append(kept, part)
		}
	}
	return kept, nil
}

// ---- colbin ----

// colbinPlan reads only the header up front (row count and column names come
// from a bounded prefix), then decodes the column chunks lazily on the first
// owned Build. A member owning no chunks of a colbin source therefore loads
// O(header) bytes, and ChunkBytes charges each row range its proportional
// share of the file.
type colbinPlan struct {
	s      *Colbin
	rows   int
	size   int64
	per    int
	nparts int

	once   sync.Once
	schema *types.Schema
	cols   [][]types.Value
	err    error
}

// PlanScan implements PartitionedScanner with Scan's exact row-range
// partitioning.
func (s *Colbin) PlanScan(ctx context.Context, parts int) (ScanPlan, error) {
	if parts < 1 {
		parts = 1
	}
	_, rows64, err := s.header()
	if err != nil {
		return nil, err
	}
	rows := int(rows64)
	p := &colbinPlan{s: s, rows: rows, size: s.src.sizeBytes()}
	if rows == 0 {
		return p, nil
	}
	p.per = (rows + parts - 1) / parts
	p.nparts = (rows + p.per - 1) / p.per
	return p, nil
}

func (p *colbinPlan) Chunks() int { return p.nparts }

func (p *colbinPlan) ChunkBytes(i int) int64 {
	lo, hi := p.span(i)
	return p.size * int64(hi-lo) / int64(p.rows)
}

func (p *colbinPlan) span(i int) (lo, hi int) {
	lo = i * p.per
	hi = lo + p.per
	if hi > p.rows {
		hi = p.rows
	}
	return lo, hi
}

func (p *colbinPlan) NeedsVote() bool               { return false }
func (p *colbinPlan) SetTypes([]data.ColVote) error { return nil }

func (p *colbinPlan) Vote(context.Context, int) ([]data.ColVote, error) {
	return nil, fmt.Errorf("source: colbin: scans do not vote")
}

func (p *colbinPlan) Build(ctx context.Context, i int) ([]types.Value, error) {
	if err := p.decode(ctx); err != nil {
		return nil, err
	}
	lo, hi := p.span(i)
	vals := make([]types.Value, hi-lo)
	ncols := len(p.cols)
	for r := lo; r < hi; r++ {
		fields := make([]types.Value, ncols)
		for c := range p.cols {
			fields[c] = p.cols[c][r]
		}
		vals[r-lo] = types.NewRecord(p.schema, fields)
	}
	return vals, nil
}

// decode indexes the file and decodes every column, once, on the first owned
// Build. Columns span all rows, so chunk custody for colbin divides row
// assembly and lets chunk-less members skip the body entirely, but an owner
// of any chunk decodes whole columns.
func (p *colbinPlan) decode(ctx context.Context) error {
	p.once.Do(func() {
		info, err := p.s.index()
		if err != nil {
			p.err = err
			return
		}
		ncols := len(info.Names)
		cols := make([][]types.Value, ncols)
		p.err = runParallel(ctx, ncols, p.nparts, func(c int) error {
			vals, err := info.DecodeColumn(c)
			if err != nil {
				return err
			}
			cols[c] = vals
			return nil
		})
		if p.err == nil {
			p.schema = types.NewSchema(info.Names...)
			p.cols = cols
		}
	})
	return p.err
}

func (p *colbinPlan) Finish(full [][]types.Value) ([][]types.Value, error) { return full, nil }
