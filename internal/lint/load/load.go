// Package load type-checks Go packages for the cleanlint analyzers without
// golang.org/x/tools: it shells out to `go list -export` for package layout
// and compiled export data, parses the target packages' sources, and
// type-checks them with the standard library's gc-export-data importer. The
// result is the same (Fset, Files, Pkg, TypesInfo) quadruple an
// analysis.Pass needs.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Packages loads and type-checks the packages matching patterns (e.g.
// "./..."), resolving their dependencies from compiled export data. dir is
// the directory the patterns are relative to (the module root, typically).
func Packages(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	out, err := runGo(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(t.ImportPath, t.Dir, t.GoFiles, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// FixturePackage type-checks the fixture sources in dir as the package
// importPath. Imports — standard library and this module's real packages
// alike — resolve from compiled export data, so fixtures exercise the
// analyzers against the real engine/data/sink types.
func FixturePackage(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}
	sort.Strings(files)
	imports, err := scanImports(dir, files)
	if err != nil {
		return nil, err
	}
	exports, err := exportDataFor(imports)
	if err != nil {
		return nil, err
	}
	return checkPackage(importPath, dir, files, exports)
}

// CheckFiles type-checks an explicit file list as importPath, resolving
// imports from the given export-data map (import path -> export file). File
// names are joined to dir; absolute names may be passed with an empty dir.
// This is the entry point for the `go vet -vettool` protocol, where the vet
// driver hands cleanlint the file list and import map directly.
func CheckFiles(importPath, dir string, goFiles []string, exports map[string]string) (*Package, error) {
	return checkPackage(importPath, dir, goFiles, exports)
}

func checkPackage(importPath, dir string, goFiles []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, gf := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, gf), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath, Dir: dir,
		Fset: fset, Files: files, Pkg: pkg, TypesInfo: info,
	}, nil
}

// scanImports collects the import paths named by the given files.
func scanImports(dir string, goFiles []string) ([]string, error) {
	fset := token.NewFileSet()
	seen := map[string]bool{}
	for _, gf := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, gf), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p != "unsafe" && p != "C" {
				seen[p] = true
			}
		}
	}
	paths := make([]string, 0, len(seen))
	for p := range seen {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths, nil
}

var (
	exportMu    sync.Mutex
	exportCache = map[string]string{} // import path -> export data file
)

// exportDataFor resolves export data files for the given import paths (and
// their transitive dependencies), caching across calls — fixture tests load
// many small packages with overlapping imports.
func exportDataFor(paths []string) (map[string]string, error) {
	exportMu.Lock()
	defer exportMu.Unlock()
	var missing []string
	for _, p := range paths {
		if _, ok := exportCache[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		dir, err := ModuleDir()
		if err != nil {
			return nil, err
		}
		args := append([]string{"list", "-e", "-export", "-deps", "-json"}, missing...)
		out, err := runGo(dir, args...)
		if err != nil {
			return nil, err
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p listPkg
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				exportCache[p.ImportPath] = p.Export
			}
		}
	}
	res := make(map[string]string, len(exportCache))
	for k, v := range exportCache {
		res[k] = v
	}
	return res, nil
}

var (
	modOnce sync.Once
	modDir  string
	modErr  error
)

// ModuleDir locates the enclosing module root (the directory of go.mod).
func ModuleDir() (string, error) {
	modOnce.Do(func() {
		out, err := runGo("", "env", "GOMOD")
		if err != nil {
			modErr = err
			return
		}
		gomod := strings.TrimSpace(string(out))
		if gomod == "" || gomod == os.DevNull {
			modErr = fmt.Errorf("load: not inside a module")
			return
		}
		modDir = filepath.Dir(gomod)
	})
	return modDir, modErr
}

func runGo(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}
