// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics.
//
// The container this repository builds in has no module proxy access, so the
// real x/tools framework cannot be pulled in; this package mirrors its shape
// (Analyzer{Name, Doc, Run}, Pass{Fset, Files, Pkg, TypesInfo, Report}) so
// the cleanlint analyzers would port to the upstream API mechanically if the
// dependency ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:ignore
	// suppression comments. Lower-case, no spaces.
	Name string

	// Doc states the invariant the analyzer enforces. The first line is the
	// short summary shown by cleanlint -list.
	Doc string

	// Scope restricts the analyzer to packages whose import path matches one
	// of the entries (exact match, or prefix match when the entry ends with
	// "/..."). An empty Scope means every package is analyzed.
	Scope []string

	// Run performs the check on one package and reports findings through
	// pass.Report. The returned value is unused (kept for upstream parity).
	Run func(pass *Pass) (interface{}, error)
}

// AppliesTo reports whether the analyzer's Scope admits the package path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, s := range a.Scope {
		if prefix, ok := cutSuffix(s, "/..."); ok {
			if pkgPath == prefix || hasPathPrefix(pkgPath, prefix) {
				return true
			}
		} else if pkgPath == s {
			return true
		}
	}
	return false
}

func cutSuffix(s, suffix string) (string, bool) {
	if len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix {
		return s[:len(s)-len(suffix)], true
	}
	return s, false
}

func hasPathPrefix(path, prefix string) bool {
	return len(path) > len(prefix)+1 && path[:len(prefix)] == prefix && path[len(prefix)] == '/'
}

// Pass carries one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Drivers install it; analyzers call it
	// (usually via Reportf).
	Report func(Diagnostic)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// Inspect walks every file of the pass in depth-first order, calling f for
// each node; f returning false prunes the subtree (ast.Inspect semantics).
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}
