// Quickstart: the CleanM paper's running example on a small in-memory
// customer table — one query that validates names against a dictionary,
// checks a functional dependency, and detects duplicates, optimized and
// executed as a single task.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cleandb"
)

func main() {
	db := cleandb.Open(cleandb.WithWorkers(4))

	custSchema := cleandb.NewSchema("name", "address", "phone", "nationkey")
	cust := func(name, address, phone string, nation int64) cleandb.Value {
		return cleandb.NewRecord(custSchema, []cleandb.Value{
			cleandb.String(name), cleandb.String(address),
			cleandb.String(phone), cleandb.Int(nation),
		})
	}
	db.RegisterRows("customer", []cleandb.Value{
		cust("alice smith", "12 oak st", "111-555-0001", 1),
		cust("alicia smith", "12 oak st", "222-555-0002", 1), // same address, other phone prefix
		cust("bob jones", "7 elm ave", "333-555-0003", 2),
		cust("krol davis", "9 pine rd", "444-555-0004", 3), // misspelled carol
		cust("dave wilson", "1 fir ln", "555-555-0005", 4),
	})

	dictSchema := cleandb.NewSchema("term")
	var dict []cleandb.Value
	for _, name := range []string{"alice smith", "alicia smith", "bob jones", "carol davis", "dave wilson"} {
		dict = append(dict, cleandb.NewRecord(dictSchema, []cleandb.Value{cleandb.String(name)}))
	}
	db.RegisterRows("dictionary", dict)

	// The paper's running example (§1): validate names, check the FD
	// address → prefix(phone), and find duplicate customers.
	query := `
SELECT c.name, c.address, *
FROM customer c, dictionary d
FD(c.address, prefix(c.phone))
DEDUP(token_filtering, LD, 0.6, c.name)
CLUSTER BY(token_filtering, LD, 0.7, c.name)`

	explain, err := db.Explain(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== three-level EXPLAIN ===")
	fmt.Println(explain)

	res, err := db.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== entities with at least one violation ===")
	for _, row := range res.Rows() {
		fmt.Printf("entity %s\n", row.Field("entity"))
		for _, task := range []string{"fd1", "dedup1", "clusterby1"} {
			if vs := row.Field(task).List(); len(vs) > 0 {
				fmt.Printf("  %-10s %d violation(s), e.g. %s\n", task, len(vs), vs[0])
			}
		}
	}

	m := db.Metrics()
	fmt.Printf("\ncost: %d simulated ticks, %d comparisons, %d records shuffled\n",
		m.SimTicks, m.Comparisons, m.ShuffledRecords)
}
