package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"cleandb/internal/lint"
	"cleandb/internal/lint/load"
)

// TestSuppression checks the //lint:ignore contract end to end: a justified
// ignore on the flagged line or the line above suppresses the diagnostic, an
// ignore without a justification suppresses nothing and is itself reported.
func TestSuppression(t *testing.T) {
	pkg, err := load.FixturePackage(
		filepath.Join("testdata", "src", "suppressfixture"), "suppressfixture")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := lint.Check([]*load.Package{pkg})
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer)
	}
	// Survivors: the unsuppressed violation, the violation whose ignore had
	// no justification, and the malformed-ignore report itself.
	want := map[string]int{"dictcode": 2, "lint": 1}
	have := map[string]int{}
	for _, a := range got {
		have[a]++
	}
	if len(have) != len(want) || have["dictcode"] != want["dictcode"] || have["lint"] != want["lint"] {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("diagnostics by analyzer = %v, want %v", have, want)
	}
	for _, d := range diags {
		if d.Analyzer == "lint" && !strings.Contains(d.Message, "justification") {
			t.Errorf("malformed-ignore diagnostic should demand a justification, got %q", d.Message)
		}
	}
}

// TestByName spot-checks the registry.
func TestByName(t *testing.T) {
	if len(lint.Analyzers) != 5 {
		t.Fatalf("suite has %d analyzers, want 5", len(lint.Analyzers))
	}
	for _, name := range []string{"metricscharge", "ctxcancel", "dictcode", "sinkrelease", "locksnapshot"} {
		if lint.ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if lint.ByName("nope") != nil {
		t.Errorf("ByName(nope) should be nil")
	}
}

// TestSelfCheck runs the whole suite over the repository: the tree must stay
// clean — violations are either fixed or carry a justified //lint:ignore.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	dir, err := load.ModuleDir()
	if err != nil {
		t.Fatalf("locating module: %v", err)
	}
	diags, err := lint.CheckPatterns(dir, "./...")
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
