package algebra

import (
	"strings"
	"testing"

	"cleandb/internal/monoid"
)

func testLowerer() *Lowerer {
	sources := map[string]bool{"customer": true, "orders": true, "dict": true, UnitSource: true}
	return &Lowerer{IsSource: func(name string) bool { return sources[name] }}
}

func lower(t *testing.T, c *monoid.Comprehension) Plan {
	t.Helper()
	p, err := testLowerer().Lower(c)
	if err != nil {
		t.Fatalf("Lower(%s): %v", c, err)
	}
	return p
}

func TestLowerSimpleScanFilterReduce(t *testing.T) {
	// bag{ c.name | c ← customer, c.age > 3 }
	c := &monoid.Comprehension{
		M:    monoid.Bag,
		Head: monoid.F(monoid.V("c"), "name"),
		Quals: []monoid.Qual{
			&monoid.Generator{Var: "c", Source: monoid.V("customer")},
			&monoid.Pred{Cond: monoid.Gt(monoid.F(monoid.V("c"), "age"), monoid.CInt(3))},
		},
	}
	p := lower(t, c)
	r, ok := p.(*Reduce)
	if !ok {
		t.Fatalf("root should be Reduce, got %T", p)
	}
	s, ok := r.Child.(*Select)
	if !ok {
		t.Fatalf("child should be Select, got %T", r.Child)
	}
	if _, ok := s.Child.(*Scan); !ok {
		t.Fatalf("grandchild should be Scan, got %T", s.Child)
	}
}

func TestLowerJoinExtraction(t *testing.T) {
	// bag{ (c,o) | c ← customer, o ← orders, c.id == o.cid }: the equality
	// must become an equi-join, not a post-filter over a cross product.
	c := &monoid.Comprehension{
		M:    monoid.Bag,
		Head: &monoid.ListCtor{Elems: []monoid.Expr{monoid.V("c"), monoid.V("o")}},
		Quals: []monoid.Qual{
			&monoid.Generator{Var: "c", Source: monoid.V("customer")},
			&monoid.Generator{Var: "o", Source: monoid.V("orders")},
			&monoid.Pred{Cond: monoid.Eq(monoid.F(monoid.V("c"), "id"), monoid.F(monoid.V("o"), "cid"))},
		},
	}
	p := lower(t, c)
	var join *Join
	var walk func(Plan)
	walk = func(pl Plan) {
		if j, ok := pl.(*Join); ok {
			join = j
		}
		for _, ch := range pl.Children() {
			walk(ch)
		}
	}
	walk(p)
	if join == nil {
		t.Fatalf("no join in plan:\n%s", Explain(p))
	}
	if len(join.LeftKeys) != 1 {
		t.Fatalf("equality should become a join key:\n%s", Explain(p))
	}
}

func TestLowerThetaJoin(t *testing.T) {
	// Inequality between two sources → theta join.
	c := &monoid.Comprehension{
		M:    monoid.Bag,
		Head: monoid.V("c"),
		Quals: []monoid.Qual{
			&monoid.Generator{Var: "c", Source: monoid.V("customer")},
			&monoid.Generator{Var: "o", Source: monoid.V("orders")},
			&monoid.Pred{Cond: monoid.Lt(monoid.F(monoid.V("c"), "v"), monoid.F(monoid.V("o"), "v"))},
		},
	}
	p := lower(t, c)
	found := false
	var walk func(Plan)
	walk = func(pl Plan) {
		if j, ok := pl.(*Join); ok && j.Theta != nil && len(j.LeftKeys) == 0 {
			found = true
		}
		for _, ch := range pl.Children() {
			walk(ch)
		}
	}
	walk(p)
	if !found {
		t.Fatalf("inequality should become a theta join:\n%s", Explain(p))
	}
}

func TestLowerUnnest(t *testing.T) {
	// bag{ a | p ← customer, a ← p.authors }
	c := &monoid.Comprehension{
		M:    monoid.Bag,
		Head: monoid.V("a"),
		Quals: []monoid.Qual{
			&monoid.Generator{Var: "p", Source: monoid.V("customer")},
			&monoid.Generator{Var: "a", Source: monoid.F(monoid.V("p"), "authors")},
		},
	}
	p := lower(t, c)
	r := p.(*Reduce)
	if _, ok := r.Child.(*Unnest); !ok {
		t.Fatalf("want Unnest, got %T:\n%s", r.Child, Explain(p))
	}
}

func TestLowerGroupBySubquery(t *testing.T) {
	// The FD pattern: generator over a groupby comprehension → Nest.
	grouping := &monoid.Comprehension{
		M: monoid.GroupBy{},
		Head: &monoid.RecordCtor{Names: []string{"key", "val"},
			Fields: []monoid.Expr{monoid.F(monoid.V("c"), "address"), monoid.V("c")}},
		Quals: []monoid.Qual{&monoid.Generator{Var: "c", Source: monoid.V("customer")}},
	}
	c := &monoid.Comprehension{
		M:    monoid.Bag,
		Head: monoid.F(monoid.V("g"), "key"),
		Quals: []monoid.Qual{
			&monoid.Generator{Var: "g", Source: grouping},
		},
	}
	p := lower(t, c)
	r := p.(*Reduce)
	n, ok := r.Child.(*Nest)
	if !ok {
		t.Fatalf("want Nest, got %T:\n%s", r.Child, Explain(p))
	}
	if n.As != "g" || len(n.Aggs) != 1 || n.Aggs[0].Name != "group" {
		t.Fatalf("nest shape wrong: %s", n)
	}
}

func TestLowerGroupingAtTopLevel(t *testing.T) {
	c := &monoid.Comprehension{
		M: monoid.GroupBy{},
		Head: &monoid.RecordCtor{Names: []string{"key", "val"},
			Fields: []monoid.Expr{monoid.F(monoid.V("c"), "k"), monoid.V("c")}},
		Quals: []monoid.Qual{&monoid.Generator{Var: "c", Source: monoid.V("customer")}},
	}
	p := lower(t, c)
	if _, ok := p.(*Nest); !ok {
		t.Fatalf("grouping comprehension lowers to Nest, got %T", p)
	}
}

func TestLowerUnknownSource(t *testing.T) {
	c := &monoid.Comprehension{
		M:     monoid.Bag,
		Head:  monoid.V("x"),
		Quals: []monoid.Qual{&monoid.Generator{Var: "x", Source: monoid.V("nosuch")}},
	}
	if _, err := testLowerer().Lower(c); err == nil {
		t.Fatal("unknown source should fail lowering")
	}
}

func TestLowerLetBecomesExtend(t *testing.T) {
	inner := &monoid.Comprehension{M: monoid.Sum, Head: monoid.V("y"),
		Quals: []monoid.Qual{&monoid.Generator{Var: "y", Source: monoid.V("orders")}}}
	c := &monoid.Comprehension{
		M:    monoid.Bag,
		Head: &monoid.BinOp{Op: "+", L: monoid.V("t"), R: monoid.V("t")},
		Quals: []monoid.Qual{
			&monoid.Generator{Var: "c", Source: monoid.V("customer")},
			&monoid.Let{Var: "t", E: inner},
		},
	}
	p := lower(t, c)
	found := false
	var walk func(Plan)
	walk = func(pl Plan) {
		if _, ok := pl.(*Extend); ok {
			found = true
		}
		for _, ch := range pl.Children() {
			walk(ch)
		}
	}
	walk(p)
	if !found {
		t.Fatalf("let should lower to Extend:\n%s", Explain(p))
	}
}

func TestRewriterFusesSelects(t *testing.T) {
	scan := &Scan{Source: "customer", Alias: "c"}
	p := &Select{Child: &Select{Child: scan, Pred: monoid.CBool(true)}, Pred: monoid.CBool(true)}
	rw := &Rewriter{}
	out := rw.Rewrite(p)
	s, ok := out.(*Select)
	if !ok {
		t.Fatalf("want Select root, got %T", out)
	}
	if _, ok := s.Child.(*Scan); !ok {
		t.Fatalf("selects not fused:\n%s", Explain(out))
	}
}

func TestShareUnifiesEqualSubplans(t *testing.T) {
	mkNest := func() Plan {
		return &Nest{
			Child: &Scan{Source: "customer", Alias: "c"},
			Keys:  []monoid.Expr{monoid.F(monoid.V("c"), "address")},
			Aggs:  []Aggregate{{Name: "group", M: monoid.Bag, Val: monoid.V("c")}},
			As:    "g",
		}
	}
	p1 := &Select{Child: mkNest(), Pred: monoid.CBool(true)}
	p2 := &Select{Child: mkNest(), Pred: monoid.CBool(false)}
	rw := &Rewriter{}
	out := rw.Share([]Plan{p1, p2})
	n1 := out[0].(*Select).Child
	n2 := out[1].(*Select).Child
	if n1 != n2 {
		t.Fatal("equal nests should be unified to one shared node")
	}
	if CountNodes(out...) != 4 { // scan, nest, 2 selects
		t.Fatalf("node count = %d, want 4", CountNodes(out...))
	}
}

func TestShareKeepsDifferentNests(t *testing.T) {
	n1 := &Nest{
		Child: &Scan{Source: "customer", Alias: "c"},
		Keys:  []monoid.Expr{monoid.F(monoid.V("c"), "address")},
		Aggs:  []Aggregate{{Name: "group", M: monoid.Bag, Val: monoid.V("c")}},
		As:    "g",
	}
	n2 := &Nest{
		Child: &Scan{Source: "customer", Alias: "c"},
		Keys:  []monoid.Expr{monoid.F(monoid.V("c"), "name")}, // different key
		Aggs:  []Aggregate{{Name: "group", M: monoid.Bag, Val: monoid.V("c")}},
		As:    "g",
	}
	rw := &Rewriter{}
	out := rw.Share([]Plan{n1, n2})
	if out[0] == out[1] {
		t.Fatal("different keys must not be coalesced")
	}
	// But the scan below must still be shared.
	if out[0].(*Nest).Child != out[1].(*Nest).Child {
		t.Fatal("common scan should be shared")
	}
}

func TestUnifiedBuildsCombineAll(t *testing.T) {
	p1 := &Scan{Source: "customer", Alias: "c"}
	p2 := &Scan{Source: "customer", Alias: "c"}
	rw := &Rewriter{}
	u := rw.Unified([]Plan{p1, p2},
		[]monoid.Expr{monoid.V("c"), monoid.V("c")},
		[]string{"a", "b"})
	ca, ok := u.(*CombineAll)
	if !ok {
		t.Fatalf("want CombineAll, got %T", u)
	}
	if ca.Inputs[0] != ca.Inputs[1] {
		t.Fatal("equal inputs should share")
	}
	if got := ca.Binds(); len(got) != 3 || got[0] != "entity" {
		t.Fatalf("binds = %v", got)
	}
}

func TestUnifiedUnsharedKeepsPlansSeparate(t *testing.T) {
	p1 := &Scan{Source: "customer", Alias: "c"}
	p2 := &Scan{Source: "customer", Alias: "c"}
	rw := &Rewriter{}
	u := rw.UnifiedUnshared([]Plan{p1, p2},
		[]monoid.Expr{monoid.V("c"), monoid.V("c")},
		[]string{"a", "b"})
	ca := u.(*CombineAll)
	if ca.Inputs[0] == ca.Inputs[1] {
		t.Fatal("unshared mode must not unify inputs")
	}
}

func TestPlanEqualAndEncode(t *testing.T) {
	a := &Select{Child: &Scan{Source: "s", Alias: "x"}, Pred: monoid.CBool(true)}
	b := &Select{Child: &Scan{Source: "s", Alias: "x"}, Pred: monoid.CBool(true)}
	c := &Select{Child: &Scan{Source: "s", Alias: "y"}, Pred: monoid.CBool(true)}
	if !PlanEqual(a, b) {
		t.Fatal("structurally equal plans should compare equal")
	}
	if PlanEqual(a, c) {
		t.Fatal("different aliases should not compare equal")
	}
	if Encode(a) != Encode(b) || Encode(a) == Encode(c) {
		t.Fatal("Encode must agree with PlanEqual")
	}
}

func TestExplainMarksSharing(t *testing.T) {
	scan := &Scan{Source: "s", Alias: "x"}
	j := &Join{Left: scan, Right: scan}
	out := Explain(j)
	if !strings.Contains(out, "shared node") {
		t.Fatalf("explain should mark shared nodes:\n%s", out)
	}
}

func TestSourcesOf(t *testing.T) {
	p := &Join{
		Left:  &Scan{Source: "b", Alias: "x"},
		Right: &Scan{Source: "a", Alias: "y"},
	}
	got := SourcesOf(p)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("SourcesOf = %v", got)
	}
}

func TestBindsPropagation(t *testing.T) {
	scan := &Scan{Source: "s", Alias: "c"}
	un := &Unnest{Child: scan, Path: monoid.F(monoid.V("c"), "xs"), As: "x"}
	if b := un.Binds(); len(b) != 2 || b[0] != "c" || b[1] != "x" {
		t.Fatalf("unnest binds = %v", b)
	}
	ext := &Extend{Child: un, Var: "y", E: monoid.CInt(1)}
	if b := ext.Binds(); len(b) != 3 || b[2] != "y" {
		t.Fatalf("extend binds = %v", b)
	}
	j := &Join{Left: scan, Right: &Scan{Source: "t", Alias: "d"}}
	if b := j.Binds(); len(b) != 2 || b[1] != "d" {
		t.Fatalf("join binds = %v", b)
	}
}
