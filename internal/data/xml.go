package data

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"cleandb/internal/types"
)

// ReadXML parses a two-level XML document — a root element containing one
// element per record, DBLP-style — into nested record values:
//
//	<dblp>
//	  <article key="a1">
//	    <title>...</title><journal>...</journal><year>2004</year>
//	    <author>X</author><author>Y</author>
//	  </article>
//	</dblp>
//
// Child elements that repeat become list fields (authors); attributes become
// fields; numeric text becomes ints/floats.
func ReadXML(r io.Reader) ([]types.Value, error) {
	dec := xml.NewDecoder(r)
	var out []types.Value
	depth := 0
	schemas := map[string]*types.Schema{}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("data: xml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			if depth == 2 {
				rec, err := readXMLRecord(dec, t, schemas)
				if err != nil {
					return nil, err
				}
				out = append(out, rec)
				depth--
			}
		case xml.EndElement:
			depth--
		}
	}
	return out, nil
}

// readXMLRecord consumes one record element (already started).
func readXMLRecord(dec *xml.Decoder, start xml.StartElement, schemas map[string]*types.Schema) (types.Value, error) {
	fields := map[string][]types.Value{}
	var order []string
	addField := func(name string, v types.Value) {
		if _, ok := fields[name]; !ok {
			order = append(order, name)
		}
		fields[name] = append(fields[name], v)
	}
	for _, attr := range start.Attr {
		addField(attr.Name.Local, parseScalar(attr.Value))
	}
	var curName string
	var text strings.Builder
	for {
		tok, err := dec.Token()
		if err != nil {
			return types.Null(), fmt.Errorf("data: xml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			curName = t.Name.Local
			text.Reset()
		case xml.CharData:
			if curName != "" {
				text.Write(t)
			}
		case xml.EndElement:
			if t.Name.Local == start.Name.Local {
				return buildXMLRecord(order, fields, schemas), nil
			}
			if curName == t.Name.Local && curName != "" {
				addField(curName, parseScalar(strings.TrimSpace(text.String())))
				curName = ""
			}
		}
	}
}

func buildXMLRecord(order []string, fields map[string][]types.Value, schemas map[string]*types.Schema) types.Value {
	sorted := append([]string(nil), order...)
	sort.Strings(sorted)
	key := fmt.Sprint(sorted)
	schema, ok := schemas[key]
	if !ok {
		schema = types.NewSchema(sorted...)
		schemas[key] = schema
	}
	vals := make([]types.Value, len(sorted))
	for i, n := range sorted {
		vs := fields[n]
		if len(vs) == 1 {
			vals[i] = vs[0]
		} else {
			vals[i] = types.ListOf(vs)
		}
	}
	return types.NewRecord(schema, vals)
}

func parseScalar(s string) types.Value {
	if s == "" {
		return types.Null()
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return types.Int(n)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return types.Float(f)
	}
	return types.String(s)
}

// WriteXML renders records as a two-level XML document with the given root
// and record element names. List fields emit one child element per entry.
func WriteXML(w io.Writer, rows []types.Value, root, recordName string) error {
	bw := &strings.Builder{}
	bw.WriteString("<" + root + ">\n")
	for _, row := range rows {
		rec := row.Record()
		if rec == nil {
			return fmt.Errorf("data: xml: rows must be records")
		}
		bw.WriteString("  <" + recordName + ">")
		for i, n := range rec.Schema.Names {
			writeXMLField(bw, n, rec.Fields[i])
		}
		bw.WriteString("</" + recordName + ">\n")
	}
	bw.WriteString("</" + root + ">\n")
	_, err := io.WriteString(w, bw.String())
	return err
}

func writeXMLField(sb *strings.Builder, name string, v types.Value) {
	switch v.Kind() {
	case types.KindNull:
	case types.KindList:
		for _, e := range v.List() {
			writeXMLField(sb, name, e)
		}
	default:
		sb.WriteString("<" + name + ">")
		xml.EscapeText(sb, []byte(v.String()))
		sb.WriteString("</" + name + ">")
	}
}

// Flatten turns records with list fields into multiple flat records — the
// relational-system practice the paper contrasts against (a publication with
// three authors becomes three rows). Only the first list field encountered
// is expanded; remaining list fields are joined into strings.
func Flatten(rows []types.Value) []types.Value {
	var out []types.Value
	schemaCache := map[*types.Schema]*types.Schema{}
	for _, row := range rows {
		rec := row.Record()
		if rec == nil {
			out = append(out, row)
			continue
		}
		listIdx := -1
		for i, f := range rec.Fields {
			if f.Kind() == types.KindList {
				listIdx = i
				break
			}
		}
		if listIdx == -1 {
			out = append(out, row)
			continue
		}
		schema := schemaCache[rec.Schema]
		if schema == nil {
			schema = types.NewSchema(rec.Schema.Names...)
			schemaCache[rec.Schema] = schema
		}
		for _, e := range rec.Fields[listIdx].List() {
			fields := make([]types.Value, len(rec.Fields))
			copy(fields, rec.Fields)
			fields[listIdx] = e
			for j := listIdx + 1; j < len(fields); j++ {
				if fields[j].Kind() == types.KindList {
					fields[j] = types.String(CellString(fields[j]))
				}
			}
			out = append(out, types.NewRecord(schema, fields))
		}
	}
	return out
}
