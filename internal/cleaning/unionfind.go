package cleaning

import "sort"

// UnionFind is a disjoint-set forest over string keys with path compression
// and union by rank. It is the transitive-closure machinery shared by
// duplicate clustering (DupClusters) and denial-constraint repair, where
// violations that touch a common tuple must be repaired together.
type UnionFind struct {
	parent map[string]string
	rank   map[string]int
}

// NewUnionFind returns an empty forest.
func NewUnionFind() *UnionFind {
	return &UnionFind{parent: map[string]string{}, rank: map[string]int{}}
}

// Find returns the representative of x's set, adding x as a singleton if it
// is unknown.
func (u *UnionFind) Find(x string) string {
	p, ok := u.parent[x]
	if !ok || p == x {
		u.parent[x] = x
		return x
	}
	root := u.Find(p)
	u.parent[x] = root
	return root
}

// Union merges the sets containing a and b.
func (u *UnionFind) Union(a, b string) {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// Groups returns the sets as sorted member lists, ordered by first member —
// a deterministic partition of every key ever passed to Find or Union.
func (u *UnionFind) Groups() [][]string {
	byRoot := map[string][]string{}
	for k := range u.parent {
		root := u.Find(k)
		byRoot[root] = append(byRoot[root], k)
	}
	out := make([][]string, 0, len(byRoot))
	for _, members := range byRoot {
		sort.Strings(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
