// Package metricsfixture exercises the metricscharge analyzer against the
// real engine and textsim packages.
package metricsfixture

import (
	"cleandb/internal/engine"
	"cleandb/internal/textsim"
)

// unchargedPairs runs a pairwise comparison nest and never charges the cost
// model: the outer loop is flagged.
func unchargedPairs(rows []string) int {
	n := 0
	for i := range rows { // want `never charges engine.Metrics`
		for j := i + 1; j < len(rows); j++ {
			if textsim.SimilarAbove(rows[i], rows[j], 0.9) {
				n++
			}
		}
	}
	return n
}

// chargedPairs does the same work but settles the bill with AddComparisons.
func chargedPairs(ctx *engine.Context, rows []string) int {
	n := 0
	var comparisons int64
	for i := range rows {
		for j := i + 1; j < len(rows); j++ {
			comparisons++
			if textsim.SimilarAbove(rows[i], rows[j], 0.9) {
				n++
			}
		}
	}
	ctx.Metrics().AddComparisons(comparisons)
	return n
}

// metricInLoop calls a Metric method per row without charging: flagged.
func metricInLoop(m textsim.Metric, rows []string, probe string) int {
	n := 0
	for _, r := range rows { // want `never charges engine.Metrics`
		if m.Above(probe, r, 0.8) {
			n++
		}
	}
	return n
}

// cachedPairs memoizes through a PairCache, which still runs the metric on a
// miss — it must be charged like a direct comparison: flagged.
func cachedPairs(cache *textsim.PairCache, codes []uint32, rows []string) int {
	n := 0
	for i := range rows { // want `never charges engine.Metrics`
		for j := i + 1; j < len(rows); j++ {
			if cache.Above(codes[i], codes[j], rows[i], rows[j]) {
				n++
			}
		}
	}
	return n
}

// oneShot compares outside any loop: constant work, not the analyzer's
// business.
func oneShot(a, b string) float64 {
	return textsim.Similarity(a, b)
}

// chargingClosure hands the loop to a function literal that charges for
// itself; the literal is its own scope and neither scope is flagged.
func chargingClosure(ctx *engine.Context, parts [][]string) {
	compare := func(rows []string) {
		var comparisons int64
		for i := range rows {
			for j := i + 1; j < len(rows); j++ {
				comparisons++
				_ = textsim.Levenshtein(rows[i], rows[j])
			}
		}
		ctx.Metrics().AddComparisons(comparisons)
	}
	for _, p := range parts {
		compare(p)
	}
}
