package dist

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"

	"cleandb/internal/data"
	"cleandb/internal/types"
)

// exchange.go holds the two engine.Exchange implementations: the
// coordinator's in-process seat at the barrier hub, and the worker's seat,
// which long-polls the coordinator's exchange endpoint over HTTP.

// voteStage reports whether a stage carries column-type votes rather than
// result rows; votes travel as the compact scan-vote frame.
func voteStage(stage string) bool {
	return strings.HasPrefix(stage, "scanvote/")
}

// encodeLocal encodes each computed slot's rows into a wire frame, picking
// the frame type by stage: scan-vote stages get the two-byte-per-column vote
// frame, everything else the general row frame.
func encodeLocal(stage string, local map[int][]types.Value) (map[int][]byte, error) {
	vote := voteStage(stage)
	frames := make(map[int][]byte, len(local))
	for slot, rows := range local {
		if vote {
			votes, err := data.VotesOfRows(rows)
			if err != nil {
				return nil, fmt.Errorf("dist: stage %s slot %d: %w", stage, slot, err)
			}
			frames[slot] = data.EncodeScanVoteFrame(votes)
			continue
		}
		frames[slot] = data.EncodeRowsFrame(rows)
	}
	return frames, nil
}

// decodeFull turns the barrier's full frame vector back into row slices,
// reusing the rows this node computed itself and decoding only the peers'
// frames — into this node's session dictionary, so string codes stay
// consistent with everything else the node has interned.
func decodeFull(stage string, frames [][]byte, local map[int][]types.Value, dict *data.Dict) ([][]types.Value, error) {
	vote := voteStage(stage)
	out := make([][]types.Value, len(frames))
	for i, frame := range frames {
		if rows, ok := local[i]; ok {
			out[i] = rows
			continue
		}
		if vote {
			votes, err := data.DecodeScanVoteFrame(frame)
			if err != nil {
				return nil, fmt.Errorf("dist: exchange slot %d: %w", i, err)
			}
			out[i] = data.VoteRows(votes)
			continue
		}
		rows, err := data.DecodeRowsFrame(frame, dict)
		if err != nil {
			return nil, fmt.Errorf("dist: exchange slot %d: %w", i, err)
		}
		out[i] = rows
	}
	return out, nil
}

// localExchange is the coordinator's seat at the barrier of one session.
type localExchange struct {
	s       *hubSession
	ctx     context.Context // the coordinator's own query context
	dict    *data.Dict
	custody bool // partitioned custody: scans divide like join slots
	// execSlots counts the masked join slots this node actually executed —
	// placement share plus reassigned extras. It is the real (not simulated)
	// measure of how the join work divided across the cluster. Custody scan
	// stages are excluded: chunk counts are tracked as owned partitions.
	execSlots atomic.Int64
	// custodyRescans counts scan chunks this node adopted from a dead peer
	// and re-parsed — the recovery cost of partitioned custody.
	custodyRescans atomic.Int64
}

func newLocalExchange(s *hubSession, ctx context.Context, custody bool) *localExchange {
	return &localExchange{s: s, ctx: ctx, dict: data.NewDict(), custody: custody}
}

func (x *localExchange) Mask(stage string, n int) []int {
	return stageSlots(stage, n, x.s.members[0], x.s.members)
}

func (x *localExchange) PartitionCustody() bool { return x.custody }

func (x *localExchange) Gather(stage string, n int, local map[int][]types.Value) ([][]types.Value, []int, error) {
	_, scan := scanSource(stage)
	if !scan {
		x.execSlots.Add(int64(len(local)))
	}
	frames, err := encodeLocal(stage, local)
	if err != nil {
		return nil, nil, err
	}
	full, extra, err := x.s.gather(x.ctx, x.s.members[0], stage, n, frames)
	if err != nil || len(extra) > 0 {
		if scan && len(extra) > 0 {
			x.custodyRescans.Add(int64(len(extra)))
		}
		return nil, extra, err
	}
	rows, err := decodeFull(stage, full, local, x.dict)
	return rows, nil, err
}

// remoteExchange is a worker's seat: every gather is a long-poll POST of the
// worker's slot frames to the coordinator, answered once the stage resolves.
type remoteExchange struct {
	client  *http.Client
	url     string // coordinator exchange endpoint
	session string
	self    string
	members []string
	ctx     context.Context // the fragment request's context
	dict    *data.Dict
	custody bool // partitioned custody: scans divide like join slots
	// execSlots mirrors localExchange's counter for this worker's share.
	execSlots atomic.Int64
	// custodyRescans mirrors localExchange's adopted-chunk counter.
	custodyRescans atomic.Int64
}

func (x *remoteExchange) Mask(stage string, n int) []int {
	return stageSlots(stage, n, x.self, x.members)
}

func (x *remoteExchange) PartitionCustody() bool { return x.custody }

func (x *remoteExchange) Gather(stage string, n int, local map[int][]types.Value) ([][]types.Value, []int, error) {
	_, scan := scanSource(stage)
	if !scan {
		x.execSlots.Add(int64(len(local)))
	}
	frames, err := encodeLocal(stage, local)
	if err != nil {
		return nil, nil, err
	}
	body, err := encodeExchangeRequest(
		exchangeHeader{Session: x.session, Self: x.self, Stage: stage, N: n},
		frames)
	if err != nil {
		return nil, nil, err
	}
	reply, err := x.post(body)
	if err != nil {
		return nil, nil, err
	}
	rep, full, err := decodeExchangeReply(reply)
	if err != nil {
		return nil, nil, err
	}
	switch rep.Status {
	case "extra":
		if scan {
			x.custodyRescans.Add(int64(len(rep.Extra)))
		}
		return nil, rep.Extra, nil
	case "full":
		if len(full) != n {
			return nil, nil, fmt.Errorf("dist: exchange reply carries %d frames, want %d", len(full), n)
		}
		rows, err := decodeFull(stage, full, local, x.dict)
		return rows, nil, err
	default:
		return nil, nil, fmt.Errorf("dist: exchange reply status %q", rep.Status)
	}
}

// post sends one gather long-poll, retrying once on a transport error. Any
// HTTP response — success or error status — is authoritative (the barrier is
// idempotent for resubmitted frames, so a retried submit is safe); only a
// dropped connection warrants the second attempt.
func (x *remoteExchange) post(body []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if err := x.ctx.Err(); err != nil {
			return nil, err
		}
		req, err := http.NewRequestWithContext(x.ctx, http.MethodPost, x.url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := x.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		reply, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("dist: exchange rejected: %s: %s", resp.Status, strings.TrimSpace(string(reply)))
		}
		return reply, nil
	}
	return nil, fmt.Errorf("dist: exchange transport failed after retry: %w", lastErr)
}
