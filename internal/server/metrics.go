package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// handleMetrics renders the Prometheus text exposition: the DB's cumulative
// engine counters, the plan cache's effectiveness, and the server's own
// request accounting. Everything here is a snapshot of counters the engine
// already keeps — the endpoint adds no bookkeeping of its own beyond the
// request counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var sb strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	m := s.db.Metrics()
	counter("cleandb_sim_ticks_total", "Deterministic cost-model time across all queries.", m.SimTicks)
	counter("cleandb_comparisons_total", "Pairwise similarity/predicate checks across all queries.", m.Comparisons)
	counter("cleandb_shuffled_records_total", "Records moved across the simulated network.", m.ShuffledRecords)
	counter("cleandb_shuffled_bytes_total", "Estimated bytes moved across the simulated network.", m.ShuffledBytes)

	counter("cleandb_batches_evaluated_total", "Column batches run through vectorized operator kernels.", m.BatchesEvaluated)
	counter("cleandb_dict_hits_total", "Load-time dictionary internings that found the string already encoded.", m.DictHits)
	counter("cleandb_dict_misses_total", "Load-time dictionary internings that admitted a new distinct string.", m.DictMisses)
	dictRate := 0.0
	if total := m.DictHits + m.DictMisses; total > 0 {
		dictRate = float64(m.DictHits) / float64(total)
	}
	gauge("cleandb_dict_hit_rate", "Fraction of dictionary internings served by an existing code.", dictRate)
	counter("cleandb_simcache_hits_total", "Similarity comparisons answered from the pair cache.", m.SimCacheHits)
	counter("cleandb_simcache_misses_total", "Similarity comparisons computed and memoized.", m.SimCacheMisses)
	if len(m.Strategies) > 0 {
		name := "cleandb_strategy_choices_total"
		fmt.Fprintf(&sb, "# HELP %s Physical strategy choices by the executor, by strategy name.\n# TYPE %s counter\n", name, name)
		keys := make([]string, 0, len(m.Strategies))
		for k := range m.Strategies {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, "%s{strategy=%q} %d\n", name, k, m.Strategies[k])
		}
	}

	cs := s.db.PlanCacheStats()
	counter("cleandb_plan_cache_hits_total", "Plan cache lookups served without re-planning.", cs.Hits)
	counter("cleandb_plan_cache_misses_total", "Plan cache lookups that re-planned.", cs.Misses)
	gauge("cleandb_plan_cache_entries", "Plans currently cached.", float64(cs.Entries))
	rate := 0.0
	if total := cs.Hits + cs.Misses; total > 0 {
		rate = float64(cs.Hits) / float64(total)
	}
	gauge("cleandb_plan_cache_hit_rate", "Fraction of plan lookups served from the cache.", rate)

	vs := s.db.ViewCacheStats()
	counter("cleandb_view_cache_hits_total", "Statements answered verbatim from a cached cleaning view.", vs.Hits)
	counter("cleandb_view_cache_delta_hits_total", "Statements answered from a cached view plus a delta pass over appended rows.", vs.DeltaHits)
	counter("cleandb_view_cache_misses_total", "View lookups that executed cold (view absent, disabled, or stale).", vs.Misses)
	gauge("cleandb_view_cache_entries", "Materialized cleaning views currently resident.", float64(vs.Entries))

	if infos := s.db.SourceInfos(); len(infos) > 0 {
		appends := "cleandb_source_appends_total"
		rowsAppended := "cleandb_source_appended_rows_total"
		fmt.Fprintf(&sb, "# HELP %s Append operations landed per source since its load.\n# TYPE %s counter\n", appends, appends)
		for _, info := range infos {
			fmt.Fprintf(&sb, "%s{source=%q} %d\n", appends, info.Name, info.Appends)
		}
		fmt.Fprintf(&sb, "# HELP %s Rows landed by appends per source since its load.\n# TYPE %s counter\n", rowsAppended, rowsAppended)
		for _, info := range infos {
			fmt.Fprintf(&sb, "%s{source=%q} %d\n", rowsAppended, info.Name, info.AppendedRows)
		}
	}

	name := "cleandb_queries_total"
	fmt.Fprintf(&sb, "# HELP %s Query executions by terminal status.\n# TYPE %s counter\n", name, name)
	fmt.Fprintf(&sb, "%s{status=\"ok\"} %d\n", name, s.qOK.Load())
	fmt.Fprintf(&sb, "%s{status=\"error\"} %d\n", name, s.qFailed.Load())
	fmt.Fprintf(&sb, "%s{status=\"canceled\"} %d\n", name, s.qCanceled.Load())
	fmt.Fprintf(&sb, "%s{status=\"rejected\"} %d\n", name, s.qRejected.Load())

	gauge("cleandb_queries_inflight", "Queries currently executing.", float64(s.inflight.Load()))
	if s.cfg.Coordinator != nil {
		counter("cleandb_cluster_sessions_total", "Distributed query sessions opened.", s.distSessions.Load())
		name := "cleandb_cluster_fragments_total"
		fmt.Fprintf(&sb, "# HELP %s Worker fragment executions by outcome.\n# TYPE %s counter\n", name, name)
		fmt.Fprintf(&sb, "%s{status=\"ok\"} %d\n", name, s.distFragOK.Load())
		fmt.Fprintf(&sb, "%s{status=\"error\"} %d\n", name, s.distFragFailed.Load())
		counter("cleandb_cluster_evictions_total", "Members evicted from sessions mid-query.", s.distEvictions.Load())
		alive := 0
		st := s.cfg.Coordinator.Status()
		for _, wk := range st.Workers {
			if wk.Alive {
				alive++
			}
		}
		gauge("cleandb_cluster_workers_alive", "Workers currently passing health probes.", float64(alive))
		gauge("cleandb_cluster_workers_registered", "Workers ever registered.", float64(len(st.Workers)))
		counter("cleandb_custody_rescan_total", "Scan chunks adopted from dead members and re-parsed.", st.CustodyRescans)
		ownedName := "cleandb_custody_owned_partitions"
		loadedName := "cleandb_custody_loaded_bytes"
		fmt.Fprintf(&sb, "# HELP %s Loaded source partitions per member under its custody share.\n# TYPE %s gauge\n", ownedName, ownedName)
		fmt.Fprintf(&sb, "%s{worker=\"c0\"} %d\n", ownedName, st.CoordinatorOwnedPartitions)
		for _, wk := range st.Workers {
			fmt.Fprintf(&sb, "%s{worker=%q} %d\n", ownedName, wk.ID, wk.OwnedPartitions)
		}
		fmt.Fprintf(&sb, "# HELP %s Input bytes parsed per member under its custody share.\n# TYPE %s gauge\n", loadedName, loadedName)
		fmt.Fprintf(&sb, "%s{worker=\"c0\"} %d\n", loadedName, st.CoordinatorLoadedBytes)
		for _, wk := range st.Workers {
			fmt.Fprintf(&sb, "%s{worker=%q} %d\n", loadedName, wk.ID, wk.LoadedBytes)
		}
	}
	s.stmtMu.Lock()
	open := len(s.stmts)
	s.stmtMu.Unlock()
	gauge("cleandb_statements_open", "Prepared statements currently held by handle.", float64(open))
	gauge("cleandb_sources", "Catalog entries (loaded and pending).", float64(len(s.db.Sources())))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(sb.String()))
}
