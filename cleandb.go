// Package cleandb is a unified scale-out data cleaning and querying engine —
// a Go reproduction of "CleanM: An Optimizable Query Language for Unified
// Scale-Out Data Cleaning" (Giannakopoulou et al., VLDB 2017).
//
// CleanDB exposes the CleanM language: SQL extended with FD, DEDUP, CLUSTER
// BY and DENIAL/REPAIR cleaning operators. Queries pass through three optimization
// levels — the monoid comprehension calculus, a nested relational algebra,
// and a skew-aware physical plan — and execute on a partitioned multi-worker
// runtime. A query with several cleaning operators is optimized as a whole:
// operators that group the data the same way share a single grouping pass,
// all operators share the input scan, and the violation sets are combined
// with one outer join.
//
// Quickstart:
//
//	db := cleandb.Open()
//	db.RegisterRows("customer", rows)
//	db.RegisterRows("dictionary", dict)
//	res, err := db.Query(`
//	    SELECT c.name, c.address, *
//	    FROM customer c, dictionary d
//	    FD(c.address, prefix(c.phone))
//	    DEDUP(token_filtering, LD, 0.8, c.address)
//	    CLUSTER BY(token_filtering, LD, 0.8, c.name)`)
package cleandb

import (
	"fmt"
	"io"
	"sort"

	"cleandb/internal/core"
	"cleandb/internal/data"
	"cleandb/internal/engine"
	"cleandb/internal/physical"
	"cleandb/internal/types"
)

// Value is a dynamically typed datum (null, bool, int, float, string, list
// or record). See the constructor helpers Null, Bool, Int, Float, String,
// List and NewRecord.
type Value = types.Value

// Schema maps record field names to positions.
type Schema = types.Schema

// Re-exported constructors for building rows programmatically.
var (
	// Null returns the null value.
	Null = types.Null
	// Bool wraps a bool.
	Bool = types.Bool
	// Int wraps an int64.
	Int = types.Int
	// Float wraps a float64.
	Float = types.Float
	// String wraps a string.
	String = types.String
	// List wraps values into a list value.
	List = types.List
	// NewSchema builds a record schema.
	NewSchema = types.NewSchema
	// NewRecord builds a record value over a schema.
	NewRecord = types.NewRecord
)

// Option configures Open.
type Option func(*DB)

// WithWorkers sets the simulated cluster width (default 8).
func WithWorkers(n int) Option {
	return func(db *DB) { db.ctx.Workers = n }
}

// WithComparisonBudget bounds pairwise comparisons per query; exceeding it
// aborts the query with an error (how the experiment suite reproduces the
// paper's DNF entries).
func WithComparisonBudget(n int64) Option {
	return func(db *DB) { db.ctx.CompBudget = n }
}

// WithStandaloneOps disables unified optimization: multiple cleaning
// operators in one query execute independently (baseline behaviour).
func WithStandaloneOps() Option {
	return func(db *DB) { db.unified = false }
}

// WithGroupStrategy overrides the grouping shuffle (ablation hooks).
func WithGroupStrategy(s physical.GroupStrategy) Option {
	return func(db *DB) { db.config.Group = s }
}

// WithThetaStrategy overrides the theta-join algorithm (ablation hooks).
func WithThetaStrategy(s physical.ThetaStrategy) Option {
	return func(db *DB) { db.config.Theta = s }
}

// DB is a CleanDB instance: a catalog of datasets plus the query pipeline.
type DB struct {
	ctx     *engine.Context
	catalog map[string]*engine.Dataset
	config  physical.Config
	unified bool
}

// Open creates a CleanDB instance.
func Open(opts ...Option) *DB {
	db := &DB{
		ctx:     engine.NewContext(8),
		catalog: map[string]*engine.Dataset{},
		unified: true,
	}
	for _, o := range opts {
		o(db)
	}
	return db
}

// RegisterRows adds an in-memory dataset to the catalog under name.
func (db *DB) RegisterRows(name string, rows []Value) {
	db.catalog[name] = engine.FromValues(db.ctx, rows)
}

// RegisterCSV loads a CSV source (header row, type-inferred columns).
func (db *DB) RegisterCSV(name string, r io.Reader) error {
	rows, err := data.ReadCSV(r)
	if err != nil {
		return err
	}
	db.RegisterRows(name, rows)
	return nil
}

// RegisterJSON loads a JSON-lines source (nested records supported).
func (db *DB) RegisterJSON(name string, r io.Reader) error {
	rows, err := data.ReadJSON(r)
	if err != nil {
		return err
	}
	db.RegisterRows(name, rows)
	return nil
}

// RegisterXML loads a two-level XML source (DBLP-style; repeated child
// elements become list fields).
func (db *DB) RegisterXML(name string, r io.Reader) error {
	rows, err := data.ReadXML(r)
	if err != nil {
		return err
	}
	db.RegisterRows(name, rows)
	return nil
}

// RegisterColbin loads a colbin (binary columnar) source.
func (db *DB) RegisterColbin(name string, r io.Reader) error {
	rows, err := data.ReadColbin(r)
	if err != nil {
		return err
	}
	db.RegisterRows(name, rows)
	return nil
}

// Sources lists the registered dataset names, sorted.
func (db *DB) Sources() []string {
	out := make([]string, 0, len(db.catalog))
	for n := range db.catalog {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Rows returns the records of a registered dataset.
func (db *DB) Rows(name string) ([]Value, error) {
	d, ok := db.catalog[name]
	if !ok {
		return nil, fmt.Errorf("cleandb: unknown source %q", name)
	}
	return d.Collect(), nil
}

// Result is a completed query.
type Result struct {
	inner *core.Result
}

// Rows returns the query's primary output records. For multi-operator
// cleaning queries this is the combined violation report (one record per
// entity with at least one violation); for single operators, the violation
// records; for plain queries, the projected rows.
func (r *Result) Rows() []Value { return r.inner.Rows() }

// TaskRows returns the output of the named cleaning operator task ("fd1",
// "dedup1", "clusterby1", or "query"). For unified queries the per-task
// violations are folded inside the combined records; use Rows instead.
func (r *Result) TaskRows(name string) []Value {
	for _, t := range r.inner.Tasks {
		if t.Name == name {
			return t.Output
		}
	}
	return nil
}

// TaskNames lists the cleaning tasks of the query in order.
func (r *Result) TaskNames() []string {
	out := make([]string, len(r.inner.Tasks))
	for i, t := range r.inner.Tasks {
		out[i] = t.Name
	}
	return out
}

// Explanation renders the three-level EXPLAIN (normalized comprehensions
// and the optimized algebraic DAG).
func (r *Result) Explanation() string { return r.inner.Explanation }

// RepairSummary reports the outcome of a REPAIR clause: the healed rows and
// the convergence statistics of the relaxation loop.
type RepairSummary = core.RepairSummary

// Repairs lists one summary per REPAIR clause executed by the query.
func (r *Result) Repairs() []*RepairSummary { return r.inner.Repairs() }

// RepairedRows returns the healed rows of the named source after the query's
// REPAIR clauses, or nil when the query repaired nothing in that source.
// Successive REPAIR clauses on one source compose, so the last summary holds
// the final rows. Re-register them (RegisterRows) to query the cleaned data.
func (r *Result) RepairedRows(source string) []Value {
	var rows []Value
	for _, s := range r.inner.Repairs() {
		if s.Source == source {
			rows = s.Rows
		}
	}
	return rows
}

// Query parses, optimizes and executes a CleanM statement.
func (db *DB) Query(q string) (*Result, error) {
	p := db.pipeline()
	res, err := p.Run(q)
	if err != nil {
		return nil, err
	}
	return &Result{inner: res}, nil
}

// Explain plans the query through all three levels and returns the EXPLAIN
// text without executing it.
func (db *DB) Explain(q string) (string, error) {
	p := db.pipeline()
	prep, err := p.Prepare(q)
	if err != nil {
		return "", err
	}
	return prep.Explain(), nil
}

func (db *DB) pipeline() *core.Pipeline {
	p := core.NewPipeline(db.ctx, db.catalog)
	p.Config = db.config
	p.Unified = db.unified
	return p
}

// Metrics reports the engine cost counters accumulated so far.
type Metrics struct {
	// SimTicks is the deterministic cost-model time (straggler-sensitive).
	SimTicks int64
	// Comparisons counts pairwise similarity/predicate checks.
	Comparisons int64
	// ShuffledRecords counts records moved across the simulated network.
	ShuffledRecords int64
	// ShuffledBytes estimates bytes moved across the simulated network.
	ShuffledBytes int64
}

// Metrics returns a snapshot of the engine cost counters.
func (db *DB) Metrics() Metrics {
	m := db.ctx.Metrics()
	return Metrics{
		SimTicks:        m.SimTicks(),
		Comparisons:     m.Comparisons(),
		ShuffledRecords: m.ShuffledRecords(),
		ShuffledBytes:   m.ShuffledBytes(),
	}
}

// ResetMetrics clears the engine cost counters.
func (db *DB) ResetMetrics() { db.ctx.Metrics().Reset() }
