package cleandb

// Row/batch equivalence property tests: every query must produce identical
// rows, repairs and cost metrics whether the engine executes over boxed rows
// (WithRowExecution) or dictionary-encoded column batches (the default).
// Stage costs are logged identically in both forms by design, so even
// SimTicks — a straggler-sensitive max over per-worker costs — must match
// tick for tick. The suite fuzzes over worker/partition counts and over the
// physical strategy matrix, with strategies pinned so the stats-driven
// automatic selection cannot make the two sides diverge.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cleandb/internal/datagen"
	"cleandb/internal/physical"
	"cleandb/internal/types"
)

// equivQueries covers the experiment query shapes: scans with filters
// (numeric and dictionary-code string comparisons), an equi join, the FD /
// DEDUP / term-validation (CLUSTER BY) cleaning pipelines, a DENIAL+REPAIR
// denial-constraint pipeline, and the unified multi-operator query.
var equivQueries = []struct {
	name  string
	query string
	// repairs names the source whose repaired rows must also match.
	repairs string
}{
	{name: "filter_project", query: `SELECT c.name AS n, c.nationkey AS k FROM customer c WHERE c.nationkey < 12`},
	{name: "filter_string_eq", query: `SELECT c.custkey AS k FROM customer c WHERE c.address = '1 oak st'`},
	{name: "equi_join", query: `SELECT c.name AS n, o.orderkey AS ok FROM customer c, lineitem o WHERE c.custkey = o.suppkey and o.discount > 0.05`},
	{name: "fd", query: `SELECT * FROM customer c FD(c.address, prefix(c.phone))`},
	{name: "dedup", query: `SELECT * FROM customer c DEDUP(attribute, LD, 0.8, c.address, c.name, c.phone)`},
	{name: "term_validation", query: `SELECT * FROM customer c, dictionary d CLUSTER BY(token_filtering, LD, 0.7, c.name)`},
	{
		name: "denial_repair",
		query: `SELECT * FROM lineitem t1
DENIAL(t2, t1.extendedprice < t2.extendedprice and t1.discount > t2.discount and t1.extendedprice < 905)
REPAIR(t1.discount)`,
		repairs: "lineitem",
	},
	{
		name: "unified",
		query: `SELECT * FROM customer c
FD(c.address, prefix(c.phone))
FD(c.address, c.nationkey)
DEDUP(attribute, LD, 0.8, c.address, c.name, c.phone)`,
	},
}

// equivData generates the shared test relations once: paper-style customers
// with duplicates, skewed lineitems with FD noise, and a term dictionary of
// the clean customer names.
func equivData() (customer, lineitem, dictionary []Value) {
	cust := datagen.GenCustomer(datagen.CustomerConfig{Rows: 60, Seed: 7})
	customer = cust.Rows
	lineitem = datagen.GenLineitem(datagen.LineitemConfig{Rows: 150, NoiseDiscount: true, Seed: 11})
	dictSchema := NewSchema("term")
	seen := map[string]bool{}
	for _, r := range customer {
		n := r.Field("name").Str()
		if !seen[n] {
			seen[n] = true
			dictionary = append(dictionary, NewRecord(dictSchema, []Value{String(n)}))
		}
	}
	return customer, lineitem, dictionary
}

// equivPair opens a columnar DB and a row DB over identical catalogs.
func equivPair(workers int, extra ...Option) (col, row *DB) {
	customer, lineitem, dictionary := equivData()
	build := func(opts ...Option) *DB {
		db := Open(append([]Option{WithWorkers(workers)}, opts...)...)
		db.RegisterRows("customer", customer)
		db.RegisterRows("lineitem", lineitem)
		db.RegisterRows("dictionary", dictionary)
		return db
	}
	return build(extra...), build(append([]Option{WithRowExecution()}, extra...)...)
}

// canonRows renders rows to their canonical keys, preserving order: the two
// execution forms must agree on content and order both.
func canonRows(rows []Value) []string {
	out := make([]string, len(rows))
	for i, v := range rows {
		out[i] = types.Key(v)
	}
	return out
}

func diffRows(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows columnar vs %d rows row-mode", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d differs:\n columnar: %s\n row-mode: %s", label, i, got[i], want[i])
		}
	}
}

// checkEquiv runs one query on both DBs and asserts result and metric
// equality. It returns the columnar execution's metrics so callers can make
// assertions about the batch path having actually engaged.
func checkEquiv(t *testing.T, col, row *DB, label, query, repairs string) QueryMetrics {
	t.Helper()
	resC, errC := col.Query(query)
	resR, errR := row.Query(query)
	if (errC == nil) != (errR == nil) {
		t.Fatalf("%s: columnar err=%v, row err=%v", label, errC, errR)
	}
	if errC != nil {
		t.Fatalf("%s: %v", label, errC)
	}
	diffRows(t, label+"/rows", canonRows(resC.Rows()), canonRows(resR.Rows()))
	for _, task := range resR.TaskNames() {
		gotC, okC := resC.TaskRowsOK(task)
		gotR, _ := resR.TaskRowsOK(task)
		if !okC {
			t.Fatalf("%s: task %q missing from columnar result", label, task)
		}
		diffRows(t, label+"/task:"+task, canonRows(gotC), canonRows(gotR))
	}
	if repairs != "" {
		diffRows(t, label+"/repaired",
			canonRows(resC.RepairedRows(repairs)), canonRows(resR.RepairedRows(repairs)))
	}
	mc, mr := resC.Metrics(), resR.Metrics()
	if mc.SimTicks != mr.SimTicks || mc.Comparisons != mr.Comparisons ||
		mc.ShuffledRecords != mr.ShuffledRecords || mc.ShuffledBytes != mr.ShuffledBytes {
		t.Fatalf("%s: metrics diverge:\n columnar: ticks=%d cmp=%d recs=%d bytes=%d\n row-mode: ticks=%d cmp=%d recs=%d bytes=%d",
			label,
			mc.SimTicks, mc.Comparisons, mc.ShuffledRecords, mc.ShuffledBytes,
			mr.SimTicks, mr.Comparisons, mr.ShuffledRecords, mr.ShuffledBytes)
	}
	if mr.BatchesEvaluated != 0 {
		t.Fatalf("%s: row-mode execution evaluated %d batches", label, mr.BatchesEvaluated)
	}
	return mc
}

// TestColumnarEquivalence is the core property: across worker counts and the
// pinned strategy matrix, columnar execution ≡ row execution — same rows,
// same repairs, same SimTicks/Comparisons/Shuffle metrics.
func TestColumnarEquivalence(t *testing.T) {
	strategies := []struct {
		name  string
		group physical.GroupStrategy
		theta physical.ThetaStrategy
	}{
		{"aggregate_mbucket", physical.GroupAggregate, physical.ThetaMBucket},
		{"hash_cartesian", physical.GroupHash, physical.ThetaCartesian},
		{"sort_mbucket", physical.GroupSort, physical.ThetaMBucket},
	}
	var sawBatches bool
	for _, workers := range []int{1, 3, 8} {
		for _, st := range strategies {
			col, row := equivPair(workers,
				WithGroupStrategy(st.group), WithThetaStrategy(st.theta))
			for _, q := range equivQueries {
				label := fmt.Sprintf("w%d/%s/%s", workers, st.name, q.name)
				mc := checkEquiv(t, col, row, label, q.query, q.repairs)
				if mc.BatchesEvaluated > 0 {
					sawBatches = true
				}
			}
		}
	}
	// The property must not hold vacuously: at least the filter queries have
	// to run their vectorized kernels on the columnar side.
	if !sawBatches {
		t.Fatal("no query evaluated column batches; the columnar path never engaged")
	}
}

// TestColumnarEquivalenceDefaults compares default columnar execution (with
// stats-driven strategy selection active) against default row execution.
// Strategy choices may differ, so only results — rows, tasks, repairs — are
// compared, plus the columnar-side observability counters.
func TestColumnarEquivalenceDefaults(t *testing.T) {
	col, row := equivPair(4)
	for _, q := range equivQueries {
		resC, err := col.Query(q.query)
		if err != nil {
			t.Fatalf("%s: columnar: %v", q.name, err)
		}
		resR, err := row.Query(q.query)
		if err != nil {
			t.Fatalf("%s: row: %v", q.name, err)
		}
		diffRows(t, q.name+"/rows", canonRows(resC.Rows()), canonRows(resR.Rows()))
		if q.repairs != "" {
			diffRows(t, q.name+"/repaired",
				canonRows(resC.RepairedRows(q.repairs)), canonRows(resR.RepairedRows(q.repairs)))
		}
	}
	m := col.Metrics()
	if m.BatchesEvaluated == 0 {
		t.Fatal("default columnar mode evaluated no batches")
	}
	if m.DictHits+m.DictMisses == 0 {
		t.Fatal("columnar load interned no strings")
	}
	if len(m.Strategies) == 0 {
		t.Fatal("stats-driven selection recorded no strategy choices")
	}
	if rm := row.Metrics(); rm.BatchesEvaluated != 0 || rm.DictHits+rm.DictMisses != 0 {
		t.Fatalf("row mode touched columnar machinery: %+v", rm)
	}
}

// TestColumnarEquivalenceFileSources runs the property over the file-backed
// scan paths: CSV (rows scanned then batched) and colbin (batches decoded
// natively, no transpose), against the row-mode scan of the same files.
func TestColumnarEquivalenceFileSources(t *testing.T) {
	customer, _, _ := equivData()
	dir := t.TempDir()

	csvPath := filepath.Join(dir, "customer.csv")
	var sb strings.Builder
	sb.WriteString("custkey,name,address,nationkey,phone\n")
	for _, r := range customer {
		fmt.Fprintf(&sb, "%d,%s,%s,%d,%s\n",
			r.Field("custkey").Int(), r.Field("name").Str(), r.Field("address").Str(),
			r.Field("nationkey").Int(), r.Field("phone").Str())
	}
	if err := os.WriteFile(csvPath, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	binPath := filepath.Join(dir, "customer.colbin")
	{
		db := Open(WithWorkers(2))
		db.RegisterRows("customer", customer)
		s, err := SinkFromPath(binPath)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.ExecuteTo(t.Context(), `SELECT * FROM customer c`, s); err != nil {
			t.Fatal(err)
		}
	}

	query := `SELECT c.name AS n FROM customer c WHERE c.nationkey < 9 and c.address = '1 oak st'`
	for _, src := range []struct{ name, path string }{
		{"csv", csvPath}, {"colbin", binPath},
	} {
		for _, workers := range []int{1, 4} {
			build := func(opts ...Option) *DB {
				db := Open(append([]Option{WithWorkers(workers)}, opts...)...)
				if err := db.RegisterFile("customer", src.path); err != nil {
					t.Fatal(err)
				}
				return db
			}
			col := build(WithGroupStrategy(physical.GroupAggregate), WithThetaStrategy(physical.ThetaMBucket))
			row := build(WithRowExecution(), WithGroupStrategy(physical.GroupAggregate), WithThetaStrategy(physical.ThetaMBucket))
			label := fmt.Sprintf("%s/w%d", src.name, workers)
			mc := checkEquiv(t, col, row, label, query, "")
			if mc.BatchesEvaluated == 0 {
				t.Fatalf("%s: columnar file scan evaluated no batches", label)
			}
		}
	}
}

// TestStatsEpochInvalidatesPlans pins the plan-cache satellite: a plan
// prepared while a source was still pending (unknown statistics) must not be
// served from the cache once the load has produced real statistics.
func TestStatsEpochInvalidatesPlans(t *testing.T) {
	customer, _, _ := equivData()
	dir := t.TempDir()
	path := filepath.Join(dir, "customer.csv")
	var sb strings.Builder
	sb.WriteString("custkey,name,address,nationkey,phone\n")
	for _, r := range customer {
		fmt.Fprintf(&sb, "%d,%s,%s,%d,%s\n",
			r.Field("custkey").Int(), r.Field("name").Str(), r.Field("address").Str(),
			r.Field("nationkey").Int(), r.Field("phone").Str())
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	db := Open(WithWorkers(2))
	db.RegisterCSVFile("customer", path)
	const q = `SELECT c.name AS n FROM customer c WHERE c.nationkey < 9`
	// First query loads the pending source mid-prepare: a miss, keyed under
	// the post-load stats epoch.
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	// Same statement again: stats unchanged, must now hit.
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Metrics().PlanCacheHit {
		t.Fatal("second identical query should hit the plan cache")
	}
	// Re-registering bumps the catalog epoch; the reload that follows bumps
	// the stats epoch. Either way the old plan must not be served.
	db.RegisterCSVFile("customer", path)
	res, err = db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics().PlanCacheHit {
		t.Fatal("query after re-register must re-plan against fresh statistics")
	}
}
