// Export: the streaming result surface and the pluggable sink catalog — the
// output half of the data-source API. The example generates a dirty customer
// table, streams a violation report with Iter, pumps query output straight
// into CSV and colbin files with ExecuteTo (partition-parallel encode, no
// flattened answer buffer), and closes the loop by re-registering the
// exported file and querying it again.
//
//	go run ./examples/export
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cleandb"
	"cleandb/internal/datagen"
)

func main() {
	dir, err := os.MkdirTemp("", "cleandb-export")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	rows := datagen.GenCustomer(datagen.CustomerConfig{Rows: 5000, DupRate: 0.1, MaxDups: 10, Seed: 42}).Rows
	db := cleandb.Open(cleandb.WithWorkers(4))
	db.RegisterRows("customer", rows)
	ctx := context.Background()

	const fdQuery = `SELECT * FROM customer c FD(c.address, c.nationkey)`

	// Iter streams the result cursor-style: engine partitions drain in
	// order, nothing is flattened, breaking early is cheap.
	res, err := db.QueryContext(ctx, fdQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FD violations: %d (first 3 shown)\n", res.RowCount())
	shown := 0
	for row, err := range res.Iter() {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %v\n", row.Field("key"))
		if shown++; shown == 3 {
			break
		}
	}

	// ExecuteTo pumps the same output straight into files. The sink encodes
	// partitions on parallel goroutines under the query's context; the CSV
	// bytes stitch to disk in partition order.
	for _, name := range []string{"violations.csv", "violations.colbin"} {
		path := filepath.Join(dir, name)
		snk, err := cleandb.SinkFromPath(path)
		if err != nil {
			log.Fatal(err)
		}
		out, err := db.ExecuteTo(ctx, fdQuery, snk)
		if err != nil {
			log.Fatal(err)
		}
		fi, _ := os.Stat(path)
		fmt.Printf("exported %d rows to %s (%d bytes)\n",
			out.Metrics().ExportedRows, name, fi.Size())
	}

	// Close the loop: what a sink wrote, a source reads back.
	if err := db.RegisterFile("report", filepath.Join(dir, "violations.colbin")); err != nil {
		log.Fatal(err)
	}
	back, err := db.QueryContext(ctx, `SELECT * FROM report r`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-registered export holds %d rows — round trip complete\n", back.RowCount())
}
