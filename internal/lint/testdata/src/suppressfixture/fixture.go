// Package suppressfixture exercises the //lint:ignore suppression mechanism
// of the cleanlint driver against real dictcode violations.
package suppressfixture

import "cleandb/internal/data"

// suppressedSameLine carries a justified ignore trailing the flagged line.
func suppressedSameLine(left, right *data.Dict, a, b string) bool {
	return left.Code(a) == right.Code(b) //lint:ignore dictcode fixture: suppressed on the same line
}

// suppressedLineAbove carries a justified ignore on the line above.
func suppressedLineAbove(left, right *data.Dict, a, b string) bool {
	//lint:ignore dictcode fixture: suppressed from the line above
	return left.Code(a) == right.Code(b)
}

// unsuppressed has no ignore: the diagnostic survives.
func unsuppressed(left, right *data.Dict, a, b string) bool {
	return left.Code(a) == right.Code(b)
}

// missingJustification: an ignore without a reason is itself diagnosed and
// does not suppress anything.
func missingJustification(left, right *data.Dict, a, b string) bool {
	//lint:ignore dictcode
	return left.Code(a) == right.Code(b)
}
