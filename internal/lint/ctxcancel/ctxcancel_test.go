package ctxcancel_test

import (
	"testing"

	"cleandb/internal/lint/analysistest"
	"cleandb/internal/lint/ctxcancel"
)

func TestCtxCancel(t *testing.T) {
	analysistest.Run(t, "testdata", ctxcancel.Analyzer, "ctxfixture")
}
