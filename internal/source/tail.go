package source

import (
	"context"

	"cleandb/internal/types"
)

// Tailer is implemented by sources that can parse only the bytes appended
// past the last scan's high-water mark instead of re-reading the whole
// input. A successful Scan records the consumed byte offset plus whatever
// per-format state a tail parse needs (the CSV scan's inferred column
// types, the JSON scan's schema cache); TailScan then parses just the new
// suffix.
//
// TailScan reports reset=true when the appended bytes cannot be parsed
// consistently with the base scan — the file shrank or was rewritten, a CSV
// column's type widened (old cells would parse differently under the joined
// type), or no base scan state exists. The caller must then fall back to a
// full Scan; the tail result is empty in that case.
type Tailer interface {
	// TailScan parses the bytes past the last high-water mark into rows,
	// advancing the mark on success. Line-local formats (JSON lines) tails
	// are exact; CSV tails are exact unless type widening forces reset.
	TailScan(ctx context.Context) (rows []types.Value, reset bool, err error)
	// Consumed reports the high-water mark: the byte offset up to which the
	// input has been parsed, 0 before any scan.
	Consumed() int64
}

// TailerOf returns the source's Tailer when it supports tail scans.
func TailerOf(s Source) (Tailer, bool) {
	t, ok := s.(Tailer)
	return t, ok
}
