package textsim

import (
	"sync"
	"sync/atomic"
)

// PairCache memoizes thresholded similarity verdicts (and exact similarity
// values) for string pairs, keyed by interned string codes so a repeat pair
// costs two map probes instead of an edit-distance dynamic program.
//
// Blocking-based cleaning operators generate overlapping candidate sets:
// token filtering assigns a record to one block per q-gram, so the same
// record pair is compared once per shared token; term validation probes the
// same dictionary entries for every occurrence of a dirty term. The cache
// collapses those repeats. Interned codes double as an equality shortcut:
// every supported metric gives sim(s,s)=1, so equal codes answer Above
// without touching the metric at all.
//
// A PairCache is scoped to one operator invocation (one query); it is safe
// for concurrent use by the partition workers of that invocation.
type PairCache struct {
	metric Metric
	theta  float64

	imu   sync.RWMutex
	codes map[string]uint32
	n     uint32

	shards [pairCacheShards]pairShard

	hits   atomic.Int64
	misses atomic.Int64
}

const pairCacheShards = 16

type pairShard struct {
	mu    sync.RWMutex
	above map[uint64]bool
	sims  map[uint64]float64
}

// NewPairCache builds a cache for one metric at one threshold.
func NewPairCache(metric Metric, theta float64) *PairCache {
	return &PairCache{metric: metric, theta: theta, codes: make(map[string]uint32)}
}

// Intern returns a dense code for s, minting one on first sight. Callers
// intern each value once (O(members) hashes) so the pair loops (O(members²))
// run on integer keys.
func (c *PairCache) Intern(s string) uint32 {
	c.imu.RLock()
	code, ok := c.codes[s]
	c.imu.RUnlock()
	if ok {
		return code
	}
	c.imu.Lock()
	code, ok = c.codes[s]
	if !ok {
		code = c.n
		c.n++
		c.codes[s] = code
	}
	c.imu.Unlock()
	return code
}

// pairKey packs an unordered code pair; every supported metric is
// symmetric, so (a,b) and (b,a) share one entry.
func pairKey(ca, cb uint32) uint64 {
	if ca > cb {
		ca, cb = cb, ca
	}
	return uint64(ca)<<32 | uint64(cb)
}

// Above reports whether metric(a,b) > theta, where ca and cb are the
// interned codes of a and b. Equal codes short-circuit to sim=1.
func (c *PairCache) Above(ca, cb uint32, a, b string) bool {
	if ca == cb {
		c.hits.Add(1)
		return c.theta < 1
	}
	k := pairKey(ca, cb)
	sh := &c.shards[k%pairCacheShards]
	sh.mu.RLock()
	v, ok := sh.above[k]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return v
	}
	c.misses.Add(1)
	v = c.metric.Above(a, b, c.theta)
	sh.mu.Lock()
	if sh.above == nil {
		sh.above = make(map[uint64]bool, 256)
	}
	sh.above[k] = v
	sh.mu.Unlock()
	return v
}

// Sim returns metric(a,b), memoized like Above but caching the exact value.
func (c *PairCache) Sim(ca, cb uint32, a, b string) float64 {
	if ca == cb {
		c.hits.Add(1)
		return 1
	}
	k := pairKey(ca, cb)
	sh := &c.shards[k%pairCacheShards]
	sh.mu.RLock()
	v, ok := sh.sims[k]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return v
	}
	c.misses.Add(1)
	v = c.metric.Sim(a, b)
	sh.mu.Lock()
	if sh.sims == nil {
		sh.sims = make(map[uint64]float64, 64)
	}
	sh.sims[k] = v
	sh.mu.Unlock()
	return v
}

// Stats returns the hit/miss counters (Intern calls are not counted).
func (c *PairCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
