package cleaning

import (
	"cleandb/internal/engine"
	"cleandb/internal/physical"
	"cleandb/internal/types"
)

// Conditional functional dependencies (CFDs) are the second member of the
// denial-constraint family the paper names in §3.1: an FD that must hold
// only on the tuples matching a pattern tableau. For example,
// (country='US') : zip → state holds only for US records, and a constant
// pattern (country='US', zip='90210') : state='CA' pins the RHS value.

// CFDPattern is one tableau row: conditions select the tuples the embedded
// FD applies to, and RHSConst (optional) additionally fixes the RHS value.
type CFDPattern struct {
	// Conditions maps attribute names to required constant values; a tuple
	// matches when all hold. An empty map matches every tuple (plain FD).
	Conditions map[string]types.Value
	// RHSConst, when non-null, requires the RHS to equal this constant for
	// matching tuples (a constant CFD).
	RHSConst types.Value
}

// Matches reports whether the record satisfies every condition.
func (p CFDPattern) Matches(v types.Value) bool {
	for attr, want := range p.Conditions {
		if !types.Equal(v.Field(attr), want) {
			return false
		}
	}
	return true
}

// CFDConfig specifies a conditional functional dependency check.
type CFDConfig struct {
	// LHS and RHS are the embedded FD's sides.
	LHS, RHS Extract
	// Patterns is the tableau; a tuple participates if it matches at least
	// one pattern. Constant patterns are checked per tuple.
	Patterns []CFDPattern
	// Strategy selects the grouping shuffle.
	Strategy physical.GroupStrategy
}

// CFDViolationSchema describes constant-pattern violations: the offending
// record and the value the tableau requires.
var CFDViolationSchema = types.NewSchema("record", "expected", "got")

// CFDCheck detects conditional-FD violations. It returns two datasets:
// variable violations (groups of matching tuples whose LHS maps to more than
// one RHS value — same shape as FDCheck output) and constant violations
// (tuples whose RHS differs from a pattern's required constant).
//
// Like the FD operator, the variable check is a single grouping pass over
// the pattern-matching slice of the data; the normalization insight of the
// paper applies: the tableau filter is pushed below the grouping.
func CFDCheck(ds *engine.Dataset, cfg CFDConfig) (variable, constant *engine.Dataset) {
	patterns := cfg.Patterns
	if len(patterns) == 0 {
		patterns = []CFDPattern{{}}
	}
	matching := ds.Filter("cfd:tableau", func(v types.Value) bool {
		for _, p := range patterns {
			if p.Matches(v) {
				return true
			}
		}
		return false
	})
	variable = FDCheck(matching, cfg.LHS, cfg.RHS, cfg.Strategy)

	constant = ds.FlatMap("cfd:constants", func(v types.Value) []types.Value {
		var out []types.Value
		for _, p := range patterns {
			if p.RHSConst.IsNull() || !p.Matches(v) {
				continue
			}
			got := cfg.RHS(v)
			if !types.Equal(got, p.RHSConst) {
				out = append(out, types.NewRecord(CFDViolationSchema,
					[]types.Value{v, p.RHSConst, got}))
			}
		}
		return out
	})
	return variable, constant
}
