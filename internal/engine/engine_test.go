package engine

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"cleandb/internal/types"
)

var kvSchema = types.NewSchema("k", "v")

func kv(k string, v int64) types.Value {
	return types.NewRecord(kvSchema, []types.Value{types.String(k), types.Int(v)})
}

func randKV(rng *rand.Rand, n, keys int) []types.Value {
	out := make([]types.Value, n)
	for i := range out {
		out[i] = kv(string(rune('a'+rng.Intn(keys))), int64(rng.Intn(100)))
	}
	return out
}

func sortedKeys(vs []types.Value) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = types.Key(v)
	}
	sort.Strings(out)
	return out
}

func sameRecords(t *testing.T, a, b []types.Value, what string) {
	t.Helper()
	ka, kb := sortedKeys(a), sortedKeys(b)
	if len(ka) != len(kb) {
		t.Fatalf("%s: %d vs %d records", what, len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("%s: record %d differs:\n%s\nvs\n%s", what, i, ka[i], kb[i])
		}
	}
}

func TestFromValuesPartitioning(t *testing.T) {
	ctx := NewContext(4)
	vs := make([]types.Value, 10)
	for i := range vs {
		vs[i] = types.Int(int64(i))
	}
	d := FromValues(ctx, vs)
	if d.NumPartitions() != 4 {
		t.Fatalf("partitions = %d", d.NumPartitions())
	}
	if d.Count() != 10 {
		t.Fatalf("count = %d", d.Count())
	}
	// Order preserved by Collect.
	got := d.Collect()
	for i, v := range got {
		if v.Int() != int64(i) {
			t.Fatalf("order not preserved: %v", got)
		}
	}
}

func TestFromValuesEmpty(t *testing.T) {
	ctx := NewContext(4)
	d := FromValues(ctx, nil)
	if d.Count() != 0 {
		t.Fatal("empty dataset should count 0")
	}
	if d.Map("m", func(v types.Value) types.Value { return v }).Count() != 0 {
		t.Fatal("map over empty")
	}
}

func TestMapFilterFlatMap(t *testing.T) {
	ctx := NewContext(3)
	vs := make([]types.Value, 9)
	for i := range vs {
		vs[i] = types.Int(int64(i))
	}
	d := FromValues(ctx, vs)
	doubled := d.Map("double", func(v types.Value) types.Value { return types.Int(v.Int() * 2) })
	evens := doubled.Filter("gt", func(v types.Value) bool { return v.Int() >= 8 })
	if evens.Count() != 5 {
		t.Fatalf("filter count = %d", evens.Count())
	}
	twice := d.FlatMap("dup", func(v types.Value) []types.Value { return []types.Value{v, v} })
	if twice.Count() != 18 {
		t.Fatalf("flatmap count = %d", twice.Count())
	}
}

func TestMapPartitionsAndUnion(t *testing.T) {
	ctx := NewContext(2)
	a := FromValues(ctx, []types.Value{types.Int(1), types.Int(2)})
	b := FromValues(ctx, []types.Value{types.Int(3)})
	u := a.Union(b)
	if u.Count() != 3 {
		t.Fatalf("union count = %d", u.Count())
	}
	sums := u.MapPartitions("sum", func(_ int, part []types.Value) []types.Value {
		var s int64
		for _, v := range part {
			s += v.Int()
		}
		return []types.Value{types.Int(s)}
	})
	var total int64
	for _, v := range sums.Collect() {
		total += v.Int()
	}
	if total != 6 {
		t.Fatalf("partition sums = %d", total)
	}
}

func TestRepartitionCountsShuffle(t *testing.T) {
	ctx := NewContext(2)
	d := FromValues(ctx, randKV(rand.New(rand.NewSource(1)), 20, 3))
	before := ctx.Metrics().ShuffledRecords()
	d2 := d.Repartition(5)
	if d2.NumPartitions() != 5 {
		t.Fatalf("repartition = %d parts", d2.NumPartitions())
	}
	if ctx.Metrics().ShuffledRecords()-before != 20 {
		t.Fatal("repartition should count all records as shuffled")
	}
}

func TestSortBy(t *testing.T) {
	ctx := NewContext(3)
	d := FromValues(ctx, []types.Value{types.Int(3), types.Int(1), types.Int(2)})
	s := d.SortBy("sort", func(a, b types.Value) bool { return a.Int() < b.Int() })
	got := s.Collect()
	if got[0].Int() != 1 || got[1].Int() != 2 || got[2].Int() != 3 {
		t.Fatalf("sorted = %v", got)
	}
}

func TestSample(t *testing.T) {
	ctx := NewContext(2)
	vs := make([]types.Value, 100)
	for i := range vs {
		vs[i] = types.Int(int64(i))
	}
	d := FromValues(ctx, vs)
	if n := len(d.Sample(10)); n != 10 {
		t.Fatalf("sample size = %d", n)
	}
	if n := len(d.Sample(0)); n != 100 {
		t.Fatalf("sample k<1 = every record, got %d", n)
	}
}

// TestShuffleStrategiesAgree: all three grouping strategies must produce the
// same groups (they differ only in cost), across random datasets and worker
// counts.
func TestShuffleStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	key := func(v types.Value) types.Value { return v.Field("k") }
	agg := GroupAgg{}
	for trial := 0; trial < 30; trial++ {
		vs := randKV(rng, 5+rng.Intn(200), 1+rng.Intn(8))
		workers := 1 + rng.Intn(8)
		norm := func(d *Dataset) []types.Value {
			out := d.Collect()
			for i, g := range out {
				k, members := GroupRecord(g)
				types.SortValues(members)
				out[i] = types.NewRecord(types.NewSchema("key", "group"),
					[]types.Value{k, types.ListOf(members)})
			}
			return out
		}
		mk := func() *Dataset { return FromValues(NewContext(workers), vs) }
		a := norm(mk().AggregateByKey("g", key, agg))
		s := norm(mk().SortShuffleGroup("g", key, agg))
		h := norm(mk().HashShuffleGroup("g", key, agg))
		sameRecords(t, a, s, "aggregate vs sort")
		sameRecords(t, a, h, "aggregate vs hash")
	}
}

func TestAggregateByKeyShufflesLess(t *testing.T) {
	// Count aggregation over few keys: map-side combine must shuffle far
	// fewer records than the full-shuffle strategies.
	rng := rand.New(rand.NewSource(73))
	vs := randKV(rng, 4000, 4)
	key := func(v types.Value) types.Value { return v.Field("k") }

	ctxA := NewContext(8)
	FromValues(ctxA, vs).AggregateByKey("g", key, countingAgg{})
	ctxS := NewContext(8)
	FromValues(ctxS, vs).SortShuffleGroup("g", key, countingAgg{})

	if a, s := ctxA.Metrics().ShuffledRecords(), ctxS.Metrics().ShuffledRecords(); a*10 > s {
		t.Fatalf("aggregateByKey shuffled %d, sort shuffled %d — want ≥10x reduction", a, s)
	}
}

// countingAgg counts group members with O(1) partial state.
type countingAgg struct{}

func (countingAgg) Zero() interface{}                              { return int64(0) }
func (countingAgg) Add(acc interface{}, _ types.Value) interface{} { return acc.(int64) + 1 }
func (countingAgg) Merge(a, b interface{}) interface{}             { return a.(int64) + b.(int64) }
func (countingAgg) AccSize(interface{}) int64                      { return 1 }
func (countingAgg) Result(key types.Value, acc interface{}) types.Value {
	return types.NewRecord(types.NewSchema("key", "n"), []types.Value{key, types.Int(acc.(int64))})
}

func TestSortShuffleSkewShowsInMaxCost(t *testing.T) {
	// 90% of records share one key: the sort ranges overload one worker.
	vs := make([]types.Value, 1000)
	for i := range vs {
		k := "hot"
		if i%10 == 0 {
			k = string(rune('a' + i%26))
		}
		vs[i] = kv(k, int64(i))
	}
	key := func(v types.Value) types.Value { return v.Field("k") }
	ctx := NewContext(8)
	FromValues(ctx, vs).SortShuffleGroup("g", key, GroupAgg{})
	stats := ctx.Metrics().Stages()
	last := stats[len(stats)-1]
	if last.MaxCost()*2 < last.TotalCost() {
		t.Fatalf("hot key should make one worker dominate: max=%d total=%d", last.MaxCost(), last.TotalCost())
	}
}

func TestGroupRecordRoundTrip(t *testing.T) {
	ctx := NewContext(2)
	d := FromValues(ctx, []types.Value{kv("x", 1), kv("x", 2), kv("y", 3)})
	groups := d.AggregateByKey("g", func(v types.Value) types.Value { return v.Field("k") }, GroupAgg{})
	for _, g := range groups.Collect() {
		k, members := GroupRecord(g)
		switch k.Str() {
		case "x":
			if len(members) != 2 {
				t.Fatalf("group x = %v", members)
			}
		case "y":
			if len(members) != 1 {
				t.Fatalf("group y = %v", members)
			}
		default:
			t.Fatalf("unexpected key %s", k)
		}
	}
}

func TestGroupAggProjectAndFinish(t *testing.T) {
	ctx := NewContext(2)
	d := FromValues(ctx, []types.Value{kv("x", 1), kv("x", 5)})
	agg := GroupAgg{
		Project: func(v types.Value) types.Value { return v.Field("v") },
		Finish: func(key types.Value, group []types.Value) types.Value {
			if len(group) < 2 {
				return types.Null() // dropped
			}
			return key
		},
	}
	out := d.AggregateByKey("g", func(v types.Value) types.Value { return v.Field("k") }, agg).Collect()
	if len(out) != 1 || out[0].Str() != "x" {
		t.Fatalf("out = %v", out)
	}
}

// joinRef is the nested-loop reference for join correctness tests.
func joinRef(l, r []types.Value, match func(a, b types.Value) bool, outer bool) []types.Value {
	var out []types.Value
	for _, lv := range l {
		found := false
		for _, rv := range r {
			if match(lv, rv) {
				out = append(out, PairCombine(lv, rv))
				found = true
			}
		}
		if outer && !found {
			out = append(out, PairCombine(lv, types.Null()))
		}
	}
	return out
}

func TestHashJoinMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 20; trial++ {
		l := randKV(rng, rng.Intn(60), 4)
		r := randKV(rng, rng.Intn(60), 4)
		ctx := NewContext(1 + rng.Intn(6))
		ld := FromValues(ctx, l)
		rd := FromValues(ctx, r)
		keyFn := func(v types.Value) types.Value { return v.Field("k") }
		got := ld.HashJoin("j", rd, keyFn, keyFn, PairCombine).Collect()
		want := joinRef(l, r, func(a, b types.Value) bool {
			return a.Field("k").Str() == b.Field("k").Str()
		}, false)
		sameRecords(t, got, want, "hash join")
	}
}

func TestLeftOuterHashJoin(t *testing.T) {
	ctx := NewContext(2)
	l := []types.Value{kv("a", 1), kv("b", 2)}
	r := []types.Value{kv("a", 10)}
	keyFn := func(v types.Value) types.Value { return v.Field("k") }
	got := FromValues(ctx, l).LeftOuterHashJoin("j", FromValues(ctx, r), keyFn, keyFn, PairCombine).Collect()
	want := joinRef(l, r, func(a, b types.Value) bool {
		return a.Field("k").Str() == b.Field("k").Str()
	}, true)
	sameRecords(t, got, want, "left outer join")
}

func TestBroadcastJoinMatchesHashJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	l := randKV(rng, 80, 5)
	r := randKV(rng, 10, 5)
	keyFn := func(v types.Value) types.Value { return v.Field("k") }
	ctx := NewContext(4)
	viaHash := FromValues(ctx, l).HashJoin("j", FromValues(ctx, r), keyFn, keyFn, PairCombine).Collect()
	viaBcast := FromValues(ctx, l).BroadcastJoin("j", r, keyFn, keyFn, PairCombine).Collect()
	sameRecords(t, viaHash, viaBcast, "broadcast vs hash join")
}

func TestCartesianFilterMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(87))
	l := randKV(rng, 30, 3)
	r := randKV(rng, 25, 3)
	pred := func(a, b types.Value) bool { return a.Field("v").Int() < b.Field("v").Int() }
	ctx := NewContext(4)
	got, err := FromValues(ctx, l).CartesianFilter("c", FromValues(ctx, r), pred, PairCombine)
	if err != nil {
		t.Fatal(err)
	}
	want := joinRef(l, r, pred, false)
	sameRecords(t, got.Collect(), want, "cartesian filter")
	if ctx.Metrics().Comparisons() != 30*25 {
		t.Fatalf("comparisons = %d, want 750", ctx.Metrics().Comparisons())
	}
}

func TestCartesianBudgetExceeded(t *testing.T) {
	ctx := NewContext(2)
	ctx.CompBudget = 100
	l := FromValues(ctx, randKV(rand.New(rand.NewSource(1)), 50, 3))
	_, err := l.CartesianFilter("c", l, func(a, b types.Value) bool { return true }, PairCombine)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
}

func TestBudgetGuardClampsOverspentCounter(t *testing.T) {
	// Several stages share one job budget, so a prior stage may already have
	// pushed the comparison counter past it. The guards charge "the remaining
	// budget" before reporting ErrBudgetExceeded; with an overspent counter
	// that delta is negative and must clamp at zero — a failed join must never
	// reduce the cumulative metrics.
	mk := func() (*Context, *Dataset, *Dataset) {
		ctx := NewContext(2)
		ctx.CompBudget = 100
		ctx.Metrics().AddComparisons(150) // prior stage overspent the budget
		rng := rand.New(rand.NewSource(11))
		return ctx, FromValues(ctx, randKV(rng, 30, 3)), FromValues(ctx, randKV(rng, 30, 3))
	}
	attr := func(v types.Value) float64 { return float64(v.Field("v").Int()) }
	anyPred := func(a, b types.Value) bool { return true }
	cases := []struct {
		name string
		run  func(ctx *Context, l, r *Dataset) error
	}{
		{"cartesian", func(_ *Context, l, r *Dataset) error {
			_, err := l.CartesianFilter("c", r, anyPred, PairCombine)
			return err
		}},
		{"theta", func(_ *Context, l, r *Dataset) error {
			_, err := l.ThetaJoin("t", r, ThetaJoinStats{}, anyPred, PairCombine)
			return err
		}},
		{"minmax", func(_ *Context, l, r *Dataset) error {
			_, err := l.MinMaxBlockJoin("m", r, attr, attr,
				func(_, _, _, _ float64) bool { return true }, anyPred, PairCombine)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx, l, r := mk()
			before := ctx.Metrics().Comparisons()
			if err := tc.run(ctx, l, r); !errors.Is(err, ErrBudgetExceeded) {
				t.Fatalf("want ErrBudgetExceeded, got %v", err)
			}
			if got := ctx.Metrics().Comparisons(); got < before {
				t.Fatalf("budget guard reduced the cumulative comparison counter: %d -> %d", before, got)
			}
		})
	}
}

func TestThetaJoinMatchesCartesian(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 15; trial++ {
		l := randKV(rng, 20+rng.Intn(50), 5)
		r := randKV(rng, 20+rng.Intn(50), 5)
		pred := func(a, b types.Value) bool {
			return a.Field("v").Int() < b.Field("v").Int()
		}
		ctx := NewContext(1 + rng.Intn(6))
		stats := ThetaJoinStats{
			SortKey: func(v types.Value) float64 { return float64(v.Field("v").Int()) },
			Prune:   func(lmin, _, _, rmax float64) bool { return lmin >= rmax },
		}
		got, err := FromValues(ctx, l).ThetaJoin("t", FromValues(ctx, r), stats, pred, PairCombine)
		if err != nil {
			t.Fatal(err)
		}
		want := joinRef(l, r, pred, false)
		sameRecords(t, got.Collect(), want, "theta join vs reference")
	}
}

func TestThetaJoinPrunesComparisons(t *testing.T) {
	// With a band predicate and sorted buckets, pruning must eliminate most
	// candidate cells compared to the full cross product: the left side
	// holds the 4 smallest values and the predicate needs left > right, so
	// only the right buckets below those values can match.
	vs := make([]types.Value, 400)
	for i := range vs {
		vs[i] = kv("k", int64(i))
	}
	pred := func(a, b types.Value) bool { return a.Field("v").Int() > b.Field("v").Int() }
	stats := ThetaJoinStats{
		SortKey: func(v types.Value) float64 { return float64(v.Field("v").Int()) },
		Prune:   func(_, lmax, rmin, _ float64) bool { return lmax <= rmin },
	}
	ctx := NewContext(4)
	small := FromValues(ctx, vs[:4]) // selective left side
	big := FromValues(ctx, vs)
	out, err := small.ThetaJoin("t", big, stats, pred, PairCombine)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Count(); got != 3+2+1 {
		t.Fatalf("matches = %d, want 6", got)
	}
	if c := ctx.Metrics().Comparisons(); c >= 4*400/4 {
		t.Fatalf("pruning should cut comparisons well below the full product: %d", c)
	}
}

func TestMinMaxBlockJoinMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	l := randKV(rng, 60, 4)
	r := randKV(rng, 60, 4)
	pred := func(a, b types.Value) bool { return a.Field("v").Int() < b.Field("v").Int() }
	ctx := NewContext(4)
	attr := func(v types.Value) float64 { return float64(v.Field("v").Int()) }
	got, err := FromValues(ctx, l).MinMaxBlockJoin("m", FromValues(ctx, r), attr, attr,
		func(lmin, lmax, rmin, rmax float64) bool { return lmin <= rmax },
		pred, PairCombine)
	if err != nil {
		t.Fatal(err)
	}
	want := joinRef(l, r, pred, false)
	sameRecords(t, got.Collect(), want, "minmax join")
}

func TestMetricsSimTicksMonotone(t *testing.T) {
	ctx := NewContext(2)
	d := FromValues(ctx, randKV(rand.New(rand.NewSource(2)), 100, 3))
	t0 := ctx.Metrics().SimTicks()
	d2 := d.Map("m", func(v types.Value) types.Value { return v })
	t1 := ctx.Metrics().SimTicks()
	if t1 <= t0 {
		t.Fatal("ticks should grow with work")
	}
	d2.Filter("f", func(v types.Value) bool { return true })
	if ctx.Metrics().SimTicks() <= t1 {
		t.Fatal("ticks should grow again")
	}
}

func TestMetricsReset(t *testing.T) {
	ctx := NewContext(2)
	FromValues(ctx, randKV(rand.New(rand.NewSource(3)), 50, 3)).Map("m", func(v types.Value) types.Value { return v })
	ctx.Metrics().Reset()
	if ctx.Metrics().SimTicks() != 0 || ctx.Metrics().RecordsProcessed() != 0 {
		t.Fatal("reset should clear counters")
	}
}

func TestStageStatsAccessors(t *testing.T) {
	s := StageStats{WorkerCosts: []int64{3, 9, 1}}
	if s.MaxCost() != 9 || s.TotalCost() != 13 {
		t.Fatalf("max=%d total=%d", s.MaxCost(), s.TotalCost())
	}
}

func TestFlatMapWCosts(t *testing.T) {
	ctx := NewContext(1)
	d := FromValues(ctx, []types.Value{types.Int(1), types.Int(2)})
	d.FlatMapW("w", func(v types.Value) []types.Value { return nil },
		func(v types.Value) int64 { return 100 })
	stages := ctx.Metrics().Stages()
	last := stages[len(stages)-1]
	if last.TotalCost() != 200 {
		t.Fatalf("weighted cost = %d, want 200", last.TotalCost())
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	// The same pipeline must yield identical result sets for any worker
	// count — the basic scale-out correctness invariant.
	vs := randKV(rand.New(rand.NewSource(97)), 300, 6)
	key := func(v types.Value) types.Value { return v.Field("k") }
	var baseline []string
	for _, workers := range []int{1, 2, 5, 16} {
		ctx := NewContext(workers)
		got := FromValues(ctx, vs).
			Filter("f", func(v types.Value) bool { return v.Field("v").Int()%2 == 0 }).
			AggregateByKey("g", key, GroupAgg{}).
			Collect()
		norm := make([]string, len(got))
		for i, g := range got {
			k, members := GroupRecord(g)
			types.SortValues(members)
			norm[i] = types.Key(k) + "→" + types.Key(types.ListOf(members))
		}
		sort.Strings(norm)
		if baseline == nil {
			baseline = norm
			continue
		}
		if len(norm) != len(baseline) {
			t.Fatalf("workers=%d changed result count", workers)
		}
		for i := range norm {
			if norm[i] != baseline[i] {
				t.Fatalf("workers=%d changed results", workers)
			}
		}
	}
}
