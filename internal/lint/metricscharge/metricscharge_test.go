package metricscharge_test

import (
	"testing"

	"cleandb/internal/lint/analysistest"
	"cleandb/internal/lint/metricscharge"
)

func TestMetricsCharge(t *testing.T) {
	analysistest.Run(t, "testdata", metricscharge.Analyzer, "metricsfixture")
}
