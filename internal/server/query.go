package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"cleandb"
	"cleandb/internal/data"
	"cleandb/internal/dist"
	"cleandb/internal/engine"
)

// queryRequest is the JSON body of POST /v1/query and of prepared-statement
// executions (where Query stays empty). A text/plain body is accepted too:
// the raw CleanM statement, with no parameters.
type queryRequest struct {
	Query string `json:"query"`
	// Params binds :name placeholders. JSON numbers without a fraction bind
	// as integers (matching how the text formats type their columns), all
	// others as floats.
	Params map[string]any `json:"params,omitempty"`
}

// args converts the request's parameter map to cleandb named arguments.
func (q *queryRequest) args() []any {
	if len(q.Params) == 0 {
		return nil
	}
	out := make([]any, 0, len(q.Params))
	for k, v := range q.Params {
		if f, ok := v.(float64); ok && f == math.Trunc(f) && math.Abs(f) < (1<<53) {
			v = int64(f)
		}
		out = append(out, cleandb.Named(k, v))
	}
	return out
}

// readQueryRequest parses the request body by content type: JSON for the
// {query, params} shape, anything else as the raw statement text.
func readQueryRequest(r *http.Request) (*queryRequest, error) {
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if ct == "application/json" {
		var req queryRequest
		if err := decodeBody(r, &req); err != nil {
			return nil, err
		}
		return &req, nil
	}
	var sb strings.Builder
	if _, err := copyBody(&sb, r); err != nil {
		return nil, err
	}
	return &queryRequest{Query: strings.TrimSpace(sb.String())}, nil
}

// handleQuery executes one CleanM statement.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxQueryBody)
	req, err := readQueryRequest(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if req.Query == "" {
		httpError(w, http.StatusBadRequest, errors.New("empty query"))
		return
	}
	s.execute(w, r, execFuncs{
		query:  req.Query,
		params: req.Params,
		run: func(ctx context.Context) (*cleandb.Result, error) {
			return s.db.QueryContext(ctx, req.Query, req.args()...)
		},
		stream: func(ctx context.Context, sink cleandb.Sink) (*cleandb.Result, error) {
			return s.db.ExecuteTo(ctx, req.Query, sink, req.args()...)
		},
	})
}

// execFuncs abstracts "run this statement" over the ad-hoc and the prepared
// paths, in both the buffered (envelope) and the streaming shape. query and
// params carry the statement in shippable form for the coordinator role,
// which replays it on the workers.
type execFuncs struct {
	query  string
	params map[string]any
	run    func(ctx context.Context) (*cleandb.Result, error)
	stream func(ctx context.Context, sink cleandb.Sink) (*cleandb.Result, error)
}

// execute admits, applies the server deadline, dispatches on the response
// mode and accounts the outcome. This is the one chokepoint every query
// execution — ad-hoc or prepared — funnels through.
//
// In the coordinator role it opens a distributed session first: workers
// execute the same statement with their masked-stage outputs exchanged
// through the barrier, and the local execution below — unchanged in every
// other respect — contributes only its placement share of the join work. The
// session rides the query context, so a client disconnect or server deadline
// cancels the remote fragments along with the local operators.
func (s *Server) execute(w http.ResponseWriter, r *http.Request, ex execFuncs) {
	if !s.admit() {
		retryAfter(w)
		httpError(w, http.StatusTooManyRequests, errTooBusy)
		return
	}
	defer s.release()
	ctx := r.Context()
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	var sess *dist.Session
	if s.cfg.Coordinator != nil && ex.query != "" {
		if sess = s.cfg.Coordinator.StartSession(ctx, ex.query, ex.params); sess != nil {
			s.distSessions.Add(1)
			ctx = sess.Attach(ctx)
			defer sess.Close()
		}
	}
	if r.URL.Query().Get("include") == "repairs" {
		s.executeEnvelope(w, ctx, ex, sess)
		return
	}
	s.executeStream(w, ctx, r, ex, sess)
}

// finishSession collects the worker fragment outcomes after a successful
// coordinator execution and folds them into the Prometheus counters. Nil in,
// nil out (single-process execution).
func (s *Server) finishSession(sess *dist.Session) []dist.FragmentResult {
	if sess == nil {
		return nil
	}
	frags := sess.Finish()
	for _, f := range frags {
		if f.Err == "" {
			s.distFragOK.Add(1)
		} else {
			s.distFragFailed.Add(1)
		}
	}
	s.distEvictions.Add(int64(len(sess.Dead())))
	return frags
}

// executeEnvelope answers the materialized JSON envelope: rows, per-task
// names, repair summaries and metrics in one document. Unlike the streaming
// path this buffers the full result — it is the debugging/repair-inspection
// mode, not the bulk-transfer one.
func (s *Server) executeEnvelope(w http.ResponseWriter, ctx context.Context, ex execFuncs, sess *dist.Session) {
	res, err := ex.run(ctx)
	if err != nil {
		s.failQuery(w, err, false)
		return
	}
	s.qOK.Add(1)
	rows := make([]any, 0, res.RowCount())
	for v, _ := range res.Iter() {
		rows = append(rows, data.ToJSON(v))
	}
	writeJSON(w, http.StatusOK, queryEnvelope{
		Rows:     rows,
		RowCount: res.RowCount(),
		Tasks:    res.TaskNames(),
		Repairs:  repairSummaries(res),
		Metrics:  metricsOf(res),
		ViewHit:  res.ViewHit(),
		Cluster:  clusterOf(sess, s.finishSession(sess)),
	})
}

// queryEnvelope is the ?include=repairs response document.
type queryEnvelope struct {
	Rows     []any           `json:"rows"`
	RowCount int             `json:"row_count"`
	Tasks    []string        `json:"tasks,omitempty"`
	Repairs  []repairJSON    `json:"repairs,omitempty"`
	Metrics  queryMetricJSON `json:"metrics"`
	// ViewHit reports how the view cache served this statement: "exact"
	// (cached result returned verbatim), "delta" (cached view merged with a
	// delta pass over appended rows), or empty for a cold execution.
	ViewHit string       `json:"view_hit,omitempty"`
	Cluster *clusterJSON `json:"cluster,omitempty"`
}

// clusterJSON reports the distributed execution of one query: which workers
// carried fragments, their local cost shares, and who was evicted mid-query.
type clusterJSON struct {
	Workers []fragmentJSON `json:"workers"`
	Dead    []string       `json:"dead,omitempty"`
	// CustodyRescans counts scan chunks re-parsed by custody adoption during
	// this query, across all members.
	CustodyRescans int64 `json:"custody_rescans,omitempty"`
}

type fragmentJSON struct {
	Worker      string `json:"worker"`
	Err         string `json:"err,omitempty"`
	Rows        int64  `json:"rows"`
	SimTicks    int64  `json:"sim_ticks"`
	Comparisons int64  `json:"comparisons"`
	// OwnedBytes is the worker's loaded custody share of the catalog in
	// input bytes — under partitioned custody, roughly 1/N of the data.
	OwnedBytes int64 `json:"owned_bytes,omitempty"`
}

func clusterOf(sess *dist.Session, frags []dist.FragmentResult) *clusterJSON {
	if sess == nil {
		return nil
	}
	out := &clusterJSON{Dead: sess.Dead(), CustodyRescans: sess.CustodyRescans()}
	for _, f := range frags {
		out.CustodyRescans += f.CustodyRescans
		out.Workers = append(out.Workers, fragmentJSON{
			Worker: f.Worker, Err: f.Err, Rows: f.Rows,
			SimTicks: f.SimTicks, Comparisons: f.Comparisons,
			OwnedBytes: f.OwnedBytes,
		})
	}
	return out
}

type repairJSON struct {
	Task       string `json:"task"`
	Source     string `json:"source"`
	Col        string `json:"col"`
	Violations int64  `json:"violations"`
	Changed    int64  `json:"changed"`
	Remaining  int64  `json:"remaining"`
	Rounds     int    `json:"rounds"`
	Clusters   int    `json:"clusters"`
}

type queryMetricJSON struct {
	SimTicks        int64 `json:"sim_ticks"`
	Comparisons     int64 `json:"comparisons"`
	ShuffledRecords int64 `json:"shuffled_records"`
	ShuffledBytes   int64 `json:"shuffled_bytes"`
	PlanCacheHit    bool  `json:"plan_cache_hit"`
	ExportedRows    int64 `json:"exported_rows"`
}

func repairSummaries(res *cleandb.Result) []repairJSON {
	var out []repairJSON
	for _, r := range res.Repairs() {
		out = append(out, repairJSON{
			Task: r.Task, Source: r.Source, Col: r.Col,
			Violations: r.Violations, Changed: r.Changed, Remaining: r.Remaining,
			Rounds: r.Rounds, Clusters: r.Clusters,
		})
	}
	return out
}

func metricsOf(res *cleandb.Result) queryMetricJSON {
	m := res.Metrics()
	return queryMetricJSON{
		SimTicks:        m.SimTicks,
		Comparisons:     m.Comparisons,
		ShuffledRecords: m.ShuffledRecords,
		ShuffledBytes:   m.ShuffledBytes,
		PlanCacheHit:    m.PlanCacheHit,
		ExportedRows:    m.ExportedRows,
	}
}

// Response formats of the streaming path.
const (
	formatNDJSON = "application/x-ndjson"
	formatCSV    = "text/csv"
)

// pickFormat maps the Accept header to a streaming format. NDJSON is the
// default; an explicit Accept that matches nothing we stream is a 406.
func pickFormat(accept string) (string, error) {
	if accept == "" {
		return formatNDJSON, nil
	}
	for _, part := range strings.Split(accept, ",") {
		mt, _, err := mime.ParseMediaType(part)
		if err != nil {
			continue
		}
		switch mt {
		// text/* picks CSV: it is the only text type served, so answering
		// application/x-ndjson would step outside the client's Accept range.
		case formatCSV, "text/*":
			return formatCSV, nil
		case formatNDJSON, "application/json", "*/*", "application/*":
			return formatNDJSON, nil
		}
	}
	return "", fmt.Errorf("unsupported Accept %q (want %s or %s)", accept, formatNDJSON, formatCSV)
}

// Trailer names of the streaming response: the result facts that are only
// known once the stream completes.
const (
	trailerRows        = "Cleandb-Row-Count"
	trailerTicks       = "Cleandb-Sim-Ticks"
	trailerComparisons = "Cleandb-Comparisons"
	trailerPlanCache   = "Cleandb-Plan-Cache-Hit"
	trailerRepairs     = "Cleandb-Repairs-Changed"
	// trailerViewHit carries the view-cache outcome ("exact", "delta", or
	// empty for a cold run) — how a client watching an appendable source
	// confirms its re-poll was served incrementally.
	trailerViewHit = "Cleandb-View-Hit"
	// Cluster trailers, present on distributed executions only: how many
	// worker fragments completed, the comparisons they contributed (the
	// coordinator's own trailerComparisons already counts the full query
	// under SPMD; this is the share offloaded), and the members evicted
	// mid-query, if any.
	trailerClusterWorkers     = "Cleandb-Cluster-Workers"
	trailerClusterComparisons = "Cleandb-Cluster-Comparisons"
	trailerClusterDead        = "Cleandb-Cluster-Dead"
	// trailerClusterRescans counts scan chunks re-parsed by custody adoption
	// during this query, across all members — zero on a clean run.
	trailerClusterRescans = "Cleandb-Custody-Rescans"
)

// executeStream pumps the result partitions straight into the response
// through a writer-backed sink: partitions encode in parallel, stitch in
// order, and flush through to the client as they land. Result facts that are
// only known at the end (row count, metrics, repair outcome) arrive as HTTP
// trailers.
func (s *Server) executeStream(w http.ResponseWriter, ctx context.Context, r *http.Request, ex execFuncs, sess *dist.Session) {
	format, err := pickFormat(r.Header.Get("Accept"))
	if err != nil {
		httpError(w, http.StatusNotAcceptable, err)
		return
	}
	cw := &countingWriter{w: w}
	var sink cleandb.Sink
	if format == formatCSV {
		sink = cleandb.NewCSVSink(cw)
	} else {
		sink = cleandb.NewJSONLSink(cw)
	}
	// Announce the trailers before the first body byte; set the content type
	// now so an immediate first partition carries it.
	trailers := []string{trailerRows, trailerTicks, trailerComparisons, trailerPlanCache, trailerRepairs, trailerViewHit}
	if sess != nil {
		trailers = append(trailers, trailerClusterWorkers, trailerClusterComparisons, trailerClusterDead, trailerClusterRescans)
	}
	w.Header().Set("Trailer", strings.Join(trailers, ", "))
	w.Header().Set("Content-Type", format)

	res, err := ex.stream(ctx, sink)
	if err != nil {
		s.failQuery(w, err, cw.n.Load() > 0)
		return
	}
	s.qOK.Add(1)
	m := res.Metrics()
	var changed int64
	for _, rep := range res.Repairs() {
		changed += rep.Changed
	}
	w.Header().Set(trailerRows, strconv.FormatInt(m.ExportedRows, 10))
	w.Header().Set(trailerTicks, strconv.FormatInt(m.SimTicks, 10))
	w.Header().Set(trailerComparisons, strconv.FormatInt(m.Comparisons, 10))
	w.Header().Set(trailerPlanCache, strconv.FormatBool(m.PlanCacheHit))
	w.Header().Set(trailerRepairs, strconv.FormatInt(changed, 10))
	w.Header().Set(trailerViewHit, res.ViewHit())
	if sess != nil {
		frags := s.finishSession(sess)
		var ok, comps int64
		rescans := sess.CustodyRescans()
		for _, f := range frags {
			if f.Err == "" {
				ok++
				comps += f.Comparisons
			}
			rescans += f.CustodyRescans
		}
		w.Header().Set(trailerClusterWorkers, strconv.FormatInt(ok, 10))
		w.Header().Set(trailerClusterComparisons, strconv.FormatInt(comps, 10))
		w.Header().Set(trailerClusterDead, strings.Join(sess.Dead(), ","))
		w.Header().Set(trailerClusterRescans, strconv.FormatInt(rescans, 10))
	}
	// A zero-row result never touched the sink: force the header out so the
	// client sees a completed, empty 200 rather than nothing.
	if cw.n.Load() == 0 {
		w.WriteHeader(http.StatusOK)
	}
}

// failQuery accounts and reports a failed execution. midStream marks a
// failure after response bytes went out: the status line is gone, so the
// only honest signal left is killing the connection — a truncated chunked
// body — rather than closing it cleanly as if the stream were complete.
func (s *Server) failQuery(w http.ResponseWriter, err error, midStream bool) {
	canceled := errors.Is(err, context.Canceled)
	if canceled {
		s.qCanceled.Add(1)
	} else {
		s.qFailed.Add(1)
	}
	if s.cfg.Logf != nil {
		s.cfg.Logf("query failed: %v", err)
	}
	if midStream {
		panic(http.ErrAbortHandler)
	}
	if canceled {
		// The client is gone; nothing readable can be written.
		return
	}
	httpError(w, statusOf(err), err)
}

// statusOf maps execution errors to response codes: deadline → 504, a spent
// comparison budget → 422 (the query is valid but too expensive under the
// configured budget), everything else — parse errors, unknown sources,
// binding mismatches — → 400.
func statusOf(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, engine.ErrBudgetExceeded):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusBadRequest
	}
}

// countingWriter counts response bytes (to tell pre-stream failures from
// mid-stream ones) and forwards Flush so the sink layer's flush-through
// streaming reaches the client per stitched partition.
type countingWriter struct {
	w http.ResponseWriter
	n atomic.Int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(int64(n))
	return n, err
}

func (c *countingWriter) Flush() {
	if f, ok := c.w.(http.Flusher); ok {
		f.Flush()
	}
}

// --- prepared statements over the wire --------------------------------------

// prepareRequest is the body of POST /v1/statements.
type prepareRequest struct {
	Query string `json:"query"`
}

// stmtJSON describes one prepared statement in responses.
type stmtJSON struct {
	Handle string   `json:"handle"`
	Query  string   `json:"query"`
	Params []string `json:"params"`
	Uses   int64    `json:"uses"`
}

// handlePrepare plans a statement once and parks it under a handle; later
// executions bind parameters only. Repeated prepares of the same text also
// exercise the DB's plan cache, so even handle-per-request clients stay
// cheap.
func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxQueryBody)
	var req prepareRequest
	if err := decodeBody(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		httpError(w, http.StatusBadRequest, errors.New("empty query"))
		return
	}
	stmt, err := s.db.PrepareStmtContext(r.Context(), req.Query)
	if err != nil {
		httpError(w, statusOf(err), err)
		return
	}
	s.stmtMu.Lock()
	if len(s.stmts) >= s.cfg.MaxStatements {
		s.stmtMu.Unlock()
		retryAfter(w)
		httpError(w, http.StatusTooManyRequests,
			fmt.Errorf("server: %d prepared statements already open; DELETE unused handles", s.cfg.MaxStatements))
		return
	}
	s.stmtSeq++
	e := &stmtEntry{handle: fmt.Sprintf("st-%d", s.stmtSeq), query: req.Query, stmt: stmt}
	s.stmts[e.handle] = e
	s.stmtMu.Unlock()
	writeJSON(w, http.StatusCreated, stmtJSON{Handle: e.handle, Query: e.query, Params: stmt.Params()})
}

// lookupStmt resolves a handle.
func (s *Server) lookupStmt(handle string) (*stmtEntry, bool) {
	s.stmtMu.Lock()
	defer s.stmtMu.Unlock()
	e, ok := s.stmts[handle]
	return e, ok
}

// handleExecStatement executes a prepared statement by handle; the body
// carries only the parameter bindings, and the response modes match
// /v1/query exactly.
func (s *Server) handleExecStatement(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookupStmt(r.PathValue("handle"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown statement handle %q", r.PathValue("handle")))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxQueryBody)
	var req queryRequest
	if r.ContentLength != 0 {
		if err := decodeBody(r, &req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	}
	e.uses.Add(1)
	s.execute(w, r, execFuncs{
		query:  e.query,
		params: req.Params,
		run: func(ctx context.Context) (*cleandb.Result, error) {
			return e.stmt.ExecContext(ctx, req.args()...)
		},
		stream: func(ctx context.Context, sink cleandb.Sink) (*cleandb.Result, error) {
			return e.stmt.ExecuteTo(ctx, sink, req.args()...)
		},
	})
}

// handleCloseStatement discards a handle.
func (s *Server) handleCloseStatement(w http.ResponseWriter, r *http.Request) {
	handle := r.PathValue("handle")
	s.stmtMu.Lock()
	_, ok := s.stmts[handle]
	delete(s.stmts, handle)
	s.stmtMu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown statement handle %q", handle))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleListStatements lists the open handles.
func (s *Server) handleListStatements(w http.ResponseWriter, r *http.Request) {
	s.stmtMu.Lock()
	out := make([]stmtJSON, 0, len(s.stmts))
	for _, e := range s.stmts {
		out = append(out, stmtJSON{Handle: e.handle, Query: e.query, Params: e.stmt.Params(), Uses: e.uses.Load()})
	}
	s.stmtMu.Unlock()
	sortStmts(out)
	writeJSON(w, http.StatusOK, out)
}
