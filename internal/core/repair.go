package core

import (
	"fmt"

	"cleandb/internal/algebra"
	"cleandb/internal/cleaning"
	"cleandb/internal/engine"
	"cleandb/internal/lang"
	"cleandb/internal/monoid"
	"cleandb/internal/physical"
	"cleandb/internal/types"
)

// RepairSummary reports a completed REPAIR clause: the healed rows plus the
// convergence statistics of the relaxation loop.
type RepairSummary struct {
	// Task names the denial task that requested the repair.
	Task string
	// Source is the repaired catalog dataset; Col the rewritten column.
	Source string
	Col    string
	// Violations counts round-1 violating pairs (as found by the executed
	// detection plan); Changed the values rewritten; Remaining the pairs
	// left after the final round (0 on convergence).
	Violations, Changed, Remaining int64
	// Rounds and Clusters describe the fixpoint loop.
	Rounds, Clusters int
	// Entries lists every value change.
	Entries []cleaning.RepairEntry
	// Rows holds the repaired dataset's records.
	Rows []types.Value
}

// runRepair heals the violations of a denial task: the executed detection
// plan seeds round 1 (seed, when non-nil, is its already-collected output),
// and the cleaning-layer relaxation loop does the rest. When an earlier
// REPAIR clause already healed the same source, the repair starts from those
// healed rows instead — clauses compose — and the plan seed (computed
// against the original data) is discarded in favor of a fresh check.
func (pr *Prepared) runRepair(ex *physical.Executor, t *lang.Task, plan algebra.Plan, seed []types.Value, healed map[string]*engine.Dataset, params map[string]types.Value) (*RepairSummary, error) {
	spec := t.Denial
	src, ok := pr.sources[spec.Source]
	if !ok {
		return nil, fmt.Errorf("core: repair source %q not in catalog", spec.Source)
	}
	// The relaxation loop runs outside the plan executor; rebase the source
	// onto the query's job context so its work is metered and cancellable
	// alongside the rest of the query.
	src = src.WithContext(ex.Ctx)
	cfg, err := buildRepairConfig(spec, pr.pipeline.Config.Theta, params)
	if err != nil {
		return nil, err
	}

	if h, ok := healed[spec.Source]; ok {
		src = h
	} else {
		// Seed with the pairs the optimized plan already found — detection
		// ran through the full comprehension→algebra→physical stack; only
		// the fixpoint re-checks go through DCCheck directly.
		if seed == nil {
			d, err := ex.Exec(plan)
			if err != nil {
				return nil, err
			}
			seed = unwrapOut(d.Collect())
		}
		pairs := make([][2]types.Value, len(seed))
		for i, r := range seed {
			pairs[i] = [2]types.Value{r.Field("a"), r.Field("b")}
		}
		cfg.InitialPairs = pairs
	}

	res, err := cleaning.RepairDC(src, cfg)
	if err != nil {
		return nil, err
	}
	return &RepairSummary{
		Task:       t.Name,
		Source:     spec.Source,
		Col:        cfg.RepairCol,
		Violations: res.Violations, Changed: res.Changed, Remaining: res.Remaining,
		Rounds: res.Rounds, Clusters: res.Clusters,
		Entries: res.Entries,
		Rows:    res.Repaired.Collect(),
	}, nil
}

// buildRepairConfig compiles the analyzed DENIAL structure into the cleaning
// layer's declarative repair configuration: the REPAIR attribute must appear
// in an inequality conjunct against the second alias (the relaxed predicate),
// and a second same-attribute inequality supplies the fixed tuple order.
func buildRepairConfig(spec *lang.DenialSpec, theta physical.ThetaStrategy, params map[string]types.Value) (cleaning.DCRepairConfig, error) {
	var cfg cleaning.DCRepairConfig
	col, err := repairColumn(spec)
	if err != nil {
		return cfg, err
	}
	comp := monoid.NewCompiler()
	comp.Params = params

	predCE, err := comp.Compile(spec.Pred, map[string]int{spec.Alias: 0, spec.SecondAlias: 1})
	if err != nil {
		return cfg, err
	}
	pred := func(t1, t2 types.Value) bool {
		v, err := predCE([]types.Value{t1, t2})
		return err == nil && v.Bool()
	}

	var leftFilter func(types.Value) bool
	if len(spec.T1Conjuncts) > 0 {
		f := spec.T1Conjuncts[0]
		for _, c := range spec.T1Conjuncts[1:] {
			f = &monoid.BinOp{Op: "and", L: f, R: c}
		}
		ce, err := comp.Compile(f, map[string]int{spec.Alias: 0})
		if err != nil {
			return cfg, err
		}
		leftFilter = func(v types.Value) bool {
			out, err := ce([]types.Value{v})
			return err == nil && out.Bool()
		}
	}

	// Classify the cross conjuncts: per-side inequality comparisons of the
	// same attribute either relax (the repair column) or order (the band).
	var bandExpr monoid.Expr
	var bandOp, repairOp string
	for _, c := range spec.CrossConjuncts {
		t1Expr, op, same := sameAttrInequality(c, spec)
		if t1Expr == nil || !same {
			continue
		}
		if f, ok := t1Expr.(*monoid.Field); ok && f.Name == col {
			if repairOp == "" {
				repairOp = op
			}
			continue
		}
		if bandExpr == nil {
			bandExpr = t1Expr
			bandOp = op
		}
	}
	if repairOp == "" {
		return cfg, fmt.Errorf("core: REPAIR(%s) needs an inequality conjunct comparing %s.%s with %s.%s",
			col, spec.Alias, col, spec.SecondAlias, col)
	}
	if bandExpr == nil {
		return cfg, fmt.Errorf("core: REPAIR needs a second same-attribute inequality conjunct to order tuples")
	}
	bandCE, err := comp.Compile(bandExpr, map[string]int{spec.Alias: 0})
	if err != nil {
		return cfg, err
	}

	cfg = cleaning.DCRepairConfig{
		Check: cleaning.DCConfig{
			LeftFilter: leftFilter,
			Pred:       pred,
			Band: func(v types.Value) float64 {
				out, err := bandCE([]types.Value{v})
				if err != nil {
					return 0
				}
				return out.Float()
			},
			BandOp:   bandOp,
			Strategy: theta,
		},
		RepairAttr: func(v types.Value) float64 { return v.Field(col).Float() },
		RepairCol:  col,
		RepairOp:   repairOp,
	}
	return cfg, nil
}

// repairColumn resolves the REPAIR clause attribute to a writable column: it
// must be a direct field access on one of the two aliases.
func repairColumn(spec *lang.DenialSpec) (string, error) {
	f, ok := spec.RepairAttr.(*monoid.Field)
	if !ok {
		return "", fmt.Errorf("core: REPAIR attribute %s must be a column of %s or %s",
			spec.RepairAttr, spec.Alias, spec.SecondAlias)
	}
	v, ok := f.Rec.(*monoid.Var)
	if !ok || (v.Name != spec.Alias && v.Name != spec.SecondAlias) {
		return "", fmt.Errorf("core: REPAIR attribute %s must be a column of %s or %s",
			spec.RepairAttr, spec.Alias, spec.SecondAlias)
	}
	return f.Name, nil
}

// sameAttrInequality destructures c as t1Side OP t2Side with an inequality
// OP, returning the t1-side expression with OP normalized to t1-first, and
// whether both sides read the same attribute.
func sameAttrInequality(c monoid.Expr, spec *lang.DenialSpec) (t1Expr monoid.Expr, op string, same bool) {
	bo, ok := c.(*monoid.BinOp)
	if !ok {
		return nil, "", false
	}
	switch bo.Op {
	case "<", "<=", ">", ">=":
	default:
		return nil, "", false
	}
	refs := func(e monoid.Expr) (t1, t2 bool) {
		for _, v := range monoid.FreeVars(e) {
			if v == spec.Alias {
				t1 = true
			}
			if v == spec.SecondAlias {
				t2 = true
			}
		}
		return
	}
	l1, l2 := refs(bo.L)
	r1, r2 := refs(bo.R)
	var t2Expr monoid.Expr
	op = bo.Op
	switch {
	case l1 && !l2 && r2 && !r1:
		t1Expr, t2Expr = bo.L, bo.R
	case l2 && !l1 && r1 && !r2:
		t1Expr, t2Expr = bo.R, bo.L
		op = flipIneq(op)
	default:
		return nil, "", false
	}
	lhs := monoid.Substitute(t1Expr, spec.Alias, monoid.V("$x")).String()
	rhs := monoid.Substitute(t2Expr, spec.SecondAlias, monoid.V("$x")).String()
	return t1Expr, op, lhs == rhs
}

func flipIneq(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}
