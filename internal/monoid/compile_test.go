package monoid

import (
	"math/rand"
	"testing"

	"cleandb/internal/types"
)

// TestCompiledAgreesWithEvaluator is the compiler-correctness property test:
// random expressions over a two-slot environment evaluate identically in the
// tree-walking evaluator and in compiled form.
func TestCompiledAgreesWithEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	vars := map[string]int{"x": 0, "y": 1}
	cp := NewCompiler()
	ev := NewEvaluator()
	for i := 0; i < 1000; i++ {
		e := randomScalar(rng, []string{"x", "y"})
		ce, err := cp.Compile(e, vars)
		if err != nil {
			t.Fatalf("compile %s: %v", e, err)
		}
		x := types.Int(int64(rng.Intn(11) - 5))
		y := types.Int(int64(rng.Intn(11) - 5))
		want, err1 := ev.Eval(e, (*Env)(nil).Bind("x", x).Bind("y", y))
		got, err2 := ce([]types.Value{x, y})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error mismatch for %s: %v vs %v", e, err1, err2)
		}
		if err1 == nil && !types.Equal(want, got) {
			t.Fatalf("compiled %s = %s, evaluator says %s (x=%s y=%s)", e, got, want, x, y)
		}
	}
}

func TestCompileUnboundVariable(t *testing.T) {
	_, err := NewCompiler().Compile(V("nope"), map[string]int{"x": 0})
	if err == nil {
		t.Fatal("compiling an unbound variable should fail")
	}
}

func TestCompileUnknownFunction(t *testing.T) {
	_, err := NewCompiler().Compile(&Call{Fn: "nosuch"}, nil)
	if err == nil {
		t.Fatal("compiling an unknown function should fail")
	}
}

func TestCompileCallAndRecord(t *testing.T) {
	cp := NewCompiler()
	e := &RecordCtor{Names: []string{"p"}, Fields: []Expr{
		&Call{Fn: "prefix", Args: []Expr{V("s"), CInt(2)}},
	}}
	ce, err := cp.Compile(e, map[string]int{"s": 0})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ce([]types.Value{types.String("hello")})
	if err != nil {
		t.Fatal(err)
	}
	if out.Field("p").Str() != "he" {
		t.Fatalf("compiled record = %s", out)
	}
}

func TestCompileShortCircuit(t *testing.T) {
	cp := NewCompiler()
	// y is a list; y > 0 would be a strange comparison but and-false
	// short-circuits before evaluating it.
	e := &BinOp{Op: "and", L: CBool(false), R: Gt(V("y"), CInt(0))}
	ce, err := cp.Compile(e, map[string]int{"y": 0})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ce([]types.Value{types.Null()})
	if err != nil || out.Bool() {
		t.Fatalf("short-circuit failed: %s, %v", out, err)
	}
}

func TestCompileNestedComprehension(t *testing.T) {
	cp := NewCompiler()
	// sum{ e | e ← xs }
	comp := &Comprehension{M: Sum, Head: V("e"),
		Quals: []Qual{&Generator{Var: "e", Source: V("xs")}}}
	ce, err := cp.Compile(comp, map[string]int{"xs": 0})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ce([]types.Value{types.List(types.Int(2), types.Int(5))})
	if err != nil {
		t.Fatal(err)
	}
	if out.Int() != 7 {
		t.Fatalf("nested comprehension compiled = %s", out)
	}
}

func TestCompileMergeOp(t *testing.T) {
	cp := NewCompiler()
	e := &BinOp{Op: "merge:max", L: V("a"), R: V("b")}
	ce, err := cp.Compile(e, map[string]int{"a": 0, "b": 1})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := ce([]types.Value{types.Int(3), types.Int(9)})
	if out.Int() != 9 {
		t.Fatalf("merge:max = %s", out)
	}
}

func TestCompileListCtor(t *testing.T) {
	cp := NewCompiler()
	e := &ListCtor{Elems: []Expr{V("a"), CInt(2)}}
	ce, err := cp.Compile(e, map[string]int{"a": 0})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := ce([]types.Value{types.Int(1)})
	if len(out.List()) != 2 || out.List()[0].Int() != 1 {
		t.Fatalf("list ctor = %s", out)
	}
}
