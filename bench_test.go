// Benchmark harness: one benchmark per table and figure of the CleanM
// paper's evaluation (§8), each regenerating its result at bench scale, plus
// ablation benchmarks for the design choices DESIGN.md calls out and
// micro-benchmarks of the engine primitives the results rest on.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The experiment tables themselves (paper-shaped output) come from
// `go run ./cmd/experiments`; EXPERIMENTS.md records paper-vs-measured.
package cleandb_test

import (
	"testing"

	"cleandb"
	"cleandb/internal/cleaning"
	"cleandb/internal/cluster"
	"cleandb/internal/datagen"
	"cleandb/internal/engine"
	"cleandb/internal/experiments"
	"cleandb/internal/physical"
	"cleandb/internal/textsim"
	"cleandb/internal/types"
)

func benchScale() experiments.Scale { return experiments.BenchScale() }

// --- One benchmark per paper table / figure. ---

func BenchmarkTable3TermValidationAccuracy(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Table3(s)
	}
}

func BenchmarkFigure3TermValidation(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Figure3(s)
	}
}

func BenchmarkFigure4NoiseAccuracy(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Figure4(s)
	}
}

func BenchmarkFigure5UnifiedCleaning(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Figure5(s)
	}
}

func BenchmarkTable4Transformations(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Table4(s)
	}
}

func BenchmarkFigure6DenialConstraints(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Figure6(s)
	}
}

func BenchmarkTable5InequalityDC(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Table5(s)
	}
}

func BenchmarkFigure7DedupDBLP(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Figure7(s)
	}
}

func BenchmarkFigure8aDedupCustomer(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Figure8a(s)
	}
}

func BenchmarkFigure8bDedupMAG(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Figure8b(s)
	}
}

// --- Ablation benchmarks (design choices from DESIGN.md). ---

func BenchmarkAblationSkewShuffle(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.AblationSkewShuffle(s)
	}
}

func BenchmarkAblationThetaJoin(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.AblationThetaJoin(s)
	}
}

func BenchmarkAblationNestCoalescing(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.AblationNestCoalescing(s)
	}
}

func BenchmarkAblationNormalization(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.AblationNormalization(s)
	}
}

func BenchmarkAblationBlocking(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.AblationBlocking(s)
	}
}

// --- Micro-benchmarks of the primitives the experiments rest on. ---

func BenchmarkLevenshtein(b *testing.B) {
	a, c := "stella giannakopoulou", "stela gianakopoulou"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		textsim.Levenshtein(a, c)
	}
}

func BenchmarkLevenshteinWithinEarlyExit(b *testing.B) {
	a, c := "stella giannakopoulou", "manos karpathiotakis"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		textsim.LevenshteinWithin(a, c, 3)
	}
}

func BenchmarkTokenFilterKeys(b *testing.B) {
	tf := cluster.TokenFilter{Q: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tf.Keys("stella giannakopoulou")
	}
}

func BenchmarkAggregateByKey(b *testing.B) {
	rows := datagen.GenLineitem(datagen.LineitemConfig{Rows: 20000, Seed: 1})
	key := cleaning.FieldsExtract("orderkey", "linenumber")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := engine.NewContext(8)
		engine.FromValues(ctx, rows).AggregateByKey("b", engine.KeyFunc(key), engine.GroupAgg{})
	}
}

func BenchmarkSortShuffleGroup(b *testing.B) {
	rows := datagen.GenLineitem(datagen.LineitemConfig{Rows: 20000, Seed: 1})
	key := cleaning.FieldsExtract("orderkey", "linenumber")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := engine.NewContext(8)
		engine.FromValues(ctx, rows).SortShuffleGroup("b", engine.KeyFunc(key), engine.GroupAgg{})
	}
}

func BenchmarkFDCheck(b *testing.B) {
	rows := datagen.GenLineitem(datagen.LineitemConfig{Rows: 20000, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := engine.NewContext(8)
		cleaning.FDCheck(engine.FromValues(ctx, rows),
			cleaning.FieldsExtract("orderkey", "linenumber"),
			cleaning.FieldExtract("suppkey"),
			physical.GroupAggregate).Count()
	}
}

func BenchmarkDedupTokenFiltering(b *testing.B) {
	data := datagen.GenCustomer(datagen.CustomerConfig{Rows: 2000, DupRate: 0.1, MaxDups: 10, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := engine.NewContext(8)
		cleaning.Dedup(engine.FromValues(ctx, data.Rows), cleaning.DedupConfig{
			Blocker:   cluster.TokenFilter{Q: 3},
			BlockAttr: func(v types.Value) string { return v.Field("name").Str() },
			Metric:    textsim.MetricLevenshtein,
			Theta:     0.7,
		}).Count()
	}
}

func BenchmarkPipelineEndToEnd(b *testing.B) {
	// The full stack: CleanM text → comprehension → algebra → physical →
	// execution, on the running example's FD+FD+DEDUP query.
	data := datagen.GenCustomer(datagen.CustomerConfig{Rows: 2000, DupRate: 0.1, MaxDups: 10, Seed: 1})
	const query = `
SELECT * FROM customer c
FD(c.address, prefix(c.phone))
FD(c.address, c.nationkey)
DEDUP(attribute, LD, 0.8, c.address, c.name, c.phone)`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := cleandb.Open(cleandb.WithWorkers(8))
		db.RegisterRows("customer", data.Rows)
		if _, err := db.Query(query); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryPlanningOnly(b *testing.B) {
	// Front end + both optimizer levels without execution.
	db := cleandb.Open(cleandb.WithWorkers(2))
	data := datagen.GenCustomer(datagen.CustomerConfig{Rows: 10, Seed: 1})
	db.RegisterRows("customer", data.Rows)
	const query = `
SELECT * FROM customer c
FD(c.address, prefix(c.phone))
DEDUP(attribute, LD, 0.8, c.address, c.name)`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Explain(query); err != nil {
			b.Fatal(err)
		}
	}
}
