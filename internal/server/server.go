// Package server exposes a CleanDB instance over HTTP — cleaning as a
// service, the deployment shape the CleanM paper argues for: one optimizable
// language behind one queryable interface instead of per-tool scripts.
//
// The service is a thin shell over the public cleandb API; everything
// service-grade lives below it already (concurrency-safe DB, per-query job
// contexts, the plan cache, lazy sources, streaming sinks). The server adds
// the wire protocol:
//
//	POST /v1/query             execute a CleanM statement; rows stream back
//	                           as NDJSON or CSV (chosen by Accept), or as a
//	                           JSON envelope with ?include=repairs
//	POST /v1/statements        prepare a statement, returning a handle
//	GET  /v1/statements        list prepared statements
//	POST /v1/statements/{h}    execute a prepared statement by handle
//	DELETE /v1/statements/{h}  close a prepared statement
//	GET  /v1/sources           list the source catalog (loaded and pending),
//	                           with per-source delta epochs and append counts
//	POST /v1/sources           register a path or inline payload — lazily,
//	                           without parsing a byte
//	POST /v1/sources/{n}/rows  append rows to a loaded source: text/csv or
//	                           application/x-ndjson body, bumping its delta
//	                           epoch so cached views re-run only the delta
//	GET  /healthz              liveness (503 while draining)
//	GET  /metrics              Prometheus text: engine counters, plan-cache
//	                           hit rate, request counters
//
// Streaming responses pump the query's result partitions straight into the
// HTTP response through the sink layer: partitions encode in parallel,
// stitch in order, and flush through to the client as they land, so response
// memory is bounded by the partitions in flight — never the whole result.
// The request context is the query's job context: a client that disconnects
// mid-stream cancels the running operators through the existing
// engine.Context plumbing, leaking nothing.
//
// Admission control keeps the service survivable under load: at most
// Config.MaxInflight queries execute at once (excess requests get 429 +
// Retry-After), each request may carry a server-side deadline, and BeginDrain
// flips /healthz to 503 so load balancers stop routing before a graceful
// shutdown completes.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cleandb"
	"cleandb/internal/dist"
)

// Config parameterizes the server. The zero value serves with the defaults.
type Config struct {
	// MaxInflight bounds concurrently executing queries (prepared-statement
	// executions included). Requests beyond the bound are rejected
	// immediately with 429 Too Many Requests and a Retry-After header
	// instead of queueing without bound. <= 0 selects DefaultMaxInflight.
	MaxInflight int
	// QueryTimeout, when positive, is the server-side deadline applied to
	// every query execution (on top of the client's own connection
	// lifetime). Exceeding it aborts the engine's operator loops and
	// answers 504.
	QueryTimeout time.Duration
	// MaxStatements bounds the prepared-statement handles held open at once
	// — the other server resource that would otherwise grow without bound
	// under a client that prepares and never closes. Beyond it, prepares
	// answer 429 until handles are DELETEd. <= 0 selects
	// DefaultMaxStatements.
	MaxStatements int
	// Logf, when non-nil, receives one line per completed request.
	Logf func(format string, args ...any)
	// Coordinator, when non-nil, runs this server in the coordinator role:
	// queries fan out across registered workers, and the cluster endpoints
	// (/v1/cluster/register, /v1/cluster/exchange) are mounted. With no
	// workers registered the server behaves exactly like a single-process
	// one.
	Coordinator *dist.Coordinator
	// Worker, when non-nil, runs this server in the worker role: it serves
	// query fragments on /v1/cluster/fragment for its coordinator.
	Worker *dist.Worker
}

// DefaultMaxInflight is the admission bound used when Config leaves
// MaxInflight unset.
const DefaultMaxInflight = 64

// DefaultMaxStatements is the open-handle bound used when Config leaves
// MaxStatements unset.
const DefaultMaxStatements = 256

// Server is the HTTP face of one cleandb.DB. Create it with New, mount
// Handler on an http.Server, and call BeginDrain before shutting down.
type Server struct {
	db  *cleandb.DB
	cfg Config
	mux *http.ServeMux

	// sem holds one token per admitted in-flight query.
	sem      chan struct{}
	draining atomic.Bool

	stmtMu  sync.Mutex
	stmts   map[string]*stmtEntry
	stmtSeq int64

	// Request counters for /metrics: terminal outcome of every execution.
	qOK, qFailed, qCanceled, qRejected atomic.Int64
	inflight                           atomic.Int64

	// Cluster counters for /metrics (coordinator role only): distributed
	// sessions opened, per-worker fragment outcomes, and mid-query
	// evictions survived.
	distSessions, distFragOK, distFragFailed, distEvictions atomic.Int64
}

// stmtEntry is one prepared statement held by handle across requests.
type stmtEntry struct {
	handle string
	query  string
	stmt   *cleandb.Stmt
	uses   atomic.Int64
}

// New builds a Server over db.
func New(db *cleandb.DB, cfg Config) *Server {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.MaxStatements <= 0 {
		cfg.MaxStatements = DefaultMaxStatements
	}
	s := &Server{
		db:    db,
		cfg:   cfg,
		mux:   http.NewServeMux(),
		sem:   make(chan struct{}, cfg.MaxInflight),
		stmts: map[string]*stmtEntry{},
	}
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/statements", s.handlePrepare)
	s.mux.HandleFunc("GET /v1/statements", s.handleListStatements)
	s.mux.HandleFunc("POST /v1/statements/{handle}", s.handleExecStatement)
	s.mux.HandleFunc("DELETE /v1/statements/{handle}", s.handleCloseStatement)
	s.mux.HandleFunc("GET /v1/sources", s.handleListSources)
	s.mux.HandleFunc("POST /v1/sources", s.handleRegisterSource)
	s.mux.HandleFunc("POST /v1/sources/{name}/rows", s.handleAppendRows)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.Coordinator != nil {
		s.mux.HandleFunc("POST /v1/cluster/register", cfg.Coordinator.HandleRegister)
		s.mux.HandleFunc("POST /v1/cluster/exchange", cfg.Coordinator.HandleExchange)
	}
	if cfg.Worker != nil {
		s.mux.HandleFunc("POST /v1/cluster/fragment", cfg.Worker.HandleFragment)
	}
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler {
	if s.cfg.Logf == nil {
		return s.mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.mux.ServeHTTP(w, r)
		s.cfg.Logf("%s %s (%s)", r.Method, r.URL.Path, time.Since(start).Round(time.Millisecond))
	})
}

// BeginDrain flips /healthz to 503 so load balancers stop routing new
// traffic; in-flight queries keep running. Call it before http.Server
// Shutdown, which then waits for them.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// admit takes an in-flight token, or reports rejection when MaxInflight
// queries are already executing.
func (s *Server) admit() bool {
	select {
	case s.sem <- struct{}{}:
		s.inflight.Add(1)
		return true
	default:
		s.qRejected.Add(1)
		return false
	}
}

// release returns an admitted query's token.
func (s *Server) release() {
	s.inflight.Add(-1)
	<-s.sem
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	body := map[string]any{
		"status":   status,
		"inflight": s.inflight.Load(),
	}
	if s.cfg.Coordinator != nil {
		// The coordinator's liveness report: per-worker health and the
		// consistent-placement partition custody of the loaded catalog.
		body["cluster"] = s.cfg.Coordinator.Status()
	}
	if s.cfg.Worker != nil {
		body["role"] = "worker"
	}
	writeJSON(w, code, body)
}

// retryAfter stamps a jittered Retry-After on a 429: spreading the value over
// 1..3 seconds keeps a herd of rejected clients from retrying in lockstep
// against the same admission window.
func retryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(1+rand.IntN(3)))
}

// apiError is the JSON error body every non-streaming failure answers with.
type apiError struct {
	Error string `json:"error"`
}

// writeJSON renders v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// httpError answers an error as a JSON body with the given status.
func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

// decodeBody decodes a JSON request body into v, rejecting unknown fields so
// typos ("querry") fail loudly instead of executing an empty statement.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("request body: %w", err)
	}
	return nil
}

var errTooBusy = errors.New("server: too many in-flight queries, retry later")
