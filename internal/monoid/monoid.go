// Package monoid implements the monoid comprehension calculus (Fegaras &
// Maier, TODS 2000) that CleanM uses as its first abstraction level. Every
// CleanM cleaning operation is de-sugared into a monoid comprehension
//
//	⊕{ e | q1, ..., qn }
//
// where ⊕ is the merge operation of the output monoid, e is the head
// expression, and each qualifier is a generator (v ← collection), a filter
// predicate, or a let binding. The package provides:
//
//   - primitive monoids (sum, prod, count, max, min, all, any) and
//     collection monoids (bag, list, set);
//   - the expression language used inside comprehensions;
//   - a reference evaluator;
//   - the normalization algorithm (§4.2 of the paper): beta reduction,
//     comprehension unnesting, if-splitting, existential unnesting, filter
//     pushdown and static simplification.
package monoid

import (
	"fmt"

	"cleandb/internal/types"
)

// Monoid is an associative merge operation with an identity element and a
// unit injection. Collection monoids additionally construct collections.
type Monoid interface {
	// Name identifies the monoid ("sum", "bag", ...).
	Name() string
	// Zero returns the identity element.
	Zero() types.Value
	// Unit injects a single value.
	Unit(v types.Value) types.Value
	// Merge combines two monoid values; must be associative with Zero as
	// identity. The monoid-law property tests exercise exactly this contract.
	Merge(a, b types.Value) types.Value
	// Idempotent reports x⊕x = x; idempotent (or boolean) output monoids
	// admit existential unnesting during normalization.
	Idempotent() bool
	// Collection reports whether the monoid builds a collection type.
	Collection() bool
}

// ---------------------------------------------------------------------------
// Primitive monoids
// ---------------------------------------------------------------------------

type primitive struct {
	name       string
	zero       types.Value
	unit       func(types.Value) types.Value
	merge      func(a, b types.Value) types.Value
	idempotent bool
}

func (p *primitive) Name() string                       { return p.name }
func (p *primitive) Zero() types.Value                  { return p.zero }
func (p *primitive) Unit(v types.Value) types.Value     { return p.unit(v) }
func (p *primitive) Merge(a, b types.Value) types.Value { return p.merge(a, b) }
func (p *primitive) Idempotent() bool                   { return p.idempotent }
func (p *primitive) Collection() bool                   { return false }

func identity(v types.Value) types.Value { return v }

func numAdd(a, b types.Value) types.Value {
	if a.Kind() == types.KindFloat || b.Kind() == types.KindFloat {
		return types.Float(a.Float() + b.Float())
	}
	return types.Int(a.Int() + b.Int())
}

// Sum adds numeric values; zero is 0.
var Sum Monoid = &primitive{name: "sum", zero: types.Int(0), unit: identity, merge: numAdd}

// Prod multiplies numeric values; zero is 1.
var Prod Monoid = &primitive{name: "prod", zero: types.Int(1), unit: identity,
	merge: func(a, b types.Value) types.Value {
		if a.Kind() == types.KindFloat || b.Kind() == types.KindFloat {
			return types.Float(a.Float() * b.Float())
		}
		return types.Int(a.Int() * b.Int())
	}}

// Count counts elements: unit maps any value to 1.
var Count Monoid = &primitive{name: "count", zero: types.Int(0),
	unit:  func(types.Value) types.Value { return types.Int(1) },
	merge: numAdd}

// Max keeps the larger value (types.Compare order); zero is null, which every
// value dominates.
var Max Monoid = &primitive{name: "max", zero: types.Null(), unit: identity, idempotent: true,
	merge: func(a, b types.Value) types.Value {
		if a.IsNull() {
			return b
		}
		if b.IsNull() {
			return a
		}
		if types.Compare(a, b) >= 0 {
			return a
		}
		return b
	}}

// Min keeps the smaller value; zero is null.
var Min Monoid = &primitive{name: "min", zero: types.Null(), unit: identity, idempotent: true,
	merge: func(a, b types.Value) types.Value {
		if a.IsNull() {
			return b
		}
		if b.IsNull() {
			return a
		}
		if types.Compare(a, b) <= 0 {
			return a
		}
		return b
	}}

// All is boolean conjunction; zero is true.
var All Monoid = &primitive{name: "all", zero: types.Bool(true), unit: identity, idempotent: true,
	merge: func(a, b types.Value) types.Value { return types.Bool(a.Bool() && b.Bool()) }}

// Any is boolean disjunction; zero is false. Existential quantification
// (EXISTS) is the comprehension any{p | ...}.
var Any Monoid = &primitive{name: "any", zero: types.Bool(false), unit: identity, idempotent: true,
	merge: func(a, b types.Value) types.Value { return types.Bool(a.Bool() || b.Bool()) }}

// ---------------------------------------------------------------------------
// Collection monoids
// ---------------------------------------------------------------------------

type collection struct {
	name       string
	idempotent bool
	dedup      bool
}

func (c *collection) Name() string      { return c.name }
func (c *collection) Zero() types.Value { return types.List() }
func (c *collection) Unit(v types.Value) types.Value {
	return types.List(v)
}
func (c *collection) Merge(a, b types.Value) types.Value {
	al, bl := a.List(), b.List()
	if len(al) == 0 {
		if c.dedup {
			return types.ListOf(dedupList(bl))
		}
		return b
	}
	if len(bl) == 0 {
		if c.dedup {
			return types.ListOf(dedupList(al))
		}
		return a
	}
	out := make([]types.Value, 0, len(al)+len(bl))
	out = append(out, al...)
	out = append(out, bl...)
	if c.dedup {
		out = dedupList(out)
	}
	return types.ListOf(out)
}
func (c *collection) Idempotent() bool { return c.idempotent }
func (c *collection) Collection() bool { return true }

func dedupList(vs []types.Value) []types.Value {
	seen := make(map[string]struct{}, len(vs))
	out := make([]types.Value, 0, len(vs))
	for _, v := range vs {
		k := types.Key(v)
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, v)
	}
	return out
}

// Bag is an unordered multiset (represented as a list; order is an
// implementation detail). The default collection type of CleanM scans.
var Bag Monoid = &collection{name: "bag"}

// ListM is an ordered list monoid (append).
var ListM Monoid = &collection{name: "list"}

// Set is a duplicate-free collection; merge unions and is idempotent.
var Set Monoid = &collection{name: "set", idempotent: true, dedup: true}

// ByName resolves a monoid from its name; it reports false for unknown names.
func ByName(name string) (Monoid, bool) {
	switch name {
	case "sum":
		return Sum, true
	case "prod":
		return Prod, true
	case "count":
		return Count, true
	case "max":
		return Max, true
	case "min":
		return Min, true
	case "all":
		return All, true
	case "any":
		return Any, true
	case "bag":
		return Bag, true
	case "list":
		return ListM, true
	case "set":
		return Set, true
	default:
		return nil, false
	}
}

// Fold folds a slice of values through a monoid: merge(unit(v1), unit(v2)...).
func Fold(m Monoid, vs []types.Value) types.Value {
	acc := m.Zero()
	for _, v := range vs {
		acc = m.Merge(acc, m.Unit(v))
	}
	return acc
}

// ---------------------------------------------------------------------------
// Function-composition monoid (paper §4.3, center initialization)
// ---------------------------------------------------------------------------

// StateFn is an element of the function-composition monoid: a state
// transformer. Composition of associative transformers is associative with
// the identity transformer as zero, which is what lets CleanM express
// stateful single-pass algorithms (e.g. reservoir-style center extraction for
// k-means) as monoid operations.
type StateFn func(state types.Value) types.Value

// ComposeState composes two state transformers (g after f).
func ComposeState(f, g StateFn) StateFn {
	if f == nil {
		return g
	}
	if g == nil {
		return f
	}
	return func(s types.Value) types.Value { return g(f(s)) }
}

// IdentityState is the zero of the function-composition monoid.
func IdentityState(s types.Value) types.Value { return s }

// ApplyComposition folds fs into one transformer and applies it to init.
func ApplyComposition(init types.Value, fs []StateFn) types.Value {
	acc := StateFn(nil)
	for _, f := range fs {
		acc = ComposeState(acc, f)
	}
	if acc == nil {
		return init
	}
	return acc(init)
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

// TypeError reports a dynamic typing failure during evaluation.
type TypeError struct {
	Op   string
	Got  types.Kind
	Want string
}

// Error implements the error interface.
func (e *TypeError) Error() string {
	return fmt.Sprintf("monoid: %s: got %s, want %s", e.Op, e.Got, e.Want)
}
