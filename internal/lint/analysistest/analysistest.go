// Package analysistest runs one analyzer over a fixture package and checks
// its diagnostics against // want annotations, mirroring the conventions of
// golang.org/x/tools/go/analysis/analysistest: fixtures live under
// testdata/src/<importpath>/, and a line expecting diagnostics carries a
// trailing comment of Go string literals, each a regexp one diagnostic on
// that line must match:
//
//	for i := range rows { // want `nested loop .* no reachable cancellation`
//
// Unmatched diagnostics and unmatched expectations both fail the test.
// Fixtures import the module's real packages (engine, data, sink, textsim),
// resolved from compiled export data, so the analyzers are tested against the
// true types rather than stubs.
package analysistest

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"cleandb/internal/lint/analysis"
	"cleandb/internal/lint/load"
)

// Run loads testdata/src/<importPath> beneath testdataDir, applies the
// analyzer, and reports any mismatch between diagnostics and // want
// annotations as test errors.
func Run(t *testing.T, testdataDir string, a *analysis.Analyzer, importPath string) {
	t.Helper()
	dir := filepath.Join(testdataDir, "src", filepath.FromSlash(importPath))
	pkg, err := load.FixturePackage(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", importPath, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Pkg,
		TypesInfo: pkg.TypesInfo,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, pkg)

	// Match diagnostics against expectations on their line.
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := lineKey{pos.Filename, pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.re)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

// wantRE extracts the Go string literals following a "// want" marker.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants parses every // want comment in the fixture. The expectation
// anchors to the line the comment starts on.
func collectWants(t *testing.T, pkg *load.Package) map[lineKey][]*want {
	t.Helper()
	wants := map[lineKey][]*want{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				marker, rest := splitWant(c)
				if !marker {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := lineKey{pos.Filename, pos.Line}
				lits := wantRE.FindAllString(rest, -1)
				if len(lits) == 0 {
					t.Errorf("%s: // want comment with no string literals", pos)
					continue
				}
				for _, lit := range lits {
					s, err := strconv.Unquote(lit)
					if err != nil {
						t.Errorf("%s: bad want literal %s: %v", pos, lit, err)
						continue
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, s, err)
						continue
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

// splitWant reports whether the comment is a // want annotation and returns
// the text after the marker.
func splitWant(c *ast.Comment) (bool, string) {
	const marker = "// want "
	if len(c.Text) > len(marker) && c.Text[:len(marker)] == marker {
		return true, c.Text[len(marker):]
	}
	return false, ""
}
