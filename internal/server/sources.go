package server

import (
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"

	"cleandb"
	"cleandb/internal/source"
)

// sourceJSON describes one catalog entry over the wire.
type sourceJSON struct {
	Name   string `json:"name"`
	Format string `json:"format"`
	// Loaded reports whether the source has been scanned into partitions;
	// registered-but-unreferenced sources stay pending (and unparsed).
	Loaded bool   `json:"loaded"`
	Error  string `json:"error,omitempty"`
	// Rows is exact once loaded, a cheap hint before (-1 when counting
	// would require a parse).
	Rows  int64 `json:"rows"`
	Bytes int64 `json:"bytes"`
	// BaseGen and DeltaEpoch identify the loaded data's incremental state:
	// BaseGen moves when a reset re-scan replaces the base partitions,
	// DeltaEpoch on every append. Together with the append counters they let
	// a client tell "same rows as last poll" from "grown since".
	BaseGen    int64 `json:"base_gen"`
	DeltaEpoch int64 `json:"delta_epoch"`
	// Appends counts append operations since load; AppendedRows the rows
	// they landed. A reset re-scan folds both back into the base.
	Appends      int64 `json:"appends"`
	AppendedRows int64 `json:"appended_rows"`
}

func toSourceJSON(info cleandb.SourceInfo) sourceJSON {
	out := sourceJSON{
		Name: info.Name, Format: info.Format, Loaded: info.Loaded,
		Rows: info.Rows, Bytes: info.Bytes,
		BaseGen: info.BaseGen, DeltaEpoch: info.DeltaEpoch,
		Appends: info.Appends, AppendedRows: info.AppendedRows,
	}
	if info.Err != nil {
		out.Error = info.Err.Error()
	}
	return out
}

// handleListSources reports the catalog — loaded and pending — without
// triggering any load.
func (s *Server) handleListSources(w http.ResponseWriter, r *http.Request) {
	infos := s.db.SourceInfos()
	out := make([]sourceJSON, len(infos))
	for i, info := range infos {
		out[i] = toSourceJSON(info)
	}
	writeJSON(w, http.StatusOK, out)
}

// registerSourceRequest is the body of POST /v1/sources: either a server-side
// path (format inferred from the extension) or an inline payload with an
// explicit format. Registration is lazy either way — nothing is parsed until
// the first query references the source.
type registerSourceRequest struct {
	Name string `json:"name"`
	// Path registers a file on the server's filesystem.
	Path string `json:"path,omitempty"`
	// Format and Data (or DataBase64 for binary colbin payloads) register an
	// inline payload. Formats: csv, json, xml, colbin.
	Format     string `json:"format,omitempty"`
	Data       string `json:"data,omitempty"`
	DataBase64 string `json:"data_base64,omitempty"`
}

// handleRegisterSource adds a catalog entry. The payload is recorded, not
// parsed: a malformed file surfaces on first use, exactly as with the Go
// API's lazy registration — except for path registrations, where a stat
// catches typo'd paths immediately.
func (s *Server) handleRegisterSource(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxSourceBody)
	var req registerSourceRequest
	if err := decodeBody(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if req.Name == "" {
		httpError(w, http.StatusBadRequest, errors.New("source name is required"))
		return
	}
	switch {
	case req.Path != "" && (req.Data != "" || req.DataBase64 != ""):
		httpError(w, http.StatusBadRequest, errors.New("give either path or inline data, not both"))
		return
	case req.Path != "":
		if _, err := os.Stat(req.Path); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if err := s.db.RegisterFile(req.Name, req.Path); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	default:
		src, err := inlineSource(&req)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		s.db.RegisterSource(req.Name, src)
	}
	info, err := s.db.SourceInfo(req.Name)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusCreated, toSourceJSON(info))
}

// handleAppendRows appends inline rows to a registered source, dispatching
// on Content-Type: text/csv appends through the source's CSV schema,
// application/x-ndjson as JSON lines. Unlike registration this is eager —
// the payload parses now, so a malformed row is a 400 here and the catalog
// never holds half an append. The response is the source's refreshed
// description; its delta_epoch advances on every successful call, which is
// what delta-aware views and the cluster fingerprint key on.
func (s *Server) handleAppendRows(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, err := s.db.SourceInfo(name); err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxSourceBody)
	var buf strings.Builder
	if _, err := copyBody(&buf, r); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	payload := []byte(buf.String())
	if len(payload) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("empty append payload"))
		return
	}
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	var err error
	switch ct {
	case "text/csv":
		err = s.db.AppendCSV(name, payload)
	case "application/x-ndjson", "application/jsonl", "application/json-lines":
		err = s.db.AppendJSONL(name, payload)
	default:
		httpError(w, http.StatusUnsupportedMediaType,
			fmt.Errorf("unsupported Content-Type %q (want text/csv or application/x-ndjson)", ct))
		return
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	info, err := s.db.SourceInfo(name)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, toSourceJSON(info))
}

// inlineSource builds a byte-backed source from an inline payload.
func inlineSource(req *registerSourceRequest) (cleandb.Source, error) {
	var buf []byte
	switch {
	case req.Data != "" && req.DataBase64 != "":
		return nil, errors.New("give either data or data_base64, not both")
	case req.DataBase64 != "":
		b, err := base64.StdEncoding.DecodeString(req.DataBase64)
		if err != nil {
			return nil, fmt.Errorf("data_base64: %w", err)
		}
		buf = b
	case req.Data != "":
		buf = []byte(req.Data)
	default:
		return nil, errors.New("inline registration needs data or data_base64")
	}
	switch strings.ToLower(req.Format) {
	case "csv":
		return source.CSVBytes(buf), nil
	case "json", "jsonl", "ndjson":
		return source.JSONBytes(buf), nil
	case "xml":
		return source.XMLBytes(buf), nil
	case "colbin":
		return source.ColbinBytes(buf), nil
	case "":
		return nil, errors.New("inline registration needs a format (csv, json, xml, colbin)")
	default:
		return nil, fmt.Errorf("unknown format %q (want csv, json, xml or colbin)", req.Format)
	}
}

// maxQueryBody and maxSourceBody bound request bodies: statements are small,
// inline payloads may not be.
const (
	maxQueryBody  = 1 << 20
	maxSourceBody = 64 << 20
)

// copyBody drains the request body into w. The handlers already wrap the
// body in http.MaxBytesReader, so an oversized body surfaces as its "request
// body too large" error here — never as a silent truncation.
func copyBody(w io.Writer, r *http.Request) (int64, error) {
	return io.Copy(w, r.Body)
}

// sortStmts orders statement listings by handle sequence number.
func sortStmts(out []stmtJSON) {
	sort.Slice(out, func(i, j int) bool {
		a, _ := strconv.Atoi(strings.TrimPrefix(out[i].Handle, "st-"))
		b, _ := strconv.Atoi(strings.TrimPrefix(out[j].Handle, "st-"))
		return a < b
	})
}
