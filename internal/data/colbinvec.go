package data

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"cleandb/internal/types"
)

// Vector-native colbin codec: decode column chunks straight into typed
// Column vectors (no boxed values, no transpose) and encode Column vectors
// straight back into chunks. The byte output matches the row-based encoder
// exactly, so a colbin file written from batches is indistinguishable from
// one written from rows.

// DecodeColumnVec decodes column c into a typed vector, interning string
// chunk dictionaries into dict. The on-disk chunk dictionary is remapped
// into dict with one interning per distinct string — no per-row hashing.
// List columns come back as boxed VecAny vectors (their nesting has no
// vector form).
func (info *ColbinInfo) DecodeColumnVec(c int, dict *Dict) (Column, error) {
	t := info.Types[c]
	if t == ColStringList {
		vals, err := info.DecodeColumn(c)
		if err != nil {
			return Column{}, err
		}
		return Column{Kind: VecAny, Vals: vals}, nil
	}
	cur := &byteCursor{buf: info.extents[c]}
	nrows := info.Rows
	bitmap, err := cur.take((nrows + 7) / 8)
	if err != nil {
		return Column{}, err
	}
	var nulls []uint64
	for i := 0; i < nrows; i++ {
		if bitmap[i/8]&(1<<(i%8)) != 0 {
			if nulls == nil {
				nulls = newNulls(nrows)
			}
			setNull(nulls, i)
		}
	}
	col := Column{Nulls: nulls}
	switch t {
	case ColInt:
		col.Kind = VecInt
		col.Ints = make([]int64, nrows)
		for i := 0; i < nrows; i++ {
			n, err := cur.varint()
			if err != nil {
				return Column{}, err
			}
			col.Ints[i] = n
		}
	case ColFloat:
		col.Kind = VecFloat
		col.Floats = make([]float64, nrows)
		for i := 0; i < nrows; i++ {
			b, err := cur.take(8)
			if err != nil {
				return Column{}, err
			}
			col.Floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(b))
		}
	case ColBool:
		col.Kind = VecBool
		col.Bools = make([]bool, nrows)
		for i := 0; i < nrows; i++ {
			b, err := cur.byte()
			if err != nil {
				return Column{}, err
			}
			col.Bools[i] = b != 0
		}
	case ColString:
		col.Kind = VecStr
		codes, err := decodeStringChunkCodes(cur, nrows, dict)
		if err != nil {
			return Column{}, err
		}
		col.Codes = codes
	default:
		vals, err := info.DecodeColumn(c)
		if err != nil {
			return Column{}, err
		}
		return Column{Kind: VecAny, Vals: vals}, nil
	}
	return col, nil
}

// decodeStringChunkCodes reads a string chunk as dictionary codes: the
// chunk's local dictionary is interned into dict once, then the per-row
// indices are remapped through that table.
func decodeStringChunkCodes(cur *byteCursor, n int, dict *Dict) ([]uint32, error) {
	dictSize, err := cur.uvarint()
	if err != nil {
		return nil, err
	}
	if dictSize > uint64(cur.remaining()) {
		return nil, fmt.Errorf("data: colbin: dictionary size %d exceeds input", dictSize)
	}
	remap := make([]uint32, dictSize)
	for i := range remap {
		s, err := cur.str()
		if err != nil {
			return nil, err
		}
		remap[i] = dict.Code(s)
	}
	var empty uint32
	emptySet := false
	out := make([]uint32, n)
	for i := 0; i < n; i++ {
		idx, err := cur.uvarint()
		if err != nil {
			return nil, err
		}
		if idx == 0 || idx > uint64(len(remap)) {
			// Out-of-range indices decode as "" — same as DecodeColumn.
			if !emptySet {
				//lint:ignore dictcode interned at most once, and only when a dangling index occurs — hoisting would pollute the dictionary with ""
				empty = dict.Code("")
				emptySet = true
			}
			out[i] = empty
		} else {
			out[i] = remap[idx-1]
		}
	}
	return out, nil
}

// ColTypeForColumn infers the colbin column type of a vector with the same
// result the row-based ColbinTypeOf would give for the boxed rows: typed
// vectors map directly, all-null columns fall back to ColString, boxed
// vectors are scanned value by value.
func ColTypeForColumn(col *Column, strs []string) ColType {
	if col.Kind == VecAny {
		return ColTypeOfValues(col.Vals)
	}
	allNull := true
	n := col.Len()
	for i := 0; i < n; i++ {
		if !col.Null(i) {
			allNull = false
			break
		}
	}
	if allNull {
		return ColString
	}
	switch col.Kind {
	case VecInt:
		return ColInt
	case VecFloat:
		return ColFloat
	case VecBool:
		return ColBool
	default:
		return ColString
	}
}

// ColTypeOfValues is ColbinTypeOf over a flat value slice.
func ColTypeOfValues(vals []types.Value) ColType {
	t := ColInt
	decided := false
	for _, v := range vals {
		switch v.Kind() {
		case types.KindNull:
			continue
		case types.KindInt:
			if !decided {
				t = ColInt
				decided = true
			}
			if t == ColFloat || t == ColInt {
				continue
			}
			return ColString
		case types.KindFloat:
			if !decided || t == ColInt {
				t = ColFloat
				decided = true
				continue
			}
			if t == ColFloat {
				continue
			}
			return ColString
		case types.KindBool:
			if !decided {
				t = ColBool
				decided = true
				continue
			}
			if t != ColBool {
				return ColString
			}
		case types.KindString:
			if !decided {
				t = ColString
				decided = true
				continue
			}
			if t != ColString {
				return ColString
			}
		case types.KindList:
			return ColStringList
		default:
			return ColString
		}
	}
	if !decided {
		return ColString
	}
	return t
}

// EncodeColumnVec encodes a column vector as one colbin chunk (null bitmap
// plus typed payload), byte-identical to EncodeColbinColumn over the boxed
// rows. strs is the dictionary snapshot for VecStr columns. When the vector
// kind cannot encode as t directly, the column is boxed and encoded through
// the value path.
func EncodeColumnVec(col *Column, strs []string, t ColType) ([]byte, error) {
	fast := (col.Kind == VecInt && t == ColInt) ||
		(col.Kind == VecFloat && t == ColFloat) ||
		(col.Kind == VecBool && t == ColBool) ||
		(col.Kind == VecStr && t == ColString)
	if !fast {
		n := col.Len()
		vals := make([]types.Value, n)
		for i := 0; i < n; i++ {
			vals[i] = col.Value(i, strs)
		}
		return EncodeValuesColumn(vals, t)
	}
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	n := col.Len()
	bitmap := make([]byte, (n+7)/8)
	for i := 0; i < n; i++ {
		if col.Null(i) {
			bitmap[i/8] |= 1 << (i % 8)
		}
	}
	bw.Write(bitmap)
	switch col.Kind {
	case VecInt:
		for i, v := range col.Ints {
			if col.Null(i) {
				v = 0 // the row encoder writes Null.Int() == 0
			}
			writeVarint(bw, v)
		}
	case VecFloat:
		var b [8]byte
		for i, v := range col.Floats {
			if col.Null(i) {
				v = 0
			}
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			bw.Write(b[:])
		}
	case VecBool:
		for i, v := range col.Bools {
			b := byte(0)
			if v && !col.Null(i) {
				b = 1
			}
			bw.WriteByte(b)
		}
	case VecStr:
		vals := make([]string, n)
		for i, c := range col.Codes {
			if col.Null(i) {
				vals[i] = "null" // Null.String(), as the row encoder writes
			} else {
				vals[i] = strs[c]
			}
		}
		writeStringChunk(bw, vals)
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// EncodeValuesColumn encodes a flat value slice as one colbin chunk,
// mirroring writeColumn over rows.
func EncodeValuesColumn(vals []types.Value, t ColType) ([]byte, error) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	bitmap := make([]byte, (len(vals)+7)/8)
	for i, v := range vals {
		if v.IsNull() {
			bitmap[i/8] |= 1 << (i % 8)
		}
	}
	bw.Write(bitmap)
	switch t {
	case ColInt:
		for _, v := range vals {
			writeVarint(bw, v.Int())
		}
	case ColFloat:
		var b [8]byte
		for _, v := range vals {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.Float()))
			bw.Write(b[:])
		}
	case ColBool:
		for _, v := range vals {
			b := byte(0)
			if v.Bool() {
				b = 1
			}
			bw.WriteByte(b)
		}
	case ColString:
		ss := make([]string, len(vals))
		for i, v := range vals {
			ss[i] = v.String()
		}
		writeStringChunk(bw, ss)
	case ColStringList:
		var flat []string
		for _, v := range vals {
			if v.Kind() == types.KindList {
				writeUvarint(bw, uint64(len(v.List())))
				for _, e := range v.List() {
					flat = append(flat, e.String())
				}
			} else if v.IsNull() {
				writeUvarint(bw, 0)
			} else {
				writeUvarint(bw, 1)
				flat = append(flat, v.String())
			}
		}
		writeStringChunk(bw, flat)
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
