// Package types defines the dynamic value model shared by every layer of
// CleanDB: the monoid calculus, the nested relational algebra, the physical
// engine and the data-format readers. Values are self-describing and support
// arbitrary nesting (lists of records, records of lists), which is what lets
// CleanM clean hierarchical data (JSON/XML) without flattening it first.
package types

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindList
	KindRecord
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindList:
		return "list"
	case KindRecord:
		return "record"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed datum. The zero Value is Null.
//
// Values are small struct copies; lists and records share underlying storage,
// so callers must not mutate a Value obtained from a Dataset.
type Value struct {
	kind Kind
	b    bool
	i    int64
	f    float64
	s    string
	l    []Value
	r    *Record
}

// Record is an ordered collection of named fields. The schema is shared by
// all records produced by the same scan, keeping per-row memory low.
type Record struct {
	Schema *Schema
	Fields []Value
}

// Schema maps field names to positions. Build one with NewSchema and share it.
type Schema struct {
	Names []string
	index map[string]int
}

// NewSchema builds a schema for the given field names.
func NewSchema(names ...string) *Schema {
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	return &Schema{Names: names, index: idx}
}

// Index returns the position of the named field and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Has reports whether the schema contains the named field.
func (s *Schema) Has(name string) bool {
	_, ok := s.index[name]
	return ok
}

// Extend returns a new schema with extra field names appended.
func (s *Schema) Extend(extra ...string) *Schema {
	names := make([]string, 0, len(s.Names)+len(extra))
	names = append(names, s.Names...)
	names = append(names, extra...)
	return NewSchema(names...)
}

// Null is the null value.
func Null() Value { return Value{kind: KindNull} }

// Bool wraps a bool.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Int wraps an int64.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float wraps a float64.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// String wraps a string.
func String(s string) Value { return Value{kind: KindString, s: s} }

// List wraps a slice of values. The slice is not copied.
func List(vs ...Value) Value { return Value{kind: KindList, l: vs} }

// ListOf wraps an existing slice without copying.
func ListOf(vs []Value) Value { return Value{kind: KindList, l: vs} }

// NewRecord builds a record value over schema with the given fields.
// len(fields) must equal len(schema.Names).
func NewRecord(schema *Schema, fields []Value) Value {
	if len(fields) != len(schema.Names) {
		panic(fmt.Sprintf("types: record arity %d does not match schema arity %d", len(fields), len(schema.Names)))
	}
	return Value{kind: KindRecord, r: &Record{Schema: schema, Fields: fields}}
}

// Kind returns the dynamic kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Bool returns the boolean payload; false for non-bool values.
func (v Value) Bool() bool { return v.kind == KindBool && v.b }

// Int returns the integer payload, converting from float if needed.
func (v Value) Int() int64 {
	switch v.kind {
	case KindInt:
		return v.i
	case KindFloat:
		return int64(v.f)
	case KindBool:
		if v.b {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// Float returns the numeric payload as float64.
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	default:
		return 0
	}
}

// Str returns the string payload; empty for non-strings.
func (v Value) Str() string {
	if v.kind == KindString {
		return v.s
	}
	return ""
}

// List returns the list payload; nil for non-lists.
func (v Value) List() []Value {
	if v.kind == KindList {
		return v.l
	}
	return nil
}

// Record returns the record payload; nil for non-records.
func (v Value) Record() *Record {
	if v.kind == KindRecord {
		return v.r
	}
	return nil
}

// Field returns the named field of a record value. Missing fields and
// non-record receivers yield Null, which mirrors SQL semantics for
// projections over dirty data.
func (v Value) Field(name string) Value {
	if v.kind != KindRecord {
		return Null()
	}
	if i, ok := v.r.Schema.Index(name); ok {
		return v.r.Fields[i]
	}
	return Null()
}

// IsNumeric reports whether the value is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Truthy reports whether the value counts as true in a filter position:
// booleans use their payload, everything else is false except non-null
// presence checks are left to the caller.
func (v Value) Truthy() bool { return v.kind == KindBool && v.b }

// Equal reports deep equality. Numeric int/float compare by value.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Compare orders two values. Nulls sort first; numeric kinds compare by
// value; mismatched non-numeric kinds compare by kind tag; lists and records
// compare lexicographically.
func Compare(a, b Value) int {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == KindNull && b.kind == KindNull:
			return 0
		case a.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.IsNumeric() && b.IsNumeric() {
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindBool:
		switch {
		case a.b == b.b:
			return 0
		case !a.b:
			return -1
		default:
			return 1
		}
	case KindString:
		return strings.Compare(a.s, b.s)
	case KindList:
		n := len(a.l)
		if len(b.l) < n {
			n = len(b.l)
		}
		for i := 0; i < n; i++ {
			if c := Compare(a.l[i], b.l[i]); c != 0 {
				return c
			}
		}
		return len(a.l) - len(b.l)
	case KindRecord:
		ar, br := a.r, b.r
		n := len(ar.Fields)
		if len(br.Fields) < n {
			n = len(br.Fields)
		}
		for i := 0; i < n; i++ {
			if c := Compare(ar.Fields[i], br.Fields[i]); c != 0 {
				return c
			}
		}
		return len(ar.Fields) - len(br.Fields)
	default:
		return 0
	}
}

// Hash returns a stable FNV-1a hash of the value, suitable for partitioning
// and hash joins. Equal values hash equally (ints and equal floats included).
func Hash(v Value) uint64 {
	h := fnv.New64a()
	hashInto(h, v)
	return h.Sum64()
}

type hasher interface {
	Write(p []byte) (int, error)
}

func hashInto(h hasher, v Value) {
	var tag [1]byte
	switch v.kind {
	case KindNull:
		tag[0] = 0
		h.Write(tag[:])
	case KindBool:
		tag[0] = 1
		if v.b {
			tag[0] = 2
		}
		h.Write(tag[:])
	case KindInt, KindFloat:
		// Hash numerics through float64 bits so Int(3) and Float(3.0)
		// land in the same bucket, matching Compare.
		tag[0] = 3
		h.Write(tag[:])
		bits := math.Float64bits(v.Float())
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	case KindString:
		tag[0] = 4
		h.Write(tag[:])
		h.Write([]byte(v.s))
	case KindList:
		tag[0] = 5
		h.Write(tag[:])
		for _, e := range v.l {
			hashInto(h, e)
		}
	case KindRecord:
		tag[0] = 6
		h.Write(tag[:])
		for _, e := range v.r.Fields {
			hashInto(h, e)
		}
	}
}

// Key renders a canonical string key for grouping. Unlike String it is
// unambiguous (strings are quoted) so distinct values yield distinct keys.
func Key(v Value) string {
	var sb strings.Builder
	keyInto(&sb, v)
	return sb.String()
}

func keyInto(sb *strings.Builder, v Value) {
	switch v.kind {
	case KindNull:
		sb.WriteString("∅")
	case KindBool:
		if v.b {
			sb.WriteString("#t")
		} else {
			sb.WriteString("#f")
		}
	case KindInt:
		sb.WriteString(strconv.FormatInt(v.i, 10))
	case KindFloat:
		if v.f == math.Trunc(v.f) && math.Abs(v.f) < 1e15 {
			sb.WriteString(strconv.FormatInt(int64(v.f), 10))
		} else {
			sb.WriteString(strconv.FormatFloat(v.f, 'g', -1, 64))
		}
	case KindString:
		sb.WriteString(strconv.Quote(v.s))
	case KindList:
		sb.WriteByte('[')
		for i, e := range v.l {
			if i > 0 {
				sb.WriteByte(',')
			}
			keyInto(sb, e)
		}
		sb.WriteByte(']')
	case KindRecord:
		sb.WriteByte('(')
		for i, e := range v.r.Fields {
			if i > 0 {
				sb.WriteByte(',')
			}
			keyInto(sb, e)
		}
		sb.WriteByte(')')
	}
}

// String renders the value for humans.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindList:
		parts := make([]string, len(v.l))
		for i, e := range v.l {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case KindRecord:
		parts := make([]string, len(v.r.Fields))
		for i, e := range v.r.Fields {
			parts[i] = v.r.Schema.Names[i] + ": " + e.String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	default:
		return "?"
	}
}

// SizeBytes estimates the in-memory footprint of the value; the engine cost
// model uses it to account for shuffle volume.
func SizeBytes(v Value) int {
	switch v.kind {
	case KindNull, KindBool:
		return 1
	case KindInt, KindFloat:
		return 8
	case KindString:
		return 16 + len(v.s)
	case KindList:
		n := 24
		for _, e := range v.l {
			n += SizeBytes(e)
		}
		return n
	case KindRecord:
		n := 24
		for _, e := range v.r.Fields {
			n += SizeBytes(e)
		}
		return n
	default:
		return 1
	}
}

// SortValues sorts a slice of values in Compare order, in place.
func SortValues(vs []Value) {
	sort.Slice(vs, func(i, j int) bool { return Compare(vs[i], vs[j]) < 0 })
}

// FieldsOf extracts the named fields from a record value, in order.
func FieldsOf(v Value, names []string) []Value {
	out := make([]Value, len(names))
	for i, n := range names {
		out[i] = v.Field(n)
	}
	return out
}

// CompositeKey builds a grouping key value from several field values: the
// single value itself when len==1, else a list.
func CompositeKey(vs []Value) Value {
	if len(vs) == 1 {
		return vs[0]
	}
	return ListOf(vs)
}
