package cleaning

import (
	"testing"

	"cleandb/internal/engine"
	"cleandb/internal/types"
)

var zipSchema = types.NewSchema("country", "zip", "state")

func zipRec(country, zip, state string) types.Value {
	return types.NewRecord(zipSchema, []types.Value{
		types.String(country), types.String(zip), types.String(state),
	})
}

func TestCFDVariableViolations(t *testing.T) {
	ctx := engine.NewContext(4)
	ds := engine.FromValues(ctx, []types.Value{
		zipRec("US", "90210", "CA"),
		zipRec("US", "90210", "NV"), // violates zip→state within country=US
		zipRec("UK", "90210", "LN"), // different country: out of scope
		zipRec("US", "10001", "NY"),
	})
	variable, _ := CFDCheck(ds, CFDConfig{
		LHS: FieldExtract("zip"),
		RHS: FieldExtract("state"),
		Patterns: []CFDPattern{
			{Conditions: map[string]types.Value{"country": types.String("US")}},
		},
	})
	out := variable.Collect()
	if len(out) != 1 {
		t.Fatalf("variable violations = %d, want 1: %v", len(out), out)
	}
	if out[0].Field("key").Str() != "90210" {
		t.Fatalf("violating zip = %s", out[0].Field("key"))
	}
	// The UK record must not be in the group.
	if len(out[0].Field("group").List()) != 2 {
		t.Fatalf("group should hold the two US records: %s", out[0])
	}
}

func TestCFDConstantViolations(t *testing.T) {
	ctx := engine.NewContext(4)
	ds := engine.FromValues(ctx, []types.Value{
		zipRec("US", "90210", "CA"),
		zipRec("US", "90210", "XX"), // violates the constant pattern
		zipRec("US", "10001", "NY"), // different zip: pattern does not apply
	})
	_, constant := CFDCheck(ds, CFDConfig{
		LHS: FieldExtract("zip"),
		RHS: FieldExtract("state"),
		Patterns: []CFDPattern{
			{
				Conditions: map[string]types.Value{
					"country": types.String("US"),
					"zip":     types.String("90210"),
				},
				RHSConst: types.String("CA"),
			},
		},
	})
	out := constant.Collect()
	if len(out) != 1 {
		t.Fatalf("constant violations = %d, want 1: %v", len(out), out)
	}
	if out[0].Field("got").Str() != "XX" || out[0].Field("expected").Str() != "CA" {
		t.Fatalf("violation = %s", out[0])
	}
}

func TestCFDEmptyTableauIsPlainFD(t *testing.T) {
	ctx := engine.NewContext(4)
	rows := []types.Value{
		zipRec("US", "1", "A"),
		zipRec("UK", "1", "B"), // with no tableau, zip→state is violated
	}
	variable, _ := CFDCheck(engine.FromValues(ctx, rows), CFDConfig{
		LHS: FieldExtract("zip"),
		RHS: FieldExtract("state"),
	})
	plain := FDCheck(engine.FromValues(ctx, rows), FieldExtract("zip"), FieldExtract("state"), 0)
	if variable.Count() != plain.Count() {
		t.Fatalf("empty tableau should equal plain FD: %d vs %d", variable.Count(), plain.Count())
	}
}

func TestCFDPatternMatches(t *testing.T) {
	p := CFDPattern{Conditions: map[string]types.Value{"country": types.String("US")}}
	if !p.Matches(zipRec("US", "1", "A")) {
		t.Fatal("should match US")
	}
	if p.Matches(zipRec("UK", "1", "A")) {
		t.Fatal("should not match UK")
	}
	empty := CFDPattern{}
	if !empty.Matches(zipRec("UK", "1", "A")) {
		t.Fatal("empty pattern matches everything")
	}
}
