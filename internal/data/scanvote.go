package data

import "cleandb/internal/types"

// Partition-custody scans split a source's chunks across cluster members, but
// CSV type inference is global: every chunk votes on every column. Under
// custody each member can only vote for the chunks it parsed, so the votes
// themselves travel the exchange — one frameScanVote frame per chunk — and
// every member folds the full vote set before building typed rows. The fold
// reproduces global inference exactly because the lattice (int ⊑ float ⊑
// string) is an order-independent max over per-cell ranks.

// ColVote is one column's type vote from one scanned chunk. Voted is false
// when the chunk held no non-empty cell for the column, in which case Type is
// the ColString default and must not constrain the merge.
type ColVote struct {
	Type  ColType
	Voted bool
}

// ColVotes pairs InferColumnTypesSeen's two results into one vote vector.
func ColVotes(ts []ColType, voted []bool) []ColVote {
	out := make([]ColVote, len(ts))
	for i := range ts {
		out[i] = ColVote{Type: ts[i], Voted: i < len(voted) && voted[i]}
	}
	return out
}

// MergeColVotes folds per-chunk vote vectors into the global inference
// result: per column, the lattice join of the voted chunk types, defaulting
// to string when no chunk voted. Equivalent to InferColumnTypesSeen over the
// concatenated chunks.
func MergeColVotes(chunks [][]ColVote, cols int) ([]ColType, []bool) {
	ts := make([]ColType, cols)
	voted := make([]bool, cols)
	for i := range ts {
		ts[i] = ColString
	}
	for _, votes := range chunks {
		for c, v := range votes {
			if c >= cols || !v.Voted {
				continue
			}
			if !voted[c] {
				ts[c], voted[c] = v.Type, true
				continue
			}
			ts[c] = JoinColType(ts[c], v.Type)
		}
	}
	return ts, voted
}

// JoinColType is the inference lattice's join: int ⊑ float ⊑ string. Types
// outside the lattice (bool, lists — never produced by CSV inference) rank
// with string.
func JoinColType(a, b ColType) ColType {
	if colTypeRank(b) > colTypeRank(a) {
		return b
	}
	return a
}

func colTypeRank(t ColType) int {
	switch t {
	case ColInt:
		return 0
	case ColFloat:
		return 1
	default:
		return 2
	}
}

// voteSchema is the row form of a vote vector: one record per column. The
// engine's exchange traffics in rows, so vote vectors cross the Gather
// boundary as records and the dist layer transcodes them to the compact
// frameScanVote wire frames.
var voteSchema = types.NewSchema("coltype", "voted")

// VoteRows renders one chunk's vote vector as exchange rows.
func VoteRows(votes []ColVote) []types.Value {
	out := make([]types.Value, len(votes))
	for i, v := range votes {
		voted := int64(0)
		if v.Voted {
			voted = 1
		}
		out[i] = types.NewRecord(voteSchema, []types.Value{
			types.Int(int64(v.Type)), types.Int(voted),
		})
	}
	return out
}

// VotesOfRows parses rows produced by VoteRows (possibly after a wire round
// trip) back into a vote vector.
func VotesOfRows(rows []types.Value) ([]ColVote, error) {
	out := make([]ColVote, len(rows))
	for i, r := range rows {
		rec := r.Record()
		if rec == nil || len(rec.Fields) != 2 ||
			rec.Fields[0].Kind() != types.KindInt || rec.Fields[1].Kind() != types.KindInt {
			return nil, corrupt("row %d is not a scan vote", i)
		}
		t := rec.Fields[0].Int()
		if t < 0 || t > int64(ColStringList) {
			return nil, corrupt("row %d: column type %d out of range", i, t)
		}
		out[i] = ColVote{Type: ColType(t), Voted: rec.Fields[1].Int() != 0}
	}
	return out, nil
}

// EncodeScanVoteFrame seals one chunk's vote vector as a wire frame. Votes
// are tiny — two bytes per column — so the frame skips the string/schema
// tables the row codecs carry.
func EncodeScanVoteFrame(votes []ColVote) []byte {
	payload := make([]byte, 0, 2*len(votes))
	for _, v := range votes {
		payload = append(payload, byte(v.Type))
		if v.Voted {
			payload = append(payload, 1)
		} else {
			payload = append(payload, 0)
		}
	}
	return sealFrame(frameScanVote, payload)
}

// DecodeScanVoteFrame decodes a frame produced by EncodeScanVoteFrame,
// applying the same corruption checks as DecodeRowsFrame: bad magic, length,
// crc, frame type, or vote bytes all error, never panic.
func DecodeScanVoteFrame(buf []byte) ([]ColVote, error) {
	typ, payload, err := openFrame(buf)
	if err != nil {
		return nil, err
	}
	if typ != frameScanVote {
		return nil, corrupt("frame type %d is not a scan vote", typ)
	}
	if len(payload)%2 != 0 {
		return nil, corrupt("scan vote payload of %d bytes is not column pairs", len(payload))
	}
	out := make([]ColVote, len(payload)/2)
	for i := range out {
		t, v := payload[2*i], payload[2*i+1]
		if t > byte(ColStringList) {
			return nil, corrupt("column %d: type %d out of range", i, t)
		}
		if v > 1 {
			return nil, corrupt("column %d: invalid voted byte %d", i, v)
		}
		out[i] = ColVote{Type: ColType(t), Voted: v == 1}
	}
	return out, nil
}
