package cluster

import (
	"fmt"

	"cleandb/internal/textsim"
)

// DBSCAN is the density-based partitional technique the paper lists next to
// k-means (§4.3: "the distance from the other elements of the cluster"). Fit
// discovers density-connected clusters of strings; Keys then assigns values
// to the cluster of their nearest core point, so DBSCAN can serve as a
// Blocker in similarity joins like the other techniques.
type DBSCAN struct {
	// Eps is the neighborhood radius as a distance (1 - similarity).
	Eps float64
	// MinPts is the minimum neighborhood size for a core point.
	MinPts int
	// Metric measures similarity (distance = 1 - similarity).
	Metric textsim.Metric

	core   []string // core points, cluster id = index into clusterOf
	coreID []int
}

// Name implements Blocker.
func (d *DBSCAN) Name() string { return fmt.Sprintf("dbscan(eps=%.2f)", d.Eps) }

// Fit runs density clustering over values (O(n²) distance computations; fit
// on a sample or dictionary, as with k-means centers).
func (d *DBSCAN) Fit(values []string) {
	n := len(values)
	dist := func(a, b string) float64 { return 1 - d.Metric.Sim(a, b) }
	// Neighborhoods.
	neighbors := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if dist(values[i], values[j]) <= d.Eps {
				neighbors[i] = append(neighbors[i], j)
				neighbors[j] = append(neighbors[j], i)
			}
		}
	}
	const unvisited, noise = -2, -1
	clusterOf := make([]int, n)
	for i := range clusterOf {
		clusterOf[i] = unvisited
	}
	next := 0
	for i := 0; i < n; i++ {
		if clusterOf[i] != unvisited {
			continue
		}
		if len(neighbors[i])+1 < d.MinPts {
			clusterOf[i] = noise
			continue
		}
		// Expand a new cluster from this core point.
		id := next
		next++
		clusterOf[i] = id
		queue := append([]int(nil), neighbors[i]...)
		for len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			if clusterOf[j] == noise {
				clusterOf[j] = id // border point
			}
			if clusterOf[j] != unvisited {
				continue
			}
			clusterOf[j] = id
			if len(neighbors[j])+1 >= d.MinPts {
				queue = append(queue, neighbors[j]...)
			}
		}
	}
	d.core = d.core[:0]
	d.coreID = d.coreID[:0]
	for i, v := range values {
		if clusterOf[i] >= 0 && len(neighbors[i])+1 >= d.MinPts {
			d.core = append(d.core, v)
			d.coreID = append(d.coreID, clusterOf[i])
		}
	}
}

// Clusters returns the number of discovered clusters.
func (d *DBSCAN) Clusters() int {
	max := -1
	for _, id := range d.coreID {
		if id > max {
			max = id
		}
	}
	return max + 1
}

// Keys implements Blocker: the cluster whose nearest core point is within
// Eps; values outside every cluster get their own noise group (they are
// still compared with near-identical noise values sharing the group key).
func (d *DBSCAN) Keys(s string) []string {
	best, bestDist := -1, 2.0
	for i, c := range d.core {
		dist := 1 - d.Metric.Sim(s, c)
		if dist < bestDist {
			best, bestDist = i, dist
		}
	}
	if best >= 0 && bestDist <= d.Eps {
		return []string{centerKey(d.coreID[best])}
	}
	return []string{"noise:" + s}
}

// KeyCost implements KeyCoster: one distance per core point.
func (d *DBSCAN) KeyCost(string) int64 { return int64(len(d.core)) }
