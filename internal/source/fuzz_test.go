package source

import (
	"bytes"
	"context"
	"testing"

	"cleandb/internal/data"
	"cleandb/internal/types"
)

// FuzzCSVParallelMatchesSequential is the equivalence oracle for the
// chunk-parallel CSV loader: whenever the seed sequential reader accepts an
// input, every parallelism degree must accept it too and produce the same
// rows in the same order. (When the sequential reader rejects an input the
// chunked one is allowed to fail with a different message — both paths see
// the same malformed bytes, just split differently.)
// FuzzAppendCSVRows is the equivalence oracle for the CSV tail scan: cut a
// file at a line boundary, Scan the prefix, grow the buffer to the full
// input and TailScan — whenever the tail path accepts without demanding a
// reset, base rows + tail rows must equal a cold Scan of the whole input.
// The merged type commitment (base types lattice-joined with the tail's
// votes, resetting on any widening of a voted column) is exactly what makes
// this hold, so the fuzzer is hunting type-merge bugs.
func FuzzAppendCSVRows(f *testing.F) {
	f.Add([]byte("a,b\n1,x\n2,y\n3,z\n"), uint8(1))
	f.Add([]byte("a,b\n1,2\n3,4\n5.5,6\n"), uint8(0))
	f.Add([]byte("a,b\n,\n,\n1,x\n"), uint8(1))
	f.Add([]byte("id,name\n1,\"multi\nline\"\n2,\"esc\"\"aped\"\n"), uint8(2))
	f.Add([]byte("h\n1\n2\n"), uint8(0))
	f.Fuzz(func(t *testing.T, in []byte, splitHint uint8) {
		var nls []int
		for i, c := range in {
			if c == '\n' {
				nls = append(nls, i)
			}
		}
		if len(nls) == 0 {
			return
		}
		cut := nls[int(splitHint)%len(nls)] + 1
		src := CSVBytes(in[:cut])
		baseParts, err := src.Scan(context.Background(), 2)
		if err != nil {
			return
		}
		src.src.buf = in // the file grows past the scanned high-water mark
		tail, reset, err := src.TailScan(context.Background())
		if err != nil || reset {
			return // a rejected or resetting tail makes no equivalence claim
		}
		got := append(flatten(baseParts), tail...)

		coldParts, err := CSVBytes(in).Scan(context.Background(), 1)
		if err != nil {
			t.Fatalf("tail accepted but cold scan failed: %v", err)
		}
		want := flatten(coldParts)
		if len(got) != len(want) {
			t.Fatalf("base+tail %d rows, cold scan %d", len(got), len(want))
		}
		for i := range want {
			if !types.Equal(got[i], want[i]) {
				t.Fatalf("row %d: base+tail %v != cold %v", i, got[i], want[i])
			}
		}
	})
}

func FuzzCSVParallelMatchesSequential(f *testing.F) {
	f.Add([]byte("a,b\n1,x\n2,y\n"))
	f.Add([]byte("id,name\n1,\"multi\nline\"\n2,\"esc\"\"aped\"\n"))
	f.Add([]byte("a,b,c\n1,,3\n,2,\n"))
	f.Add([]byte("h\n"))
	f.Add([]byte(""))
	f.Add([]byte("a,b\r\n1,2\r\n"))
	f.Fuzz(func(t *testing.T, in []byte) {
		want, err := data.ReadCSV(bytes.NewReader(in))
		if err != nil {
			return
		}
		for _, parts := range []int{1, 2, 3, 8} {
			got, err := CSVBytes(in).Scan(context.Background(), parts)
			if err != nil {
				t.Fatalf("parts=%d: sequential accepted but parallel failed: %v", parts, err)
			}
			flat := flatten(got)
			if len(flat) != len(want) {
				t.Fatalf("parts=%d: %d rows, want %d", parts, len(flat), len(want))
			}
			for i := range want {
				if !types.Equal(flat[i], want[i]) {
					t.Fatalf("parts=%d row %d: %v != %v", parts, i, flat[i], want[i])
				}
			}
		}
	})
}
