package source

import (
	"bytes"
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sync"

	"cleandb/internal/data"
	"cleandb/internal/types"
)

// CSV is a CSV source (header row, type-inferred columns). Its Scan splits
// the body on row boundaries and parses the chunks on parallel goroutines;
// only type inference — which needs every chunk's vote — runs between the
// two parallel phases.
//
// A successful Scan also records tail state — the header, the inferred
// column types with their voted flags, and the consumed byte offset — so
// TailScan can parse just the bytes appended past the high-water mark and
// ParsePayload can type inline appended rows consistently with the base.
type CSV struct {
	src bytesAt

	mu    sync.Mutex
	state *csvState
}

// csvState is the scan state a tail parse continues from.
type csvState struct {
	header   []string
	schema   *types.Schema
	colTypes []data.ColType
	voted    []bool // per column: any non-empty cell seen so far
	consumed int64  // bytes parsed (header + body), the tail high-water mark
}

// NewCSVFile returns a lazy CSV source over a file path.
func NewCSVFile(path string) *CSV { return &CSV{src: bytesAt{path: path}} }

// CSVBytes returns a CSV source over an in-memory buffer.
func CSVBytes(buf []byte) *CSV { return &CSV{src: bytesAt{buf: buf}} }

// Format implements Source.
func (s *CSV) Format() string { return "csv" }

// Schema returns the header row's column names without parsing the body.
// File-backed sources read a bounded prefix — a header longer than
// headPrefixBytes is reported as an error rather than silently truncated.
func (s *CSV) Schema() ([]string, error) {
	buf, complete, err := s.src.head(headPrefixBytes)
	if err != nil {
		return nil, err
	}
	if len(buf) == 0 {
		return nil, nil
	}
	cr := csv.NewReader(bytes.NewReader(buf))
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err == io.EOF {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("source: csv: %w", err)
	}
	// A header record consuming the whole prefix of a larger file may have
	// been cut mid-record (csv EOF-terminates partial records without
	// error); refuse to guess.
	if !complete && int(cr.InputOffset()) == len(buf) {
		return nil, fmt.Errorf("source: csv: header record exceeds %d-byte prefix", headPrefixBytes)
	}
	return header, nil
}

// Stats implements Source: the byte size is knowable, the row count is not.
func (s *CSV) Stats() (Stats, error) {
	return Stats{Rows: -1, Bytes: s.src.sizeBytes()}, nil
}

// Scan implements Source with a three-phase partition-parallel load:
// chunk the body at row boundaries, parse chunks concurrently into raw
// cells, infer column types globally, then build typed records concurrently
// — each chunk landing as one ordered partition.
func (s *CSV) Scan(ctx context.Context, parts int) ([][]types.Value, error) {
	buf, err := s.src.bytes()
	if err != nil {
		return nil, err
	}
	out, st, err := scanCSV(ctx, buf, parts)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.state = st
	s.mu.Unlock()
	return out, nil
}

func scanCSV(ctx context.Context, buf []byte, parts int) ([][]types.Value, *csvState, error) {
	if parts < 1 {
		parts = 1
	}
	if len(buf) == 0 {
		return nil, nil, nil
	}
	header, hEnd, err := csvHeader(buf)
	if err != nil {
		return nil, nil, err
	}
	if header == nil {
		return nil, nil, nil
	}
	headerLines := bytes.Count(buf[:hEnd], []byte{'\n'})
	chunks, baseLines := splitCSVBody(buf[hEnd:], parts)

	// Phase 1: parse raw cells per chunk, in parallel. Parse errors are
	// rebased from chunk-relative to absolute file line numbers, matching
	// what the sequential reader reports for the same input.
	raw := make([][][]string, len(chunks))
	err = runParallel(ctx, len(chunks), parts, func(i int) error {
		rows, err := parseCSVChunk(chunks[i], headerLines+baseLines[i])
		if err != nil {
			return err
		}
		raw[i] = rows
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	// Phase 2: global type inference — every chunk votes on every column, so
	// the result matches the sequential reader exactly.
	colTypes, voted := data.InferColumnTypesSeen(raw, len(header))

	// Phase 3: build typed records per chunk, in parallel, landing each
	// chunk as one ordered partition.
	schema := types.NewSchema(header...)
	out := make([][]types.Value, len(chunks))
	err = runParallel(ctx, len(chunks), parts, func(i int) error {
		rows := raw[i]
		vals := make([]types.Value, len(rows))
		for j, row := range rows {
			fields := make([]types.Value, len(header))
			for c := range header {
				var cell string
				if c < len(row) {
					cell = row[c]
				}
				fields[c] = data.ParseCell(cell, colTypes[c])
			}
			vals[j] = types.NewRecord(schema, fields)
		}
		out[i] = vals
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	st := &csvState{
		header:   header,
		schema:   schema,
		colTypes: colTypes,
		voted:    voted,
		consumed: int64(len(buf)),
	}
	return out, st, nil
}

// Consumed implements Tailer.
func (s *CSV) Consumed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == nil {
		return 0
	}
	return s.state.consumed
}

// TailScan implements Tailer: it parses only the bytes appended past the
// last scan's high-water mark. The tail's cells vote on column types under
// the same lattice the base scan used; if a voted base column would widen
// (old cells like "1" parse differently as int vs float), the tail cannot
// be represented consistently and reset=true asks the caller for a full
// re-scan. A column the base scan defaulted (all empty) adopts the tail's
// type — the base cells are nulls under any type. The mark only advances
// when the tail parses cleanly.
func (s *CSV) TailScan(ctx context.Context) ([]types.Value, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state
	if st == nil {
		return nil, true, nil // no base scan recorded: caller must Scan
	}
	buf, err := s.src.bytes()
	if err != nil {
		return nil, false, err
	}
	if int64(len(buf)) < st.consumed {
		return nil, true, nil // truncated or rewritten: full re-scan
	}
	// Without a trailing newline the base scan's last record would glue
	// onto appended bytes, changing an already-delivered row; re-scan.
	if st.consumed > 0 && buf[st.consumed-1] != '\n' && int64(len(buf)) > st.consumed {
		return nil, true, nil
	}
	tail := buf[st.consumed:]
	if len(tail) == 0 {
		return nil, false, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	cr := csv.NewReader(bytes.NewReader(tail))
	cr.FieldsPerRecord = -1
	raw, err := cr.ReadAll()
	if err != nil {
		return nil, false, fmt.Errorf("source: csv: tail: %w", err)
	}
	tailTypes, tailVoted := data.InferColumnTypesSeen([][][]string{raw}, len(st.header))
	merged := make([]data.ColType, len(st.header))
	for c := range st.header {
		switch {
		case !tailVoted[c]:
			merged[c] = st.colTypes[c]
		case !st.voted[c]:
			merged[c] = tailTypes[c]
		default:
			j := joinColType(st.colTypes[c], tailTypes[c])
			if j != st.colTypes[c] {
				return nil, true, nil // widening: base cells would re-type
			}
			merged[c] = j
		}
	}
	rows := buildCSVRows(raw, st.header, st.schema, merged)
	st.colTypes = merged
	for c := range st.voted {
		st.voted[c] = st.voted[c] || tailVoted[c]
	}
	st.consumed = int64(len(buf))
	return rows, false, nil
}

// ParsePayload parses inline appended CSV rows (no header line) with the
// column types the base scan inferred; cells that do not parse under the
// column's type fall back to strings, exactly as ParseCell treats any
// malformed cell. It requires a prior Scan (the header and types come from
// it) and does not move the file high-water mark — payload rows exist only
// in the catalog, not in the backing file.
func (s *CSV) ParsePayload(payload []byte) ([]types.Value, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state
	if st == nil {
		return nil, fmt.Errorf("source: csv: payload append before first scan")
	}
	cr := csv.NewReader(bytes.NewReader(payload))
	cr.FieldsPerRecord = -1
	raw, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("source: csv: payload: %w", err)
	}
	return buildCSVRows(raw, st.header, st.schema, st.colTypes), nil
}

// buildCSVRows types raw cells into records, sharing the base scan's schema
// so appended rows batch and compare identically to base rows.
func buildCSVRows(raw [][]string, header []string, schema *types.Schema, colTypes []data.ColType) []types.Value {
	vals := make([]types.Value, len(raw))
	for j, row := range raw {
		fields := make([]types.Value, len(header))
		for c := range header {
			var cell string
			if c < len(row) {
				cell = row[c]
			}
			fields[c] = data.ParseCell(cell, colTypes[c])
		}
		vals[j] = types.NewRecord(schema, fields)
	}
	return vals
}

// joinColType is the inference lattice's join: int ⊑ float ⊑ string.
func joinColType(a, b data.ColType) data.ColType { return data.JoinColType(a, b) }

// csvHeader lets the csv reader itself find the header record's end: it
// skips blank leading lines and handles quoting/CRLF exactly as the
// sequential reader does, and InputOffset marks where the body starts. A nil
// header with nil error means blank input.
func csvHeader(buf []byte) ([]string, int, error) {
	hr := csv.NewReader(bytes.NewReader(buf))
	hr.FieldsPerRecord = -1
	header, err := hr.Read()
	if err == io.EOF {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("source: csv: %w", err)
	}
	return header, int(hr.InputOffset()), nil
}

// parseCSVChunk parses one body chunk's raw cells, rebasing parse errors by
// the chunk's preceding line count so they report absolute file positions.
func parseCSVChunk(chunk []byte, baseLines int) ([][]string, error) {
	cr := csv.NewReader(bytes.NewReader(chunk))
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		var pe *csv.ParseError
		if errors.As(err, &pe) {
			pe.Line += baseLines
			if pe.StartLine > 0 {
				pe.StartLine += baseLines
			}
		}
		return nil, fmt.Errorf("source: csv: %w", err)
	}
	return rows, nil
}

// splitCSVBody cuts the post-header bytes into at most parts chunks, each
// starting on a record boundary, aiming for even byte sizes, and reports
// the number of input lines preceding each chunk (for absolute error line
// numbers). A newline is a record boundary iff it is outside quotes, and
// quote-parity tracking is exact for well-formed CSV (the RFC 4180 escape
// "" toggles twice and nets out). The scan hops newline to newline with
// IndexByte and counts quotes per line with Count — both memchr-speed —
// instead of inspecting every byte, so boundary finding stays a small
// fraction of the parse it enables.
func splitCSVBody(body []byte, parts int) (chunks [][]byte, baseLines []int) {
	if len(body) == 0 {
		return nil, nil
	}
	starts := []int{0}
	baseLines = []int{0}
	pos, line, inQ := 0, 0, false
	for pos < len(body) && len(starts) < parts {
		j := bytes.IndexByte(body[pos:], '\n')
		if j < 0 {
			break
		}
		nl := pos + j
		if bytes.Count(body[pos:nl], []byte{'"'})%2 == 1 {
			inQ = !inQ
		}
		pos = nl + 1
		line++
		if !inQ && pos < len(body) && pos >= len(starts)*len(body)/parts {
			starts = append(starts, pos)
			baseLines = append(baseLines, line)
		}
	}
	chunks = make([][]byte, len(starts))
	for i := range starts {
		end := len(body)
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		chunks[i] = body[starts[i]:end]
	}
	return chunks, baseLines
}
