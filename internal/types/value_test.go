package types

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindBool: "bool", KindInt: "int", KindFloat: "float",
		KindString: "string", KindList: "list", KindRecord: "record",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null should be null")
	}
	if !Bool(true).Bool() || Bool(false).Bool() {
		t.Error("Bool payload mismatch")
	}
	if Int(42).Int() != 42 {
		t.Error("Int payload mismatch")
	}
	if Float(2.5).Float() != 2.5 {
		t.Error("Float payload mismatch")
	}
	if String("hi").Str() != "hi" {
		t.Error("String payload mismatch")
	}
	l := List(Int(1), Int(2))
	if len(l.List()) != 2 {
		t.Error("List payload mismatch")
	}
}

func TestNumericCoercions(t *testing.T) {
	if Float(3.7).Int() != 3 {
		t.Errorf("Float(3.7).Int() = %d, want 3", Float(3.7).Int())
	}
	if Int(3).Float() != 3.0 {
		t.Errorf("Int(3).Float() = %v, want 3.0", Int(3).Float())
	}
	if Bool(true).Int() != 1 || Bool(false).Int() != 0 {
		t.Error("Bool→Int coercion mismatch")
	}
	if String("x").Int() != 0 || String("x").Float() != 0 {
		t.Error("String numeric coercion should be 0")
	}
}

func TestRecordFieldAccess(t *testing.T) {
	s := NewSchema("a", "b")
	r := NewRecord(s, []Value{Int(1), String("two")})
	if r.Field("a").Int() != 1 {
		t.Error("field a mismatch")
	}
	if r.Field("b").Str() != "two" {
		t.Error("field b mismatch")
	}
	if !r.Field("missing").IsNull() {
		t.Error("missing field should be null")
	}
	if !Int(5).Field("a").IsNull() {
		t.Error("field access on non-record should be null")
	}
}

func TestRecordArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRecord with wrong arity should panic")
		}
	}()
	NewRecord(NewSchema("a", "b"), []Value{Int(1)})
}

func TestSchemaExtend(t *testing.T) {
	s := NewSchema("a").Extend("b", "c")
	if len(s.Names) != 3 || !s.Has("c") {
		t.Fatalf("Extend failed: %v", s.Names)
	}
	if i, ok := s.Index("b"); !ok || i != 1 {
		t.Fatalf("Index(b) = %d,%v", i, ok)
	}
}

func TestCompareNumericCrossKind(t *testing.T) {
	if Compare(Int(3), Float(3.0)) != 0 {
		t.Error("Int(3) should equal Float(3.0)")
	}
	if Compare(Int(2), Float(2.5)) >= 0 {
		t.Error("Int(2) should be less than Float(2.5)")
	}
	if Compare(Float(4.5), Int(4)) <= 0 {
		t.Error("Float(4.5) should be greater than Int(4)")
	}
}

func TestCompareNullsFirst(t *testing.T) {
	vals := []Value{Bool(false), Int(0), String(""), List(), Null()}
	for _, v := range vals[:4] {
		if Compare(Null(), v) >= 0 {
			t.Errorf("null should sort before %s", v)
		}
		if Compare(v, Null()) <= 0 {
			t.Errorf("%s should sort after null", v)
		}
	}
	if Compare(Null(), Null()) != 0 {
		t.Error("null == null")
	}
}

func TestCompareListsLexicographic(t *testing.T) {
	a := List(Int(1), Int(2))
	b := List(Int(1), Int(3))
	c := List(Int(1), Int(2), Int(0))
	if Compare(a, b) >= 0 {
		t.Error("[1,2] < [1,3]")
	}
	if Compare(a, c) >= 0 {
		t.Error("[1,2] < [1,2,0] (prefix shorter)")
	}
	if Compare(a, a) != 0 {
		t.Error("list self-compare")
	}
}

func TestHashEqualConsistency(t *testing.T) {
	if Hash(Int(3)) != Hash(Float(3.0)) {
		t.Error("equal numerics must hash equally")
	}
	s := NewSchema("x")
	a := NewRecord(s, []Value{String("v")})
	b := NewRecord(s, []Value{String("v")})
	if Hash(a) != Hash(b) {
		t.Error("equal records must hash equally")
	}
}

func TestKeyDistinguishes(t *testing.T) {
	pairs := [][2]Value{
		{String("1"), Int(1)},
		{String("true"), Bool(true)},
		{List(String("a,b")), List(String("a"), String("b"))},
		{String(""), Null()},
	}
	for _, p := range pairs {
		if Key(p[0]) == Key(p[1]) {
			t.Errorf("Key collision between %s (%v) and %s (%v)", p[0], p[0].Kind(), p[1], p[1].Kind())
		}
	}
}

func TestKeyEqualIffCompareZero(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a := randomValue(rng, 3)
		b := randomValue(rng, 3)
		eq := Compare(a, b) == 0
		keq := Key(a) == Key(b)
		if eq != keq {
			t.Fatalf("Compare==0 (%v) disagrees with Key equality (%v) for %s vs %s", eq, keq, a, b)
		}
	}
}

func TestCompareProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		a := randomValue(rng, 3)
		b := randomValue(rng, 3)
		c := randomValue(rng, 3)
		// Antisymmetry.
		if sign(Compare(a, b)) != -sign(Compare(b, a)) {
			t.Fatalf("antisymmetry violated for %s vs %s", a, b)
		}
		// Reflexivity.
		if Compare(a, a) != 0 {
			t.Fatalf("reflexivity violated for %s", a)
		}
		// Transitivity (on ordered triples).
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			t.Fatalf("transitivity violated for %s, %s, %s", a, b, c)
		}
	}
}

func TestHashQuick(t *testing.T) {
	// Hashing equal constructed values is consistent.
	f := func(i int64, s string) bool {
		return Hash(Int(i)) == Hash(Int(i)) && Hash(String(s)) == Hash(String(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSizeBytesPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		v := randomValue(rng, 3)
		if SizeBytes(v) <= 0 {
			t.Fatalf("SizeBytes(%s) = %d", v, SizeBytes(v))
		}
	}
}

func TestSortValues(t *testing.T) {
	vs := []Value{Int(3), Null(), Int(1), String("a")}
	SortValues(vs)
	if !vs[0].IsNull() || vs[1].Int() != 1 || vs[2].Int() != 3 {
		t.Fatalf("sorted order wrong: %v", vs)
	}
}

func TestCompositeKey(t *testing.T) {
	single := CompositeKey([]Value{Int(1)})
	if single.Kind() != KindInt {
		t.Error("single composite key should be the value itself")
	}
	multi := CompositeKey([]Value{Int(1), Int(2)})
	if multi.Kind() != KindList || len(multi.List()) != 2 {
		t.Error("multi composite key should be a list")
	}
}

func TestFieldsOf(t *testing.T) {
	s := NewSchema("a", "b", "c")
	r := NewRecord(s, []Value{Int(1), Int(2), Int(3)})
	got := FieldsOf(r, []string{"c", "a"})
	if got[0].Int() != 3 || got[1].Int() != 1 {
		t.Fatalf("FieldsOf mismatch: %v", got)
	}
}

func TestValueString(t *testing.T) {
	s := NewSchema("x", "y")
	r := NewRecord(s, []Value{Int(1), List(String("a"))})
	want := "{x: 1, y: [a]}"
	if got := r.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func sign(n int) int {
	switch {
	case n < 0:
		return -1
	case n > 0:
		return 1
	default:
		return 0
	}
}

// randomValue builds a random value with bounded depth; shared by the
// property tests of this and other packages.
func randomValue(rng *rand.Rand, depth int) Value {
	max := 7
	if depth <= 0 {
		max = 5
	}
	switch rng.Intn(max) {
	case 0:
		return Null()
	case 1:
		return Bool(rng.Intn(2) == 0)
	case 2:
		return Int(int64(rng.Intn(21) - 10))
	case 3:
		return Float(float64(rng.Intn(100)) / 4)
	case 4:
		letters := []byte("abc")
		n := rng.Intn(4)
		s := make([]byte, n)
		for i := range s {
			s[i] = letters[rng.Intn(len(letters))]
		}
		return String(string(s))
	case 5:
		n := rng.Intn(3)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randomValue(rng, depth-1)
		}
		return ListOf(elems)
	default:
		s := NewSchema("f1", "f2")
		return NewRecord(s, []Value{randomValue(rng, depth-1), randomValue(rng, depth-1)})
	}
}

func TestReflectDeepEqualNotRequired(t *testing.T) {
	// Guard: Value equality must go through Compare, not reflection; two
	// equal values may differ in representation (int vs float).
	a, b := Int(3), Float(3)
	if reflect.DeepEqual(a, b) {
		t.Skip("representation coincidentally equal")
	}
	if !Equal(a, b) {
		t.Fatal("Equal(Int 3, Float 3) should hold")
	}
}
