// Package cluster implements the clustering and filtering building blocks
// that CleanM uses to prune pairwise comparisons in similarity joins
// (paper §4.2–§4.3): token filtering, the single-pass k-means variant
// inspired by ClusterJoin, multi-pass k-means, canopy clustering, length
// filtering and hierarchical agglomerative clustering.
//
// Each technique is exposed in two equivalent forms:
//
//   - a Blocker, the engine-facing form: a function from a string to the set
//     of group keys it belongs to (words sharing a key are compared);
//   - a monoid (GroupsMonoid), the calculus-facing form used by the monoid
//     layer: unit maps a value to {(key, {value}), ...} and merge unions
//     groups by key. The package's property tests verify the monoid laws,
//     which is what makes the operations first-class citizens of CleanM
//     rather than black-box UDFs.
package cluster

import (
	"fmt"
	"sort"
	"strings"

	"cleandb/internal/textsim"
	"cleandb/internal/types"
)

// Blocker assigns a value to one or more groups; similarity checks are then
// confined within groups. Implementations must be deterministic and
// stateless per call so that blocking distributes across workers.
type Blocker interface {
	// Name identifies the technique ("tf", "kmeans", ...).
	Name() string
	// Keys returns the group keys of s (at least one).
	Keys(s string) []string
}

// KeyCoster is implemented by blocking techniques whose key assignment does
// measurable work per term (distance computations); the cost model charges
// it to the grouping phase.
type KeyCoster interface {
	// KeyCost returns the work units of computing Keys(s).
	KeyCost(s string) int64
}

// TokenFilter blocks strings by their q-grams: two strings share a group iff
// they share a token. Preferred for short strings (paper §4.3: DBLP author
// names average 12.8 characters).
type TokenFilter struct {
	// Q is the token length (paper evaluates q = 2, 3, 4).
	Q int
}

// Name implements Blocker.
func (t TokenFilter) Name() string { return fmt.Sprintf("tf(q=%d)", t.Q) }

// Keys implements Blocker: the distinct q-grams of s.
func (t TokenFilter) Keys(s string) []string { return textsim.UniqueQGrams(s, t.Q) }

// Exact groups values by their exact content — the degenerate blocking used
// when a CleanM DEDUP clause groups on an attribute directly (e.g. "same
// address"), which is what lets the algebraic rewriter coalesce the dedup
// grouping with FD groupings on the same attribute.
type Exact struct{}

// Name implements Blocker.
func (Exact) Name() string { return "attribute" }

// Keys implements Blocker: the value itself.
func (Exact) Keys(s string) []string { return []string{s} }

// LengthFilter groups strings by length bucket; strings whose lengths differ
// by more than Width cannot exceed most similarity thresholds.
type LengthFilter struct {
	// Width is the bucket width in bytes (≥1).
	Width int
}

// Name implements Blocker.
func (l LengthFilter) Name() string { return fmt.Sprintf("len(w=%d)", l.Width) }

// Keys implements Blocker: the string's own bucket plus both neighbours, so
// strings in adjacent buckets still meet in one group.
func (l LengthFilter) Keys(s string) []string {
	w := l.Width
	if w < 1 {
		w = 1
	}
	b := len(s) / w
	keys := []string{lenKey(b)}
	if b > 0 {
		keys = append(keys, lenKey(b-1))
	}
	return keys
}

func lenKey(b int) string { return fmt.Sprintf("L%d", b) }

// KMeans is the paper's single-pass k-means variant (§4.3, after
// ClusterJoin): k centers are extracted up front, then each word is assigned
// in one pass to the center(s) with minimal distance — optionally within
// Delta of the minimum, to favour multiple assignment and protect recall.
type KMeans struct {
	// Centers are the cluster representatives (extracted via the
	// function-composition monoid; see SelectCentersFixedStep).
	Centers []string
	// Delta widens assignment: a word joins every center whose distance is
	// within Delta of the minimum. 0 assigns to the single closest center.
	Delta float64
	// Metric measures distance as 1 - similarity (default Levenshtein).
	Metric textsim.Metric
}

// Name implements Blocker.
func (k KMeans) Name() string { return fmt.Sprintf("kmeans(k=%d)", len(k.Centers)) }

// Keys implements Blocker: the nearest center index (plus any within Delta).
func (k KMeans) Keys(s string) []string {
	if len(k.Centers) == 0 {
		return []string{"c0"}
	}
	dists := make([]float64, len(k.Centers))
	best := 0
	for i, c := range k.Centers {
		dists[i] = 1 - k.Metric.Sim(s, c)
		if dists[i] < dists[best] {
			best = i
		}
	}
	keys := []string{centerKey(best)}
	if k.Delta > 0 {
		for i, d := range dists {
			if i != best && d <= dists[best]+k.Delta {
				keys = append(keys, centerKey(i))
			}
		}
	}
	return keys
}

func centerKey(i int) string { return fmt.Sprintf("c%d", i) }

// KeyCost implements KeyCoster: one distance per center.
func (k KMeans) KeyCost(string) int64 { return int64(len(k.Centers)) }

// SelectCentersFixedStep extracts k centers by taking the N/k, 2N/k, ..., N-th
// elements of values — the parameterization of the function-composition
// monoid shown in §4.3 of the paper. The extraction is associative (it
// appends specific positions to a bag), hence a monoid operation; this
// implementation folds the equivalent state transformer.
func SelectCentersFixedStep(values []string, k int) []string {
	n := len(values)
	if k <= 0 || n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	step := n / k
	if step < 1 {
		step = 1
	}
	centers := make([]string, 0, k)
	for i := step - 1; i < n && len(centers) < k; i += step {
		centers = append(centers, values[i])
	}
	return centers
}

// SelectCentersReservoir extracts k centers with reservoir sampling (Vitter),
// the randomized alternative the paper mentions; seed makes it deterministic.
func SelectCentersReservoir(values []string, k int, seed uint64) []string {
	if k <= 0 {
		return nil
	}
	if len(values) <= k {
		out := make([]string, len(values))
		copy(out, values)
		return out
	}
	res := make([]string, k)
	copy(res, values[:k])
	state := seed | 1
	for i := k; i < len(values); i++ {
		// xorshift64 PRNG; stdlib-only and deterministic.
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		j := state % uint64(i+1)
		if j < uint64(k) {
			res[j] = values[i]
		}
	}
	return res
}

// FitKMeans runs the classic multi-pass k-means over strings (paper §4.3,
// "multi-pass partitional algorithms"): each iteration assigns words to the
// closest center and elects each cluster's medoid as the next center. The
// iteration chain corresponds to n equivalent monoid comprehensions whose
// state (the centers) flows from one to the next.
func FitKMeans(values []string, k, iterations int, metric textsim.Metric) []string {
	centers := SelectCentersFixedStep(values, k)
	if len(centers) == 0 {
		return nil
	}
	for it := 0; it < iterations; it++ {
		clusters := make([][]string, len(centers))
		for _, v := range values {
			best, bestD := 0, 2.0
			for i, c := range centers {
				d := 1 - metric.Sim(v, c)
				if d < bestD {
					best, bestD = i, d
				}
			}
			clusters[best] = append(clusters[best], v)
		}
		changed := false
		for i, cl := range clusters {
			if len(cl) == 0 {
				continue
			}
			m := medoid(cl, metric)
			if m != centers[i] {
				centers[i] = m
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return centers
}

// medoid returns the member of cl minimizing total distance to the others;
// for large clusters it samples to keep fitting cheap.
func medoid(cl []string, metric textsim.Metric) string {
	cand := cl
	if len(cand) > 24 {
		step := len(cand) / 24
		s := make([]string, 0, 24)
		for i := 0; i < len(cand); i += step {
			s = append(s, cand[i])
		}
		cand = s
	}
	best, bestSum := cand[0], -1.0
	for _, c := range cand {
		sum := 0.0
		for _, o := range cand {
			sum += 1 - metric.Sim(c, o)
		}
		if bestSum < 0 || sum < bestSum {
			best, bestSum = c, sum
		}
	}
	return best
}

// Canopy clusters with the canopy technique (McCallum et al.): cheap-metric
// canopies with a loose threshold T1 group candidates; a value may belong to
// several canopies. Use Fit to derive canopy centers, then the Blocker
// interface to assign.
type Canopy struct {
	// T1 is the loose similarity threshold for joining a canopy.
	T1 float64
	// T2 (> T1 in similarity terms) removes a value from the pool when it is
	// tightly covered by a canopy center.
	T2      float64
	Metric  textsim.Metric
	centers []string
}

// Name implements Blocker.
func (c *Canopy) Name() string { return fmt.Sprintf("canopy(%d)", len(c.centers)) }

// Fit selects canopy centers from values. It is deterministic: values are
// taken in order.
func (c *Canopy) Fit(values []string) {
	pool := make([]string, len(values))
	copy(pool, values)
	c.centers = c.centers[:0]
	for len(pool) > 0 {
		center := pool[0]
		c.centers = append(c.centers, center)
		next := pool[:0]
		for _, v := range pool[1:] {
			if c.Metric.Sim(center, v) >= c.T2 {
				continue // tightly covered: drop from pool
			}
			next = append(next, v)
		}
		pool = next
	}
}

// KeyCost implements KeyCoster: one distance per canopy center.
func (c *Canopy) KeyCost(string) int64 { return int64(len(c.centers)) }

// Keys implements Blocker: every canopy whose center is at least T1-similar;
// falls back to the nearest canopy when none qualifies.
func (c *Canopy) Keys(s string) []string {
	var keys []string
	best, bestSim := 0, -1.0
	for i, ctr := range c.centers {
		sim := c.Metric.Sim(s, ctr)
		if sim >= c.T1 {
			keys = append(keys, centerKey(i))
		}
		if sim > bestSim {
			best, bestSim = i, sim
		}
	}
	if len(keys) == 0 && len(c.centers) > 0 {
		keys = append(keys, centerKey(best))
	}
	return keys
}

// HierarchicalClusters performs agglomerative clustering (paper §4.3,
// "hierarchical clustering"): starting from singletons, the pair of clusters
// at minimum distance (single linkage) merges until k clusters remain. Each
// merge step is the Min monoid over pairwise distances.
func HierarchicalClusters(values []string, k int, metric textsim.Metric) [][]string {
	if k < 1 {
		k = 1
	}
	clusters := make([][]string, 0, len(values))
	for _, v := range values {
		clusters = append(clusters, []string{v})
	}
	for len(clusters) > k {
		bi, bj, bestD := -1, -1, 2.0
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				d := singleLinkage(clusters[i], clusters[j], metric)
				if d < bestD {
					bi, bj, bestD = i, j, d
				}
			}
		}
		if bi < 0 {
			break
		}
		clusters[bi] = append(clusters[bi], clusters[bj]...)
		clusters = append(clusters[:bj], clusters[bj+1:]...)
	}
	for _, cl := range clusters {
		sort.Strings(cl)
	}
	return clusters
}

func singleLinkage(a, b []string, metric textsim.Metric) float64 {
	best := 2.0
	for _, x := range a {
		for _, y := range b {
			d := 1 - metric.Sim(x, y)
			if d < best {
				best = d
			}
		}
	}
	return best
}

// ParseBlocker builds a Blocker from a CleanM operator name ("token_filtering",
// "kmeans", "length") with the dictionary/terms available for center fitting.
func ParseBlocker(op string, param int, fitValues []string) (Blocker, error) {
	switch strings.ToLower(strings.TrimSpace(op)) {
	case "token_filtering", "tf", "token filtering":
		q := param
		if q <= 0 {
			q = 3
		}
		return TokenFilter{Q: q}, nil
	case "kmeans", "k-means":
		k := param
		if k <= 0 {
			k = 10
		}
		return KMeans{Centers: SelectCentersFixedStep(fitValues, k), Metric: textsim.MetricLevenshtein}, nil
	case "length", "len":
		w := param
		if w <= 0 {
			w = 2
		}
		return LengthFilter{Width: w}, nil
	case "attribute", "exact":
		return Exact{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown blocking operator %q", op)
	}
}

// Groups materializes the blocker's grouping of values: key → members.
// Deterministic output (keys sorted, members in input order).
func Groups(b Blocker, values []string) map[string][]string {
	out := make(map[string][]string)
	for _, v := range values {
		for _, k := range b.Keys(v) {
			out[k] = append(out[k], v)
		}
	}
	return out
}

// GroupsValue renders a grouping as a canonical types.Value: a list of
// {key, items} records sorted by key with items sorted — the normal form
// used by the GroupsMonoid so that merge order cannot be observed.
func GroupsValue(groups map[string][]string) types.Value {
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	recs := make([]types.Value, 0, len(keys))
	for _, k := range keys {
		items := append([]string(nil), groups[k]...)
		sort.Strings(items)
		iv := make([]types.Value, 0, len(items))
		var prev string
		for i, it := range items {
			if i > 0 && it == prev {
				continue // set semantics within a group
			}
			prev = it
			iv = append(iv, types.String(it))
		}
		recs = append(recs, types.NewRecord(groupEntrySchema, []types.Value{types.String(k), types.ListOf(iv)}))
	}
	return types.ListOf(recs)
}

var groupEntrySchema = types.NewSchema("key", "items")
