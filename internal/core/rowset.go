package core

import (
	"iter"
	"sync"

	"cleandb/internal/par"
	"cleandb/internal/types"
)

// Rowset is a partitioned, immutable view of one result set — the output
// half of the engine's partition hand-off. Executions build Rowsets directly
// from engine partitions, so producing a Result no longer merges every
// partition into one flattened slice; consumers choose their own access
// pattern: Partition/All to stream without any copy, Rows when a flat slice
// is genuinely needed (built once and memoized).
//
// A Rowset is safe for concurrent use. All methods tolerate a nil receiver,
// which behaves as an empty row set — Partition, like any index into an
// empty collection, panics out of range; everything else answers empty.
type Rowset struct {
	parts [][]types.Value
	n     int

	// load materializes the partitions on first access when the result is
	// held in columnar form: a batch-backed result defers row boxing until a
	// consumer actually asks for rows, so exports that drain the vectors
	// directly never box at all.
	load  func() [][]types.Value
	ponce sync.Once

	once sync.Once
	flat []types.Value
}

// NewRowset wraps partitions (shared, not copied) as a Rowset. Callers must
// not mutate parts afterwards.
func NewRowset(parts [][]types.Value) *Rowset {
	rs := &Rowset{parts: parts}
	for _, p := range parts {
		rs.n += len(p)
	}
	return rs
}

// LazyRowset defers partition materialization to first row access. n must be
// the total row count load will produce (known cheaply for columnar results).
func LazyRowset(n int, load func() [][]types.Value) *Rowset {
	return &Rowset{n: n, load: load}
}

// materialized returns the partitions, running the deferred load once.
func (r *Rowset) materialized() [][]types.Value {
	if r.load != nil {
		r.ponce.Do(func() { r.parts = r.load() })
	}
	return r.parts
}

// NumPartitions returns the partition count.
func (r *Rowset) NumPartitions() int {
	if r == nil {
		return 0
	}
	return len(r.materialized())
}

// Partition returns partition i (shared storage; do not mutate). A nil
// Rowset has no partitions, so any index on one is out of range, reported
// without dereferencing the receiver.
func (r *Rowset) Partition(i int) []types.Value {
	if r == nil {
		panic("core: Partition on an empty Rowset")
	}
	return r.materialized()[i]
}

// Partitions returns every partition in order (shared storage; do not
// mutate).
func (r *Rowset) Partitions() [][]types.Value {
	if r == nil {
		return nil
	}
	return r.materialized()
}

// Len returns the total row count without flattening anything.
func (r *Rowset) Len() int {
	if r == nil {
		return 0
	}
	return r.n
}

// All iterates the rows in partition order without materializing a flat
// slice.
func (r *Rowset) All() iter.Seq[types.Value] {
	return func(yield func(types.Value) bool) {
		if r == nil {
			return
		}
		for _, p := range r.materialized() {
			for _, v := range p {
				if !yield(v) {
					return
				}
			}
		}
	}
}

// Rows returns the rows as one flat slice in partition order. The slice is
// built on first call and memoized — repeated calls return the same backing
// array, so treat it as read-only. It is allocated at exact capacity:
// appending to it reallocates rather than corrupting the Rowset. An empty
// Rowset returns nil.
func (r *Rowset) Rows() []types.Value {
	if r == nil || r.n == 0 {
		return nil
	}
	r.once.Do(func() {
		r.flat = make([]types.Value, 0, r.n)
		for _, p := range r.materialized() {
			r.flat = append(r.flat, p...)
		}
	})
	return r.flat
}

// partitionRows slices rows into at most n contiguous chunks without
// copying (par.Chunks) — how a flat row set (repaired rows) re-enters the
// partition-parallel export path.
func partitionRows(rows []types.Value, n int) [][]types.Value {
	return par.Chunks(rows, n)
}
