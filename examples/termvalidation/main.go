// Term validation: validates misspelled author names of a DBLP-style corpus
// against a dictionary, comparing the paper's two pruning techniques (token
// filtering and single-pass k-means) on runtime and accuracy — the §8.1
// experiment as a library program.
//
//	go run ./examples/termvalidation [-pubs 4000] [-noise 0.2]
package main

import (
	"flag"
	"fmt"

	"cleandb/internal/cleaning"
	"cleandb/internal/cluster"
	"cleandb/internal/datagen"
	"cleandb/internal/engine"
	"cleandb/internal/textsim"
	"cleandb/internal/types"
)

func main() {
	pubs := flag.Int("pubs", 4000, "publications to generate")
	noise := flag.Float64("noise", 0.2, "per-name edit rate for dirty names")
	flag.Parse()

	corpus := datagen.GenDBLP(datagen.DBLPConfig{
		Pubs: *pubs, AuthorPool: 1000, NoiseRate: 0.10, EditRate: *noise, Seed: 42,
	})
	dict := make([]string, len(corpus.Dictionary))
	for i, d := range corpus.Dictionary {
		dict[i] = d.Field("term").Str()
	}
	occurrences := datagen.AuthorOccurrences(corpus.Pubs)
	fmt.Printf("corpus: %d pubs, %d author occurrences, %d dictionary names, %d corrupted spellings\n\n",
		len(corpus.Pubs), len(occurrences), len(dict), len(corpus.Truth))

	configs := []struct {
		label   string
		blocker cluster.Blocker
	}{
		{"token filtering q=3", cluster.TokenFilter{Q: 3}},
		{"k-means k=10", cluster.KMeans{
			Centers: cluster.SelectCentersFixedStep(dict, 10),
			Delta:   0.08,
			Metric:  textsim.MetricLevenshtein,
		}},
	}

	fmt.Printf("%-22s %10s %12s %10s %10s %10s\n",
		"config", "compares", "ticks", "precision", "recall", "f-score")
	for _, cfg := range configs {
		ctx := engine.NewContext(8)
		ds := engine.FromValues(ctx, occurrences)
		res := cleaning.TermValidate(ds, cleaning.TermValidationConfig{
			Attr:       func(v types.Value) string { return v.Field("name").Str() },
			Dictionary: dict,
			Blocker:    cfg.blocker,
			Metric:     textsim.MetricLevenshtein,
			Theta:      0.75,
		})
		acc := cleaning.ScoreRepairs(res.Repairs, corpus.Truth)
		fmt.Printf("%-22s %10d %12d %9.1f%% %9.1f%% %9.1f%%\n",
			cfg.label, res.Comparisons, res.GroupTicks+res.SimTicks,
			100*acc.Precision, 100*acc.Recall, 100*acc.FScore)
	}

	fmt.Println("\nsample repairs (token filtering):")
	ctx := engine.NewContext(8)
	res := cleaning.TermValidate(engine.FromValues(ctx, occurrences), cleaning.TermValidationConfig{
		Attr:       func(v types.Value) string { return v.Field("name").Str() },
		Dictionary: dict,
		Blocker:    cluster.TokenFilter{Q: 3},
		Metric:     textsim.MetricLevenshtein,
		Theta:      0.75,
	})
	shown := 0
	for dirty, clean := range res.Repairs {
		fmt.Printf("  %-22q → %q\n", dirty, clean)
		shown++
		if shown == 8 {
			break
		}
	}
}
