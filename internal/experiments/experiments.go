// Package experiments regenerates every table and figure of the CleanM
// paper's evaluation (§8) at laptop scale. Each experiment returns Tables —
// plain-text tables shaped like the paper's — and is exposed both through
// cmd/experiments and the root bench suite.
//
// Absolute numbers differ from the paper (the substrate is the simulated
// engine of internal/engine, not a 10-node Spark cluster); the reproduction
// target is the paper's *shapes*: which system wins, by roughly what factor,
// where crossovers fall, and which runs do not finish. Runs are reported DNF
// when they exceed the experiment's comparison budget, mirroring the paper's
// non-terminating Spark SQL / BigDansing entries.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is a paper-style result table.
type Table struct {
	ID      string // e.g. "Table 3", "Figure 6a"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "  note: %s\n", n)
	}
	return sb.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Scale configures experiment sizes. The Default scale runs the full suite
// in tens of seconds; the Bench scale keeps individual benchmarks fast.
type Scale struct {
	// RowsPerSF scales the TPC-H sweeps (paper SF 15..70).
	RowsPerSF int
	// Customers is the base customer count for Figure 5 / 8a.
	Customers int
	// DBLPPubs is the publication count for the term-validation suite.
	DBLPPubs int
	// DBLPDedupPubs sizes the Figure 7 corpora (two sizes: 1× and 2×).
	DBLPDedupPubs int
	// MAGRows sizes the Figure 8b dataset.
	MAGRows int
	// AuthorPool is the dictionary size.
	AuthorPool int
	// Workers is the simulated cluster width.
	Workers int
	// CompBudget is the per-run comparison budget (DNF detection).
	CompBudget int64
	// Seed makes all generation deterministic.
	Seed int64
}

// DefaultScale is used by cmd/experiments.
func DefaultScale() Scale {
	return Scale{
		RowsPerSF:     600,
		Customers:     3000,
		DBLPPubs:      4000,
		DBLPDedupPubs: 3000,
		MAGRows:       8000,
		AuthorPool:    1200,
		Workers:       8,
		CompBudget:    30_000_000,
		Seed:          42,
	}
}

// BenchScale keeps individual go-test benchmarks around tens of
// milliseconds.
func BenchScale() Scale {
	s := DefaultScale()
	s.RowsPerSF = 120
	s.Customers = 600
	s.DBLPPubs = 800
	s.DBLPDedupPubs = 600
	s.MAGRows = 1500
	s.AuthorPool = 400
	s.CompBudget = 2_000_000
	return s
}

// ms formats a duration in milliseconds with one decimal.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000.0)
}

// ticks formats simulated ticks with thousands separators elided for
// brevity.
func ticks(n int64) string {
	switch {
	case n >= 10_000_000:
		return fmt.Sprintf("%.1fMt", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.1fkt", float64(n)/1e3)
	default:
		return fmt.Sprintf("%dt", n)
	}
}

// pct formats a ratio as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// DNF is the cell text for runs that exceeded their budget.
const DNF = "DNF"
