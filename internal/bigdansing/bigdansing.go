// Package bigdansing simulates the BigDansing baseline (Khayyat et al.,
// SIGMOD 2015) as characterized by the CleanM paper's evaluation:
//
//   - each rule executes as a standalone Scope→Block→Iterate→Detect pipeline
//     of black-box UDFs — no cross-rule optimization, no unified queries;
//   - grouping uses hash-based shuffles of the full dataset (no map-side
//     combine), which Spark's sort-based shuffle outperforms (paper §8.3);
//   - inequality joins partition data in arrival order, compute per-block
//     min/max, and prune non-overlapping block pairs — pruning collapses
//     when the partitioning is not aligned with the rule (rule ψ → DNF);
//   - rules over computed attributes (e.g. prefix(phone)) are unsupported:
//     BigDansing rules reference original attributes only;
//   - deduplication ships as a UDF specific to the TPC-H customer table;
//   - term validation and non-CSV inputs are unsupported.
package bigdansing

import (
	"errors"

	"cleandb/internal/cleaning"
	"cleandb/internal/engine"
	"cleandb/internal/physical"
	"cleandb/internal/textsim"
	"cleandb/internal/types"
)

// ErrUnsupported marks operations outside BigDansing's published scope.
var ErrUnsupported = errors.New("bigdansing: operation not supported")

// ErrNonResponsive marks jobs that exceed the work budget (the paper reports
// BigDansing non-responsive on rule ψ).
var ErrNonResponsive = errors.New("bigdansing: job exceeded budget (non-responsive)")

// System is the simulated BigDansing facade.
type System struct{}

// Name identifies the baseline in experiment reports.
func (System) Name() string { return "BigDansing" }

// FDCheck runs one FD rule as a Block(hash)→Iterate→Detect pipeline. The
// rule must reference stored attributes; computed left/right sides (like
// prefix(phone)) return ErrUnsupported, matching §8.2 ("lacks support for
// values not belonging to the original attributes").
func (System) FDCheck(ds *engine.Dataset, lhsAttrs, rhsAttrs []string, computed bool) (*engine.Dataset, error) {
	if computed {
		return nil, ErrUnsupported
	}
	lhs := cleaning.FieldsExtract(lhsAttrs...)
	rhs := cleaning.FieldsExtract(rhsAttrs...)
	return cleaning.FDCheck(ds, lhs, rhs, physical.GroupHash), nil
}

// DCCheck evaluates an inequality rule with the min/max block-pruning join.
// Because blocks are formed in arrival order, ranges overlap almost always
// and the candidate set approaches the full cross product; realistic sizes
// exceed the budget and report ErrNonResponsive.
func (System) DCCheck(ds *engine.Dataset, cfg cleaning.DCConfig) (*engine.Dataset, error) {
	cfg.Strategy = physical.ThetaMinMax
	out, err := cleaning.DCCheck(ds, cfg)
	if errors.Is(err, engine.ErrBudgetExceeded) {
		return nil, ErrNonResponsive
	}
	return out, err
}

// DedupCustomer is BigDansing's customer-table-specific deduplication UDF
// (the paper notes the implementation is specific to customer): it blocks on
// the address attribute with a hash shuffle of the whole table and compares
// name+phone within blocks.
func (System) DedupCustomer(ds *engine.Dataset, metric textsim.Metric, theta float64) (*engine.Dataset, error) {
	// Verify the input is the customer schema — the UDF hard-codes it.
	ok := false
	//lint:ignore ctxcancel schema probe reads at most one record per partition
	for i := 0; i < ds.NumPartitions() && !ok; i++ {
		for _, v := range ds.Partition(i) {
			rec := v.Record()
			ok = rec != nil && rec.Schema.Has("address") && rec.Schema.Has("name") && rec.Schema.Has("phone")
			break
		}
	}
	if !ok && ds.Count() > 0 {
		return nil, ErrUnsupported
	}
	return cleaning.Dedup(ds, cleaning.DedupConfig{
		Blocker:   nil, // exact address blocking
		BlockAttr: func(v types.Value) string { return v.Field("address").Str() },
		SimAttr: func(v types.Value) string {
			return v.Field("name").Str() + " " + v.Field("phone").Str()
		},
		Metric:   metric,
		Theta:    theta,
		Strategy: physical.GroupHash,
	}), nil
}

// TermValidate is not provided by BigDansing (paper §8.1: "CleanDB is the
// only scale-out data cleaning system that supports term validation").
func (System) TermValidate() error { return ErrUnsupported }

// UnifiedClean is not provided: BigDansing applies one rule at a time
// (paper §8.2: "BigDansing can only apply one operation at a time").
func (System) UnifiedClean() error { return ErrUnsupported }

// SupportsFormat reports whether the baseline reads the given format;
// BigDansing's published binary consumes delimited text only.
func (System) SupportsFormat(format string) bool { return format == "csv" }
