// Package lang implements the CleanM language front end: lexer, parser and
// the "Monoid Rewriter" that de-sugars CleanM's SQL-like surface syntax
// (paper Listing 1) into monoid comprehensions.
//
// The grammar, per the paper:
//
//	SELECT [ALL|DISTINCT] <selectlist> <fromclause>
//	[WHERE <cond>] [GROUP BY <exprs> [HAVING <cond>]]
//	[ FD(<lhs>, <rhs>) | DEDUP(<op>[,<metric>,<theta>][,<attrs>])
//	  | CLUSTER BY(<op>[,<metric>,<theta>],<term>)
//	  | DENIAL(<alias2>, <pred>) [REPAIR(<attr>)] ]*
//
// Scalar expressions may contain parameter placeholders — `?` (positional)
// and `:name` (named) — bound at execute time, so one prepared statement
// serves many differently-parameterized requests.
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString
	TokOp    // operators and punctuation
	TokStar  // *
	TokComma // ,
	TokLParen
	TokRParen
	TokDot
	// TokParam is a parameter placeholder: "?" (positional) or ":name"
	// (named; Text carries the name without the colon).
	TokParam
)

// Token is one lexical unit with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

// Lexer tokenizes CleanM query text.
type Lexer struct {
	src []rune
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: []rune(src)} }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case unicode.IsLetter(c) || c == '_':
		for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) || unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
			l.pos++
		}
		return Token{Kind: TokIdent, Text: string(l.src[start:l.pos]), Pos: start}, nil
	case unicode.IsDigit(c):
		seenDot := false
		for l.pos < len(l.src) && (unicode.IsDigit(l.src[l.pos]) || (!seenDot && l.src[l.pos] == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(l.src[l.pos+1]))) {
			if l.src[l.pos] == '.' {
				seenDot = true
			}
			l.pos++
		}
		return Token{Kind: TokNumber, Text: string(l.src[start:l.pos]), Pos: start}, nil
	case c == '\'' || c == '"':
		quote := c
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != quote {
			sb.WriteRune(l.src[l.pos])
			l.pos++
		}
		if l.pos >= len(l.src) {
			return Token{}, fmt.Errorf("lang: unterminated string at %d", start)
		}
		l.pos++
		return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
	case c == '*':
		l.pos++
		return Token{Kind: TokStar, Text: "*", Pos: start}, nil
	case c == ',':
		l.pos++
		return Token{Kind: TokComma, Text: ",", Pos: start}, nil
	case c == '(':
		l.pos++
		return Token{Kind: TokLParen, Text: "(", Pos: start}, nil
	case c == ')':
		l.pos++
		return Token{Kind: TokRParen, Text: ")", Pos: start}, nil
	case c == '.':
		l.pos++
		return Token{Kind: TokDot, Text: ".", Pos: start}, nil
	case c == '?':
		l.pos++
		return Token{Kind: TokParam, Text: "?", Pos: start}, nil
	case c == ':':
		l.pos++
		if l.pos >= len(l.src) || !(unicode.IsLetter(l.src[l.pos]) || l.src[l.pos] == '_') {
			return Token{}, fmt.Errorf("lang: expected parameter name after ':' at %d", start)
		}
		nameStart := l.pos
		for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) || unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
			l.pos++
		}
		return Token{Kind: TokParam, Text: string(l.src[nameStart:l.pos]), Pos: start}, nil
	default:
		// Multi-character operators first.
		two := ""
		if l.pos+1 < len(l.src) {
			two = string(l.src[l.pos : l.pos+2])
		}
		switch two {
		case "<=", ">=", "<>", "!=", "==", "->":
			l.pos += 2
			return Token{Kind: TokOp, Text: two, Pos: start}, nil
		}
		switch c {
		case '=', '<', '>', '+', '-', '/', '%', ';':
			l.pos++
			return Token{Kind: TokOp, Text: string(c), Pos: start}, nil
		}
		return Token{}, fmt.Errorf("lang: unexpected character %q at %d", string(c), start)
	}
}

// Tokenize lexes the whole input.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
