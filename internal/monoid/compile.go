package monoid

import (
	"fmt"
	"strings"

	"cleandb/internal/types"
)

// CompiledExpr is a closure evaluating an expression against a flat slot
// environment. The physical level compiles hot expressions once per plan and
// invokes the closure per record, avoiding tree-walking and map lookups —
// CleanDB's answer to the "code generation" box of the paper's Figure 2.
type CompiledExpr func(slots []types.Value) (types.Value, error)

// Compiler compiles expressions given a variable→slot mapping.
type Compiler struct {
	Builtins map[string]Builtin
	// Params resolves Param placeholders at compile time. Compilation happens
	// once per execution, so binding here (rather than per record) costs
	// nothing while keeping concurrently-executing bindings independent.
	Params map[string]types.Value
}

// NewCompiler returns a compiler with the default builtins.
func NewCompiler() *Compiler { return &Compiler{Builtins: DefaultBuiltins()} }

// Compile translates e into a closure. vars maps variable names to slot
// indices in the runtime environment. Unknown variables are a compile error.
func (cp *Compiler) Compile(e Expr, vars map[string]int) (CompiledExpr, error) {
	switch n := e.(type) {
	case *Const:
		v := n.Val
		return func([]types.Value) (types.Value, error) { return v, nil }, nil
	case *Param:
		v, ok := cp.Params[n.Key]
		if !ok {
			return nil, fmt.Errorf("monoid: compile: unbound parameter %s", n)
		}
		return func([]types.Value) (types.Value, error) { return v, nil }, nil
	case *Var:
		slot, ok := vars[n.Name]
		if !ok {
			return nil, fmt.Errorf("monoid: compile: unbound variable %q", n.Name)
		}
		return func(s []types.Value) (types.Value, error) { return s[slot], nil }, nil
	case *Field:
		rec, err := cp.Compile(n.Rec, vars)
		if err != nil {
			return nil, err
		}
		name := n.Name
		return func(s []types.Value) (types.Value, error) {
			r, err := rec(s)
			if err != nil {
				return types.Null(), err
			}
			return r.Field(name), nil
		}, nil
	case *BinOp:
		return cp.compileBinOp(n, vars)
	case *UnOp:
		inner, err := cp.Compile(n.E, vars)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "not":
			return func(s []types.Value) (types.Value, error) {
				v, err := inner(s)
				if err != nil {
					return types.Null(), err
				}
				return types.Bool(!v.Bool()), nil
			}, nil
		case "-":
			return func(s []types.Value) (types.Value, error) {
				v, err := inner(s)
				if err != nil {
					return types.Null(), err
				}
				if v.Kind() == types.KindFloat {
					return types.Float(-v.Float()), nil
				}
				return types.Int(-v.Int()), nil
			}, nil
		default:
			return nil, fmt.Errorf("monoid: compile: unknown unary op %q", n.Op)
		}
	case *Call:
		fn, ok := cp.Builtins[n.Fn]
		if !ok {
			return nil, fmt.Errorf("monoid: compile: unknown function %q", n.Fn)
		}
		args := make([]CompiledExpr, len(n.Args))
		for i, a := range n.Args {
			ca, err := cp.Compile(a, vars)
			if err != nil {
				return nil, err
			}
			args[i] = ca
		}
		return func(s []types.Value) (types.Value, error) {
			vals := make([]types.Value, len(args))
			for i, a := range args {
				v, err := a(s)
				if err != nil {
					return types.Null(), err
				}
				vals[i] = v
			}
			return fn(vals)
		}, nil
	case *If:
		cond, err := cp.Compile(n.Cond, vars)
		if err != nil {
			return nil, err
		}
		thn, err := cp.Compile(n.Then, vars)
		if err != nil {
			return nil, err
		}
		els, err := cp.Compile(n.Else, vars)
		if err != nil {
			return nil, err
		}
		return func(s []types.Value) (types.Value, error) {
			c, err := cond(s)
			if err != nil {
				return types.Null(), err
			}
			if c.Bool() {
				return thn(s)
			}
			return els(s)
		}, nil
	case *RecordCtor:
		fields := make([]CompiledExpr, len(n.Fields))
		for i, f := range n.Fields {
			cf, err := cp.Compile(f, vars)
			if err != nil {
				return nil, err
			}
			fields[i] = cf
		}
		schema := n.Schema()
		return func(s []types.Value) (types.Value, error) {
			vals := make([]types.Value, len(fields))
			for i, f := range fields {
				v, err := f(s)
				if err != nil {
					return types.Null(), err
				}
				vals[i] = v
			}
			return types.NewRecord(schema, vals), nil
		}, nil
	case *ListCtor:
		elems := make([]CompiledExpr, len(n.Elems))
		for i, el := range n.Elems {
			ce, err := cp.Compile(el, vars)
			if err != nil {
				return nil, err
			}
			elems[i] = ce
		}
		return func(s []types.Value) (types.Value, error) {
			vals := make([]types.Value, len(elems))
			for i, el := range elems {
				v, err := el(s)
				if err != nil {
					return types.Null(), err
				}
				vals[i] = v
			}
			return types.ListOf(vals), nil
		}, nil
	case *Comprehension:
		// Nested comprehensions inside compiled expressions are evaluated
		// with the reference evaluator over a slot-backed environment.
		names := make([]string, len(vars))
		for name, slot := range vars {
			for len(names) <= slot {
				names = append(names, "")
			}
			names[slot] = name
		}
		ev := &Evaluator{Builtins: cp.Builtins, Params: cp.Params}
		return func(s []types.Value) (types.Value, error) {
			var env *Env
			for i, name := range names {
				if name != "" && i < len(s) {
					env = env.Bind(name, s[i])
				}
			}
			return ev.EvalComprehension(n, env)
		}, nil
	default:
		return nil, fmt.Errorf("monoid: compile: unsupported node %T", e)
	}
}

func (cp *Compiler) compileBinOp(n *BinOp, vars map[string]int) (CompiledExpr, error) {
	if strings.HasPrefix(n.Op, "merge:") {
		m, ok := ByName(strings.TrimPrefix(n.Op, "merge:"))
		if !ok {
			return nil, fmt.Errorf("monoid: compile: unknown merge monoid %q", n.Op)
		}
		l, err := cp.Compile(n.L, vars)
		if err != nil {
			return nil, err
		}
		r, err := cp.Compile(n.R, vars)
		if err != nil {
			return nil, err
		}
		return func(s []types.Value) (types.Value, error) {
			lv, err := l(s)
			if err != nil {
				return types.Null(), err
			}
			rv, err := r(s)
			if err != nil {
				return types.Null(), err
			}
			return m.Merge(lv, rv), nil
		}, nil
	}
	l, err := cp.Compile(n.L, vars)
	if err != nil {
		return nil, err
	}
	r, err := cp.Compile(n.R, vars)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case "and":
		return func(s []types.Value) (types.Value, error) {
			lv, err := l(s)
			if err != nil {
				return types.Null(), err
			}
			if !lv.Bool() {
				return types.Bool(false), nil
			}
			rv, err := r(s)
			if err != nil {
				return types.Null(), err
			}
			return types.Bool(rv.Bool()), nil
		}, nil
	case "or":
		return func(s []types.Value) (types.Value, error) {
			lv, err := l(s)
			if err != nil {
				return types.Null(), err
			}
			if lv.Bool() {
				return types.Bool(true), nil
			}
			rv, err := r(s)
			if err != nil {
				return types.Null(), err
			}
			return types.Bool(rv.Bool()), nil
		}, nil
	case "==":
		return func(s []types.Value) (types.Value, error) {
			lv, err := l(s)
			if err != nil {
				return types.Null(), err
			}
			rv, err := r(s)
			if err != nil {
				return types.Null(), err
			}
			return types.Bool(types.Equal(lv, rv)), nil
		}, nil
	default:
		op := n.Op
		return func(s []types.Value) (types.Value, error) {
			lv, err := l(s)
			if err != nil {
				return types.Null(), err
			}
			rv, err := r(s)
			if err != nil {
				return types.Null(), err
			}
			return ApplyBinOp(op, lv, rv)
		}, nil
	}
}
