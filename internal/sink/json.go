package sink

import (
	"bytes"
	"io"

	"cleandb/internal/data"
	"cleandb/internal/types"
)

// JSONL writes results as JSON lines (one object per row), byte-compatible
// with data.WriteJSON. Like the CSV sink it encodes partitions into local
// buffers on the calling goroutines and stitches them in order; unlike CSV
// it has no header, so the schema passed to Open is ignored — JSON rows
// carry their own field names.
type JSONL struct {
	streamSink
}

// NewJSONL returns a JSON-lines sink over an io.Writer.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{streamSink{w: w}} }

// NewJSONLFile returns a JSON-lines sink that creates path at Open.
func NewJSONLFile(path string) *JSONL { return &JSONL{streamSink{path: path}} }

// Open implements Sink.
func (s *JSONL) Open([]string) error { return s.open() }

// WritePartition implements Sink: rows encode into a partition-local buffer,
// then stitch in order. Safe for concurrent calls with distinct indices.
func (s *JSONL) WritePartition(i int, rows []types.Value) error {
	var buf bytes.Buffer
	if err := data.WriteJSON(&buf, rows); err != nil {
		return err
	}
	return s.put(i, buf.Bytes())
}
