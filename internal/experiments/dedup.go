package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"time"

	"cleandb/internal/cleaning"
	"cleandb/internal/data"
	"cleandb/internal/datagen"
	"cleandb/internal/engine"
	"cleandb/internal/physical"
	"cleandb/internal/textsim"
	"cleandb/internal/types"
)

// dblpBlockAttr blocks publications on (journal, title) — the paper's DBLP
// duplicate criterion: same journal and title, attributes > 80% similar.
func dblpBlockAttr(v types.Value) string {
	return v.Field("journal").Str() + "\x00" + v.Field("title").Str()
}

// dblpSimAttr compares the whole attribute set of a publication.
func dblpSimAttr(v types.Value) string {
	authors := v.Field("authors")
	var names []string
	if authors.Kind() == types.KindList {
		for _, a := range authors.List() {
			names = append(names, a.Str())
		}
	} else {
		names = append(names, authors.Str())
	}
	return v.Field("title").Str() + " " + strings.Join(names, " ")
}

// Figure7 reproduces Figures 7a and 7b: dedup over DBLP serialized in four
// representations (nested JSON, nested colbin, flat CSV, flat colbin) at two
// sizes, for CleanDB and Spark SQL.
func Figure7(s Scale) (small, large *Table) {
	make1 := func(id string, pubs int) *Table {
		t := &Table{
			ID:      id,
			Title:   fmt.Sprintf("Duplicate elimination: DBLP (%d pubs + 10%% dups)", pubs),
			Columns: []string{"System", "JSON", "colbin", "CSV_flat", "colbin_flat"},
		}
		corpus := datagen.GenDBLP(datagen.DBLPConfig{
			Pubs: pubs, AuthorPool: s.AuthorPool, NoiseRate: 0.05, EditRate: 0.15,
			DupRate: 0.10, Seed: s.Seed,
		})
		flat := data.Flatten(corpus.Pubs)

		var jsonBuf, binBuf, csvBuf, binFlatBuf bytes.Buffer
		must(data.WriteJSON(&jsonBuf, corpus.Pubs))
		must(data.WriteColbin(&binBuf, corpus.Pubs))
		must(data.WriteCSV(&csvBuf, flat))
		must(data.WriteColbin(&binFlatBuf, flat))

		type format struct {
			name  string
			parse func() ([]types.Value, error)
		}
		formats := []format{
			{"JSON", func() ([]types.Value, error) { return data.ReadJSON(bytes.NewReader(jsonBuf.Bytes())) }},
			{"colbin", func() ([]types.Value, error) { return data.ReadColbin(bytes.NewReader(binBuf.Bytes())) }},
			{"CSV_flat", func() ([]types.Value, error) { return data.ReadCSV(bytes.NewReader(csvBuf.Bytes())) }},
			{"colbin_flat", func() ([]types.Value, error) { return data.ReadColbin(bytes.NewReader(binFlatBuf.Bytes())) }},
		}
		run := func(f format, strategy physical.GroupStrategy) string {
			var best time.Duration
			var tk int64
			for rep := 0; rep < 3; rep++ {
				runtime.GC()
				start := time.Now()
				rows, err := f.parse()
				if err != nil {
					panic(err)
				}
				ctx := engine.NewContext(s.Workers)
				ds := engine.FromValues(ctx, rows)
				cleaning.Dedup(ds, cleaning.DedupConfig{
					BlockAttr: dblpBlockAttr,
					SimAttr:   dblpSimAttr,
					Metric:    textsim.MetricLevenshtein,
					Theta:     0.8,
					Strategy:  strategy,
				}).Count()
				wall := time.Since(start)
				if best == 0 || wall < best {
					best = wall
				}
				tk = ctx.Metrics().SimTicks()
			}
			return fmt.Sprintf("%s/%s", ms(best), ticks(tk))
		}
		cleanCells := []string{"CleanDB"}
		sparkCells := []string{"SparkSQL"}
		for _, f := range formats {
			cleanCells = append(cleanCells, run(f, physical.GroupAggregate))
			sparkCells = append(sparkCells, run(f, physical.GroupSort))
		}
		t.AddRow(cleanCells...)
		t.AddRow(sparkCells...)
		t.Note("cells are wall/ticks (parse + dedup); flat formats carry one row per author")
		t.Note("paper shape: nested formats beat flattened ones; CleanDB scales better than Spark SQL")
		return t
	}
	return make1("Figure 7a", s.DBLPDedupPubs), make1("Figure 7b", s.DBLPDedupPubs*2)
}

// Figure8a reproduces Figure 8a: customer dedup with Zipf duplicate counts
// in [1,50] and [1,100], for CleanDB, BigDansing and Spark SQL.
func Figure8a(s Scale) *Table {
	t := &Table{
		ID:      "Figure 8a",
		Title:   "Duplicate elimination: Customer (Zipf duplicates)",
		Columns: []string{"System", "customers 50", "customers 100"},
	}
	cells := map[string][]string{"CleanDB": {"CleanDB"}, "BigDansing": {"BigDansing"}, "SparkSQL": {"SparkSQL"}}
	// Twice the Figure-5 customer count: at this size the systematic
	// shuffle-volume difference dominates group-placement noise.
	for _, maxDups := range []int{50, 100} {
		cust := datagen.GenCustomer(datagen.CustomerConfig{
			Rows: s.Customers * 2, DupRate: 0.10, MaxDups: maxDups, Seed: s.Seed,
		})
		run := func(strategy physical.GroupStrategy) string {
			ctx := engine.NewContext(s.Workers)
			ds := engine.FromValues(ctx, cust.Rows)
			start := time.Now()
			cleaning.Dedup(ds, cleaning.DedupConfig{
				BlockAttr: func(v types.Value) string { return v.Field("address").Str() },
				SimAttr: func(v types.Value) string {
					return v.Field("name").Str() + " " + v.Field("phone").Str()
				},
				Metric:   textsim.MetricLevenshtein,
				Theta:    0.5,
				Strategy: strategy,
			}).Count()
			return fmt.Sprintf("%s/%s", ms(time.Since(start)), ticks(ctx.Metrics().SimTicks()))
		}
		cells["CleanDB"] = append(cells["CleanDB"], run(physical.GroupAggregate))
		cells["BigDansing"] = append(cells["BigDansing"], run(physical.GroupHash))
		cells["SparkSQL"] = append(cells["SparkSQL"], run(physical.GroupSort))
	}
	t.AddRow(cells["CleanDB"]...)
	t.AddRow(cells["BigDansing"]...)
	t.AddRow(cells["SparkSQL"]...)
	t.Note("%d base customers; 10%% duplicated with Zipf-distributed counts", s.Customers*2)
	t.Note("paper shape: CleanDB scales best (local grouping then merge); baselines shuffle the whole table")
	return t
}

// Figure8b reproduces Figure 8b: dedup over the MAG dataset — a 2014 subset
// and the full set; Spark SQL exceeds every budget on the full set.
func Figure8b(s Scale) *Table {
	t := &Table{
		ID:      "Figure 8b",
		Title:   "Duplicate elimination: MAG",
		Columns: []string{"System", "MAG2014", "MAGtotal"},
	}
	mag := datagen.GenMAG(datagen.MAGConfig{Rows: s.MAGRows, DupRate: 0.10, Seed: s.Seed})
	subset := make([]types.Value, 0, len(mag.Rows)/2)
	for _, r := range mag.Rows {
		if r.Field("year").Int() == 2014 {
			subset = append(subset, r)
		}
	}
	cfg := func(strategy physical.GroupStrategy) cleaning.DedupConfig {
		return cleaning.DedupConfig{
			BlockAttr: func(v types.Value) string {
				return fmt.Sprintf("%04d\x00%08d", v.Field("year").Int(), v.Field("authorid").Int())
			},
			SimAttr: func(v types.Value) string {
				return v.Field("title").Str() + " " + v.Field("doi").Str()
			},
			Metric:   textsim.MetricLevenshtein,
			Theta:    0.8,
			Strategy: strategy,
		}
	}
	// Straggler rule: a run is DNF when, in the pairwise-comparison stage,
	// the busiest worker carries more than stragglerSlack× the fair
	// per-worker share — modeling a cluster node lost to skew-induced
	// overload, the failure mode the paper reports for Spark SQL on the
	// full MAG (>10h). Sort-range partitioning clusters the heavy
	// (year, author) blocks on few workers; hash-distributed groups spread
	// them.
	const stragglerSlack = 2.0
	run := func(rows []types.Value, strategy physical.GroupStrategy) string {
		ctx := engine.NewContext(s.Workers)
		ctx.CompBudget = s.CompBudget
		ds := engine.FromValues(ctx, rows)
		start := time.Now()
		cleaning.Dedup(ds, cfg(strategy)).Count()
		wall := time.Since(start)
		m := ctx.Metrics()
		maxC, totalC := stageLoad(m, "dedup:compare")
		if totalC > 0 && float64(maxC) > stragglerSlack*float64(totalC)/float64(s.Workers) {
			return DNF
		}
		return fmt.Sprintf("%s/%s", ms(wall), ticks(m.SimTicks()))
	}
	t.AddRow("CleanDB", run(subset, physical.GroupAggregate), run(mag.Rows, physical.GroupAggregate))
	t.AddRow("SparkSQL", run(subset, physical.GroupSort), run(mag.Rows, physical.GroupSort))
	t.Note("%d MAG rows (Zipf-skewed authors/years); DNF when straggler load > %.1fx fair share in the compare stage", s.MAGRows, stragglerSlack)
	t.Note("paper shape: Spark SQL exceeds every budget on the full, highly-skewed dataset (>10h)")
	return t
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// stageLoad returns the straggler and total worker cost of the named stage.
func stageLoad(m *engine.Metrics, name string) (max, total int64) {
	for _, st := range m.Stages() {
		if st.Name != name {
			continue
		}
		if c := st.MaxCost(); c > max {
			max = c
		}
		total += st.TotalCost()
	}
	return max, total
}
