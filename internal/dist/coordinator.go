package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cleandb"
	"cleandb/internal/engine"
)

// coordID is the coordinator's member id: always members[0], never evicted.
const coordID = "c0"

// Custody modes. Partitioned custody divides cold scans across the members
// (each loads only the chunks it owns and gathers the rest); replicated
// custody is the original model where every member loads every source whole.
const (
	CustodyPartitioned = "partitioned"
	CustodyReplicated  = "replicated"
)

// Config tunes a Coordinator. Zero values select the defaults.
type Config struct {
	// AdvertiseURL is the base URL workers reach this coordinator on; the
	// exchange endpoint is AdvertiseURL+"/v1/cluster/exchange". Until it is
	// set (flag at startup, or SetAdvertiseURL once a listener exists),
	// StartSession declines and queries run single-process.
	AdvertiseURL string
	// ExchangeTimeout is the barrier failure detector: a member owing slots
	// that neither submits nor parks within it is declared dead and its
	// slots reassigned. Default 30s.
	ExchangeTimeout time.Duration
	// ProbeInterval paces the background worker health probes. Default 2s.
	ProbeInterval time.Duration
	// FragmentGrace bounds how long Finish waits for worker fragment
	// responses after the coordinator's own query completed. Default 2s.
	FragmentGrace time.Duration
	// MaxBody caps exchange request bodies. Default 256 MiB.
	MaxBody int64
	// Custody selects how sessions load sources: CustodyPartitioned (the
	// default) divides cold scans by partition custody, CustodyReplicated
	// keeps every member loading every source whole.
	Custody string
	// Logf receives cluster events (registrations, evictions); nil drops them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Custody == "" {
		c.Custody = CustodyPartitioned
	}
	if c.ExchangeTimeout <= 0 {
		c.ExchangeTimeout = 30 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.FragmentGrace <= 0 {
		c.FragmentGrace = 2 * time.Second
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 256 << 20
	}
	return c
}

// workerEntry is one registered worker in the coordinator's registry.
type workerEntry struct {
	id       string
	url      string
	alive    bool
	lastSeen time.Time
	// ownedParts/ownedBytes are the worker's last-reported loaded custody
	// share — the /healthz and /metrics memory-division gauges.
	ownedParts int64
	ownedBytes int64
}

// Coordinator owns the cluster: the worker registry, health probing, session
// dispatch and the barrier hub every session's exchanges flow through. It
// executes queries itself too — the coordinator is a full SPMD member, so its
// own result is the query's answer.
type Coordinator struct {
	db          *cleandb.DB
	cfg         Config
	fingerprint string
	client      *http.Client // fragment dispatch: long-lived, context-governed
	probeClient *http.Client // health probes: short timeout

	stopOnce sync.Once
	stop     chan struct{}
	probeWG  sync.WaitGroup

	mu       sync.Mutex
	workers  map[string]*workerEntry
	byURL    map[string]string
	seq      int
	sessions map[string]*Session
	sessSeq  int64
	// cohort counts worker registrations, including re-registrations from a
	// restarted worker. It feeds the custody stamp: a restarted worker holds
	// nothing, so the whole cluster must re-divide its loads even though the
	// membership ids look unchanged.
	cohort int64
	// coordShipped mirrors the workers' shipped-source keys for the
	// coordinator's own catalog: source name → Path#Version|stamp of the last
	// custody resync, so StartSession re-registers (and thus custody-reloads)
	// exactly when workers will.
	coordShipped map[string]string

	// custodyRescans totals adopted-and-re-parsed scan chunks across all
	// members and sessions — the /metrics cleandb_custody_rescan_total source.
	custodyRescans atomic.Int64
}

// NewCoordinator builds a coordinator over db and starts its health prober.
// Call Close to stop probing.
func NewCoordinator(db *cleandb.DB, cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		db:           db,
		cfg:          cfg,
		fingerprint:  db.ConfigFingerprint(),
		client:       &http.Client{},
		probeClient:  &http.Client{Timeout: cfg.ProbeInterval},
		stop:         make(chan struct{}),
		workers:      make(map[string]*workerEntry),
		byURL:        make(map[string]string),
		sessions:     make(map[string]*Session),
		coordShipped: make(map[string]string),
	}
	c.probeWG.Add(1)
	go c.probeLoop()
	return c
}

// Close stops the health prober. In-flight sessions are unaffected; their
// owners close them.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.probeWG.Wait()
}

// SetAdvertiseURL installs the coordinator's reachable base URL after the
// listener exists (tests bind to ephemeral ports).
func (c *Coordinator) SetAdvertiseURL(u string) {
	c.mu.Lock()
	c.cfg.AdvertiseURL = u
	c.mu.Unlock()
}

// Fingerprint returns the coordinator DB's configuration fingerprint.
func (c *Coordinator) Fingerprint() string { return c.fingerprint }

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// register adds (or refreshes) a worker by URL and returns its stable id.
// Every call bumps the registration cohort: a worker only registers at
// startup, so a repeat registration from a known URL means the worker
// restarted empty and custody loads must re-divide.
func (c *Coordinator) register(url string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cohort++
	if id, ok := c.byURL[url]; ok {
		w := c.workers[id]
		w.alive = true
		w.lastSeen = time.Now()
		return id
	}
	c.seq++
	id := fmt.Sprintf("w%04d", c.seq)
	c.workers[id] = &workerEntry{id: id, url: url, alive: true, lastSeen: time.Now()}
	c.byURL[url] = id
	c.logf("dist: worker %s registered at %s", id, url)
	return id
}

// noteEviction runs whenever a session evicts a member. Under partitioned
// custody an eviction can leave the victim cold — its divided scan died with
// the session while the survivors adopted its chunks and finished warm — a
// state no later session with the same stamp repairs, because warm members
// never revisit the scan barrier the cold one parks at. Bumping the cohort
// changes the next session's custody stamp, so every member goes cold and
// re-divides in lockstep and the victim (if still alive) rejoins cleanly.
func (c *Coordinator) noteEviction(session, member string) {
	if c.cfg.Custody != CustodyPartitioned {
		return
	}
	c.mu.Lock()
	c.cohort++
	c.mu.Unlock()
	c.logf("dist: session %s: evicted %s; custody re-divides next session", session, member)
}

// liveWorkers snapshots the alive registry entries in id order.
func (c *Coordinator) liveWorkers() []workerEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []workerEntry
	for _, w := range c.workers {
		if w.alive {
			out = append(out, *w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func (c *Coordinator) markWorkerDown(id string) {
	c.mu.Lock()
	if w := c.workers[id]; w != nil && w.alive {
		w.alive = false
		c.logf("dist: worker %s (%s) marked down", id, w.url)
	}
	c.mu.Unlock()
}

// probeLoop GETs every worker's /healthz each interval, flipping liveness in
// the registry. A worker that comes back (or re-registers) rejoins the next
// session; in-flight sessions keep their membership and rely on the barrier's
// eviction instead.
func (c *Coordinator) probeLoop() {
	defer c.probeWG.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		c.mu.Lock()
		targets := make([]workerEntry, 0, len(c.workers))
		for _, w := range c.workers {
			targets = append(targets, *w)
		}
		c.mu.Unlock()
		for _, w := range targets {
			resp, err := c.probeClient.Get(w.url + "/healthz")
			ok := err == nil && resp.StatusCode == http.StatusOK
			if resp != nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			c.mu.Lock()
			if e := c.workers[w.id]; e != nil {
				if ok {
					if !e.alive {
						c.logf("dist: worker %s (%s) back up", w.id, w.url)
					}
					e.alive = true
					e.lastSeen = time.Now()
				} else {
					if e.alive {
						c.logf("dist: worker %s (%s) failed probe: %v", w.id, w.url, err)
					}
					e.alive = false
				}
			}
			c.mu.Unlock()
		}
	}
}

// shippableSources lists the catalog entries workers can load by path, each
// stamped with the coordinator's loaded epoch so workers re-scan a file that
// grew since their last fragment.
func (c *Coordinator) shippableSources() []sourceSpec {
	var out []sourceSpec
	for _, si := range c.db.SourceInfos() {
		if si.Path != "" {
			out = append(out, sourceSpec{Name: si.Name, Path: si.Path, Format: si.Format,
				Version: fmt.Sprintf("g%d.e%d", si.BaseGen, si.DeltaEpoch)})
		}
	}
	return out
}

// custodyStamp fingerprints one custody division: the mode, the registration
// cohort and the session membership. Any change to it means the chunks each
// member owns (or holds) may have moved, so stamped shipped-source keys force
// a re-registration — and with it a freshly divided cold scan — on every
// member at once.
func custodyStamp(mode string, cohort int64, members []string) string {
	return mode + "/" + strconv.FormatInt(cohort, 10) + "/" + strings.Join(members, ",")
}

// resyncCustody unloads the coordinator's own shippable sources when their
// custody stamp moved since they were last loaded. Without this a coordinator
// holding a warm replicated load would stay silent at the scan barrier while
// workers park on its chunks; unloading drops the warm state so the
// coordinator cold-loads under the same division the workers use. Unload —
// not re-registration — because the entry's version must keep tracking the
// file's incremental state: workers key their synced catalogs on it, and a
// version reset would mask a rewrite they still need to pick up. Sources
// whose stamp is current keep their warm data — as do the workers', because
// their shipped keys carry the same stamp.
func (c *Coordinator) resyncCustody(stamp string) {
	for _, si := range c.db.SourceInfos() {
		if si.Path == "" {
			continue
		}
		key := sourceKey(si, stamp)
		c.mu.Lock()
		cur := c.coordShipped[si.Name]
		c.mu.Unlock()
		if cur == key {
			continue
		}
		if err := c.db.Unload(si.Name); err != nil {
			c.logf("dist: custody resync of %q failed: %v", si.Name, err)
			continue
		}
		c.mu.Lock()
		c.coordShipped[si.Name] = key
		c.mu.Unlock()
	}
}

// sourceKey is the stamped shipped-source identity: the same shape workers
// key their synced registrations by in partitioned mode.
func sourceKey(si cleandb.SourceInfo, stamp string) string {
	return si.Path + "#" + fmt.Sprintf("g%d.e%d", si.BaseGen, si.DeltaEpoch) + "|" + stamp
}

// unshippableDelta reports whether any catalog source carries un-folded
// appended partitions. Two divergences make such a catalog unreplicable:
// memory-only appended rows (payload or programmatic appends) cannot be
// reconstructed from any path, and even file-backed tail partitions give the
// coordinator a partition layout a worker's cold scan of the same file will
// never reproduce — SPMD slot masking requires identical layouts on every
// member. Either way a distributed session would serve a stale or diverging
// replicated view; it refuses to start instead and the query runs
// single-process, correct. A reset re-scan (file rewritten — the base
// generation moves) folds the tail and re-admits the source.
func (c *Coordinator) unshippableDelta() (string, bool) {
	for _, si := range c.db.SourceInfos() {
		if si.Appends > 0 || si.MemRows > 0 {
			return si.Name, true
		}
	}
	return "", false
}

// FragmentResult is one worker's fragment outcome, surfaced in response
// trailers and metrics.
type FragmentResult struct {
	Worker          string
	Err             string
	Rows            int64
	SimTicks        int64
	Comparisons     int64
	ShuffledRecords int64
	ShuffledBytes   int64
	Repairs         int64
	RepairsChanged  int64
	// ExecSlots is the count of masked join slots the worker actually
	// executed — real work division, unlike the simulated counters above.
	ExecSlots int64
	// CustodyRescans counts scan chunks the worker adopted from a dead peer
	// and re-parsed; OwnedPartitions/OwnedBytes its loaded custody share.
	CustodyRescans  int64
	OwnedPartitions int64
	OwnedBytes      int64
}

// Session is one distributed query: a barrier hub, the coordinator's local
// exchange seat, and the in-flight worker fragments.
type Session struct {
	c   *Coordinator
	id  string
	hub *hubSession
	ex  *localExchange
	wg  sync.WaitGroup

	mu      sync.Mutex
	results []FragmentResult
	closed  bool
}

// StartSession plans a distributed execution of query: it opens a barrier
// session over the coordinator plus every live worker and dispatches the
// fragment to each worker. It returns nil (no error) when the cluster cannot
// help — no live workers, or no advertise URL — in which case the caller
// runs the query single-process, unchanged.
//
// ctx must be the query's own context: cancelling it (client disconnect)
// tears down the barrier and the in-flight fragment requests.
func (c *Coordinator) StartSession(ctx context.Context, query string, params map[string]any) *Session {
	c.mu.Lock()
	advertise := c.cfg.AdvertiseURL
	c.mu.Unlock()
	live := c.liveWorkers()
	if len(live) == 0 || advertise == "" {
		return nil
	}
	if name, ok := c.unshippableDelta(); ok {
		c.logf("dist: source %q holds un-folded appended partitions; serving single-process", name)
		return nil
	}
	members := make([]string, 0, len(live)+1)
	members = append(members, coordID)
	for _, w := range live {
		members = append(members, w.id)
	}
	custody := c.cfg.Custody == CustodyPartitioned
	var stamp string
	if custody {
		c.mu.Lock()
		cohort := c.cohort
		c.mu.Unlock()
		stamp = custodyStamp(c.cfg.Custody, cohort, members)
		c.resyncCustody(stamp)
	}
	c.mu.Lock()
	c.sessSeq++
	id := fmt.Sprintf("s%06d", c.sessSeq)
	c.mu.Unlock()

	hub := newHubSession(ctx, id, members, c.cfg.ExchangeTimeout)
	hub.onEvict = func(member string) { c.noteEviction(id, member) }
	sess := &Session{c: c, id: id, hub: hub, ex: newLocalExchange(hub, ctx, custody)}
	c.mu.Lock()
	c.sessions[id] = sess
	c.mu.Unlock()

	base := fragmentRequest{
		Session:      id,
		Members:      members,
		ExchangeURL:  advertise + "/v1/cluster/exchange",
		Fingerprint:  c.fingerprint,
		Query:        query,
		Params:       params,
		Sources:      c.shippableSources(),
		Custody:      c.cfg.Custody,
		CustodyStamp: stamp,
	}
	for _, w := range live {
		req := base
		req.Self = w.id
		sess.wg.Add(1)
		go func(w workerEntry, req fragmentRequest) {
			defer sess.wg.Done()
			sess.runFragment(w, req)
		}(w, req)
	}
	return sess
}

// runFragment POSTs one worker's fragment and folds the outcome into the
// session. Any failure — transport, HTTP status, or a query error on the
// worker — evicts the worker from the barrier so its slots reassign; the
// query itself survives on the remaining members.
func (s *Session) runFragment(w workerEntry, req fragmentRequest) {
	resp, err := s.c.postFragment(s.hub.ctx, w.url, req)
	if err != nil {
		s.hub.markDead(w.id)
		s.c.markWorkerDown(w.id)
		s.c.logf("dist: session %s: fragment on %s failed: %v", s.id, w.id, err)
		s.record(FragmentResult{Worker: w.id, Err: err.Error()})
		return
	}
	if resp.Err != "" {
		s.hub.markDead(w.id)
		s.c.logf("dist: session %s: fragment on %s errored: %s", s.id, w.id, resp.Err)
	}
	s.record(FragmentResult{
		Worker: w.id, Err: resp.Err, Rows: resp.Rows,
		SimTicks: resp.SimTicks, Comparisons: resp.Comparisons,
		ShuffledRecords: resp.ShuffledRecords, ShuffledBytes: resp.ShuffledBytes,
		Repairs: resp.Repairs, RepairsChanged: resp.RepairsChanged,
		ExecSlots:      resp.ExecSlots,
		CustodyRescans: resp.CustodyRescans, OwnedPartitions: resp.OwnedPartitions, OwnedBytes: resp.OwnedBytes,
	})
	s.c.custodyRescans.Add(resp.CustodyRescans)
	s.c.mu.Lock()
	if e := s.c.workers[w.id]; e != nil {
		e.ownedParts, e.ownedBytes = resp.OwnedPartitions, resp.OwnedBytes
	}
	s.c.mu.Unlock()
}

func (c *Coordinator) postFragment(ctx context.Context, url string, freq fragmentRequest) (*fragmentResponse, error) {
	body, err := json.Marshal(&freq)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/cluster/fragment", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, fmt.Errorf("dist: fragment: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var fr fragmentResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		return nil, fmt.Errorf("dist: fragment response: %w", err)
	}
	return &fr, nil
}

func (s *Session) record(r FragmentResult) {
	s.mu.Lock()
	s.results = append(s.results, r)
	s.mu.Unlock()
}

// Attach threads the coordinator's exchange seat into ctx; the query run
// under the returned context executes its masked stages through the barrier.
func (s *Session) Attach(ctx context.Context) context.Context {
	return engine.WithExchange(ctx, s.ex)
}

// Dead lists the members evicted during the session.
func (s *Session) Dead() []string { return s.hub.deadMembers() }

// ExecSlots reports how many masked join slots the coordinator itself
// executed in this session — its real share of the distributed join work.
func (s *Session) ExecSlots() int64 { return s.ex.execSlots.Load() }

// CustodyRescans reports how many scan chunks the coordinator itself adopted
// from dead peers and re-parsed in this session.
func (s *Session) CustodyRescans() int64 { return s.ex.custodyRescans.Load() }

// Finish ends the session after the coordinator's query completed: it waits
// up to the configured grace for worker fragments to stream their metrics
// back (they finish right behind the last barrier), then tears the barrier
// down and returns the fragment results in worker order.
func (s *Session) Finish() []FragmentResult {
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(s.c.cfg.FragmentGrace):
	}
	s.Close()
	<-done
	s.mu.Lock()
	out := append([]FragmentResult(nil), s.results...)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}

// Close tears the barrier down (idempotent), unblocking every parked member
// and cancelling in-flight fragment requests.
func (s *Session) Close() {
	s.mu.Lock()
	closed := s.closed
	s.closed = true
	s.mu.Unlock()
	if closed {
		return
	}
	s.c.custodyRescans.Add(s.ex.custodyRescans.Load())
	s.hub.close()
	s.c.mu.Lock()
	delete(s.c.sessions, s.id)
	s.c.mu.Unlock()
}

// HandleRegister is the POST /v1/cluster/register endpoint.
func (c *Coordinator) HandleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		http.Error(w, "dist: bad register request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.URL == "" {
		http.Error(w, "dist: register: missing url", http.StatusBadRequest)
		return
	}
	if req.Fingerprint != c.fingerprint {
		http.Error(w, fmt.Sprintf("dist: fingerprint mismatch: coordinator %q, worker %q",
			c.fingerprint, req.Fingerprint), http.StatusConflict)
		return
	}
	id := c.register(req.URL)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&registerResponse{ID: id, Fingerprint: c.fingerprint})
}

// HandleExchange is the POST /v1/cluster/exchange endpoint: one gather
// long-poll. The response is binary (wirebody.go); HTTP error statuses cover
// routing failures — 404 unknown session, 410 evicted member.
func (c *Coordinator) HandleExchange(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBody))
	if err != nil {
		http.Error(w, "dist: exchange body: "+err.Error(), http.StatusBadRequest)
		return
	}
	hdr, frames, err := decodeExchangeRequest(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	sess := c.sessions[hdr.Session]
	c.mu.Unlock()
	if sess == nil {
		http.Error(w, fmt.Sprintf("dist: unknown session %q", hdr.Session), http.StatusNotFound)
		return
	}
	full, extra, err := sess.hub.gather(r.Context(), hdr.Self, hdr.Stage, hdr.N, frames)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, errEvicted) {
			status = http.StatusGone
		}
		http.Error(w, err.Error(), status)
		return
	}
	rep := exchangeReply{Status: "full"}
	if len(extra) > 0 {
		rep = exchangeReply{Status: "extra", Extra: extra}
		full = nil
	}
	out, err := encodeExchangeReply(rep, full)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(out)
}

// WorkerStatus is one registry entry in the health report.
type WorkerStatus struct {
	ID       string    `json:"id"`
	URL      string    `json:"url"`
	Alive    bool      `json:"alive"`
	LastSeen time.Time `json:"last_seen"`
	// Partitions counts the loaded catalog partitions placement assigns this
	// worker custody of under the current live membership.
	Partitions int `json:"partitions"`
	// OwnedPartitions and LoadedBytes are the worker's last-reported loaded
	// custody share: how many chunks it actually parsed and the input bytes
	// behind them. Under partitioned custody they trend to 1/N of the
	// catalog; under replicated custody they equal the totals.
	OwnedPartitions int64 `json:"owned_partitions"`
	LoadedBytes     int64 `json:"loaded_bytes"`
}

// ClusterStatus is the coordinator's /healthz cluster report.
type ClusterStatus struct {
	Role string `json:"role"`
	// Custody is the configured custody mode sessions run under.
	Custody string `json:"custody"`
	// Members is the membership the next session would use.
	Members []string `json:"members"`
	// CoordinatorPartitions counts the loaded partitions in the
	// coordinator's own custody.
	CoordinatorPartitions int `json:"coordinator_partitions"`
	// CoordinatorOwnedPartitions/CoordinatorLoadedBytes mirror the per-worker
	// loaded-share gauges for the coordinator's own catalog.
	CoordinatorOwnedPartitions int64          `json:"coordinator_owned_partitions"`
	CoordinatorLoadedBytes     int64          `json:"coordinator_loaded_bytes"`
	Workers                    []WorkerStatus `json:"workers"`
	ActiveSessions             int            `json:"active_sessions"`
	// CustodyRescans totals the scan chunks adopted from dead members and
	// re-parsed, across all members and sessions since startup.
	CustodyRescans int64 `json:"custody_rescans"`
}

// Status reports per-worker liveness and consistent-placement partition
// custody over the loaded catalog.
func (c *Coordinator) Status() ClusterStatus {
	live := c.liveWorkers()
	members := make([]string, 0, len(live)+1)
	members = append(members, coordID)
	for _, w := range live {
		members = append(members, w.id)
	}
	counts := make(map[string]int)
	var coordOwned, coordBytes int64
	for _, si := range c.db.SourceInfos() {
		for i := 0; i < si.Partitions; i++ {
			counts[PartitionOwner(si.Name, i, members)]++
		}
		coordOwned += int64(si.OwnedPartitions)
		coordBytes += si.OwnedBytes
	}
	c.mu.Lock()
	st := ClusterStatus{
		Role:                       "coordinator",
		Custody:                    c.cfg.Custody,
		Members:                    members,
		CoordinatorPartitions:      counts[coordID],
		CoordinatorOwnedPartitions: coordOwned,
		CoordinatorLoadedBytes:     coordBytes,
		ActiveSessions:             len(c.sessions),
		CustodyRescans:             c.custodyRescans.Load(),
	}
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		w := c.workers[id]
		st.Workers = append(st.Workers, WorkerStatus{
			ID: w.id, URL: w.url, Alive: w.alive, LastSeen: w.lastSeen,
			Partitions:      counts[w.id],
			OwnedPartitions: w.ownedParts,
			LoadedBytes:     w.ownedBytes,
		})
	}
	c.mu.Unlock()
	return st
}
