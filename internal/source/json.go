package source

import (
	"context"

	"cleandb/internal/data"
	"cleandb/internal/types"
)

// JSON is a JSON-lines source (one object per line, nested records
// supported). Lines are independent, so Scan splits the input at line
// boundaries and parses the chunks on parallel goroutines; a shared
// concurrency-safe schema cache preserves the sequential reader's
// schema-sharing across partitions.
type JSON struct {
	src bytesAt
}

// NewJSONFile returns a lazy JSON-lines source over a file path.
func NewJSONFile(path string) *JSON { return &JSON{src: bytesAt{path: path}} }

// JSONBytes returns a JSON-lines source over an in-memory buffer.
func JSONBytes(buf []byte) *JSON { return &JSON{src: bytesAt{buf: buf}} }

// Format implements Source.
func (s *JSON) Format() string { return "json" }

// Schema implements Source; JSON objects carry their own field names, so
// the column set is unknowable without parsing.
func (s *JSON) Schema() ([]string, error) { return nil, nil }

// Stats implements Source.
func (s *JSON) Stats() (Stats, error) {
	return Stats{Rows: -1, Bytes: s.src.sizeBytes()}, nil
}

// Scan implements Source by parsing line-boundary chunks in parallel.
func (s *JSON) Scan(ctx context.Context, parts int) ([][]types.Value, error) {
	buf, err := s.src.bytes()
	if err != nil {
		return nil, err
	}
	if parts < 1 {
		parts = 1
	}
	chunks, firstLines := splitLines(buf, parts)
	cache := data.NewSchemaCache()
	out := make([][]types.Value, len(chunks))
	err = runParallel(ctx, len(chunks), parts, func(i int) error {
		rows, err := data.ReadJSONChunk(chunks[i], firstLines[i], cache)
		if err != nil {
			return err
		}
		out[i] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Blank lines produce no rows, so some chunks may be empty; drop them so
	// partition counts reflect data, not whitespace.
	kept := out[:0]
	for _, p := range out {
		if len(p) > 0 {
			kept = append(kept, p)
		}
	}
	return kept, nil
}

// splitLines cuts buf into at most parts chunks at line boundaries, also
// reporting each chunk's 1-based first line number so parse errors keep
// their absolute positions.
func splitLines(buf []byte, parts int) ([][]byte, []int) {
	if len(buf) == 0 {
		return nil, nil
	}
	starts := []int{0}
	lines := []int{1}
	if parts > 1 {
		line := 1
		for i := 0; i < len(buf)-1 && len(starts) < parts; i++ {
			if buf[i] != '\n' {
				continue
			}
			line++
			if i+1 >= len(starts)*len(buf)/parts {
				starts = append(starts, i+1)
				lines = append(lines, line)
			}
		}
	}
	chunks := make([][]byte, len(starts))
	for i := range starts {
		end := len(buf)
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		chunks[i] = buf[starts[i]:end]
	}
	return chunks, lines
}
