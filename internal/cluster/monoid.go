package cluster

import (
	"cleandb/internal/monoid"
	"cleandb/internal/types"
)

// GroupsMonoid is the calculus-level form of a blocking technique: the
// "filter monoid" that CleanM's FD/DEDUP/CLUSTER BY comprehensions fold
// with (paper §4.3, "(Token) filtering as a monoid").
//
// Values of the monoid are canonical groupings — lists of {key, items}
// records, keys sorted, items sorted and de-duplicated. With that normal
// form:
//
//	Zero  = {}                                (the empty grouping)
//	Unit  = str ↦ {(token_i, {str}), ...}     (one group per blocking key)
//	Merge = union of groups by key
//
// Merge is associative, commutative and idempotent, which the property-based
// tests verify; that is precisely the proof obligation the paper states for
// mapping token filtering into the calculus.
type GroupsMonoid struct {
	// B is the blocking technique that defines Unit.
	B Blocker
}

var _ monoid.Monoid = GroupsMonoid{}

// Name implements monoid.Monoid.
func (g GroupsMonoid) Name() string { return "groups:" + g.B.Name() }

// Zero implements monoid.Monoid: the empty grouping.
func (g GroupsMonoid) Zero() types.Value { return types.List() }

// Unit implements monoid.Monoid: blocks a single string value.
func (g GroupsMonoid) Unit(v types.Value) types.Value {
	s := v.Str()
	groups := make(map[string][]string)
	for _, k := range g.B.Keys(s) {
		groups[k] = append(groups[k], s)
	}
	return GroupsValue(groups)
}

// Merge implements monoid.Monoid: unions two canonical groupings by key.
// Both inputs are lists of {key, items} records sorted by key.
func (g GroupsMonoid) Merge(a, b types.Value) types.Value {
	al, bl := a.List(), b.List()
	if len(al) == 0 {
		return b
	}
	if len(bl) == 0 {
		return a
	}
	out := make([]types.Value, 0, len(al)+len(bl))
	i, j := 0, 0
	for i < len(al) && j < len(bl) {
		ka, kb := al[i].Field("key").Str(), bl[j].Field("key").Str()
		switch {
		case ka < kb:
			out = append(out, al[i])
			i++
		case ka > kb:
			out = append(out, bl[j])
			j++
		default:
			out = append(out, mergeEntry(al[i], bl[j]))
			i++
			j++
		}
	}
	out = append(out, al[i:]...)
	out = append(out, bl[j:]...)
	return types.ListOf(out)
}

func mergeEntry(a, b types.Value) types.Value {
	ia, ib := a.Field("items").List(), b.Field("items").List()
	merged := make([]types.Value, 0, len(ia)+len(ib))
	x, y := 0, 0
	for x < len(ia) && y < len(ib) {
		sa, sb := ia[x].Str(), ib[y].Str()
		switch {
		case sa < sb:
			merged = append(merged, ia[x])
			x++
		case sa > sb:
			merged = append(merged, ib[y])
			y++
		default:
			merged = append(merged, ia[x])
			x++
			y++
		}
	}
	merged = append(merged, ia[x:]...)
	merged = append(merged, ib[y:]...)
	return types.NewRecord(groupEntrySchema, []types.Value{a.Field("key"), types.ListOf(merged)})
}

// Idempotent implements monoid.Monoid: merging a grouping with itself
// yields the same grouping (groups are sets).
func (g GroupsMonoid) Idempotent() bool { return true }

// Collection implements monoid.Monoid.
func (g GroupsMonoid) Collection() bool { return true }

// BlockStrings folds values through the monoid — the reference (sequential)
// semantics of blocking, used by tests to validate the distributed path.
func BlockStrings(b Blocker, values []string) types.Value {
	m := GroupsMonoid{B: b}
	acc := m.Zero()
	for _, v := range values {
		acc = m.Merge(acc, m.Unit(types.String(v)))
	}
	return acc
}
