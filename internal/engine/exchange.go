package engine

import (
	"context"
	"fmt"
	"sync"

	"cleandb/internal/types"
)

// Exchange distributes the slot loops of the engine's expensive wide operators
// (theta, min-max, cartesian and hash joins) across the nodes of a cleaning
// cluster.
//
// The execution model is SPMD over a replicated catalog: every node —
// coordinator and workers alike — runs the *same* query pipeline over the
// *same* registered sources. Narrow operators, shuffles and group reduces run
// replicated on every node, so each node's intermediate state is bit-identical
// to single-process execution. Only the O(n·m) comparison loops are "masked":
// each node executes the slots Mask assigns to it, ships the slot outputs to
// the coordinator's barrier via Gather, and receives the full slot vector
// back. Because every masked loop body is a pure function of replicated stage
// input and the slot index, any node can recompute any slot — which is what
// lets a barrier reassign the slots of a dead worker to a surviving node (the
// non-empty `extra` return) instead of failing the query.
//
// The contract an implementation must honor:
//
//   - Mask(stage, n) partitions [0,n) across the session's nodes: the union
//     of every node's mask is exactly [0,n), the masks are disjoint, and the
//     assignment is a pure function of (stage, n, initial membership) so all
//     nodes agree without communication.
//   - Gather blocks until the stage's full output is known, a peer failure
//     requires this node to take over slots (extra non-nil — recompute those
//     slots and call Gather again with them), or the job fails/cancels (err
//     non-nil).
//   - Stage identifiers arrive in the same order on every node (the engine
//     numbers masked stages sequentially per job), so a barrier can key
//     state by stage name alone.
type Exchange interface {
	// Mask returns the slot indices of [0,n) this node must execute for the
	// named stage.
	Mask(stage string, n int) []int
	// Gather submits locally executed slots and blocks until the stage
	// completes. Exactly one of the returns is meaningful: full (all n slot
	// outputs, in slot order), extra (additional slots this node must
	// execute and resubmit because a peer died), or err (job failed or was
	// cancelled — the engine poisons the job and aborts).
	Gather(stage string, n int, local map[int][]types.Value) (full [][]types.Value, extra []int, err error)
}

// exchangeCtxKey carries an Exchange through a Go context into Context.Job —
// the server attaches a cluster session to the request context and the engine
// picks it up without any public plumbing through the query layers.
type exchangeCtxKey struct{}

// WithExchange returns a context that routes the masked stages of any job
// derived from it (Context.Job) through ex. Passing the result to
// DB.QueryContext is how a cluster node joins a distributed query.
func WithExchange(ctx context.Context, ex Exchange) context.Context {
	return context.WithValue(ctx, exchangeCtxKey{}, ex)
}

// failBox wraps a job-poisoning error so it can live in an atomic.Pointer.
type failBox struct{ err error }

// Fail poisons the job: Err returns err from now on, operator loops abort,
// and the query surfaces it. Used by exchanges to propagate peer failures
// through operators that have no error return of their own (hash joins,
// group reduces). The first failure wins.
func (c *Context) Fail(err error) {
	if err == nil {
		return
	}
	c.failed.CompareAndSwap(nil, &failBox{err: err})
}

// maskedRun executes the n slot bodies of a wide stage and returns the full
// slot-output vector. Without an exchange every slot runs locally on the
// worker pool — the single-process path, unchanged. With an exchange, only
// the slots in this node's mask run here; the exchange fills the rest from
// peers and hands back reassigned slots when a peer dies.
//
// exec must be a pure, deterministic function of the (replicated) stage input
// and the slot index: it runs on whichever node owns the slot, and may run
// again on a survivor after a peer failure.
func (c *Context) maskedRun(name string, n int, exec func(i int) []types.Value) ([][]types.Value, error) {
	if c.exchange == nil || n == 0 {
		out := make([][]types.Value, n)
		c.runParallel(n, func(i int) { out[i] = exec(i) })
		return out, c.Err()
	}
	stage := fmt.Sprintf("%03d/%s", c.stageSeq.Add(1), name)
	mine := c.exchange.Mask(stage, n)
	for {
		local := make(map[int][]types.Value, len(mine))
		var mu sync.Mutex
		slots := mine
		c.runParallel(len(slots), func(k int) {
			rows := exec(slots[k])
			mu.Lock()
			local[slots[k]] = rows
			mu.Unlock()
		})
		if err := c.Err(); err != nil {
			return nil, err
		}
		full, extra, err := c.exchange.Gather(stage, n, local)
		if err != nil {
			c.Fail(err)
			return nil, err
		}
		if len(extra) > 0 {
			mine = extra // a peer died: recompute its slots here and resubmit
			continue
		}
		return full, nil
	}
}
