package datagen

import (
	"math/rand"
	"testing"

	"cleandb/internal/textsim"
	"cleandb/internal/types"
)

func TestCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		s := "stella giannakopoulou"
		c := Corrupt(s, 0.2, rng)
		if c == "" {
			t.Fatal("corruption must not produce empty strings")
		}
		// ~20% edits on a 21-char string: distance within a loose band.
		d := textsim.Levenshtein(s, c)
		if d == 0 || d > 10 {
			t.Fatalf("edit distance %d out of expected band for %q", d, c)
		}
	}
	if Corrupt("", 0.5, rng) != "" {
		t.Fatal("empty input passes through")
	}
	if Corrupt("abc", 0, rng) != "abc" {
		t.Fatal("zero rate passes through")
	}
}

func TestGenLineitemDeterministic(t *testing.T) {
	cfg := LineitemConfig{Rows: 500, Seed: 7}
	a := GenLineitem(cfg)
	b := GenLineitem(cfg)
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("rows = %d/%d", len(a), len(b))
	}
	for i := range a {
		if types.Key(a[i]) != types.Key(b[i]) {
			t.Fatalf("generation not deterministic at row %d", i)
		}
	}
}

func TestGenLineitemFDHoldsOnCleanData(t *testing.T) {
	rows := GenLineitem(LineitemConfig{Rows: 2000, NoiseRate: -1, Seed: 3})
	// NoiseRate < 0 means never triggers; the FD must hold exactly.
	seen := map[string]int64{}
	for _, r := range rows {
		k := types.Key(types.List(r.Field("orderkey"), r.Field("linenumber")))
		s := r.Field("suppkey").Int()
		if prev, ok := seen[k]; ok && prev != s {
			t.Fatalf("FD violated on clean data for %s", k)
		}
		seen[k] = s
	}
}

func TestGenLineitemNoiseCreatesViolations(t *testing.T) {
	rows := GenLineitem(LineitemConfig{Rows: 5000, BaseRows: 1000, NoiseRate: 0.2, Seed: 3})
	seen := map[string]int64{}
	violations := 0
	for _, r := range rows {
		k := types.Key(types.List(r.Field("orderkey"), r.Field("linenumber")))
		s := r.Field("suppkey").Int()
		if prev, ok := seen[k]; ok && prev != s {
			violations++
		}
		seen[k] = s
	}
	if violations == 0 {
		t.Fatal("noise should create FD violations")
	}
}

func TestGenLineitemMissingQuantity(t *testing.T) {
	rows := GenLineitem(LineitemConfig{Rows: 1000, MissingQuantityRate: 0.1, Seed: 5})
	nulls := 0
	for _, r := range rows {
		if r.Field("quantity").IsNull() {
			nulls++
		}
	}
	if nulls < 50 || nulls > 200 {
		t.Fatalf("missing quantities = %d, want ≈100", nulls)
	}
}

func TestGenLineitemDates(t *testing.T) {
	rows := GenLineitem(LineitemConfig{Rows: 100, Seed: 5})
	for _, r := range rows {
		d := r.Field("receiptdate").Str()
		if len(d) != 10 || d[4] != '-' || d[7] != '-' {
			t.Fatalf("bad date %q", d)
		}
	}
}

func TestGenCustomerGroundTruth(t *testing.T) {
	data := GenCustomer(CustomerConfig{Rows: 500, DupRate: 0.2, MaxDups: 10, Seed: 11})
	if len(data.DupPairs) == 0 {
		t.Fatal("expected duplicate pairs")
	}
	byKey := map[int64]types.Value{}
	for _, r := range data.Rows {
		byKey[r.Field("custkey").Int()] = r
	}
	for _, p := range data.DupPairs {
		orig, dup := byKey[p[0]], byKey[p[1]]
		if orig.IsNull() || dup.IsNull() {
			t.Fatalf("ground-truth pair %v missing from rows", p)
		}
		if orig.Field("address").Str() != dup.Field("address").Str() {
			t.Fatal("duplicates must share the address")
		}
		if types.Key(orig) == types.Key(dup) {
			t.Fatal("duplicates must not be identical records")
		}
	}
}

func TestGenCustomerCleanBaseSatisfiesFDs(t *testing.T) {
	data := GenCustomer(CustomerConfig{Rows: 300, DupRate: -1, Seed: 13})
	addr := map[string]bool{}
	for _, r := range data.Rows {
		a := r.Field("address").Str()
		if addr[a] {
			t.Fatal("clean customers must have unique addresses")
		}
		addr[a] = true
		// Phone prefix encodes the nation: address→prefix(phone) holds.
		wantPrefix := r.Field("nationkey").Int() + 10
		if got := r.Field("phone").Str()[:2]; got != itoa2(wantPrefix) {
			t.Fatalf("phone prefix %s does not encode nation %d", got, r.Field("nationkey").Int())
		}
	}
}

func itoa2(n int64) string {
	return string([]byte{byte('0' + n/10), byte('0' + n%10)})
}

func TestGenDBLPTruthAndDictionary(t *testing.T) {
	data := GenDBLP(DBLPConfig{Pubs: 500, AuthorPool: 100, NoiseRate: 0.3, EditRate: 0.2, Seed: 17})
	if len(data.Dictionary) != 100 {
		t.Fatalf("dictionary size = %d", len(data.Dictionary))
	}
	if len(data.Truth) == 0 {
		t.Fatal("expected corrupted names in ground truth")
	}
	dict := map[string]bool{}
	for _, d := range data.Dictionary {
		dict[d.Field("term").Str()] = true
	}
	for dirty, clean := range data.Truth {
		if !dict[clean] {
			t.Fatalf("truth target %q not in dictionary", clean)
		}
		if dict[dirty] {
			t.Fatalf("dirty name %q collides with a clean name", dirty)
		}
	}
}

func TestGenDBLPNestedShape(t *testing.T) {
	data := GenDBLP(DBLPConfig{Pubs: 50, AuthorPool: 30, Seed: 19})
	for _, p := range data.Pubs {
		if p.Field("authors").Kind() != types.KindList {
			t.Fatalf("authors must be a list: %s", p)
		}
		if n := len(p.Field("authors").List()); n < 1 || n > 4 {
			t.Fatalf("author count %d out of range", n)
		}
		if p.Field("year").Int() < 1990 || p.Field("year").Int() > 2020 {
			t.Fatalf("year out of range: %s", p)
		}
	}
}

func TestGenDBLPDupKeys(t *testing.T) {
	data := GenDBLP(DBLPConfig{Pubs: 400, AuthorPool: 50, DupRate: 0.3, Seed: 23})
	if len(data.DupKeys) == 0 {
		t.Fatal("expected duplicate publications")
	}
	byKey := map[string]types.Value{}
	for _, p := range data.Pubs {
		byKey[p.Field("key").Str()] = p
	}
	for _, pair := range data.DupKeys {
		a, b := byKey[pair[0]], byKey[pair[1]]
		if a.Field("title").Str() != b.Field("title").Str() {
			t.Fatal("duplicate publications share the title")
		}
		if a.Field("journal").Str() != b.Field("journal").Str() {
			t.Fatal("duplicate publications share the journal")
		}
	}
}

func TestAuthorOccurrences(t *testing.T) {
	data := GenDBLP(DBLPConfig{Pubs: 20, AuthorPool: 10, Seed: 29})
	occ := AuthorOccurrences(data.Pubs)
	var want int
	for _, p := range data.Pubs {
		want += len(p.Field("authors").List())
	}
	if len(occ) != want {
		t.Fatalf("occurrences = %d, want %d", len(occ), want)
	}
}

func TestGenMAGSkewAndDups(t *testing.T) {
	data := GenMAG(MAGConfig{Rows: 3000, DupRate: 0.1, Seed: 31})
	years := map[int64]int{}
	for _, r := range data.Rows {
		years[r.Field("year").Int()]++
	}
	if years[2014]*4 < len(data.Rows) {
		t.Fatalf("2014 should carry a large share: %d of %d", years[2014], len(data.Rows))
	}
	if len(data.DupPairs) == 0 {
		t.Fatal("expected MAG duplicates")
	}
	// Duplicates concentrate in 2014 (recent crawls).
	byID := map[int64]types.Value{}
	for _, r := range data.Rows {
		byID[r.Field("paperid").Int()] = r
	}
	recent := 0
	for _, p := range data.DupPairs {
		if byID[p[0]].Field("year").Int() >= 2013 {
			recent++
		}
	}
	if recent*2 < len(data.DupPairs) {
		t.Fatalf("duplicates should concentrate in recent years: %d of %d", recent, len(data.DupPairs))
	}
}

func TestSynthNameShape(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for i := 0; i < 200; i++ {
		n := synthName(rng)
		if len(n) < 8 || len(n) > 20 {
			t.Fatalf("name length %d: %q", len(n), n)
		}
		spaces := 0
		for _, c := range n {
			if c == ' ' {
				spaces++
			}
		}
		if spaces != 1 {
			t.Fatalf("name should have one space: %q", n)
		}
	}
}
