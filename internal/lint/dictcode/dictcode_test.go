package dictcode_test

import (
	"testing"

	"cleandb/internal/lint/analysistest"
	"cleandb/internal/lint/dictcode"
)

func TestDictCode(t *testing.T) {
	analysistest.Run(t, "testdata", dictcode.Analyzer, "dictfixture")
}
