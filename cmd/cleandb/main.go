// Command cleandb is the CleanDB shell: it registers data files of any
// supported format as queryable sources and runs CleanM statements against
// them — querying and cleaning through one interface, as the paper proposes.
//
// Usage:
//
//	cleandb query  -src name=path.csv [-src dict=path.json ...] [-explain] 'SELECT ...'
//	cleandb gen    -kind tpch-lineitem|tpch-customer|dblp|mag -rows N -out path.csv
//	cleandb convert -in path.csv -out path.colbin
//
// Formats are inferred from file extensions: .csv, .json (JSON lines),
// .xml, .colbin.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cleandb"
	"cleandb/internal/data"
	"cleandb/internal/datagen"
	"cleandb/internal/lang"
	"cleandb/internal/types"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "query":
		err = cmdQuery(os.Args[2:])
	case "gen":
		err = cmdGen(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cleandb:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `cleandb — unified scale-out data cleaning (CleanM)

subcommands:
  query    -src name=path [...] [-workers N] [-explain] [-limit N] 'CLEANM QUERY'
  gen      -kind tpch-lineitem|tpch-customer|dblp|mag -rows N -out path
  convert  -in path -out path

examples:
  cleandb gen -kind tpch-customer -rows 10000 -out customer.csv
  cleandb query -src customer=customer.csv \
    'SELECT * FROM customer c FD(c.address, c.nationkey)'`)
}

type srcList []string

func (s *srcList) String() string     { return strings.Join(*s, ",") }
func (s *srcList) Set(v string) error { *s = append(*s, v); return nil }

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	var sources srcList
	fs.Var(&sources, "src", "name=path source registration (repeatable)")
	workers := fs.Int("workers", 8, "simulated cluster width")
	explain := fs.Bool("explain", false, "print the three-level plan instead of executing")
	limit := fs.Int("limit", 20, "max rows to print")
	standalone := fs.Bool("standalone", false, "disable unified optimization")
	repairedOut := fs.String("repaired-out", "", "write REPAIR-healed rows to this file (format by extension)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("query: want exactly one CleanM statement argument")
	}
	opts := []cleandb.Option{cleandb.WithWorkers(*workers)}
	if *standalone {
		opts = append(opts, cleandb.WithStandaloneOps())
	}
	db := cleandb.Open(opts...)
	for _, s := range sources {
		name, path, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("query: -src wants name=path, got %q", s)
		}
		if err := register(db, name, path); err != nil {
			return err
		}
	}
	query := fs.Arg(0)
	// Validate -repaired-out against the statement before executing: a
	// misuse error should not come after the (possibly expensive) run.
	if *repairedOut != "" {
		if parsed, err := lang.Parse(query); err == nil {
			repairs := 0
			for _, op := range parsed.Cleaning {
				if op.Kind == lang.CleanDenial && op.RepairAttr != nil {
					repairs++
				}
			}
			if repairs == 0 {
				return fmt.Errorf("query: -repaired-out set but the statement has no REPAIR clause")
			}
		}
	}
	if *explain {
		out, err := db.Explain(query)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	res, err := db.Query(query)
	if err != nil {
		return err
	}
	rows := res.Rows()
	for i, r := range rows {
		if i >= *limit {
			fmt.Printf("... (%d more rows)\n", len(rows)-*limit)
			break
		}
		fmt.Println(r)
	}
	repairs := res.Repairs()
	for _, s := range repairs {
		fmt.Fprintf(os.Stderr, "-- repair %s.%s: %d violating pairs, %d values changed (%d clusters, %d rounds), %d remaining\n",
			s.Source, s.Col, s.Violations, s.Changed, s.Clusters, s.Rounds, s.Remaining)
	}
	if *repairedOut != "" {
		if len(repairs) == 0 {
			return fmt.Errorf("query: -repaired-out set but the statement has no REPAIR clause")
		}
		// Successive REPAIR clauses compose, so the last summary per source
		// holds the final rows; one output file means one repaired source.
		last := repairs[len(repairs)-1]
		for _, s := range repairs {
			if s.Source != last.Source {
				return fmt.Errorf("query: -repaired-out supports repairs of a single source, got %s and %s", s.Source, last.Source)
			}
		}
		if err := writeFile(*repairedOut, last.Rows); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "-- repaired %s written to %s (%d rows)\n", last.Source, *repairedOut, len(last.Rows))
	}
	m := db.Metrics()
	fmt.Fprintf(os.Stderr, "-- %d rows; %d ticks, %d comparisons, %d records shuffled\n",
		len(rows), m.SimTicks, m.Comparisons, m.ShuffledRecords)
	return nil
}

func register(db *cleandb.DB, name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch filepath.Ext(path) {
	case ".csv":
		return db.RegisterCSV(name, f)
	case ".json", ".jsonl", ".ndjson":
		return db.RegisterJSON(name, f)
	case ".xml":
		return db.RegisterXML(name, f)
	case ".colbin":
		return db.RegisterColbin(name, f)
	default:
		return fmt.Errorf("unknown format for %q (want .csv/.json/.xml/.colbin)", path)
	}
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "tpch-customer", "dataset kind: tpch-lineitem, tpch-customer, dblp, mag, dict")
	rows := fs.Int("rows", 10000, "row / publication count")
	out := fs.String("out", "", "output path (.csv/.json/.xml/.colbin)")
	seed := fs.Int64("seed", 42, "generator seed")
	noise := fs.Float64("noise", 0.10, "noise rate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("gen: -out is required")
	}
	var records []types.Value
	switch *kind {
	case "tpch-lineitem":
		records = datagen.GenLineitem(datagen.LineitemConfig{Rows: *rows, NoiseRate: *noise, Seed: *seed})
	case "tpch-customer":
		records = datagen.GenCustomer(datagen.CustomerConfig{Rows: *rows, DupRate: *noise, MaxDups: 50, Seed: *seed}).Rows
	case "dblp":
		records = datagen.GenDBLP(datagen.DBLPConfig{Pubs: *rows, AuthorPool: *rows/10 + 50, NoiseRate: *noise, DupRate: 0.1, Seed: *seed}).Pubs
	case "dict":
		records = datagen.GenDBLP(datagen.DBLPConfig{Pubs: 1, AuthorPool: *rows, Seed: *seed}).Dictionary
	case "mag":
		records = datagen.GenMAG(datagen.MAGConfig{Rows: *rows, DupRate: *noise, Seed: *seed}).Rows
	default:
		return fmt.Errorf("gen: unknown kind %q", *kind)
	}
	return writeFile(*out, records)
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "input path")
	out := fs.String("out", "", "output path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("convert: -in and -out are required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	var records []types.Value
	switch filepath.Ext(*in) {
	case ".csv":
		records, err = data.ReadCSV(f)
	case ".json", ".jsonl", ".ndjson":
		records, err = data.ReadJSON(f)
	case ".xml":
		records, err = data.ReadXML(f)
	case ".colbin":
		records, err = data.ReadColbin(f)
	default:
		return fmt.Errorf("convert: unknown input format %q", *in)
	}
	if err != nil {
		return err
	}
	return writeFile(*out, records)
}

func writeFile(path string, records []types.Value) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch filepath.Ext(path) {
	case ".csv":
		return data.WriteCSV(f, records)
	case ".json", ".jsonl", ".ndjson":
		return data.WriteJSON(f, records)
	case ".xml":
		return data.WriteXML(f, records, "rows", "row")
	case ".colbin":
		return data.WriteColbin(f, records)
	default:
		return fmt.Errorf("unknown output format %q", path)
	}
}
