package source

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"cleandb/internal/data"
	"cleandb/internal/types"
)

// custodyScanAll drives a ScanPlan through the full custody protocol as if it
// were one member owning every chunk: vote round (when the plan needs one),
// merged-type install, per-chunk builds, and Finish. The result must be
// exactly what Scan would have returned.
func custodyScanAll(t *testing.T, src PartitionedScanner, parts int) [][]types.Value {
	t.Helper()
	ctx := context.Background()
	plan, err := src.PlanScan(ctx, parts)
	if err != nil {
		t.Fatalf("PlanScan(%d): %v", parts, err)
	}
	n := plan.Chunks()
	if n > parts {
		t.Fatalf("PlanScan(%d): %d chunks", parts, n)
	}
	// No chunks → no vote round, matching the cluster driver: Finish defaults
	// the types itself.
	if plan.NeedsVote() && n > 0 {
		votes := make([][]data.ColVote, n)
		cols := 0
		for i := 0; i < n; i++ {
			if votes[i], err = plan.Vote(ctx, i); err != nil {
				t.Fatalf("Vote(%d): %v", i, err)
			}
			cols = len(votes[i])
		}
		ts, voted := data.MergeColVotes(votes, cols)
		if err := plan.SetTypes(data.ColVotes(ts, voted)); err != nil {
			t.Fatalf("SetTypes: %v", err)
		}
	}
	full := make([][]types.Value, n)
	for i := 0; i < n; i++ {
		if full[i], err = plan.Build(ctx, i); err != nil {
			t.Fatalf("Build(%d): %v", i, err)
		}
	}
	out, err := plan.Finish(full)
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return out
}

// wantSameParts asserts partition-vector equality: same partition count, same
// rows per partition, element-wise identical values.
func wantSameParts(t *testing.T, got, want [][]types.Value) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("partition count = %d, want %d", len(got), len(want))
	}
	for p := range want {
		if len(got[p]) != len(want[p]) {
			t.Fatalf("partition %d: %d rows, want %d", p, len(got[p]), len(want[p]))
		}
		for i := range want[p] {
			if !types.Equal(got[p][i], want[p][i]) {
				t.Fatalf("partition %d row %d = %v, want %v", p, i, got[p][i], want[p][i])
			}
		}
	}
}

// TestCustodyPlanMatchesScan is the source-layer half of the partitioned
// custody equivalence proof: for every PartitionedScanner, building the
// partition vector chunk-by-chunk through a ScanPlan yields the exact
// partition vector Scan produces — same partition boundaries included, since
// downstream placement keys on partition index.
func TestCustodyPlanMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	csvText := genCSV(rng, 120)
	var jsonSB strings.Builder
	for i := 0; i < 150; i++ {
		if i%5 == 2 {
			jsonSB.WriteString("\n")
			continue
		}
		jsonSB.WriteString(`{"id":` + strings.Repeat("1", 1+i%3) + `,"tag":"t"}` + "\n")
	}
	colbinBuf := colbinSample(t, 200)

	cases := []struct {
		name string
		mk   func() PartitionedScanner
	}{
		{"csv", func() PartitionedScanner { return CSVBytes([]byte(csvText)) }},
		{"csv-empty", func() PartitionedScanner { return CSVBytes(nil) }},
		{"csv-header-only", func() PartitionedScanner { return CSVBytes([]byte("a,b,c\n")) }},
		{"json", func() PartitionedScanner { return JSONBytes([]byte(jsonSB.String())) }},
		{"json-empty", func() PartitionedScanner { return JSONBytes(nil) }},
		{"colbin", func() PartitionedScanner { return ColbinBytes(colbinBuf) }},
		{"colbin-empty", func() PartitionedScanner { return ColbinBytes(colbinSample(t, 0)) }},
	}
	for _, tc := range cases {
		for _, parts := range []int{1, 2, 3, 8} {
			want, err := tc.mk().Scan(context.Background(), parts)
			if err != nil {
				t.Fatalf("%s parts=%d: Scan: %v", tc.name, parts, err)
			}
			got := custodyScanAll(t, tc.mk(), parts)
			if len(got) != len(want) {
				t.Fatalf("%s parts=%d: custody %d partitions, Scan %d", tc.name, parts, len(got), len(want))
			}
			wantSameParts(t, got, want)
		}
	}
}

// TestCustodyPlanChunkBytes pins the byte accounting the cluster's
// memory-scaling claim rests on: per-chunk costs are positive and sum to
// (roughly, exactly for CSV) the whole input, so owning 1/N of the chunks
// means parsing ~1/N of the bytes.
func TestCustodyPlanChunkBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	csvText := genCSV(rng, 200)
	src := CSVBytes([]byte(csvText))
	plan, err := src.PlanScan(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for i := 0; i < plan.Chunks(); i++ {
		b := plan.ChunkBytes(i)
		if b <= 0 {
			t.Fatalf("chunk %d: ChunkBytes = %d", i, b)
		}
		sum += b
	}
	if sum != int64(len(csvText)) {
		t.Fatalf("CSV chunk bytes sum to %d, input is %d", sum, len(csvText))
	}

	colbinBuf := colbinSample(t, 100)
	cp, err := ColbinBytes(colbinBuf).PlanScan(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var csum int64
	for i := 0; i < cp.Chunks(); i++ {
		csum += cp.ChunkBytes(i)
	}
	if csum <= 0 || csum > int64(len(colbinBuf)) {
		t.Fatalf("colbin chunk bytes sum to %d, file is %d", csum, len(colbinBuf))
	}
}

// TestCustodyPlanBuildBeforeVotes: a CSV Build without SetTypes must error —
// the custody driver sequences the vote barrier first, and the plan enforces
// it rather than silently producing wrongly-typed rows.
func TestCustodyPlanBuildBeforeVotes(t *testing.T) {
	plan, err := CSVBytes([]byte("a,b\n1,2\n")).PlanScan(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Build(context.Background(), 0); err == nil {
		t.Fatal("Build before SetTypes succeeded")
	}
	if _, err := plan.Finish(make([][]types.Value, plan.Chunks())); err == nil {
		t.Fatal("Finish before SetTypes succeeded")
	}
}

// TestCustodyPlanAdoptionReparse: Build after an earlier Build of the same
// chunk (the adoption path re-parses chunks whose vote-round cache was
// dropped) returns identical rows.
func TestCustodyPlanAdoptionReparse(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	plan, err := CSVBytes([]byte(genCSV(rng, 60))).PlanScan(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	n := plan.Chunks()
	votes := make([][]data.ColVote, n)
	for i := 0; i < n; i++ {
		if votes[i], err = plan.Vote(context.Background(), i); err != nil {
			t.Fatal(err)
		}
	}
	ts, voted := data.MergeColVotes(votes, len(votes[0]))
	if err := plan.SetTypes(data.ColVotes(ts, voted)); err != nil {
		t.Fatal(err)
	}
	first, err := plan.Build(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	again, err := plan.Build(context.Background(), 1) // cache dropped by the first Build
	if err != nil {
		t.Fatal(err)
	}
	wantSameRows(t, again, first)
}
