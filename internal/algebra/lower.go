package algebra

import (
	"fmt"

	"cleandb/internal/monoid"
)

// UnitSource is the name of the implicit one-record source used to anchor
// generators over constant collections; every physical catalog provides it.
const UnitSource = "$unit"

// Lowerer translates normalized monoid comprehensions into algebraic plans
// (the comprehension→algebra step of paper §5, after Fegaras & Maier).
type Lowerer struct {
	// IsSource reports whether a free variable names a catalog dataset.
	IsSource func(name string) bool
}

// Lower translates the comprehension. The produced plan's root is a Reduce
// (for primitive/collection output monoids) or a Nest (for the grouping
// monoid).
func (l *Lowerer) Lower(c *monoid.Comprehension) (Plan, error) {
	st := &lowerState{l: l}
	if err := st.addQuals(c.Quals); err != nil {
		return nil, err
	}
	if len(st.deferred) > 0 {
		return nil, fmt.Errorf("algebra: predicate %q references unbound variables", st.deferred[0].String())
	}
	if c.M.Name() == (monoid.GroupBy{}).Name() {
		key, val, err := groupHeadParts(c.Head)
		if err != nil {
			return nil, err
		}
		if st.plan == nil {
			return nil, fmt.Errorf("algebra: grouping comprehension without generators")
		}
		return &Nest{
			Child: st.plan,
			Keys:  []monoid.Expr{key},
			Aggs:  []Aggregate{{Name: "group", M: monoid.Bag, Val: val}},
			As:    "g",
		}, nil
	}
	if st.plan == nil {
		// No generators: the comprehension is a scalar — reduce over the
		// unit source so the plan still executes uniformly.
		st.plan = &Scan{Source: UnitSource, Alias: "$u"}
	}
	return &Reduce{Child: st.plan, M: c.M, Head: c.Head, As: "$out"}, nil
}

type lowerState struct {
	l        *Lowerer
	plan     Plan
	bound    map[string]bool
	deferred []monoid.Expr
}

func (st *lowerState) isBoundSet(vars []string, extra string) bool {
	for _, v := range vars {
		if v == extra {
			continue
		}
		if !st.bound[v] {
			return false
		}
	}
	return true
}

func (st *lowerState) addQuals(quals []monoid.Qual) error {
	if st.bound == nil {
		st.bound = map[string]bool{}
	}
	for _, q := range quals {
		switch qq := q.(type) {
		case *monoid.Pred:
			if err := st.addPred(qq.Cond); err != nil {
				return err
			}
		case *monoid.Let:
			if st.plan == nil {
				st.plan = &Scan{Source: UnitSource, Alias: "$u"}
				st.bound["$u"] = true
			}
			st.plan = &Extend{Child: st.plan, Var: qq.Var, E: qq.E}
			st.bound[qq.Var] = true
			st.retryDeferred()
		case *monoid.Generator:
			if err := st.addGenerator(qq); err != nil {
				return err
			}
		}
	}
	return nil
}

func (st *lowerState) addPred(cond monoid.Expr) error {
	free := monoid.FreeVars(cond)
	for _, v := range free {
		if !st.bound[v] && !(st.l.IsSource != nil && st.l.IsSource(v)) {
			st.deferred = append(st.deferred, cond)
			return nil
		}
	}
	if st.plan == nil {
		st.plan = &Scan{Source: UnitSource, Alias: "$u"}
		st.bound["$u"] = true
	}
	// A predicate arriving right after a join was formed may be its join
	// condition: attach it to the join instead of filtering the product.
	if j, ok := st.plan.(*Join); ok && st.attachToJoin(j, cond) {
		return nil
	}
	st.plan = &Select{Child: st.plan, Pred: cond}
	return nil
}

// attachToJoin tries to classify cond as a condition of j (an equality pair
// becomes join keys; any other predicate spanning both sides becomes the
// theta/residual condition). It reports whether the predicate was consumed.
func (st *lowerState) attachToJoin(j *Join, cond monoid.Expr) bool {
	leftBinds := map[string]bool{}
	for _, b := range j.Left.Binds() {
		leftBinds[b] = true
	}
	rightBinds := map[string]bool{}
	for _, b := range j.Right.Binds() {
		rightBinds[b] = true
	}
	refsLeft, refsRight := false, false
	for _, v := range monoid.FreeVars(cond) {
		switch {
		case leftBinds[v]:
			refsLeft = true
		case rightBinds[v]:
			refsRight = true
		default:
			return false // references something outside the join
		}
	}
	if !refsLeft || !refsRight {
		return false // one-sided predicate: an ordinary selection
	}
	if bo, ok := cond.(*monoid.BinOp); ok && bo.Op == "==" {
		lRefs := sidesOf(bo.L, leftBinds, rightBinds)
		rRefs := sidesOf(bo.R, leftBinds, rightBinds)
		switch {
		case lRefs == sideLeft && rRefs == sideRight:
			j.LeftKeys = append(j.LeftKeys, bo.L)
			j.RightKeys = append(j.RightKeys, bo.R)
			return true
		case lRefs == sideRight && rRefs == sideLeft:
			j.LeftKeys = append(j.LeftKeys, bo.R)
			j.RightKeys = append(j.RightKeys, bo.L)
			return true
		}
	}
	if len(j.LeftKeys) > 0 {
		j.Residual = conjoin(j.Residual, cond)
	} else {
		j.Theta = conjoin(j.Theta, cond)
	}
	return true
}

type side int

const (
	sideNone side = iota
	sideLeft
	sideRight
	sideBoth
)

func sidesOf(e monoid.Expr, left, right map[string]bool) side {
	s := sideNone
	for _, v := range monoid.FreeVars(e) {
		switch {
		case left[v]:
			if s == sideRight {
				return sideBoth
			}
			s = sideLeft
		case right[v]:
			if s == sideLeft {
				return sideBoth
			}
			s = sideRight
		}
	}
	return s
}

func conjoin(a, b monoid.Expr) monoid.Expr {
	if a == nil {
		return b
	}
	return &monoid.BinOp{Op: "and", L: a, R: b}
}

// retryDeferred re-attempts deferred predicates after new bindings appear.
func (st *lowerState) retryDeferred() {
	remaining := st.deferred[:0]
	for _, p := range st.deferred {
		ok := true
		for _, v := range monoid.FreeVars(p) {
			if !st.bound[v] {
				ok = false
				break
			}
		}
		if ok {
			st.plan = &Select{Child: st.plan, Pred: p}
		} else {
			remaining = append(remaining, p)
		}
	}
	st.deferred = remaining
}

func (st *lowerState) addGenerator(g *monoid.Generator) error {
	newPlan, dependent, err := st.sourcePlan(g)
	if err != nil {
		return err
	}
	if dependent {
		// The generator's source references current bindings: Unnest.
		st.bound[g.Var] = true
		st.retryDeferred()
		return nil
	}
	if st.plan == nil {
		st.plan = newPlan
		st.bound[g.Var] = true
		st.retryDeferred()
		return nil
	}
	// Independent source: join with the current plan, extracting join
	// conditions from the deferred predicates that become bound now.
	join := &Join{Left: st.plan, Right: newPlan}
	var residuals []monoid.Expr
	remaining := st.deferred[:0]
	for _, p := range st.deferred {
		if !st.isBoundSet(monoid.FreeVars(p), g.Var) {
			remaining = append(remaining, p)
			continue
		}
		refsNew := false
		for _, v := range monoid.FreeVars(p) {
			if v == g.Var {
				refsNew = true
			}
		}
		if !refsNew {
			remaining = append(remaining, p)
			continue
		}
		if lk, rk, ok := equiParts(p, st.bound, g.Var); ok {
			join.LeftKeys = append(join.LeftKeys, lk)
			join.RightKeys = append(join.RightKeys, rk)
		} else {
			residuals = append(residuals, p)
		}
	}
	st.deferred = remaining
	if len(join.LeftKeys) == 0 && len(residuals) > 0 {
		join.Theta = conj(residuals)
	} else if len(residuals) > 0 {
		join.Residual = conj(residuals)
	}
	st.plan = join
	st.bound[g.Var] = true
	st.retryDeferred()
	return nil
}

// sourcePlan builds the plan for a generator source. dependent=true means the
// source references already-bound variables, so the generator becomes an
// Unnest over the current plan (which sourcePlan installs itself).
func (st *lowerState) sourcePlan(g *monoid.Generator) (p Plan, dependent bool, err error) {
	switch src := g.Source.(type) {
	case *monoid.Var:
		if st.bound[src.Name] {
			// Iterating a bound collection variable: unnest.
			st.ensurePlan()
			st.plan = &Unnest{Child: st.plan, Path: src, As: g.Var}
			return nil, true, nil
		}
		if st.l.IsSource == nil || !st.l.IsSource(src.Name) {
			return nil, false, fmt.Errorf("algebra: unknown source %q", src.Name)
		}
		return &Scan{Source: src.Name, Alias: g.Var}, false, nil
	case *monoid.Comprehension:
		if src.M.Name() == (monoid.GroupBy{}).Name() {
			inner := &lowerState{l: st.l}
			if err := inner.addQuals(src.Quals); err != nil {
				return nil, false, err
			}
			if len(inner.deferred) > 0 {
				return nil, false, fmt.Errorf("algebra: grouping subquery has unbound predicate %q", inner.deferred[0].String())
			}
			key, val, err := groupHeadParts(src.Head)
			if err != nil {
				return nil, false, err
			}
			if inner.plan == nil {
				return nil, false, fmt.Errorf("algebra: grouping subquery without generators")
			}
			return &Nest{
				Child: inner.plan,
				Keys:  []monoid.Expr{key},
				Aggs:  []Aggregate{{Name: "group", M: monoid.Bag, Val: val}},
				As:    g.Var,
			}, false, nil
		}
		// Uncorrelated collection subquery: lower independently.
		correlated := false
		for _, v := range monoid.FreeVars(src) {
			if st.bound[v] {
				correlated = true
				break
			}
		}
		if !correlated {
			sub, err := st.l.Lower(src)
			if err != nil {
				return nil, false, err
			}
			if r, ok := sub.(*Reduce); ok {
				r.As = g.Var
			}
			return sub, false, nil
		}
		// Correlated: evaluate the nested comprehension per record.
		st.ensurePlan()
		st.plan = &Unnest{Child: st.plan, Path: src, As: g.Var}
		return nil, true, nil
	default:
		// Arbitrary expression over bound variables: unnest its value.
		st.ensurePlan()
		st.plan = &Unnest{Child: st.plan, Path: g.Source, As: g.Var}
		return nil, true, nil
	}
}

func (st *lowerState) ensurePlan() {
	if st.plan == nil {
		st.plan = &Scan{Source: UnitSource, Alias: "$u"}
		st.bound["$u"] = true
	}
}

// groupHeadParts destructures the {key, val} head of a grouping comprehension.
func groupHeadParts(head monoid.Expr) (key, val monoid.Expr, err error) {
	rc, ok := head.(*monoid.RecordCtor)
	if !ok {
		return nil, nil, fmt.Errorf("algebra: grouping head must be a {key, val} record, got %s", head)
	}
	for i, n := range rc.Names {
		switch n {
		case "key":
			key = rc.Fields[i]
		case "val":
			val = rc.Fields[i]
		}
	}
	if key == nil || val == nil {
		return nil, nil, fmt.Errorf("algebra: grouping head must provide key and val, got %s", head)
	}
	return key, val, nil
}

// equiParts splits an equality predicate into (leftExpr, rightExpr) where the
// right side references only newVar and the left side only previously bound
// variables.
func equiParts(p monoid.Expr, bound map[string]bool, newVar string) (monoid.Expr, monoid.Expr, bool) {
	bo, ok := p.(*monoid.BinOp)
	if !ok || bo.Op != "==" {
		return nil, nil, false
	}
	refs := func(e monoid.Expr) (old, new bool) {
		for _, v := range monoid.FreeVars(e) {
			if v == newVar {
				new = true
			} else if bound[v] {
				old = true
			}
		}
		return
	}
	lo, ln := refs(bo.L)
	ro, rn := refs(bo.R)
	switch {
	case lo && !ln && rn && !ro:
		return bo.L, bo.R, true
	case ro && !rn && ln && !lo:
		return bo.R, bo.L, true
	default:
		return nil, nil, false
	}
}

func conj(preds []monoid.Expr) monoid.Expr {
	if len(preds) == 0 {
		return nil
	}
	out := preds[0]
	for _, p := range preds[1:] {
		out = &monoid.BinOp{Op: "and", L: out, R: p}
	}
	return out
}
