// Package sinkfixture exercises the sinkrelease analyzer against the real
// sink.Sink contract.
package sinkfixture

import (
	"cleandb/internal/sink"
	"cleandb/internal/types"
)

// memSink implements sink.Sink (and Aborter) for the fixtures.
type memSink struct{ rows int }

func (m *memSink) Open(schema []string) error { return nil }
func (m *memSink) WritePartition(i int, rows []types.Value) error {
	m.rows += len(rows)
	return nil
}
func (m *memSink) Close() error { return nil }
func (m *memSink) Abort() error { return nil }

var _ sink.Sink = (*memSink)(nil)

// leakOnError closes on success but leaks the sink when the write fails.
func leakOnError(s *memSink, rows []types.Value) error {
	if err := s.Open(nil); err != nil { // want `does not reach Close`
		return err
	}
	if err := s.WritePartition(0, rows); err != nil {
		return err // leaks s
	}
	return s.Close()
}

// earlyReturn leaks on the skip path.
func earlyReturn(s *memSink, rows []types.Value, skip bool) error {
	if err := s.Open(nil); err != nil { // want `does not reach Close`
		return err
	}
	if skip {
		return nil // leaks s
	}
	return s.Close()
}

// deferredClose releases through a defer: every exit is covered.
func deferredClose(s *memSink, rows []types.Value) error {
	if err := s.Open(nil); err != nil {
		return err
	}
	defer s.Close()
	return s.WritePartition(0, rows)
}

// abortOnFailure mirrors sink.Pump: Close on success, Abort on failure.
func abortOnFailure(s *memSink, rows []types.Value) error {
	if err := s.Open(nil); err != nil {
		return err
	}
	if err := s.WritePartition(0, rows); err != nil {
		_ = s.Abort()
		return err
	}
	return s.Close()
}

// openErrorExempt relies on the contract that a failed Open released its own
// resources: returning on the error branch is not a leak.
func openErrorExempt(s *memSink) error {
	if err := s.Open(nil); err != nil {
		return err
	}
	return s.Close()
}

// assertedRelease releases through a type-asserted view of the sink, the
// way sink.Pump aborts through the optional Aborter interface.
func assertedRelease(s sink.Sink, rows []types.Value) error {
	if err := s.Open(nil); err != nil {
		return err
	}
	if err := s.WritePartition(0, rows); err != nil {
		if a, ok := s.(interface{ Abort() error }); ok {
			_ = a.Abort()
		} else {
			_ = s.Close()
		}
		return err
	}
	return s.Close()
}

// transferred hands the opened sink to the caller: ownership moves with it.
func transferred() (sink.Sink, error) {
	s := &memSink{}
	if err := s.Open(nil); err != nil {
		return nil, err
	}
	return s, nil
}
