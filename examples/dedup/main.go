// Heterogeneous deduplication: serializes a DBLP-style bibliography to four
// representations (nested XML, nested JSON, flat CSV, binary columnar),
// registers each with CleanDB and runs the same DEDUP query — showing the
// paper's §8.3 point that cleaning nested data in its original shape beats
// flattening it first.
//
//	go run ./examples/dedup [-pubs 3000]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"

	"cleandb"
	"cleandb/internal/data"
	"cleandb/internal/datagen"
)

func main() {
	pubs := flag.Int("pubs", 3000, "publications to generate")
	flag.Parse()

	corpus := datagen.GenDBLP(datagen.DBLPConfig{
		Pubs: *pubs, AuthorPool: 500, NoiseRate: 0.05, EditRate: 0.15,
		DupRate: 0.10, Seed: 42,
	})
	flat := data.Flatten(corpus.Pubs)

	var xmlBuf, jsonBuf, csvBuf, binBuf bytes.Buffer
	check(data.WriteXML(&xmlBuf, corpus.Pubs, "dblp", "article"))
	check(data.WriteJSON(&jsonBuf, corpus.Pubs))
	check(data.WriteCSV(&csvBuf, flat))
	check(data.WriteColbin(&binBuf, corpus.Pubs))

	fmt.Printf("corpus: %d publications (%d injected duplicates)\n", len(corpus.Pubs), len(corpus.DupKeys))
	fmt.Printf("sizes: XML %dKB, JSON %dKB, flat CSV %dKB, colbin %dKB\n\n",
		xmlBuf.Len()/1024, jsonBuf.Len()/1024, csvBuf.Len()/1024, binBuf.Len()/1024)

	type source struct {
		name     string
		register func(db *cleandb.DB) error
	}
	sources := []source{
		{"XML (nested)", func(db *cleandb.DB) error { return db.RegisterXML("pubs", bytes.NewReader(xmlBuf.Bytes())) }},
		{"JSON (nested)", func(db *cleandb.DB) error { return db.RegisterJSON("pubs", bytes.NewReader(jsonBuf.Bytes())) }},
		{"CSV (flattened)", func(db *cleandb.DB) error { return db.RegisterCSV("pubs", bytes.NewReader(csvBuf.Bytes())) }},
		{"colbin (nested)", func(db *cleandb.DB) error { return db.RegisterColbin("pubs", bytes.NewReader(binBuf.Bytes())) }},
	}

	// Same-journal-and-title blocking with 80% whole-record similarity —
	// the paper's DBLP duplicate criterion.
	query := `SELECT * FROM pubs p DEDUP(attribute, LD, 0.8, p.title, p.key)`

	fmt.Printf("%-18s %10s %12s %12s\n", "format", "rows", "pairs", "ticks")
	for _, src := range sources {
		db := cleandb.Open(cleandb.WithWorkers(8))
		check(src.register(db))
		rows, err := db.Rows("pubs")
		check(err)
		res, err := db.Query(query)
		if err != nil {
			log.Fatalf("%s: %v", src.name, err)
		}
		m := db.Metrics()
		fmt.Printf("%-18s %10d %12d %12d\n", src.name, len(rows), len(res.Rows()), m.SimTicks)
	}
	fmt.Println("\nThe flattened representation repeats each publication once per author,")
	fmt.Println("so the same cleaning task processes several times more rows.")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
