package lang

import (
	"testing"
)

// FuzzParse exercises the lexer/parser for panics and infinite loops on
// arbitrary input. Any input may be rejected with an error, but none may
// crash; parseable statements must also survive de-sugaring.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`SELECT * FROM t`,
		`SELECT a.b AS x, * FROM t a WHERE a.b > 1.5 AND NOT a.c = 'x'`,
		`SELECT * FROM customer c FD(c.address, prefix(c.phone))`,
		`SELECT * FROM customer c DEDUP(token_filtering(2), LD, 0.8, c.name)`,
		`SELECT * FROM c a, d b CLUSTER BY(kmeans(10), LD, 0.8, a.name)`,
		`SELECT g, count(*) FROM t GROUP BY g HAVING count(*) > 1`,
		`SELECT * FROM l FD((l.a, l.b), l.c)`,
		`SELECT '' FROM t WHERE x = -2 OR y <> null`,
		`select * from t where (((x)))`,
		`SELECT * FROM`,
		`FD(`,
		`SELECT * FROM t WHERE 'unterminated`,
		"SELECT * FROM t \x00\xff",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil || q == nil {
			return
		}
		// Anything that parses must de-sugar without panicking (errors ok).
		var d Desugarer
		_, _ = d.Desugar(q)
	})
}

// FuzzTokenize separately exercises the lexer.
func FuzzTokenize(f *testing.F) {
	f.Add(`SELECT 1.2.3 ... ,,, ((( ''`)
	f.Add("ident_with_underscores 123 >= <> !=")
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Tokenize(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatalf("token stream must end with EOF: %v", toks)
		}
	})
}
