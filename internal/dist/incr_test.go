package dist

// Incremental-catalog guard tests: a cluster must never serve a stale
// replicated view. When the coordinator's copy of a file-backed source grows
// (tail refresh), the shipped source version moves and workers re-scan; when
// the coordinator holds memory-only appended rows that cannot be
// reconstructed from any path, the distributed session refuses to start and
// the query runs single-process.

import (
	"context"
	"os"
	"testing"

	"cleandb"
	"cleandb/internal/types"
)

const distItemsCSV = `id,price
1,10
2,20
3,30
4,40
5,50
6,60
7,70
8,80
`

const distItemsQuery = `SELECT * FROM items t1
DENIAL(t2, t1.price < t2.price)`

// writeItems writes the items fixture and returns its path.
func writeItems(t *testing.T) string {
	t.Helper()
	path := t.TempDir() + "/items.csv"
	if err := os.WriteFile(path, []byte(distItemsCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// coldCount answers the query over the file single-process.
func coldCount(t *testing.T, path string) int {
	t.Helper()
	db := cleandb.Open()
	if err := db.RegisterFile("items", path); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(distItemsQuery)
	if err != nil {
		t.Fatal(err)
	}
	return res.RowCount()
}

func TestClusterRefreshesAppendedFile(t *testing.T) {
	path := writeItems(t)
	c := newTestCluster(t, 2, map[string]string{"items": path})
	ctx := context.Background()

	res, frags, err := c.run(ctx, distItemsQuery)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frags {
		if f.Err != "" {
			t.Fatalf("fragment on %s errored: %s", f.Worker, f.Err)
		}
	}
	if got, want := res.RowCount(), coldCount(t, path); got != want {
		t.Fatalf("initial distributed run: %d rows, cold %d", got, want)
	}

	// Grow the backing file and tail-refresh the coordinator. The tail lands
	// as an extra partition only the coordinator has — a layout no worker's
	// cold scan reproduces — so the next session must refuse and the query
	// runs single-process, still answering the fresh data.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("9,90\n10,100\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	added, err := c.db.Refresh(ctx, "items")
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 {
		t.Fatalf("refresh added %d rows, want 2", added)
	}
	if sess := c.coord.StartSession(ctx, distItemsQuery, nil); sess != nil {
		sess.Close()
		t.Fatal("StartSession accepted a catalog with an un-folded tail partition")
	}
	res, err = c.db.Query(distItemsQuery)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.RowCount(), coldCount(t, path); got != want {
		t.Fatalf("single-process fallback: %d rows, cold %d", got, want)
	}

	// Rewrite the file (it shrinks): the coordinator's refresh resets — a
	// full re-scan folds the tail, the base generation moves, and sessions
	// are admitted again. The shipped source version changes with it, so
	// every worker drops its stale load and re-scans the rewritten file.
	rewritten := "id,price\n1,15\n2,25\n3,35\n4,45\n5,55\n6,65\n"
	if err := os.WriteFile(path, []byte(rewritten), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.db.Refresh(ctx, "items"); err != nil {
		t.Fatal(err)
	}
	info, err := c.db.SourceInfo("items")
	if err != nil {
		t.Fatal(err)
	}
	if info.BaseGen == 0 || info.Appends != 0 {
		t.Fatalf("rewrite did not reset: base_gen=%d appends=%d", info.BaseGen, info.Appends)
	}

	res, frags, err = c.run(ctx, distItemsQuery)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frags {
		if f.Err != "" {
			t.Fatalf("post-rewrite fragment on %s errored: %s", f.Worker, f.Err)
		}
	}
	if got, want := res.RowCount(), coldCount(t, path); got != want {
		t.Fatalf("post-rewrite distributed run: %d rows, cold %d (stale replicated view)", got, want)
	}
	for _, w := range c.workers {
		winfo, err := w.wk.db.SourceInfo("items")
		if err != nil {
			t.Fatal(err)
		}
		if winfo.Rows != 6 {
			t.Fatalf("worker %s catalog holds %d rows, want 6 (stale load survived the rewrite)", w.id, winfo.Rows)
		}
	}
}

func TestClusterRefusesMemoryOnlyDelta(t *testing.T) {
	path := writeItems(t)
	c := newTestCluster(t, 1, map[string]string{"items": path})
	ctx := context.Background()

	if _, _, err := c.run(ctx, distItemsQuery); err != nil {
		t.Fatal(err)
	}

	// A programmatic append lives only in the coordinator's memory; no
	// worker can reconstruct it from the path, so a distributed session
	// must refuse rather than replicate a catalog missing the delta.
	schema := types.NewSchema("id", "price")
	if err := c.db.Append("items", []types.Value{
		types.NewRecord(schema, []types.Value{types.Int(9), types.Int(90)}),
	}); err != nil {
		t.Fatal(err)
	}
	if sess := c.coord.StartSession(ctx, distItemsQuery, nil); sess != nil {
		sess.Close()
		t.Fatal("StartSession accepted a catalog with memory-only appended rows")
	}
	// The single-process fallback serves the full, fresh answer.
	res, err := c.db.Query(distItemsQuery)
	if err != nil {
		t.Fatal(err)
	}
	if before := coldCount(t, path); res.RowCount() <= before {
		t.Fatalf("fallback answered %d rows, want more than the file's %d", res.RowCount(), before)
	}
}
