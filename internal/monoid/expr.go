package monoid

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"cleandb/internal/types"
)

// Expr is a node of the comprehension expression language.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// Const is a literal value.
type Const struct{ Val types.Value }

// Param is a query parameter placeholder: `?` (positional) or `:name` (named)
// in CleanM text. It behaves like an opaque constant during normalization and
// lowering — the plan keeps the placeholder — and is resolved against the
// compiler's (or evaluator's) parameter bindings at execute time, which is
// what lets one prepared plan serve many differently-bound executions.
type Param struct {
	// Key is the canonical binding key: "$1", "$2", ... for positional
	// placeholders, the lowercased name for named ones.
	Key string
}

// Var references a bound variable (generator or let binding).
type Var struct{ Name string }

// Field accesses a named field of a record-valued expression.
type Field struct {
	Rec  Expr
	Name string
}

// BinOp applies a binary operator. Supported: + - * / % == != < <= > >= and or.
type BinOp struct {
	Op   string
	L, R Expr
}

// UnOp applies a unary operator: "not" or "-".
type UnOp struct {
	Op string
	E  Expr
}

// Call invokes a registered builtin function.
type Call struct {
	Fn   string
	Args []Expr
}

// If is a conditional expression.
type If struct {
	Cond, Then, Else Expr
}

// RecordCtor constructs a record with the given field names.
type RecordCtor struct {
	Names  []string
	Fields []Expr

	schemaOnce sync.Once
	schema     *types.Schema
}

// Schema returns (and caches) the constructed record's schema. Safe for
// concurrent use: prepared plans are compiled by many executions at once.
func (r *RecordCtor) Schema() *types.Schema {
	r.schemaOnce.Do(func() { r.schema = types.NewSchema(r.Names...) })
	return r.schema
}

// ListCtor constructs a list value from element expressions.
type ListCtor struct{ Elems []Expr }

// Comprehension is ⊕{Head | Quals}; it may appear nested inside expressions.
type Comprehension struct {
	M     Monoid
	Head  Expr
	Quals []Qual
}

// Exists is sugar for any{ true | quals... } used by normalization to detect
// unnesting opportunities.
type Exists struct{ C *Comprehension }

func (*Const) exprNode()         {}
func (*Param) exprNode()         {}
func (*Var) exprNode()           {}
func (*Field) exprNode()         {}
func (*BinOp) exprNode()         {}
func (*UnOp) exprNode()          {}
func (*Call) exprNode()          {}
func (*If) exprNode()            {}
func (*RecordCtor) exprNode()    {}
func (*ListCtor) exprNode()      {}
func (*Comprehension) exprNode() {}
func (*Exists) exprNode()        {}

// Qual is one qualifier of a comprehension body.
type Qual interface {
	fmt.Stringer
	qualNode()
}

// Generator iterates Var over the collection denoted by Source.
type Generator struct {
	Var    string
	Source Expr
}

// Pred filters bindings by a boolean condition.
type Pred struct{ Cond Expr }

// Let binds Var to the value of E.
type Let struct {
	Var string
	E   Expr
}

func (*Generator) qualNode() {}
func (*Pred) qualNode()      {}
func (*Let) qualNode()       {}

// String renders the qualifier in calculus syntax.
func (g *Generator) String() string { return g.Var + " <- " + g.Source.String() }

// String renders the predicate.
func (p *Pred) String() string { return p.Cond.String() }

// String renders the binding.
func (l *Let) String() string { return l.Var + " := " + l.E.String() }

// String renders the literal.
func (c *Const) String() string {
	if c.Val.Kind() == types.KindString {
		return fmt.Sprintf("%q", c.Val.Str())
	}
	return c.Val.String()
}

// String renders the placeholder as it appeared in the query.
func (p *Param) String() string {
	if strings.HasPrefix(p.Key, "$") {
		return "?" + p.Key[1:]
	}
	return ":" + p.Key
}

// String renders the variable name.
func (v *Var) String() string { return v.Name }

// String renders the field access.
func (f *Field) String() string { return f.Rec.String() + "." + f.Name }

// String renders the operator application.
func (b *BinOp) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

// String renders the unary operator application.
func (u *UnOp) String() string { return u.Op + "(" + u.E.String() + ")" }

// String renders the call.
func (c *Call) String() string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	return c.Fn + "(" + strings.Join(args, ", ") + ")"
}

// String renders the conditional.
func (i *If) String() string {
	return "if " + i.Cond.String() + " then " + i.Then.String() + " else " + i.Else.String()
}

// String renders the record constructor.
func (r *RecordCtor) String() string {
	parts := make([]string, len(r.Names))
	for i := range r.Names {
		parts[i] = r.Names[i] + ": " + r.Fields[i].String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// String renders the list constructor.
func (l *ListCtor) String() string {
	parts := make([]string, len(l.Elems))
	for i, e := range l.Elems {
		parts[i] = e.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// String renders the comprehension in ⊕{ e | q1, ..., qn } form.
func (c *Comprehension) String() string {
	quals := make([]string, len(c.Quals))
	for i, q := range c.Quals {
		quals[i] = q.String()
	}
	return c.M.Name() + "{ " + c.Head.String() + " | " + strings.Join(quals, ", ") + " }"
}

// String renders the existential.
func (e *Exists) String() string { return "exists " + e.C.String() }

// ---------------------------------------------------------------------------
// Convenience constructors
// ---------------------------------------------------------------------------

// C wraps a Go value into a Const expression.
func C(v types.Value) *Const { return &Const{Val: v} }

// CInt wraps an int literal.
func CInt(i int64) *Const { return &Const{Val: types.Int(i)} }

// CStr wraps a string literal.
func CStr(s string) *Const { return &Const{Val: types.String(s)} }

// CBool wraps a bool literal.
func CBool(b bool) *Const { return &Const{Val: types.Bool(b)} }

// V references a variable.
func V(name string) *Var { return &Var{Name: name} }

// F accesses rec.name.
func F(rec Expr, name string) *Field { return &Field{Rec: rec, Name: name} }

// Eq builds l == r.
func Eq(l, r Expr) *BinOp { return &BinOp{Op: "==", L: l, R: r} }

// Gt builds l > r.
func Gt(l, r Expr) *BinOp { return &BinOp{Op: ">", L: l, R: r} }

// Lt builds l < r.
func Lt(l, r Expr) *BinOp { return &BinOp{Op: "<", L: l, R: r} }

// And builds l and r.
func And(l, r Expr) *BinOp { return &BinOp{Op: "and", L: l, R: r} }

// FreeVars returns the free variables of e in sorted order.
func FreeVars(e Expr) []string {
	set := map[string]struct{}{}
	freeVarsInto(e, map[string]struct{}{}, set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func freeVarsInto(e Expr, bound, out map[string]struct{}) {
	switch n := e.(type) {
	case *Const, *Param:
	case *Var:
		if _, ok := bound[n.Name]; !ok {
			out[n.Name] = struct{}{}
		}
	case *Field:
		freeVarsInto(n.Rec, bound, out)
	case *BinOp:
		freeVarsInto(n.L, bound, out)
		freeVarsInto(n.R, bound, out)
	case *UnOp:
		freeVarsInto(n.E, bound, out)
	case *Call:
		for _, a := range n.Args {
			freeVarsInto(a, bound, out)
		}
	case *If:
		freeVarsInto(n.Cond, bound, out)
		freeVarsInto(n.Then, bound, out)
		freeVarsInto(n.Else, bound, out)
	case *RecordCtor:
		for _, f := range n.Fields {
			freeVarsInto(f, bound, out)
		}
	case *ListCtor:
		for _, el := range n.Elems {
			freeVarsInto(el, bound, out)
		}
	case *Comprehension:
		compFreeVars(n, bound, out)
	case *Exists:
		compFreeVars(n.C, bound, out)
	}
}

func compFreeVars(c *Comprehension, bound, out map[string]struct{}) {
	local := make(map[string]struct{}, len(bound)+len(c.Quals))
	for k := range bound {
		local[k] = struct{}{}
	}
	for _, q := range c.Quals {
		switch qq := q.(type) {
		case *Generator:
			freeVarsInto(qq.Source, local, out)
			local[qq.Var] = struct{}{}
		case *Pred:
			freeVarsInto(qq.Cond, local, out)
		case *Let:
			freeVarsInto(qq.E, local, out)
			local[qq.Var] = struct{}{}
		}
	}
	freeVarsInto(c.Head, local, out)
}

// Substitute replaces free occurrences of name with repl in e, returning a
// new expression tree (e is not modified).
func Substitute(e Expr, name string, repl Expr) Expr {
	switch n := e.(type) {
	case *Const:
		return n
	case *Param:
		return n
	case *Var:
		if n.Name == name {
			return repl
		}
		return n
	case *Field:
		return &Field{Rec: Substitute(n.Rec, name, repl), Name: n.Name}
	case *BinOp:
		return &BinOp{Op: n.Op, L: Substitute(n.L, name, repl), R: Substitute(n.R, name, repl)}
	case *UnOp:
		return &UnOp{Op: n.Op, E: Substitute(n.E, name, repl)}
	case *Call:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = Substitute(a, name, repl)
		}
		return &Call{Fn: n.Fn, Args: args}
	case *If:
		return &If{Cond: Substitute(n.Cond, name, repl), Then: Substitute(n.Then, name, repl), Else: Substitute(n.Else, name, repl)}
	case *RecordCtor:
		fields := make([]Expr, len(n.Fields))
		for i, f := range n.Fields {
			fields[i] = Substitute(f, name, repl)
		}
		return &RecordCtor{Names: n.Names, Fields: fields}
	case *ListCtor:
		elems := make([]Expr, len(n.Elems))
		for i, el := range n.Elems {
			elems[i] = Substitute(el, name, repl)
		}
		return &ListCtor{Elems: elems}
	case *Comprehension:
		return substituteComp(n, name, repl)
	case *Exists:
		return &Exists{C: substituteComp(n.C, name, repl)}
	default:
		return e
	}
}

func substituteComp(c *Comprehension, name string, repl Expr) *Comprehension {
	out := &Comprehension{M: c.M, Quals: make([]Qual, 0, len(c.Quals))}
	shadowed := false
	for _, q := range c.Quals {
		switch qq := q.(type) {
		case *Generator:
			src := qq.Source
			if !shadowed {
				src = Substitute(src, name, repl)
			}
			out.Quals = append(out.Quals, &Generator{Var: qq.Var, Source: src})
			if qq.Var == name {
				shadowed = true
			}
		case *Pred:
			cond := qq.Cond
			if !shadowed {
				cond = Substitute(cond, name, repl)
			}
			out.Quals = append(out.Quals, &Pred{Cond: cond})
		case *Let:
			e := qq.E
			if !shadowed {
				e = Substitute(e, name, repl)
			}
			out.Quals = append(out.Quals, &Let{Var: qq.Var, E: e})
			if qq.Var == name {
				shadowed = true
			}
		}
	}
	if shadowed {
		out.Head = c.Head
	} else {
		out.Head = Substitute(c.Head, name, repl)
	}
	return out
}
