// Package core ties CleanDB's three abstraction levels together — it is the
// architecture of the paper's Figure 2 as one driver:
//
//	CleanM text ──parse──▶ AST ──Monoid Rewriter──▶ comprehensions
//	  ──Monoid Optimizer (normalization)──▶ canonical comprehensions
//	  ──lowering──▶ nested relational algebra ──Plan Rewriter──▶ DAG
//	  ──physical lowering──▶ engine operators ──▶ scale-out execution
//
// Every level's artifact is retained on the Result for EXPLAIN output, and a
// query containing several cleaning operators is optimized as one task:
// common sub-plans (shared scans, coalesced groupings) execute once and the
// violation sets are combined with a full outer join.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"cleandb/internal/algebra"
	"cleandb/internal/cluster"
	"cleandb/internal/engine"
	"cleandb/internal/lang"
	"cleandb/internal/monoid"
	"cleandb/internal/physical"
	"cleandb/internal/sink"
	"cleandb/internal/types"
)

// Catalog resolves source names to datasets. Has must be cheap and must not
// materialize anything — the lowerer consults it for every unbound name;
// Lookup may trigger a (lazy, possibly parallel) load and is called only for
// the sources a statement actually references, at prepare time.
type Catalog interface {
	Has(name string) bool
	Lookup(name string) (*engine.Dataset, error)
}

// MapCatalog adapts a plain dataset map — the eager catalog shape — to the
// Catalog interface.
type MapCatalog map[string]*engine.Dataset

// Has implements Catalog.
func (m MapCatalog) Has(name string) bool { _, ok := m[name]; return ok }

// Lookup implements Catalog.
func (m MapCatalog) Lookup(name string) (*engine.Dataset, error) {
	d, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("core: source %q not in catalog", name)
	}
	return d, nil
}

// Pipeline executes CleanM queries against a catalog of datasets.
type Pipeline struct {
	Ctx     *engine.Context
	Catalog Catalog
	// Config selects the physical strategies; the zero value is CleanDB's
	// skew-aware defaults.
	Config physical.Config
	// Unified controls whether multiple cleaning operators are combined
	// into a single DAG with an outer join (CleanDB behaviour). When false
	// each operator runs standalone (the paper's baseline configuration).
	Unified bool
	// NoSharing disables cross-operator plan sharing while keeping the
	// combining outer join — the Spark SQL behaviour of §8.2, where unified
	// execution is more expensive than standalone because the optimizer
	// cannot coalesce the common grouping.
	NoSharing bool
	// Trace, when non-nil, receives one line per optimizer rewrite.
	Trace func(level, rule, detail string)
}

// NewPipeline returns a pipeline with CleanDB defaults (unified execution,
// skew-aware grouping, statistics-aware theta joins) over an eager dataset
// map. Lazy catalogs use NewPipelineCatalog.
func NewPipeline(ctx *engine.Context, catalog map[string]*engine.Dataset) *Pipeline {
	return NewPipelineCatalog(ctx, MapCatalog(catalog))
}

// NewPipelineCatalog returns a default pipeline over any Catalog
// implementation, such as a lazy-loading one.
func NewPipelineCatalog(ctx *engine.Context, catalog Catalog) *Pipeline {
	return &Pipeline{Ctx: ctx, Catalog: catalog, Unified: true}
}

// TaskResult is one cleaning operator's (or plain query's) outcome.
type TaskResult struct {
	Name string
	// Output holds the task's result records as a partitioned view. For
	// cleaning operators these are violation records; for plain queries,
	// projected rows. Nil (an empty Rowset) when the query ran unified —
	// per-task violations are folded into the combined records then.
	Output *Rowset
	// Plan is the optimized algebraic plan (shared nodes included).
	Plan algebra.Plan
	// Comp is the normalized comprehension.
	Comp monoid.Expr
	// Repair reports the REPAIR outcome of a denial task (nil otherwise):
	// the healed rows plus the relaxation loop's convergence statistics.
	Repair *RepairSummary
}

// ExecStats is the cost-counter snapshot of one executed query, measured on
// the query's own job context rather than read off the instance-wide
// accumulators — concurrent queries therefore never pollute each other's
// numbers.
type ExecStats struct {
	SimTicks        int64
	Comparisons     int64
	ShuffledRecords int64
	ShuffledBytes   int64
	// ExportedRows counts rows this execution pumped into a sink
	// (ExecuteToContext); zero for plain executions.
	ExportedRows int64
	// BatchesEvaluated counts column batches evaluated by vectorized
	// operators; zero means the query ran entirely on the row path.
	BatchesEvaluated int64
	// SimCacheHits / SimCacheMisses count memoized pair-similarity probes.
	SimCacheHits   int64
	SimCacheMisses int64
	// Strategies counts the physical strategies the executor chose, by name
	// (e.g. "join:mbucket", "nest:aggregate"); nil when none were recorded.
	Strategies map[string]int64
}

// Result is a completed CleanM query. Result rows are held as partitioned
// views (Rowset) handed straight off the engine — no execution ever builds a
// flattened merge copy unless a consumer asks for one.
type Result struct {
	Tasks []TaskResult
	// Combined holds the unified outer-join output (entities with at least
	// one violation) when the query had several cleaning operators and the
	// pipeline runs in unified mode.
	Combined *Rowset
	// Explanation renders all three levels for EXPLAIN.
	Explanation string
	// Stats holds the query's own cost counters.
	Stats ExecStats
	// workers is the job's cluster width, kept so post-hoc exports
	// (RepairedTo) fan out like the execution did.
	workers int
	// primaryDS is the engine dataset behind Primary(), kept so sinks that
	// understand column batches can drain the vectors directly instead of
	// boxed rows. Nil when the primary output is row-backed.
	primaryDS *engine.Dataset
	// canonKeys holds the canonical key of each primary-task output row, in
	// row order, when the task is a canonically-ordered DENIAL/DEDUP pair
	// task. A delta merge against this result reuses them to merge sorted
	// runs instead of re-serializing every cached row (see incr.go).
	canonKeys []string
}

// Primary returns the primary output view: the combined records when
// present, otherwise the first task's output. Never nil-dereferences — an
// empty query yields a nil Rowset, which behaves as empty.
func (r *Result) Primary() *Rowset {
	if r.Combined != nil {
		return r.Combined
	}
	if len(r.Tasks) > 0 {
		return r.Tasks[0].Output
	}
	return nil
}

// Rows returns the primary output as a flat slice (memoized; see
// Rowset.Rows).
func (r *Result) Rows() []types.Value { return r.Primary().Rows() }

// Run parses, optimizes and executes a CleanM query.
func (p *Pipeline) Run(query string) (*Result, error) {
	return p.RunContext(context.Background(), query, nil)
}

// RunContext parses, optimizes and executes a CleanM query under goctx with
// the given parameter bindings.
func (p *Pipeline) RunContext(goctx context.Context, query string, params map[string]types.Value) (*Result, error) {
	prep, err := p.Prepare(query)
	if err != nil {
		return nil, err
	}
	return prep.ExecuteContext(goctx, params)
}

// Prepared is a fully planned query, ready to execute (or explain). After
// Prepare returns, a Prepared is immutable: plans, normalized comprehensions
// and fitted blocker builtins are read-only, so one Prepared may be executed
// by any number of goroutines concurrently, each with its own parameter
// bindings — parsing, normalization and lowering ran exactly once.
type Prepared struct {
	pipeline *Pipeline
	tasks    []lang.Task
	norm     []monoid.Expr
	plans    []algebra.Plan
	combined algebra.Plan
	// builtins holds the blocking builtins fitted at prepare time (k-means
	// centers, tokenizers); fitting is part of compile-once.
	builtins map[string]monoid.Builtin
	// sources holds the datasets of every source the statement references,
	// resolved — and for lazy catalogs, loaded — at prepare time. Executions
	// read this immutable map, so a Prepared never touches the live catalog
	// again and concurrent Register calls cannot shift ground under it.
	sources map[string]*engine.Dataset
	explain string
	// params lists the statement's parameter binding keys (lang.Query.Params).
	params []string
}

// Prepare runs the front end and all three optimization levels without
// executing.
func (p *Pipeline) Prepare(query string) (*Prepared, error) {
	q, err := lang.Parse(query)
	if err != nil {
		return nil, err
	}
	var d lang.Desugarer
	tasks, err := d.Desugar(q)
	if err != nil {
		return nil, err
	}
	pr := &Prepared{
		pipeline: p,
		tasks:    tasks,
		params:   q.Params,
		builtins: map[string]monoid.Builtin{},
		sources:  map[string]*engine.Dataset{},
	}

	// Fit and register blocking builtins (k-means centers, tokenizers).
	for _, t := range tasks {
		for name, binding := range t.Blockers {
			if err := pr.fitBlocker(name, binding); err != nil {
				return nil, err
			}
		}
	}

	var explain strings.Builder

	// Level 1: monoid normalization.
	norm := monoid.NewNormalizer()
	if p.Trace != nil {
		norm.Trace = func(rule, detail string) { p.Trace("monoid", rule, detail) }
	}
	// The lowerer's source test doubles as the reference recorder: every name
	// it accepts is a source this statement scans, and exactly those get
	// resolved (loading lazy ones) once lowering is done.
	needed := map[string]bool{}
	lower := &algebra.Lowerer{IsSource: func(name string) bool {
		if name == algebra.UnitSource {
			return true
		}
		if p.Catalog.Has(name) {
			needed[name] = true
			return true
		}
		return false
	}}
	var roots []algebra.Plan
	for _, t := range tasks {
		ne := norm.Normalize(t.Comp)
		pr.norm = append(pr.norm, ne)
		fmt.Fprintf(&explain, "-- task %s: comprehension --\n%s\n", t.Name, ne)
		nc, ok := ne.(*monoid.Comprehension)
		if !ok {
			return nil, fmt.Errorf("core: task %s normalized to a non-comprehension (%T); cannot lower", t.Name, ne)
		}
		// Level 2: lowering to the nested relational algebra.
		plan, err := lower.Lower(nc)
		if err != nil {
			return nil, err
		}
		roots = append(roots, plan)
	}

	// Level 2 rewrites: share sub-plans across tasks; optionally combine.
	rw := &algebra.Rewriter{}
	if p.Trace != nil {
		rw.Trace = func(rule, detail string) { p.Trace("algebra", rule, detail) }
	}
	if p.Unified && len(tasks) > 1 {
		keys := make([]monoid.Expr, len(tasks))
		names := make([]string, len(tasks))
		for i, t := range tasks {
			keys[i] = t.EntityKey
			names[i] = t.Name
		}
		if p.NoSharing {
			pr.combined = rw.UnifiedUnshared(roots, keys, names)
		} else {
			pr.combined = rw.Unified(roots, keys, names)
		}
		pr.plans = pr.combined.(*algebra.CombineAll).Inputs
		fmt.Fprintf(&explain, "-- unified algebraic plan --\n%s", algebra.Explain(pr.combined))
	} else {
		// Standalone mode: each operation is optimized in isolation — no
		// cross-operator sharing (the baseline behaviour the paper compares
		// against in Figure 5).
		pr.plans = make([]algebra.Plan, len(roots))
		for i, root := range roots {
			pr.plans[i] = rw.Rewrite(root)
			fmt.Fprintf(&explain, "-- task %s: algebraic plan --\n%s", tasks[i].Name, algebra.Explain(pr.plans[i]))
		}
	}
	pr.explain = explain.String()

	// A REPAIR clause reads its source outside the plan executor; resolve
	// those too (when present — a missing repair source keeps erroring at
	// execute time, as before).
	for _, t := range tasks {
		if t.Denial != nil && t.Denial.RepairAttr != nil && p.Catalog.Has(t.Denial.Source) {
			needed[t.Denial.Source] = true
		}
	}
	// Resolve in sorted order, not map order: under a cluster session a cold
	// load is a barrier every member must reach, so all members must load a
	// query's pending sources in the same sequence or two members parked at
	// different sources deadlock until the exchange sweep evicts one.
	names := make([]string, 0, len(needed))
	for name := range needed {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ds, err := p.Catalog.Lookup(name)
		if err != nil {
			return nil, err
		}
		pr.sources[name] = ds
	}
	return pr, nil
}

// fitBlocker fits the blocking technique against the catalog and stores it
// as a compile-once builtin shared by every execution of this Prepared.
func (pr *Prepared) fitBlocker(name string, b lang.BlockerBinding) error {
	p := pr.pipeline
	var fitValues []string
	if b.FitSource != "" && strings.EqualFold(b.Spec.Op, "kmeans") {
		if !p.Catalog.Has(b.FitSource) {
			return fmt.Errorf("core: blocker fit source %q not in catalog", b.FitSource)
		}
		src, err := p.Catalog.Lookup(b.FitSource)
		if err != nil {
			return err
		}
		ce, err := monoid.NewCompiler().Compile(b.FitAttr, map[string]int{"$fit": 0})
		if err != nil {
			return err
		}
		// Sample up to ~4k fit values, deterministically.
		sample := src.Sample(int(src.Count()/4096) + 1)
		for _, v := range sample {
			out, err := ce([]types.Value{v})
			if err == nil && out.Kind() == types.KindString {
				fitValues = append(fitValues, out.Str())
			}
		}
	}
	blk, err := cluster.ParseBlocker(b.Spec.Op, b.Spec.Param, fitValues)
	if err != nil {
		return err
	}
	pr.builtins[name] = func(args []types.Value) (types.Value, error) {
		if len(args) != 1 {
			return types.Null(), fmt.Errorf("%s: want 1 arg, got %d", name, len(args))
		}
		keys := blk.Keys(args[0].Str())
		out := make([]types.Value, len(keys))
		for i, k := range keys {
			out[i] = types.String(k)
		}
		return types.ListOf(out), nil
	}
	return nil
}

// Explain returns the multi-level EXPLAIN text.
func (pr *Prepared) Explain() string { return pr.explain }

// Params lists the statement's parameter binding keys in appearance order:
// "$1", "$2", ... for positional placeholders, lowercased names for named
// ones.
func (pr *Prepared) Params() []string {
	out := make([]string, len(pr.params))
	copy(out, pr.params)
	return out
}

// Execute runs the prepared plans without cancellation or parameters.
func (pr *Prepared) Execute() (*Result, error) {
	return pr.ExecuteContext(context.Background(), nil)
}

// ExecuteContext runs the prepared plans under goctx with the given
// parameter bindings. Each call builds its own executor over the shared
// read-only plans and a per-query engine job context, so concurrent
// executions are independent: separate memoization, separate parameter
// bindings, separate cost counters (merged into the pipeline context's
// accumulators on completion), and per-query cancellation.
func (pr *Prepared) ExecuteContext(goctx context.Context, params map[string]types.Value) (*Result, error) {
	return pr.executeWith(goctx, params, nil)
}

// ExecuteToContext runs the prepared plans like ExecuteContext and then
// pumps the primary output straight into s — partition-parallel, under the
// same job context, so cancelling goctx aborts the export exactly as it
// aborts the operator loops, and nothing is buffered beyond the partitions
// in flight. The rows reach the sink without ever being flattened; the
// returned Result still carries the partition views, metrics (including
// Stats.ExportedRows) and repair summaries.
func (pr *Prepared) ExecuteToContext(goctx context.Context, params map[string]types.Value, s sink.Sink) (*Result, error) {
	if s == nil {
		return nil, fmt.Errorf("core: ExecuteToContext needs a sink")
	}
	return pr.executeWith(goctx, params, s)
}

func (pr *Prepared) executeWith(goctx context.Context, params map[string]types.Value, s sink.Sink) (*Result, error) {
	for _, k := range pr.params {
		if _, ok := params[k]; !ok {
			return nil, fmt.Errorf("core: parameter %s is not bound", (&monoid.Param{Key: k}).String())
		}
	}
	job := pr.pipeline.Ctx.Job(goctx)
	ex := physical.NewExecutor(job, pr.sources)
	ex.Config = pr.pipeline.Config
	for name, fn := range pr.builtins {
		ex.AddBuiltin(name, fn)
	}
	ex.SetParams(params)

	res, err := pr.execute(ex, job, params)
	var exported int64
	if err == nil && s != nil {
		handled := false
		if res.primaryDS != nil {
			if batches := res.primaryDS.Batches(); batches != nil {
				// Columnar export: the sink drains the vectors directly;
				// handled=false means the sink is row-only and we box below.
				exported, handled, err = sink.PumpBatches(goctx, s, batches)
			}
		}
		if err == nil && !handled {
			exported, err = sink.Pump(goctx, s, res.Primary().Partitions(), job.Workers)
		}
	}
	// Partial work from failed or cancelled queries still moved data; account
	// for it in the instance-wide accumulators either way.
	pr.pipeline.Ctx.Metrics().Merge(job.Metrics())
	if err != nil {
		return nil, err
	}
	m := job.Metrics()
	simHits, simMisses := m.SimCacheStats()
	res.Stats = ExecStats{
		SimTicks:         m.SimTicks(),
		Comparisons:      m.Comparisons(),
		ShuffledRecords:  m.ShuffledRecords(),
		ShuffledBytes:    m.ShuffledBytes(),
		ExportedRows:     exported,
		BatchesEvaluated: m.BatchesEvaluated(),
		SimCacheHits:     simHits,
		SimCacheMisses:   simMisses,
		Strategies:       m.Strategies(),
	}
	return res, nil
}

func (pr *Prepared) execute(ex *physical.Executor, job *engine.Context, params map[string]types.Value) (*Result, error) {
	res := &Result{Explanation: pr.explain, workers: job.Workers}
	if pr.combined != nil {
		d, err := ex.Exec(pr.combined)
		if err != nil {
			return nil, err
		}
		// Partition hand-off: the engine's partitions become the result view
		// directly — no merge copy.
		res.Combined = NewRowset(d.Partitions())
	}
	healed := map[string]*engine.Dataset{}
	for i, t := range pr.tasks {
		var out *Rowset
		if pr.combined == nil {
			d, err := ex.Exec(pr.plans[i])
			if err != nil {
				return nil, err
			}
			switch {
			case pr.canonicalPairTask():
				// Single DENIAL/DEDUP task: pin the pair rows to canonical
				// key order, the ordering contract that lets an incremental
				// merge over a cached view reproduce a cold run bit for bit
				// (see incr.go). Pair rows are row-backed, so flattening
				// here costs what the first consumer would have paid.
				rows := unwrapOut(d.Collect())
				res.canonKeys = sortRowsByKey(rows)
				out = NewRowset(partitionRows(rows, job.Workers))
			case d.Batches() != nil:
				// Columnar result: defer row boxing until a consumer asks.
				// Batch-capable sinks drain the vectors via primaryDS and
				// never trigger it.
				out = LazyRowset(int(d.Count()), func() [][]types.Value {
					return unwrapParts(d.Partitions())
				})
			default:
				out = NewRowset(unwrapParts(d.Partitions()))
			}
			if i == 0 && !pr.canonicalPairTask() {
				res.primaryDS = d
			}
		}
		tr := TaskResult{
			Name:   t.Name,
			Output: out,
			Plan:   pr.plans[i],
			Comp:   pr.norm[i],
		}
		// A denial task with REPAIR heals the source after detection: the
		// plan's violation pairs seed the relaxation loop, and successive
		// REPAIR clauses on the same source compose via the healed map.
		if t.Denial != nil && t.Denial.RepairAttr != nil {
			sum, err := pr.runRepair(ex, &pr.tasks[i], pr.plans[i], out.Rows(), healed, params)
			if err != nil {
				return nil, err
			}
			tr.Repair = sum
			healed[sum.Source] = engine.FromValues(job, sum.Rows)
		}
		res.Tasks = append(res.Tasks, tr)
	}
	if err := job.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// RepairedTo pumps the healed rows of the named source — the final state
// after every REPAIR clause on it — into s, partition-parallel under ctx. It
// returns the rows written, or an error when the query repaired nothing in
// that source.
func (r *Result) RepairedTo(ctx context.Context, source string, s sink.Sink) (int64, error) {
	var rows []types.Value
	found := false
	for _, sum := range r.Repairs() {
		if sum.Source == source {
			rows, found = sum.Rows, true
		}
	}
	if !found {
		return 0, fmt.Errorf("core: the query repaired nothing in source %q", source)
	}
	w := r.workers
	if w < 1 {
		w = 1
	}
	return sink.Pump(ctx, s, partitionRows(rows, w), w)
}

// Repairs lists the repair summaries of all tasks that requested one.
func (r *Result) Repairs() []*RepairSummary {
	var out []*RepairSummary
	for _, t := range r.Tasks {
		if t.Repair != nil {
			out = append(out, t.Repair)
		}
	}
	return out
}

// unwrapOut strips the {$out: v} environment wrapper from result records.
func unwrapOut(rows []types.Value) []types.Value {
	out := make([]types.Value, len(rows))
	for i, r := range rows {
		out[i] = unwrapRow(r)
	}
	return out
}

// unwrapRow strips the {$out: v} environment wrapper from one record.
func unwrapRow(r types.Value) types.Value {
	if isWrappedRow(r) {
		return r.Record().Fields[0]
	}
	return r
}

// isWrappedRow reports whether r is a {$out: v} environment record.
func isWrappedRow(r types.Value) bool {
	rec := r.Record()
	return rec != nil && len(rec.Fields) == 1 && rec.Schema.Names[0] == lang.OutVar
}

// unwrapParts is unwrapOut per partition: the partition structure is
// preserved, and partitions containing no wrapped rows are reused as-is
// rather than copied.
func unwrapParts(parts [][]types.Value) [][]types.Value {
	out := make([][]types.Value, len(parts))
	for i, p := range parts {
		out[i] = unwrapPart(p)
	}
	return out
}

func unwrapPart(rows []types.Value) []types.Value {
	for j, r := range rows {
		if isWrappedRow(r) {
			out := make([]types.Value, len(rows))
			copy(out, rows[:j])
			for k := j; k < len(rows); k++ {
				out[k] = unwrapRow(rows[k])
			}
			return out
		}
	}
	return rows
}
