package cleaning

import (
	"cleandb/internal/engine"
	"cleandb/internal/physical"
	"cleandb/internal/types"
)

// DCConfig parameterizes a general denial-constraint check with inequality
// predicates — the paper's rule ψ: ∀t1,t2 ¬(t1.price < t2.price ∧
// t1.discount > t2.discount ∧ t1.price < X).
type DCConfig struct {
	// LeftFilter, when non-nil, pre-filters the left side of the self-join
	// (the paper's 0.01%-selectivity price filter). CleanM's normalization
	// guarantees this filter is pushed below the join.
	LeftFilter func(types.Value) bool
	// Pred is the violation predicate over a candidate pair.
	Pred func(t1, t2 types.Value) bool
	// Band supplies the numeric attribute the theta join sorts and prunes
	// on (e.g. price), and the pruning direction.
	Band func(types.Value) float64
	// BandOp is the comparison between t1.Band and t2.Band implied by Pred
	// ("<" means pairs with t1.band >= t2.band max cannot match).
	BandOp string
	// Strategy selects the join algorithm.
	Strategy physical.ThetaStrategy
}

// DCCheck evaluates the denial constraint via a self theta join and returns
// the violating pairs. It returns engine.ErrBudgetExceeded when the selected
// strategy blows the context's comparison budget — how the experiments
// reproduce the paper's "fails to terminate" rows (Table 5).
func DCCheck(ds *engine.Dataset, cfg DCConfig) (*engine.Dataset, error) {
	left := ds
	if cfg.LeftFilter != nil {
		left = ds.Filter("dc:filter", cfg.LeftFilter)
	}
	combine := engine.PairCombine
	switch cfg.Strategy {
	case physical.ThetaCartesian:
		return left.CartesianFilter("dc", ds, cfg.Pred, combine)
	case physical.ThetaMinMax:
		overlap := func(lmin, lmax, rmin, rmax float64) bool {
			switch cfg.BandOp {
			case "<", "<=":
				return lmin <= rmax
			case ">", ">=":
				return lmax >= rmin
			default:
				return true
			}
		}
		return left.MinMaxBlockJoin("dc", ds, cfg.Band, cfg.Band, overlap, cfg.Pred, combine)
	default:
		stats := engine.ThetaJoinStats{SortKey: cfg.Band}
		switch cfg.BandOp {
		case "<", "<=":
			stats.Prune = func(lmin, _, _, rmax float64) bool { return lmin > rmax }
		case ">", ">=":
			stats.Prune = func(_, lmax, rmin, _ float64) bool { return lmax < rmin }
		}
		return left.ThetaJoin("dc", ds, stats, cfg.Pred, combine)
	}
}
