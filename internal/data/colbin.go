package data

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"cleandb/internal/types"
)

// colbin is CleanDB's binary columnar format — the repo's stand-in for
// Parquet (see DESIGN.md). Layout:
//
//	magic "CBN1"
//	uvarint ncols, then per column: name (uvarint len + bytes), type byte
//	uvarint nrows
//	per column: null bitmap (ceil(nrows/8) bytes) followed by the encoded
//	column chunk:
//	  int      — zigzag varints
//	  float    — 8-byte little-endian IEEE 754
//	  bool     — one byte per row
//	  string   — dictionary: uvarint dict size, entries (uvarint len+bytes),
//	             then one uvarint index per row
//	  list<string> — uvarint length per row, then the flattened entries
//	             encoded like a string column
//
// Dictionary encoding gives colbin the two properties the paper's
// experiments rely on: it is much smaller than CSV, and nested author lists
// stay nested instead of being flattened into repeated rows.
const colbinMagic = "CBN1"

// WriteColbin writes records (sharing one schema) in colbin format.
func WriteColbin(w io.Writer, rows []types.Value) error {
	if len(rows) == 0 {
		return WriteColbinHeader(w, nil, nil, 0)
	}
	rec := rows[0].Record()
	if rec == nil {
		return fmt.Errorf("data: colbin: rows must be records")
	}
	names := rec.Schema.Names
	colTypes := make([]ColType, len(names))
	for i := range names {
		colTypes[i] = ColbinTypeOf(rows, i)
	}
	if err := WriteColbinHeader(w, names, colTypes, len(rows)); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	for col := range names {
		if err := writeColumn(bw, rows, col, colTypes[col]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteColbinHeader writes the colbin preamble — magic, column names and
// types, row count — after which the column chunks follow in declaration
// order. Exported so a parallel encoder can emit independently encoded
// column chunks (EncodeColbinColumn) behind one header.
func WriteColbinHeader(w io.Writer, names []string, colTypes []ColType, nrows int) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(colbinMagic); err != nil {
		return err
	}
	writeUvarint(bw, uint64(len(names)))
	for i, n := range names {
		writeUvarint(bw, uint64(len(n)))
		bw.WriteString(n)
		bw.WriteByte(byte(colTypes[i]))
	}
	writeUvarint(bw, uint64(nrows))
	return bw.Flush()
}

// EncodeColbinColumn encodes column col of rows — null bitmap plus the typed
// chunk — into a standalone byte slice, exactly as WriteColbin lays it out.
// Columns are independent, so callers may encode them on parallel goroutines
// and concatenate the results after a WriteColbinHeader.
func EncodeColbinColumn(rows []types.Value, col int, t ColType) ([]byte, error) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := writeColumn(bw, rows, col, t); err != nil {
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ColbinTypeOf infers the colbin column type of column col across rows: the
// narrowest of int/float/bool that fits every non-null value, string when
// values mix, list<string> as soon as a list appears.
func ColbinTypeOf(rows []types.Value, col int) ColType {
	t := ColInt
	decided := false
	for _, row := range rows {
		v := row.Record().Fields[col]
		switch v.Kind() {
		case types.KindNull:
			continue
		case types.KindInt:
			if !decided {
				t = ColInt
				decided = true
			}
			if t == ColFloat || t == ColInt {
				continue
			}
			return ColString
		case types.KindFloat:
			if !decided || t == ColInt {
				t = ColFloat
				decided = true
				continue
			}
			if t == ColFloat {
				continue
			}
			return ColString
		case types.KindBool:
			if !decided {
				t = ColBool
				decided = true
				continue
			}
			if t != ColBool {
				return ColString
			}
		case types.KindString:
			if !decided {
				t = ColString
				decided = true
				continue
			}
			if t != ColString {
				return ColString
			}
		case types.KindList:
			return ColStringList
		default:
			return ColString
		}
	}
	if !decided {
		return ColString
	}
	return t
}

func writeColumn(bw *bufio.Writer, rows []types.Value, col int, t ColType) error {
	// Null bitmap.
	bitmap := make([]byte, (len(rows)+7)/8)
	for i, row := range rows {
		if row.Record().Fields[col].IsNull() {
			bitmap[i/8] |= 1 << (i % 8)
		}
	}
	if _, err := bw.Write(bitmap); err != nil {
		return err
	}
	switch t {
	case ColInt:
		for _, row := range rows {
			writeVarint(bw, row.Record().Fields[col].Int())
		}
	case ColFloat:
		var buf [8]byte
		for _, row := range rows {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(row.Record().Fields[col].Float()))
			bw.Write(buf[:])
		}
	case ColBool:
		for _, row := range rows {
			b := byte(0)
			if row.Record().Fields[col].Bool() {
				b = 1
			}
			bw.WriteByte(b)
		}
	case ColString:
		vals := make([]string, len(rows))
		for i, row := range rows {
			vals[i] = row.Record().Fields[col].String()
		}
		writeStringChunk(bw, vals)
	case ColStringList:
		var flat []string
		for _, row := range rows {
			f := row.Record().Fields[col]
			if f.Kind() == types.KindList {
				writeUvarint(bw, uint64(len(f.List())))
				for _, e := range f.List() {
					flat = append(flat, e.String())
				}
			} else if f.IsNull() {
				writeUvarint(bw, 0)
			} else {
				writeUvarint(bw, 1)
				flat = append(flat, f.String())
			}
		}
		writeStringChunk(bw, flat)
	}
	return nil
}

// writeStringChunk dictionary-encodes a string vector.
func writeStringChunk(bw *bufio.Writer, vals []string) {
	dict := map[string]uint64{}
	var entries []string
	for _, v := range vals {
		if _, ok := dict[v]; !ok {
			dict[v] = uint64(len(entries) + 1)
			entries = append(entries, v)
		}
	}
	writeUvarint(bw, uint64(len(entries)))
	for _, e := range entries {
		writeUvarint(bw, uint64(len(e)))
		bw.WriteString(e)
	}
	for _, v := range vals {
		writeUvarint(bw, dict[v])
	}
}

// ReadColbin reads a colbin stream back into record values.
func ReadColbin(r io.Reader) ([]types.Value, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("data: colbin: %w", err)
	}
	info, err := IndexColbin(buf)
	if err != nil {
		return nil, err
	}
	if info.Rows == 0 {
		return nil, nil
	}
	cols := make([][]types.Value, len(info.Names))
	for c := range cols {
		vals, err := info.DecodeColumn(c)
		if err != nil {
			return nil, err
		}
		cols[c] = vals
	}
	schema := types.NewSchema(info.Names...)
	out := make([]types.Value, info.Rows)
	for i := 0; i < info.Rows; i++ {
		fields := make([]types.Value, len(cols))
		for c := range cols {
			fields[c] = cols[c][i]
		}
		out[i] = types.NewRecord(schema, fields)
	}
	return out, nil
}

// ColbinInfo is an indexed colbin buffer: the decoded header plus the byte
// extent of every column chunk, located by a cheap skip-scan that allocates
// no values. Columns can then be decoded independently — and in parallel —
// with DecodeColumn.
type ColbinInfo struct {
	Names []string
	Types []ColType
	Rows  int
	// extents[c] holds column c's raw bytes: null bitmap + encoded chunk.
	extents [][]byte
}

// ColbinHeader parses only the header of a colbin buffer — column names,
// column types, row count — without touching the column chunks, so a
// bounded prefix of a large file is enough. This is what makes a pending
// colbin source's row count an O(header) stats hint.
func ColbinHeader(buf []byte) (names []string, colTypes []ColType, rows int64, err error) {
	cur := &byteCursor{buf: buf}
	names, colTypes, nrows, err := readColbinHeader(cur)
	if err != nil {
		return nil, nil, 0, err
	}
	return names, colTypes, int64(nrows), nil
}

// readColbinHeader consumes the header, leaving the cursor at the first
// column chunk.
func readColbinHeader(cur *byteCursor) (names []string, colTypes []ColType, nrows uint64, err error) {
	magic, err := cur.take(4)
	if err != nil {
		return nil, nil, 0, err
	}
	if string(magic) != colbinMagic {
		return nil, nil, 0, fmt.Errorf("data: colbin: bad magic %q", magic)
	}
	ncols, err := cur.uvarint()
	if err != nil {
		return nil, nil, 0, err
	}
	// Every column needs at least a 1-byte name length and a type byte, so a
	// count beyond the remaining bytes is corrupt; checking up front keeps
	// the allocations below proportional to the actual input.
	if ncols > uint64(cur.remaining())/2 {
		return nil, nil, 0, fmt.Errorf("data: colbin: column count %d exceeds input", ncols)
	}
	names = make([]string, ncols)
	colTypes = make([]ColType, ncols)
	for i := range names {
		n, err := cur.str()
		if err != nil {
			return nil, nil, 0, err
		}
		names[i] = n
		tb, err := cur.byte()
		if err != nil {
			return nil, nil, 0, err
		}
		colTypes[i] = ColType(tb)
	}
	nrows, err = cur.uvarint()
	if err != nil {
		return nil, nil, 0, err
	}
	return names, colTypes, nrows, nil
}

// IndexColbin reads the colbin header of buf and skip-scans the column
// chunks to find their byte extents.
func IndexColbin(buf []byte) (*ColbinInfo, error) {
	cur := &byteCursor{buf: buf}
	names, colTypes, nrows, err := readColbinHeader(cur)
	if err != nil {
		return nil, err
	}
	info := &ColbinInfo{Names: names, Types: colTypes}
	if len(names) == 0 || nrows == 0 {
		return info, nil
	}
	// Each column carries a ceil(nrows/8)-byte null bitmap, bounding the row
	// count by the bytes actually present.
	if nrows > uint64(cur.remaining())*8 {
		return nil, fmt.Errorf("data: colbin: row count %d exceeds input", nrows)
	}
	info.Rows = int(nrows)
	info.extents = make([][]byte, len(names))
	for c := range info.extents {
		start := cur.off
		if err := skipColumn(cur, info.Rows, info.Types[c]); err != nil {
			return nil, err
		}
		info.extents[c] = buf[start:cur.off]
	}
	return info, nil
}

// DecodeColumn decodes column c into one value per row.
func (info *ColbinInfo) DecodeColumn(c int) ([]types.Value, error) {
	cur := &byteCursor{buf: info.extents[c]}
	nrows := info.Rows
	bitmap, err := cur.take((nrows + 7) / 8)
	if err != nil {
		return nil, err
	}
	isNull := func(i int) bool { return bitmap[i/8]&(1<<(i%8)) != 0 }
	out := make([]types.Value, nrows)
	switch info.Types[c] {
	case ColInt:
		for i := 0; i < nrows; i++ {
			n, err := cur.varint()
			if err != nil {
				return nil, err
			}
			if isNull(i) {
				out[i] = types.Null()
			} else {
				out[i] = types.Int(n)
			}
		}
	case ColFloat:
		for i := 0; i < nrows; i++ {
			b, err := cur.take(8)
			if err != nil {
				return nil, err
			}
			if isNull(i) {
				out[i] = types.Null()
			} else {
				out[i] = types.Float(math.Float64frombits(binary.LittleEndian.Uint64(b)))
			}
		}
	case ColBool:
		for i := 0; i < nrows; i++ {
			b, err := cur.byte()
			if err != nil {
				return nil, err
			}
			if isNull(i) {
				out[i] = types.Null()
			} else {
				out[i] = types.Bool(b != 0)
			}
		}
	case ColString:
		vals, err := decodeStringChunk(cur, nrows)
		if err != nil {
			return nil, err
		}
		for i := 0; i < nrows; i++ {
			if isNull(i) {
				out[i] = types.Null()
			} else {
				out[i] = types.String(vals[i])
			}
		}
	case ColStringList:
		lengths := make([]int, nrows)
		total := 0
		for i := 0; i < nrows; i++ {
			n, err := cur.uvarint()
			if err != nil {
				return nil, err
			}
			// Every flat entry costs at least one dictionary-index byte.
			if n > uint64(cur.remaining()) || total+int(n) > cur.remaining() {
				return nil, fmt.Errorf("data: colbin: list lengths exceed input")
			}
			lengths[i] = int(n)
			total += int(n)
		}
		flat, err := decodeStringChunk(cur, total)
		if err != nil {
			return nil, err
		}
		pos := 0
		for i := 0; i < nrows; i++ {
			if isNull(i) {
				out[i] = types.Null()
				pos += lengths[i]
				continue
			}
			elems := make([]types.Value, lengths[i])
			for j := 0; j < lengths[i]; j++ {
				elems[j] = types.String(flat[pos])
				pos++
			}
			out[i] = types.ListOf(elems)
		}
	default:
		return nil, fmt.Errorf("data: colbin: unknown column type %d", info.Types[c])
	}
	return out, nil
}

// skipColumn advances the cursor past one column chunk without decoding any
// values, so IndexColbin can hand each column's extent to a parallel decoder.
func skipColumn(cur *byteCursor, nrows int, t ColType) error {
	if _, err := cur.take((nrows + 7) / 8); err != nil {
		return err
	}
	switch t {
	case ColInt:
		for i := 0; i < nrows; i++ {
			if _, err := cur.varint(); err != nil {
				return err
			}
		}
	case ColFloat:
		if _, err := cur.take(8 * nrows); err != nil {
			return err
		}
	case ColBool:
		if _, err := cur.take(nrows); err != nil {
			return err
		}
	case ColString:
		return skipStringChunk(cur, nrows)
	case ColStringList:
		total := 0
		for i := 0; i < nrows; i++ {
			n, err := cur.uvarint()
			if err != nil {
				return err
			}
			if n > uint64(cur.remaining()) || total+int(n) > cur.remaining() {
				return fmt.Errorf("data: colbin: list lengths exceed input")
			}
			total += int(n)
		}
		return skipStringChunk(cur, total)
	default:
		return fmt.Errorf("data: colbin: unknown column type %d", t)
	}
	return nil
}

func skipStringChunk(cur *byteCursor, n int) error {
	dictSize, err := cur.uvarint()
	if err != nil {
		return err
	}
	// Each dictionary entry costs at least its 1-byte length prefix.
	if dictSize > uint64(cur.remaining()) {
		return fmt.Errorf("data: colbin: dictionary size %d exceeds input", dictSize)
	}
	for i := uint64(0); i < dictSize; i++ {
		l, err := cur.uvarint()
		if err != nil {
			return err
		}
		if _, err := cur.take(int(l)); err != nil {
			return err
		}
	}
	for i := 0; i < n; i++ {
		if _, err := cur.uvarint(); err != nil {
			return err
		}
	}
	return nil
}

func decodeStringChunk(cur *byteCursor, n int) ([]string, error) {
	dictSize, err := cur.uvarint()
	if err != nil {
		return nil, err
	}
	if dictSize > uint64(cur.remaining()) {
		return nil, fmt.Errorf("data: colbin: dictionary size %d exceeds input", dictSize)
	}
	dict := make([]string, dictSize)
	for i := range dict {
		s, err := cur.str()
		if err != nil {
			return nil, err
		}
		dict[i] = s
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		idx, err := cur.uvarint()
		if err != nil {
			return nil, err
		}
		if idx == 0 || idx > uint64(len(dict)) {
			out[i] = ""
		} else {
			out[i] = dict[idx-1]
		}
	}
	return out, nil
}

// byteCursor walks a byte buffer with bounds-checked reads, so corrupt
// headers can never trigger allocations larger than the input itself.
type byteCursor struct {
	buf []byte
	off int
}

func (c *byteCursor) remaining() int { return len(c.buf) - c.off }

func (c *byteCursor) take(n int) ([]byte, error) {
	if n < 0 || n > c.remaining() {
		return nil, fmt.Errorf("data: colbin: truncated input (want %d bytes, have %d)", n, c.remaining())
	}
	b := c.buf[c.off : c.off+n]
	c.off += n
	return b, nil
}

func (c *byteCursor) byte() (byte, error) {
	if c.remaining() < 1 {
		return 0, fmt.Errorf("data: colbin: truncated input")
	}
	b := c.buf[c.off]
	c.off++
	return b, nil
}

func (c *byteCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.buf[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("data: colbin: bad uvarint")
	}
	c.off += n
	return v, nil
}

func (c *byteCursor) varint() (int64, error) {
	v, n := binary.Varint(c.buf[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("data: colbin: bad varint")
	}
	c.off += n
	return v, nil
}

func (c *byteCursor) str() (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	b, err := c.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func writeUvarint(bw *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	bw.Write(buf[:n])
}

func writeVarint(bw *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	bw.Write(buf[:n])
}
