// Tests for the streaming result surface: Iter cursors, count-only
// accessors, ExecuteTo pumping into sinks, sink round trips through the
// source catalog, cancellation, and the widened parameter bindings.
package cleandb

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"cleandb/internal/types"
)

// exportDB builds a DB with a deterministic "events" source whose values
// survive every text format: ints, fractional floats, non-numeric strings
// and nulls, under a schema whose field names are already sorted (the JSON
// reader canonicalizes field order).
func exportDB(t testing.TB, n int) (*DB, []Value) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	schema := NewSchema("id", "score", "user")
	rows := make([]Value, n)
	for i := range rows {
		fields := []Value{
			Int(int64(i)),
			Float(float64(rng.Intn(500)) + 0.25),
			String(fmt.Sprintf("user-%c%03d", 'a'+byte(rng.Intn(26)), rng.Intn(1000))),
		}
		if rng.Intn(9) == 0 {
			fields[1] = Null()
		}
		rows[i] = NewRecord(schema, fields)
	}
	db := Open(WithWorkers(4))
	db.RegisterRows("events", rows)
	return db, rows
}

// TestExecuteToRoundTrip is the full-loop property: query → sink file →
// RegisterFile → re-query must reproduce the original result rows, for all
// three sink file formats.
func TestExecuteToRoundTrip(t *testing.T) {
	db, _ := exportDB(t, 300)
	base, err := db.Query(`SELECT * FROM events e`)
	if err != nil {
		t.Fatal(err)
	}
	want := base.Rows()
	if len(want) != 300 {
		t.Fatalf("base rows = %d", len(want))
	}
	dir := t.TempDir()
	for _, ext := range []string{".csv", ".jsonl", ".colbin"} {
		path := filepath.Join(dir, "events"+ext)
		snk, err := SinkFromPath(path)
		if err != nil {
			t.Fatal(err)
		}
		res, err := db.ExecuteTo(context.Background(), `SELECT * FROM events e`, snk)
		if err != nil {
			t.Fatalf("%s: ExecuteTo: %v", ext, err)
		}
		if got := res.Metrics().ExportedRows; got != int64(len(want)) {
			t.Fatalf("%s: ExportedRows = %d, want %d", ext, got, len(want))
		}
		if res.RowCount() != len(want) {
			t.Fatalf("%s: RowCount = %d, want %d", ext, res.RowCount(), len(want))
		}
		if err := db.RegisterFile("back"+ext[1:], path); err != nil {
			t.Fatal(err)
		}
		again, err := db.Query(fmt.Sprintf(`SELECT * FROM back%s b`, ext[1:]))
		if err != nil {
			t.Fatalf("%s: re-query: %v", ext, err)
		}
		got := again.Rows()
		if len(got) != len(want) {
			t.Fatalf("%s: round trip %d rows, want %d", ext, len(got), len(want))
		}
		for i := range want {
			if !types.Equal(got[i], want[i]) {
				t.Fatalf("%s row %d: %v != %v", ext, i, got[i], want[i])
			}
		}
	}
}

// TestExecuteToMemSink checks the in-memory sink receives exactly the
// result rows, and that the Result returned by ExecuteTo still answers.
func TestExecuteToMemSink(t *testing.T) {
	db, _ := exportDB(t, 120)
	m := NewMemSink()
	res, err := db.ExecuteTo(context.Background(), `SELECT e.user FROM events e WHERE e.id < ?`, m, int64(50))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Rows()); got != 50 {
		t.Fatalf("mem sink rows = %d, want 50", got)
	}
	for i, r := range res.Rows() {
		if !types.Equal(m.Rows()[i], r) {
			t.Fatalf("row %d: sink %v != result %v", i, m.Rows()[i], r)
		}
	}
	if got := m.Schema(); len(got) != 1 || got[0] != "user" {
		t.Fatalf("sink schema = %v", got)
	}
}

func TestStmtExecuteTo(t *testing.T) {
	db, _ := exportDB(t, 80)
	stmt, err := db.PrepareStmt(`SELECT e.id FROM events e WHERE e.id < :cut`)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int64{10, 30} {
		m := NewMemSink()
		res, err := stmt.ExecuteTo(context.Background(), m, Named("cut", cut))
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Metrics().ExportedRows; got != cut {
			t.Fatalf("cut %d: ExportedRows = %d", cut, got)
		}
		if !res.Metrics().PlanCacheHit {
			t.Fatal("Stmt executions reuse the prepared plan by construction")
		}
		if got := len(m.Rows()); got != int(cut) {
			t.Fatalf("cut %d: sink rows = %d", cut, got)
		}
	}
}

// blockingSink delays every partition write until released, so a test can
// park an export mid-stream and cancel it.
type blockingSink struct {
	mu      sync.Mutex
	started chan struct{} // closed once the first WritePartition begins
	once    sync.Once
	release chan struct{}
	wrote   int
}

func newBlockingSink() *blockingSink {
	return &blockingSink{started: make(chan struct{}), release: make(chan struct{})}
}

func (s *blockingSink) Open([]string) error { return nil }

func (s *blockingSink) WritePartition(int, []types.Value) error {
	s.once.Do(func() { close(s.started) })
	<-s.release
	s.mu.Lock()
	s.wrote++
	s.mu.Unlock()
	return nil
}

func (s *blockingSink) Close() error { return nil }

// TestExecuteToCancelMidStream cancels an export while sink writes are in
// flight: ExecuteTo must return ctx.Err() promptly once the in-flight
// writes drain, must not start the remaining partitions, and must leak no
// goroutines.
func TestExecuteToCancelMidStream(t *testing.T) {
	db, _ := exportDB(t, 400)
	before := runtime.NumGoroutine()

	snk := newBlockingSink()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := db.ExecuteTo(ctx, `SELECT * FROM events e`, snk)
		done <- err
	}()
	<-snk.started // the pump is mid-partition now
	cancel()
	close(snk.release) // let the in-flight writes drain

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled export did not return")
	}
	// With 4 workers at most 4 partition writes were in flight when the
	// cancellation landed; no further partitions may start afterwards.
	snk.mu.Lock()
	wrote := snk.wrote
	snk.mu.Unlock()
	if wrote > 4 {
		t.Fatalf("%d partitions written after mid-stream cancel (workers = 4)", wrote)
	}

	deadline := time.Now().Add(3 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before %d, after %d", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestExecuteToEmptyResult(t *testing.T) {
	db, _ := exportDB(t, 40)
	m := NewMemSink()
	res, err := db.ExecuteTo(context.Background(), `SELECT * FROM events e WHERE e.id < 0`, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics().ExportedRows != 0 || len(m.Rows()) != 0 {
		t.Fatalf("empty result exported %d/%d rows", res.Metrics().ExportedRows, len(m.Rows()))
	}
}

func TestRepairedToMatchesRepairedRows(t *testing.T) {
	schema := NewSchema("id", "ship", "receipt")
	rows := make([]Value, 0, 60)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		ship := int64(rng.Intn(50))
		rows = append(rows, NewRecord(schema, []Value{
			Int(int64(i)), Int(ship), Int(ship + int64(rng.Intn(20)) - 5),
		}))
	}
	db := Open(WithWorkers(4))
	db.RegisterRows("orders", rows)
	res, err := db.Query(`SELECT * FROM orders o
DENIAL(t2, o.ship > t2.ship and o.receipt < t2.receipt) REPAIR(o.receipt)`)
	if err != nil {
		t.Fatal(err)
	}
	healed := res.RepairedRows("orders")
	if len(healed) != len(rows) {
		t.Fatalf("repaired rows = %d, want %d", len(healed), len(rows))
	}
	m := NewMemSink()
	n, err := res.RepairedTo(context.Background(), "orders", m)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(healed)) {
		t.Fatalf("RepairedTo wrote %d rows, want %d", n, len(healed))
	}
	for i := range healed {
		if !types.Equal(m.Rows()[i], healed[i]) {
			t.Fatalf("row %d: %v != %v", i, m.Rows()[i], healed[i])
		}
	}
	if _, err := res.RepairedTo(context.Background(), "nope", NewMemSink()); err == nil {
		t.Fatal("RepairedTo on an unrepaired source should error")
	}
}

func TestIterEarlyBreak(t *testing.T) {
	db, _ := exportDB(t, 100)
	res, err := db.Query(`SELECT * FROM events e`)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, err := range res.Iter() {
		if err != nil {
			t.Fatal(err)
		}
		seen++
		if seen == 7 {
			break
		}
	}
	if seen != 7 {
		t.Fatalf("broke after %d rows, want 7", seen)
	}
	if res.RowCount() != 100 {
		t.Fatalf("RowCount = %d after early break", res.RowCount())
	}
}

func TestTaskRowCount(t *testing.T) {
	db, _ := exportDB(t, 50)
	res, err := db.Query(`SELECT * FROM events e FD(e.user, e.score)`)
	if err != nil {
		t.Fatal(err)
	}
	n, ok := res.TaskRowCount("fd1")
	if !ok {
		t.Fatal("fd1 task should exist")
	}
	if got := len(res.TaskRows("fd1")); got != n {
		t.Fatalf("TaskRowCount %d != len(TaskRows) %d", n, got)
	}
	if _, ok := res.TaskRowCount("nope"); ok {
		t.Fatal("unknown task should report ok=false")
	}
}

// TestWidenedBindings locks the toValue satellite: unsigned integers bind
// as ints (overflow-checked) and time.Time binds as its RFC 3339 string.
func TestWidenedBindings(t *testing.T) {
	db, _ := exportDB(t, 30)
	for _, arg := range []any{uint(7), uint32(7), uint64(7)} {
		res, err := db.Query(`SELECT e.id FROM events e WHERE e.id = ?`, arg)
		if err != nil {
			t.Fatalf("%T: %v", arg, err)
		}
		if res.RowCount() != 1 {
			t.Fatalf("%T: rows = %d, want 1", arg, res.RowCount())
		}
	}
	for _, arg := range []any{uint64(math.MaxUint64), uint(math.MaxUint64)} {
		if _, err := db.Query(`SELECT e.id FROM events e WHERE e.id = ?`, arg); err == nil {
			t.Fatalf("%T overflow should be rejected", arg)
		}
	}

	schema := NewSchema("at", "id")
	db.RegisterRows("stamps", []Value{
		NewRecord(schema, []Value{String("2017-08-28T10:30:00Z"), Int(1)}),
		NewRecord(schema, []Value{String("2017-08-28T10:30:00.5Z"), Int(2)}),
		NewRecord(schema, []Value{String("2020-01-01T00:00:00Z"), Int(3)}),
	})
	for stamp, wantID := range map[time.Time]int64{
		time.Date(2017, 8, 28, 10, 30, 0, 0, time.UTC):           1,
		time.Date(2017, 8, 28, 10, 30, 0, 500_000_000, time.UTC): 2,
	} {
		res, err := db.Query(`SELECT s.id FROM stamps s WHERE s.at = ?`, stamp)
		if err != nil {
			t.Fatal(err)
		}
		if res.RowCount() != 1 || res.Rows()[0].Record().Fields[0].Int() != wantID {
			t.Fatalf("time.Time %v matched %v, want id %d", stamp, res.Rows(), wantID)
		}
	}
}
