package experiments

import (
	"fmt"
	"time"

	"cleandb/internal/cleaning"
	"cleandb/internal/cluster"
	"cleandb/internal/core"
	"cleandb/internal/datagen"
	"cleandb/internal/engine"
	"cleandb/internal/monoid"
	"cleandb/internal/physical"
	"cleandb/internal/textsim"
	"cleandb/internal/types"
)

// Ablations isolate the design choices DESIGN.md calls out; each compares
// CleanDB's choice against the alternatives on the same workload.

// AblationSkewShuffle compares the three grouping shuffles on a Zipf-skewed
// key distribution (the paper's §6 "handling data skew" rationale).
func AblationSkewShuffle(s Scale) *Table {
	t := &Table{
		ID:      "Ablation A1",
		Title:   "Grouping shuffle strategies under Zipf key skew",
		Columns: []string{"Strategy", "Ticks", "Shuffled", "MaxWorker"},
	}
	// Zipf-skewed keys.
	rows := make([]types.Value, s.Customers*4)
	schema := types.NewSchema("key", "val")
	rng := newXorshift(uint64(s.Seed) | 1)
	for i := range rows {
		// Heavy-tailed key: key 0 is very popular.
		k := int64(0)
		for r := rng.next(); r&1 == 0 && k < 40; r >>= 1 {
			k++
		}
		rows[i] = types.NewRecord(schema, []types.Value{types.Int(k), types.Int(int64(i))})
	}
	agg := countAgg{}
	key := func(v types.Value) types.Value { return v.Field("key") }
	run := func(name string, f func(*engine.Dataset) *engine.Dataset) {
		ctx := engine.NewContext(s.Workers)
		ds := engine.FromValues(ctx, rows)
		f(ds).Count()
		m := ctx.Metrics()
		t.AddRow(name, ticks(m.SimTicks()), fmt.Sprintf("%d", m.ShuffledRecords()), ticks(m.MaxStageCost()))
	}
	run("aggregateByKey (CleanDB)", func(ds *engine.Dataset) *engine.Dataset {
		return ds.AggregateByKey("a1", key, agg)
	})
	run("sort shuffle (SparkSQL)", func(ds *engine.Dataset) *engine.Dataset {
		return ds.SortShuffleGroup("a1", key, agg)
	})
	run("hash shuffle (BigDansing)", func(ds *engine.Dataset) *engine.Dataset {
		return ds.HashShuffleGroup("a1", key, agg)
	})
	t.Note("expected: aggregateByKey shuffles orders of magnitude fewer records and has the lowest straggler cost")
	return t
}

// AblationThetaJoin compares the theta-join strategies on rule ψ's shape.
func AblationThetaJoin(s Scale) *Table {
	t := &Table{
		ID:      "Ablation A2",
		Title:   "Theta-join strategies (band inequality self-join)",
		Columns: []string{"Strategy", "Result", "Comparisons", "Ticks"},
	}
	rows := genLineitemSF(s, 15)
	threshold := priceQuantile(rows, 0.001)
	pred := func(a, b types.Value) bool {
		return a.Field("extendedprice").Float() < b.Field("extendedprice").Float() &&
			a.Field("discount").Float() > b.Field("discount").Float() &&
			a.Field("extendedprice").Float() < threshold
	}
	band := func(v types.Value) float64 { return v.Field("extendedprice").Float() }
	run := func(name string, strategy physical.ThetaStrategy, filtered bool) {
		ctx := engine.NewContext(s.Workers)
		ctx.CompBudget = s.CompBudget
		ds := engine.FromValues(ctx, rows)
		cfg := cleaning.DCConfig{Pred: pred, Band: band, BandOp: "<", Strategy: strategy}
		if filtered {
			cfg.LeftFilter = func(v types.Value) bool { return v.Field("extendedprice").Float() < threshold }
		}
		_, err := cleaning.DCCheck(ds, cfg)
		result := "ok"
		if err != nil {
			result = DNF
		}
		m := ctx.Metrics()
		t.AddRow(name, result, fmt.Sprintf("%d", m.Comparisons()), ticks(m.SimTicks()))
	}
	run("M-Bucket + filter pushdown (CleanDB)", physical.ThetaMBucket, true)
	run("M-Bucket, no pushdown", physical.ThetaMBucket, false)
	run("cartesian + filter (SparkSQL)", physical.ThetaCartesian, false)
	run("min/max blocks (BigDansing)", physical.ThetaMinMax, false)
	t.Note("expected: only the pushed-down M-Bucket plan stays within budget")
	return t
}

// AblationNestCoalescing measures the paper's Figure-1 rewrite: three
// cleaning operators sharing one grouping versus disabling unified
// optimization.
func AblationNestCoalescing(s Scale) *Table {
	t := &Table{
		ID:      "Ablation A3",
		Title:   "Nest coalescing + shared scan (unified vs standalone execution)",
		Columns: []string{"Mode", "Ticks", "Shuffled"},
	}
	cust := datagen.GenCustomer(datagen.CustomerConfig{
		Rows: s.Customers, DupRate: 0.10, MaxDups: 50, Seed: s.Seed,
	})
	run := func(name string, unified bool) {
		ctx := engine.NewContext(s.Workers)
		p := core.NewPipeline(ctx, map[string]*engine.Dataset{
			"customer": engine.FromValues(ctx, cust.Rows),
		})
		p.Unified = unified
		if _, err := p.Run(fig5All); err != nil {
			panic(err)
		}
		m := ctx.Metrics()
		t.AddRow(name, ticks(m.SimTicks()), fmt.Sprintf("%d", m.ShuffledRecords()))
	}
	run("unified (coalesced nest, shared scan)", true)
	run("standalone (three independent plans)", false)
	t.Note("expected: unified execution groups once instead of three times")
	return t
}

// AblationNormalization measures the monoid-level normalizer: an FD query
// whose filter can be pushed below the grouping, with and without
// normalization-driven pushdown.
func AblationNormalization(s Scale) *Table {
	t := &Table{
		ID:      "Ablation A4",
		Title:   "Monoid-level normalization (filter pushdown through grouping subquery)",
		Columns: []string{"Plan", "Ticks", "RecordsGrouped"},
	}
	rows := genLineitemSF(s, 15)
	// FD over a slice of the data: WHERE discount > 0.05.
	runWhere := func(name string, prefilter bool) {
		ctx := engine.NewContext(s.Workers)
		ds := engine.FromValues(ctx, rows)
		input := ds
		if prefilter {
			input = ds.Filter("where", func(v types.Value) bool {
				return v.Field("discount").Float() > 0.05
			})
		}
		out := cleaning.FDCheck(input, ruleφLHS, ruleφRHS, physical.GroupAggregate)
		if !prefilter {
			// Post-filter violations instead (what an unnormalized plan
			// that groups everything first must do).
			out = out.Filter("post", func(v types.Value) bool { return true })
		}
		out.Count()
		t.AddRow(name, ticks(ctx.Metrics().SimTicks()), fmt.Sprintf("%d", input.Count()))
	}
	runWhere("normalized (filter before grouping)", true)
	runWhere("naive (group everything)", false)
	t.Note("expected: pushdown groups ~half the records")
	return t
}

// AblationBlocking compares comparison counts for dedup with and without
// blocking (the §4.2 'pruning comparisons' motivation).
func AblationBlocking(s Scale) *Table {
	t := &Table{
		ID:      "Ablation A5",
		Title:   "Blocking techniques for deduplication (pruned comparisons)",
		Columns: []string{"Blocking", "Comparisons", "PairsFound", "Ticks"},
	}
	corpus := datagen.GenDBLP(datagen.DBLPConfig{
		Pubs: s.DBLPDedupPubs / 2, AuthorPool: s.AuthorPool, NoiseRate: 0.05,
		EditRate: 0.15, DupRate: 0.10, Seed: s.Seed,
	})
	titleOf := func(v types.Value) string { return v.Field("title").Str() }
	run := func(name string, blocker cluster.Blocker, blockAttr func(types.Value) string) {
		ctx := engine.NewContext(s.Workers)
		ds := engine.FromValues(ctx, corpus.Pubs)
		found := cleaning.Dedup(ds, cleaning.DedupConfig{
			Blocker:   blocker,
			BlockAttr: blockAttr,
			SimAttr:   dblpSimAttr,
			Metric:    textsim.MetricLevenshtein,
			Theta:     0.8,
		}).Count()
		m := ctx.Metrics()
		t.AddRow(name, fmt.Sprintf("%d", m.Comparisons()), fmt.Sprintf("%d", found), ticks(m.SimTicks()))
	}
	all := func(v types.Value) string { return "all" }
	run("none (single block)", cluster.Exact{}, all)
	run("token filtering q=3 (title)", cluster.TokenFilter{Q: 3}, titleOf)
	run("length filter w=4 (title)", cluster.LengthFilter{Width: 4}, titleOf)
	dictTitles := make([]string, 0, len(corpus.Pubs))
	for _, p := range corpus.Pubs {
		dictTitles = append(dictTitles, titleOf(p))
	}
	run("k-means k=10 (title)", cluster.KMeans{
		Centers: cluster.SelectCentersFixedStep(dictTitles, 10),
		Metric:  textsim.MetricLevenshtein,
	}, titleOf)
	run("exact (journal,title)", nil, dblpBlockAttr)
	t.Note("all techniques find the same pairs; clustering and exact blocking prune orders of magnitude")
	t.Note("token filtering on long repetitive titles explodes — the paper's §4.3 point that tf suits short strings")
	return t
}

// AblationNormalizationRules demonstrates the normalizer's rewrites on the
// running example's comprehension, counting applied rules.
func AblationNormalizationRules() *Table {
	t := &Table{
		ID:      "Ablation A6",
		Title:   "Monoid normalizer rewrites on a nested comprehension",
		Columns: []string{"Rule", "Fired"},
	}
	counts := map[string]int{}
	n := monoid.NewNormalizer()
	n.Trace = func(rule, _ string) { counts[rule]++ }
	// bag{ x+y | x ← bag{ a*2 | a ← src, a > 1 }, y ← if true then [1] else [2], y > 0 }
	comp := &monoid.Comprehension{
		M:    monoid.Bag,
		Head: &monoid.BinOp{Op: "+", L: monoid.V("x"), R: monoid.V("y")},
		Quals: []monoid.Qual{
			&monoid.Generator{Var: "x", Source: &monoid.Comprehension{
				M:    monoid.Bag,
				Head: &monoid.BinOp{Op: "*", L: monoid.V("a"), R: monoid.CInt(2)},
				Quals: []monoid.Qual{
					&monoid.Generator{Var: "a", Source: monoid.V("src")},
					&monoid.Pred{Cond: monoid.Gt(monoid.V("a"), monoid.CInt(1))},
				},
			}},
			&monoid.Generator{Var: "y", Source: &monoid.If{
				Cond: monoid.CBool(true),
				Then: &monoid.ListCtor{Elems: []monoid.Expr{monoid.CInt(1)}},
				Else: &monoid.ListCtor{Elems: []monoid.Expr{monoid.CInt(2)}},
			}},
			&monoid.Pred{Cond: monoid.Gt(monoid.V("y"), monoid.CInt(0))},
		},
	}
	start := time.Now()
	n.Normalize(comp)
	_ = start
	for _, rule := range []string{"unnest", "beta-reduce", "if-const", "singleton-generator", "filter-pushdown", "true-filter"} {
		t.AddRow(rule, fmt.Sprintf("%d", counts[rule]))
	}
	return t
}

// countAgg counts group members with O(1) accumulators, so map-side
// combining genuinely shrinks the shuffle (unlike group-collecting
// aggregators, whose partial aggregates carry the members).
type countAgg struct{}

func (countAgg) Zero() interface{} { return int64(0) }
func (countAgg) Add(acc interface{}, _ types.Value) interface{} {
	return acc.(int64) + 1
}
func (countAgg) Merge(a, b interface{}) interface{} { return a.(int64) + b.(int64) }
func (countAgg) Result(key types.Value, acc interface{}) types.Value {
	return types.NewRecord(countSchema, []types.Value{key, types.Int(acc.(int64))})
}
func (countAgg) AccSize(interface{}) int64 { return 1 }

var countSchema = types.NewSchema("key", "count")

// xorshift is a tiny deterministic PRNG for ablation data.
type xorshift struct{ state uint64 }

func newXorshift(seed uint64) *xorshift { return &xorshift{state: seed | 1} }

func (x *xorshift) next() uint64 {
	x.state ^= x.state << 13
	x.state ^= x.state >> 7
	x.state ^= x.state << 17
	return x.state
}
