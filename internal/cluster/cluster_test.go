package cluster

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"cleandb/internal/monoid"
	"cleandb/internal/textsim"
	"cleandb/internal/types"
)

func randName(rng *rand.Rand) string {
	const letters = "abcdef"
	n := 3 + rng.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}

func TestTokenFilterKeys(t *testing.T) {
	tf := TokenFilter{Q: 2}
	keys := tf.Keys("abc")
	sort.Strings(keys)
	if strings.Join(keys, ",") != "ab,bc" {
		t.Fatalf("keys = %v", keys)
	}
	if k := tf.Keys("a"); len(k) != 1 || k[0] != "a" {
		t.Fatalf("short string keys = %v", k)
	}
	if tf.Name() != "tf(q=2)" {
		t.Fatalf("name = %s", tf.Name())
	}
}

func TestTokenFilterSharedTokenGuarantee(t *testing.T) {
	// Two strings with a common q-gram must share at least one group — the
	// recall guarantee token filtering provides.
	tf := TokenFilter{Q: 3}
	a, b := "jonathan", "johnathan"
	ka, kb := tf.Keys(a), tf.Keys(b)
	shared := false
	set := map[string]bool{}
	for _, k := range ka {
		set[k] = true
	}
	for _, k := range kb {
		if set[k] {
			shared = true
		}
	}
	if !shared {
		t.Fatalf("%q and %q share no token group", a, b)
	}
}

func TestExactBlocker(t *testing.T) {
	e := Exact{}
	if k := e.Keys("12 oak st"); len(k) != 1 || k[0] != "12 oak st" {
		t.Fatalf("exact keys = %v", k)
	}
}

func TestLengthFilterAdjacency(t *testing.T) {
	lf := LengthFilter{Width: 2}
	// Strings of length 5 and 6 are in adjacent buckets and must share one.
	k5 := lf.Keys(strings.Repeat("a", 5))
	k6 := lf.Keys(strings.Repeat("a", 6))
	set := map[string]bool{}
	for _, k := range k5 {
		set[k] = true
	}
	shared := false
	for _, k := range k6 {
		if set[k] {
			shared = true
		}
	}
	if !shared {
		t.Fatalf("adjacent lengths should share a bucket: %v vs %v", k5, k6)
	}
}

func TestKMeansAssignsToClosest(t *testing.T) {
	km := KMeans{Centers: []string{"aaaa", "zzzz"}, Metric: textsim.MetricLevenshtein}
	if keys := km.Keys("aaab"); len(keys) != 1 || keys[0] != "c0" {
		t.Fatalf("aaab should go to center 0: %v", keys)
	}
	if keys := km.Keys("zzzx"); keys[0] != "c1" {
		t.Fatalf("zzzx should go to center 1: %v", keys)
	}
}

func TestKMeansDeltaMultiAssign(t *testing.T) {
	km := KMeans{Centers: []string{"abcd", "abce"}, Delta: 1.0, Metric: textsim.MetricLevenshtein}
	keys := km.Keys("abcf")
	if len(keys) != 2 {
		t.Fatalf("with a wide delta both centers should match: %v", keys)
	}
	if km.KeyCost("x") != 2 {
		t.Fatalf("KeyCost should equal the center count")
	}
}

func TestKMeansNoCenters(t *testing.T) {
	km := KMeans{}
	if keys := km.Keys("any"); len(keys) != 1 {
		t.Fatalf("no centers should still yield one key: %v", keys)
	}
}

func TestSelectCentersFixedStep(t *testing.T) {
	vals := []string{"a", "b", "c", "d", "e", "f"}
	centers := SelectCentersFixedStep(vals, 3)
	if len(centers) != 3 {
		t.Fatalf("centers = %v", centers)
	}
	// N/k = 2 → elements at indexes 1, 3, 5.
	if centers[0] != "b" || centers[1] != "d" || centers[2] != "f" {
		t.Fatalf("fixed-step extraction wrong: %v", centers)
	}
	if got := SelectCentersFixedStep(vals, 100); len(got) != len(vals) {
		t.Fatalf("k>n should return all values: %v", got)
	}
	if got := SelectCentersFixedStep(nil, 3); got != nil {
		t.Fatalf("empty input: %v", got)
	}
}

func TestSelectCentersReservoirDeterministic(t *testing.T) {
	vals := make([]string, 100)
	for i := range vals {
		vals[i] = string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
	}
	a := SelectCentersReservoir(vals, 10, 7)
	b := SelectCentersReservoir(vals, 10, 7)
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatal("reservoir sampling must be deterministic per seed")
	}
	if len(a) != 10 {
		t.Fatalf("want 10 centers, got %d", len(a))
	}
	c := SelectCentersReservoir(vals, 10, 8)
	if strings.Join(a, ",") == strings.Join(c, ",") {
		t.Fatal("different seeds should (almost surely) differ")
	}
	if got := SelectCentersReservoir(vals[:3], 10, 1); len(got) != 3 {
		t.Fatalf("k>n returns all: %v", got)
	}
}

func TestFitKMeansConverges(t *testing.T) {
	// Two tight clusters of words; fitted centers should separate them.
	words := []string{"aaaa", "aaab", "aaba", "zzzz", "zzzy", "zzyz"}
	centers := FitKMeans(words, 2, 10, textsim.MetricLevenshtein)
	if len(centers) != 2 {
		t.Fatalf("centers = %v", centers)
	}
	km := KMeans{Centers: centers, Metric: textsim.MetricLevenshtein}
	if km.Keys("aaac")[0] == km.Keys("zzzx")[0] {
		t.Fatalf("clusters should separate a* from z*: centers %v", centers)
	}
}

func TestCanopy(t *testing.T) {
	c := &Canopy{T1: 0.5, T2: 0.9, Metric: textsim.MetricLevenshtein}
	c.Fit([]string{"apple", "appel", "orange", "orangu"})
	if len(c.centers) < 1 {
		t.Fatal("canopy fit produced no centers")
	}
	keys := c.Keys("appla")
	if len(keys) == 0 {
		t.Fatal("every value must land in at least one canopy")
	}
	if c.KeyCost("x") != int64(len(c.centers)) {
		t.Fatal("KeyCost should equal canopy count")
	}
}

func TestHierarchicalClusters(t *testing.T) {
	words := []string{"aaaa", "aaab", "zzzz", "zzzy"}
	clusters := HierarchicalClusters(words, 2, textsim.MetricLevenshtein)
	if len(clusters) != 2 {
		t.Fatalf("want 2 clusters, got %v", clusters)
	}
	for _, cl := range clusters {
		if len(cl) != 2 {
			t.Fatalf("each cluster should have 2 members: %v", clusters)
		}
		if cl[0][0] != cl[1][0] {
			t.Fatalf("cluster mixes a* and z*: %v", clusters)
		}
	}
	if got := HierarchicalClusters(words, 0, textsim.MetricLevenshtein); len(got) != 1 {
		t.Fatalf("k<1 clamps to 1: %v", got)
	}
}

func TestParseBlocker(t *testing.T) {
	cases := []struct {
		op   string
		want string
	}{
		{"token_filtering", "tf(q=3)"},
		{"tf", "tf(q=3)"},
		{"kmeans", "kmeans(k=2)"},
		{"length", "len(w=2)"},
		{"attribute", "attribute"},
		{"exact", "attribute"},
	}
	for _, c := range cases {
		b, err := ParseBlocker(c.op, 0, []string{"aa", "bb", "cc"})
		if err != nil {
			t.Fatalf("ParseBlocker(%q): %v", c.op, err)
		}
		if !strings.HasPrefix(b.Name(), strings.Split(c.want, "(")[0]) {
			t.Fatalf("ParseBlocker(%q).Name() = %q, want prefix of %q", c.op, b.Name(), c.want)
		}
	}
	if _, err := ParseBlocker("bogus", 0, nil); err == nil {
		t.Fatal("unknown blocker should error")
	}
}

func TestGroupsMonoidLaws(t *testing.T) {
	// The token-filtering monoid laws of paper §4.3: associativity,
	// identity, idempotence under the canonical grouping representation.
	rng := rand.New(rand.NewSource(51))
	m := GroupsMonoid{B: TokenFilter{Q: 2}}
	val := func() types.Value {
		n := rng.Intn(4)
		acc := m.Zero()
		for i := 0; i < n; i++ {
			acc = m.Merge(acc, m.Unit(types.String(randName(rng))))
		}
		return acc
	}
	for i := 0; i < 300; i++ {
		a, b, c := val(), val(), val()
		if types.Key(m.Merge(a, m.Zero())) != types.Key(a) {
			t.Fatalf("right identity violated")
		}
		if types.Key(m.Merge(m.Zero(), a)) != types.Key(a) {
			t.Fatalf("left identity violated")
		}
		l := m.Merge(m.Merge(a, b), c)
		r := m.Merge(a, m.Merge(b, c))
		if types.Key(l) != types.Key(r) {
			t.Fatalf("associativity violated:\n%s\nvs\n%s", l, r)
		}
		// Commutativity (groups are canonical).
		if types.Key(m.Merge(a, b)) != types.Key(m.Merge(b, a)) {
			t.Fatalf("commutativity violated")
		}
		// Idempotence.
		if types.Key(m.Merge(a, a)) != types.Key(a) {
			t.Fatalf("idempotence violated for %s", a)
		}
	}
}

func TestGroupsMonoidMatchesDirectGrouping(t *testing.T) {
	words := []string{"stella", "stela", "manos", "mano", "ben"}
	tf := TokenFilter{Q: 3}
	viaMonoid := BlockStrings(tf, words)
	direct := GroupsValue(Groups(tf, words))
	if types.Key(viaMonoid) != types.Key(direct) {
		t.Fatalf("monoid fold disagrees with direct grouping:\n%s\nvs\n%s", viaMonoid, direct)
	}
}

func TestGroupsMonoidImplementsMonoid(t *testing.T) {
	var _ monoid.Monoid = GroupsMonoid{B: TokenFilter{Q: 2}}
	m := GroupsMonoid{B: TokenFilter{Q: 2}}
	if !m.Idempotent() || !m.Collection() {
		t.Fatal("groups monoid is an idempotent collection monoid")
	}
}

func TestBlockingPreservesSimilarPairsRecall(t *testing.T) {
	// Any pair above the similarity threshold must co-occur in at least one
	// token-filtering group (tf with q=3 and θ=0.8 over names ≥ 8 chars).
	rng := rand.New(rand.NewSource(61))
	tf := TokenFilter{Q: 3}
	for i := 0; i < 200; i++ {
		base := randName(rng) + randName(rng)
		// One edit: similar enough for long names.
		dirty := base[:1] + "x" + base[2:]
		if !textsim.SimilarAbove(base, dirty, 0.8) {
			continue
		}
		shared := false
		set := map[string]bool{}
		for _, k := range tf.Keys(base) {
			set[k] = true
		}
		for _, k := range tf.Keys(dirty) {
			if set[k] {
				shared = true
			}
		}
		if !shared {
			t.Fatalf("similar pair %q/%q not co-blocked", base, dirty)
		}
	}
}
