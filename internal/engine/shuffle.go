package engine

import (
	"sort"

	"cleandb/internal/types"
)

// KeyFunc extracts a grouping key from a record.
type KeyFunc func(types.Value) types.Value

// hashShuffleCostFactor is the per-record cost of hash-based shuffling
// relative to a plain scan (random I/O + memory pressure; see
// HashShuffleGroup).
const hashShuffleCostFactor = 16

// Aggregator folds the records of one group into an output value. It is the
// engine-level counterpart of a monoid: Zero/Add build partial aggregates,
// Merge combines partials (must be associative), Result renders the output.
type Aggregator interface {
	// Zero returns a fresh empty accumulator.
	Zero() interface{}
	// Add folds one record into the accumulator and returns it.
	Add(acc interface{}, v types.Value) interface{}
	// Merge combines two accumulators (associative).
	Merge(a, b interface{}) interface{}
	// Result renders the final output record for a group, or a null value
	// to drop the group (the HAVING-style predicate of the Nest operator).
	Result(key types.Value, acc interface{}) types.Value
	// AccSize estimates the shuffle size (record count) of an accumulator;
	// the cost model uses it to account for combined-shuffle volume.
	AccSize(acc interface{}) int64
}

// GroupAgg collects the full group as a list — the accumulator used by
// deduplication and FD checks that need the group members.
type GroupAgg struct {
	// Project, when non-nil, maps each record before collecting it
	// (projection pushdown into the aggregation).
	Project func(types.Value) types.Value
	// Finish renders the output from the key and collected group. When nil,
	// the group is emitted as a {key, group} record.
	Finish func(key types.Value, group []types.Value) types.Value
}

var groupSchema = types.NewSchema("key", "group")

// Zero implements Aggregator.
func (g GroupAgg) Zero() interface{} { return []types.Value(nil) }

// Add implements Aggregator.
func (g GroupAgg) Add(acc interface{}, v types.Value) interface{} {
	if g.Project != nil {
		v = g.Project(v)
	}
	return append(acc.([]types.Value), v)
}

// Merge implements Aggregator.
func (g GroupAgg) Merge(a, b interface{}) interface{} {
	return append(a.([]types.Value), b.([]types.Value)...)
}

// Result implements Aggregator.
func (g GroupAgg) Result(key types.Value, acc interface{}) types.Value {
	group := acc.([]types.Value)
	if g.Finish != nil {
		return g.Finish(key, group)
	}
	return types.NewRecord(groupSchema, []types.Value{key, types.ListOf(group)})
}

// AccSize implements Aggregator.
func (g GroupAgg) AccSize(acc interface{}) int64 { return int64(len(acc.([]types.Value))) }

// GroupRecord unpacks a {key, group} record produced by GroupAgg.
func GroupRecord(v types.Value) (key types.Value, group []types.Value) {
	return v.Field("key"), v.Field("group").List()
}

// AggregateByKey is CleanDB's skew-resilient grouping (paper §6): partial
// aggregates are built locally per partition, only the (key, partial) pairs
// are shuffled by key hash, and reducers merge partials. Output order is
// deterministic (sorted by key within each reducer partition).
func (d *Dataset) AggregateByKey(name string, key KeyFunc, agg Aggregator) *Dataset {
	w := d.ctx.Workers
	// Stage 1: map-side combine.
	type kv struct {
		keyStr string
		key    types.Value
		acc    interface{}
	}
	parts := d.rows()
	localPairs := make([][]kv, len(parts))
	mapCosts := make([]int64, len(parts))
	d.ctx.runParallel(len(parts), func(i int) {
		local := make(map[string]*kv, 64)
		order := make([]string, 0, 64)
		for _, v := range parts[i] {
			k := key(v)
			ks := types.Key(k)
			e, ok := local[ks]
			if !ok {
				e = &kv{keyStr: ks, key: k, acc: agg.Zero()}
				local[ks] = e
				order = append(order, ks)
			}
			e.acc = agg.Add(e.acc, v)
		}
		pairs := make([]kv, 0, len(order))
		for _, ks := range order {
			pairs = append(pairs, *local[ks])
		}
		localPairs[i] = pairs
		mapCosts[i] = int64(len(parts[i]))
	})
	d.ctx.metrics.recordsProcessed.Add(sumCosts(mapCosts))
	d.ctx.metrics.logStage(StageStats{Name: name + ":combine", WorkerCosts: mapCosts})

	// Shuffle the combined pairs by key hash. Each (key, partial) pair is
	// one network message regardless of how many input records it combined
	// — "forwarding already grouped values" (paper §6) is what keeps
	// cross-node traffic low.
	buckets := make([][]kv, w)
	var shuffled, bytes int64
	for _, pairs := range localPairs {
		if d.ctx.Err() != nil {
			break // cancelled: the reduce stage below aborts anyway
		}
		for _, p := range pairs {
			b := int(types.Hash(p.key) % uint64(w))
			buckets[b] = append(buckets[b], p)
			shuffled++
			bytes += agg.AccSize(p.acc) * 24
		}
	}

	// Stage 2: reduce-side merge.
	out := make([][]types.Value, w)
	redCosts := make([]int64, w)
	d.ctx.runParallel(w, func(b int) {
		merged := make(map[string]*kv, len(buckets[b]))
		order := make([]string, 0, len(buckets[b]))
		var cost int64
		for _, p := range buckets[b] {
			// Merging pre-grouped partials is amortized-constant work per
			// message (list concatenation) plus a small per-element term
			// for aggregates that must touch members (distinct sets).
			cost += 1 + agg.AccSize(p.acc)/16
			e, ok := merged[p.keyStr]
			if !ok {
				cp := p
				merged[p.keyStr] = &cp
				order = append(order, p.keyStr)
				continue
			}
			e.acc = agg.Merge(e.acc, p.acc)
		}
		sort.Strings(order)
		res := make([]types.Value, 0, len(order))
		for _, ks := range order {
			v := agg.Result(merged[ks].key, merged[ks].acc)
			if !v.IsNull() {
				res = append(res, v)
			}
		}
		out[b] = res
		redCosts[b] = cost
	})
	d.ctx.metrics.logStage(StageStats{
		Name: name + ":merge", WorkerCosts: redCosts,
		ShuffledRecords: shuffled, ShuffledBytes: bytes,
	})
	return &Dataset{ctx: d.ctx, parts: out}
}

// SortShuffleGroup models Spark SQL's sort-based aggregation (paper §6 and
// §8.3): every record is range-partitioned by key — heavy keys land in a
// single range — locally sorted, and aggregated over runs. No map-side
// combine, so the full dataset is shuffled.
func (d *Dataset) SortShuffleGroup(name string, key KeyFunc, agg Aggregator) *Dataset {
	w := d.ctx.Workers
	// Sample keys to derive range boundaries, as Spark's RangePartitioner does.
	sample := d.Sample(sampleStep(d.Count(), 20*w))
	keys := make([]string, 0, len(sample))
	for _, v := range sample {
		keys = append(keys, types.Key(key(v)))
	}
	sort.Strings(keys)
	bounds := make([]string, 0, w-1)
	for i := 1; i < w; i++ {
		idx := i * len(keys) / w
		if idx < len(keys) {
			bounds = append(bounds, keys[idx])
		}
	}

	type kr struct {
		keyStr string
		key    types.Value
		rec    types.Value
	}
	// Shuffle every record to its range.
	buckets := make([][]kr, w)
	var shuffled, bytes int64
	for _, p := range d.rows() {
		if d.ctx.Err() != nil {
			break // cancelled: the sort stage below aborts anyway
		}
		for _, v := range p {
			k := key(v)
			ks := types.Key(k)
			b := sort.SearchStrings(bounds, ks)
			if b >= w {
				b = w - 1
			}
			buckets[b] = append(buckets[b], kr{ks, k, v})
			shuffled++
			bytes += int64(types.SizeBytes(v))
		}
	}

	out := make([][]types.Value, w)
	costs := make([]int64, w)
	d.ctx.runParallel(w, func(b int) {
		rows := buckets[b]
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].keyStr < rows[j].keyStr })
		res := make([]types.Value, 0, 16)
		i := 0
		for i < len(rows) {
			j := i
			acc := agg.Zero()
			for j < len(rows) && rows[j].keyStr == rows[i].keyStr {
				acc = agg.Add(acc, rows[j].rec)
				j++
			}
			v := agg.Result(rows[i].key, acc)
			if !v.IsNull() {
				res = append(res, v)
			}
			i = j
		}
		out[b] = res
		n := int64(len(rows))
		c := n
		if n > 1 {
			c = n * int64(bitLen(n)) // local sort dominates
		}
		costs[b] = c
	})
	d.ctx.metrics.recordsProcessed.Add(shuffled)
	d.ctx.metrics.logStage(StageStats{
		Name: name + ":sortshuffle", WorkerCosts: costs,
		ShuffledRecords: shuffled, ShuffledBytes: bytes,
	})
	return &Dataset{ctx: d.ctx, parts: out}
}

// HashShuffleGroup models BigDansing-style hash aggregation: every record is
// hash-partitioned by key (full shuffle, no combine) and grouped at the
// reducer with an in-memory hash table.
func (d *Dataset) HashShuffleGroup(name string, key KeyFunc, agg Aggregator) *Dataset {
	w := d.ctx.Workers
	type kr struct {
		keyStr string
		key    types.Value
		rec    types.Value
	}
	buckets := make([][]kr, w)
	var shuffled, bytes int64
	for _, p := range d.rows() {
		if d.ctx.Err() != nil {
			break // cancelled: the reduce stage below aborts anyway
		}
		for _, v := range p {
			k := key(v)
			b := int(types.Hash(k) % uint64(w))
			buckets[b] = append(buckets[b], kr{types.Key(k), k, v})
			shuffled++
			bytes += int64(types.SizeBytes(v))
		}
	}
	out := make([][]types.Value, w)
	costs := make([]int64, w)
	d.ctx.runParallel(w, func(b int) {
		type entry struct {
			key types.Value
			acc interface{}
		}
		groups := make(map[string]*entry, 64)
		order := make([]string, 0, 64)
		for _, r := range buckets[b] {
			e, ok := groups[r.keyStr]
			if !ok {
				e = &entry{key: r.key, acc: agg.Zero()}
				groups[r.keyStr] = e
				order = append(order, r.keyStr)
			}
			e.acc = agg.Add(e.acc, r.rec)
		}
		sort.Strings(order)
		res := make([]types.Value, 0, len(order))
		for _, ks := range order {
			v := agg.Result(groups[ks].key, groups[ks].acc)
			if !v.IsNull() {
				res = append(res, v)
			}
		}
		out[b] = res
		// Hash aggregation stresses memory and causes heavy random I/O;
		// the paper (§8.3, citing Spark issue 3280) observes it loses to
		// sort-based shuffling, whose external sort costs n·log n. The
		// constant is calibrated so the random-I/O penalty exceeds the
		// sort's log factor at cluster-scale partition sizes (log₂ of a
		// multi-million-row partition ≈ 20+).
		costs[b] = int64(len(buckets[b])) * hashShuffleCostFactor
	})
	d.ctx.metrics.recordsProcessed.Add(shuffled)
	d.ctx.metrics.logStage(StageStats{
		Name: name + ":hashshuffle", WorkerCosts: costs,
		ShuffledRecords: shuffled, ShuffledBytes: bytes,
	})
	return &Dataset{ctx: d.ctx, parts: out}
}

func sampleStep(n int64, want int) int {
	if want <= 0 {
		return 1
	}
	step := int(n) / want
	if step < 1 {
		step = 1
	}
	return step
}

func sumCosts(cs []int64) int64 {
	var t int64
	for _, c := range cs {
		t += c
	}
	return t
}
