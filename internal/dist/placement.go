// Package dist is the cleaning cluster: coordinator/worker roles over the
// single-process engine.
//
// The execution model is SPMD over a replicated catalog. A query arriving at
// the coordinator is planned into per-worker fragments that are the *whole
// query*: every node — the coordinator included — executes the same pipeline
// over the same sources, so every node's narrow stages, shuffles, statistics
// and strategy choices are bit-identical to single-process execution. The
// expensive O(n·m) comparison loops (theta, min-max, cartesian and hash
// joins) are the exception: the engine masks them (engine.Exchange), each
// node computes only the slots placement assigns to it, and the coordinator's
// barrier hub exchanges the slot outputs as framed colbin batches. The
// coordinator therefore finishes holding exactly the single-process result —
// rows, repairs and cost metrics — having personally executed only its share
// of the join work.
//
// Placement is rendezvous (highest-random-weight) hashing: a pure function of
// (key, membership), so every node computes the same assignment without
// coordination, and membership changes move only the keys owned by the nodes
// that came or went. The same scheme keys both catalog partition custody
// (source name + partition index, reported by the coordinator's /healthz) and
// masked-stage slots (stage id + slot index).
package dist

import (
	"hash/fnv"
	"strconv"
)

// owner returns the member with the highest rendezvous weight for key.
// Deterministic for any member order; ties break toward the smaller id.
func owner(key string, members []string) string {
	best, bestH := "", uint64(0)
	for _, m := range members {
		h := fnv.New64a()
		h.Write([]byte(m))
		h.Write([]byte{0})
		h.Write([]byte(key))
		v := h.Sum64()
		if best == "" || v > bestH || (v == bestH && m < best) {
			best, bestH = m, v
		}
	}
	return best
}

func slotKey(stage string, slot int) string {
	return "slot/" + stage + "#" + strconv.Itoa(slot)
}

// ownedSlots returns the slots of [0,n) that placement assigns to self under
// the given membership. Unioned over all members the result is exactly [0,n),
// disjoint — the mask contract of engine.Exchange.
func ownedSlots(stage string, n int, self string, members []string) []int {
	var out []int
	for i := 0; i < n; i++ {
		if owner(slotKey(stage, i), members) == self {
			out = append(out, i)
		}
	}
	return out
}

// PartitionOwner returns the member with custody of one source partition —
// the consistent catalog assignment keyed by source name + partition index.
// Custody is advisory under replicated catalogs (every node holds every
// partition, which is what makes worker loss survivable); it drives the
// placement report on the coordinator's /healthz and re-plans automatically
// when the live membership changes.
func PartitionOwner(source string, part int, members []string) string {
	return owner("part/"+source+"/"+strconv.Itoa(part), members)
}
