package core

import (
	"strings"
	"testing"

	"cleandb/internal/cleaning"
	"cleandb/internal/datagen"
	"cleandb/internal/engine"
	"cleandb/internal/physical"
	"cleandb/internal/types"
)

// ruleψRepair is rule ψ as a DENIAL constraint with a REPAIR clause: relax
// the discount attribute until no (price↑, discount↓) inversion below the
// price threshold remains.
const ruleψRepair = `
SELECT * FROM lineitem t1
DENIAL(t2, t1.extendedprice < t2.extendedprice and t1.discount > t2.discount and t1.extendedprice < 905)
REPAIR(t1.discount)`

// TestRepairEndToEnd runs DENIAL+REPAIR through the full pipeline on the
// examples/denial dataset shape and re-checks the healed rows with DCCheck:
// zero violations may remain (the PR's acceptance criterion).
func TestRepairEndToEnd(t *testing.T) {
	rows := datagen.GenLineitem(datagen.LineitemConfig{Rows: 2000, Seed: 9})
	ctx := engine.NewContext(4)
	ctx.CompBudget = 20_000_000
	p := NewPipeline(ctx, map[string]*engine.Dataset{
		"lineitem": engine.FromValues(ctx, rows),
	})
	res, err := p.Run(ruleψRepair)
	if err != nil {
		t.Fatal(err)
	}
	repairs := res.Repairs()
	if len(repairs) != 1 {
		t.Fatalf("repair summaries = %d, want 1", len(repairs))
	}
	sum := repairs[0]
	if sum.Violations == 0 {
		t.Fatal("test data should contain ψ violations")
	}
	if sum.Remaining != 0 {
		t.Fatalf("repair did not converge: %d remaining after %d rounds", sum.Remaining, sum.Rounds)
	}
	if sum.Changed == 0 || len(sum.Entries) == 0 {
		t.Fatalf("no values repaired: %+v", sum)
	}
	if int64(len(sum.Rows)) != int64(len(rows)) {
		t.Fatalf("repaired rows = %d, want %d", len(sum.Rows), len(rows))
	}

	// Independent re-check of the healed dataset through DCCheck.
	ctx2 := engine.NewContext(4)
	healed := engine.FromValues(ctx2, sum.Rows)
	leftover, err := cleaning.DCCheck(healed, cleaning.DCConfig{
		LeftFilter: func(v types.Value) bool { return v.Field("extendedprice").Float() < 905 },
		Pred: func(t1, t2 types.Value) bool {
			return t1.Field("extendedprice").Float() < t2.Field("extendedprice").Float() &&
				t1.Field("discount").Float() > t2.Field("discount").Float() &&
				t1.Field("extendedprice").Float() < 905
		},
		Band:     func(v types.Value) float64 { return v.Field("extendedprice").Float() },
		BandOp:   "<",
		Strategy: physical.ThetaMBucket,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := leftover.Count(); n != 0 {
		t.Fatalf("re-check found %d violations in repaired dataset", n)
	}
}

// TestRepairDetectionSeedsFromPlan: the REPAIR loop's round-1 violations
// must equal the executed plan's output (the detection side runs through the
// optimized comprehension→algebra→physical stack, not a private DCCheck).
func TestRepairDetectionSeedsFromPlan(t *testing.T) {
	rows := datagen.GenLineitem(datagen.LineitemConfig{Rows: 1000, Seed: 3})
	run := func(query string) (int, *RepairSummary) {
		ctx := engine.NewContext(4)
		p := NewPipeline(ctx, map[string]*engine.Dataset{
			"lineitem": engine.FromValues(ctx, rows),
		})
		res, err := p.Run(query)
		if err != nil {
			t.Fatal(err)
		}
		reps := res.Repairs()
		if len(reps) == 0 {
			return len(res.Rows()), nil
		}
		return len(res.Rows()), reps[0]
	}
	detected, _ := run(`
SELECT * FROM lineitem t1
DENIAL(t2, t1.extendedprice < t2.extendedprice and t1.discount > t2.discount and t1.extendedprice < 905)`)
	_, sum := run(ruleψRepair)
	if sum == nil {
		t.Fatal("no repair summary")
	}
	if int64(detected) != sum.Violations {
		t.Fatalf("plan found %d pairs but repair saw %d", detected, sum.Violations)
	}
}

// TestDenialDetectOnly: DENIAL without REPAIR behaves like the WHERE-based
// theta self-join formulation — same violating pairs, no repair attempted.
func TestDenialDetectOnly(t *testing.T) {
	rows := datagen.GenLineitem(datagen.LineitemConfig{Rows: 1000, Seed: 7})
	ctx := engine.NewContext(4)
	p := NewPipeline(ctx, map[string]*engine.Dataset{
		"lineitem": engine.FromValues(ctx, rows),
	})
	res, err := p.Run(`
SELECT * FROM lineitem t1
DENIAL(t2, t1.extendedprice < t2.extendedprice and t1.discount > t2.discount and t1.extendedprice < 905)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Repairs()) != 0 {
		t.Fatal("detect-only DENIAL ran a repair")
	}
	want := 0
	for _, t1 := range rows {
		if t1.Field("extendedprice").Float() >= 905 {
			continue
		}
		for _, t2 := range rows {
			if t1.Field("extendedprice").Float() < t2.Field("extendedprice").Float() &&
				t1.Field("discount").Float() > t2.Field("discount").Float() {
				want++
			}
		}
	}
	if got := len(res.Rows()); got != want {
		t.Fatalf("DENIAL pairs = %d, want %d", got, want)
	}
}

// TestDenialFilterPushdown: the t1-only conjunct of a DENIAL predicate must
// lower to a Select below the theta self join, like the WHERE formulation.
func TestDenialFilterPushdown(t *testing.T) {
	rows := datagen.GenLineitem(datagen.LineitemConfig{Rows: 50, Seed: 7})
	ctx := engine.NewContext(2)
	p := NewPipeline(ctx, map[string]*engine.Dataset{
		"lineitem": engine.FromValues(ctx, rows),
	})
	prep, err := p.Prepare(ruleψRepair)
	if err != nil {
		t.Fatal(err)
	}
	explain := prep.Explain()
	lines := strings.Split(explain, "\n")
	joinDepth, selDepth := -1, -1
	for _, l := range lines {
		depth := (len(l) - len(strings.TrimLeft(l, " "))) / 2
		if strings.Contains(l, "ThetaJoin") {
			joinDepth = depth
		}
		if strings.Contains(l, "905") && strings.Contains(l, "Select") {
			selDepth = depth
		}
	}
	if selDepth == -1 || joinDepth == -1 || selDepth <= joinDepth {
		t.Fatalf("filter (depth %d) should be pushed below the join (depth %d):\n%s",
			selDepth, joinDepth, explain)
	}
}

// TestRepairClausesCompose: two REPAIR clauses on the same source must
// chain — the second starts from the first's healed rows, and the final
// rows satisfy both constraints.
func TestRepairClausesCompose(t *testing.T) {
	rows := datagen.GenLineitem(datagen.LineitemConfig{Rows: 1200, Seed: 11})
	ctx := engine.NewContext(4)
	ctx.CompBudget = 20_000_000
	p := NewPipeline(ctx, map[string]*engine.Dataset{
		"lineitem": engine.FromValues(ctx, rows),
	})
	res, err := p.Run(`
SELECT * FROM lineitem t1
DENIAL(t2, t1.extendedprice < t2.extendedprice and t1.discount > t2.discount and t1.extendedprice < 905)
REPAIR(t1.discount)
DENIAL(t3, t1.extendedprice < t3.extendedprice and t1.quantity > t3.quantity and t1.extendedprice < 905)
REPAIR(t1.quantity)`)
	if err != nil {
		t.Fatal(err)
	}
	reps := res.Repairs()
	if len(reps) != 2 {
		t.Fatalf("repair summaries = %d, want 2", len(reps))
	}
	for _, sum := range reps {
		if sum.Remaining != 0 {
			t.Fatalf("%s did not converge: %d remaining", sum.Task, sum.Remaining)
		}
	}
	// The second summary's rows must include the first clause's discount
	// repairs (composition), and the final rows must satisfy both rules.
	final := reps[1].Rows
	check := func(attr string) int {
		violations := 0
		for _, t1 := range final {
			if t1.Field("extendedprice").Float() >= 905 {
				continue
			}
			for _, t2 := range final {
				if t1.Field("extendedprice").Float() < t2.Field("extendedprice").Float() &&
					t1.Field(attr).Float() > t2.Field(attr).Float() {
					violations++
				}
			}
		}
		return violations
	}
	if n := check("discount"); n != 0 {
		t.Fatalf("final rows violate the discount rule %d times", n)
	}
	if n := check("quantity"); n != 0 {
		t.Fatalf("final rows violate the quantity rule %d times", n)
	}
}

// TestRepairBadConfigs: REPAIR clauses the conjunct analysis cannot ground
// must fail with a planning/execution error, not silently detect-only.
func TestRepairBadConfigs(t *testing.T) {
	rows := datagen.GenLineitem(datagen.LineitemConfig{Rows: 50, Seed: 7})
	for _, query := range []string{
		// repair attr never compared between t1 and t2
		`SELECT * FROM lineitem t1 DENIAL(t2, t1.extendedprice < t2.extendedprice) REPAIR(t1.discount)`,
		// no second band conjunct to order tuples
		`SELECT * FROM lineitem t1 DENIAL(t2, t1.discount > t2.discount) REPAIR(t1.discount)`,
		// repair target is an expression, not a column
		`SELECT * FROM lineitem t1 DENIAL(t2, t1.extendedprice < t2.extendedprice and t1.discount > t2.discount) REPAIR(t1.discount + 1)`,
	} {
		ctx := engine.NewContext(2)
		p := NewPipeline(ctx, map[string]*engine.Dataset{
			"lineitem": engine.FromValues(ctx, rows),
		})
		if _, err := p.Run(query); err == nil {
			t.Fatalf("expected error for %q", query)
		}
	}
}
