// Command cleandb is the CleanDB shell: it registers data files of any
// supported format as queryable sources and runs CleanM statements against
// them — querying and cleaning through one interface, as the paper proposes.
//
// Usage:
//
//	cleandb query  -src name=path.csv [-src dict=path.json ...] [-explain] 'SELECT ...'
//	cleandb serve  -http :8080 -src name=path.csv [-max-inflight N] [-timeout D]
//	cleandb gen    -kind tpch-lineitem|tpch-customer|dblp|mag -rows N -out path.csv
//	cleandb convert -in path.csv -out path.colbin
//
// Formats are inferred from file extensions: .csv, .json (JSON lines),
// .xml, .colbin.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"cleandb"
	"cleandb/internal/data"
	"cleandb/internal/datagen"
	"cleandb/internal/dist"
	"cleandb/internal/lang"
	"cleandb/internal/server"
	"cleandb/internal/sink"
	"cleandb/internal/source"
	"cleandb/internal/types"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "query":
		err = cmdQuery(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "gen":
		err = cmdGen(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cleandb:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `cleandb — unified scale-out data cleaning (CleanM)

subcommands:
  query    -src name=path [...] [-workers N] [-explain] [-limit N]
           [-param k=v ...] [-timeout D] [-task NAME] [-serve]
           [-out out.{csv,jsonl,colbin}] 'CLEANM QUERY'
  serve    -http :8080 [-src name=path ...] [-workers N]
           [-max-inflight N] [-timeout D] [-drain-timeout D]
           [-role single|coordinator|worker] [-advertise URL]
           [-coordinator URL] [-exchange-timeout D]
           [-custody partitioned|replicated]
  gen      -kind tpch-lineitem|tpch-customer|dblp|mag -rows N -out path
  convert  -in path -out path [-workers N]

examples:
  cleandb gen -kind tpch-customer -rows 10000 -out customer.csv
  cleandb query -src customer=customer.csv \
    'SELECT * FROM customer c FD(c.address, c.nationkey)'
  cleandb query -src customer=customer.csv -param nation=7 \
    'SELECT * FROM customer c WHERE c.nationkey = :nation DEDUP(attribute, LD, 0.8, c.name)'
  cleandb query -src customer=customer.csv -serve < statements.cleanm
  cleandb query -src customer=customer.csv -out violations.colbin \
    'SELECT * FROM customer c FD(c.address, c.nationkey)'

-serve reads one statement per line from stdin and executes them
concurrently against the shared catalog (prepared plans are cached), which
is how to exercise the service-grade API from the shell.

-out streams the result into the named file through the sink layer:
partitions encode in parallel and nothing is printed or buffered whole.

serve mounts the engine behind HTTP: POST /v1/query streams results as
NDJSON or CSV, POST /v1/statements prepares once and executes by handle,
GET/POST /v1/sources work the lazy source catalog over the wire, and
/healthz + /metrics (Prometheus) make it operable. SIGINT/SIGTERM drain
gracefully: health flips to 503, in-flight queries finish (bounded by
-drain-timeout), then the listener closes.

-role forms a cleaning cluster: one coordinator plus workers started with
-coordinator http://coord:8080 (each node registers the same -src files).
Queries sent to the coordinator fan their join work out across the workers,
exchanging intermediate partitions as binary colbin frames; a worker lost
mid-query is evicted and its share re-executes elsewhere. Under the default
-custody partitioned, cold source loads divide the same way — each member
parses only the chunks it owns and gathers the rest — so per-node memory and
parse work scale down with the cluster size; -custody replicated restores
every member loading every source whole.`)
}

type srcList []string

func (s *srcList) String() string     { return strings.Join(*s, ",") }
func (s *srcList) Set(v string) error { *s = append(*s, v); return nil }

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	var sources srcList
	var params srcList
	fs.Var(&sources, "src", "name=path source registration (repeatable)")
	fs.Var(&params, "param", "k=v named parameter binding for :k placeholders (repeatable)")
	workers := fs.Int("workers", 8, "simulated cluster width")
	explain := fs.Bool("explain", false, "print the three-level plan instead of executing")
	limit := fs.Int("limit", 20, "max rows to print")
	standalone := fs.Bool("standalone", false, "disable unified optimization")
	outPath := fs.String("out", "", "stream result rows to this file instead of printing (.csv/.jsonl/.colbin)")
	repairedOut := fs.String("repaired-out", "", "write REPAIR-healed rows to this file (format by extension)")
	timeout := fs.Duration("timeout", 0, "per-statement deadline (0 = none)")
	taskName := fs.String("task", "", "also print the named cleaning task's own output rows")
	serve := fs.Bool("serve", false, "read statements from stdin and execute them concurrently")
	viewCache := fs.Int("view-cache", 0, "materialized cleaning views to cache (0 = off); repeated statements over unchanged or appended sources serve incrementally")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := []cleandb.Option{cleandb.WithWorkers(*workers)}
	if *standalone {
		opts = append(opts, cleandb.WithStandaloneOps())
	}
	if *viewCache > 0 {
		opts = append(opts, cleandb.WithViewCache(*viewCache))
	}
	db := cleandb.Open(opts...)
	for _, s := range sources {
		name, path, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("query: -src wants name=path, got %q", s)
		}
		if err := register(db, name, path); err != nil {
			return err
		}
	}
	bindings, err := parseParams(params)
	if err != nil {
		return err
	}
	if *serve {
		if fs.NArg() != 0 {
			return fmt.Errorf("query: -serve reads statements from stdin; drop the statement argument")
		}
		return serveStatements(db, bindings, *timeout, *limit)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("query: want exactly one CleanM statement argument")
	}
	query := fs.Arg(0)
	// Validate -repaired-out against the statement before executing: a
	// misuse error should not come after the (possibly expensive) run.
	if *repairedOut != "" {
		if parsed, err := lang.Parse(query); err == nil {
			repairs := 0
			for _, op := range parsed.Cleaning {
				if op.Kind == lang.CleanDenial && op.RepairAttr != nil {
					repairs++
				}
			}
			if repairs == 0 {
				return fmt.Errorf("query: -repaired-out set but the statement has no REPAIR clause")
			}
		}
	}
	if *explain {
		out, err := db.Explain(query)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var res *cleandb.Result
	if *outPath != "" {
		// Streaming export: result partitions pump straight into the file
		// sink under the query's context — no printed rows, no flattened
		// answer buffer.
		snk, err := cleandb.SinkFromPath(*outPath)
		if err != nil {
			return fmt.Errorf("query: -out: %w", err)
		}
		if res, err = db.ExecuteTo(ctx, query, snk, bindings...); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "-- wrote %d rows to %s\n", res.Metrics().ExportedRows, *outPath)
	} else {
		if res, err = db.QueryContext(ctx, query, bindings...); err != nil {
			return err
		}
		printed := 0
		for r, _ := range res.Iter() {
			if printed >= *limit {
				fmt.Printf("... (%d more rows)\n", res.RowCount()-*limit)
				break
			}
			fmt.Println(r)
			printed++
		}
	}
	if *taskName != "" {
		taskRows, ok := res.TaskRowsOK(*taskName)
		if !ok {
			return fmt.Errorf("query: no task %q (tasks: %s)", *taskName, strings.Join(res.TaskNames(), ", "))
		}
		fmt.Fprintf(os.Stderr, "-- task %s: %d rows\n", *taskName, len(taskRows))
		for i, r := range taskRows {
			if i >= *limit {
				fmt.Printf("... (%d more task rows)\n", len(taskRows)-*limit)
				break
			}
			fmt.Println(r)
		}
	}
	repairs := res.Repairs()
	for _, s := range repairs {
		fmt.Fprintf(os.Stderr, "-- repair %s.%s: %d violating pairs, %d values changed (%d clusters, %d rounds), %d remaining\n",
			s.Source, s.Col, s.Violations, s.Changed, s.Clusters, s.Rounds, s.Remaining)
	}
	if *repairedOut != "" {
		if len(repairs) == 0 {
			return fmt.Errorf("query: -repaired-out set but the statement has no REPAIR clause")
		}
		// Successive REPAIR clauses compose, so the last summary per source
		// holds the final rows; one output file means one repaired source.
		last := repairs[len(repairs)-1]
		for _, s := range repairs {
			if s.Source != last.Source {
				return fmt.Errorf("query: -repaired-out supports repairs of a single source, got %s and %s", s.Source, last.Source)
			}
		}
		n, err := writeRows(ctx, *repairedOut, res, last.Source)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "-- repaired %s written to %s (%d rows)\n", last.Source, *repairedOut, n)
	}
	m := res.Metrics()
	fmt.Fprintf(os.Stderr, "-- %d rows; %d ticks, %d comparisons, %d records shuffled\n",
		res.RowCount(), m.SimTicks, m.Comparisons, m.ShuffledRecords)
	return nil
}

// writeRows exports a query's repaired rows for source through the sink
// layer when the extension has a sink format, falling back to the
// materialized writers for the formats only they speak (.xml). The query's
// context governs the export too, so a -timeout covers the whole job.
func writeRows(ctx context.Context, path string, res *cleandb.Result, source string) (int64, error) {
	snk, err := cleandb.SinkFromPath(path)
	if err != nil {
		rows := res.RepairedRows(source)
		if werr := writeFile(path, rows); werr != nil {
			return 0, werr
		}
		return int64(len(rows)), nil
	}
	return res.RepairedTo(ctx, source, snk)
}

// parseParams converts -param k=v flags into named query arguments. Values
// sniff to int/float/bool when unambiguous; an explicit type suffix on the
// key — k:string=02134, k:int=5, k:float=0.5, k:bool=true — forces the
// binding type.
func parseParams(params []string) ([]any, error) {
	var out []any
	for _, p := range params {
		k, v, ok := strings.Cut(p, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("query: -param wants k=v, got %q", p)
		}
		name, typ, _ := strings.Cut(k, ":")
		val, err := typedValue(v, typ)
		if err != nil {
			return nil, fmt.Errorf("query: -param %s: %w", p, err)
		}
		out = append(out, cleandb.Named(name, val))
	}
	return out, nil
}

func typedValue(s, typ string) (any, error) {
	switch typ {
	case "":
		return sniffValue(s), nil
	case "string", "str":
		return s, nil
	case "int":
		return strconv.ParseInt(s, 10, 64)
	case "float":
		return strconv.ParseFloat(s, 64)
	case "bool":
		return strconv.ParseBool(s)
	default:
		return nil, fmt.Errorf("unknown type %q (want string, int, float or bool)", typ)
	}
}

func sniffValue(s string) any {
	// Leading zeros mark identifier-like strings (zip codes, order numbers):
	// coercing "02134" to 2134 would silently change its meaning.
	if len(s) > 1 && (s[0] == '0' || (s[0] == '-' && len(s) > 2 && s[1] == '0')) && !strings.Contains(s, ".") {
		return s
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	if b, err := strconv.ParseBool(s); err == nil {
		return b
	}
	return s
}

// serveStatements reads one CleanM statement per line from stdin and
// executes them concurrently against the shared DB — the CLI face of the
// concurrency-safe API. Blank lines and #-comments are skipped. Output lines
// are prefixed with the 1-based statement number.
func serveStatements(db *cleandb.DB, bindings []any, timeout time.Duration, limit int) error {
	var (
		wg       sync.WaitGroup
		printMu  sync.Mutex
		failures int
	)
	// Bound in-flight statements: each one already fans out across the
	// engine's worker pool, so piping a huge statement file must not launch
	// one goroutine per line.
	inflight := make(chan struct{}, max(4, runtime.NumCPU()))
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	n := 0
	for sc.Scan() {
		stmt := strings.TrimSpace(sc.Text())
		if stmt == "" || strings.HasPrefix(stmt, "#") {
			continue
		}
		n++
		id := n
		inflight <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-inflight }()
			ctx := context.Background()
			if timeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, timeout)
				defer cancel()
			}
			res, err := execStatement(db, ctx, stmt, bindings)
			printMu.Lock()
			defer printMu.Unlock()
			if err != nil {
				failures++
				fmt.Fprintf(os.Stderr, "[%d] error: %v\n", id, err)
				return
			}
			printed := 0
			for r, _ := range res.Iter() {
				if printed >= limit {
					fmt.Printf("[%d] ... (%d more rows)\n", id, res.RowCount()-limit)
					break
				}
				fmt.Printf("[%d] %v\n", id, r)
				printed++
			}
			m := res.Metrics()
			fmt.Fprintf(os.Stderr, "[%d] -- %d rows; %d ticks, %d comparisons, plan reused=%t\n",
				id, res.RowCount(), m.SimTicks, m.Comparisons, m.PlanCacheHit)
		}()
	}
	wg.Wait()
	if err := sc.Err(); err != nil {
		return err
	}
	cs := db.PlanCacheStats()
	fmt.Fprintf(os.Stderr, "-- served %d statements; plan cache: %d hits, %d misses, %d entries\n",
		n, cs.Hits, cs.Misses, cs.Entries)
	if failures > 0 {
		return fmt.Errorf("query: %d of %d statements failed", failures, n)
	}
	return nil
}

// execStatement prepares one served statement and executes it with only the
// -param bindings it actually declares — a shared binding set can then serve
// a mixed statement file without every statement naming every parameter.
func execStatement(db *cleandb.DB, ctx context.Context, stmt string, bindings []any) (*cleandb.Result, error) {
	prep, err := db.PrepareStmt(stmt)
	if err != nil {
		return nil, err
	}
	declared := map[string]bool{}
	for _, k := range prep.Params() {
		declared[k] = true
	}
	var use []any
	for _, b := range bindings {
		if na, ok := b.(cleandb.NamedArg); ok && declared[strings.ToLower(na.Name)] {
			use = append(use, b)
		}
	}
	return prep.ExecContext(ctx, use...)
}

// register adds a file source to the catalog lazily: only the sources a
// statement actually references get parsed (in parallel), so -explain and
// -serve sessions over many -src flags never pay for unused files. A
// missing or unreadable file therefore surfaces at query time. The file is
// stat'd here so a typo'd path still fails fast.
func register(db *cleandb.DB, name, path string) error {
	if _, err := os.Stat(path); err != nil {
		return err
	}
	return db.RegisterFile(name, path)
}

// cmdServe mounts the engine behind the HTTP service: sources register
// lazily up front (only queried ones ever parse), admission control bounds
// concurrent queries, and SIGINT/SIGTERM drain gracefully — health flips to
// 503 for load balancers, in-flight queries finish, then the listener
// closes.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var sources srcList
	fs.Var(&sources, "src", "name=path source registration (repeatable)")
	addr := fs.String("http", ":8080", "listen address")
	workers := fs.Int("workers", 8, "simulated cluster width")
	standalone := fs.Bool("standalone", false, "disable unified optimization")
	maxInflight := fs.Int("max-inflight", server.DefaultMaxInflight, "max concurrently executing queries; beyond it requests get 429")
	timeout := fs.Duration("timeout", 0, "per-query server-side deadline (0 = none)")
	drain := fs.Duration("drain-timeout", 15*time.Second, "grace period for in-flight queries at shutdown")
	quiet := fs.Bool("quiet", false, "suppress the per-request access log")
	role := fs.String("role", "single", "cluster role: single, coordinator, or worker")
	advertise := fs.String("advertise", "", "base URL peers reach this node on (default http://<-http addr>)")
	coordURL := fs.String("coordinator", "", "worker role: the coordinator's base URL to register with")
	exchangeTimeout := fs.Duration("exchange-timeout", 30*time.Second, "coordinator role: barrier failure-detector timeout")
	custody := fs.String("custody", dist.CustodyPartitioned, "coordinator role: partitioned (each member loads only its owned chunks) or replicated (every member loads everything)")
	viewCache := fs.Int("view-cache", 0, "materialized cleaning views to cache (0 = off); re-polled statements over unchanged or appended sources serve incrementally")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve: unexpected argument %q", fs.Arg(0))
	}
	opts := []cleandb.Option{cleandb.WithWorkers(*workers)}
	if *standalone {
		opts = append(opts, cleandb.WithStandaloneOps())
	}
	if *viewCache > 0 {
		opts = append(opts, cleandb.WithViewCache(*viewCache))
	}
	db := cleandb.Open(opts...)
	for _, s := range sources {
		name, path, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("serve: -src wants name=path, got %q", s)
		}
		if err := register(db, name, path); err != nil {
			return err
		}
	}
	cfg := server.Config{MaxInflight: *maxInflight, QueryTimeout: *timeout}
	if !*quiet {
		cfg.Logf = log.New(os.Stderr, "cleandb: ", log.LstdFlags).Printf
	}
	if *advertise == "" {
		*advertise = advertiseFor(*addr)
	}
	switch *role {
	case "single":
	case "coordinator":
		if *custody != dist.CustodyPartitioned && *custody != dist.CustodyReplicated {
			return fmt.Errorf("serve: unknown -custody %q (want partitioned or replicated)", *custody)
		}
		coord := dist.NewCoordinator(db, dist.Config{
			AdvertiseURL:    *advertise,
			ExchangeTimeout: *exchangeTimeout,
			Custody:         *custody,
			Logf:            cfg.Logf,
		})
		defer coord.Close()
		cfg.Coordinator = coord
	case "worker":
		if *coordURL == "" {
			return fmt.Errorf("serve: -role worker requires -coordinator URL")
		}
		cfg.Worker = dist.NewWorker(db)
	default:
		return fmt.Errorf("serve: unknown -role %q (want single, coordinator or worker)", *role)
	}
	srv := server.New(db, cfg)
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if cfg.Worker != nil {
		// Register with the coordinator in the background, retrying until it
		// answers: the worker serves fragments as soon as registration lands,
		// and keeps serving locally either way.
		go registerWorker(ctx, *coordURL, *advertise, cfg.Worker.Fingerprint())
	}
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		srv.BeginDrain()
		fmt.Fprintln(os.Stderr, "cleandb: draining...")
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		done <- hs.Shutdown(sctx)
	}()
	fmt.Fprintf(os.Stderr, "cleandb: serving on %s as %s (%d sources, max-inflight %d)\n",
		*addr, *role, len(sources), *maxInflight)
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-done
}

// advertiseFor derives a reachable base URL from a listen address: a bare
// ":8080" means any interface, so localhost stands in.
func advertiseFor(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "http://localhost" + addr
	}
	return "http://" + addr
}

// registerWorker announces a worker to its coordinator, retrying with backoff
// until the registration lands or the process shuts down. Re-registration is
// idempotent on the coordinator, so retrying after a transient failure or a
// coordinator restart is always safe.
func registerWorker(ctx context.Context, coordURL, advertise, fingerprint string) {
	body, _ := json.Marshal(map[string]string{"url": advertise, "fingerprint": fingerprint})
	delay := time.Second
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			coordURL+"/v1/cluster/register", bytes.NewReader(body))
		if err != nil {
			fmt.Fprintf(os.Stderr, "cleandb: register: %v\n", err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				fmt.Fprintf(os.Stderr, "cleandb: registered with %s: %s\n", coordURL, strings.TrimSpace(string(msg)))
				return
			}
			err = fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(msg)))
		}
		fmt.Fprintf(os.Stderr, "cleandb: register with %s failed (%v), retrying in %s\n", coordURL, err, delay)
		select {
		case <-ctx.Done():
			return
		case <-time.After(delay):
		}
		if delay < 30*time.Second {
			delay *= 2
		}
	}
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "tpch-customer", "dataset kind: tpch-lineitem, tpch-customer, dblp, mag, dict")
	rows := fs.Int("rows", 10000, "row / publication count")
	out := fs.String("out", "", "output path (.csv/.json/.xml/.colbin)")
	seed := fs.Int64("seed", 42, "generator seed")
	noise := fs.Float64("noise", 0.10, "noise rate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("gen: -out is required")
	}
	var records []types.Value
	switch *kind {
	case "tpch-lineitem":
		records = datagen.GenLineitem(datagen.LineitemConfig{Rows: *rows, NoiseRate: *noise, Seed: *seed})
	case "tpch-customer":
		records = datagen.GenCustomer(datagen.CustomerConfig{Rows: *rows, DupRate: *noise, MaxDups: 50, Seed: *seed}).Rows
	case "dblp":
		records = datagen.GenDBLP(datagen.DBLPConfig{Pubs: *rows, AuthorPool: *rows/10 + 50, NoiseRate: *noise, DupRate: 0.1, Seed: *seed}).Pubs
	case "dict":
		records = datagen.GenDBLP(datagen.DBLPConfig{Pubs: 1, AuthorPool: *rows, Seed: *seed}).Dictionary
	case "mag":
		records = datagen.GenMAG(datagen.MAGConfig{Rows: *rows, DupRate: *noise, Seed: *seed}).Rows
	default:
		return fmt.Errorf("gen: unknown kind %q", *kind)
	}
	return writeFile(*out, records)
}

// cmdConvert re-encodes a data file between formats — most usefully
// CSV/JSON/XML → colbin, the binary columnar format the benchmarks read
// fastest. The input parses through the source layer's partition-parallel
// scan, and the partitions pump straight into the output sink: encode is
// partition-parallel too, and the rows are never flattened in between.
// Formats only the materialized writers speak (.xml) fall back to those.
func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "input path")
	out := fs.String("out", "", "output path")
	workers := fs.Int("workers", runtime.NumCPU(), "parallel parse width")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("convert: -in and -out are required")
	}
	src, err := source.FromPath(*in)
	if err != nil {
		return fmt.Errorf("convert: %w", err)
	}
	parts, err := src.Scan(context.Background(), *workers)
	if err != nil {
		return err
	}
	var n int64
	if snk, serr := sink.FromPath(*out); serr == nil {
		if n, err = sink.Pump(context.Background(), snk, parts, *workers); err != nil {
			return err
		}
	} else {
		var records []types.Value
		for _, p := range parts {
			records = append(records, p...)
		}
		if err := writeFile(*out, records); err != nil {
			return err
		}
		n = int64(len(records))
	}
	fmt.Fprintf(os.Stderr, "-- converted %s (%s) to %s: %d rows\n", *in, src.Format(), *out, n)
	return nil
}

func writeFile(path string, records []types.Value) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch filepath.Ext(path) {
	case ".csv":
		return data.WriteCSV(f, records)
	case ".json", ".jsonl", ".ndjson":
		return data.WriteJSON(f, records)
	case ".xml":
		return data.WriteXML(f, records, "rows", "row")
	case ".colbin":
		return data.WriteColbin(f, records)
	default:
		return fmt.Errorf("unknown output format %q", path)
	}
}
