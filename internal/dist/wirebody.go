package dist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
)

// wirebody.go is the HTTP body layout of the exchange RPC: a JSON header
// (routing: session, member, stage, slot count) followed by the binary slot
// frames produced by data.EncodeRowsFrame. Frames pass through the hub
// opaque; only the receiving member decodes them, into its own session
// dictionary.
//
// Request body:  u32 header len | header JSON | uvarint count | count × (uvarint slot, uvarint frame len, frame)
// Reply body:    u32 header len | header JSON | if status=="full": uvarint n × (uvarint frame len, frame)

// exchangeHeader routes one gather submission.
type exchangeHeader struct {
	Session string `json:"session"`
	Self    string `json:"self"`
	Stage   string `json:"stage"`
	N       int    `json:"n"`
}

// exchangeReply is the JSON header of the RPC response.
type exchangeReply struct {
	// Status is "full" (every slot frame follows) or "extra" (compute the
	// Extra slots and call again).
	Status string `json:"status"`
	Extra  []int  `json:"extra,omitempty"`
}

func appendHeader(buf []byte, hdr any) ([]byte, error) {
	js, err := json.Marshal(hdr)
	if err != nil {
		return nil, err
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(js)))
	return append(buf, js...), nil
}

func splitHeader(body []byte, hdr any) (rest []byte, err error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("dist: exchange body too short (%d bytes)", len(body))
	}
	hlen := binary.LittleEndian.Uint32(body[:4])
	if int(hlen) > len(body)-4 {
		return nil, fmt.Errorf("dist: exchange header length %d exceeds body", hlen)
	}
	if err := json.Unmarshal(body[4:4+hlen], hdr); err != nil {
		return nil, fmt.Errorf("dist: exchange header: %w", err)
	}
	return body[4+hlen:], nil
}

type byteCursor struct {
	b   []byte
	off int
}

func (c *byteCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("dist: truncated varint in exchange body at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *byteCursor) take(n uint64) ([]byte, error) {
	if n > uint64(len(c.b)-c.off) {
		return nil, fmt.Errorf("dist: exchange body needs %d bytes, has %d", n, len(c.b)-c.off)
	}
	out := c.b[c.off : c.off+int(n)]
	c.off += int(n)
	return out, nil
}

func encodeExchangeRequest(hdr exchangeHeader, frames map[int][]byte) ([]byte, error) {
	buf, err := appendHeader(nil, hdr)
	if err != nil {
		return nil, err
	}
	buf = binary.AppendUvarint(buf, uint64(len(frames)))
	for slot, frame := range frames {
		buf = binary.AppendUvarint(buf, uint64(slot))
		buf = binary.AppendUvarint(buf, uint64(len(frame)))
		buf = append(buf, frame...)
	}
	return buf, nil
}

func decodeExchangeRequest(body []byte) (exchangeHeader, map[int][]byte, error) {
	var hdr exchangeHeader
	rest, err := splitHeader(body, &hdr)
	if err != nil {
		return hdr, nil, err
	}
	cur := &byteCursor{b: rest}
	count, err := cur.uvarint()
	if err != nil {
		return hdr, nil, err
	}
	if count > uint64(len(rest)) {
		return hdr, nil, fmt.Errorf("dist: exchange frame count %d exceeds body size", count)
	}
	frames := make(map[int][]byte, count)
	for i := uint64(0); i < count; i++ {
		slot, err := cur.uvarint()
		if err != nil {
			return hdr, nil, err
		}
		flen, err := cur.uvarint()
		if err != nil {
			return hdr, nil, err
		}
		frame, err := cur.take(flen)
		if err != nil {
			return hdr, nil, err
		}
		frames[int(slot)] = frame
	}
	return hdr, frames, nil
}

func encodeExchangeReply(rep exchangeReply, frames [][]byte) ([]byte, error) {
	buf, err := appendHeader(nil, rep)
	if err != nil {
		return nil, err
	}
	if rep.Status == "full" {
		buf = binary.AppendUvarint(buf, uint64(len(frames)))
		for _, frame := range frames {
			buf = binary.AppendUvarint(buf, uint64(len(frame)))
			buf = append(buf, frame...)
		}
	}
	return buf, nil
}

func decodeExchangeReply(body []byte) (exchangeReply, [][]byte, error) {
	var rep exchangeReply
	rest, err := splitHeader(body, &rep)
	if err != nil {
		return rep, nil, err
	}
	if rep.Status != "full" {
		return rep, nil, nil
	}
	cur := &byteCursor{b: rest}
	count, err := cur.uvarint()
	if err != nil {
		return rep, nil, err
	}
	if count > uint64(len(rest)) {
		return rep, nil, fmt.Errorf("dist: exchange frame count %d exceeds body size", count)
	}
	frames := make([][]byte, count)
	for i := range frames {
		flen, err := cur.uvarint()
		if err != nil {
			return rep, nil, err
		}
		if frames[i], err = cur.take(flen); err != nil {
			return rep, nil, err
		}
	}
	return rep, frames, nil
}
