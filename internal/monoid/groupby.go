package monoid

import (
	"sort"

	"cleandb/internal/types"
)

// GroupBySchema is the element schema fed to the GroupBy monoid: each unit
// value is a {key, val} record.
var GroupBySchema = types.NewSchema("key", "val")

// GroupSchema is the schema of the groups a GroupBy comprehension produces:
// {key, group} where group is the bag of vals sharing the key.
var GroupSchema = types.NewSchema("key", "group")

// GroupBy is the keyed grouping monoid — the calculus-level "filter" monoid
// that CleanM's FD, DEDUP and CLUSTER BY comprehensions fold with (paper §4.4
// writes it as `yield filter(d.term, algo)`). Its values are canonical
// groupings: lists of {key, group} records sorted by key, each group a bag.
//
//	Zero  = {}
//	Unit  = {key: k, val: v} ↦ [{key: k, group: [v]}]
//	Merge = union by key, concatenating groups
//
// Merge is associative and commutative (the property tests verify the laws),
// so grouping distributes over partitions — which is exactly why the
// physical level may execute it with local pre-aggregation (aggregateByKey).
type GroupBy struct{}

var _ Monoid = GroupBy{}

// Name implements Monoid.
func (GroupBy) Name() string { return "groupby" }

// Zero implements Monoid.
func (GroupBy) Zero() types.Value { return types.List() }

// Unit implements Monoid; v must be a {key, val} record.
func (GroupBy) Unit(v types.Value) types.Value {
	key := v.Field("key")
	val := v.Field("val")
	return types.List(types.NewRecord(GroupSchema, []types.Value{key, types.List(val)}))
}

// Merge implements Monoid: merges two sorted groupings by key.
func (GroupBy) Merge(a, b types.Value) types.Value {
	al, bl := a.List(), b.List()
	if len(al) == 0 {
		return b
	}
	if len(bl) == 0 {
		return a
	}
	out := make([]types.Value, 0, len(al)+len(bl))
	i, j := 0, 0
	for i < len(al) && j < len(bl) {
		ka, kb := types.Key(al[i].Field("key")), types.Key(bl[j].Field("key"))
		switch {
		case ka < kb:
			out = append(out, al[i])
			i++
		case ka > kb:
			out = append(out, bl[j])
			j++
		default:
			ga := al[i].Field("group").List()
			gb := bl[j].Field("group").List()
			merged := make([]types.Value, 0, len(ga)+len(gb))
			merged = append(merged, ga...)
			merged = append(merged, gb...)
			out = append(out, types.NewRecord(GroupSchema, []types.Value{al[i].Field("key"), types.ListOf(merged)}))
			i++
			j++
		}
	}
	out = append(out, al[i:]...)
	out = append(out, bl[j:]...)
	return types.ListOf(out)
}

// Idempotent implements Monoid: groups are bags, so duplication is observable.
func (GroupBy) Idempotent() bool { return false }

// Collection implements Monoid.
func (GroupBy) Collection() bool { return true }

// NormalizeGrouping re-canonicalizes an arbitrary list of {key, group}
// records: sorts by key and merges duplicates (used by tests to compare
// groupings irrespective of construction order). Group members are sorted by
// their canonical key encoding.
func NormalizeGrouping(v types.Value) types.Value {
	byKey := map[string][]types.Value{}
	keys := map[string]types.Value{}
	for _, e := range v.List() {
		k := types.Key(e.Field("key"))
		keys[k] = e.Field("key")
		byKey[k] = append(byKey[k], e.Field("group").List()...)
	}
	sorted := make([]string, 0, len(byKey))
	for k := range byKey {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	out := make([]types.Value, 0, len(sorted))
	for _, k := range sorted {
		group := byKey[k]
		sort.Slice(group, func(i, j int) bool { return types.Key(group[i]) < types.Key(group[j]) })
		out = append(out, types.NewRecord(GroupSchema, []types.Value{keys[k], types.ListOf(group)}))
	}
	return types.ListOf(out)
}
