package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// BenchmarkServerQueryThroughput drives concurrent NDJSON streaming queries
// through the full HTTP stack — admission, plan cache, streaming sink — the
// way a load balancer would.
func BenchmarkServerQueryThroughput(b *testing.B) {
	db := customerDB(b)
	_, ts := newTestServer(b, db, Config{MaxInflight: 256})
	body := `{"query":"SELECT c.name FROM customer c WHERE c.nationkey = :n","params":{"n":2}}`
	// Warm the plan cache so the benchmark measures the serving path.
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Error(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status = %d", resp.StatusCode)
				return
			}
		}
	})
}
