package lang

import (
	"fmt"
	"strings"

	"cleandb/internal/monoid"
	"cleandb/internal/types"
)

// Task is one de-sugared unit of work: a monoid comprehension plus the
// metadata the pipeline needs to combine and execute it.
type Task struct {
	// Name labels the task ("fd1", "dedup2", "query", ...).
	Name string
	// Comp is the task's monoid comprehension (paper §4.4 semantics).
	Comp *monoid.Comprehension
	// EntityKey extracts, from the task's output records (bound to "$out"),
	// the entity key used by the unified outer join.
	EntityKey monoid.Expr
	// Blockers maps generated builtin names to their blocking specs; the
	// pipeline fits and registers them before execution.
	Blockers map[string]BlockerBinding
	// Denial carries the declarative structure of a DENIAL constraint so the
	// pipeline can re-check and (with REPAIR) heal the violations after the
	// detection plan has run.
	Denial *DenialSpec
	// Dedup carries the declarative structure of a DEDUP operator so the
	// incremental layer can re-derive the pair set for appended tuples
	// without re-running the grouping plan.
	Dedup *DedupSpec
}

// DedupSpec is the analyzed form of a DEDUP operator: enough structure to
// recompute, for any row of Source, its block keys, filter status and
// similarity string exactly as the desugared comprehension does.
type DedupSpec struct {
	// Source is the catalog name of the deduplicated table; Alias the FROM
	// alias every expression below references.
	Source, Alias string
	// BlockAttr is the blocking-key attribute expression (the first DEDUP
	// attribute).
	BlockAttr monoid.Expr
	// BlockerFn names the generated blocking builtin; "" when blocking is
	// exact on the attribute value (no builtin involved).
	BlockerFn string
	// Where are the WHERE conjuncts referencing only Alias — the filters the
	// grouping comprehension applies before blocking.
	Where []monoid.Expr
	// SimExpr is the similarity-string expression (the concatenation of the
	// DEDUP attributes, over Alias).
	SimExpr monoid.Expr
	// Metric and ThetaExpr carry the similarity configuration; ThetaExpr may
	// reference query parameters.
	Metric    string
	ThetaExpr monoid.Expr
}

// DenialSpec is the analyzed form of a DENIAL(t2, pred) [REPAIR(attr)]
// operator. The violation predicate is split into conjuncts by the aliases
// they reference; the one-sided t1 conjuncts are exactly the filters the
// monoid normalizer pushes below the self join.
type DenialSpec struct {
	// Source is the catalog name of the self-joined table.
	Source string
	// Alias is the t1 role (the FROM alias); SecondAlias is the t2 role.
	Alias, SecondAlias string
	// Pred is the full violation predicate over both aliases.
	Pred monoid.Expr
	// T1Conjuncts reference only the t1 alias (selective filters, including
	// WHERE conjuncts); T2Conjuncts only t2; CrossConjuncts both.
	T1Conjuncts, T2Conjuncts, CrossConjuncts []monoid.Expr
	// RepairAttr is the REPAIR clause attribute; nil for detect-only.
	RepairAttr monoid.Expr
}

// BlockerBinding ties a generated blocking builtin to its technique and to
// the dataset/attribute used to fit it (k-means centers come from the
// dictionary, per the paper's term-validation setup).
type BlockerBinding struct {
	Spec BlockerSpec
	// FitSource is the catalog name of the dataset used to fit the blocker
	// (k-means centers); empty when no fitting is needed.
	FitSource string
	// FitAttr extracts the fit attribute from records of FitSource, with
	// the record bound to "$fit".
	FitAttr monoid.Expr
	// Metric/Theta carry the similarity configuration for reporting.
	Metric string
	Theta  float64
}

// OutVar is the binding name of task outputs (the Reduce operator's As).
const OutVar = "$out"

// Desugarer rewrites parsed queries into monoid comprehensions — the Monoid
// Rewriter box of the paper's Figure 2.
type Desugarer struct {
	counter int
}

// Desugar translates the query into one task per cleaning operator, or a
// single "query" task when the statement is a plain SELECT.
func (d *Desugarer) Desugar(q *Query) ([]Task, error) {
	if len(q.Cleaning) == 0 {
		t, err := d.desugarPlain(q)
		if err != nil {
			return nil, err
		}
		return []Task{*t}, nil
	}
	var tasks []Task
	counts := map[CleaningKind]int{}
	for _, op := range q.Cleaning {
		counts[op.Kind]++
		var (
			t   *Task
			err error
		)
		switch op.Kind {
		case CleanFD:
			t, err = d.desugarFD(q, op, fmt.Sprintf("fd%d", counts[op.Kind]))
		case CleanDedup:
			t, err = d.desugarDedup(q, op, fmt.Sprintf("dedup%d", counts[op.Kind]))
		case CleanClusterBy:
			t, err = d.desugarClusterBy(q, op, fmt.Sprintf("clusterby%d", counts[op.Kind]))
		case CleanDenial:
			t, err = d.desugarDenial(q, op, fmt.Sprintf("denial%d", counts[op.Kind]))
		default:
			err = fmt.Errorf("lang: unknown cleaning kind %v", op.Kind)
		}
		if err != nil {
			return nil, err
		}
		tasks = append(tasks, *t)
	}
	return tasks, nil
}

// aliasOf returns the first free variable of e that is a query alias.
func aliasOf(e monoid.Expr, q *Query) (string, bool) {
	aliases := map[string]bool{}
	for _, f := range q.From {
		aliases[f.Alias] = true
	}
	for _, v := range monoid.FreeVars(e) {
		if aliases[v] {
			return v, true
		}
	}
	return "", false
}

func sourceFor(alias string, q *Query) (string, error) {
	for _, f := range q.From {
		if f.Alias == alias {
			return f.Source, nil
		}
	}
	return "", fmt.Errorf("lang: unknown alias %q", alias)
}

// whereFor returns the WHERE conjuncts that reference only the given alias.
func whereFor(q *Query, alias string) []monoid.Expr {
	if q.Where == nil {
		return nil
	}
	var conjuncts []monoid.Expr
	var collect func(e monoid.Expr)
	collect = func(e monoid.Expr) {
		if bo, ok := e.(*monoid.BinOp); ok && bo.Op == "and" {
			collect(bo.L)
			collect(bo.R)
			return
		}
		conjuncts = append(conjuncts, e)
	}
	collect(q.Where)
	var out []monoid.Expr
	for _, c := range conjuncts {
		ok := true
		for _, v := range monoid.FreeVars(c) {
			if v != alias {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// tuple renders one expr directly or several as a list value.
func tuple(exprs []monoid.Expr) monoid.Expr {
	if len(exprs) == 1 {
		return exprs[0]
	}
	return &monoid.ListCtor{Elems: exprs}
}

// substAlias rewrites every occurrence of the alias variable to target.
func substAlias(e monoid.Expr, alias string, target monoid.Expr) monoid.Expr {
	return monoid.Substitute(e, alias, target)
}

// groupComp builds groupby{ {key: K, val: <aliasVar>} | alias ← source,
// where..., extraGens... }.
func groupComp(source, alias string, where []monoid.Expr, extraGens []monoid.Qual, key monoid.Expr) *monoid.Comprehension {
	quals := []monoid.Qual{&monoid.Generator{Var: alias, Source: monoid.V(source)}}
	for _, w := range where {
		quals = append(quals, &monoid.Pred{Cond: w})
	}
	quals = append(quals, extraGens...)
	head := &monoid.RecordCtor{Names: []string{"key", "val"}, Fields: []monoid.Expr{key, monoid.V(alias)}}
	return &monoid.Comprehension{M: monoid.GroupBy{}, Head: head, Quals: quals}
}

// desugarFD implements the paper's FD semantics:
//
//	groups := for (c <- data) yield filter(LHS(c)),
//	for (g <- groups, count(distinct RHS over g) > 1) yield bag g
func (d *Desugarer) desugarFD(q *Query, op CleaningOp, name string) (*Task, error) {
	alias, ok := aliasOf(tuple(op.LHS), q)
	if !ok {
		return nil, fmt.Errorf("lang: FD left-hand side references no FROM alias")
	}
	source, err := sourceFor(alias, q)
	if err != nil {
		return nil, err
	}
	grouping := groupComp(source, alias, whereFor(q, alias), nil, tuple(op.LHS))

	// rhsvals := set{ RHS(x) | x ← g.group }
	member := "x"
	rhsOverMember := make([]monoid.Expr, len(op.RHS))
	for i, r := range op.RHS {
		rhsOverMember[i] = substAlias(r, alias, monoid.V(member))
	}
	rhsSet := &monoid.Comprehension{
		M:    monoid.Set,
		Head: tuple(rhsOverMember),
		Quals: []monoid.Qual{
			&monoid.Generator{Var: member, Source: monoid.F(monoid.V("g"), "group")},
		},
	}

	head := &monoid.RecordCtor{
		Names: []string{"key", "values", "group"},
		Fields: []monoid.Expr{
			monoid.F(monoid.V("g"), "key"),
			monoid.V("rhsvals"),
			monoid.F(monoid.V("g"), "group"),
		},
	}
	comp := &monoid.Comprehension{
		M:    monoid.Bag,
		Head: head,
		Quals: []monoid.Qual{
			&monoid.Generator{Var: "g", Source: grouping},
			&monoid.Let{Var: "rhsvals", E: rhsSet},
			&monoid.Pred{Cond: monoid.Gt(&monoid.Call{Fn: "length", Args: []monoid.Expr{monoid.V("rhsvals")}}, monoid.CInt(1))},
		},
	}
	return &Task{
		Name:      name,
		Comp:      comp,
		EntityKey: monoid.F(monoid.V(OutVar), "key"),
	}, nil
}

// desugarDedup implements the paper's DEDUP semantics:
//
//	groups := for (c <- data) yield filter(attrs(c), algo),
//	for (g <- groups, p1 <- g.partition, p2 <- g.partition,
//	     similar(metric, p1.atts, p2.atts, θ)) yield bag (p1, p2)
func (d *Desugarer) desugarDedup(q *Query, op CleaningOp, name string) (*Task, error) {
	if len(op.Attrs) == 0 {
		return nil, fmt.Errorf("lang: DEDUP requires at least one attribute")
	}
	alias, ok := aliasOf(op.Attrs[0], q)
	if !ok {
		return nil, fmt.Errorf("lang: DEDUP attribute references no FROM alias")
	}
	source, err := sourceFor(alias, q)
	if err != nil {
		return nil, err
	}
	metric := op.Metric
	if metric == "" {
		metric = "LD"
	}
	theta := op.Theta
	if theta == 0 {
		theta = 0.8
	}
	thetaExpr := monoid.Expr(monoid.C(floatVal(theta)))
	if op.ThetaExpr != nil {
		thetaExpr = op.ThetaExpr
	}

	// Similarity string: concatenation of all attributes.
	simOf := func(target monoid.Expr) monoid.Expr {
		args := make([]monoid.Expr, len(op.Attrs))
		for i, a := range op.Attrs {
			args[i] = substAlias(a, alias, target)
		}
		if len(args) == 1 {
			return args[0]
		}
		return &monoid.Call{Fn: "concat", Args: args}
	}

	blockKey := op.Attrs[0]
	var extraGens []monoid.Qual
	var key monoid.Expr
	var blockerFn string
	blockers := map[string]BlockerBinding{}
	if strings.EqualFold(op.Blocker.Op, "attribute") || strings.EqualFold(op.Blocker.Op, "exact") {
		// Exact grouping on the attribute: the grouping key is the value
		// itself, which lets the rewriter coalesce this Nest with FD nests
		// on the same attribute (paper Figure 1, plans B+C → BC).
		key = blockKey
	} else {
		fn := d.freshBlocker()
		blockerFn = fn
		blockers[fn] = BlockerBinding{Spec: op.Blocker, FitSource: source, FitAttr: substAlias(blockKey, alias, monoid.V("$fit")), Metric: metric, Theta: theta}
		extraGens = append(extraGens, &monoid.Generator{Var: "t", Source: &monoid.Call{Fn: fn, Args: []monoid.Expr{blockKey}}})
		key = monoid.V("t")
	}
	grouping := groupComp(source, alias, whereFor(q, alias), extraGens, key)

	head := &monoid.RecordCtor{
		Names:  []string{"a", "b"},
		Fields: []monoid.Expr{monoid.V("p1"), monoid.V("p2")},
	}
	comp := &monoid.Comprehension{
		M:    monoid.Set, // set semantics: pairs found in several blocks report once
		Head: head,
		Quals: []monoid.Qual{
			&monoid.Generator{Var: "g", Source: grouping},
			&monoid.Generator{Var: "p1", Source: monoid.F(monoid.V("g"), "group")},
			&monoid.Generator{Var: "p2", Source: monoid.F(monoid.V("g"), "group")},
			&monoid.Pred{Cond: monoid.Lt(
				&monoid.Call{Fn: "reckey", Args: []monoid.Expr{monoid.V("p1")}},
				&monoid.Call{Fn: "reckey", Args: []monoid.Expr{monoid.V("p2")}})},
			&monoid.Pred{Cond: &monoid.Call{Fn: "similar", Args: []monoid.Expr{
				monoid.CStr(metric), simOf(monoid.V("p1")), simOf(monoid.V("p2")), thetaExpr}}},
		},
	}
	return &Task{
		Name:      name,
		Comp:      comp,
		EntityKey: substAlias(op.Attrs[0], alias, monoid.F(monoid.V(OutVar), "a")),
		Blockers:  blockers,
		Dedup: &DedupSpec{
			Source: source, Alias: alias,
			BlockAttr: blockKey, BlockerFn: blockerFn,
			Where:   whereFor(q, alias),
			SimExpr: simOf(monoid.V(alias)),
			Metric:  metric, ThetaExpr: thetaExpr,
		},
	}, nil
}

// desugarClusterBy implements the paper's CLUSTER BY (term validation)
// semantics: both the data and the dictionary are blocked with the same
// technique, blocks with equal keys are joined, and similar (term,
// dictionary term) pairs are reported as suggested repairs.
func (d *Desugarer) desugarClusterBy(q *Query, op CleaningOp, name string) (*Task, error) {
	term := op.Attrs[0]
	alias, ok := aliasOf(term, q)
	if !ok {
		return nil, fmt.Errorf("lang: CLUSTER BY term references no FROM alias")
	}
	source, err := sourceFor(alias, q)
	if err != nil {
		return nil, err
	}
	// The dictionary is the FROM entry that the term does not reference; a
	// second attr expression may override the dictionary term attribute.
	var dictAlias, dictSource string
	for _, f := range q.From {
		if f.Alias != alias {
			dictAlias, dictSource = f.Alias, f.Source
			break
		}
	}
	if dictAlias == "" {
		return nil, fmt.Errorf("lang: CLUSTER BY requires a dictionary table in FROM")
	}
	var dictTerm monoid.Expr = monoid.F(monoid.V(dictAlias), "term")
	if len(op.Attrs) >= 2 {
		dictTerm = op.Attrs[1]
	}
	metric := op.Metric
	if metric == "" {
		metric = "LD"
	}
	theta := op.Theta
	if theta == 0 {
		theta = 0.8
	}
	thetaExpr := monoid.Expr(monoid.C(floatVal(theta)))
	if op.ThetaExpr != nil {
		thetaExpr = op.ThetaExpr
	}

	fn := d.freshBlocker()
	blockers := map[string]BlockerBinding{fn: {
		Spec:      op.Blocker,
		FitSource: dictSource,
		FitAttr:   substAlias(dictTerm, dictAlias, monoid.V("$fit")),
		Metric:    metric,
		Theta:     theta,
	}}

	dataGroup := groupComp(source, alias, whereFor(q, alias),
		[]monoid.Qual{&monoid.Generator{Var: "t", Source: &monoid.Call{Fn: fn, Args: []monoid.Expr{term}}}},
		monoid.V("t"))
	dictGroup := groupComp(dictSource, dictAlias, whereFor(q, dictAlias),
		[]monoid.Qual{&monoid.Generator{Var: "t2", Source: &monoid.Call{Fn: fn, Args: []monoid.Expr{dictTerm}}}},
		monoid.V("t2"))

	termOf := func(target monoid.Expr) monoid.Expr { return substAlias(term, alias, target) }
	dictTermOf := func(target monoid.Expr) monoid.Expr { return substAlias(dictTerm, dictAlias, target) }

	head := &monoid.RecordCtor{
		Names:  []string{"term", "suggestion"},
		Fields: []monoid.Expr{termOf(monoid.V("d1")), dictTermOf(monoid.V("d2"))},
	}
	comp := &monoid.Comprehension{
		M:    monoid.Set,
		Head: head,
		Quals: []monoid.Qual{
			&monoid.Generator{Var: "g1", Source: dataGroup},
			&monoid.Generator{Var: "g2", Source: dictGroup},
			&monoid.Pred{Cond: monoid.Eq(monoid.F(monoid.V("g1"), "key"), monoid.F(monoid.V("g2"), "key"))},
			&monoid.Generator{Var: "d1", Source: monoid.F(monoid.V("g1"), "group")},
			&monoid.Generator{Var: "d2", Source: monoid.F(monoid.V("g2"), "group")},
			&monoid.Pred{Cond: &monoid.BinOp{Op: "!=", L: termOf(monoid.V("d1")), R: dictTermOf(monoid.V("d2"))}},
			&monoid.Pred{Cond: &monoid.Call{Fn: "similar", Args: []monoid.Expr{
				monoid.CStr(metric), termOf(monoid.V("d1")), dictTermOf(monoid.V("d2")), thetaExpr}}},
		},
	}
	return &Task{
		Name:      name,
		Comp:      comp,
		EntityKey: monoid.F(monoid.V(OutVar), "term"),
		Blockers:  blockers,
	}, nil
}

// conjunctsOf splits an expression at top-level ANDs.
func conjunctsOf(e monoid.Expr) []monoid.Expr {
	if bo, ok := e.(*monoid.BinOp); ok && bo.Op == "and" {
		return append(conjunctsOf(bo.L), conjunctsOf(bo.R)...)
	}
	return []monoid.Expr{e}
}

// desugarDenial implements the general denial constraint ¬∃t1,t2 pred as a
// self-join comprehension:
//
//	bag{ {a: t1, b: t2} | t1 ← data, σ_t1..., t2 ← data, pred_rest... }
//
// The predicate is split into conjuncts; those referencing only the t1 alias
// are emitted before the second generator, which is the comprehension-level
// form of the paper's filter pushdown — lowering turns them into a Select
// below the theta self join, and the physical level derives band statistics
// from the cross conjuncts (§6).
func (d *Desugarer) desugarDenial(q *Query, op CleaningOp, name string) (*Task, error) {
	if op.Pred == nil {
		return nil, fmt.Errorf("lang: DENIAL requires a violation predicate")
	}
	aliases := map[string]bool{}
	for _, f := range q.From {
		aliases[f.Alias] = true
	}
	if aliases[op.SecondAlias] {
		return nil, fmt.Errorf("lang: DENIAL second alias %q collides with a FROM alias", op.SecondAlias)
	}
	var alias string
	for _, v := range monoid.FreeVars(op.Pred) {
		switch {
		case v == op.SecondAlias:
		case aliases[v]:
			if alias == "" {
				alias = v
			} else if alias != v {
				return nil, fmt.Errorf("lang: DENIAL predicate references two FROM aliases (%s, %s)", alias, v)
			}
		default:
			return nil, fmt.Errorf("lang: DENIAL predicate references unknown name %q", v)
		}
	}
	if alias == "" {
		return nil, fmt.Errorf("lang: DENIAL predicate references no FROM alias")
	}
	source, err := sourceFor(alias, q)
	if err != nil {
		return nil, err
	}

	spec := &DenialSpec{
		Source: source, Alias: alias, SecondAlias: op.SecondAlias,
		Pred: op.Pred, RepairAttr: op.RepairAttr,
		T1Conjuncts: whereFor(q, alias),
	}
	for _, c := range conjunctsOf(op.Pred) {
		refsT1, refsT2 := false, false
		for _, v := range monoid.FreeVars(c) {
			if v == alias {
				refsT1 = true
			}
			if v == op.SecondAlias {
				refsT2 = true
			}
		}
		switch {
		case refsT1 && refsT2:
			spec.CrossConjuncts = append(spec.CrossConjuncts, c)
		case refsT2:
			spec.T2Conjuncts = append(spec.T2Conjuncts, c)
		default:
			spec.T1Conjuncts = append(spec.T1Conjuncts, c)
		}
	}

	quals := []monoid.Qual{&monoid.Generator{Var: alias, Source: monoid.V(source)}}
	for _, c := range spec.T1Conjuncts {
		quals = append(quals, &monoid.Pred{Cond: c})
	}
	quals = append(quals, &monoid.Generator{Var: op.SecondAlias, Source: monoid.V(source)})
	for _, c := range spec.CrossConjuncts {
		quals = append(quals, &monoid.Pred{Cond: c})
	}
	for _, c := range spec.T2Conjuncts {
		quals = append(quals, &monoid.Pred{Cond: c})
	}
	head := &monoid.RecordCtor{
		Names:  []string{"a", "b"},
		Fields: []monoid.Expr{monoid.V(alias), monoid.V(op.SecondAlias)},
	}
	comp := &monoid.Comprehension{M: monoid.Bag, Head: head, Quals: quals}
	return &Task{
		Name:      name,
		Comp:      comp,
		EntityKey: monoid.F(monoid.V(OutVar), "a"),
		Denial:    spec,
	}, nil
}

// desugarPlain translates a SELECT without cleaning operators:
// bag{ head | a1 ← src1, ..., where } with optional grouping.
func (d *Desugarer) desugarPlain(q *Query) (*Task, error) {
	if len(q.From) == 0 {
		return nil, fmt.Errorf("lang: query requires a FROM clause")
	}
	var quals []monoid.Qual
	for _, f := range q.From {
		quals = append(quals, &monoid.Generator{Var: f.Alias, Source: monoid.V(f.Source)})
	}
	if q.Where != nil {
		quals = append(quals, &monoid.Pred{Cond: q.Where})
	}

	m := monoid.Bag
	if q.Distinct {
		m = monoid.Set
	}

	if len(q.GroupBy) > 0 {
		return d.desugarGrouped(q, quals, m)
	}

	head, err := d.plainHead(q)
	if err != nil {
		return nil, err
	}
	comp := &monoid.Comprehension{M: m, Head: head, Quals: quals}
	return &Task{Name: "query", Comp: comp, EntityKey: monoid.V(OutVar)}, nil
}

// plainHead builds the projection record for a non-grouped SELECT.
func (d *Desugarer) plainHead(q *Query) (monoid.Expr, error) {
	if q.Star && len(q.Select) == 0 {
		if len(q.From) == 1 {
			return monoid.V(q.From[0].Alias), nil
		}
		names := make([]string, len(q.From))
		fields := make([]monoid.Expr, len(q.From))
		for i, f := range q.From {
			names[i] = f.Alias
			fields[i] = monoid.V(f.Alias)
		}
		return &monoid.RecordCtor{Names: names, Fields: fields}, nil
	}
	names := make([]string, 0, len(q.Select)+1)
	fields := make([]monoid.Expr, 0, len(q.Select)+1)
	for i, item := range q.Select {
		name := item.Alias
		if name == "" {
			name = defaultName(item.Expr, i)
		}
		names = append(names, name)
		fields = append(fields, item.Expr)
	}
	if q.Star {
		for _, f := range q.From {
			names = append(names, f.Alias)
			fields = append(fields, monoid.V(f.Alias))
		}
	}
	return &monoid.RecordCtor{Names: names, Fields: fields}, nil
}

// desugarGrouped builds the two-level comprehension for GROUP BY queries:
// group with the groupby monoid, then compute aggregates per group.
func (d *Desugarer) desugarGrouped(q *Query, quals []monoid.Qual, m monoid.Monoid) (*Task, error) {
	// Collect the full environment per row so aggregate arguments can be
	// evaluated per member.
	envNames := make([]string, len(q.From))
	envFields := make([]monoid.Expr, len(q.From))
	for i, f := range q.From {
		envNames[i] = f.Alias
		envFields[i] = monoid.V(f.Alias)
	}
	valExpr := monoid.Expr(&monoid.RecordCtor{Names: envNames, Fields: envFields})
	if len(q.From) == 1 {
		valExpr = monoid.V(q.From[0].Alias)
	}
	gHead := &monoid.RecordCtor{Names: []string{"key", "val"}, Fields: []monoid.Expr{tuple(q.GroupBy), valExpr}}
	grouping := &monoid.Comprehension{M: monoid.GroupBy{}, Head: gHead, Quals: quals}

	memberFor := func(e monoid.Expr) monoid.Expr {
		out := e
		if len(q.From) == 1 {
			out = substAlias(out, q.From[0].Alias, monoid.V("m"))
		} else {
			for _, f := range q.From {
				out = substAlias(out, f.Alias, monoid.F(monoid.V("m"), f.Alias))
			}
		}
		return out
	}

	rewriteAggs := func(e monoid.Expr) monoid.Expr { return rewriteAggregates(e, memberFor) }

	names := make([]string, 0, len(q.Select))
	fields := make([]monoid.Expr, 0, len(q.Select))
	for i, item := range q.Select {
		name := item.Alias
		if name == "" {
			name = defaultName(item.Expr, i)
		}
		names = append(names, name)
		// Group keys referenced directly map to g.key components.
		fields = append(fields, rewriteAggs(replaceGroupKeys(item.Expr, q.GroupBy)))
	}
	head := &monoid.RecordCtor{Names: names, Fields: fields}

	outQuals := []monoid.Qual{&monoid.Generator{Var: "g", Source: grouping}}
	if q.Having != nil {
		outQuals = append(outQuals, &monoid.Pred{Cond: rewriteAggs(replaceGroupKeys(q.Having, q.GroupBy))})
	}
	comp := &monoid.Comprehension{M: m, Head: head, Quals: outQuals}
	return &Task{Name: "query", Comp: comp, EntityKey: monoid.V(OutVar)}, nil
}

// replaceGroupKeys substitutes occurrences of grouping expressions with the
// group key reference.
func replaceGroupKeys(e monoid.Expr, keys []monoid.Expr) monoid.Expr {
	if len(keys) == 1 {
		if e.String() == keys[0].String() {
			return monoid.F(monoid.V("g"), "key")
		}
	} else {
		for i, k := range keys {
			if e.String() == k.String() {
				return &monoid.Call{Fn: "index", Args: []monoid.Expr{monoid.F(monoid.V("g"), "key"), monoid.CInt(int64(i))}}
			}
		}
	}
	switch n := e.(type) {
	case *monoid.BinOp:
		return &monoid.BinOp{Op: n.Op, L: replaceGroupKeys(n.L, keys), R: replaceGroupKeys(n.R, keys)}
	case *monoid.UnOp:
		return &monoid.UnOp{Op: n.Op, E: replaceGroupKeys(n.E, keys)}
	case *monoid.Call:
		// Do not descend into aggregate calls; their arguments are member
		// expressions handled by rewriteAggregates.
		if isAggregate(n.Fn) {
			return n
		}
		args := make([]monoid.Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = replaceGroupKeys(a, keys)
		}
		return &monoid.Call{Fn: n.Fn, Args: args}
	default:
		return e
	}
}

func isAggregate(fn string) bool {
	switch fn {
	case "count", "sum", "avg", "min", "max":
		return true
	}
	return false
}

// rewriteAggregates replaces aggregate calls with comprehensions over the
// group members: sum(x) → sum{ x(m) | m ← g.group }.
func rewriteAggregates(e monoid.Expr, memberFor func(monoid.Expr) monoid.Expr) monoid.Expr {
	switch n := e.(type) {
	case *monoid.Call:
		if isAggregate(n.Fn) {
			arg := monoid.Expr(monoid.CInt(1))
			if len(n.Args) == 1 {
				arg = memberFor(n.Args[0])
			}
			gen := &monoid.Generator{Var: "m", Source: monoid.F(monoid.V("g"), "group")}
			switch n.Fn {
			case "count":
				return &monoid.Comprehension{M: monoid.Count, Head: arg, Quals: []monoid.Qual{gen}}
			case "sum":
				return &monoid.Comprehension{M: monoid.Sum, Head: arg, Quals: []monoid.Qual{gen}}
			case "min":
				return &monoid.Comprehension{M: monoid.Min, Head: arg, Quals: []monoid.Qual{gen}}
			case "max":
				return &monoid.Comprehension{M: monoid.Max, Head: arg, Quals: []monoid.Qual{gen}}
			case "avg":
				sum := &monoid.Comprehension{M: monoid.Sum, Head: arg, Quals: []monoid.Qual{gen}}
				cnt := &monoid.Comprehension{M: monoid.Count, Head: monoid.CInt(1), Quals: []monoid.Qual{
					&monoid.Generator{Var: "m", Source: monoid.F(monoid.V("g"), "group")}}}
				return &monoid.BinOp{Op: "/", L: &monoid.BinOp{Op: "*", L: sum, R: monoid.C(floatVal(1.0))}, R: cnt}
			}
		}
		args := make([]monoid.Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = rewriteAggregates(a, memberFor)
		}
		return &monoid.Call{Fn: n.Fn, Args: args}
	case *monoid.BinOp:
		return &monoid.BinOp{Op: n.Op, L: rewriteAggregates(n.L, memberFor), R: rewriteAggregates(n.R, memberFor)}
	case *monoid.UnOp:
		return &monoid.UnOp{Op: n.Op, E: rewriteAggregates(n.E, memberFor)}
	default:
		return e
	}
}

func defaultName(e monoid.Expr, i int) string {
	if f, ok := e.(*monoid.Field); ok {
		return f.Name
	}
	if v, ok := e.(*monoid.Var); ok {
		return v.Name
	}
	return fmt.Sprintf("col%d", i+1)
}

func (d *Desugarer) freshBlocker() string {
	d.counter++
	return fmt.Sprintf("__block_%d", d.counter)
}

func floatVal(f float64) types.Value { return types.Float(f) }
