package cleandb_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cleandb"
	"cleandb/internal/data"
	"cleandb/internal/datagen"
)

func writeTempFile(t *testing.T, name string, contents []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, contents, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRegisterSourceIsLazy(t *testing.T) {
	path := writeTempFile(t, "c.csv", []byte("name,nationkey\nalice,1\nbob,2\ncarol,1\n"))
	db := cleandb.Open(cleandb.WithWorkers(2))
	db.RegisterCSVFile("customer", path)

	info, err := db.SourceInfo("customer")
	if err != nil {
		t.Fatal(err)
	}
	if info.Loaded {
		t.Fatal("registration must not load the source")
	}
	if info.Format != "csv" || info.Rows != -1 {
		t.Fatalf("pending info = %+v", info)
	}

	// The first query triggers the (parallel) load.
	res, err := db.Query(`SELECT c.name AS n FROM customer c WHERE c.nationkey = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows()) != 2 {
		t.Fatalf("rows = %v", res.Rows())
	}
	info, _ = db.SourceInfo("customer")
	if !info.Loaded || info.Rows != 3 {
		t.Fatalf("post-query info = %+v", info)
	}
}

// TestRegisterSourceDoesNotParse proves registration really defers parsing:
// a file whose contents are invalid for its format registers fine, and the
// parse error surfaces on first use.
func TestRegisterSourceDoesNotParse(t *testing.T) {
	path := writeTempFile(t, "bad.colbin", []byte("this is not colbin"))
	db := cleandb.Open()
	db.RegisterColbinFile("bin", path)
	if _, err := db.SourceInfo("bin"); err != nil {
		t.Fatalf("SourceInfo on pending bad source: %v", err)
	}
	_, err := db.Query(`SELECT b.x FROM bin b`)
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("first query err = %v, want colbin parse error", err)
	}
	// The failure is remembered, not retried — and the catalog says so.
	if err := db.Load(context.Background(), "bin"); err == nil {
		t.Fatal("Load after failed load should report the remembered error")
	}
	if info, _ := db.SourceInfo("bin"); info.Loaded || info.Err == nil {
		t.Fatalf("failed source info = %+v, want Err set and Loaded=false", info)
	}
	// Re-registering resets the slot.
	good := &bytes.Buffer{}
	if err := data.WriteColbin(good, nil); err != nil {
		t.Fatal(err)
	}
	db.RegisterColbin("bin", bytes.NewReader(good.Bytes()))
	if rows, err := db.Rows("bin"); err != nil || len(rows) != 0 {
		t.Fatalf("after re-register: %v, %v", rows, err)
	}
}

func TestExplicitLoad(t *testing.T) {
	path := writeTempFile(t, "c.csv", []byte("a\n1\n2\n"))
	db := cleandb.Open()
	db.RegisterCSVFile("t", path)
	if err := db.Load(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	info, _ := db.SourceInfo("t")
	if !info.Loaded || info.Rows != 2 {
		t.Fatalf("info = %+v", info)
	}
	if err := db.Load(context.Background(), "t"); err != nil {
		t.Fatalf("re-Load should be a no-op, got %v", err)
	}
	if err := db.Load(context.Background(), "nope"); err == nil {
		t.Fatal("loading an unknown source should error")
	}
}

func TestRowsLoadsPendingSource(t *testing.T) {
	path := writeTempFile(t, "c.csv", []byte("a,b\n1,x\n2,y\n"))
	db := cleandb.Open()
	db.RegisterCSVFile("t", path)
	rows, err := db.Rows("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Field("a").Int() != 1 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestLazyLoadCancellable(t *testing.T) {
	path := writeTempFile(t, "c.csv", []byte("a\n1\n"))
	db := cleandb.Open()
	db.RegisterCSVFile("t", path)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, `SELECT t.a FROM t t`); err == nil {
		t.Fatal("cancelled first query should fail")
	}
	// A cancelled load must not poison the source: the next query retries.
	res, err := db.Query(`SELECT t.a FROM t t`)
	if err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
	if len(res.Rows()) != 1 {
		t.Fatalf("rows = %v", res.Rows())
	}
}

func TestQueryLoadsOnlyReferencedSources(t *testing.T) {
	used := writeTempFile(t, "used.csv", []byte("a\n1\n"))
	unused := writeTempFile(t, "unused.csv", []byte("b\n2\n"))
	db := cleandb.Open()
	db.RegisterCSVFile("used", used)
	db.RegisterCSVFile("unused", unused)
	if _, err := db.Query(`SELECT u.a FROM used u`); err != nil {
		t.Fatal(err)
	}
	if info, _ := db.SourceInfo("used"); !info.Loaded {
		t.Fatal("referenced source should be loaded")
	}
	if info, _ := db.SourceInfo("unused"); info.Loaded {
		t.Fatal("unreferenced source must stay pending")
	}
}

func TestRegisterSourceInvalidatesPlanCache(t *testing.T) {
	db := cleandb.Open()
	db.RegisterCSV("t", strings.NewReader("a\n1\n"))
	q := `SELECT t.a FROM t t`
	for i := 0; i < 2; i++ {
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	if s := db.PlanCacheStats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("warm stats = %+v", s)
	}
	// Registering any source — even lazily, without a load — bumps the epoch
	// and invalidates cached plans.
	db.RegisterCSVFile("other", writeTempFile(t, "o.csv", []byte("b\n2\n")))
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if s := db.PlanCacheStats(); s.Misses != 2 {
		t.Fatalf("post-register stats = %+v", s)
	}
}

func TestEagerWrappersLoadImmediately(t *testing.T) {
	db := cleandb.Open()
	if err := db.RegisterCSV("t", strings.NewReader("a\n1\n")); err != nil {
		t.Fatal(err)
	}
	info, err := db.SourceInfo("t")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Loaded || info.Format != "csv" || info.Rows != 1 {
		t.Fatalf("info = %+v", info)
	}
	if info, _ := db.SourceInfo("t"); info.Bytes != 4 {
		t.Fatalf("bytes hint = %d", info.Bytes)
	}
}

func TestRegisterFileUnknownExtension(t *testing.T) {
	db := cleandb.Open()
	if err := db.RegisterFile("t", "data.parquet"); err == nil {
		t.Fatal("unknown extension should error at registration")
	}
}

func TestSourceInfosAllFormats(t *testing.T) {
	db := cleandb.Open()
	db.RegisterRows("mem", []cleandb.Value{cleandb.Int(1)})
	db.RegisterCSVFile("csv", writeTempFile(t, "a.csv", []byte("a\n1\n")))
	db.RegisterJSONFile("json", writeTempFile(t, "a.json", []byte(`{"a":1}`+"\n")))
	db.RegisterXMLFile("xml", writeTempFile(t, "a.xml", []byte(`<r><e><a>1</a></e></r>`)))
	infos := db.SourceInfos()
	if len(infos) != 4 {
		t.Fatalf("infos = %v", infos)
	}
	byName := map[string]cleandb.SourceInfo{}
	for _, i := range infos {
		byName[i.Name] = i
	}
	if !byName["mem"].Loaded || byName["mem"].Format != "mem" || byName["mem"].Rows != 1 {
		t.Fatalf("mem info = %+v", byName["mem"])
	}
	for _, n := range []string{"csv", "json", "xml"} {
		if byName[n].Loaded || byName[n].Format != n {
			t.Fatalf("%s info = %+v", n, byName[n])
		}
	}
}

// TestParallelLoadIdenticalQueryResults is the acceptance check: the same
// generated dataset, loaded eagerly through the seed sequential reader path
// and lazily through the chunk-parallel scan, yields identical query
// results.
func TestParallelLoadIdenticalQueryResults(t *testing.T) {
	rows := datagen.GenCustomer(datagen.CustomerConfig{Rows: 3000, DupRate: 0.1, MaxDups: 8, Seed: 7}).Rows
	var buf bytes.Buffer
	if err := data.WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	seqRows, err := data.ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	eager := cleandb.Open(cleandb.WithWorkers(8))
	eager.RegisterRows("customer", seqRows)

	lazy := cleandb.Open(cleandb.WithWorkers(8))
	lazy.RegisterCSVFile("customer", writeTempFile(t, "c.csv", buf.Bytes()))

	for _, q := range []string{
		`SELECT c.name AS n FROM customer c WHERE c.nationkey = 3`,
		`SELECT * FROM customer c FD(c.address, c.nationkey)`,
	} {
		a, err := eager.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := lazy.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		ra, rb := a.Rows(), b.Rows()
		if len(ra) != len(rb) {
			t.Fatalf("%s: %d vs %d rows", q, len(ra), len(rb))
		}
		for i := range ra {
			if fmt.Sprint(ra[i]) != fmt.Sprint(rb[i]) {
				t.Fatalf("%s: row %d differs: %v vs %v", q, i, ra[i], rb[i])
			}
		}
	}
}
