package core

import (
	"strings"
	"testing"

	"cleandb/internal/datagen"
	"cleandb/internal/engine"
	"cleandb/internal/physical"
	"cleandb/internal/types"
)

// ruleψ is the paper's general denial constraint expressed directly in
// CleanM/SQL: a theta self-join with inequality predicates and a selective
// filter on one side (§8.3).
const ruleψ = `
SELECT t1.orderkey AS o1, t2.orderkey AS o2
FROM lineitem t1, lineitem t2
WHERE t1.extendedprice < t2.extendedprice
  AND t1.discount > t2.discount
  AND t1.extendedprice < 905`

// TestRuleψThroughCleanM runs the inequality denial constraint through the
// full stack: parse → comprehension (filter pushdown moves the selective
// price predicate below the join) → algebra (theta join with band
// statistics) → M-Bucket execution.
func TestRuleψThroughCleanM(t *testing.T) {
	rows := datagen.GenLineitem(datagen.LineitemConfig{Rows: 2000, Seed: 9})
	ctx := engine.NewContext(4)
	ctx.CompBudget = 10_000_000
	p := NewPipeline(ctx, map[string]*engine.Dataset{
		"lineitem": engine.FromValues(ctx, rows),
	})
	res, err := p.Run(ruleψ)
	if err != nil {
		t.Fatalf("rule ψ through CleanM: %v", err)
	}
	got := len(res.Rows())

	// Reference: nested loops.
	want := 0
	for _, t1 := range rows {
		if t1.Field("extendedprice").Float() >= 905 {
			continue
		}
		for _, t2 := range rows {
			if t1.Field("extendedprice").Float() < t2.Field("extendedprice").Float() &&
				t1.Field("discount").Float() > t2.Field("discount").Float() {
				want++
			}
		}
	}
	if got != want {
		t.Fatalf("rule ψ violations = %d, want %d", got, want)
	}
	if want == 0 {
		t.Fatal("test data should contain ψ violations")
	}
}

// TestRuleψFilterPushdown: the plan must carry the one-sided price filter as
// a Select below the join (normalization's filter pushdown), not inside the
// theta predicate.
func TestRuleψFilterPushdown(t *testing.T) {
	rows := datagen.GenLineitem(datagen.LineitemConfig{Rows: 100, Seed: 9})
	ctx := engine.NewContext(2)
	p := NewPipeline(ctx, map[string]*engine.Dataset{
		"lineitem": engine.FromValues(ctx, rows),
	})
	prep, err := p.Prepare(ruleψ)
	if err != nil {
		t.Fatal(err)
	}
	explain := prep.Explain()
	if !strings.Contains(explain, "ThetaJoin") {
		t.Fatalf("plan should use a theta join:\n%s", explain)
	}
	// The Select with the 905 constant must appear BELOW the join (pushed
	// onto the t1 scan), i.e. indented deeper than the join line.
	lines := strings.Split(explain, "\n")
	joinDepth, selDepth := -1, -1
	for _, l := range lines {
		depth := (len(l) - len(strings.TrimLeft(l, " "))) / 2
		if strings.Contains(l, "ThetaJoin") {
			joinDepth = depth
		}
		if strings.Contains(l, "905") && strings.Contains(l, "Select") {
			selDepth = depth
		}
	}
	if selDepth == -1 {
		t.Fatalf("selective filter missing from plan:\n%s", explain)
	}
	if joinDepth == -1 || selDepth <= joinDepth {
		t.Fatalf("filter (depth %d) should be pushed below the join (depth %d):\n%s",
			selDepth, joinDepth, explain)
	}
}

// TestRuleψMBucketBalances: CleanM's normalizer pushes the selective filter
// below the join for every strategy (it is a level-1 rewrite), so both plans
// compute the same small-left × full-right join here. The M-Bucket operator
// must additionally balance that work across workers (Okcan & Riedewald's
// matrix partitioning), while the cartesian plan leaves the whole join on
// the worker(s) holding the few filtered left rows.
func TestRuleψMBucketBalances(t *testing.T) {
	rows := datagen.GenLineitem(datagen.LineitemConfig{Rows: 2000, Seed: 9})
	run := func(strategy physical.ThetaStrategy) (int, int64) {
		ctx := engine.NewContext(4)
		p := NewPipeline(ctx, map[string]*engine.Dataset{
			"lineitem": engine.FromValues(ctx, rows),
		})
		p.Config.Theta = strategy
		res, err := p.Run(ruleψ)
		if err != nil {
			t.Fatalf("strategy %v: %v", strategy, err)
		}
		var joinStraggler int64
		for _, st := range ctx.Metrics().Stages() {
			if st.Name == "join:thetajoin" || st.Name == "join:cartesian" {
				if c := st.MaxCost(); c > joinStraggler {
					joinStraggler = c
				}
			}
		}
		return len(res.Rows()), joinStraggler
	}
	mbRows, mbStraggler := run(physical.ThetaMBucket)
	ctRows, ctStraggler := run(physical.ThetaCartesian)
	if mbRows != ctRows {
		t.Fatalf("strategies disagree on violations: %d vs %d", mbRows, ctRows)
	}
	if mbStraggler*2 > ctStraggler {
		t.Fatalf("M-Bucket should balance the join load: straggler %d vs cartesian %d",
			mbStraggler, ctStraggler)
	}
}

// TestThetaSelfJoinSmall sanity-checks a tiny theta self-join through CleanM
// against hand-computed results.
func TestThetaSelfJoinSmall(t *testing.T) {
	schema := types.NewSchema("id", "v")
	rows := []types.Value{
		types.NewRecord(schema, []types.Value{types.Int(1), types.Int(10)}),
		types.NewRecord(schema, []types.Value{types.Int(2), types.Int(20)}),
		types.NewRecord(schema, []types.Value{types.Int(3), types.Int(30)}),
	}
	ctx := engine.NewContext(2)
	p := NewPipeline(ctx, map[string]*engine.Dataset{"t": engine.FromValues(ctx, rows)})
	res, err := p.Run(`SELECT a.id AS x, b.id AS y FROM t a, t b WHERE a.v < b.v`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows()) != 3 { // (1,2) (1,3) (2,3)
		t.Fatalf("pairs = %v", res.Rows())
	}
}
