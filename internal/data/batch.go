package data

import (
	"sync"
	"sync/atomic"

	"cleandb/internal/types"
)

// This file is the columnar half of the data model: partitions carried as
// typed column vectors with dictionary-encoded strings instead of boxed
// []types.Value rows. colbin already stores columns on disk; ColumnBatch is
// the in-memory shape that lets the engine keep that structure from load to
// sink, falling back to rows only at true row boundaries (shuffle by
// arbitrary key, user-defined flatMaps, nested construction).

// Dict is an append-only, concurrency-safe string interner shared by every
// batch of one source. Codes are dense indices into the entry table, so a
// string equality test over two interned values is a uint32 compare and a
// distinct-count estimate is a bitset over codes.
type Dict struct {
	mu    sync.RWMutex
	codes map[string]uint32
	strs  []string

	hits   atomic.Int64
	misses atomic.Int64
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{codes: make(map[string]uint32)}
}

// Code interns s, returning its dense code. Safe for concurrent use.
func (d *Dict) Code(s string) uint32 {
	d.mu.RLock()
	c, ok := d.codes[s]
	d.mu.RUnlock()
	if ok {
		d.hits.Add(1)
		return c
	}
	d.mu.Lock()
	c, ok = d.codes[s]
	if !ok {
		c = uint32(len(d.strs))
		d.strs = append(d.strs, s)
		d.codes[s] = c
	}
	d.mu.Unlock()
	if ok {
		d.hits.Add(1)
	} else {
		d.misses.Add(1)
	}
	return c
}

// Lookup returns the code of s without interning it.
func (d *Dict) Lookup(s string) (uint32, bool) {
	d.mu.RLock()
	c, ok := d.codes[s]
	d.mu.RUnlock()
	return c, ok
}

// Str returns the string for code c.
func (d *Dict) Str(c uint32) string {
	d.mu.RLock()
	s := d.strs[c]
	d.mu.RUnlock()
	return s
}

// Len returns the number of distinct entries.
func (d *Dict) Len() int {
	d.mu.RLock()
	n := len(d.strs)
	d.mu.RUnlock()
	return n
}

// Snapshot returns the entry table as of now. Entries are immutable once
// interned, so the returned slice stays valid for every code below its
// length even while other goroutines keep interning.
func (d *Dict) Snapshot() []string {
	d.mu.RLock()
	s := d.strs
	d.mu.RUnlock()
	return s
}

// Stats returns how many Code calls found an existing entry (hits) versus
// allocated a new one (misses). The ratio is the dictionary hit rate the
// metrics surface exports: high hit rates mean the dictionary is doing its
// job of collapsing repeated strings into integer compares.
func (d *Dict) Stats() (hits, misses int64) {
	return d.hits.Load(), d.misses.Load()
}

// VecKind enumerates the physical representation of a column vector.
type VecKind uint8

// Column vector kinds. VecAny is the escape hatch: a boxed value per row,
// used for lists, records, all-null columns and mixed-kind columns so that
// batch↔row conversion is always bit-exact.
const (
	VecAny VecKind = iota
	VecInt
	VecFloat
	VecBool
	VecStr
)

// Column is one typed vector of a batch. Exactly one payload slice (by
// Kind) is populated; Nulls is a validity bitmap (bit set = null) that is
// nil when the column has no nulls, and unused for VecAny, where nulls are
// boxed like any other value.
type Column struct {
	Kind   VecKind
	Ints   []int64
	Floats []float64
	Bools  []bool
	Codes  []uint32 // dictionary codes, VecStr
	Vals   []types.Value
	Nulls  []uint64
}

// Len returns the row count of the column.
func (c *Column) Len() int {
	switch c.Kind {
	case VecInt:
		return len(c.Ints)
	case VecFloat:
		return len(c.Floats)
	case VecBool:
		return len(c.Bools)
	case VecStr:
		return len(c.Codes)
	default:
		return len(c.Vals)
	}
}

// Null reports whether row i is null. For VecAny columns nulls live in the
// boxed values instead.
func (c *Column) Null(i int) bool {
	if c.Kind == VecAny {
		return c.Vals[i].IsNull()
	}
	return c.Nulls != nil && c.Nulls[i>>6]>>(uint(i)&63)&1 == 1
}

// Value boxes row i back into a types.Value. strs must be the dictionary
// snapshot for VecStr columns (pass nil otherwise).
func (c *Column) Value(i int, strs []string) types.Value {
	if c.Kind != VecAny && c.Null(i) {
		return types.Null()
	}
	switch c.Kind {
	case VecInt:
		return types.Int(c.Ints[i])
	case VecFloat:
		return types.Float(c.Floats[i])
	case VecBool:
		return types.Bool(c.Bools[i])
	case VecStr:
		return types.String(strs[c.Codes[i]])
	default:
		return c.Vals[i]
	}
}

func newNulls(n int) []uint64 { return make([]uint64, (n+63)/64) }

func setNull(bm []uint64, i int) { bm[i>>6] |= 1 << (uint(i) & 63) }

// ColumnBatch is one partition in columnar form: a column vector per schema
// field plus the source-wide string dictionary. Batches are immutable; all
// transformations (Gather, Slice, Concat) build new batches that share the
// dictionary, so codes stay comparable across every batch of a source.
type ColumnBatch struct {
	Schema *types.Schema
	Dict   *Dict
	Cols   []Column
	N      int
}

// Strings returns the dictionary snapshot to pass to Column.Value, or nil
// when the batch has no dictionary.
func (b *ColumnBatch) Strings() []string {
	if b.Dict == nil {
		return nil
	}
	return b.Dict.Snapshot()
}

// Col returns the index of the named column, or -1.
func (b *ColumnBatch) Col(name string) int {
	if b.Schema == nil {
		return -1
	}
	if i, ok := b.Schema.Index(name); ok {
		return i
	}
	return -1
}

// BatchFromRows converts a partition of record rows into a batch, interning
// strings into dict (a fresh dictionary when nil). It returns nil — caller
// keeps the row form — when the rows are not records sharing one schema:
// heterogeneous JSON objects, already-wrapped env records and scalar
// streams stay rows.
//
// Column typing is conservative so that Rows-of(BatchFromRows(rows)) is
// bit-identical to rows: a column lands in a typed vector only when every
// non-null value has that one kind; mixed int/float columns, lists, records
// and all-null columns keep boxed values.
func BatchFromRows(rows []types.Value, dict *Dict) *ColumnBatch {
	if dict == nil {
		dict = NewDict()
	}
	if len(rows) == 0 {
		return &ColumnBatch{Dict: dict}
	}
	rec := rows[0].Record()
	if rec == nil {
		return nil
	}
	schema := rec.Schema
	for _, r := range rows {
		if rr := r.Record(); rr == nil || rr.Schema != schema {
			return nil
		}
	}
	b := &ColumnBatch{Schema: schema, Dict: dict, Cols: make([]Column, len(schema.Names)), N: len(rows)}
	for c := range b.Cols {
		b.Cols[c] = columnFromRows(rows, c, dict)
	}
	return b
}

// columnFromRows builds one typed column; two passes, kind scan then fill.
func columnFromRows(rows []types.Value, c int, dict *Dict) Column {
	kind := VecAny
	decided := false
	for _, r := range rows {
		v := r.Record().Fields[c]
		var want VecKind
		switch v.Kind() {
		case types.KindNull:
			continue
		case types.KindInt:
			want = VecInt
		case types.KindFloat:
			want = VecFloat
		case types.KindBool:
			want = VecBool
		case types.KindString:
			want = VecStr
		default:
			return anyColumn(rows, c)
		}
		if !decided {
			kind, decided = want, true
		} else if kind != want {
			return anyColumn(rows, c)
		}
	}
	if !decided {
		return anyColumn(rows, c)
	}
	n := len(rows)
	col := Column{Kind: kind}
	var nulls []uint64
	markNull := func(i int) {
		if nulls == nil {
			nulls = newNulls(n)
		}
		setNull(nulls, i)
	}
	switch kind {
	case VecInt:
		col.Ints = make([]int64, n)
		for i, r := range rows {
			v := r.Record().Fields[c]
			if v.IsNull() {
				markNull(i)
			} else {
				col.Ints[i] = v.Int()
			}
		}
	case VecFloat:
		col.Floats = make([]float64, n)
		for i, r := range rows {
			v := r.Record().Fields[c]
			if v.IsNull() {
				markNull(i)
			} else {
				col.Floats[i] = v.Float()
			}
		}
	case VecBool:
		col.Bools = make([]bool, n)
		for i, r := range rows {
			v := r.Record().Fields[c]
			if v.IsNull() {
				markNull(i)
			} else {
				col.Bools[i] = v.Bool()
			}
		}
	case VecStr:
		col.Codes = make([]uint32, n)
		for i, r := range rows {
			v := r.Record().Fields[c]
			if v.IsNull() {
				markNull(i)
			} else {
				col.Codes[i] = dict.Code(v.Str())
			}
		}
	}
	col.Nulls = nulls
	return col
}

func anyColumn(rows []types.Value, c int) Column {
	vals := make([]types.Value, len(rows))
	for i, r := range rows {
		vals[i] = r.Record().Fields[c]
	}
	return Column{Kind: VecAny, Vals: vals}
}

// AppendRows boxes every row of the batch back into record values, appended
// to dst. When wrap is non-nil each record is additionally wrapped in a
// one-field record over wrap — the scan-env shape the physical plans bind.
func (b *ColumnBatch) AppendRows(dst []types.Value, wrap *types.Schema) []types.Value {
	strs := b.Strings()
	for i := 0; i < b.N; i++ {
		fields := make([]types.Value, len(b.Cols))
		for c := range b.Cols {
			fields[c] = b.Cols[c].Value(i, strs)
		}
		v := types.NewRecord(b.Schema, fields)
		if wrap != nil {
			v = types.NewRecord(wrap, []types.Value{v})
		}
		dst = append(dst, v)
	}
	return dst
}

// Rows boxes the batch back into a fresh row slice.
func (b *ColumnBatch) Rows() []types.Value {
	return b.AppendRows(make([]types.Value, 0, b.N), nil)
}

// Row boxes a single row.
func (b *ColumnBatch) Row(i int, strs []string) types.Value {
	fields := make([]types.Value, len(b.Cols))
	for c := range b.Cols {
		fields[c] = b.Cols[c].Value(i, strs)
	}
	return types.NewRecord(b.Schema, fields)
}

// Gather builds a new batch containing the selected rows in order, sharing
// the schema and dictionary. It is the columnar filter's output step.
func (b *ColumnBatch) Gather(sel []int32) *ColumnBatch {
	out := &ColumnBatch{Schema: b.Schema, Dict: b.Dict, Cols: make([]Column, len(b.Cols)), N: len(sel)}
	for ci := range b.Cols {
		src := &b.Cols[ci]
		dst := Column{Kind: src.Kind}
		switch src.Kind {
		case VecInt:
			dst.Ints = make([]int64, len(sel))
			for i, j := range sel {
				dst.Ints[i] = src.Ints[j]
			}
		case VecFloat:
			dst.Floats = make([]float64, len(sel))
			for i, j := range sel {
				dst.Floats[i] = src.Floats[j]
			}
		case VecBool:
			dst.Bools = make([]bool, len(sel))
			for i, j := range sel {
				dst.Bools[i] = src.Bools[j]
			}
		case VecStr:
			dst.Codes = make([]uint32, len(sel))
			for i, j := range sel {
				dst.Codes[i] = src.Codes[j]
			}
		default:
			dst.Vals = make([]types.Value, len(sel))
			for i, j := range sel {
				dst.Vals[i] = src.Vals[j]
			}
		}
		if src.Nulls != nil {
			var nulls []uint64
			for i, j := range sel {
				if src.Null(int(j)) {
					if nulls == nil {
						nulls = newNulls(len(sel))
					}
					setNull(nulls, i)
				}
			}
			dst.Nulls = nulls
		}
		out.Cols[ci] = dst
	}
	return out
}

// Slice returns rows [lo, hi) as a new batch. Payload vectors are shared
// sub-slices (batches are immutable); the null bitmap is rebuilt because
// bitmaps cannot be sliced at arbitrary bit offsets.
func (b *ColumnBatch) Slice(lo, hi int) *ColumnBatch {
	n := hi - lo
	out := &ColumnBatch{Schema: b.Schema, Dict: b.Dict, Cols: make([]Column, len(b.Cols)), N: n}
	for ci := range b.Cols {
		src := &b.Cols[ci]
		dst := Column{Kind: src.Kind}
		switch src.Kind {
		case VecInt:
			dst.Ints = src.Ints[lo:hi]
		case VecFloat:
			dst.Floats = src.Floats[lo:hi]
		case VecBool:
			dst.Bools = src.Bools[lo:hi]
		case VecStr:
			dst.Codes = src.Codes[lo:hi]
		default:
			dst.Vals = src.Vals[lo:hi]
		}
		if src.Nulls != nil {
			var nulls []uint64
			for i := lo; i < hi; i++ {
				if src.Null(i) {
					if nulls == nil {
						nulls = newNulls(n)
					}
					setNull(nulls, i-lo)
				}
			}
			dst.Nulls = nulls
		}
		out.Cols[ci] = dst
	}
	return out
}

// ConcatBatches concatenates batches that share one schema, dictionary and
// per-column vector kinds into a single batch, or returns nil when their
// shapes disagree (the caller then falls back to row concatenation). Empty
// batches are ignored. This is the column-chunk exchange primitive behind
// batch repartitioning.
func ConcatBatches(bs []*ColumnBatch) *ColumnBatch {
	var live []*ColumnBatch
	total := 0
	for _, b := range bs {
		if b == nil {
			return nil
		}
		if b.N == 0 {
			continue
		}
		live = append(live, b)
		total += b.N
	}
	if len(live) == 0 {
		if len(bs) > 0 {
			return &ColumnBatch{Schema: bs[0].Schema, Dict: bs[0].Dict}
		}
		return &ColumnBatch{}
	}
	first := live[0]
	for _, b := range live[1:] {
		if b.Schema != first.Schema || b.Dict != first.Dict {
			return nil
		}
		for c := range b.Cols {
			if b.Cols[c].Kind != first.Cols[c].Kind {
				return nil
			}
		}
	}
	out := &ColumnBatch{Schema: first.Schema, Dict: first.Dict, Cols: make([]Column, len(first.Cols)), N: total}
	for ci := range first.Cols {
		dst := Column{Kind: first.Cols[ci].Kind}
		anyNull := false
		for _, b := range live {
			if b.Cols[ci].Nulls != nil {
				anyNull = true
			}
		}
		var nulls []uint64
		if anyNull {
			nulls = newNulls(total)
		}
		off := 0
		for _, b := range live {
			src := &b.Cols[ci]
			switch dst.Kind {
			case VecInt:
				if dst.Ints == nil {
					dst.Ints = make([]int64, 0, total)
				}
				dst.Ints = append(dst.Ints, src.Ints...)
			case VecFloat:
				if dst.Floats == nil {
					dst.Floats = make([]float64, 0, total)
				}
				dst.Floats = append(dst.Floats, src.Floats...)
			case VecBool:
				if dst.Bools == nil {
					dst.Bools = make([]bool, 0, total)
				}
				dst.Bools = append(dst.Bools, src.Bools...)
			case VecStr:
				if dst.Codes == nil {
					dst.Codes = make([]uint32, 0, total)
				}
				dst.Codes = append(dst.Codes, src.Codes...)
			default:
				if dst.Vals == nil {
					dst.Vals = make([]types.Value, 0, total)
				}
				dst.Vals = append(dst.Vals, src.Vals...)
			}
			if src.Nulls != nil {
				for i := 0; i < b.N; i++ {
					if src.Null(i) {
						setNull(nulls, off+i)
					}
				}
			}
			off += b.N
		}
		dst.Nulls = nulls
		out.Cols[ci] = dst
	}
	return out
}

// RemapDict re-interns the batch's dictionary codes into shared, then makes
// shared the batch's dictionary. Sources build per-partition batches with
// per-partition dictionaries on parallel goroutines, then merge them into
// the per-source dictionary with one lock acquisition per distinct string
// instead of one per row.
func (b *ColumnBatch) RemapDict(shared *Dict) {
	if b.Dict == shared {
		return
	}
	old := b.Dict.Snapshot()
	remap := make([]uint32, len(old))
	for i, s := range old {
		remap[i] = shared.Code(s)
	}
	for ci := range b.Cols {
		col := &b.Cols[ci]
		if col.Kind != VecStr {
			continue
		}
		for i, c := range col.Codes {
			col.Codes[i] = remap[c]
		}
	}
	b.Dict = shared
}

// DistinctCodes estimates the distinct-value count of a VecStr column
// across batches by bitsetting dictionary codes, examining at most sampleCap
// rows. It returns the distinct count seen, the rows examined and ok=false
// when the column is not dictionary-encoded in every batch. Sampling keeps
// the planner's stats probe O(sampleCap) on huge sources.
func DistinctCodes(bs []*ColumnBatch, col int, sampleCap int) (distinct, sampled int, ok bool) {
	var dict *Dict
	for _, b := range bs {
		if b == nil || b.N == 0 {
			continue
		}
		if col < 0 || col >= len(b.Cols) || b.Cols[col].Kind != VecStr {
			return 0, 0, false
		}
		dict = b.Dict
	}
	if dict == nil {
		return 0, 0, true
	}
	seen := make([]uint64, (dict.Len()+63)/64)
	for _, b := range bs {
		if b == nil || b.N == 0 {
			continue
		}
		c := &b.Cols[col]
		for i, code := range c.Codes {
			if sampled >= sampleCap {
				return distinct, sampled, true
			}
			sampled++
			if c.Nulls != nil && c.Null(i) {
				continue
			}
			if seen[code>>6]>>(code&63)&1 == 0 {
				seen[code>>6] |= 1 << (code & 63)
				distinct++
			}
		}
	}
	return distinct, sampled, true
}
