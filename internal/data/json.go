package data

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"

	"cleandb/internal/types"
)

// SchemaCache shares record schemas across readers so records with equal
// field-name sets share one *types.Schema. It is safe for concurrent use,
// which lets partition-parallel JSON loaders preserve the schema-sharing
// behaviour of the sequential reader.
type SchemaCache struct {
	mu sync.Mutex
	m  map[string]*types.Schema
}

// NewSchemaCache returns an empty schema cache.
func NewSchemaCache() *SchemaCache {
	return &SchemaCache{m: map[string]*types.Schema{}}
}

// schemaKey renders sorted field names unambiguously. NUL never appears in
// JSON object keys, so distinct name sets get distinct cache keys — a
// space-joined rendering would conflate {"a b","c"} with {"a","b c"}.
func schemaKey(names []string) string { return strings.Join(names, "\x00") }

func (c *SchemaCache) intern(key string, names []string) *types.Schema {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.m[key]
	if !ok {
		s = types.NewSchema(names...)
		c.m[key] = s
	}
	return s
}

// schemaInterner is one reader's view of a SchemaCache: a lock-free local
// map in front of the shared one, so parallel chunk readers take the shared
// mutex only on first sight of a name set instead of once per record.
type schemaInterner struct {
	local  map[string]*types.Schema
	shared *SchemaCache
}

func (si *schemaInterner) For(names []string) *types.Schema {
	key := schemaKey(names)
	if s, ok := si.local[key]; ok {
		return s
	}
	s := si.shared.intern(key, names)
	si.local[key] = s
	return s
}

// ReadJSON parses JSON-lines input (one object per line) into record values.
// Nested objects become nested records, arrays become lists; numbers parse
// as ints when integral, floats otherwise. Field order is canonical
// (sorted), so records with equal keys share a schema.
func ReadJSON(r io.Reader) ([]types.Value, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("data: json: %w", err)
	}
	return ReadJSONChunk(buf, 1, NewSchemaCache())
}

// ReadJSONChunk parses one byte range of a JSON-lines input whose first line
// has 1-based number firstLine (for error messages), sharing record schemas
// through the cache. Splitting an input at line boundaries and concatenating
// the per-chunk results yields exactly what ReadJSON produces on the whole.
func ReadJSONChunk(buf []byte, firstLine int, schemas *SchemaCache) ([]types.Value, error) {
	sc := bufio.NewScanner(bytes.NewReader(buf))
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	interner := &schemaInterner{local: map[string]*types.Schema{}, shared: schemas}
	var out []types.Value
	line := firstLine - 1
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var v interface{}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.UseNumber()
		if err := dec.Decode(&v); err != nil {
			return nil, fmt.Errorf("data: json line %d: %w", line, err)
		}
		out = append(out, fromJSON(v, interner))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("data: json: %w", err)
	}
	return out, nil
}

func fromJSON(v interface{}, schemas *schemaInterner) types.Value {
	switch x := v.(type) {
	case nil:
		return types.Null()
	case bool:
		return types.Bool(x)
	case string:
		return types.String(x)
	case json.Number:
		if i, err := x.Int64(); err == nil {
			return types.Int(i)
		}
		f, err := x.Float64()
		if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
			return types.String(x.String())
		}
		return types.Float(f)
	case []interface{}:
		elems := make([]types.Value, len(x))
		for i, e := range x {
			elems[i] = fromJSON(e, schemas)
		}
		return types.ListOf(elems)
	case map[string]interface{}:
		names := make([]string, 0, len(x))
		for k := range x {
			names = append(names, k)
		}
		sort.Strings(names)
		schema := schemas.For(names)
		fields := make([]types.Value, len(names))
		for i, n := range names {
			fields[i] = fromJSON(x[n], schemas)
		}
		return types.NewRecord(schema, fields)
	default:
		return types.String(fmt.Sprint(x))
	}
}

// WriteJSON renders values as JSON lines.
func WriteJSON(w io.Writer, rows []types.Value) error {
	bw := bufio.NewWriter(w)
	for _, row := range rows {
		b, err := json.Marshal(toJSON(row))
		if err != nil {
			return fmt.Errorf("data: json: %w", err)
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ToJSON converts a value to the plain Go shape json.Marshal renders the way
// WriteJSON does (records → maps, lists → slices, null → nil) — for callers
// that embed rows in a larger JSON document instead of a JSON-lines stream.
func ToJSON(v types.Value) interface{} { return toJSON(v) }

func toJSON(v types.Value) interface{} {
	switch v.Kind() {
	case types.KindNull:
		return nil
	case types.KindBool:
		return v.Bool()
	case types.KindInt:
		return v.Int()
	case types.KindFloat:
		return v.Float()
	case types.KindString:
		return v.Str()
	case types.KindList:
		out := make([]interface{}, len(v.List()))
		for i, e := range v.List() {
			out[i] = toJSON(e)
		}
		return out
	case types.KindRecord:
		rec := v.Record()
		out := make(map[string]interface{}, len(rec.Fields))
		for i, n := range rec.Schema.Names {
			out[n] = toJSON(rec.Fields[i])
		}
		return out
	default:
		return nil
	}
}
