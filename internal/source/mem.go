package source

import (
	"context"
	"sync"

	"cleandb/internal/types"
)

// Mem is an in-memory source over already-built rows. It exists so
// programmatically registered datasets speak the same catalog interface as
// file-backed ones: exact stats, a schema when the rows are records, and a
// copy-free partitioning Scan.
type Mem struct {
	rows []types.Value
	// bytes is the recursive size sum, computed on first Stats call — rows
	// are immutable, registration stays O(1), and status polls after the
	// first pay nothing.
	bytesOnce sync.Once
	bytes     int64
}

// FromRows wraps rows (not copied) as a source.
func FromRows(rows []types.Value) *Mem { return &Mem{rows: rows} }

// Format implements Source.
func (s *Mem) Format() string { return "mem" }

// Schema returns the first record's field names, or nil for non-record rows.
func (s *Mem) Schema() ([]string, error) {
	if len(s.rows) == 0 {
		return nil, nil
	}
	if rec := s.rows[0].Record(); rec != nil {
		return rec.Schema.Names, nil
	}
	return nil, nil
}

// Stats implements Source with exact counts.
func (s *Mem) Stats() (Stats, error) {
	s.bytesOnce.Do(func() {
		for _, r := range s.rows {
			s.bytes += int64(types.SizeBytes(r))
		}
	})
	return Stats{Rows: int64(len(s.rows)), Bytes: s.bytes}, nil
}

// Scan implements Source by partitioning the rows without copying.
func (s *Mem) Scan(ctx context.Context, parts int) ([][]types.Value, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return partition(s.rows, parts), nil
}
